package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	l := New[string, int](2)
	l.Put("a", 1)
	l.Put("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	l.Put("c", 3) // evicts b: a was refreshed by the Get above
	if _, ok := l.Get("b"); ok {
		t.Fatalf("b should have been evicted")
	}
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("a evicted prematurely: %v, %v", v, ok)
	}
	if v, ok := l.Get("c"); !ok || v != 3 {
		t.Fatalf("Get(c) = %v, %v", v, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestLRUReplace(t *testing.T) {
	l := New[string, int](2)
	l.Put("a", 1)
	l.Put("a", 9)
	if v, _ := l.Get("a"); v != 9 {
		t.Fatalf("replaced value = %v, want 9", v)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	l := New[int, int](0) // clamped to 1
	l.Put(1, 1)
	l.Put(2, 2)
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestLRUConcurrent(t *testing.T) {
	l := New[string, int](32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%64)
				if v, ok := l.Get(k); ok && v < 0 {
					t.Error("negative value")
					return
				}
				l.Put(k, i)
			}
		}(w)
	}
	wg.Wait()
	if l.Len() > 32 {
		t.Fatalf("Len = %d exceeds capacity", l.Len())
	}
}
