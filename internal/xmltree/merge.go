package xmltree

// Merge concatenates the documents of several trees into one mega-tree
// under a fresh dummy root, in argument order, and renumbers the result
// with the standard shared-counter scheme. Each input tree's documents
// (the children of its dummy root) become documents of the merged tree,
// so Merge(a, b) is equivalent to parsing a's documents followed by b's
// documents in one ParseCollection call.
//
// Because numbering is sequential and every document's labels are
// self-contained, a node at local position p in the k-th input tree
// lands at position p + offset(k) in the merged tree, where offset(k)
// is twice the total node count of the earlier inputs. The shard
// subsystem's compaction relies on exactly this: merging shards and
// re-summarizing is equivalent to having built one shard from the
// concatenated documents.
//
// Inputs are not modified. Merge of zero trees returns an empty tree
// (dummy root only).
func Merge(trees ...*Tree) *Tree {
	b := NewBuilder()
	for _, t := range trees {
		for doc := t.Nodes[0].FirstChild; doc != InvalidNode; doc = t.Nodes[doc].NextSibling {
			copySubtree(b, t, doc)
		}
	}
	return b.Tree()
}

// copySubtree replays the subtree rooted at id into the builder,
// preserving tags and text. Attribute nodes ("@name") are ordinary
// nodes in the source tree and copy through unchanged.
func copySubtree(b *Builder, t *Tree, id NodeID) {
	n := t.Node(id)
	b.Begin(n.Tag)
	if n.Text != "" {
		b.Text(n.Text)
	}
	for c := n.FirstChild; c != InvalidNode; c = t.Nodes[c].NextSibling {
		copySubtree(b, t, c)
	}
	b.End()
}
