package shard

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"xmlest/internal/core"
	"xmlest/internal/pattern"
)

// Prepared is a twig pattern compiled against one shard set: one
// core.PreparedQuery per serving unit. When a merged summary covers the
// set (see merged.go), the units are the single folded query plus one
// query per fresh tail shard appended after the fold — O(1) shards on
// the hot path; otherwise one query per shard that can resolve every
// predicate of the pattern. It is immutable and safe for concurrent
// use; its estimate is the unit sum, evaluated in fixed order so the
// result is bit-identical for every worker count.
type Prepared struct {
	set     *Set
	epoch   uint64
	merged  bool // queries[0] is a folded merged-summary query
	queries []*core.PreparedQuery
	workers int

	warmed atomic.Bool
}

// Prepare compiles the pattern against every shard summary for opts —
// the pure fan-out form, used directly for store-less (loaded) sets.
// Shards lacking one of the pattern's predicates are skipped (they
// contribute zero); a predicate unknown to every shard is an error.
func (s *Set) Prepare(p *pattern.Pattern, opts core.Options) (*Prepared, error) {
	sums, err := s.summaries(opts)
	if err != nil {
		return nil, err
	}
	names := patternNames(p)
	if err := checkResolvable(sums, names); err != nil {
		return nil, err
	}
	pr := &Prepared{set: s, workers: estimateWorkers(opts)}
	pr.queries = make([]*core.PreparedQuery, 0, len(sums))
	for _, est := range sums {
		if !hasAll(est, names) {
			continue
		}
		q, err := est.PrepareShared(p)
		if err != nil {
			return nil, err
		}
		pr.queries = append(pr.queries, q)
	}
	return pr, nil
}

// PrepareSet compiles the pattern against set, serving the covered
// prefix from the store's merged summary when one applies: the merged
// fold is exact with respect to the per-shard sum (block-diagonal
// histograms on the concatenated grid; see core.MergeSummaries), so the
// merged and fan-out bindings agree to float-accumulation order.
// Queries touching a predicate with mixed per-shard no-overlap state,
// options that disable merged serving, and sets without an applicable
// fold all fall back to pure fan-out.
func (st *Store) PrepareSet(set *Set, p *pattern.Pattern, opts core.Options) (*Prepared, error) {
	// Read the epoch before the view: if a fold completes in between,
	// the binding self-invalidates on its next use instead of serving a
	// stale plan forever.
	epoch := st.MergeEpoch()
	view := st.mergedFor(set, opts)
	if view == nil || opts.DisableMergedServing || set.Len() <= 1 {
		st.prepFanout.Add(1)
		pr, err := set.Prepare(p, opts)
		if err != nil {
			return nil, err
		}
		pr.epoch = epoch
		return pr, nil
	}
	names := patternNames(p)
	for _, name := range names {
		if view.mixed[name] {
			// The folded estimator cannot reproduce the per-shard
			// algorithm mix for this predicate; fan out.
			st.prepMixed.Add(1)
			pr, err := set.Prepare(p, opts)
			if err != nil {
				return nil, err
			}
			pr.epoch = epoch
			return pr, nil
		}
	}
	st.prepMerged.Add(1)

	// Fresh tail: shards appended after the fold.
	var tail []*core.Estimator
	for _, sh := range set.shards {
		if _, ok := view.covered[sh.id]; ok {
			continue
		}
		est, err := sh.Summary(opts)
		if err != nil {
			return nil, err
		}
		tail = append(tail, est)
	}
	for _, name := range names {
		if view.est.HasPredicate(name) {
			continue
		}
		found := false
		for _, est := range tail {
			if est.HasPredicate(name) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("shard: no histogram for predicate %q in any shard", name)
		}
	}

	pr := &Prepared{set: set, epoch: epoch, workers: estimateWorkers(opts)}
	pr.queries = make([]*core.PreparedQuery, 0, len(tail)+1)
	if hasAll(view.est, names) {
		// A name absent from every covered shard makes the whole prefix
		// contribute zero, exactly like fan-out skipping those shards —
		// in that case the merged query is omitted entirely.
		q, err := view.est.PrepareShared(p)
		if err != nil {
			return nil, err
		}
		pr.queries = append(pr.queries, q)
		pr.merged = true
	}
	for _, est := range tail {
		if !hasAll(est, names) {
			continue
		}
		q, err := est.PrepareShared(p)
		if err != nil {
			return nil, err
		}
		pr.queries = append(pr.queries, q)
	}
	return pr, nil
}

// estimateWorkers resolves Options.EstimateWorkers (0 = GOMAXPROCS).
func estimateWorkers(opts core.Options) int {
	if opts.EstimateWorkers > 0 {
		return opts.EstimateWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Set returns the shard set the query was prepared against, so callers
// can detect staleness and rebind.
func (pr *Prepared) Set() *Set { return pr.set }

// Epoch returns the merged-serving epoch the binding was built at;
// callers rebind when the store's epoch moves so a completed background
// fold is adopted without waiting for a set swap.
func (pr *Prepared) Epoch() uint64 { return pr.epoch }

// Merged reports whether the binding serves its covered prefix from a
// folded merged summary.
func (pr *Prepared) Merged() bool { return pr.merged }

// Units returns the number of compiled per-unit queries the estimate
// sums (1 for a fully merged binding).
func (pr *Prepared) Units() int { return len(pr.queries) }

// Estimate sums the per-unit estimates of the compiled twig. The first
// call on a multi-unit binding folds the units across a bounded worker
// pool (Options.EstimateWorkers) — the expensive part of a cold bind —
// then every call sums the cached per-unit values in fixed unit order,
// so the result is bit-identical for every worker count.
func (pr *Prepared) Estimate() (core.Result, error) {
	start := time.Now()
	if !pr.warmed.Load() {
		pr.warm()
	}
	out := core.Result{}
	for _, q := range pr.queries {
		est, noOv, err := q.Value()
		if err != nil {
			return core.Result{}, err
		}
		out.Estimate += est
		out.UsedNoOverlap = out.UsedNoOverlap || noOv
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// warm folds every unit once, in parallel across the worker pool when
// that can pay for the goroutine overhead. Errors are ignored here and
// re-surfaced deterministically by the serial Value pass.
func (pr *Prepared) warm() {
	forEachParallel(len(pr.queries), pr.workers, func(i int) {
		_, _, _ = pr.queries[i].Value()
	})
	pr.warmed.Store(true)
}
