package histogram

import (
	"math"
	"testing"

	"xmlest/internal/xmltree"
)

func TestCoverageMarshalRoundTrip(t *testing.T) {
	tr := xmltree.Fig1Document()
	grid := MustUniformGrid(4, tr.MaxPos)
	trueHist := BuildTrue(tr, grid)
	cov, err := BuildCoverage(tr, tr.NodesWithTag("faculty"), trueHist)
	if err != nil {
		t.Fatalf("BuildCoverage: %v", err)
	}
	blob, err := cov.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	got, err := UnmarshalCoverage(blob)
	if err != nil {
		t.Fatalf("UnmarshalCoverage: %v", err)
	}
	if !got.Grid().Equal(cov.Grid()) {
		t.Fatalf("grid lost")
	}
	if got.Entries() != cov.Entries() {
		t.Fatalf("entries = %d, want %d", got.Entries(), cov.Entries())
	}
	cov.EachFrac(func(i, j, m, n int, f float64) {
		if g := got.Frac(i, j, m, n); math.Abs(g-f) > 1e-15 {
			t.Errorf("Cvg[%d][%d][%d][%d] = %v, want %v", i, j, m, n, g, f)
		}
	})
}

func TestCoverageMarshalEmpty(t *testing.T) {
	cov := NewCoverage(MustUniformGrid(3, 30))
	blob, err := cov.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	got, err := UnmarshalCoverage(blob)
	if err != nil {
		t.Fatalf("UnmarshalCoverage: %v", err)
	}
	if got.Entries() != 0 {
		t.Errorf("entries = %d, want 0", got.Entries())
	}
}

func TestUnmarshalCoverageRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{'X'},
		{'C'},
		{'C', 3},          // truncated grid
		{'C', 3, 30, 200}, // bad entry count varint chain
	}
	for _, c := range cases {
		if _, err := UnmarshalCoverage(c); err == nil {
			t.Errorf("UnmarshalCoverage(%v): want error", c)
		}
	}
}

func TestCoverageSetFracDeletesZero(t *testing.T) {
	cov := NewCoverage(MustUniformGrid(3, 30))
	cov.SetFrac(0, 1, 0, 2, 0.5)
	if cov.Entries() != 1 {
		t.Fatalf("entries = %d, want 1", cov.Entries())
	}
	cov.SetFrac(0, 1, 0, 2, 0)
	if cov.Entries() != 0 {
		t.Errorf("zero SetFrac should delete the entry")
	}
	if cov.Frac(0, 1, 0, 2) != 0 {
		t.Errorf("deleted entry still readable")
	}
}
