package stream

import (
	"xmlest/internal/core"
	"xmlest/internal/shard"
)

// BuildEstimator runs the two-pass streaming build and wraps the
// resulting histograms into a catalog-less core.Estimator — the form a
// shard store can serve. No-overlap predicates are detected during the
// pass (Result.MayOverlap) but coverage histograms are not built, so
// estimation over a streamed summary uses the primitive algorithm; the
// document tree is never materialized.
func BuildEstimator(src Source, gridSize int, preds []EventPredicate) (*core.Estimator, *Result, error) {
	res, err := Build(src, gridSize, preds)
	if err != nil {
		return nil, nil, err
	}
	trueHist := res.Hists["TRUE"]
	est, err := core.NewEstimatorFromHistograms(trueHist, res.Hists, res.MayOverlap)
	if err != nil {
		return nil, nil, err
	}
	return est, res, nil
}

// AppendShard streams one XML source into a summary-only shard of the
// store: the ingest path for documents that exceed memory, landing with
// cost proportional to the new document only, like every other append.
func AppendShard(st *shard.Store, src Source, gridSize int, preds []EventPredicate) (*shard.Shard, *Result, error) {
	est, res, err := BuildEstimator(src, gridSize, preds)
	if err != nil {
		return nil, nil, err
	}
	sh, err := st.AppendSummary(est, 1, res.Nodes)
	if err != nil {
		return nil, nil, err
	}
	return sh, res, nil
}
