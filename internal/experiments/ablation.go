package experiments

import (
	"fmt"
	"io"
	"strings"

	"xmlest/internal/core"
	"xmlest/internal/match"
)

// Ablations beyond the paper's figures: they isolate the contribution
// of each design choice DESIGN.md calls out — coverage histograms,
// equi-depth (non-uniform) grids, and level histograms for parent-child
// edges. Grid size is held at the paper's 10 throughout.

// AblationRow compares estimators that differ in exactly one choice.
type AblationRow struct {
	Query string
	Real  float64

	Uniform   float64 // primitive estimate, uniform grid
	EquiDepth float64 // primitive estimate, equi-depth grid
	Coverage  float64 // no-overlap estimate (0 = N/A: overlapping ancestor)

	HasCoverage bool
}

// AblationGrid compares uniform against equi-depth bucket boundaries,
// and the primitive against the coverage algorithm, on the synthetic
// dataset's Table 4 queries.
func AblationGrid() ([]AblationRow, error) {
	s := Hier()
	uniform, err := core.NewEstimator(s.Catalog, core.Options{GridSize: 10})
	if err != nil {
		return nil, err
	}
	equi, err := core.NewEstimator(s.Catalog, core.Options{GridSize: 10, EquiDepth: true})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, q := range table4Queries {
		row := AblationRow{
			Query: displayName(q.anc) + "//" + displayName(q.desc),
			Real:  float64(s.RealPairs(q.anc, q.desc)),
		}
		ru, err := uniform.EstimatePairPrimitive(q.anc, q.desc)
		if err != nil {
			return nil, err
		}
		row.Uniform = ru.Estimate
		re, err := equi.EstimatePairPrimitive(q.anc, q.desc)
		if err != nil {
			return nil, err
		}
		row.EquiDepth = re.Estimate
		if uniform.NoOverlap(q.anc) {
			rc, err := uniform.EstimatePair(q.anc, q.desc)
			if err != nil {
				return nil, err
			}
			row.Coverage, row.HasCoverage = rc.Estimate, true
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ParentChildRow compares the ancestor-descendant estimate against the
// level-histogram parent-child estimate for child-axis queries.
type ParentChildRow struct {
	Query      string
	RealChild  float64 // exact parent-child count
	RealDesc   float64 // exact ancestor-descendant count
	AncDesc    float64 // position-histogram anc-desc estimate
	ParentChld float64 // level-histogram parent-child estimate
}

// AblationParentChild measures the level-histogram extension on the
// recursive synthetic dataset, where parent-child and
// ancestor-descendant counts differ most.
func AblationParentChild() ([]ParentChildRow, error) {
	s := Hier()
	est, err := core.NewEstimator(s.Catalog, core.Options{GridSize: 10, LevelHistograms: true})
	if err != nil {
		return nil, err
	}
	queries := []struct{ anc, desc string }{
		{"tag=manager", "tag=department"},
		{"tag=manager", "tag=employee"},
		{"tag=department", "tag=department"},
		{"tag=department", "tag=employee"},
		{"tag=employee", "tag=name"},
	}
	var rows []ParentChildRow
	for _, q := range queries {
		ancNodes := s.Catalog.MustGet(q.anc).Nodes
		descNodes := s.Catalog.MustGet(q.desc).Nodes
		row := ParentChildRow{
			Query:     displayName(q.anc) + "/" + displayName(q.desc),
			RealChild: float64(match.CountChildPairs(s.Tree, ancNodes, descNodes)),
			RealDesc:  float64(match.CountPairs(s.Tree, ancNodes, descNodes)),
		}
		ad, err := est.EstimatePairPrimitive(q.anc, q.desc)
		if err != nil {
			return nil, err
		}
		row.AncDesc = ad.Estimate
		pc, err := est.EstimatePairParentChild(q.anc, q.desc)
		if err != nil {
			return nil, err
		}
		row.ParentChld = pc.Estimate
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblation prints both ablations.
func RenderAblation(w io.Writer) error {
	rows, err := AblationGrid()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation A: grid shape and coverage (synthetic data, g=10)")
	fmt.Fprintln(w, strings.Repeat("-", 84))
	fmt.Fprintf(w, "%-24s %10s %12s %12s %12s\n",
		"query", "real", "uniform", "equi-depth", "coverage")
	for _, r := range rows {
		cov := "N/A"
		if r.HasCoverage {
			cov = fmt.Sprintf("%.0f", r.Coverage)
		}
		fmt.Fprintf(w, "%-24s %10.0f %12.0f %12.0f %12s\n",
			r.Query, r.Real, r.Uniform, r.EquiDepth, cov)
	}
	fmt.Fprintln(w)

	pcRows, err := AblationParentChild()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation B: parent-child estimation via level histograms (g=10)")
	fmt.Fprintln(w, strings.Repeat("-", 84))
	fmt.Fprintf(w, "%-24s %12s %12s %14s %14s\n",
		"query", "real child", "real desc", "anc-desc est", "parent-child")
	for _, r := range pcRows {
		fmt.Fprintf(w, "%-24s %12.0f %12.0f %14.0f %14.0f\n",
			r.Query, r.RealChild, r.RealDesc, r.AncDesc, r.ParentChld)
	}
	return nil
}
