package xmltree

// Fig1Document builds the example XML document of Fig 1 in the paper: a
// department with faculty, staff, a lecturer and a research scientist.
// The document has 3 faculty nodes and 5 TA nodes; the real answer size
// of the pattern faculty//TA is 2, of faculty//RA is 6, and exactly one
// faculty has both a TA and an RA (the query of Fig 2).
//
// The layout reconstructed from the figure:
//
//	department
//	  faculty            name RA
//	  staff              name
//	  faculty            name secretary RA RA RA
//	  lecturer           name TA TA TA
//	  faculty            name secretary TA RA RA TA
//	  research_scientist name secretary RA RA RA RA
func Fig1Document() *Tree {
	b := NewBuilder()
	person := func(tag string, children ...string) {
		b.Begin(tag)
		for _, c := range children {
			b.Element(c, "")
		}
		b.End()
	}
	b.Begin("department")
	person("faculty", "name", "RA")
	person("staff", "name")
	person("faculty", "name", "secretary", "RA", "RA", "RA")
	person("lecturer", "name", "TA", "TA", "TA")
	person("faculty", "name", "secretary", "TA", "RA", "RA", "TA")
	person("research_scientist", "name", "secretary", "RA", "RA", "RA", "RA")
	b.End()
	return b.Tree()
}
