package wal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// readDurableAll drains ReadDurable into memory, copying doc bytes.
func readDurableAll(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var recs []Record
	_, err := l.ReadDurable(after, func(rec Record) error {
		cp := Record{Seq: rec.Seq, Version: rec.Version}
		for _, d := range rec.Docs {
			cp.Docs = append(cp.Docs, bytes.Clone(d))
		}
		recs = append(recs, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("ReadDurable: %v", err)
	}
	return recs
}

func TestReadDurableCapsAtDurableWatermark(t *testing.T) {
	dir := t.TempDir()
	// ModeOff: appends land in the file but the durable watermark only
	// advances on explicit Sync — the gap ReadDurable must respect.
	l, err := Open(dir, Options{Mode: ModeOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		if _, err := l.Append(uint64(i+2), docs(fmt.Sprintf("<d n='%d'/>", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := readDurableAll(t, l, 0); len(got) != 0 {
		t.Fatalf("ReadDurable surfaced %d records past the durable watermark", len(got))
	}
	// ScanDir, by contrast, sees everything written — the over-read a
	// replication sender must not inherit.
	if got := collect(t, dir, 0); len(got) != 4 {
		t.Fatalf("ScanDir saw %d records, want 4", len(got))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got := readDurableAll(t, l, 0)
	if len(got) != 4 {
		t.Fatalf("after Sync: ReadDurable saw %d records, want 4", len(got))
	}
	for i, rec := range got {
		if rec.Seq != uint64(i+1) || rec.Version != uint64(i+2) {
			t.Fatalf("record %d: seq=%d version=%d", i, rec.Seq, rec.Version)
		}
	}
	// Partial sync state: two more appends, no sync — the cap holds at
	// the old watermark.
	if _, err := l.Append(10, docs("<x/>")); err != nil {
		t.Fatal(err)
	}
	if last, _ := l.ReadDurable(0, func(Record) error { return nil }); last != 4 {
		t.Fatalf("ReadDurable advanced to %d, want 4", last)
	}
}

func TestReadDurableConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rolls mid-test so the tailer crosses segment
	// boundaries while appends race it.
	l, err := Open(dir, Options{Mode: ModeAlways, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const total = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if _, err := l.Append(uint64(i+2), docs(fmt.Sprintf("<doc n='%d'>payload</doc>", i))); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()

	// Tail while the writer runs: every delivered record must be valid,
	// contiguous from the reader's position, and <= the durable
	// watermark loaded before the scan.
	var got []Record
	after := uint64(0)
	deadline := time.Now().Add(10 * time.Second)
	for after < total {
		if time.Now().After(deadline) {
			t.Fatalf("tail stalled at seq %d", after)
		}
		last, err := l.ReadDurable(after, func(rec Record) error {
			cp := Record{Seq: rec.Seq, Version: rec.Version}
			for _, d := range rec.Docs {
				cp.Docs = append(cp.Docs, bytes.Clone(d))
			}
			got = append(got, cp)
			return nil
		})
		if err != nil {
			t.Fatalf("ReadDurable: %v", err)
		}
		if last > l.DurableSeq() {
			t.Fatalf("delivered seq %d beyond durable watermark", last)
		}
		after = last
	}
	wg.Wait()
	if len(got) != total {
		t.Fatalf("tailed %d records, want %d", len(got), total)
	}
	for i, rec := range got {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d — tail skipped or duplicated", i, rec.Seq)
		}
		want := fmt.Sprintf("<doc n='%d'>payload</doc>", i)
		if len(rec.Docs) != 1 || string(rec.Docs[0]) != want {
			t.Fatalf("record %d: docs corrupted: %q", i, rec.Docs)
		}
	}
}

func TestReadDurableTruncatedPosition(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: ModeAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.Append(uint64(i+2), docs("<doc>some padding text here</doc>")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Truncate(8); err != nil {
		t.Fatal(err)
	}
	// Position 2 predates the truncation point: the records are gone and
	// the tailer must say so rather than silently skipping to seq 9.
	last, err := l.ReadDurable(2, func(rec Record) error { return nil })
	if err != nil && err != ErrTailTruncated {
		t.Fatalf("ReadDurable: %v", err)
	}
	if err == nil {
		// All segments holding 3..8 were removed, so the scan may also
		// legitimately start at the first surviving segment — but then it
		// must not have pretended to deliver the missing range.
		if last != 10 && last != 2 {
			t.Fatalf("ReadDurable returned last=%d without ErrTailTruncated", last)
		}
	}
}

func TestAppendReplicatedPreservesSeqAndVersion(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: ModeAlways})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Seq: 7, Version: 12, Docs: docs("<a/>")},
		{Seq: 8, Version: 13, Docs: docs("<b/>", "<c/>")},
		{Seq: 11, Version: 20, Docs: docs("<d/>")}, // gaps are legal (leader numbering floors)
	}
	if err := l.AppendReplicated(recs); err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 11 || l.DurableSeq() != 11 {
		t.Fatalf("last=%d durable=%d, want 11/11", l.LastSeq(), l.DurableSeq())
	}
	// Regressing or duplicate sequences are refused.
	if err := l.AppendReplicated([]Record{{Seq: 11, Version: 21, Docs: docs("<x/>")}}); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	if err := l.AppendReplicated([]Record{{Seq: 12, Version: 21, Docs: docs("<x/>")}, {Seq: 12, Version: 22, Docs: docs("<y/>")}}); err == nil {
		t.Fatal("non-increasing group accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: recovery sees the leader's numbering, and new local
	// appends continue above it.
	l2, err := Open(dir, Options{Mode: ModeAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, dir, 0)
	if len(got) != 3 || got[0].Seq != 7 || got[2].Seq != 11 || got[2].Version != 20 {
		t.Fatalf("round trip: %+v", got)
	}
	seq, err := l2.Append(21, docs("<e/>"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 12 {
		t.Fatalf("post-replication append got seq %d, want 12", seq)
	}
}
