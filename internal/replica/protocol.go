// Package replica implements leader/follower replication by shipping
// the write-ahead log over HTTP: a leader streams its durable WAL
// records (and, when the follower's position predates the checkpoint
// truncation point, a full snapshot — manifest plus XQS shard files)
// as a chunked sequence of CRC32C-framed messages, and a follower
// applies each record at its recorded ack version so both nodes serve
// bit-identical estimates at the same version.
//
// The wire protocol is deliberately dumb: one magic header, then
// self-delimiting frames `kind | len | crc32c | payload`. Frame CRCs
// are verified by the RECEIVER, above the transport seam — so the
// deterministic FaultTransport used by the chaos suite corrupts bytes
// exactly where a hostile network would, and the follower's refusal
// path (abort the stream, reconnect, re-request from its own durable
// watermark) is what gets tested, not the test harness's plumbing.
package replica

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// StreamPath is the leader's WAL streaming endpoint. Followers request
// it with `?from=<seq>&version=<v>`: from is the follower's durable WAL
// watermark (the stream resumes strictly after it) and version its
// serving-set version, which lets the leader detect a fresh follower
// that needs the pre-WAL state (bootstrap corpus) shipped as a
// snapshot.
const StreamPath = "/wal/stream"

// streamMagic opens every stream so a follower fails fast when pointed
// at something that is not a replication endpoint.
var streamMagic = [8]byte{'X', 'Q', 'R', 'S', '0', '0', '1', '\n'}

// Frame kinds, in the order a stream may carry them: a Hello always
// opens the stream; a snapshot (Manifest, ShardFile×N, SnapshotEnd)
// follows when the leader decided the follower needs one; then Record
// and Heartbeat frames interleave until the leader ends the stream
// with End (orderly — reconnect immediately) or the connection drops.
const (
	FrameHello       byte = 1
	FrameManifest    byte = 2
	FrameShardFile   byte = 3
	FrameSnapshotEnd byte = 4
	FrameRecord      byte = 5
	FrameHeartbeat   byte = 6
	FrameEnd         byte = 7
)

const (
	frameHeaderLen = 9 // kind byte + uint32 len + uint32 crc32c
	// maxFramePayload bounds one frame: shard files dominate, and a
	// single XQS summary is far below this. A corrupt length prefix
	// must not force a giant allocation on the receiver.
	maxFramePayload = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame is one protocol message. Payload is owned by the receiver.
type Frame struct {
	Kind    byte
	Payload []byte
	crc     uint32
}

// Verify re-checks the payload against the CRC that traveled with the
// frame. Receivers call this on every frame before trusting a byte of
// it; a mismatch means wire or middlebox corruption and the stream must
// be abandoned.
func (f Frame) Verify() bool {
	return crc32.Checksum(f.Payload, crcTable) == f.crc
}

// WriteMagic writes the stream preamble.
func WriteMagic(w io.Writer) error {
	_, err := w.Write(streamMagic[:])
	return err
}

// ReadMagic consumes and checks the stream preamble.
func ReadMagic(r io.Reader) error {
	var got [8]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return fmt.Errorf("replica: reading stream magic: %w", err)
	}
	if got != streamMagic {
		return fmt.Errorf("replica: bad stream magic %q (not a replication endpoint?)", got[:])
	}
	return nil
}

// WriteFrame frames and writes one message.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("replica: frame payload of %d bytes exceeds the %d-byte limit", len(payload), maxFramePayload)
	}
	var hdr [frameHeaderLen]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame. The CRC is NOT verified here — call
// Frame.Verify — so fault injection above the transport exercises the
// receiver's real corruption handling. io.EOF is returned untouched
// when the stream ends cleanly between frames; a tear inside a frame
// surfaces as io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return Frame{}, fmt.Errorf("replica: frame claims %d-byte payload (corrupt length)", n)
	}
	f := Frame{Kind: hdr[0], crc: binary.LittleEndian.Uint32(hdr[5:])}
	f.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return f, nil
}

// Hello is the stream's opening handshake: the leader's identity facts
// a follower must check (grid size — a mismatch can never converge) or
// track (durable seq and version, the lag denominators), plus whether a
// snapshot precedes the record tail.
type Hello struct {
	GridSize   int    `json:"grid_size"`
	DurableSeq uint64 `json:"durable_seq"`
	Version    uint64 `json:"version"`
	Snapshot   bool   `json:"snapshot"`
}

func encodeHello(h Hello) []byte {
	b, _ := json.Marshal(h) // fixed struct of scalars; cannot fail
	return b
}

func decodeHello(payload []byte) (Hello, error) {
	var h Hello
	if err := json.Unmarshal(payload, &h); err != nil {
		return Hello{}, fmt.Errorf("replica: bad hello frame: %w", err)
	}
	if h.GridSize <= 0 {
		return Hello{}, fmt.Errorf("replica: hello frame claims grid size %d", h.GridSize)
	}
	return h, nil
}

// Heartbeat payload: the leader's durable seq and serving version as
// two uvarints. Sent whenever the stream is idle so followers can
// measure lag (seq) and freshness (seconds) without traffic.
func encodeHeartbeat(durableSeq, version uint64) []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64)
	buf = binary.AppendUvarint(buf, durableSeq)
	return binary.AppendUvarint(buf, version)
}

func decodeHeartbeat(payload []byte) (durableSeq, version uint64, err error) {
	durableSeq, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, 0, fmt.Errorf("replica: bad heartbeat frame")
	}
	version, m := binary.Uvarint(payload[n:])
	if m <= 0 || n+m != len(payload) {
		return 0, 0, fmt.Errorf("replica: bad heartbeat frame")
	}
	return durableSeq, version, nil
}

// ShardFile payload: the manifest-relative file name (uvarint length
// prefix) followed by the raw XQS bytes.
func encodeShardFile(name string, data []byte) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+len(name)+len(data))
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	return append(buf, data...)
}

func decodeShardFile(payload []byte) (name string, data []byte, err error) {
	n, sz := binary.Uvarint(payload)
	if sz <= 0 || n > uint64(len(payload)-sz) {
		return "", nil, fmt.Errorf("replica: bad shard-file frame")
	}
	rest := payload[sz:]
	return string(rest[:n]), rest[n:], nil
}
