package trace

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"

	"xmlest/internal/metrics"
)

func TestSamplingStride(t *testing.T) {
	tr := New(Config{SampleEvery: 2})
	var sampled int
	for i := 0; i < 10; i++ {
		if tc := tr.Start(); tc != nil {
			sampled++
			tr.Finish(tc, "test", "id", time.Microsecond, 200)
		}
	}
	if sampled != 5 {
		t.Errorf("SampleEvery=2 sampled %d of 10, want 5", sampled)
	}
	if got := tr.SampleEvery(); got != 2 {
		t.Errorf("SampleEvery() = %d, want 2", got)
	}

	off := New(Config{SampleEvery: 0})
	for i := 0; i < 10; i++ {
		if off.Start() != nil {
			t.Fatal("SampleEvery=0 returned a non-nil trace")
		}
	}
	if got := off.SampleEvery(); got != 0 {
		t.Errorf("disabled SampleEvery() = %d, want 0", got)
	}
}

func TestNilSafety(t *testing.T) {
	// A nil Tracer and a nil Trace must both be inert.
	var tr *Tracer
	if tr.Start() != nil {
		t.Fatal("nil tracer returned a trace")
	}
	tr.Finish(nil, "e", "id", time.Second, 200)
	if tr.SampleEvery() != 0 {
		t.Error("nil tracer SampleEvery != 0")
	}

	var tc *Trace
	tc.Begin()
	tc.Step(StageDecode)
	tc.Add(StageEncode, time.Millisecond)
	if tc.breakdown() != "" {
		t.Error("nil trace breakdown not empty")
	}

	var r *Recorder
	r.Observe(StageDecode, time.Millisecond)
	if r.Histogram(StageDecode) != nil {
		t.Error("nil recorder returned a histogram")
	}
}

func TestRecorderObserveAndCollect(t *testing.T) {
	r := NewRecorder("test_stage_seconds", "help", StageDecode, StageEncode)
	r.Observe(StageDecode, time.Millisecond)
	r.Observe(StageDecode, 2*time.Millisecond)
	r.Observe(StageEncode, time.Microsecond)
	// Undeclared stage: ignored, no panic.
	r.Observe(StageParse, time.Second)

	if h := r.Histogram(StageDecode); h == nil || h.Summary().Count != 2 {
		t.Errorf("decode histogram = %+v, want 2 observations", h)
	}
	if r.Histogram(StageParse) != nil {
		t.Error("undeclared stage returned a histogram")
	}

	reg := metrics.NewRegistry()
	reg.Register(r)
	var buf bytes.Buffer
	if err := reg.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`test_stage_seconds_count{stage="decode"} 2`,
		`test_stage_seconds_count{stage="encode"} 1`,
		"# TYPE test_stage_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	if strings.Contains(text, `stage="parse"`) {
		t.Error("undeclared stage leaked into exposition")
	}
}

func TestFinishFeedsRecorder(t *testing.T) {
	r := NewRecorder("f_stage_seconds", "help", StageDecode, StageEncode)
	tr := New(Config{SampleEvery: 1, Recorder: r})
	tc := tr.Start()
	if tc == nil {
		t.Fatal("SampleEvery=1 returned nil")
	}
	tc.Begin()
	tc.Add(StageDecode, 3*time.Millisecond)
	tc.Add(StageEncode, time.Millisecond)
	tr.Finish(tc, "estimate", "rid", 5*time.Millisecond, 200)
	if got := r.Histogram(StageDecode).Summary().Count; got != 1 {
		t.Errorf("decode count = %d, want 1", got)
	}
	if got := r.Histogram(StageEncode).Summary().Count; got != 1 {
		t.Errorf("encode count = %d, want 1", got)
	}
}

func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := New(Config{SampleEvery: 1, SlowThreshold: time.Millisecond, Logger: logger})

	// Fast request: no log line.
	tr.Finish(tr.Start(), "estimate", "fast-1", 10*time.Microsecond, 200)
	if buf.Len() != 0 {
		t.Fatalf("fast request logged: %s", buf.String())
	}

	// Slow sampled request: logged with breakdown and request ID.
	tc := tr.Start()
	tc.Begin()
	tc.Add(StageDecode, 2*time.Millisecond)
	tr.Finish(tc, "estimate", "slow-1", 5*time.Millisecond, 200)
	line := buf.String()
	for _, want := range []string{"slow request", "slow-1", "endpoint=estimate", "stages=", "decode="} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log missing %q in %q", want, line)
		}
	}

	// Slow unsampled request (nil trace): still logged, no stage
	// breakdown.
	buf.Reset()
	tr.Finish(nil, "append", "slow-2", 9*time.Millisecond, 200)
	line = buf.String()
	if !strings.Contains(line, "slow-2") {
		t.Errorf("unsampled slow request not logged: %q", line)
	}
	if strings.Contains(line, "stages=") {
		t.Errorf("unsampled slow log has a stage breakdown: %q", line)
	}
}

func TestSlowLogRateLimit(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := New(Config{SampleEvery: 1, SlowThreshold: time.Microsecond, Logger: logger})
	for i := 0; i < 100; i++ {
		tr.Finish(nil, "estimate", "storm", time.Second, 200)
	}
	// The token bucket may straddle a second boundary during the loop,
	// so allow up to two buckets' worth.
	if got := strings.Count(buf.String(), "slow request"); got > 2*maxSlowLogsPerSec {
		t.Errorf("rate limiter let %d lines through, want <= %d", got, 2*maxSlowLogsPerSec)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context returned a trace")
	}
	tc := &Trace{}
	ctx := NewContext(context.Background(), tc)
	if got := FromContext(ctx); got != tc {
		t.Errorf("FromContext = %p, want %p", got, tc)
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
		if !strings.Contains(id, "-") {
			t.Fatalf("malformed request ID %q", id)
		}
	}
}

func TestTraceStepClock(t *testing.T) {
	tc := &Trace{}
	tc.Begin()
	time.Sleep(2 * time.Millisecond)
	tc.Step(StageDecode)
	tc.Step(StageEncode) // immediately after: near-zero
	if tc.n != 2 {
		t.Fatalf("recorded %d steps, want 2", tc.n)
	}
	if tc.durs[0] < time.Millisecond {
		t.Errorf("decode duration %v, want >= 1ms", tc.durs[0])
	}
	if tc.durs[1] > tc.durs[0] {
		t.Errorf("encode %v longer than decode %v despite immediate Step", tc.durs[1], tc.durs[0])
	}
	bd := tc.breakdown()
	if !strings.HasPrefix(bd, "decode=") || !strings.Contains(bd, " encode=") {
		t.Errorf("breakdown = %q, want decode then encode", bd)
	}
}

func TestTraceStepOverflow(t *testing.T) {
	tc := &Trace{}
	tc.Begin()
	for i := 0; i < maxSteps+4; i++ {
		tc.Add(StageDecode, time.Microsecond)
	}
	if tc.n != maxSteps {
		t.Errorf("n = %d, want capped at %d", tc.n, maxSteps)
	}
}
