package fsio

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// OpKind classifies the mutating operations FaultFS counts. Reads
// (ReadFile, ReadDir, Stat) are never counted or faulted: fault
// schedules index only the operations that can change what is on disk.
type OpKind int

const (
	OpCreate OpKind = iota // OpenFile with os.O_CREATE
	OpWrite
	OpSync
	OpSyncDir
	OpRename
	OpRemove
	OpTruncate
	OpMkdir
)

func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpSyncDir:
		return "syncdir"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpMkdir:
		return "mkdir"
	}
	return "unknown"
}

// Op records one counted mutating operation. Index is 1-based and
// global across the FaultFS, so a chaos sweep can replay a workload and
// schedule a fault at every index it observed.
type Op struct {
	Index uint64
	Kind  OpKind
	Path  string
}

// Faults is a deterministic fault schedule.
//
// The zero value injects nothing. Schedules compose: FailOp, the sync
// gate and the ENOSPC budget are all checked on every operation.
type Faults struct {
	// FailOp fails the counted operation with this 1-based global
	// index (0 disables). The failed operation does not reach the
	// underlying filesystem (except for the prefix of a torn write).
	FailOp uint64
	// Torn applies to FailOp when that operation is a write: half the
	// buffer lands on disk before the error, modeling a torn write.
	Torn bool
	// Sticky extends FailOp: every counted operation at or after
	// FailOp fails, modeling a disk that never comes back.
	Sticky bool
	// SyncFailAfter, when > 0, makes the Nth sync (file fsync or
	// directory fsync, shared counter) and every later one fail.
	// Per the Postgres fsync-gate lesson, a failed file fsync also
	// permanently marks the file's then-unsynced bytes as lost: the
	// kernel dropped those dirty pages, so no later "successful" sync
	// ever makes them durable.
	SyncFailAfter uint64
	// ENOSPCAfter, when > 0, is a cumulative byte budget for writes:
	// once spent, writes land whatever prefix still fits and fail with
	// ENOSPC, and every later write fails.
	ENOSPCAfter int64
	// Err overrides the injected error for FailOp and the sync gate
	// (default syscall.EIO). ENOSPC failures always use syscall.ENOSPC.
	Err error
}

// ErrPowerCut is returned by every operation attempted after PowerCut.
var ErrPowerCut = fmt.Errorf("fsio: simulated power cut")

// ParseFaults parses a fault-schedule flag value: comma-separated
// clauses from
//
//	fail-op=N          fail the Nth counted op with EIO
//	torn               the failing op, if a write, lands half first
//	sticky             every op from fail-op on fails
//	sync-fail-after=N  the Nth fsync (file or dir) and all later fail
//	enospc-after=BYTES writes past a cumulative budget fail with ENOSPC
//
// e.g. "sync-fail-after=3" or "fail-op=17,torn".
func ParseFaults(spec string) (Faults, error) {
	var f Faults
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, hasVal := strings.Cut(clause, "=")
		switch key {
		case "torn":
			f.Torn = true
		case "sticky":
			f.Sticky = true
		case "fail-op", "sync-fail-after", "enospc-after":
			if !hasVal {
				return Faults{}, fmt.Errorf("fsio: fault clause %q needs a value", clause)
			}
			n, err := strconv.ParseUint(val, 10, 63)
			if err != nil {
				return Faults{}, fmt.Errorf("fsio: fault clause %q: %w", clause, err)
			}
			switch key {
			case "fail-op":
				f.FailOp = n
			case "sync-fail-after":
				f.SyncFailAfter = n
			case "enospc-after":
				f.ENOSPCAfter = int64(n)
			}
		default:
			return Faults{}, fmt.Errorf("fsio: unknown fault clause %q", clause)
		}
	}
	return f, nil
}

// fileState tracks what a power cut would preserve of one file.
type fileState struct {
	size   int64 // current content length
	synced int64 // length guaranteed durable (advanced by successful Sync)
	// frozen, when >= 0, caps synced forever: a file fsync failed at
	// that offset and the kernel dropped the dirty pages beyond it.
	// Cleared only by truncating the file to or below the mark (the
	// lost range no longer exists; fresh writes are fresh pages).
	frozen int64
	// linked reports whether the file's directory entry is durable —
	// true for pre-existing files, and set when the parent directory
	// is synced. An unlinked file vanishes entirely at a power cut.
	linked bool
}

// renameUndo records a rename whose directory entry is not yet durable.
type renameUndo struct {
	dir        string // parent directory whose sync commits the rename
	from, to   string
	clobbered  []byte // previous content of to, if it existed
	hadTarget  bool
	fromLinked bool // whether from's entry was durable pre-rename
}

// FaultFS wraps a base FS and injects deterministic faults. It also
// models a strict power-cut: unsynced bytes are truncated away,
// unsynced directory entries (creates, renames) are reverted, and the
// filesystem goes dead. The model is strict — stricter in places than
// any one real filesystem — so that protocols passing under it are
// sound on all of them. (Two deliberate simplifications: directory
// creations persist, and un-dir-synced removals are not resurrected;
// neither can mask an acked-or-absent violation in this engine, since
// recovery skips WAL segments at or below the manifest's sequence.)
type FaultFS struct {
	base FS

	mu      sync.Mutex
	faults  Faults
	nOps    uint64
	ops     []Op
	syncs   uint64
	written int64
	dead    bool
	files   map[string]*fileState
	renames []renameUndo
}

// NewFaultFS wraps base with the given fault schedule.
func NewFaultFS(base FS, faults Faults) *FaultFS {
	return &FaultFS{base: base, faults: faults, files: make(map[string]*fileState)}
}

// SetFaults replaces the fault schedule. The op counter keeps running,
// so FailOp indexes remain global: arm a future fault with
// OpCount() + k.
func (x *FaultFS) SetFaults(f Faults) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.faults = f
}

// ClearFaults disables all injected faults (the op counter keeps
// running).
func (x *FaultFS) ClearFaults() { x.SetFaults(Faults{}) }

// OpCount reports how many mutating operations have been counted.
func (x *FaultFS) OpCount() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.nOps
}

// Ops returns the counted operation log.
func (x *FaultFS) Ops() []Op {
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]Op(nil), x.ops...)
}

// PowerCut simulates pulling the plug: every tracked file is truncated
// to its durable length, unsynced renames are reverted, files whose
// directory entries were never synced are removed, and the FaultFS
// goes dead — all subsequent operations fail with ErrPowerCut (Close
// still closes real handles so tests can release descriptors).
// Recovery then reopens the directory with a fresh FS.
func (x *FaultFS) PowerCut() {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.dead {
		return
	}
	x.dead = true
	// 1) Content: drop unsynced bytes.
	for path, st := range x.files {
		durable := st.synced
		if st.frozen >= 0 && st.frozen < durable {
			durable = st.frozen
		}
		if st.size > durable {
			_ = x.base.Truncate(path, durable)
		}
	}
	// 2) Dirents: revert renames never committed by a directory sync,
	// restoring any clobbered target (a power cut mid-rename leaves
	// the old entry — the adversarial choice for atomic-replace
	// protocols).
	for i := len(x.renames) - 1; i >= 0; i-- {
		u := x.renames[i]
		_ = x.base.Rename(u.to, u.from)
		if st, ok := x.files[u.to]; ok {
			delete(x.files, u.to)
			st.linked = u.fromLinked
			x.files[u.from] = st
		}
		if u.hadTarget {
			_ = x.base.WriteFile(u.to, u.clobbered, 0o644)
		}
	}
	x.renames = nil
	// 3) Dirents: files created since the last parent-directory sync
	// never became findable.
	for path, st := range x.files {
		if !st.linked {
			_ = x.base.Remove(path)
		}
	}
}

// count records one mutating op and returns its decision: a non-nil
// error to inject, and whether to tear (for writes).
func (x *FaultFS) count(kind OpKind, path string) (uint64, error) {
	x.nOps++
	idx := x.nOps
	x.ops = append(x.ops, Op{Index: idx, Kind: kind, Path: path})
	if x.dead {
		return idx, ErrPowerCut
	}
	f := x.faults
	if f.FailOp != 0 && (idx == f.FailOp || (f.Sticky && idx > f.FailOp)) {
		return idx, x.injectedErr(kind, path)
	}
	return idx, nil
}

func (x *FaultFS) injectedErr(kind OpKind, path string) error {
	err := x.faults.Err
	if err == nil {
		err = syscall.EIO
	}
	return fmt.Errorf("fsio: injected fault (%s %s): %w", kind, path, err)
}

// syncGate applies the sticky fsync fault. Caller holds mu and has
// already counted the op.
func (x *FaultFS) syncGate(kind OpKind, path string) error {
	x.syncs++
	if x.faults.SyncFailAfter != 0 && x.syncs >= x.faults.SyncFailAfter {
		return x.injectedErr(kind, path)
	}
	return nil
}

// track returns (creating if needed) the state for path.
func (x *FaultFS) track(path string, existed bool, size int64) *fileState {
	st, ok := x.files[path]
	if !ok {
		st = &fileState{frozen: -1}
		if existed {
			// Pre-existing file: its dirent and current content are
			// assumed durable.
			st.linked = true
			st.size = size
			st.synced = size
		}
		x.files[path] = st
	}
	return st
}

type faultFile struct {
	fs   *FaultFS
	f    File
	path string
}

func (x *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	x.mu.Lock()
	creating := flag&os.O_CREATE != 0
	var existed bool
	var size int64
	if fi, err := x.base.Stat(name); err == nil {
		existed = true
		size = fi.Size()
	}
	if creating {
		if _, err := x.count(OpCreate, name); err != nil {
			x.mu.Unlock()
			return nil, err
		}
	} else if x.dead {
		x.mu.Unlock()
		return nil, ErrPowerCut
	}
	f, err := x.base.OpenFile(name, flag, perm)
	if err != nil {
		x.mu.Unlock()
		return nil, err
	}
	st := x.track(name, existed, size)
	if flag&os.O_TRUNC != 0 {
		// Truncation discards the content — including any fsync-lost
		// range — so the freeze lifts and the durable length resets.
		st.size, st.synced, st.frozen = 0, 0, -1
	}
	x.mu.Unlock()
	return &faultFile{fs: x, f: f, path: name}, nil
}

func (f *faultFile) Name() string { return f.path }

func (f *faultFile) Write(p []byte) (int, error) {
	x := f.fs
	x.mu.Lock()
	defer x.mu.Unlock()
	st := x.track(f.path, false, 0)
	if _, err := x.count(OpWrite, f.path); err != nil {
		n := 0
		if x.faults.Torn && len(p) > 1 && !x.dead {
			// Torn write: half the buffer lands before the error.
			n, _ = f.f.Write(p[:len(p)/2])
			st.size += int64(n)
			x.written += int64(n)
		}
		return n, err
	}
	if b := x.faults.ENOSPCAfter; b > 0 {
		if free := b - x.written; free < int64(len(p)) {
			n := 0
			if free > 0 {
				n, _ = f.f.Write(p[:free])
			}
			st.size += int64(n)
			x.written += int64(n)
			return n, fmt.Errorf("fsio: injected fault (write %s): %w", f.path, syscall.ENOSPC)
		}
	}
	n, err := f.f.Write(p)
	st.size += int64(n)
	x.written += int64(n)
	return n, err
}

func (f *faultFile) Sync() error {
	x := f.fs
	x.mu.Lock()
	defer x.mu.Unlock()
	st := x.track(f.path, false, 0)
	if _, err := x.count(OpSync, f.path); err != nil {
		x.freezeLocked(st)
		return err
	}
	if err := x.syncGate(OpSync, f.path); err != nil {
		x.freezeLocked(st)
		return err
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	if st.frozen < 0 {
		st.synced = st.size
	}
	return nil
}

// freezeLocked records that a file fsync failed: the unsynced range is
// permanently lost, whatever later syncs report.
func (x *FaultFS) freezeLocked(st *fileState) {
	if st.frozen < 0 {
		st.frozen = st.synced
	}
}

func (f *faultFile) Truncate(size int64) error {
	x := f.fs
	x.mu.Lock()
	defer x.mu.Unlock()
	st := x.track(f.path, false, 0)
	if _, err := x.count(OpTruncate, f.path); err != nil {
		return err
	}
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	st.size = size
	if st.synced > size {
		st.synced = size
	}
	if st.frozen >= size {
		st.frozen = -1
	}
	return nil
}

func (f *faultFile) Close() error {
	// Close always reaches the base handle, even after a power cut:
	// tests must be able to release descriptors.
	return f.f.Close()
}

func (x *FaultFS) ReadFile(name string) ([]byte, error) {
	x.mu.Lock()
	dead := x.dead
	x.mu.Unlock()
	if dead {
		return nil, ErrPowerCut
	}
	return x.base.ReadFile(name)
}

func (x *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	x.mu.Lock()
	dead := x.dead
	x.mu.Unlock()
	if dead {
		return nil, ErrPowerCut
	}
	return x.base.ReadDir(name)
}

func (x *FaultFS) Stat(name string) (os.FileInfo, error) {
	x.mu.Lock()
	dead := x.dead
	x.mu.Unlock()
	if dead {
		return nil, ErrPowerCut
	}
	return x.base.Stat(name)
}

func (x *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, err := x.count(OpMkdir, path); err != nil {
		return err
	}
	return x.base.MkdirAll(path, perm)
}

func (x *FaultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	f, err := x.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (x *FaultFS) Rename(oldpath, newpath string) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, err := x.count(OpRename, oldpath); err != nil {
		return err
	}
	var clobbered []byte
	hadTarget := false
	if data, err := x.base.ReadFile(newpath); err == nil {
		clobbered = data
		hadTarget = true
	}
	if err := x.base.Rename(oldpath, newpath); err != nil {
		return err
	}
	st := x.track(oldpath, false, 0)
	delete(x.files, oldpath)
	fromLinked := st.linked
	if old, ok := x.files[newpath]; ok && old.linked {
		// Replacing a durable entry: the name survives a power cut
		// (holding either old or new content).
		st.linked = true
	} else {
		st.linked = false
	}
	x.files[newpath] = st
	x.renames = append(x.renames, renameUndo{
		dir: filepath.Dir(newpath), from: oldpath, to: newpath,
		clobbered: clobbered, hadTarget: hadTarget, fromLinked: fromLinked,
	})
	return nil
}

func (x *FaultFS) Remove(name string) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, err := x.count(OpRemove, name); err != nil {
		return err
	}
	if err := x.base.Remove(name); err != nil {
		return err
	}
	delete(x.files, name)
	return nil
}

func (x *FaultFS) Truncate(name string, size int64) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, err := x.count(OpTruncate, name); err != nil {
		return err
	}
	if err := x.base.Truncate(name, size); err != nil {
		return err
	}
	var existed bool
	var fsize int64
	if fi, err := x.base.Stat(name); err == nil {
		existed, fsize = true, fi.Size()
	}
	st := x.track(name, existed, fsize)
	st.size = size
	if st.synced > size {
		st.synced = size
	}
	if st.frozen >= size {
		st.frozen = -1
	}
	return nil
}

func (x *FaultFS) SyncDir(dir string) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, err := x.count(OpSyncDir, dir); err != nil {
		return err
	}
	if err := x.syncGate(OpSyncDir, dir); err != nil {
		return err
	}
	if err := x.base.SyncDir(dir); err != nil {
		return err
	}
	// The directory's entries are now durable: link its files and
	// commit its pending renames.
	for path, st := range x.files {
		if filepath.Dir(path) == dir {
			st.linked = true
		}
	}
	kept := x.renames[:0]
	for _, u := range x.renames {
		if u.dir != dir {
			kept = append(kept, u)
		}
	}
	x.renames = kept
	return nil
}

// OpsByKind filters the op log, preserving order.
func (x *FaultFS) OpsByKind(kind OpKind) []Op {
	all := x.Ops()
	out := all[:0]
	for _, op := range all {
		if op.Kind == kind {
			out = append(out, op)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
