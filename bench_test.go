// Benchmarks regenerating the paper's evaluation. One benchmark per
// table and figure (the quantity timed is the estimation work the
// paper's "Est Time" columns report), plus micro-benchmarks of the
// underlying machinery (histogram construction, the pH-Join inner loop
// across grid sizes, exact counting as the comparator).
//
// Run: go test -bench=. -benchmem
package xmlest_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"xmlest"
	"xmlest/internal/accuracy"
	"xmlest/internal/core"
	"xmlest/internal/datagen"
	"xmlest/internal/exec"
	"xmlest/internal/experiments"
	"xmlest/internal/histogram"
	"xmlest/internal/match"
	"xmlest/internal/pattern"
	"xmlest/internal/planner"
	"xmlest/internal/stream"
	"xmlest/internal/xmltree"
)

// BenchmarkRunningExample times the faculty//TA walk-through (Fig 1,
// 2×2 grids): both estimation algorithms on the toy document.
func BenchmarkRunningExample(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunExample(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1CatalogBuild times building the full DBLP predicate
// catalog (the per-predicate node lists Table 1 reports on).
func BenchmarkTable1CatalogBuild(b *testing.B) {
	b.ReportAllocs()
	tree := experiments.DBLP().Tree
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat := datagen.DBLPCatalog(tree)
		if cat.Len() == 0 {
			b.Fatal("empty catalog")
		}
	}
}

// BenchmarkTable2 times each Table 2 query's estimation (primitive and
// no-overlap variants), on the paper's 10×10 grids.
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	s := experiments.DBLP()
	queries := []struct{ anc, desc string }{
		{"tag=article", "tag=author"},
		{"tag=article", "tag=cdrom"},
		{"tag=article", "tag=cite"},
		{"tag=book", "tag=cdrom"},
	}
	for _, q := range queries {
		b.Run(fmt.Sprintf("%s_%s/overlap", q.anc[4:], q.desc[4:]), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Estimator.EstimatePairPrimitive(q.anc, q.desc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s_%s/nooverlap", q.anc[4:], q.desc[4:]), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Estimator.EstimatePair(q.anc, q.desc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4 times each Table 4 query's estimation on the
// synthetic manager/department/employee dataset.
func BenchmarkTable4(b *testing.B) {
	b.ReportAllocs()
	s := experiments.Hier()
	queries := []struct{ anc, desc string }{
		{"tag=manager", "tag=department"},
		{"tag=manager", "tag=employee"},
		{"tag=manager", "tag=email"},
		{"tag=department", "tag=employee"},
		{"tag=department", "tag=email"},
		{"tag=employee", "tag=name"},
		{"tag=employee", "tag=email"},
	}
	for _, q := range queries {
		b.Run(q.anc[4:]+"_"+q.desc[4:], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Estimator.EstimatePair(q.anc, q.desc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11GridSweep times one full Fig 11 sweep: for every grid
// size, histogram construction plus the department//email primitive
// estimate.
func BenchmarkFig11GridSweep(b *testing.B) {
	b.ReportAllocs()
	experiments.Hier() // build outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := experiments.Fig11(); len(pts) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkFig12GridSweep times one full Fig 12 sweep: position and
// coverage histogram construction plus the article//cdrom no-overlap
// estimate per grid size.
func BenchmarkFig12GridSweep(b *testing.B) {
	b.ReportAllocs()
	experiments.DBLP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := experiments.Fig12(); len(pts) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkTheorem1Sweep times the non-zero-cell scaling measurement.
func BenchmarkTheorem1Sweep(b *testing.B) {
	b.ReportAllocs()
	experiments.DBLP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := experiments.Theorem1(); len(pts) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkTheorem2Sweep times the partial-coverage scaling measurement.
func BenchmarkTheorem2Sweep(b *testing.B) {
	b.ReportAllocs()
	experiments.DBLP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := experiments.Theorem2(); len(pts) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkPHJoin isolates the three-pass pH-Join (Fig 9) across grid
// sizes: the paper's O(g) estimation-time claim.
func BenchmarkPHJoin(b *testing.B) {
	b.ReportAllocs()
	s := experiments.DBLP()
	anc := s.Catalog.MustGet("tag=article").Nodes
	desc := s.Catalog.MustGet("tag=author").Nodes
	for _, g := range []int{10, 20, 50, 100} {
		grid := histogram.MustUniformGrid(g, s.Tree.MaxPos)
		ha := histogram.BuildPosition(s.Tree, anc, grid)
		hb := histogram.BuildPosition(s.Tree, desc, grid)
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.PHJoin(ha, hb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHistogramBuild times constructing the position histogram of
// the largest DBLP predicate (author, 41,501 nodes) at 10×10.
func BenchmarkHistogramBuild(b *testing.B) {
	b.ReportAllocs()
	s := experiments.DBLP()
	nodes := s.Catalog.MustGet("tag=author").Nodes
	grid := histogram.MustUniformGrid(10, s.Tree.MaxPos)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := histogram.BuildPosition(s.Tree, nodes, grid)
		if h.Total() == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkCoverageBuild times constructing the coverage histogram for
// the article predicate (a full sweep over all ~150k tree nodes).
func BenchmarkCoverageBuild(b *testing.B) {
	b.ReportAllocs()
	s := experiments.DBLP()
	nodes := s.Catalog.MustGet("tag=article").Nodes
	grid := histogram.MustUniformGrid(10, s.Tree.MaxPos)
	trueHist := histogram.BuildTrue(s.Tree, grid)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := histogram.BuildCoverage(s.Tree, nodes, trueHist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactCount times the ground-truth structural join the
// estimates are validated against — the cost an estimator avoids.
func BenchmarkExactCount(b *testing.B) {
	b.ReportAllocs()
	s := experiments.DBLP()
	anc := s.Catalog.MustGet("tag=article").Nodes
	desc := s.Catalog.MustGet("tag=author").Nodes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := match.CountPairs(s.Tree, anc, desc); n == 0 {
			b.Fatal("no pairs")
		}
	}
}

// BenchmarkTwigEstimate times a 4-node twig estimate (the Fig 2 shape)
// on the synthetic dataset.
func BenchmarkTwigEstimate(b *testing.B) {
	b.ReportAllocs()
	s := experiments.Hier()
	p := pattern.MustParse("//manager//department[.//employee]//email")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Estimator.EstimateTwig(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanEnumeration times join-order enumeration with
// intermediate estimates for a 4-node twig (the optimizer use case).
func BenchmarkPlanEnumeration(b *testing.B) {
	b.ReportAllocs()
	s := experiments.Hier()
	p := pattern.MustParse("//manager//department[.//employee]//email")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Enumerate(s.Estimator, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseAndNumber times XML parsing plus interval numbering on
// a mid-sized generated document — the ingest path.
func BenchmarkParseAndNumber(b *testing.B) {
	b.ReportAllocs()
	tree := datagen.GenerateDBLP(datagen.DBLPConfig{Seed: 1, Scale: 0.02})
	var buf []byte
	{
		var sb fmt.Stringer
		_ = sb
		w := &writerBuffer{}
		if err := xmltree.WriteXML(w, tree, tree.Root()); err != nil {
			b.Fatal(err)
		}
		buf = w.data
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xmltree.ParseString(string(buf)); err != nil {
			b.Fatal(err)
		}
	}
}

type writerBuffer struct{ data []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

// BenchmarkEstimatorBuild times full summary construction (all
// histograms and coverages) for the DBLP catalog at 10×10 — the
// build-time cost the paper amortizes across queries.
func BenchmarkEstimatorBuild(b *testing.B) {
	b.ReportAllocs()
	s := experiments.DBLP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewEstimator(s.Catalog, core.Options{GridSize: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCoverage isolates the cost of the coverage (Fig 10)
// algorithm against the primitive pH-Join on the same query — the
// space-time price of the better estimate.
func BenchmarkAblationCoverage(b *testing.B) {
	b.ReportAllocs()
	s := experiments.DBLP()
	b.Run("primitive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Estimator.EstimatePairPrimitive("tag=article", "tag=cdrom"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("coverage", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Estimator.EstimatePair("tag=article", "tag=cdrom"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPrecomputedCoefficients compares the three-pass
// pH-Join against reusing pre-computed per-cell coefficients — the
// space-time trade-off the paper describes after Fig 9.
func BenchmarkAblationPrecomputedCoefficients(b *testing.B) {
	b.ReportAllocs()
	s := experiments.DBLP()
	grid := histogram.MustUniformGrid(50, s.Tree.MaxPos)
	ha := histogram.BuildPosition(s.Tree, s.Catalog.MustGet("tag=article").Nodes, grid)
	hb := histogram.BuildPosition(s.Tree, s.Catalog.MustGet("tag=author").Nodes, grid)
	b.Run("three-pass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.PHJoin(ha, hb); err != nil {
				b.Fatal(err)
			}
		}
	})
	coef := core.AncestorCoefficients(hb)
	b.Run("precomputed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var total float64
			ha.EachNonZero(func(x, y int, c float64) {
				total += c * coef.Count(x, y)
			})
			if total == 0 {
				b.Fatal("zero estimate")
			}
		}
	})
}

// BenchmarkAblationGridShape compares estimator construction with
// uniform and equi-depth bucket boundaries.
func BenchmarkAblationGridShape(b *testing.B) {
	b.ReportAllocs()
	s := experiments.Hier()
	for name, opts := range map[string]core.Options{
		"uniform":   {GridSize: 10},
		"equidepth": {GridSize: 10, EquiDepth: true},
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewEstimator(s.Catalog, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParentChildEstimate times the level-histogram parent-child
// estimation extension.
func BenchmarkParentChildEstimate(b *testing.B) {
	b.ReportAllocs()
	s := experiments.Hier()
	est, err := core.NewEstimator(s.Catalog, core.Options{GridSize: 10, LevelHistograms: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimatePairParentChild("tag=department", "tag=employee"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStructuralJoin times the pair-producing stack-tree join (the
// execution-side comparator for the counting-only CountPairs), plus the
// parent-child pair counter on the same predicate lists (its sorted
// binary-search lookup replaced a per-call hash map).
func BenchmarkStructuralJoin(b *testing.B) {
	b.ReportAllocs()
	s := experiments.DBLP()
	anc := s.Catalog.MustGet("tag=article").Nodes
	desc := s.Catalog.MustGet("tag=cdrom").Nodes
	b.Run("pairs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if pairs := match.StructuralJoin(s.Tree, anc, desc); len(pairs) == 0 {
				b.Fatal("no pairs")
			}
		}
	})
	b.Run("countchild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if n := match.CountChildPairs(s.Tree, anc, desc); n == 0 {
				b.Fatal("no child pairs")
			}
		}
	})
}

// BenchmarkFindTwigMatches times bounded twig enumeration (first page
// of results), the workload of the online-feedback scenario.
func BenchmarkFindTwigMatches(b *testing.B) {
	b.ReportAllocs()
	s := experiments.DBLP()
	resolve := func(name string) ([]xmltree.NodeID, error) {
		e, err := s.Catalog.Get(name)
		if err != nil {
			return nil, err
		}
		return e.Nodes, nil
	}
	p := pattern.MustParse("//article[.//author]//cite")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := match.FindTwigMatches(s.Tree, p, resolve, 20)
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkSummaryPersistence times summary serialization and loading.
func BenchmarkSummaryPersistence(b *testing.B) {
	b.ReportAllocs()
	s := experiments.DBLP()
	blob, err := s.Estimator.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Estimator.MarshalBinary(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmarshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.UnmarshalEstimator(blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExecutePlan times executing the estimate-optimal plan for a
// 3-node twig on the synthetic dataset — the work the estimator's plan
// choice governs.
func BenchmarkExecutePlan(b *testing.B) {
	b.ReportAllocs()
	s := experiments.Hier()
	p := pattern.MustParse("//manager//department//employee")
	plans, err := planner.Enumerate(s.Estimator, p)
	if err != nil {
		b.Fatal(err)
	}
	resolve := func(name string) ([]xmltree.NodeID, error) {
		e, err := s.Catalog.Get(name)
		if err != nil {
			return nil, err
		}
		return e.Nodes, nil
	}
	b.Run("best", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exec.Execute(s.Tree, p, plans[0], resolve); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("worst", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exec.Execute(s.Tree, p, plans[len(plans)-1], resolve); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkErrorProfileWorkload times evaluating the all-pairs workload
// (estimation only) on the synthetic dataset.
func BenchmarkErrorProfileWorkload(b *testing.B) {
	b.ReportAllocs()
	s := experiments.Hier()
	w := accuracy.PairWorkload(s.Catalog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range w {
			p := pattern.MustParse(q)
			if _, err := s.Estimator.EstimateTwig(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStreamIngest times the two-pass streaming histogram build on
// serialized XML — the bounded-memory ingest path.
func BenchmarkStreamIngest(b *testing.B) {
	b.ReportAllocs()
	tree := datagen.GenerateDBLP(datagen.DBLPConfig{Seed: 1, Scale: 0.02})
	var buf bytesBuffer
	if err := xmltree.WriteXML(&buf, tree, tree.Root()); err != nil {
		b.Fatal(err)
	}
	doc := buf.data
	src := func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(doc)), nil
	}
	preds := []stream.EventPredicate{
		stream.TagPred{Tag: "article"},
		stream.TagPred{Tag: "author"},
	}
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stream.Build(src, 10, preds); err != nil {
			b.Fatal(err)
		}
	}
}

type bytesBuffer struct{ data []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

// BenchmarkFacadeEstimate times the public-API path end to end on a
// hot query (the compiled-query cache absorbs the parse and the joins
// after the first call).
func BenchmarkFacadeEstimate(b *testing.B) {
	b.ReportAllocs()
	db := xmlest.FromCatalog(experiments.DBLP().Catalog)
	est, err := db.NewEstimator(xmlest.Options{GridSize: 10})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate("//article//author"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledEstimate times a PreparedQuery on a hot path — the
// explicit Compile API the facade's cache is built from.
func BenchmarkCompiledEstimate(b *testing.B) {
	b.ReportAllocs()
	db := xmlest.FromCatalog(experiments.DBLP().Catalog)
	est, err := db.NewEstimator(xmlest.Options{GridSize: 10})
	if err != nil {
		b.Fatal(err)
	}
	pq, err := est.Compile("//article[.//author]//cite")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pq.Estimate(); err != nil {
			b.Fatal(err)
		}
	}
}
