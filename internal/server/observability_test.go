package server

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"xmlest/internal/trace"
)

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSample: 1})

	// Drive a couple of requests so histograms and stage recorders have
	// samples.
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate: HTTP %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want prometheus 0.0.4 text", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE xqest_http_requests_total counter",
		`xqest_http_requests_total{endpoint="estimate"} 3`,
		"xqest_build_info{",
		"xqest_estimate_stage_seconds_bucket{",
		`stage="decode"`,
		"xqest_shards ",
		"go_goroutines ",
		"xqest_pattern_requests_total{",
		"xqest_uptime_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The scrape itself must be instrumented too.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body2), `xqest_http_requests_total{endpoint="metrics"} 1`) {
		t.Error("second scrape does not count the first /metrics request")
	}
}

func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Client-supplied ID is echoed.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(trace.RequestIDHeader, "client-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(trace.RequestIDHeader); got != "client-abc-123" {
		t.Errorf("echoed request ID = %q, want client-abc-123", got)
	}

	// No client ID: the server generates one.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(trace.RequestIDHeader); got == "" {
		t.Error("no generated request ID on response")
	}
}

func TestSlowRequestLogged(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	_, ts := newTestServer(t, Config{
		Logger:      logger,
		TraceSample: 1,
		SlowRequest: time.Nanosecond, // everything is slow
	})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/estimate",
		strings.NewReader(`{"pattern":"//faculty//TA"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.RequestIDHeader, "slow-req-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	out := buf.String()
	for _, want := range []string{"slow request", "slow-req-7", "endpoint=estimate", "stages="} {
		if !strings.Contains(out, want) {
			t.Errorf("slow log missing %q in:\n%s", want, out)
		}
	}
}

func TestStatsIncludesPatternsAndBuild(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 4; i++ {
		resp := postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"})
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//staff"})
	resp.Body.Close()

	stats := decode[StatsResponse](t, httpGet(t, ts.URL+"/stats"))
	if stats.Build == "" {
		t.Error("stats missing build info")
	}
	if len(stats.Patterns) < 2 {
		t.Fatalf("stats patterns = %+v, want at least 2", stats.Patterns)
	}
	if stats.Patterns[0].Pattern != "//faculty//TA" || stats.Patterns[0].Requests != 4 {
		t.Errorf("top pattern = %+v, want //faculty//TA ×4", stats.Patterns[0])
	}
}

func httpGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// syncBuffer is a mutex-guarded bytes.Buffer usable as an slog sink
// from handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
