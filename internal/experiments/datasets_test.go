package experiments

import (
	"math"
	"testing"

	"xmlest/internal/core"
	"xmlest/internal/datagen"
	"xmlest/internal/match"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// The paper reports results "substantially similar" to DBLP on the
// XMark and Shakespeare datasets without tabulating them; these
// integration tests run the full pipeline on our shaped equivalents and
// assert the same shape claims.

func runDatasetQueries(t *testing.T, tr *xmltree.Tree, queries [][2]string) {
	t.Helper()
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	est, err := core.NewEstimator(cat, core.Options{GridSize: 10})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	for _, q := range queries {
		anc, desc := "tag="+q[0], "tag="+q[1]
		real := float64(match.CountPairs(tr, cat.MustGet(anc).Nodes, cat.MustGet(desc).Nodes))
		if real == 0 {
			t.Fatalf("%s//%s: degenerate query for this dataset", q[0], q[1])
		}
		naive := float64(cat.MustGet(anc).Count()) * float64(cat.MustGet(desc).Count())
		res, err := est.EstimatePair(anc, desc)
		if err != nil {
			t.Fatalf("%s//%s: %v", q[0], q[1], err)
		}
		if res.Estimate <= 0 || math.IsNaN(res.Estimate) {
			t.Errorf("%s//%s: bad estimate %v", q[0], q[1], res.Estimate)
		}
		// The estimate must improve on naive except where naive is
		// already essentially exact (single-ancestor queries like
		// regions//item, where the product equals the real count).
		if naive > 2*real && math.Abs(res.Estimate-real) >= math.Abs(naive-real) {
			t.Errorf("%s//%s: estimate %v no better than naive %v (real %v)",
				q[0], q[1], res.Estimate, naive, real)
		}
		// Within an order of magnitude on these regular structures.
		if ratio := res.Estimate / real; ratio < 0.1 || ratio > 10 {
			t.Errorf("%s//%s: estimate %v vs real %v (ratio %v)",
				q[0], q[1], res.Estimate, real, ratio)
		}
	}
}

func TestShakespeareDataset(t *testing.T) {
	tr := datagen.GenerateShakespeare(3, 4)
	runDatasetQueries(t, tr, [][2]string{
		{"PLAY", "SPEECH"},
		{"ACT", "LINE"},
		{"SCENE", "SPEAKER"},
		{"SPEECH", "LINE"},
	})
}

func TestXMarkDataset(t *testing.T) {
	tr := datagen.GenerateXMark(3, 60)
	runDatasetQueries(t, tr, [][2]string{
		{"regions", "item"},
		{"item", "listitem"},
		{"people", "emailaddress"},
		{"open_auction", "bidder"},
	})
}

// TestMultiDocumentDatabase exercises the dummy-root merge with one
// estimator across heterogeneous documents.
func TestMultiDocumentDatabase(t *testing.T) {
	sh := datagen.GenerateShakespeare(1, 1)
	xm := datagen.GenerateXMark(1, 10)
	// Merge by rebuilding under one root.
	b := xmltree.NewBuilder()
	var copyNode func(src *xmltree.Tree, id xmltree.NodeID)
	copyNode = func(src *xmltree.Tree, id xmltree.NodeID) {
		n := src.Node(id)
		b.Begin(n.Tag)
		if n.Text != "" {
			b.Text(n.Text)
		}
		for c := n.FirstChild; c != xmltree.InvalidNode; c = src.Node(c).NextSibling {
			copyNode(src, c)
		}
		b.End()
	}
	for _, doc := range sh.Children(sh.Root()) {
		copyNode(sh, doc)
	}
	for _, doc := range xm.Children(xm.Root()) {
		copyNode(xm, doc)
	}
	tr := b.Tree()
	if err := tr.Validate(); err != nil {
		t.Fatalf("merged tree invalid: %v", err)
	}
	runDatasetQueries(t, tr, [][2]string{
		{"SPEECH", "LINE"},
		{"item", "listitem"},
	})
	// Cross-document queries have zero results; the estimator must not
	// hallucinate mass across disjoint documents... estimates should be
	// far below the within-document counts.
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	// A grid fine enough to separate the two documents' position
	// ranges: the estimate of a cross-document pair must collapse.
	est, err := core.NewEstimator(cat, core.Options{GridSize: 40})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	res, err := est.EstimatePair("tag=PLAY", "tag=item")
	if err != nil {
		t.Fatalf("cross estimate: %v", err)
	}
	naive := float64(cat.MustGet("tag=PLAY").Count() * cat.MustGet("tag=item").Count())
	if res.Estimate > naive/5 {
		t.Errorf("cross-document estimate %v should be far below naive %v", res.Estimate, naive)
	}
}
