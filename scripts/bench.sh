#!/usr/bin/env bash
# Runs the tracked performance benchmarks and records them into
# BENCH_PR3.json: the PR 1/2 microbenchmark series (ns/op) plus the
# PR 3 serving series — xqbench driving a live xqestd daemon and
# reporting sustained estimate QPS, p50/p95/p99 latency and
# append-to-visible staleness under concurrent ingest.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=2s scripts/bench.sh      # override -benchtime
#   SERVE_SECONDS=10 scripts/bench.sh  # longer serving run
#   SKIP_SERVING=1 scripts/bench.sh    # microbenchmarks only
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR3.json}"
benchtime="${BENCHTIME:-1s}"
serve_seconds="${SERVE_SECONDS:-5}"
addr="127.0.0.1:${BENCH_PORT:-18791}"
pattern='^(BenchmarkEstimatorBuild|BenchmarkPHJoin|BenchmarkTwigEstimate|BenchmarkFacadeEstimate|BenchmarkCompiledEstimate|BenchmarkAppendToVisible|BenchmarkAppendRebuildMonolithic|BenchmarkShardedEstimate|BenchmarkCompact)(/.+)?$'

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" . | tee "$workdir/micro.txt"

if [[ -z "${SKIP_SERVING:-}" ]]; then
  echo "== serving benchmark: xqbench against xqestd on $addr =="
  go build -o "$workdir/xqestd" ./cmd/xqestd
  go build -o "$workdir/xqbench" ./cmd/xqbench
  "$workdir/xqestd" -dataset dblp -scale 0.05 -addr "$addr" -autocompact 1s \
    >"$workdir/xqestd.log" 2>&1 &
  daemon_pid=$!
  "$workdir/xqbench" -addr "http://$addr" -duration "${serve_seconds}s" \
    -estimators 8 -appenders 2 -o "$workdir/serving.json"
  kill -INT "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
  daemon_pid=""
else
  printf 'null\n' > "$workdir/serving.json"
fi

{
  awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
    /^goos:/   { goos = $2 }
    /^goarch:/ { goarch = $2 }
    /^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
    /^Benchmark/ {
      name = $1
      sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
      ns[++count] = sprintf("    \"%s\": %s", name, $3)
    }
    END {
      printf "{\n"
      printf "  \"date\": \"%s\",\n", date
      printf "  \"goos\": \"%s\",\n", goos
      printf "  \"goarch\": \"%s\",\n", goarch
      printf "  \"cpu\": \"%s\",\n", cpu
      printf "  \"ns_per_op\": {\n"
      for (i = 1; i <= count; i++)
        printf "%s%s\n", ns[i], (i < count ? "," : "")
      printf "  },\n"
      printf "  \"serving\": "
    }
  ' "$workdir/micro.txt"
  cat "$workdir/serving.json"
  printf "}\n"
} > "$out"

echo "wrote $out"
