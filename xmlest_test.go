package xmlest_test

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmlest"
	"xmlest/internal/datagen"
	"xmlest/internal/xmltree"
)

const facultyDoc = `<department>
	<faculty><name/><RA/></faculty>
	<staff><name/></staff>
	<faculty><name/><secretary/><RA/><RA/><RA/></faculty>
	<lecturer><name/><TA/><TA/><TA/></lecturer>
	<faculty><name/><secretary/><TA/><RA/><RA/><TA/></faculty>
	<research_scientist><name/><secretary/><RA/><RA/><RA/><RA/></research_scientist>
</department>`

func openFig1(t *testing.T) *xmlest.Database {
	t.Helper()
	db, err := xmlest.Open(strings.NewReader(facultyDoc))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	db.AddAllTagPredicates()
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := openFig1(t)
	real, err := db.Count("//faculty//TA")
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if real != 2 {
		t.Fatalf("real = %v, want 2", real)
	}
	est, err := db.NewEstimator(xmlest.Options{GridSize: 2})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	res, err := est.Estimate("//faculty//TA")
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if math.Abs(res.Estimate-real) > 1 {
		t.Errorf("estimate %v too far from real %v", res.Estimate, real)
	}
	if res.Elapsed <= 0 {
		t.Errorf("Elapsed not recorded")
	}
}

func TestBaselinesViaFacade(t *testing.T) {
	db := openFig1(t)
	naive, err := db.Naive("//faculty//TA")
	if err != nil {
		t.Fatalf("Naive: %v", err)
	}
	if naive != 15 {
		t.Errorf("naive = %v, want 15", naive)
	}
	bound, ok, err := db.SchemaUpperBound("//faculty//TA")
	if err != nil || !ok || bound != 5 {
		t.Errorf("SchemaUpperBound = %v ok=%v err=%v, want 5 true nil", bound, ok, err)
	}
	if _, ok, _ := db.SchemaUpperBound("//department//faculty[.//TA][.//RA]"); ok {
		t.Errorf("SchemaUpperBound on a twig: want ok=false")
	}
}

func TestCustomPredicates(t *testing.T) {
	doc := `<db><rec><year>1985</year></rec><rec><year>1995</year></rec><rec><year>1984</year></rec></db>`
	db, err := xmlest.Open(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	db.AddAllTagPredicates()
	db.AddPredicate(xmlest.Named{Alias: "1980's", Inner: xmlest.And{Parts: []xmlest.Predicate{
		xmlest.Tag{Value: "year"}, xmlest.NumericRange{Lo: 1980, Hi: 1989},
	}}})
	real, err := db.Count("//rec//{1980's}")
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if real != 2 {
		t.Errorf("real = %v, want 2", real)
	}
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	res, err := est.Estimate("//rec//{1980's}")
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if res.Estimate <= 0 {
		t.Errorf("estimate = %v, want > 0", res.Estimate)
	}
}

func TestOpenFiles(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.xml")
	p2 := filepath.Join(dir, "b.xml")
	if err := os.WriteFile(p1, []byte(`<a><x/></a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p2, []byte(`<a><y/></a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := xmlest.OpenFiles(p1, p2)
	if err != nil {
		t.Fatalf("OpenFiles: %v", err)
	}
	db.AddAllTagPredicates()
	real, err := db.Count("//a//x")
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if real != 1 {
		t.Errorf("real = %v, want 1", real)
	}
	if _, err := xmlest.OpenFiles(filepath.Join(dir, "missing.xml")); err == nil {
		t.Errorf("missing file: want error")
	}
}

func TestFromCatalogWithGeneratedData(t *testing.T) {
	tr := datagen.GenerateDBLP(datagen.DBLPConfig{Seed: 3, Scale: 0.01})
	db := xmlest.FromCatalog(datagen.DBLPCatalog(tr))
	est, err := db.NewEstimator(xmlest.Options{GridSize: 10})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	real, err := db.Count("//article//author")
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	res, err := est.Estimate("//article//author")
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if real <= 0 || res.Estimate <= 0 {
		t.Fatalf("degenerate: real=%v est=%v", real, res.Estimate)
	}
	if ratio := res.Estimate / real; ratio < 0.5 || ratio > 2 {
		t.Errorf("article//author ratio = %v, want within [0.5, 2]", ratio)
	}
}

func TestEstimatePrimitiveRequiresPair(t *testing.T) {
	db := openFig1(t)
	est, err := db.NewEstimator(xmlest.Options{GridSize: 2})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	if _, err := est.EstimatePrimitive("//a[.//b]//c"); err == nil {
		t.Errorf("3-node pattern: want error")
	}
}

func TestParticipationFacade(t *testing.T) {
	db := openFig1(t)
	parts, err := db.Participation("//faculty//TA")
	if err != nil {
		t.Fatalf("Participation: %v", err)
	}
	if len(parts) != 2 || parts[0] != 1 || parts[1] != 2 {
		t.Errorf("participation = %v, want [1 2]", parts)
	}
}

func TestOpenRejectsBadXML(t *testing.T) {
	if _, err := xmlest.Open(strings.NewReader("<a><b></a>")); err == nil {
		t.Errorf("malformed XML: want error")
	}
}

func TestEstimatorPersistenceFacade(t *testing.T) {
	db := openFig1(t)
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	blob, err := est.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	loaded, err := xmlest.LoadEstimator(blob)
	if err != nil {
		t.Fatalf("LoadEstimator: %v", err)
	}
	a, err := est.Estimate("//faculty//TA")
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	b, err := loaded.Estimate("//faculty//TA")
	if err != nil {
		t.Fatalf("loaded Estimate: %v", err)
	}
	if math.Abs(a.Estimate-b.Estimate) > 1e-12 {
		t.Errorf("loaded estimate %v != original %v", b.Estimate, a.Estimate)
	}
	if _, err := xmlest.LoadEstimator([]byte("junk")); err == nil {
		t.Errorf("LoadEstimator(junk): want error")
	}
}

func TestFindFacade(t *testing.T) {
	db := openFig1(t)
	matches, err := db.Find("//faculty//TA", 0)
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	if len(matches) != 2 {
		t.Errorf("matches = %d, want 2", len(matches))
	}
	limited, err := db.Find("//faculty//RA", 3)
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	if len(limited) != 3 {
		t.Errorf("limited = %d, want 3", len(limited))
	}
}

func TestFromTree(t *testing.T) {
	db := xmlest.FromTree(xmltree.Fig1Document())
	db.AddAllTagPredicates()
	real, err := db.Count("//department//faculty")
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if real != 3 {
		t.Errorf("real = %v, want 3", real)
	}
}
