// Package histogram implements the paper's summary data structures:
// position histograms over (start, end) interval-label space
// (Section 3.1), coverage histograms for no-overlap predicates
// (Section 4.2), the TRUE histogram used to normalize counts into
// probabilities, and compound-predicate histogram synthesis
// (Section 3.4). It also provides the compact sparse binary encoding
// used for the paper's storage-requirement measurements.
package histogram

import (
	"fmt"
	"math"
	"sort"
)

// Grid partitions the position axis [0, MaxPos) into buckets. The same
// partition is applied to both the start axis (X) and the end axis (Y)
// of a position histogram. Buckets are half-open: bucket i covers
// [bounds[i], bounds[i+1]).
//
// The paper's experiments use uniform grids; equi-depth boundaries
// (mentioned as tech-report/future work) are provided as an extension.
type Grid struct {
	bounds []int
}

// NewUniformGrid builds a grid with g equal-width buckets over
// [0, maxPos). g must be >= 1 and maxPos >= g.
func NewUniformGrid(g, maxPos int) (Grid, error) {
	if g < 1 {
		return Grid{}, fmt.Errorf("histogram: grid size %d < 1", g)
	}
	if maxPos < g {
		return Grid{}, fmt.Errorf("histogram: maxPos %d < grid size %d", maxPos, g)
	}
	if maxPos > math.MaxInt/g {
		// The boundary formula computes i*maxPos; reject positions that
		// would overflow it (labels are ~2× the node count in practice,
		// nowhere near this).
		return Grid{}, fmt.Errorf("histogram: maxPos %d too large for grid size %d", maxPos, g)
	}
	bounds := make([]int, g+1)
	for i := 0; i <= g; i++ {
		// Spread remainder evenly so bucket widths differ by at most 1.
		bounds[i] = i * maxPos / g
	}
	return Grid{bounds: bounds}, nil
}

// NewGrid builds a grid from explicit bucket boundaries: bounds[i] is
// the inclusive lower edge of bucket i, bounds[len-1] the exclusive
// upper edge of the position space. Boundaries must start at 0 and be
// strictly increasing. The shard subsystem uses explicit bounds to
// build document-aligned monolithic grids — grids whose buckets never
// span a document boundary — which make cross-shard estimate summation
// exact (see DESIGN.md, "Shard lifecycle").
func NewGrid(bounds []int) (Grid, error) {
	if len(bounds) < 2 {
		return Grid{}, fmt.Errorf("histogram: grid needs at least 2 boundaries, got %d", len(bounds))
	}
	if bounds[0] != 0 {
		return Grid{}, fmt.Errorf("histogram: grid boundaries must start at 0, got %d", bounds[0])
	}
	own := make([]int, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			return Grid{}, fmt.Errorf("histogram: grid boundaries not strictly increasing at index %d", i)
		}
	}
	return Grid{bounds: own}, nil
}

// MustGrid is NewGrid for statically valid boundaries.
func MustGrid(bounds []int) Grid {
	grid, err := NewGrid(bounds)
	if err != nil {
		panic(err)
	}
	return grid
}

// MustUniformGrid is NewUniformGrid for statically valid arguments.
func MustUniformGrid(g, maxPos int) Grid {
	grid, err := NewUniformGrid(g, maxPos)
	if err != nil {
		panic(err)
	}
	return grid
}

// NewEquiDepthGrid builds a grid whose bucket boundaries place roughly
// equal numbers of the given sample positions in each bucket. positions
// need not be sorted. This is the non-uniform-grid extension the paper
// defers to the tech report.
func NewEquiDepthGrid(g int, positions []int, maxPos int) (Grid, error) {
	if g < 1 {
		return Grid{}, fmt.Errorf("histogram: grid size %d < 1", g)
	}
	if maxPos < g {
		return Grid{}, fmt.Errorf("histogram: maxPos %d < grid size %d", maxPos, g)
	}
	if len(positions) == 0 {
		return NewUniformGrid(g, maxPos)
	}
	sorted := make([]int, len(positions))
	copy(sorted, positions)
	sort.Ints(sorted)
	bounds := make([]int, 0, g+1)
	bounds = append(bounds, 0)
	for i := 1; i < g; i++ {
		q := sorted[i*len(sorted)/g]
		if q <= bounds[len(bounds)-1] {
			q = bounds[len(bounds)-1] + 1
		}
		if q >= maxPos {
			break
		}
		bounds = append(bounds, q)
	}
	bounds = append(bounds, maxPos)
	// Degenerate samples can collapse buckets; pad with uniform splits
	// of the widest remaining bucket until we have g buckets again.
	for len(bounds) < g+1 {
		widest, at := 0, 0
		for i := 0; i+1 < len(bounds); i++ {
			if w := bounds[i+1] - bounds[i]; w > widest {
				widest, at = w, i
			}
		}
		if widest < 2 {
			break // cannot split further; fewer buckets than requested
		}
		mid := bounds[at] + widest/2
		bounds = append(bounds, 0)
		copy(bounds[at+2:], bounds[at+1:])
		bounds[at+1] = mid
	}
	return Grid{bounds: bounds}, nil
}

// Size returns the number of buckets g.
func (g Grid) Size() int { return len(g.bounds) - 1 }

// MaxPos returns the exclusive upper bound of the position space.
func (g Grid) MaxPos() int { return g.bounds[len(g.bounds)-1] }

// Bounds returns the g+1 bucket boundaries. The returned slice is
// shared; callers must not modify it.
func (g Grid) Bounds() []int { return g.bounds }

// Bucket returns the index of the bucket containing pos. pos must be in
// [0, MaxPos).
func (g Grid) Bucket(pos int) int {
	// sort.SearchInts finds the first bound > pos; the bucket is one
	// before it.
	i := sort.SearchInts(g.bounds, pos+1) - 1
	if i < 0 {
		i = 0
	}
	if i >= g.Size() {
		i = g.Size() - 1
	}
	return i
}

// Lo and Hi return the half-open extent [Lo, Hi) of bucket i.
func (g Grid) Lo(i int) int { return g.bounds[i] }
func (g Grid) Hi(i int) int { return g.bounds[i+1] }

// OnDiagonal reports whether grid cell (i, j) is on-diagonal per the
// paper's Definition 1: the start-position interval and end-position
// interval intersect. Buckets partition the axis, so this is exactly
// i == j.
func (g Grid) OnDiagonal(i, j int) bool { return i == j }

// Equal reports whether two grids have identical boundaries. Join
// estimation requires both operand histograms to share a grid.
func (g Grid) Equal(h Grid) bool {
	if len(g.bounds) != len(h.bounds) {
		return false
	}
	for i := range g.bounds {
		if g.bounds[i] != h.bounds[i] {
			return false
		}
	}
	return true
}
