package datagen

import (
	"bytes"
	"math"
	"testing"

	"xmlest/internal/xmltree"
)

func TestGenerateDBLPMatchesTable1(t *testing.T) {
	tr := GenerateDBLP(DefaultDBLPConfig)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cat := DBLPCatalog(tr)

	// Exact Table 1 cardinalities at scale 1.
	exact := map[string]int{
		"tag=article": 7366,
		"tag=author":  41501,
		"tag=book":    408,
		"tag=cdrom":   1722,
		"tag=cite":    33097,
		"tag=title":   19921,
		"tag=url":     19542,
		"tag=year":    19914,
		"conf":        13609,
		"journal":     7834,
		"1980's":      13066,
		"1990's":      3963,
	}
	for name, want := range exact {
		if got := cat.MustGet(name).Count(); got != want {
			t.Errorf("%s count = %d, want %d", name, got, want)
		}
	}
	// Overlap properties of Table 1: every element-tag predicate is
	// no-overlap in DBLP.
	for _, name := range []string{"tag=article", "tag=author", "tag=book", "tag=cdrom",
		"tag=cite", "tag=title", "tag=url", "tag=year"} {
		if !cat.MustGet(name).NoOverlap {
			t.Errorf("%s should be no-overlap", name)
		}
	}
}

func TestGenerateDBLPDeterministic(t *testing.T) {
	cfg := DBLPConfig{Seed: 7, Scale: 0.01}
	a := GenerateDBLP(cfg)
	b := GenerateDBLP(cfg)
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	for i := range a.Nodes {
		if a.Nodes[i].Tag != b.Nodes[i].Tag || a.Nodes[i].Start != b.Nodes[i].Start {
			t.Fatalf("node %d differs between runs", i)
		}
	}
}

func TestGenerateDBLPScale(t *testing.T) {
	tr := GenerateDBLP(DBLPConfig{Seed: 1, Scale: 0.05})
	cat := DBLPCatalog(tr)
	got := cat.MustGet("tag=article").Count()
	want := int(math.Round(7366 * 0.05))
	if got != want {
		t.Errorf("scaled article count = %d, want %d", got, want)
	}
}

func TestGenerateHierMatchesTable3(t *testing.T) {
	tr := GenerateHier(DefaultHierConfig)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cat := HierCatalog(tr)

	// Table 3 cardinalities are generation targets, not exact: accept
	// ±40% while requiring the right relative magnitudes.
	targets := map[string]int{
		"tag=manager":    44,
		"tag=department": 270,
		"tag=employee":   473,
		"tag=email":      173,
		"tag=name":       1002,
	}
	for name, want := range targets {
		got := cat.MustGet(name).Count()
		lo, hi := int(math.Floor(0.6*float64(want))), int(math.Ceil(1.4*float64(want)))
		if got < lo || got > hi {
			t.Errorf("%s count = %d, want within [%d, %d] (paper: %d)", name, got, lo, hi, want)
		}
	}
	// Overlap properties must match Table 3 exactly.
	for name, wantNoOverlap := range map[string]bool{
		"tag=manager":    false,
		"tag=department": false,
		"tag=employee":   true,
		"tag=email":      true,
		"tag=name":       true,
	} {
		if got := cat.MustGet(name).NoOverlap; got != wantNoOverlap {
			t.Errorf("%s NoOverlap = %v, want %v", name, got, wantNoOverlap)
		}
	}
}

func TestParseDTDAndGenerate(t *testing.T) {
	d, err := ParseDTD(ManagerDTD)
	if err != nil {
		t.Fatalf("ParseDTD: %v", err)
	}
	if len(d.Elements) != 5 {
		t.Fatalf("elements = %d, want 5", len(d.Elements))
	}
	tr, err := d.Generate(GenConfig{Seed: 3, Root: "manager", MaxDepth: 8, MaxNodes: 500})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.NumNodes() < 3 {
		t.Fatalf("generated tree too small: %d nodes", tr.NumNodes())
	}
	// DTD conformance spot checks: every employee has >= 1 name child
	// and no child other than name/email; manager's first child is name.
	for _, e := range tr.NodesWithTag("employee") {
		kids := tr.Children(e)
		names := 0
		for _, k := range kids {
			switch tr.Node(k).Tag {
			case "name":
				names++
			case "email":
			default:
				t.Fatalf("employee has unexpected child %q", tr.Node(k).Tag)
			}
		}
		if names < 1 {
			t.Fatalf("employee without name")
		}
	}
	for _, m := range tr.NodesWithTag("manager") {
		kids := tr.Children(m)
		if len(kids) < 2 {
			t.Fatalf("manager must have name plus at least one of (manager|department|employee)")
		}
		if tr.Node(kids[0]).Tag != "name" {
			t.Fatalf("manager's first child = %q, want name", tr.Node(kids[0]).Tag)
		}
	}
	for _, dep := range tr.NodesWithTag("department") {
		employees := 0
		for _, k := range tr.Children(dep) {
			if tr.Node(k).Tag == "employee" {
				employees++
			}
		}
		if employees < 1 {
			t.Fatalf("department without employee")
		}
	}
}

func TestParseDTDErrors(t *testing.T) {
	bad := []string{
		``,
		`<!ELEMENT a (b)>`, // b undeclared
		`<!ELEMENT a (b,>`, // malformed
		`<!ELEMENT a (#PCDATA)> <!ELEMENT a (EMPTY)>`,                                      // duplicate... second also malformed
		`<!ELEMENT a (b | c, d)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>`, // mixed , |
		`<!ELEMENT a (#PCDATA)> <!ELEMENT b (a`,
	}
	for _, src := range bad {
		if _, err := ParseDTD(src); err == nil {
			t.Errorf("ParseDTD(%q): want error", src)
		}
	}
}

func TestDTDGenerateUnknownRoot(t *testing.T) {
	d, err := ParseDTD(`<!ELEMENT a (#PCDATA)>`)
	if err != nil {
		t.Fatalf("ParseDTD: %v", err)
	}
	if _, err := d.Generate(GenConfig{Root: "zzz"}); err == nil {
		t.Errorf("unknown root: want error")
	}
}

func TestDTDDepthBudgetTerminates(t *testing.T) {
	// Unbounded mutual recursion must terminate via MaxDepth steering.
	src := `<!ELEMENT a (b)> <!ELEMENT b (a | c)> <!ELEMENT c (#PCDATA)>`
	d, err := ParseDTD(src)
	if err != nil {
		t.Fatalf("ParseDTD: %v", err)
	}
	tr, err := d.Generate(GenConfig{Seed: 1, Root: "a", MaxDepth: 6, MaxNodes: 10000})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if s := tr.Stats(); s.MaxDepth > 10 {
		t.Errorf("depth budget not honoured: max depth %d", s.MaxDepth)
	}
}

func TestGenerateExtraDatasets(t *testing.T) {
	sh := GenerateShakespeare(1, 2)
	if err := sh.Validate(); err != nil {
		t.Fatalf("shakespeare: %v", err)
	}
	if got := len(sh.NodesWithTag("PLAY")); got != 2 {
		t.Errorf("plays = %d, want 2", got)
	}
	if len(sh.NodesWithTag("LINE")) == 0 || len(sh.NodesWithTag("SPEECH")) == 0 {
		t.Errorf("shakespeare lacks speeches/lines")
	}

	xm := GenerateXMark(1, 10)
	if err := xm.Validate(); err != nil {
		t.Fatalf("xmark: %v", err)
	}
	if got := len(xm.NodesWithTag("item")); got != 40 {
		t.Errorf("items = %d, want 40 (10 per region)", got)
	}
	if len(xm.NodesWithTag("open_auction")) == 0 {
		t.Errorf("xmark lacks auctions")
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	tr := GenerateDBLP(DBLPConfig{Seed: 5, Scale: 0.002})
	var buf bytes.Buffer
	if err := xmltree.WriteXML(&buf, tr, tr.Root()); err != nil {
		t.Fatalf("WriteXML: %v", err)
	}
	back, err := xmltree.ParseString(buf.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if back.NumNodes() != tr.NumNodes() {
		t.Errorf("round trip nodes = %d, want %d", back.NumNodes(), tr.NumNodes())
	}
	for _, tag := range []string{"article", "author", "cite", "year"} {
		if got, want := len(back.NodesWithTag(tag)), len(tr.NodesWithTag(tag)); got != want {
			t.Errorf("%s count after round trip = %d, want %d", tag, got, want)
		}
	}
}
