package core

import "xmlest/internal/histogram"

// PHJoin estimates the answer size of the pattern A//B from the two
// position histograms, with histA the ancestor operand and histB the
// descendant operand. It computes the same quantity as the paper's
// three-pass pH-Join pseudo-code (Fig 9, kept executable as
// PHJoinDense), but iterates only histA's non-zero cells against
// histB's cached partial-sum planes: O(nnz) per call once histB's sums
// exist, instead of O(g²) for every call. The two paths are
// cross-checked in tests.
func PHJoin(histA, histB *histogram.Position) (float64, error) {
	if err := checkGrids(histA, histB); err != nil {
		return 0, err
	}
	s := histB.Sums()
	var total float64
	for _, c := range histA.NonZeroCells() {
		total += c.Count * ancestorCoef(s, c.I, c.J)
	}
	return total, nil
}

// PHJoinDense is a literal transcription of Algorithm pH-Join (Fig 9 of
// the paper): the three passes of partial summation run over the dense
// inner histogram histB on every call.
//
// The three passes are:
//
//  1. column partial summations (pSum.down),
//  2. row partial summations (pSum.right) and region partial
//     summations (pSum.descendant),
//  3. per-cell multiplicative coefficients combined with the outer
//     operand's counts and summed.
//
// PHJoin computes the same quantity through the sparse, cached-sum
// formulation; PHJoinDense exists so the published pseudo-code itself
// stays executable and benchmarkable, and as the reference the sparse
// path is validated against.
func PHJoinDense(histA, histB *histogram.Position) (float64, error) {
	if err := checkGrids(histA, histB); err != nil {
		return 0, err
	}
	g := histB.Grid().Size()

	type pSum struct {
		self, down, right, descendant float64
	}
	ps := make([]pSum, g*g)

	// Pass 1: column summations.
	for i := 0; i < g; i++ {
		for j := i; j < g; j++ {
			ps[i*g+j].self = histB.Count(i, j)
			switch {
			case j == i:
				ps[i*g+j].down = 0
			case j == i+1:
				ps[i*g+j].down = ps[i*g+j-1].self
			default:
				ps[i*g+j].down = ps[i*g+j-1].self + ps[i*g+j-1].down
			}
		}
	}
	// Pass 2: row and region summations.
	for j := g - 1; j >= 0; j-- {
		for i := j; i >= 0; i-- {
			switch {
			case i == j:
				ps[i*g+j].right = 0
				ps[i*g+j].descendant = 0
			case i == j-1:
				ps[i*g+j].right = ps[(i+1)*g+j].self
				ps[i*g+j].descendant = ps[(i+1)*g+j].down
			default:
				ps[i*g+j].right = ps[(i+1)*g+j].self + ps[(i+1)*g+j].right
				ps[i*g+j].descendant = ps[(i+1)*g+j].down + ps[(i+1)*g+j].descendant
			}
		}
	}
	// Pass 3: combine with the outer operand.
	var total float64
	for i := 0; i < g; i++ {
		for j := i; j < g; j++ {
			var r float64
			if i == j {
				r = histA.Count(i, j) * ps[i*g+j].self / 12
			} else {
				r = histA.Count(i, j) * (ps[i*g+j].descendant +
					ps[i*g+j].self/4 +
					ps[i*g+j].down - ps[i*g+i].self/2 +
					ps[i*g+j].right - ps[j*g+j].self/2)
			}
			total += r
		}
	}
	return total, nil
}
