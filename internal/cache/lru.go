// Package cache provides a small, thread-safe, bounded LRU map used to
// memoize pure estimation results: compiled queries on the facade and
// folded sub-pattern joins in the core estimator. Values must be
// immutable once inserted — hits hand back the stored value itself.
package cache

import "sync"

// LRU is a bounded least-recently-used map. All methods are safe for
// concurrent use.
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	items    map[K]*entry[K, V]
	// Doubly-linked list through a sentinel: root.next is the most
	// recently used entry, root.prev the least.
	root entry[K, V]
}

type entry[K comparable, V any] struct {
	key        K
	value      V
	prev, next *entry[K, V]
}

// New returns an LRU holding at most capacity entries. capacity must be
// at least 1.
func New[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	l := &LRU[K, V]{capacity: capacity, items: make(map[K]*entry[K, V], capacity)}
	l.root.prev = &l.root
	l.root.next = &l.root
	return l
}

// Get returns the value stored under k and marks it most recently used.
func (l *LRU[K, V]) Get(k K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.items[k]
	if !ok {
		var zero V
		return zero, false
	}
	l.moveToFront(e)
	return e.value, true
}

// Put stores v under k, evicting the least recently used entry when the
// cache is full. Storing an existing key replaces its value.
func (l *LRU[K, V]) Put(k K, v V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.items[k]; ok {
		e.value = v
		l.moveToFront(e)
		return
	}
	if len(l.items) >= l.capacity {
		lru := l.root.prev
		l.unlink(lru)
		delete(l.items, lru.key)
	}
	e := &entry[K, V]{key: k, value: v}
	l.items[k] = e
	l.pushFront(e)
}

// Len returns the number of stored entries.
func (l *LRU[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.items)
}

func (l *LRU[K, V]) moveToFront(e *entry[K, V]) {
	l.unlink(e)
	l.pushFront(e)
}

func (l *LRU[K, V]) unlink(e *entry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (l *LRU[K, V]) pushFront(e *entry[K, V]) {
	e.prev = &l.root
	e.next = l.root.next
	l.root.next.prev = e
	l.root.next = e
}
