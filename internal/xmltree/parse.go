package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// ParseOptions controls XML parsing.
type ParseOptions struct {
	// KeepAttributes records element attributes as "@name" child nodes.
	KeepAttributes bool

	// Strict rejects malformed XML. When false, the parser tolerates
	// common junk (stray end tags are skipped, unclosed elements are
	// closed at EOF), which is useful for scraped datasets.
	Strict bool
}

// DefaultParseOptions is used by Parse and ParseCollection.
var DefaultParseOptions = ParseOptions{KeepAttributes: true, Strict: true}

// Parse reads a single XML document and returns its numbered tree
// (rooted, as always, at the dummy root).
func Parse(r io.Reader) (*Tree, error) {
	return ParseCollection([]io.Reader{r}, DefaultParseOptions)
}

// ParseCollection merges one document per reader into a single mega-tree
// under the dummy root, as Section 3.1 of the paper prescribes, and
// numbers the result.
func ParseCollection(readers []io.Reader, opts ParseOptions) (*Tree, error) {
	b := NewBuilder()
	for i, r := range readers {
		if err := parseInto(b, r, opts); err != nil {
			return nil, fmt.Errorf("xmltree: document %d: %w", i, err)
		}
	}
	t := b.Tree()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseString is a convenience wrapper for tests and examples.
func ParseString(doc string) (*Tree, error) {
	return Parse(strings.NewReader(doc))
}

func parseInto(b *Builder, r io.Reader, opts ParseOptions) error {
	dec := xml.NewDecoder(r)
	dec.Strict = opts.Strict
	depthAtEntry := b.Depth()
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			if opts.Strict {
				return err
			}
			break
		}
		switch el := tok.(type) {
		case xml.StartElement:
			b.Begin(el.Name.Local)
			if opts.KeepAttributes {
				for _, a := range el.Attr {
					if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
						continue
					}
					b.Attr(a.Name.Local, a.Value)
				}
			}
		case xml.EndElement:
			if b.Depth() > depthAtEntry {
				b.End()
			} else if opts.Strict {
				return fmt.Errorf("unexpected end element </%s>", el.Name.Local)
			}
		case xml.CharData:
			if s := strings.TrimSpace(string(el)); s != "" {
				b.Text(s)
			}
		// Comments, directives and processing instructions carry no
		// queryable structure; they are dropped.
		case xml.Comment, xml.Directive, xml.ProcInst:
		}
	}
	if b.Depth() > depthAtEntry {
		if opts.Strict {
			return fmt.Errorf("unexpected EOF: %d element(s) left open", b.Depth()-depthAtEntry)
		}
		for b.Depth() > depthAtEntry {
			b.End()
		}
	}
	return nil
}
