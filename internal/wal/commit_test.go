package wal

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"xmlest/internal/fsio"
)

// logCommit is the test commit function: AppendGroup with versions
// derived from a running counter, mirroring what the durable store
// does (logged version == install version).
func logCommit(l *Log, nextVersion *uint64) func(group []*Pending) {
	return func(group []*Pending) {
		recs := make([]GroupRecord, len(group))
		for i, p := range group {
			*nextVersion++
			recs[i] = GroupRecord{Version: *nextVersion, Docs: p.Docs}
		}
		first, err := l.AppendGroup(recs)
		if err != nil {
			for _, p := range group {
				p.Err = err
			}
			return
		}
		for i, p := range group {
			p.Seq = first + uint64(i)
			p.Version = recs[i].Version
		}
	}
}

// TestAppendGroupRoundTrip: one AppendGroup call lands n records with
// contiguous sequences, one fsync, and exact replay.
func TestAppendGroupRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: ModeAlways})
	if err != nil {
		t.Fatal(err)
	}
	before := l.Fsyncs()
	recs := []GroupRecord{
		{Version: 10, Docs: docs("<a/>")},
		{Version: 11, Docs: docs("<b>x</b>", "<c/>")},
		{Version: 12, Docs: docs("<d/>")},
	}
	first, err := l.AppendGroup(recs)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || l.LastSeq() != 3 || l.DurableSeq() != 3 {
		t.Fatalf("first=%d last=%d durable=%d, want 1/3/3", first, l.LastSeq(), l.DurableSeq())
	}
	if got := l.Fsyncs() - before; got != 1 {
		t.Fatalf("group of 3 cost %d fsyncs, want 1", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	replayed := collect(t, dir, 0)
	if len(replayed) != 3 {
		t.Fatalf("replayed %d records, want 3", len(replayed))
	}
	for i, rec := range replayed {
		if rec.Seq != uint64(i+1) || rec.Version != uint64(i+10) {
			t.Fatalf("record %d: seq %d version %d", i, rec.Seq, rec.Version)
		}
		for j, d := range rec.Docs {
			if !bytes.Equal(d, recs[i].Docs[j]) {
				t.Fatalf("record %d doc %d: %q", i, j, d)
			}
		}
	}
}

// TestAppendGroupWriteFailureSealsAndRollsBack: a failed group write
// refuses the whole group, truncates the partial frames, and seals.
func TestAppendGroupWriteFailureSealsAndRollsBack(t *testing.T) {
	dir := t.TempDir()
	ffs := fsio.NewFaultFS(fsio.OS, fsio.Faults{})
	l, err := Open(dir, Options{Mode: ModeAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, docs("<a/>")); err != nil {
		t.Fatal(err)
	}
	ffs.SetFaults(fsio.Faults{FailOp: ffs.OpCount() + 1}) // next op: the group write
	_, err = l.AppendGroup([]GroupRecord{
		{Version: 2, Docs: docs("<b/>")},
		{Version: 3, Docs: docs("<c/>")},
	})
	if err == nil {
		t.Fatal("group whose write failed must be refused")
	}
	ffs.ClearFaults()
	if _, err := l.Append(4, docs("<d/>")); err == nil || !strings.Contains(err.Error(), "sealed") {
		t.Fatalf("append after group write failure: got %v, want sealed", err)
	}
	if l.LastSeq() != 1 || l.DurableSeq() != 1 {
		t.Fatalf("failed group moved watermarks: last=%d durable=%d", l.LastSeq(), l.DurableSeq())
	}
}

// TestCommitterCoalesces: batches submitted while a commit is in
// flight form ONE group — the natural group-commit effect, with no
// MaxDelay configured.
func TestCommitterCoalesces(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: ModeAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// The first group blocks in the commit function until released, so
	// every other batch is queued by the time the second group forms.
	// entered signals the block is in place before the rest is
	// submitted, making the grouping deterministic.
	entered := make(chan struct{})
	gate := make(chan struct{})
	var gateOnce sync.Once
	var nextVersion uint64
	inner := logCommit(l, &nextVersion)
	var c *Committer
	c = NewCommitter(l, CommitterOptions{}, func(group []*Pending) {
		gateOnce.Do(func() { close(entered); <-gate })
		inner(group)
	})
	defer c.Close()

	const n = 9
	pendings := make([]*Pending, 0, n)
	first, err := c.Submit(docs("<p0/>"), nil)
	if err != nil {
		t.Fatal(err)
	}
	pendings = append(pendings, first)
	<-entered // group 1 = {p0} is committing; later batches queue behind it
	for i := 1; i < n; i++ {
		p, err := c.Submit(docs(fmt.Sprintf("<p%d/>", i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	close(gate) // all n batches enqueued; let the committer run

	seen := make(map[uint64]bool)
	for i, p := range pendings {
		seq, ver, err := p.Wait()
		if err != nil {
			t.Fatalf("batch %d refused: %v", i, err)
		}
		if seq == 0 || ver != seq || seen[seq] {
			t.Fatalf("batch %d: seq %d version %d (dup=%v)", i, seq, ver, seen[seq])
		}
		seen[seq] = true
	}
	groups, batches, maxGroup, _ := c.Stats()
	if batches != n {
		t.Fatalf("batches = %d, want %d", batches, n)
	}
	// First group holds only the batch that was blocking; everything
	// else queued behind it must coalesce into the second.
	if groups != 2 || maxGroup != n-1 {
		t.Fatalf("groups=%d maxGroup=%d, want 2 and %d", groups, maxGroup, n-1)
	}
	if got := l.Fsyncs(); got > groups+1 {
		t.Fatalf("%d fsyncs for %d groups", got, groups)
	}
}

// TestCommitterMaxDelay: with a latency budget, a straggler submitted
// after the first batch still joins its group.
func TestCommitterMaxDelay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: ModeAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var nextVersion uint64
	c := NewCommitter(l, CommitterOptions{MaxDelay: 2 * time.Second}, logCommit(l, &nextVersion))
	defer c.Close()

	p1, err := c.Submit(docs("<a/>"), nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the committer enter the budget wait
	p2, err := c.Submit(docs("<b/>"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p2.Wait(); err != nil {
		t.Fatal(err)
	}
	if groups, batches, _, _ := c.Stats(); groups != 1 || batches != 2 {
		t.Fatalf("groups=%d batches=%d, want 1 and 2 (straggler missed the budget)", groups, batches)
	}
}

// TestCommitterMaxGroupBytes: the byte cap splits what would have been
// one giant group.
func TestCommitterMaxGroupBytes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: ModeAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	gate := make(chan struct{})
	var gateOnce sync.Once
	var nextVersion uint64
	inner := logCommit(l, &nextVersion)
	doc := strings.Repeat("x", 64)
	c := NewCommitter(l, CommitterOptions{MaxGroupBytes: 128}, func(group []*Pending) {
		gateOnce.Do(func() { <-gate })
		inner(group)
	})
	defer c.Close()

	var pendings []*Pending
	for i := 0; i < 10; i++ {
		p, err := c.Submit(docs(doc), nil)
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	close(gate)
	for _, p := range pendings {
		if _, _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, maxGroup, _ := c.Stats(); maxGroup > 2 {
		t.Fatalf("128-byte cap allowed a group of %d 64-byte batches", maxGroup)
	}
}

// TestCommitterRefusesWholeGroup: when the group's single fsync fails,
// EVERY batch in the group gets the error — no partial-group acks.
func TestCommitterRefusesWholeGroup(t *testing.T) {
	dir := t.TempDir()
	ffs := fsio.NewFaultFS(fsio.OS, fsio.Faults{})
	l, err := Open(dir, Options{Mode: ModeAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	entered := make(chan struct{})
	gate := make(chan struct{})
	var gateOnce sync.Once
	var nextVersion uint64
	inner := logCommit(l, &nextVersion)
	c := NewCommitter(l, CommitterOptions{}, func(group []*Pending) {
		gateOnce.Do(func() { close(entered); <-gate })
		inner(group)
	})
	defer c.Close()

	// Block group 1 in its commit, queue four more batches behind it,
	// then fail every fsync from here on: group 1's fsync fails and
	// seals, group 2 is refused whole by the seal check.
	p0, err := c.Submit(docs("<ok/>"), nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	var doomed []*Pending
	for i := 0; i < 4; i++ {
		p, err := c.Submit(docs("<doomed/>"), nil)
		if err != nil {
			t.Fatal(err)
		}
		doomed = append(doomed, p)
	}
	ffs.SetFaults(fsio.Faults{SyncFailAfter: 1})
	close(gate)
	if _, _, err := p0.Wait(); err == nil {
		t.Fatal("batch whose group fsync failed was acknowledged")
	}
	var refused int
	for _, p := range doomed {
		if _, _, err := p.Wait(); err != nil {
			refused++
		}
	}
	if refused != len(doomed) {
		t.Fatalf("%d/%d batches of the failed group refused; partial-group acks are forbidden", refused, len(doomed))
	}
	if l.Err() == nil {
		t.Fatal("failed group fsync must seal the log")
	}
	if l.DurableSeq() != 0 {
		t.Fatalf("durable seq %d after refusing every group, want 0", l.DurableSeq())
	}
	if groups, batches, _, _ := c.Stats(); groups != 2 || batches != 5 {
		t.Fatalf("groups=%d batches=%d, want 2 and 5", groups, batches)
	}
}

// TestCommitterCloseDrains: Close resolves every accepted batch and
// later Submits are refused.
func TestCommitterCloseDrains(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: ModeOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var nextVersion uint64
	c := NewCommitter(l, CommitterOptions{}, logCommit(l, &nextVersion))

	var pendings []*Pending
	for i := 0; i < 20; i++ {
		p, err := c.Submit(docs("<a/>"), nil)
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	c.Close()
	for i, p := range pendings {
		if _, _, err := p.Wait(); err != nil {
			t.Fatalf("batch %d unresolved after Close: %v", i, err)
		}
	}
	if _, err := c.Submit(docs("<late/>"), nil); err == nil {
		t.Fatal("Submit after Close accepted")
	}
	c.Close() // idempotent
}

// TestCommitterOwnsIntervalFlush: under ModeInterval the committer's
// goroutine drives the flush cadence (the Log's own flusher is stopped)
// and the durable watermark still advances.
func TestCommitterOwnsIntervalFlush(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: ModeInterval, Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var nextVersion uint64
	c := NewCommitter(l, CommitterOptions{}, logCommit(l, &nextVersion))
	defer c.Close()
	p, err := c.Submit(docs("<a/>"), nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.DurableSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("durable seq stuck at %d, want %d (committer not flushing)", l.DurableSeq(), seq)
		}
		time.Sleep(time.Millisecond)
	}
}
