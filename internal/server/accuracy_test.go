package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestShadowSamplingEndToEnd drives /estimate with 1-in-1 shadow
// sampling and waits for the background verifier to populate the
// accuracy section of /stats and the xqest_accuracy_* families on
// /metrics.
func TestShadowSamplingEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{ShadowSample: 1})

	for i := 0; i < 5; i++ {
		resp := postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate %d: HTTP %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	var stats StatsResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		stats = decode[StatsResponse](t, resp)
		if stats.Accuracy != nil && stats.Accuracy.Verified > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accuracy section never verified anything: %+v", stats.Accuracy)
		}
		time.Sleep(5 * time.Millisecond)
	}

	acc := stats.Accuracy
	if acc.SampleEvery != 1 {
		t.Errorf("sample_every = %d, want 1", acc.SampleEvery)
	}
	if acc.Sampled < acc.Verified {
		t.Errorf("sampled %d < verified %d", acc.Sampled, acc.Verified)
	}
	// dept1 is tiny and the estimator sees the whole document: verified
	// q-errors must be sane (>= 1, finite).
	if acc.QError.Count == 0 || acc.QError.Max < 1 {
		t.Errorf("q-error digest empty or invalid: %+v", acc.QError)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"# TYPE xqest_accuracy_qerror histogram",
		"xqest_accuracy_qerror_count",
		"xqest_accuracy_sampled_total",
		"xqest_accuracy_verified_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Shutdown stops the monitor without hanging on queued work.
	done := make(chan struct{})
	go func() {
		s.monitor.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("monitor.Close() hung")
	}
}

// TestShadowSamplingDisabledByDefault asserts the zero-config server
// has no monitor: /stats omits the accuracy section entirely.
func TestShadowSamplingDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"})
	resp.Body.Close()
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[StatsResponse](t, sresp)
	if stats.Accuracy != nil {
		t.Errorf("accuracy section present with sampling disabled: %+v", stats.Accuracy)
	}
}
