package xmlest

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"xmlest/internal/xmltree"
)

// fig1Bootstrap is the durable-facade test corpus: the paper's Fig 1
// document with the all-tags vocabulary.
func fig1Bootstrap() (*Database, error) {
	db := FromTree(xmltree.Fig1Document())
	db.AddAllTagPredicates()
	return db, nil
}

var facadePatterns = []string{
	"//department//faculty",
	"//department//faculty[.//TA][.//RA]",
	"//department//staff",
}

func facadeDoc(i int) string {
	return fmt.Sprintf(
		"<department><faculty>f%d<TA>a</TA><RA>b</RA></faculty><staff>s%d</staff></department>", i, i)
}

func estimateFacade(t *testing.T, db *Database) []float64 {
	t.Helper()
	est, err := db.NewEstimator(Options{GridSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(facadePatterns))
	for i, p := range facadePatterns {
		res, err := est.Estimate(p)
		if err != nil {
			t.Fatalf("estimate %q: %v", p, err)
		}
		out[i] = res.Estimate
	}
	return out
}

// TestOpenDurableRecoveryBitIdentical is the facade-level pinned test:
// a durable database that crashes (abandoned without Close) recovers
// to estimates bit-identical to a never-crashed database fed the same
// batches, at a version no lower than any acknowledged one.
func TestOpenDurableRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := DurableConfig{Options: Options{GridSize: 5}, Bootstrap: fig1Bootstrap}
	db, err := OpenDurable(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Durable() {
		t.Fatal("OpenDurable returned a non-durable database")
	}
	const batches = 4
	var lastAck uint64
	for i := 0; i < batches; i++ {
		info, err := db.Append(strings.NewReader(facadeDoc(i)))
		if err != nil {
			t.Fatal(err)
		}
		if info.WALSeq != uint64(i+1) {
			t.Fatalf("append %d: wal seq %d", i, info.WALSeq)
		}
		lastAck = info.Version
	}
	want := estimateFacade(t, db)
	// Crash: drop the handle without Close or Checkpoint.

	db2, err := OpenDurable(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := db2.Recovery()
	if !ok || rec.ReplayedRecords != batches {
		t.Fatalf("recovery: ok=%v %+v", ok, rec)
	}
	if db2.Version() < lastAck {
		t.Fatalf("recovered version %d below last acked %d", db2.Version(), lastAck)
	}
	got := estimateFacade(t, db2)

	// The never-crashed control: same bootstrap, same batches.
	control, err := fig1Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < batches; i++ {
		if _, err := control.Append(strings.NewReader(facadeDoc(i))); err != nil {
			t.Fatal(err)
		}
	}
	ref := estimateFacade(t, control)
	for i := range ref {
		if math.Float64bits(want[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("pre-crash estimate %q: %v != control %v", facadePatterns[i], want[i], ref[i])
		}
		if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("recovered estimate %q: %v != control %v (not bit-identical)",
				facadePatterns[i], got[i], ref[i])
		}
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean Close checkpointed: the next boot replays nothing.
	db3, err := OpenDurable(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	rec, _ = db3.Recovery()
	if rec.ReplayedRecords != 0 || rec.CheckpointShards == 0 {
		t.Fatalf("post-Close recovery should be checkpoint-only: %+v", rec)
	}
	got3 := estimateFacade(t, db3)
	for i := range ref {
		if math.Float64bits(got3[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("checkpoint-loaded estimate %q: %v != control %v", facadePatterns[i], got3[i], ref[i])
		}
	}
}

// TestDurableAppendTree covers the re-serialization path: trees
// appended to a durable database survive recovery with identical
// estimates.
func TestDurableAppendTree(t *testing.T) {
	dir := t.TempDir()
	cfg := DurableConfig{Options: Options{GridSize: 5}, Bootstrap: fig1Bootstrap}
	db, err := OpenDurable(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := xmltree.ParseString(facadeDoc(7))
	if err != nil {
		t.Fatal(err)
	}
	info, err := db.AppendTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	if info.WALSeq != 1 {
		t.Fatalf("AppendTree skipped the WAL: seq %d", info.WALSeq)
	}
	want := estimateFacade(t, db)
	db2, err := OpenDurable(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := estimateFacade(t, db2)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("AppendTree recovery changed %q: %v != %v", facadePatterns[i], got[i], want[i])
		}
	}
}

// TestDurableFacadeMisc covers the non-durable guard rails and stats.
func TestDurableFacadeMisc(t *testing.T) {
	plain, err := fig1Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Durable() {
		t.Fatal("plain database claims durability")
	}
	if _, err := plain.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a plain database succeeded")
	}
	if err := plain.Close(); err != nil {
		t.Fatalf("Close on a plain database: %v", err)
	}
	if _, ok := plain.DurabilityStats(); ok {
		t.Fatal("plain database reported durability stats")
	}

	dir := t.TempDir()
	db, err := OpenDurable(dir, DurableConfig{Options: Options{GridSize: 5}, Bootstrap: fig1Bootstrap})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Append(strings.NewReader(facadeDoc(0))); err != nil {
		t.Fatal(err)
	}
	s, ok := db.DurabilityStats()
	if !ok || s.LastSeq != 1 || s.Fsync != "always" {
		t.Fatalf("stats: ok=%v %+v", ok, s)
	}
	if _, err := OpenDurable(dir, DurableConfig{Fsync: "sometimes"}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}
