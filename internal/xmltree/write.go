package xmltree

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// WriteXML serializes the subtree rooted at id as XML. Attribute
// pseudo-nodes ("@name") become attributes of their parent element;
// text content is emitted before child elements. Writing the dummy root
// emits each document child in sequence (a well-formed fragment per
// document).
func WriteXML(w io.Writer, t *Tree, id NodeID) error {
	bw := bufio.NewWriter(w)
	if id == t.Root() {
		for c := t.Nodes[id].FirstChild; c != InvalidNode; c = t.Nodes[c].NextSibling {
			if err := writeElem(bw, t, c, 0); err != nil {
				return err
			}
		}
	} else if err := writeElem(bw, t, id, 0); err != nil {
		return err
	}
	return bw.Flush()
}

func writeElem(w *bufio.Writer, t *Tree, id NodeID, depth int) error {
	n := t.Node(id)
	if strings.HasPrefix(n.Tag, "@") {
		return fmt.Errorf("xmltree: cannot serialize attribute node %q as element", n.Tag)
	}
	indent := strings.Repeat("  ", depth)
	w.WriteString(indent)
	w.WriteByte('<')
	w.WriteString(n.Tag)
	// Attribute children first.
	var kids []NodeID
	for c := n.FirstChild; c != InvalidNode; c = t.Nodes[c].NextSibling {
		cn := t.Node(c)
		if strings.HasPrefix(cn.Tag, "@") {
			fmt.Fprintf(w, " %s=%q", cn.Tag[1:], cn.Text)
		} else {
			kids = append(kids, c)
		}
	}
	if len(kids) == 0 && n.Text == "" {
		w.WriteString("/>\n")
		return nil
	}
	w.WriteByte('>')
	if n.Text != "" {
		if err := xml.EscapeText(w, []byte(n.Text)); err != nil {
			return err
		}
	}
	if len(kids) > 0 {
		w.WriteByte('\n')
		for _, c := range kids {
			if err := writeElem(w, t, c, depth+1); err != nil {
				return err
			}
		}
		w.WriteString(indent)
	}
	w.WriteString("</")
	w.WriteString(n.Tag)
	w.WriteString(">\n")
	return nil
}
