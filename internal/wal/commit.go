// Group commit: the classic database discipline for closing the gap
// between write acknowledgment cost (one fsync each) and what the disk
// can actually do (one fsync for everyone currently waiting).
//
// Concurrent appenders Submit their batches to a single committer
// goroutine. The committer drains everything already queued into one
// group — optionally waiting up to MaxDelay for stragglers — and hands
// the group to a commit function that performs ONE segment write and
// ONE fsync for all of it (Log.AppendGroup), then wakes every waiter
// with its exact assigned sequence and ack version. While one group's
// fsync is in flight, new arrivals queue up and form the next group,
// so under concurrency the achieved group size approaches the number
// of in-flight appenders with no configured delay at all ("natural"
// group commit); MaxDelay trades ack latency for even larger groups on
// sparse traffic.
//
// Failure semantics are all-or-nothing per group: the commit function
// refuses every batch of a group whose write or fsync failed (the log
// seals, nothing is installed, every waiter gets the error). There is
// no outcome in which some batches of a group are acknowledged and
// others are not — the frames share one write and one fsync, so no
// evidence exists to ack a prefix.
package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// CommitterOptions tunes group formation. The zero value commits with
// no added latency and default byte/queue bounds.
type CommitterOptions struct {
	// MaxDelay is the latency budget: after the first batch of a group
	// arrives, the committer waits up to MaxDelay for more batches
	// before committing. 0 adds no delay — a group is whatever queued
	// while the previous commit was in flight, which already amortizes
	// the fsync under concurrency without taxing sparse traffic.
	MaxDelay time.Duration

	// MaxGroupBytes caps one group's encoded payload: a group commits
	// as soon as it holds this much, bounding commit latency spikes and
	// the single-write allocation. <= 0 means DefaultMaxGroupBytes.
	MaxGroupBytes int64

	// QueueDepth bounds batches waiting to be grouped; Submit blocks
	// once it is full (the committer is already saturated — queueing
	// deeper only adds latency). <= 0 means DefaultQueueDepth.
	QueueDepth int
}

// Defaults for the zero CommitterOptions.
const (
	DefaultMaxGroupBytes = 8 << 20
	DefaultQueueDepth    = 256
)

func (o CommitterOptions) withDefaults() CommitterOptions {
	if o.MaxGroupBytes <= 0 {
		o.MaxGroupBytes = DefaultMaxGroupBytes
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	return o
}

// Pending is one batch waiting for (or resolved by) a group commit.
// The submitter blocks in Wait; the commit function fills Seq, Version
// and Err for every batch of the group it was handed.
type Pending struct {
	// Docs is the batch's raw documents, as passed to Submit.
	Docs [][]byte
	// Payload carries the submitter's prepared state (the built shard)
	// through the queue untouched.
	Payload any
	// EnqueuedAt is when Submit accepted the batch; commit-queue wait
	// time is measured from here to group formation.
	EnqueuedAt time.Time
	// Members holds the enqueue time of every original append batch
	// this submission carries: Submit records one entry; an ingest
	// coalescer that merged several append batches into one submission
	// (SubmitCoalesced) records one per merged batch. Group-size and
	// queue-wait accounting count members, not submissions, so the
	// reported amortization reflects what callers actually experienced.
	Members []time.Time

	// Seq and Version are the batch's assigned WAL sequence and ack
	// version; valid after Wait returns with a nil error.
	Seq     uint64
	Version uint64
	// Err refuses the batch; when the group's write or fsync failed it
	// is the same error for every batch in the group.
	Err error

	bytes int64
	done  chan struct{}
}

// Wait blocks until the batch's group commits (or is refused) and
// returns its assigned sequence and ack version, or the error that
// refused its whole group.
func (p *Pending) Wait() (seq, version uint64, err error) {
	<-p.done
	return p.Seq, p.Version, p.Err
}

// Committer is the group-commit front end for a Log. One goroutine
// owns group formation; under ModeInterval it also owns the background
// flush cadence (taking it over from the Log's own flusher), so a
// flush failure seals the log strictly before any later group is
// committed — there is no window in which a batch is acknowledged
// after its durability was already known to be compromised.
type Committer struct {
	log    *Log
	opts   CommitterOptions
	commit func(group []*Pending)

	queue chan *Pending
	stop  chan struct{}
	done  chan struct{}

	mu        sync.RWMutex // guards closed against in-flight Submits
	closed    bool
	inflight  sync.WaitGroup
	groups    atomic.Uint64
	batches   atomic.Uint64
	maxGroup  atomic.Uint64
	lastGroup atomic.Uint64
}

// NewCommitter starts a committer over l. The commit function receives
// each formed group exactly once, in formation order, on the committer
// goroutine; it must resolve every Pending (fill Seq/Version or Err) —
// the committer closes the waiters' done channels when it returns.
// Typically it wraps Log.AppendGroup plus whatever installation must
// be atomic with sequence assignment.
func NewCommitter(l *Log, opts CommitterOptions, commit func(group []*Pending)) *Committer {
	opts = opts.withDefaults()
	c := &Committer{
		log:    l,
		opts:   opts,
		commit: commit,
		queue:  make(chan *Pending, opts.QueueDepth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	// Take over the interval-flush cadence: flush failures and group
	// commits must be totally ordered on one goroutine (see type doc).
	l.StopFlushLoop()
	go c.loop()
	return c
}

// Submit enqueues one batch for group commit and returns its Pending
// handle. It blocks only when the commit queue is full. The payload
// travels with the batch to the commit function (via Pending.Payload).
func (c *Committer) Submit(docs [][]byte, payload any) (*Pending, error) {
	return c.submit(docs, payload, nil)
}

// SubmitCoalesced is Submit for an ingest coalescer that merged
// several append batches into one submission: members carries each
// merged batch's original enqueue time, so queue-wait and group-size
// accounting reflect the callers' view rather than the submission
// count. All merged batches resolve through the one returned Pending —
// they share its seq, version and (on failure) error, which is exactly
// the all-or-nothing contract their docs already have by sharing one
// WAL record.
func (c *Committer) SubmitCoalesced(docs [][]byte, payload any, members []time.Time) (*Pending, error) {
	return c.submit(docs, payload, members)
}

func (c *Committer) submit(docs [][]byte, payload any, members []time.Time) (*Pending, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("wal: refusing to append an empty batch")
	}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, fmt.Errorf("wal: committer is closed")
	}
	c.inflight.Add(1)
	c.mu.RUnlock()
	defer c.inflight.Done()
	p := &Pending{
		Docs:       docs,
		Payload:    payload,
		EnqueuedAt: time.Now(),
		Members:    members,
		done:       make(chan struct{}),
	}
	if len(p.Members) == 0 {
		p.Members = []time.Time{p.EnqueuedAt}
	}
	for _, d := range docs {
		p.bytes += int64(len(d))
	}
	c.queue <- p
	return p, nil
}

// Close stops accepting new batches, commits everything already
// queued (no submitted batch is left unresolved), stops the committer
// goroutine, and — for ModeInterval logs — leaves flushing to the
// Log's Close. Idempotent.
func (c *Committer) Close() {
	c.mu.Lock()
	wasClosed := c.closed
	c.closed = true
	c.mu.Unlock()
	if wasClosed {
		<-c.done
		return
	}
	c.inflight.Wait() // every accepted Submit has enqueued its batch
	close(c.stop)
	<-c.done
}

// Stats reports lifetime group-commit counters: groups committed,
// batches across them, and the largest and most recent group sizes.
// Batch and group-size figures count member batches (the append calls
// callers made), not submissions — a coalesced submission of five
// batches counts as five.
func (c *Committer) Stats() (groups, batches, maxGroup, lastGroup uint64) {
	return c.groups.Load(), c.batches.Load(), c.maxGroup.Load(), c.lastGroup.Load()
}

// loop is the committer goroutine: it blocks for the first batch of
// each group, forms the rest greedily (plus the MaxDelay budget), and
// commits. Under ModeInterval it also ticks the background flush.
func (c *Committer) loop() {
	defer close(c.done)
	var tickC <-chan time.Time
	if c.log.opts.Mode == ModeInterval {
		t := time.NewTicker(c.log.opts.Interval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-c.stop:
			c.drain()
			return
		case <-tickC:
			// A failed interval flush seals the log here, on the commit
			// goroutine: every group formed after this point is refused by
			// AppendGroup's seal check, so no ack can race the failure.
			_ = c.log.Sync()
		case p := <-c.queue:
			c.commitGroup(c.formGroup(p))
		}
	}
}

// formGroup builds one group starting from first: everything already
// queued joins immediately; with a MaxDelay budget the committer then
// waits out the budget for stragglers. MaxGroupBytes caps the group
// either way.
func (c *Committer) formGroup(first *Pending) []*Pending {
	group := append(make([]*Pending, 0, 16), first)
	bytes := first.bytes
greedy:
	for bytes < c.opts.MaxGroupBytes {
		select {
		case p := <-c.queue:
			group = append(group, p)
			bytes += p.bytes
		default:
			break greedy
		}
	}
	if c.opts.MaxDelay > 0 {
		t := time.NewTimer(c.opts.MaxDelay)
		defer t.Stop()
	budget:
		for bytes < c.opts.MaxGroupBytes {
			select {
			case p := <-c.queue:
				group = append(group, p)
				bytes += p.bytes
			case <-t.C:
				break budget
			case <-c.stop:
				// Shutdown: commit what we have now; drain handles the rest.
				break budget
			}
		}
	}
	return group
}

// commitGroup hands one group to the commit function and wakes every
// waiter.
func (c *Committer) commitGroup(group []*Pending) {
	c.commit(group)
	c.groups.Add(1)
	var n uint64
	for _, p := range group {
		n += uint64(len(p.Members))
	}
	c.batches.Add(n)
	c.lastGroup.Store(n)
	for {
		old := c.maxGroup.Load()
		if n <= old || c.maxGroup.CompareAndSwap(old, n) {
			break
		}
	}
	for _, p := range group {
		close(p.done)
	}
}

// drain commits everything left in the queue at shutdown. Close has
// already waited out in-flight Submits, so the queue can only shrink.
func (c *Committer) drain() {
	for {
		select {
		case p := <-c.queue:
			c.commitGroup(c.formGroupNoWait(p))
		default:
			return
		}
	}
}

// formGroupNoWait is formGroup without the latency budget (shutdown
// never waits for stragglers).
func (c *Committer) formGroupNoWait(first *Pending) []*Pending {
	group := append(make([]*Pending, 0, 16), first)
	bytes := first.bytes
	for bytes < c.opts.MaxGroupBytes {
		select {
		case p := <-c.queue:
			group = append(group, p)
			bytes += p.bytes
		default:
			return group
		}
	}
	return group
}
