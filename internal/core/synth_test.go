package core

import (
	"math"
	"testing"

	"xmlest/internal/datagen"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
)

func dblpEstimator(t *testing.T) (*predicate.Catalog, *Estimator) {
	t.Helper()
	tr := datagen.GenerateDBLP(datagen.DBLPConfig{Seed: 9, Scale: 0.02})
	cat := datagen.DBLPCatalog(tr)
	// Per-year primitives, as the paper builds them.
	for _, y := range []string{"1990", "1991", "1992"} {
		cat.Add(predicate.Named{Alias: "year=" + y, Inner: predicate.TagContent{Tag: "year", Value: y}})
	}
	est, err := NewEstimator(cat, Options{GridSize: 10})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	return cat, est
}

func TestSynthesizeSumMatchesExactDecade(t *testing.T) {
	cat, est := dblpEstimator(t)
	// Sum of per-year primitives is exact for disjoint predicates.
	if err := est.Synthesize("early90s", SynthSum, "year=1990", "year=1991", "year=1992"); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	h, err := est.Histogram("early90s")
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	want := 0
	for _, y := range []string{"1990", "1991", "1992"} {
		want += cat.MustGet("year=" + y).Count()
	}
	if h.Total() != float64(want) {
		t.Errorf("synthesized total = %v, want %v", h.Total(), want)
	}
	// The synthesized predicate estimates like any other.
	res, err := est.EstimatePair("tag=article", "early90s")
	if err != nil {
		t.Fatalf("EstimatePair: %v", err)
	}
	if res.Estimate <= 0 {
		t.Errorf("estimate = %v, want > 0", res.Estimate)
	}
	// And works in pattern syntax.
	tw, err := est.EstimateTwig(pattern.MustParse("//article//{early90s}"))
	if err != nil {
		t.Fatalf("EstimateTwig: %v", err)
	}
	if math.Abs(tw.Estimate-res.Estimate) > 1e-9 {
		t.Errorf("twig estimate %v != pair estimate %v", tw.Estimate, res.Estimate)
	}
}

func TestSynthesizeAndApproximatesIntersection(t *testing.T) {
	cat, est := dblpEstimator(t)
	// cite AND year can never intersect (different tags); per-cell
	// independence must keep the synthesized mass small.
	if err := est.Synthesize("cite-and-year", SynthAnd, "tag=cite", "tag=year"); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	h, err := est.Histogram("cite-and-year")
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	// No node is both cite and year; per-cell independence yields a
	// small but non-negative mass, far below either part.
	if h.Total() < 0 {
		t.Errorf("negative synthesized mass %v", h.Total())
	}
	cite := float64(cat.MustGet("tag=cite").Count())
	if h.Total() > 0.2*cite {
		t.Errorf("AND mass %v too large vs cite %v", h.Total(), cite)
	}

	if err := est.Synthesize("cite-or-year", SynthOr, "tag=cite", "tag=year"); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	or, err := est.Histogram("cite-or-year")
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	year := float64(cat.MustGet("tag=year").Count())
	if or.Total() < math.Max(cite, year)-1e-6 || or.Total() > cite+year+1e-6 {
		t.Errorf("OR mass %v outside [max, sum] = [%v, %v]", or.Total(), math.Max(cite, year), cite+year)
	}
}

func TestSynthesizeNot(t *testing.T) {
	_, est := dblpEstimator(t)
	if err := est.Synthesize("not-cite", SynthNot, "tag=cite"); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	h, _ := est.Histogram("not-cite")
	tot := est.TrueHistogram().Total()
	cite, _ := est.Histogram("tag=cite")
	if math.Abs(h.Total()-(tot-cite.Total())) > 1e-6 {
		t.Errorf("NOT mass = %v, want %v", h.Total(), tot-cite.Total())
	}
}

func TestSynthesizeErrors(t *testing.T) {
	_, est := dblpEstimator(t)
	if err := est.Synthesize("tag=cite", SynthSum, "tag=year"); err == nil {
		t.Errorf("duplicate name: want error")
	}
	if err := est.Synthesize("x", SynthSum); err == nil {
		t.Errorf("no parts: want error")
	}
	if err := est.Synthesize("x", SynthNot, "tag=cite", "tag=year"); err == nil {
		t.Errorf("NOT with two parts: want error")
	}
	if err := est.Synthesize("x", SynthSum, "tag=nosuch"); err == nil {
		t.Errorf("unknown part: want error")
	}
	if err := est.Synthesize("x", SynthOp(99), "tag=cite"); err == nil {
		t.Errorf("unknown op: want error")
	}
}

func TestSynthesizedPredicatePersists(t *testing.T) {
	_, est := dblpEstimator(t)
	if err := est.Synthesize("early90s", SynthSum, "year=1990", "year=1991"); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	blob, err := est.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	loaded, err := UnmarshalEstimator(blob)
	if err != nil {
		t.Fatalf("UnmarshalEstimator: %v", err)
	}
	a, err := est.EstimatePairPrimitive("tag=article", "early90s")
	if err != nil {
		t.Fatalf("EstimatePairPrimitive: %v", err)
	}
	b, err := loaded.EstimatePairPrimitive("tag=article", "early90s")
	if err != nil {
		t.Fatalf("loaded: %v", err)
	}
	if math.Abs(a.Estimate-b.Estimate) > 1e-9 {
		t.Errorf("synthesized predicate lost in persistence: %v vs %v", b.Estimate, a.Estimate)
	}
}
