package core

import (
	"fmt"
	"math"

	"xmlest/internal/histogram"
)

// SubPattern carries the estimation state of a (partially joined) twig
// pattern, anchored at one of its pattern nodes — the node through
// which the next join will happen. It is the unit the Fig 10 formulas
// compose:
//
//   - Est: the estimation histogram; cell (i, j) holds the estimated
//     number of matches of the sub-pattern whose anchor node falls in
//     that cell ("EstAB" in the paper's notation).
//   - Hist: the participation histogram; cell (i, j) holds the
//     estimated number of distinct data nodes in that cell that occur
//     at the anchor in at least one match ("HistAB_Px").
//   - Base: the anchor predicate's own position histogram ("HistA_P1").
//   - Cvg: the anchor predicate's (propagated) coverage histogram, when
//     the anchor predicate has the no-overlap property; nil otherwise.
//
// The join factor Jn_FctAB_Px[i][j] = Est[i][j]/Hist[i][j] (zero where
// Hist is zero) is derived on demand.
type SubPattern struct {
	Est  *histogram.Position
	Hist *histogram.Position
	Base *histogram.Position
	Cvg  *histogram.Coverage

	// NoOverlap records whether the anchor predicate has the no-overlap
	// property (Definition 2); joins through a no-overlap anchor use the
	// Fig 10 formulas when coverage is available.
	NoOverlap bool
}

// Leaf returns the sub-pattern of a single pattern node: its estimate
// and participation both equal the predicate's position histogram, and
// its join factor is one everywhere.
//
// The leaf shares the base histogram directly instead of cloning it:
// joins never mutate their operands, so sharing keeps the base's cached
// partial sums and sparse cell list (histogram.Position.Sums and
// NonZeroCells) warm across every estimate that touches the predicate.
// Sub-pattern histograms must therefore be treated as read-only by all
// downstream code; join results are always freshly allocated.
func Leaf(base *histogram.Position, cvg *histogram.Coverage, noOverlap bool) SubPattern {
	return SubPattern{
		Est:       base,
		Hist:      base,
		Base:      base,
		Cvg:       cvg,
		NoOverlap: noOverlap,
	}
}

// Total returns the sub-pattern's estimated answer size.
func (s SubPattern) Total() float64 { return s.Est.Total() }

// jnFct returns the join factor at cell (i, j).
func (s SubPattern) jnFct(i, j int) float64 {
	h := s.Hist.Count(i, j)
	if h <= 0 {
		return 0
	}
	return s.Est.Count(i, j) / h
}

// estWeighted returns Hist[i][j] * jnFct[i][j] = Est[i][j], kept as a
// named helper to mirror the paper's HistB_P2 × Jn_FctB_P2 products.
func (s SubPattern) estWeighted(i, j int) float64 { return s.Est.Count(i, j) }

// JoinAncestor joins sub-pattern anc with sub-pattern desc through an
// ancestor-descendant edge (anc's anchor above desc's anchor) and
// returns the combined sub-pattern anchored at anc's anchor.
//
// When the ancestor anchor has the no-overlap property and coverage is
// available, the Fig 10 ancestor-based formulas are used: the estimate
// sums coverage-weighted descendant estimates, participation follows
// the collision formula N(1-((N-1)/N)^M), and coverage is propagated by
// the participation ratio. Otherwise the primitive Fig 6 ancestor-based
// estimation applies, with participation equal to the estimate
// (Fig 10, case 1) capped at the available node count.
func JoinAncestor(anc, desc SubPattern) (SubPattern, error) {
	if err := checkGrids(anc.Est, desc.Est); err != nil {
		return SubPattern{}, err
	}
	if anc.NoOverlap && anc.Cvg != nil {
		return joinAncestorNoOverlap(anc, desc)
	}
	return joinAncestorOverlap(anc, desc)
}

func joinAncestorOverlap(anc, desc SubPattern) (SubPattern, error) {
	// Primitive (Fig 6) estimation against the descendant's estimation
	// histogram: each participating ancestor node carries jnFct(anc)
	// matches of its own sub-pattern and pairs with the descendant
	// match mass in its join regions.
	ps := desc.Est.Sums()
	est := histogram.NewPosition(anc.Est.Grid())
	for _, c := range anc.Est.NonZeroCells() {
		if v := c.Count * ancestorCoef(ps, c.I, c.J); v != 0 {
			est.Set(c.I, c.J, v)
		}
	}
	// Participation, case 1 (overlap anchor): HistAB = EstAB, capped at
	// the number of distinct anchor nodes actually present per cell.
	hist := capCellwise(est, anc.Hist)
	return SubPattern{Est: est, Hist: hist, Base: anc.Base, Cvg: nil, NoOverlap: anc.NoOverlap}, nil
}

func joinAncestorNoOverlap(anc, desc SubPattern) (SubPattern, error) {
	grid := anc.Est.Grid()

	// Estimate (Fig 10, ancestor-based):
	// Est[i][j] = JnFct_anc[i][j] ×
	//   Σ_{(m,n)} Cvg_anc[m][n][i][j] × Hist_desc[m][n] × JnFct_desc[m][n].
	// The inner product Hist×JnFct is the descendant's estimate mass.
	// Iterating the flattened coverage slices covers exactly the
	// non-zero range m=i..j, n=m..j of the paper's summation, in the
	// same sorted order as the historical map walk — the CSR rows group
	// entries by covered (descendant) cell, so the descendant mass is
	// read once per row instead of once per entry.
	covMass := histogram.NewPosition(grid) // per ancestor cell: Σ Cvg × desc.Est
	vCell, rowStart, aCell, frac := anc.Cvg.Flatten().Entries()
	for r := range vCell {
		m, n := histogram.SplitCell(vCell[r])
		e := desc.estWeighted(m, n)
		if e == 0 {
			continue
		}
		for k := rowStart[r]; k < rowStart[r+1]; k++ {
			i, j := histogram.SplitCell(aCell[k])
			covMass.Add(i, j, frac[k]*e)
		}
	}
	est := histogram.NewPosition(grid)
	covMass.EachNonZero(func(i, j int, mass float64) {
		if v := anc.jnFct(i, j) * mass; v != 0 {
			est.Set(i, j, v)
		}
	})

	// Participation (Fig 10, case 2):
	// N = Hist_anc[i][j], M = Σ_{m=i..j, n=m..j} Hist_desc[m][n],
	// HistAB[i][j] = N × (1 - ((N-1)/N)^M). Only the ancestor's
	// non-zero cells can participate; the triangle sum M is an O(1)
	// lookup into the descendant participation histogram's cached sums.
	descPart := desc.Hist.Sums()
	hist := histogram.NewPosition(grid)
	for _, c := range anc.Hist.NonZeroCells() {
		n := c.Count
		if n <= 0 {
			continue
		}
		m := descPart.Triangle(c.I, c.J)
		if m <= 0 {
			continue
		}
		var part float64
		if n <= 1 {
			part = n // a single ancestor participates if any descendant exists
		} else {
			part = n * (1 - math.Pow((n-1)/n, m))
		}
		hist.Set(c.I, c.J, part)
	}

	// Coverage propagation (Fig 10, case 1):
	// CvgAB[i][j][m][n] = Cvg_anc[i][j][m][n] × HistAB[m][n]/Hist_anc[m][n].
	cvg := scaleCoverage(anc.Cvg, func(m, n int) float64 {
		base := anc.Hist.Count(m, n)
		if base <= 0 {
			return 0
		}
		return hist.Count(m, n) / base
	})
	return SubPattern{Est: est, Hist: hist, Base: anc.Base, Cvg: cvg, NoOverlap: true}, nil
}

// JoinDescendant joins anc and desc through an ancestor-descendant edge
// and returns the combined sub-pattern anchored at desc's anchor.
//
// When the ancestor anchor has the no-overlap property with coverage,
// the Fig 10 descendant-based formulas apply; otherwise the primitive
// Fig 6 descendant-based estimation is used.
func JoinDescendant(anc, desc SubPattern) (SubPattern, error) {
	if err := checkGrids(anc.Est, desc.Est); err != nil {
		return SubPattern{}, err
	}
	grid := desc.Est.Grid()
	est := histogram.NewPosition(grid)

	if anc.NoOverlap && anc.Cvg != nil {
		// Est[i][j] = Hist_desc[i][j] × JnFct_desc[i][j] ×
		//   Σ_{m<=i, n>=j} Cvg_anc[i][j][m][n] × JnFct_anc[m][n].
		// Both coverage-weighted planes iterate the flattened CSR slices
		// (sorted order, bit-identical accumulation to the map walk).
		covFct := histogram.NewPosition(grid)
		covPart := histogram.NewPosition(grid)
		vCell, rowStart, aCell, frac := anc.Cvg.Flatten().Entries()
		for r := range vCell {
			vi, vj := histogram.SplitCell(vCell[r])
			for k := rowStart[r]; k < rowStart[r+1]; k++ {
				m, n := histogram.SplitCell(aCell[k])
				if jf := anc.jnFct(m, n); jf != 0 {
					covFct.Add(vi, vj, frac[k]*jf)
				}
				// Participation input (Fig 10, case 3): the fraction of
				// the descendant cell covered by non-empty ancestor cells.
				if anc.Hist.Count(m, n) > 0 {
					covPart.Add(vi, vj, frac[k])
				}
			}
		}
		for _, c := range desc.Est.NonZeroCells() {
			if v := c.Count * covFct.Count(c.I, c.J); v != 0 {
				est.Set(c.I, c.J, v)
			}
		}
		// Participation (Fig 10, case 3): the descendant participates in
		// proportion to its covered fraction by non-empty ancestor cells.
		hist := histogram.NewPosition(grid)
		for _, c := range desc.Hist.NonZeroCells() {
			if v := c.Count * covPart.Count(c.I, c.J); v != 0 {
				hist.Set(c.I, c.J, v)
			}
		}
		// Coverage propagation (Fig 10, case 2) applies when the
		// descendant anchor itself is no-overlap with coverage.
		var cvg *histogram.Coverage
		if desc.NoOverlap && desc.Cvg != nil {
			cvg = scaleCoverage(desc.Cvg, func(i, j int) float64 {
				base := desc.Hist.Count(i, j)
				if base <= 0 {
					return 0
				}
				return hist.Count(i, j) / base
			})
		}
		return SubPattern{Est: est, Hist: hist, Base: desc.Base, Cvg: cvg, NoOverlap: desc.NoOverlap}, nil
	}

	// Primitive descendant-based (Fig 6).
	ps := anc.Est.Sums()
	for _, c := range desc.Est.NonZeroCells() {
		if v := c.Count * descendantCoef(ps, c.I, c.J); v != 0 {
			est.Set(c.I, c.J, v)
		}
	}
	hist := capCellwise(est, desc.Hist)
	var cvg *histogram.Coverage
	if desc.NoOverlap && desc.Cvg != nil {
		cvg = scaleCoverage(desc.Cvg, func(i, j int) float64 {
			base := desc.Hist.Count(i, j)
			if base <= 0 {
				return 0
			}
			return hist.Count(i, j) / base
		})
	}
	return SubPattern{Est: est, Hist: hist, Base: desc.Base, Cvg: cvg, NoOverlap: desc.NoOverlap}, nil
}

// capCellwise returns min(est, cap) per cell — participation can never
// exceed the distinct nodes available in a cell.
func capCellwise(est, capH *histogram.Position) *histogram.Position {
	out := histogram.NewPosition(est.Grid())
	est.EachNonZero(func(i, j int, v float64) {
		if c := capH.Count(i, j); v > c {
			v = c
		}
		if v != 0 {
			out.Set(i, j, v)
		}
	})
	return out
}

// scaleCoverage builds a new coverage histogram with every entry
// Cvg[i][j][m][n] multiplied by ratio(m, n) — the participation-ratio
// propagation of Fig 10. Entries scaled to zero are dropped.
func scaleCoverage(cvg *histogram.Coverage, ratio func(m, n int) float64) *histogram.Coverage {
	out := histogram.NewCoverage(cvg.Grid())
	cvg.EachFrac(func(i, j, m, n int, f float64) {
		if r := ratio(m, n); r > 0 {
			out.SetFrac(i, j, m, n, f*r)
		}
	})
	return out
}

// validate panics on NaN estimates; estimation arithmetic must never
// produce them, and catching the condition early aids debugging.
func (s SubPattern) validate() error {
	var err error
	s.Est.EachNonZero(func(i, j int, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			err = fmt.Errorf("core: estimate cell (%d,%d) is %v", i, j, v)
		}
	})
	return err
}
