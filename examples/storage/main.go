// Storage: replays the paper's Fig 11/12 trade-off on any dataset —
// how grid size buys estimation accuracy, and what it costs in summary
// bytes. Demonstrates Theorem 1 empirically: storage grows linearly in
// g, not quadratically, because non-zero cells are O(g).
package main

import (
	"fmt"
	"log"

	"xmlest"
	"xmlest/internal/datagen"
)

func main() {
	tree := datagen.GenerateHier(datagen.DefaultHierConfig)
	db := xmlest.FromCatalog(datagen.HierCatalog(tree))

	const query = "//department//email"
	real, err := db.Count(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d nodes; query %s; exact answer %.0f\n\n",
		tree.NumNodes(), query, real)
	fmt.Printf("%6s %14s %14s %12s\n", "grid", "total bytes", "estimate", "est/real")
	for _, g := range []int{2, 4, 8, 16, 32, 64} {
		est, err := db.NewEstimator(xmlest.Options{GridSize: g})
		if err != nil {
			log.Fatal(err)
		}
		res, err := est.Estimate(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %14d %14.1f %12.3f\n",
			g, est.StorageBytes(), res.Estimate, res.Estimate/real)
	}
	fmt.Println("\nstorage grows ~linearly in g (Theorem 1/2); the accuracy")
	fmt.Println("ratio approaches 1 once cells are fine enough to separate")
	fmt.Println("unrelated document regions (paper: g in the 10-20 range).")
}
