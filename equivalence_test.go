// Equivalence tests for the performance paths introduced with the
// sparse histogram engine: on every Table 2 (DBLP) and Table 4
// (synthetic hierarchy) pattern, the sparse/cached/compiled paths must
// reproduce the baseline algorithms' estimates (exact float equality
// where the arithmetic is identical, ≤1e-9 relative where only
// accumulation order differs).
package xmlest_test

import (
	"testing"

	"xmlest"
	"xmlest/internal/core"
	"xmlest/internal/experiments"
)

var table2Pairs = []struct{ anc, desc string }{
	{"tag=article", "tag=author"},
	{"tag=article", "tag=cdrom"},
	{"tag=article", "tag=cite"},
	{"tag=book", "tag=cdrom"},
}

var table4Pairs = []struct{ anc, desc string }{
	{"tag=manager", "tag=department"},
	{"tag=manager", "tag=employee"},
	{"tag=manager", "tag=email"},
	{"tag=department", "tag=employee"},
	{"tag=department", "tag=email"},
	{"tag=employee", "tag=name"},
	{"tag=employee", "tag=email"},
}

func relClose(t *testing.T, label string, got, want float64) {
	t.Helper()
	tol := 1e-9 * (1 + abs(want))
	if diff := got - want; diff > tol || diff < -tol {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestSparsePHJoinMatchesDenseOnTablePatterns cross-checks the sparse
// pH-Join against the literal Fig 9 transcription on every table
// pattern of the paper's evaluation.
func TestSparsePHJoinMatchesDenseOnTablePatterns(t *testing.T) {
	for _, tc := range []struct {
		setup *experiments.Setup
		pairs []struct{ anc, desc string }
	}{
		{experiments.DBLP(), table2Pairs},
		{experiments.Hier(), table4Pairs},
	} {
		for _, q := range tc.pairs {
			ha, err := tc.setup.Estimator.Histogram(q.anc)
			if err != nil {
				t.Fatal(err)
			}
			hb, err := tc.setup.Estimator.Histogram(q.desc)
			if err != nil {
				t.Fatal(err)
			}
			sparse, err := core.PHJoin(ha, hb)
			if err != nil {
				t.Fatal(err)
			}
			dense, err := core.PHJoinDense(ha, hb)
			if err != nil {
				t.Fatal(err)
			}
			relClose(t, q.anc+"//"+q.desc, sparse, dense)
		}
	}
}

// TestEstimatesStableAcrossBuildWorkers builds the Table 4 estimator
// with different worker counts and requires identical estimates on all
// table patterns — the parallel build must be deterministic.
func TestEstimatesStableAcrossBuildWorkers(t *testing.T) {
	s := experiments.Hier()
	build := func(workers int) *core.Estimator {
		est, err := core.NewEstimator(s.Catalog, core.Options{GridSize: 10, BuildWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return est
	}
	ref := build(1)
	for _, workers := range []int{2, 8} {
		est := build(workers)
		for _, q := range table4Pairs {
			want, err := ref.EstimatePair(q.anc, q.desc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := est.EstimatePair(q.anc, q.desc)
			if err != nil {
				t.Fatal(err)
			}
			if got.Estimate != want.Estimate {
				t.Fatalf("workers=%d %s//%s: %v, want %v", workers, q.anc, q.desc, got.Estimate, want.Estimate)
			}
		}
	}
}

// TestFacadeCompiledMatchesDirect compares the three facade paths —
// cold Estimate, cached Estimate, and an explicit PreparedQuery — on
// table patterns and a branching twig.
func TestFacadeCompiledMatchesDirect(t *testing.T) {
	db := xmlest.FromCatalog(experiments.DBLP().Catalog)
	est, err := db.NewEstimator(xmlest.Options{GridSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"//article//author",
		"//article//cdrom",
		"//article//cite",
		"//book//cdrom",
		"//article[.//author]//cite",
	}
	for _, src := range queries {
		cold, err := est.Estimate(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		warm, err := est.Estimate(src) // compiled-cache hit
		if err != nil {
			t.Fatalf("%s (warm): %v", src, err)
		}
		if warm.Estimate != cold.Estimate {
			t.Fatalf("%s: warm %v != cold %v", src, warm.Estimate, cold.Estimate)
		}
		pq, err := est.Compile(src)
		if err != nil {
			t.Fatalf("Compile(%s): %v", src, err)
		}
		if pq.Source() != src {
			t.Fatalf("Source() = %q", pq.Source())
		}
		compiled, err := pq.Estimate()
		if err != nil {
			t.Fatalf("%s (compiled): %v", src, err)
		}
		if compiled.Estimate != cold.Estimate {
			t.Fatalf("%s: compiled %v != direct %v", src, compiled.Estimate, cold.Estimate)
		}
	}
	if _, err := est.Compile("//article//{no such predicate}"); err == nil {
		t.Fatalf("Compile with unknown predicate: want error")
	}
	if _, err := est.Compile("//article[unbalanced"); err == nil {
		t.Fatalf("Compile with syntax error: want error")
	}
}

// TestPairEstimatesMatchSeedAlgorithms pins the sparse paths to the
// estimates the seed's dense algorithms produced, via the dense pH-Join
// (still the literal pseudo-code) for the primitive estimates.
func TestPairEstimatesMatchSeedAlgorithms(t *testing.T) {
	s := experiments.DBLP()
	for _, q := range table2Pairs {
		ha, err := s.Estimator.Histogram(q.anc)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := s.Estimator.Histogram(q.desc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Estimator.EstimatePairPrimitive(q.anc, q.desc)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := core.PHJoinDense(ha, hb)
		if err != nil {
			t.Fatal(err)
		}
		relClose(t, "primitive "+q.anc+"//"+q.desc, res.Estimate, dense)
	}
}
