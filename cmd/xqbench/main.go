// Command xqbench is a rockbench-style closed-loop load generator for
// a live xqestd daemon: N estimate workers and M append workers hammer
// the HTTP API concurrently, and the report records sustained QPS,
// client-observed tail latency (p50/p95/p99), and append-to-visible
// staleness — the time from issuing an append until an /estimate
// response's snapshot version proves the new documents are being
// served.
//
// Against a durable daemon (xqestd -data-dir) it also records
// ack-to-durable: the time from issuing an append until its WAL record
// is known fsynced — the ack itself under -fsync always, a poll of
// /stats durability.durable_seq under interval/off.
//
//	xqestd -dataset dblp -scale 0.1 -addr 127.0.0.1:8080 &
//	xqbench -addr http://127.0.0.1:8080 -duration 10s \
//	        -estimators 8 -appenders 2 -o serving.json
//
// Against a replicated deployment, -targets names every node: appends
// go to the first (the leader), estimates scatter across all, and the
// report adds per-node QPS plus cross-node append-to-visible lag —
// the time from the leader's append ack until each follower serves the
// appended version:
//
//	xqbench -targets http://leader:8080,http://f1:8081 -duration 10s
//
// Closed loop means each worker issues its next request only after the
// previous response: reported QPS is sustained throughput at bounded
// concurrency, not an open-loop arrival rate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xmlest/internal/metrics"
	"xmlest/internal/version"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	targets := flag.String("targets", "", "comma-separated base URLs for a replicated deployment: appends go to the first (the leader), estimates scatter across all, and the report adds per-node QPS and cross-node append-to-visible lag (overrides -addr)")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	estimators := flag.Int("estimators", 8, "closed-loop estimate workers")
	appenders := flag.Int("appenders", 2, "closed-loop append workers")
	patterns := flag.String("patterns", "//article//author,//article//year,//article//title",
		"comma-separated twig patterns cycled by estimate workers")
	visPattern := flag.String("vis-pattern", "", "pattern for visibility probes (default: first of -patterns)")
	wait := flag.Duration("wait", 10*time.Second, "max wait for the daemon to report healthy")
	out := flag.String("o", "", "write the JSON report here (default stdout)")
	showVersion := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("xqbench " + version.String())
		return
	}

	pats := strings.Split(*patterns, ",")
	probe := *visPattern
	if probe == "" {
		probe = pats[0]
	}

	nodes := []string{strings.TrimRight(*addr, "/")}
	if *targets != "" {
		nodes = nodes[:0]
		for _, tgt := range strings.Split(*targets, ",") {
			if tgt = strings.TrimRight(strings.TrimSpace(tgt), "/"); tgt != "" {
				nodes = append(nodes, tgt)
			}
		}
		if len(nodes) == 0 {
			fatal(fmt.Errorf("xqbench: -targets named no URLs"))
		}
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *estimators + *appenders + 8,
		MaxIdleConnsPerHost: *estimators + *appenders + 8,
	}}
	b := &bench{
		addr:    nodes[0],
		nodes:   nodes,
		client:  client,
		pats:    pats,
		probe:   probe,
		est:     metrics.NewLatencyHistogram(),
		app:     metrics.NewLatencyHistogram(),
		visible: metrics.NewLatencyHistogram(),
		durable: metrics.NewLatencyHistogram(),
		durSem:  make(chan struct{}, *appenders+1),
		visSem:  make(chan struct{}, 2),
	}
	for range nodes {
		b.nodeEst = append(b.nodeEst, metrics.NewLatencyHistogram())
		b.nodeVis = append(b.nodeVis, metrics.NewLatencyHistogram())
	}

	if err := b.waitHealthy(*wait); err != nil {
		fatal(err)
	}

	// Scrape the daemon's /metrics on both sides of the run: the report
	// embeds the deltas of every counter-style series, so one JSON file
	// carries the client's view and the daemon's own (fsyncs, commit
	// groups, stage counts) for the same window.
	before := b.scrapeMetrics()

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *estimators; i++ {
		wg.Add(1)
		go func(id int) { defer wg.Done(); b.estimateLoop(ctx, id) }(i)
	}
	for i := 0; i < *appenders; i++ {
		wg.Add(1)
		go func(id int) { defer wg.Done(); b.appendLoop(ctx, id) }(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := b.report(elapsed, *estimators, *appenders)
	report.MetricsDelta = metricsDelta(before, b.scrapeMetrics())
	report.AccuracyDelta = accuracyDelta(report.MetricsDelta)
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if b.errs.Load() > 0 {
		fatal(fmt.Errorf("xqbench: %d request errors during the run", b.errs.Load()))
	}
}

type bench struct {
	addr   string   // the append target: nodes[0]
	nodes  []string // all serving nodes; length 1 outside -targets mode
	client *http.Client
	pats   []string
	probe  string

	est     *metrics.LatencyHistogram // estimate request latency (all nodes)
	app     *metrics.LatencyHistogram // append request latency
	visible *metrics.LatencyHistogram // append-to-visible on the append target
	durable *metrics.LatencyHistogram // ack-to-durable (durable daemons)
	errs    atomic.Uint64

	// Per-node views for -targets mode, index-aligned with nodes:
	// each node's estimate latency (per-node QPS) and its own
	// append-to-visible — for followers that is the cross-node lag from
	// the leader's append ack to the follower serving the version.
	nodeEst []*metrics.LatencyHistogram
	nodeVis []*metrics.LatencyHistogram

	// durSem bounds concurrent durability polls: ack-to-durable is
	// sampled (one outstanding poll per append worker) rather than
	// awaited inline, so an interval/off fsync cadence does not
	// throttle the closed append loop itself.
	durSem chan struct{}

	// visSem likewise bounds concurrent visibility probes:
	// append-to-visible is sampled in the background instead of awaited
	// after every append, so the closed append loop measures append
	// throughput rather than probe round-trips.
	visSem chan struct{}
}

// errBackpressured marks a 503 from /append: expected under load, not
// a benchmark failure.
var errBackpressured = errors.New("append: backpressured")

// estimateResponse is the slice of the wire type xqbench needs.
type estimateResponse struct {
	Version uint64 `json:"version"`
}

type appendResponse struct {
	Version uint64 `json:"version"`
	WALSeq  uint64 `json:"wal_seq"`
	Durable *bool  `json:"durable"`
}

// healthDurability is the /healthz slice the durability poll reads:
// the probe endpoint carries the durable watermark precisely so that
// pollers do not have to pay for the full /stats encoding.
type healthDurability struct {
	DurableSeq *uint64 `json:"durable_seq"`
}

// waitHealthy polls every node's /healthz until each answers 200. The
// whole wait — including any single wedged probe — is bounded by the
// one budget, so a daemon that accepts connections but never responds
// still fails fast.
func (b *bench) waitHealthy(budget time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	for _, node := range b.nodes {
		for {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
			if err != nil {
				return err
			}
			resp, err := b.client.Do(req)
			healthy := false
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				healthy = resp.StatusCode == http.StatusOK
			}
			if healthy {
				break
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("xqbench: daemon at %s not healthy after %s", node, budget)
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
	return nil
}

// estimateLoop is one closed-loop estimate worker cycling through the
// pattern list and, in -targets mode, round-robining across the nodes.
func (b *bench) estimateLoop(ctx context.Context, id int) {
	for i := id; ctx.Err() == nil; i++ {
		pat := b.pats[i%len(b.pats)]
		ni := i % len(b.nodes)
		start := time.Now()
		_, err := b.postEstimate(ctx, b.nodes[ni], pat)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			b.errs.Add(1)
			continue
		}
		elapsed := time.Since(start)
		b.est.Observe(elapsed)
		b.nodeEst[ni].Observe(elapsed)
	}
}

// appendLoop is one closed-loop append worker: it lands a small
// document, then immediately issues the next one. Append-to-visible
// and ack-to-durable are both sampled by bounded background probes, so
// the loop's throughput is append throughput.
func (b *bench) appendLoop(ctx context.Context, id int) {
	rng := rand.New(rand.NewSource(int64(id) + 1))
	for seq := 0; ctx.Err() == nil; seq++ {
		doc := syntheticDoc(rng, id, seq)
		start := time.Now()
		ar, err := b.postAppend(ctx, doc)
		ver := ar.Version
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if !errors.Is(err, errBackpressured) {
				b.errs.Add(1)
			}
			continue
		}
		b.app.Observe(time.Since(start))
		// Ack-to-durable: the daemon reports durability only with a
		// data directory. Under -fsync always the ack is the proof;
		// otherwise sample the durable watermark in the background so
		// the fsync cadence never throttles the append loop.
		if ar.Durable != nil {
			if *ar.Durable {
				b.durable.Observe(time.Since(start))
			} else {
				select {
				case b.durSem <- struct{}{}:
					go func(seq uint64, start time.Time) {
						defer func() { <-b.durSem }()
						if b.pollDurable(ctx, seq) {
							b.durable.Observe(time.Since(start))
						}
					}(ar.WALSeq, start)
				default: // a poll is already sampling; skip this append
				}
			}
		}
		select {
		case b.visSem <- struct{}{}:
			go func(ver uint64, start time.Time) {
				defer func() { <-b.visSem }()
				// One probe per node, concurrently: a follower's visibility
				// lag must be measured from the same append ack as the
				// leader's, not after the leader's probe finished.
				var pwg sync.WaitGroup
				for ni := range b.nodes {
					pwg.Add(1)
					go func(ni int) {
						defer pwg.Done()
						b.pollVisible(ctx, ni, ver, start)
					}(ni)
				}
				pwg.Wait()
			}(ver, start)
		default: // probes already sampling; skip this append
		}
	}
}

// pollVisible probes one node's /estimate until the served snapshot
// version reaches ver, recording the full append-to-visible time: on
// the append target that is install-to-serve, on a follower it is the
// cross-node replication lag.
func (b *bench) pollVisible(ctx context.Context, ni int, ver uint64, start time.Time) {
	for ctx.Err() == nil {
		served, err := b.postEstimate(ctx, b.nodes[ni], b.probe)
		if err != nil {
			if ctx.Err() == nil {
				b.errs.Add(1)
			}
			return
		}
		if served >= ver {
			elapsed := time.Since(start)
			b.nodeVis[ni].Observe(elapsed)
			if ni == 0 {
				b.visible.Observe(elapsed)
			}
			return
		}
		// Pace the probe: it samples staleness, it must not become a
		// busy-loop competing with the measured estimate workers.
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// postEstimate issues one single-pattern estimate against one node and
// returns the snapshot version it was served from.
func (b *bench) postEstimate(ctx context.Context, node, pattern string) (uint64, error) {
	body, _ := json.Marshal(map[string]string{"pattern": pattern})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/estimate", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("estimate: HTTP %d", resp.StatusCode)
	}
	var er estimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return 0, err
	}
	return er.Version, nil
}

// postAppend lands one raw-XML document and returns the append
// response (install version, and WAL watermarks on durable daemons).
func (b *bench) postAppend(ctx context.Context, doc string) (appendResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.addr+"/append", strings.NewReader(doc))
	if err != nil {
		return appendResponse{}, err
	}
	req.Header.Set("Content-Type", "application/xml")
	resp, err := b.client.Do(req)
	if err != nil {
		return appendResponse{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusServiceUnavailable {
		// Backpressure is the daemon working as designed; retry after a
		// beat rather than counting an error.
		time.Sleep(50 * time.Millisecond)
		return appendResponse{}, errBackpressured
	}
	if resp.StatusCode != http.StatusOK {
		return appendResponse{}, fmt.Errorf("append: HTTP %d", resp.StatusCode)
	}
	var ar appendResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return appendResponse{}, err
	}
	return ar, nil
}

// pollDurable waits until the daemon's durable watermark reaches seq
// (fsync interval/off policies), reporting success.
func (b *bench) pollDurable(ctx context.Context, seq uint64) bool {
	for ctx.Err() == nil {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+"/healthz", nil)
		if err != nil {
			return false
		}
		resp, err := b.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return false
			}
			b.errs.Add(1)
			return false
		}
		var hd healthDurability
		derr := json.NewDecoder(resp.Body).Decode(&hd)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if derr != nil || hd.DurableSeq == nil {
			return false
		}
		if *hd.DurableSeq >= seq {
			return true
		}
		// Pace well below the durability cadences being measured (100ms
		// interval flush, seconds-scale checkpoints): even a cheap probe
		// polled tightly taxes the daemon it is measuring.
		select {
		case <-ctx.Done():
			return false
		case <-time.After(20 * time.Millisecond):
		}
	}
	return false
}

// syntheticDoc renders a small dblp-flavoured document whose tags are
// in the default datasets' vocabulary, so appended shards answer the
// benchmark's patterns.
func syntheticDoc(rng *rand.Rand, worker, seq int) string {
	var sb strings.Builder
	sb.WriteString("<article>")
	fmt.Fprintf(&sb, "<author>bench w%d</author>", worker)
	fmt.Fprintf(&sb, "<title>load doc %d-%d</title>", worker, seq)
	fmt.Fprintf(&sb, "<year>%d</year>", 1990+rng.Intn(30))
	sb.WriteString("</article>")
	return sb.String()
}

// histJSON flattens a latency histogram for the report.
type histJSON struct {
	Requests uint64  `json:"requests"`
	QPS      float64 `json:"qps"`
	MeanUS   float64 `json:"mean_us"`
	P50US    float64 `json:"p50_us"`
	P95US    float64 `json:"p95_us"`
	P99US    float64 `json:"p99_us"`
	MaxUS    float64 `json:"max_us"`
}

func digest(h *metrics.LatencyHistogram, elapsed time.Duration) histJSON {
	s := h.Summary()
	out := histJSON{
		Requests: s.Count,
		MeanUS:   s.MeanUSec,
		P50US:    s.P50USec,
		P95US:    s.P95USec,
		P99US:    s.P99USec,
		MaxUS:    float64(s.Max) / float64(time.Microsecond),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		out.QPS = float64(s.Count) / sec
	}
	return out
}

// groupCommitJSON is the report's digest of the daemon's group-commit
// counters: how many appends shared each fsync and how often the disk
// actually synced. Read from the final /stats snapshot, so the figures
// cover the daemon's whole uptime, not just the measured window.
type groupCommitJSON struct {
	Groups        uint64  `json:"groups"`
	Batches       uint64  `json:"batches"`
	MeanGroupSize float64 `json:"mean_group_size"`
	P50GroupSize  float64 `json:"p50_group_size"`
	P95GroupSize  float64 `json:"p95_group_size"`
	MaxGroupSize  uint64  `json:"max_group_size"`
	Fsyncs        uint64  `json:"fsyncs"`
	FsyncsPerSec  float64 `json:"fsyncs_per_sec"`
}

// statsGroupCommit is the /stats slice the report digest reads.
type statsGroupCommit struct {
	Durability *struct {
		GroupCommit *struct {
			Groups    uint64 `json:"groups"`
			Batches   uint64 `json:"batches"`
			GroupSize struct {
				Mean float64 `json:"mean"`
				P50  float64 `json:"p50"`
				P95  float64 `json:"p95"`
				Max  uint64  `json:"max"`
			} `json:"group_size"`
			Fsyncs       uint64  `json:"fsyncs"`
			FsyncsPerSec float64 `json:"fsyncs_per_sec"`
		} `json:"group_commit"`
	} `json:"durability"`
}

// nodeReportJSON is one node's view in a -targets (replicated) run:
// its own estimate serving figures and its append-to-visible lag —
// cross-node for followers, measured from the leader's append ack.
type nodeReportJSON struct {
	Target          string   `json:"target"`
	Role            string   `json:"role"`
	Estimate        histJSON `json:"estimate"`
	AppendToVisible histJSON `json:"append_to_visible"`
}

type reportJSON struct {
	Target          string           `json:"target"`
	DurationSeconds float64          `json:"duration_seconds"`
	EstimateWorkers int              `json:"estimate_workers"`
	AppendWorkers   int              `json:"append_workers"`
	Errors          uint64           `json:"errors"`
	Estimate        histJSON         `json:"estimate"`
	Append          histJSON         `json:"append"`
	AppendToVisible histJSON         `json:"append_to_visible"`
	// Nodes breaks the run down per serving node in -targets mode:
	// appends all went to the first (the leader); each entry's
	// append_to_visible is that node's lag from the same append acks.
	Nodes []nodeReportJSON `json:"nodes,omitempty"`
	AckToDurable    *histJSON        `json:"ack_to_durable,omitempty"`
	GroupCommit     *groupCommitJSON `json:"group_commit,omitempty"`
	ServerStats     json.RawMessage  `json:"server_stats,omitempty"`
	// MetricsDelta is the change in every counter-style /metrics series
	// (_total/_count/_sum suffixes) across the load window — the
	// daemon's own account of the run (fsyncs, commit groups, per-stage
	// samples). Absent when the daemon exposes no /metrics.
	MetricsDelta map[string]float64 `json:"metrics_delta,omitempty"`
	// AccuracyDelta surfaces the shadow-execution accuracy counters
	// (the xqest_accuracy_* families) separately from the full delta
	// map, so accuracy regression runs read them without grepping.
	// Absent when the daemon ran without shadow sampling.
	AccuracyDelta map[string]float64 `json:"accuracy_delta,omitempty"`
}

// scrapeMetrics fetches and parses the daemon's Prometheus exposition
// into a series->value map (key = name plus label set, verbatim).
// A daemon without /metrics yields nil, which disables the delta.
func (b *bench) scrapeMetrics() map[string]float64 {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+"/metrics", nil)
	if err != nil {
		return nil
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

// metricsDelta subtracts two scrapes over the counter-style series.
// Buckets are skipped (the _count/_sum pair already summarizes each
// histogram); gauges are skipped because a point-in-time difference of
// a gauge is noise, not a rate.
func metricsDelta(before, after map[string]float64) map[string]float64 {
	if before == nil || after == nil {
		return nil
	}
	out := make(map[string]float64)
	for key, v := range after {
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !strings.HasSuffix(name, "_total") && !strings.HasSuffix(name, "_count") &&
			!strings.HasSuffix(name, "_sum") {
			continue
		}
		if d := v - before[key]; d != 0 {
			out[key] = d
		}
	}
	return out
}

// accuracyDelta extracts the shadow-execution accuracy counters from a
// full metrics delta (nil when none moved — sampling off or no scrape).
func accuracyDelta(delta map[string]float64) map[string]float64 {
	var out map[string]float64
	for key, v := range delta {
		if strings.HasPrefix(key, "xqest_accuracy_") {
			if out == nil {
				out = make(map[string]float64)
			}
			out[key] = v
		}
	}
	return out
}

func (b *bench) report(elapsed time.Duration, estimators, appenders int) reportJSON {
	r := reportJSON{
		Target:          b.addr,
		DurationSeconds: elapsed.Seconds(),
		EstimateWorkers: estimators,
		AppendWorkers:   appenders,
		Errors:          b.errs.Load(),
		Estimate:        digest(b.est, elapsed),
		Append:          digest(b.app, elapsed),
		AppendToVisible: digest(b.visible, elapsed),
	}
	if d := digest(b.durable, elapsed); d.Requests > 0 {
		r.AckToDurable = &d
	}
	if len(b.nodes) > 1 {
		for ni, node := range b.nodes {
			role := "follower"
			if ni == 0 {
				role = "leader"
			}
			r.Nodes = append(r.Nodes, nodeReportJSON{
				Target:          node,
				Role:            role,
				Estimate:        digest(b.nodeEst[ni], elapsed),
				AppendToVisible: digest(b.nodeVis[ni], elapsed),
			})
		}
	}
	// Fold in the daemon's own view (server-side latency excludes the
	// network) when it answers promptly; a daemon wedged after the run
	// must not hang the report we already computed.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+"/stats", nil)
	if err != nil {
		return r
	}
	if resp, err := b.client.Do(req); err == nil {
		stats, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK && json.Valid(stats) {
			r.ServerStats = stats
			var sg statsGroupCommit
			if json.Unmarshal(stats, &sg) == nil && sg.Durability != nil &&
				sg.Durability.GroupCommit != nil && sg.Durability.GroupCommit.Groups > 0 {
				gc := sg.Durability.GroupCommit
				r.GroupCommit = &groupCommitJSON{
					Groups:        gc.Groups,
					Batches:       gc.Batches,
					MeanGroupSize: gc.GroupSize.Mean,
					P50GroupSize:  gc.GroupSize.P50,
					P95GroupSize:  gc.GroupSize.P95,
					MaxGroupSize:  gc.GroupSize.Max,
					Fsyncs:        gc.Fsyncs,
					FsyncsPerSec:  gc.FsyncsPerSec,
				}
			}
		}
	}
	return r
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
