package shard

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"xmlest/internal/core"
	"xmlest/internal/fsio"
	"xmlest/internal/manifest"
	"xmlest/internal/predicate"
	"xmlest/internal/wal"
	"xmlest/internal/xmltree"
)

// Data-directory layout:
//
//	<dir>/MANIFEST.json   the checkpoint catalog (internal/manifest)
//	<dir>/shards/*.xqs    checkpointed XQS1 shard summaries
//	<dir>/wal/*.wal       write-ahead-log segments (internal/wal)
const (
	// WALDir is the write-ahead-log subdirectory of a data directory.
	WALDir = "wal"
	// ShardDir is the checkpointed-summaries subdirectory.
	ShardDir = "shards"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// DurableConfig tunes a durable store.
type DurableConfig struct {
	// Options shape the summaries checkpoints persist. GridSize is
	// pinned in the manifest: reopening a data directory with a
	// different grid is an error, because checkpointed summaries are
	// served as-is and cannot be rebuilt from documents they no longer
	// have.
	Options core.Options

	// WAL tunes the write-ahead log: fsync policy and segment size.
	WAL wal.Options

	// FS is the filesystem the store (manifest, checkpoints, and —
	// unless WAL.FS overrides it — the WAL) runs on; nil means the real
	// one. Fault-injection tests substitute an fsio.FaultFS.
	FS fsio.FS
}

// DegradedError marks a mutation refused, or failed, because a storage
// component is in a failed state. Component is "wal" (sealed log —
// permanent until restart) or "checkpoint" (last checkpoint failed —
// clears when one succeeds); reads are unaffected either way.
type DegradedError struct {
	Component string
	Err       error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("shard: %s degraded: %v", e.Component, e.Err)
}

func (e *DegradedError) Unwrap() error { return e.Err }

// RecoveryInfo describes one boot-time recovery.
type RecoveryInfo struct {
	// CheckpointShards counts shards loaded from the manifest;
	// CheckpointVersion is the manifest's pinned version.
	CheckpointShards  int    `json:"checkpoint_shards"`
	CheckpointVersion uint64 `json:"checkpoint_version"`
	// ReplayedRecords and ReplayedDocs count the WAL tail replayed on
	// top of the checkpoint.
	ReplayedRecords int `json:"replayed_records"`
	ReplayedDocs    int `json:"replayed_docs"`
	// SkippedRecords counts CRC-valid records whose documents failed to
	// parse — batches the original process rejected before
	// acknowledging, skipped identically here.
	SkippedRecords int `json:"skipped_records"`
}

// DurabilityStats is the durable layer's introspection surface (the
// daemon's /stats "durability" section).
type DurabilityStats struct {
	Dir   string `json:"dir"`
	Fsync string `json:"fsync"`
	// WALSegments/WALBytes size the live log; LastSeq is the newest
	// appended record and DurableSeq the newest known fsynced.
	WALSegments int    `json:"wal_segments"`
	WALBytes    int64  `json:"wal_bytes"`
	LastSeq     uint64 `json:"last_seq"`
	DurableSeq  uint64 `json:"durable_seq"`
	// CheckpointVersion/CheckpointWALSeq describe the newest manifest;
	// Checkpoints counts checkpoints taken by this process.
	CheckpointVersion uint64 `json:"checkpoint_version"`
	CheckpointWALSeq  uint64 `json:"checkpoint_wal_seq"`
	Checkpoints       uint64 `json:"checkpoints"`
	// CheckpointFailures counts checkpoint attempts that failed; the
	// checkpoint loop retries with backoff, so a transient disk error
	// shows up here without degrading appends.
	CheckpointFailures uint64 `json:"checkpoint_failures,omitempty"`
	// Degraded reports a failed storage component: DegradedComponent is
	// "wal" (log sealed; appends refused until restart) or "checkpoint"
	// (last checkpoint failed; clears on the next success), with
	// DegradedReason the underlying error. Reads serve normally.
	Degraded          bool   `json:"degraded,omitempty"`
	DegradedComponent string `json:"degraded_component,omitempty"`
	DegradedReason    string `json:"degraded_reason,omitempty"`
	// Recovery echoes the boot-time replay.
	Recovery RecoveryInfo `json:"recovery"`
}

// DurableStore wraps a Store with LSM-style durability: every append
// is written (and fsynced, per policy) to a write-ahead log at the
// exact version it installs at, checkpoints persist the serving set's
// summaries behind an atomically-renamed manifest and truncate the
// covered log prefix, and OpenDurable replays manifest + WAL tail so
// a restart serves every acknowledged batch at a version no lower
// than the client observed.
type DurableStore struct {
	store   *Store
	log     *wal.Log
	dir     string
	fs      fsio.FS
	opts    core.Options
	walMode wal.Mode

	// cpMu serializes checkpoints (and the drop+checkpoint pair). The
	// files map — shard id to its persisted checkpoint entry, so
	// unchanged shards are never rewritten — is populated at boot and
	// then only touched under cpMu.
	cpMu  sync.Mutex
	files map[uint64]manifest.Shard

	recovery    RecoveryInfo
	checkpoints atomic.Uint64
	cpVersion   atomic.Uint64
	cpSeq       atomic.Uint64

	// cpErr is the last checkpoint failure (nil after a success): the
	// transient half of the degraded surface. The permanent half — a
	// sealed WAL — lives in the log itself (wal.Log.Err).
	cpErr      atomic.Pointer[string]
	cpFailures atomic.Uint64
}

// Degraded reports the store's failed component, if any: "wal" when
// the log has sealed after an I/O failure (appends are refused until
// the process restarts against a healthy disk), or "checkpoint" when
// the most recent checkpoint attempt failed (appends still work; the
// WAL simply keeps growing until a checkpoint succeeds). Reads are
// never degraded — the serving snapshot lives in memory.
func (d *DurableStore) Degraded() (component, reason string, degraded bool) {
	if err := d.log.Err(); err != nil {
		return "wal", err.Error(), true
	}
	if p := d.cpErr.Load(); p != nil {
		return "checkpoint", *p, true
	}
	return "", "", false
}

// OpenDurable opens a data directory, recovering whatever it holds:
// the manifest's checkpointed shards are loaded summary-only, the WAL
// tail past the manifest's truncation point is replayed as tree-backed
// shards at the versions their appends acknowledged, and the log is
// positioned for new appends.
//
// bootstrap supplies the initial store — predicate vocabulary plus
// seed corpus. It runs on every boot: a fresh directory adopts the
// bootstrapped store outright (its shards become the corpus the first
// checkpoint persists), while a directory with a checkpoint keeps only
// the bootstrapped predicate Spec, since its shards already live in
// the checkpoint. A nil bootstrap starts empty with the all-tags
// vocabulary — the pure-ingest daemon.
func OpenDurable(dir string, bootstrap func() (*Store, error), cfg DurableConfig) (*DurableStore, error) {
	opts := cfg.Options
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.GridSize == 0 {
		opts.GridSize = core.DefaultOptions.GridSize
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = fsio.OS
	}
	if cfg.WAL.FS == nil {
		cfg.WAL.FS = fsys
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: data dir: %w", err)
	}
	man, haveMan, err := manifest.LoadFS(fsys, dir)
	if err != nil {
		// A corrupt manifest is not silently discarded: that would boot
		// an empty database over a directory full of data.
		return nil, err
	}
	if haveMan && man.GridSize != opts.GridSize {
		return nil, fmt.Errorf(
			"shard: data dir %s was checkpointed with grid size %d, reopened with %d; use the original options",
			dir, man.GridSize, opts.GridSize)
	}

	var st *Store
	if bootstrap != nil {
		bs, err := bootstrap()
		if err != nil {
			return nil, fmt.Errorf("shard: bootstrap: %w", err)
		}
		if haveMan {
			// The bootstrap corpus already lives in the checkpoint; keep
			// only its predicate recipe so replayed shards speak the same
			// vocabulary.
			st = NewStore(bs.Spec())
		} else {
			st = bs
		}
	} else {
		st = NewStore(predicate.Spec{AllTags: true})
	}

	d := &DurableStore{
		store:   st,
		dir:     dir,
		fs:      fsys,
		opts:    opts,
		walMode: cfg.WAL.Mode,
		files:   make(map[uint64]manifest.Shard),
	}
	if haveMan {
		for _, entry := range man.Shards {
			est, err := loadShardEntry(fsys, dir, entry)
			if err != nil {
				return nil, err
			}
			sh := &Shard{
				id:       st.nextID.Add(1),
				docs:     entry.Docs,
				nodes:    entry.Nodes,
				prebuilt: est,
				walSeq:   entry.WALSeq,
			}
			d.installRecovered(sh)
			entry.ID = sh.id
			d.files[sh.id] = entry
		}
		st.setMinVersion(man.Version)
		d.recovery.CheckpointShards = len(man.Shards)
		d.recovery.CheckpointVersion = man.Version
		d.cpVersion.Store(man.Version)
		d.cpSeq.Store(man.WALSeq)
	}

	log, err := wal.Open(filepath.Join(dir, WALDir), cfg.WAL)
	if err != nil {
		return nil, err
	}
	d.log = log
	var after uint64
	if haveMan {
		after = man.WALSeq
		// The manifest's truncation point floors the sequence space: if
		// the log directory lost its post-truncation segment (ModeOff
		// skips the dir fsync; a restored backup may omit wal/ entirely),
		// numbering must still resume above every checkpointed record.
		log.SetMinSeq(man.WALSeq)
	}
	if err := log.Replay(after, d.replayRecord); err != nil {
		log.Close()
		return nil, fmt.Errorf("shard: wal replay: %w", err)
	}
	return d, nil
}

// replayRecord rebuilds one logged batch during recovery, landing it
// at the version its append acknowledged.
func (d *DurableStore) replayRecord(rec wal.Record) error {
	readers := make([]io.Reader, len(rec.Docs))
	for i, doc := range rec.Docs {
		readers[i] = bytes.NewReader(doc)
	}
	tree, err := xmltree.ParseCollection(readers, xmltree.DefaultParseOptions)
	if err != nil || tree.NumNodes() == 0 {
		// The record is CRC-valid, so these are the exact bytes the
		// original process saw — and parsing is deterministic, so it
		// rejected (and never acknowledged) this batch too. Skip it the
		// same way.
		d.recovery.SkippedRecords++
		return nil
	}
	cat := d.store.Spec().Build(tree)
	sh, err := d.store.newShard(tree, cat)
	if err != nil {
		return err
	}
	sh.walSeq = rec.Seq
	if rec.Version > 1 {
		d.store.setMinVersion(rec.Version - 1)
	}
	d.installRecovered(sh)
	d.recovery.ReplayedRecords++
	d.recovery.ReplayedDocs += len(rec.Docs)
	return nil
}

// installRecovered appends a recovered shard to the serving set
// (recovery is single-threaded; the lock is for form).
func (d *DurableStore) installRecovered(sh *Shard) {
	d.store.writeMu.Lock()
	defer d.store.writeMu.Unlock()
	d.store.appendLocked(sh)
}

// loadShardEntry reads and verifies one checkpointed summary.
func loadShardEntry(fsys fsio.FS, dir string, entry manifest.Shard) (*core.Estimator, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, entry.File))
	if err != nil {
		return nil, fmt.Errorf("shard: checkpoint %s: %w", entry.File, err)
	}
	if int64(len(data)) != entry.Bytes {
		return nil, fmt.Errorf("shard: checkpoint %s: %d bytes, manifest says %d (corrupt data directory)",
			entry.File, len(data), entry.Bytes)
	}
	if crc32.Checksum(data, crcTable) != entry.CRC32 {
		return nil, fmt.Errorf("shard: checkpoint %s: checksum mismatch (corrupt data directory)", entry.File)
	}
	est, err := core.UnmarshalEstimator(data)
	if err != nil {
		return nil, fmt.Errorf("shard: checkpoint %s: %w", entry.File, err)
	}
	return est, nil
}

// Store returns the wrapped serving store. Reads (Current, estimation)
// go straight to it; mutations that must be durable go through the
// DurableStore.
func (d *DurableStore) Store() *Store { return d.store }

// Recovery reports what boot-time recovery rebuilt.
func (d *DurableStore) Recovery() RecoveryInfo { return d.recovery }

// DurableSeq returns the newest WAL sequence known fsynced.
func (d *DurableStore) DurableSeq() uint64 { return d.log.DurableSeq() }

// AppendDocs durably lands one batch of raw XML documents as a new
// shard: the batch is parsed and summarized off the serving path,
// logged to the WAL at the exact version the shard installs at
// (fsynced before return under the always policy), and only then
// installed. An error means nothing was acknowledged or installed.
//
// The WAL write and the install share the store's write lock, so the
// logged ack version is exact even while compactions install
// concurrently — the recovery invariant depends on it.
func (d *DurableStore) AppendDocs(docs [][]byte) (*Shard, uint64, error) {
	if len(docs) == 0 {
		return nil, 0, fmt.Errorf("shard: refusing to append an empty batch")
	}
	if err := d.log.Err(); err != nil {
		// The log sealed on an earlier I/O failure; fail before doing
		// any parse work.
		return nil, 0, &DegradedError{Component: "wal", Err: err}
	}
	readers := make([]io.Reader, len(docs))
	for i, doc := range docs {
		readers[i] = bytes.NewReader(doc)
	}
	tree, err := xmltree.ParseCollection(readers, xmltree.DefaultParseOptions)
	if err != nil {
		return nil, 0, err
	}
	if tree.NumNodes() == 0 {
		return nil, 0, fmt.Errorf("shard: refusing to append an empty tree")
	}
	cat := d.store.Spec().Build(tree)
	sh, err := d.store.newShard(tree, cat)
	if err != nil {
		return nil, 0, err
	}
	st := d.store
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	seq, err := d.log.Append(st.Current().version+1, docs)
	if err != nil {
		if d.log.Err() != nil {
			return nil, 0, &DegradedError{Component: "wal", Err: err}
		}
		return nil, 0, err
	}
	sh.walSeq = seq
	st.appendLocked(sh)
	return sh, seq, nil
}

// Checkpoint persists the serving set without the WAL: every live
// shard's summary lands as an XQS1 file (shards already persisted by
// an earlier checkpoint keep their files untouched), the manifest
// swaps in atomically, orphaned shard files are collected, and WAL
// segments wholly covered by the checkpoint are deleted. It returns
// the pinned version. Appends and estimates proceed concurrently; a
// batch landing mid-checkpoint simply stays in the WAL for the next
// one.
func (d *DurableStore) Checkpoint() (uint64, error) {
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	return d.checkpointGuarded()
}

// checkpointGuarded runs one checkpoint attempt under cpMu, keeping
// the degraded surface in sync: a failure records the reason and bumps
// the failure counter, a success clears it. A checkpoint is attempted
// even when the WAL has sealed — it can still persist every already-
// acknowledged batch, shrinking what a restart must replay.
func (d *DurableStore) checkpointGuarded() (uint64, error) {
	v, err := d.checkpointLocked()
	if err != nil {
		d.cpFailures.Add(1)
		reason := err.Error()
		d.cpErr.Store(&reason)
		return 0, &DegradedError{Component: "checkpoint", Err: err}
	}
	d.cpErr.Store(nil)
	return v, nil
}

func (d *DurableStore) checkpointLocked() (uint64, error) {
	st := d.store
	// Pin the set and the log watermark together under the write lock:
	// appends log and install atomically under it, so every record with
	// seq <= lastSeq has its shard in set (or merged into one, or
	// dropped) — the truncation-safety invariant.
	st.writeMu.Lock()
	set := st.Current()
	lastSeq := d.log.LastSeq()
	st.writeMu.Unlock()

	shardDir := filepath.Join(d.dir, ShardDir)
	if err := d.fs.MkdirAll(shardDir, 0o755); err != nil {
		return 0, fmt.Errorf("shard: checkpoint: %w", err)
	}
	entries := make([]manifest.Shard, 0, set.Len())
	written := make(map[uint64]manifest.Shard)
	for _, sh := range set.Shards() {
		entry, ok := d.files[sh.id]
		if !ok {
			est, err := sh.Summary(d.opts)
			if err != nil {
				return 0, fmt.Errorf("shard: checkpoint: %w", err)
			}
			blob, err := est.MarshalBinary()
			if err != nil {
				return 0, fmt.Errorf("shard: checkpoint: %w", err)
			}
			rel := filepath.Join(ShardDir, fmt.Sprintf("cp-%d-%d.xqs", set.Version(), sh.id))
			if err := writeFileSync(d.fs, filepath.Join(d.dir, rel), blob); err != nil {
				return 0, err
			}
			entry = manifest.Shard{
				ID:     sh.id,
				File:   rel,
				Docs:   sh.docs,
				Nodes:  sh.nodes,
				WALSeq: sh.walSeq,
				Bytes:  int64(len(blob)),
				CRC32:  crc32.Checksum(blob, crcTable),
			}
			written[sh.id] = entry
		}
		entries = append(entries, entry)
	}
	if len(written) > 0 {
		// New shard files must be durable before the manifest points at
		// them.
		if err := d.fs.SyncDir(shardDir); err != nil {
			return 0, fmt.Errorf("shard: checkpoint: %w", err)
		}
	}
	man := &manifest.Manifest{
		FormatVersion: manifest.Format,
		Version:       set.Version(),
		WALSeq:        lastSeq,
		GridSize:      d.opts.GridSize,
		Shards:        entries,
	}
	if err := man.WriteFS(d.fs, d.dir); err != nil {
		return 0, err
	}
	// Only now are the new files reusable: recording them earlier would
	// let a retry after a failed round skip the directory fsync (or
	// reference files no durable manifest ever committed).
	for id, entry := range written {
		d.files[id] = entry
	}
	d.cpVersion.Store(set.Version())
	d.cpSeq.Store(lastSeq)
	d.checkpoints.Add(1)

	// The old manifest is gone; files it referenced that the new one
	// does not (compacted-away or dropped shards) are orphans now, as
	// are cache entries for shards no longer alive.
	d.gcShardFiles(shardDir, entries)

	if err := d.log.Truncate(lastSeq); err != nil {
		return 0, err
	}
	return set.Version(), nil
}

// gcShardFiles removes checkpoint files and cache entries no longer
// referenced. GC failures are cosmetic (stray files, never data loss)
// and deliberately unreported.
func (d *DurableStore) gcShardFiles(shardDir string, live []manifest.Shard) {
	liveFile := make(map[string]bool, len(live))
	liveID := make(map[uint64]bool, len(live))
	for _, e := range live {
		liveFile[filepath.Base(e.File)] = true
		liveID[e.ID] = true
	}
	for id := range d.files {
		if !liveID[id] {
			delete(d.files, id)
		}
	}
	dirents, err := d.fs.ReadDir(shardDir)
	if err != nil {
		return
	}
	for _, e := range dirents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xqs") || liveFile[e.Name()] {
			continue
		}
		_ = d.fs.Remove(filepath.Join(shardDir, e.Name()))
	}
}

// Drop durably removes a shard: the serving set drops it and a
// checkpoint immediately persists the new set — without one, the next
// recovery would resurrect the shard from its WAL record.
func (d *DurableStore) Drop(id uint64) (bool, error) {
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	if !d.store.Drop(id) {
		return false, nil
	}
	_, err := d.checkpointGuarded()
	return true, err
}

// Close checkpoints the serving set and closes the WAL. The directory
// can be reopened with OpenDurable; a process that dies without Close
// recovers the same state from manifest + WAL instead.
func (d *DurableStore) Close() error {
	_, err := d.Checkpoint()
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the durable layer.
func (d *DurableStore) Stats() DurabilityStats {
	segs := d.log.Segments()
	var bytes int64
	for _, s := range segs {
		bytes += s.Bytes
	}
	comp, reason, degraded := d.Degraded()
	return DurabilityStats{
		Dir:                d.dir,
		Fsync:              d.walMode.String(),
		WALSegments:        len(segs),
		WALBytes:           bytes,
		LastSeq:            d.log.LastSeq(),
		DurableSeq:         d.log.DurableSeq(),
		CheckpointVersion:  d.cpVersion.Load(),
		CheckpointWALSeq:   d.cpSeq.Load(),
		Checkpoints:        d.checkpoints.Load(),
		CheckpointFailures: d.cpFailures.Load(),
		Degraded:           degraded,
		DegradedComponent:  comp,
		DegradedReason:     reason,
		Recovery:           d.recovery,
	}
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(fsys fsio.FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("shard: checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("shard: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("shard: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: checkpoint: %w", err)
	}
	return nil
}
