package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func docs(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

// collect replays the whole directory into memory, copying doc bytes
// (replay slices alias the segment buffer).
func collect(t *testing.T, dir string, after uint64) []Record {
	t.Helper()
	var recs []Record
	err := ScanDir(dir, after, func(rec Record) error {
		cp := Record{Seq: rec.Seq, Version: rec.Version}
		for _, d := range rec.Docs {
			cp.Docs = append(cp.Docs, bytes.Clone(d))
		}
		recs = append(recs, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: ModeAlways})
	if err != nil {
		t.Fatal(err)
	}
	batches := [][][]byte{
		docs("<a/>"),
		docs("<b>x</b>", "<c/>"),
		docs("<d>long text content</d>"),
	}
	for i, b := range batches {
		seq, err := l.Append(uint64(i+10), b)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq %d, want %d", seq, i+1)
		}
		if l.DurableSeq() != seq {
			t.Fatalf("ModeAlways: durable seq %d after appending %d", l.DurableSeq(), seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, dir, 0)
	if len(recs) != len(batches) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(batches))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || rec.Version != uint64(i+10) {
			t.Fatalf("record %d: seq %d version %d", i, rec.Seq, rec.Version)
		}
		if len(rec.Docs) != len(batches[i]) {
			t.Fatalf("record %d: %d docs, want %d", i, len(rec.Docs), len(batches[i]))
		}
		for j, d := range rec.Docs {
			if !bytes.Equal(d, batches[i][j]) {
				t.Fatalf("record %d doc %d: %q != %q", i, j, d, batches[i][j])
			}
		}
	}
	// Replay after a watermark skips covered records.
	if tail := collect(t, dir, 2); len(tail) != 1 || tail[0].Seq != 3 {
		t.Fatalf("replay after 2: %+v", tail)
	}
}

func TestReopenResumesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, docs("<a/>")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(2, docs("<b/>")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 2 {
		t.Fatalf("reopened last seq %d, want 2", l2.LastSeq())
	}
	seq, err := l2.Append(3, docs("<c/>"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("resumed seq %d, want 3", seq)
	}
	if got := collect(t, dir, 0); len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(uint64(i+1), docs(fmt.Sprintf("<d%d/>", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	segs, err := List(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("List: %v, %d segments", err, len(segs))
	}
	// Simulate a crash mid-append: write a partial frame at the tail.
	f, err := os.OpenFile(segs[0].Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	segs, err = List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].TornBytes != 6 || segs[0].Records != 3 {
		t.Fatalf("torn=%d records=%d, want 6 and 3", segs[0].TornBytes, segs[0].Records)
	}

	// Reopen truncates the torn tail and appends cleanly after it.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastSeq() != 3 {
		t.Fatalf("last seq %d, want 3", l2.LastSeq())
	}
	if _, err := l2.Append(4, docs("<after/>")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	recs := collect(t, dir, 0)
	if len(recs) != 4 || recs[3].Seq != 4 {
		t.Fatalf("replay after torn-tail repair: %d records", len(recs))
	}
}

func TestCorruptTailSkippedAtLastValidRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := l.Append(uint64(i+1), docs("<x/>")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := List(dir)
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the second record: its CRC fails, replay
	// keeps the first record.
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(segs[0].Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, dir, 0)
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("corrupt tail: replayed %d records", len(recs))
	}
}

func TestGarbageSegmentRecreatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := l.Append(1, docs("<a/>")); err != nil || seq != 1 {
		t.Fatalf("append after garbage: seq %d err %v", seq, err)
	}
	l.Close()
	if recs := collect(t, dir, 0); len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
}

func TestSegmentRollAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a roll every couple of records.
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(uint64(i+1), docs("<doc>roll me over</doc>")); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(l.Segments()); n < 3 {
		t.Fatalf("expected several segments, got %d", n)
	}
	if got := collect(t, dir, 0); len(got) != 10 {
		t.Fatalf("replayed %d records across segments, want 10", len(got))
	}

	// Truncate through seq 6: only segments wholly <= 6 disappear.
	if err := l.Truncate(6); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, dir, 0)
	if len(recs) == 0 || recs[len(recs)-1].Seq != 10 {
		t.Fatalf("tail lost by truncation: %d records", len(recs))
	}
	// Every record > 6 must survive.
	keep := 0
	for _, rec := range recs {
		if rec.Seq > 6 {
			keep++
		}
	}
	if keep != 4 {
		t.Fatalf("records > 6 after truncate: %d, want 4", keep)
	}

	// Truncating through the last seq rolls the active segment and
	// leaves exactly one fresh, empty segment.
	if err := l.Truncate(l.LastSeq()); err != nil {
		t.Fatal(err)
	}
	segs := l.Segments()
	if len(segs) != 1 || segs[0].LastSeq != 0 {
		t.Fatalf("full truncate left %d segments (last=%d)", len(segs), segs[0].LastSeq)
	}
	// Sequence numbering continues past the truncation.
	seq, err := l.Append(11, docs("<post/>"))
	if err != nil || seq != 11 {
		t.Fatalf("append after full truncate: seq %d err %v", seq, err)
	}
	l.Close()
	if recs := collect(t, dir, 0); len(recs) != 1 || recs[0].Seq != 11 {
		t.Fatalf("post-truncate replay: %+v", recs)
	}
}

func TestOpenRefusesCorruptInteriorSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append(uint64(i+1), docs("<doc>roll me over</doc>")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := List(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("List: %v, %d segments", err, len(segs))
	}
	// Corrupt the FIRST (interior) segment: replay would silently skip
	// its tail while later segments still replay, so Open must refuse.
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(segs[0].Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 64}); err == nil {
		t.Fatal("corrupt interior segment accepted")
	}
}

func TestSetMinSeq(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetMinSeq(41)
	if l.LastSeq() != 41 || l.DurableSeq() != 41 {
		t.Fatalf("floors not applied: last %d durable %d", l.LastSeq(), l.DurableSeq())
	}
	seq, err := l.Append(1, docs("<a/>"))
	if err != nil || seq != 42 {
		t.Fatalf("append after SetMinSeq(41): seq %d err %v", seq, err)
	}
	// A floor below the current state is a no-op.
	l.SetMinSeq(3)
	if seq, err := l.Append(1, docs("<b/>")); err != nil || seq != 43 {
		t.Fatalf("append after lowering no-op floor: seq %d err %v", seq, err)
	}
}

func TestIntervalModeAdvancesDurableSeq(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: ModeInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	seq, err := l.Append(1, docs("<a/>"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.DurableSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("durable seq stuck at %d, want %d", l.DurableSeq(), seq)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestOffModeSyncsOnClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: ModeOff})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append(1, docs("<a/>"))
	if err != nil {
		t.Fatal(err)
	}
	if l.DurableSeq() != 0 {
		t.Fatalf("ModeOff advanced durable seq to %d before close", l.DurableSeq())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.DurableSeq() != seq {
		t.Fatalf("close did not sync: durable %d, want %d", l.DurableSeq(), seq)
	}
}

func TestAppendValidation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	l.Close()
	if _, err := l.Append(1, docs("<a/>")); err == nil {
		t.Fatal("append on closed log accepted")
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"always", ModeAlways}, {"interval", ModeInterval}, {"off", ModeOff}} {
		m, err := ParseMode(tc.in)
		if err != nil || m != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.in, m, err)
		}
		if m.String() != tc.in {
			t.Fatalf("Mode.String() = %q, want %q", m.String(), tc.in)
		}
	}
	if _, err := ParseMode("sometimes"); err == nil {
		t.Fatal("bad mode accepted")
	}
}
