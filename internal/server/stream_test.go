package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xmlest"
)

func postStreamXML(t *testing.T, base, doc string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/append-stream", "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAppendStreamEndToEnd: a document POSTed to /append-stream lands
// as a summary-only shard, bumps the serving version, and answers
// estimates — without the server ever buffering the document beyond
// its disk spool.
func TestAppendStreamEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	before := decode[EstimateResponse](t, postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"}))

	resp := postStreamXML(t, ts.URL, dept2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append-stream: HTTP %d", resp.StatusCode)
	}
	ar := decode[AppendResponse](t, resp)
	if !ar.Streamed || ar.Docs != 1 || ar.Version == 0 || ar.WALSeq != 0 {
		t.Fatalf("append-stream response: %+v", ar)
	}

	after := decode[EstimateResponse](t, postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"}))
	if after.Version < ar.Version {
		t.Fatalf("estimate version %d below append version %d", after.Version, ar.Version)
	}
	if *after.Estimate <= *before.Estimate {
		t.Fatalf("estimate did not rise after streamed append: %v -> %v", *before.Estimate, *after.Estimate)
	}
}

// TestAppendStreamDurable: on a durable daemon the streamed shard's
// ack is a checkpoint — the shard survives an immediate crash-restart
// with no WAL record.
func TestAppendStreamDurable(t *testing.T) {
	dir := t.TempDir()
	db := openDurableTestDB(t, dir)
	_, ts := newDurableTestServer(t, db)

	resp := postStreamXML(t, ts.URL, dept2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("durable append-stream: HTTP %d", resp.StatusCode)
	}
	ar := decode[AppendResponse](t, resp)
	if !ar.Streamed || ar.Durable == nil || !*ar.Durable || ar.WALSeq != 0 {
		t.Fatalf("durable append-stream response: %+v", ar)
	}
	before := decode[EstimateResponse](t, postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"}))

	// Crash (no Close) and recover: the checkpointed streamed shard is
	// still there, with the identical estimate.
	ts.Close()
	db2 := openDurableTestDB(t, dir)
	defer db2.Close()
	_, ts2 := newDurableTestServer(t, db2)
	after := decode[EstimateResponse](t, postJSON(t, ts2.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"}))
	if *after.Estimate != *before.Estimate {
		t.Fatalf("streamed shard lost or changed by recovery: %v -> %v", *before.Estimate, *after.Estimate)
	}
}

// TestAppendStreamErrors: malformed XML is a 400, an empty body is a
// 400, a read-only server refuses with 403.
func TestAppendStreamErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp := postStreamXML(t, ts.URL, "<a><b></a>"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed stream: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := postStreamXML(t, ts.URL, ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty stream: HTTP %d, want 400", resp.StatusCode)
	}

	// Read-only server: loaded from a summary, no document store.
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := est.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := xmlest.LoadEstimator(blob)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewFromEstimator(loaded, Config{Options: xmlest.Options{GridSize: 4}, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ro := httptest.NewServer(s.Handler())
	defer ro.Close()
	if resp := postStreamXML(t, ro.URL, dept2); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only append-stream: HTTP %d, want 403", resp.StatusCode)
	}
}
