package histogram

import (
	"fmt"

	"xmlest/internal/xmltree"
)

// cellKey packs a (i, j) grid cell into a map key. Grid sizes are far
// below 1<<16.
type cellKey uint32

func key(i, j int) cellKey { return cellKey(uint32(i)<<16 | uint32(j)) }

func (k cellKey) split() (int, int) { return int(k >> 16), int(k & 0xffff) }

// Coverage is the coverage histogram of Section 4.2 for a predicate P
// with the no-overlap property: Cvg[i][j][m][n] is the fraction of the
// nodes in grid cell (i, j) (all nodes, the TRUE population) that are
// descendants of some node satisfying P that falls in grid cell (m, n).
//
// Because P has no-overlap, every node has at most one P-ancestor among
// maximal P-nodes, so for fixed (i, j) the fractions over all (m, n) sum
// to at most 1.
//
// The structure is stored sparsely. Theorem 2 guarantees that only O(g)
// cell pairs have partial (neither 0 nor 1) coverage; StorageBytes
// reports the encoding size of the partial cells only, since full cells
// are reconstructible from the position histogram (they lie strictly
// inside a populated ancestor cell's guaranteed region).
type Coverage struct {
	grid Grid
	// frac[v][a] = fraction of TRUE-nodes in cell v covered by P-nodes
	// in cell a. Zero-fraction entries are not stored.
	frac map[cellKey]map[cellKey]float64
}

// BuildCoverage constructs the exact coverage histogram for the
// predicate whose satisfying nodes are given (sorted by start, as
// catalog entries are). The predicate must have the no-overlap property;
// BuildCoverage returns an error if a nested pair is encountered, since
// coverage semantics (unique covering ancestor) would not hold.
//
// trueHist must be the TRUE histogram on the same grid; it supplies the
// per-cell population denominators.
func BuildCoverage(t *xmltree.Tree, pnodes []xmltree.NodeID, trueHist *Position) (*Coverage, error) {
	grid := trueHist.Grid()
	cov := &Coverage{grid: grid, frac: make(map[cellKey]map[cellKey]float64)}

	counts := make(map[cellKey]map[cellKey]float64)
	// Sweep all nodes in document (pre-order = start) order, maintaining
	// the currently-open P-interval, if any. pnodes is start-sorted, so a
	// single cursor suffices; no-overlap means at most one P-interval is
	// open at a time.
	cursor := 0
	openEnd := -1
	var openCell cellKey
	for id := 1; id < len(t.Nodes); id++ {
		n := &t.Nodes[id]
		if n.Start > openEnd {
			openEnd = -1
		}
		if cursor < len(pnodes) && pnodes[cursor] == xmltree.NodeID(id) {
			p := t.Node(pnodes[cursor])
			if openEnd >= 0 && p.End <= openEnd {
				return nil, fmt.Errorf("histogram: BuildCoverage on overlapping predicate (node %d nested)", id)
			}
			openEnd = p.End
			openCell = key(grid.Bucket(p.Start), grid.Bucket(p.End))
			cursor++
			continue // a P-node is not its own descendant
		}
		if openEnd >= 0 && n.End < openEnd {
			v := key(grid.Bucket(n.Start), grid.Bucket(n.End))
			m := counts[v]
			if m == nil {
				m = make(map[cellKey]float64)
				counts[v] = m
			}
			m[openCell]++
		}
	}
	for v, byA := range counts {
		i, j := v.split()
		pop := trueHist.Count(i, j)
		if pop <= 0 {
			continue
		}
		m := make(map[cellKey]float64, len(byA))
		for a, c := range byA {
			m[a] = c / pop
		}
		cov.frac[v] = m
	}
	return cov, nil
}

// NewCoverage returns an empty coverage histogram on the grid. It is
// used by estimation code that propagates coverage across joins
// (Fig 10 coverage-estimation formulas).
func NewCoverage(grid Grid) *Coverage {
	return &Coverage{grid: grid, frac: make(map[cellKey]map[cellKey]float64)}
}

// SetFrac sets Cvg[i][j][m][n]. Setting zero removes the entry.
func (c *Coverage) SetFrac(i, j, m, n int, f float64) {
	v := key(i, j)
	if f == 0 {
		if byA, ok := c.frac[v]; ok {
			delete(byA, key(m, n))
			if len(byA) == 0 {
				delete(c.frac, v)
			}
		}
		return
	}
	byA := c.frac[v]
	if byA == nil {
		byA = make(map[cellKey]float64)
		c.frac[v] = byA
	}
	byA[key(m, n)] = f
}

// Grid returns the coverage histogram's grid.
func (c *Coverage) Grid() Grid { return c.grid }

// Frac returns Cvg[i][j][m][n]: the fraction of nodes in cell (i, j)
// covered by P-nodes in cell (m, n).
func (c *Coverage) Frac(i, j, m, n int) float64 {
	byA, ok := c.frac[key(i, j)]
	if !ok {
		return 0
	}
	return byA[key(m, n)]
}

// CoveredFrac returns the total fraction of nodes in cell (i, j) that
// are covered by any P node (the sum over all ancestor cells).
func (c *Coverage) CoveredFrac(i, j int) float64 {
	var s float64
	for _, f := range c.frac[key(i, j)] {
		s += f
	}
	return s
}

// EachFrac calls fn for every stored (non-zero) coverage entry.
func (c *Coverage) EachFrac(fn func(i, j, m, n int, f float64)) {
	for v, byA := range c.frac {
		i, j := v.split()
		for a, f := range byA {
			m, n := a.split()
			fn(i, j, m, n, f)
		}
	}
}

// PartialCells returns the number of stored cell pairs whose coverage is
// strictly between 0 and 1 — the quantity Theorem 2 bounds by O(g).
func (c *Coverage) PartialCells() int {
	const eps = 1e-12
	n := 0
	for _, byA := range c.frac {
		for _, f := range byA {
			if f > eps && f < 1-eps {
				n++
			}
		}
	}
	return n
}

// Entries returns the total number of stored (non-zero) entries.
func (c *Coverage) Entries() int {
	n := 0
	for _, byA := range c.frac {
		n += len(byA)
	}
	return n
}
