package datagen

import (
	"fmt"
	"math/rand"

	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// DBLPConfig scales the DBLP-shaped dataset. The default targets the
// predicate cardinalities of the paper's Table 1 exactly; Scale shrinks
// every count proportionally for quick tests.
type DBLPConfig struct {
	Seed  int64
	Scale float64 // 1.0 reproduces Table 1 cardinalities
}

// DefaultDBLPConfig reproduces the paper's Table 1 cardinalities.
var DefaultDBLPConfig = DBLPConfig{Seed: 2002, Scale: 1.0}

// dblpTargets are the Table 1 node counts at Scale == 1.
type dblpTargets struct {
	article, book, inproceedings, phdthesis, mastersthesis int
	author, cite, cdrom, url                               int
	citeConf, citeJournal                                  int
	year1980s, year1990s, yearOther, missingYear           int
}

func targetsAt(scale float64) dblpTargets {
	s := func(n int) int {
		v := int(float64(n)*scale + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	// Record types: titles total 19,921 in Table 1; articles and books
	// are given, the remainder is split over the other DBLP record
	// types.
	t := dblpTargets{
		article:       s(7366),
		book:          s(408),
		inproceedings: s(11147),
		phdthesis:     s(600),
		mastersthesis: s(400),
		author:        s(41501),
		cite:          s(33097),
		cdrom:         s(1722),
		url:           s(19542),
		citeConf:      s(13609),
		citeJournal:   s(7834),
		year1980s:     s(13066),
		year1990s:     s(3963),
		missingYear:   s(7),
	}
	records := t.article + t.book + t.inproceedings + t.phdthesis + t.mastersthesis
	withYear := records - t.missingYear
	t.yearOther = withYear - t.year1980s - t.year1990s
	if t.yearOther < 0 {
		t.yearOther = 0
		t.year1990s = withYear - t.year1980s
	}
	return t
}

// GenerateDBLP builds the DBLP-shaped mega-tree. At Scale 1 the
// generated tree has the paper's Table 1 cardinalities for every listed
// predicate: 7,366 articles, 41,501 authors, 408 books, 1,722 cdroms,
// 33,097 cites (13,609 with "conf" prefix, 7,834 with "journal"
// prefix), 19,921 titles, 19,542 urls, 19,914 years (13,066 in the
// 1980s, 3,963 in the 1990s), with all record-level tags no-overlap.
func GenerateDBLP(cfg DBLPConfig) *xmltree.Tree {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	t := targetsAt(cfg.Scale)

	type recType struct {
		tag   string
		count int
	}
	recTypes := []recType{
		{"article", t.article},
		{"inproceedings", t.inproceedings},
		{"book", t.book},
		{"phdthesis", t.phdthesis},
		{"mastersthesis", t.mastersthesis},
	}
	records := 0
	for _, rt := range recTypes {
		records += rt.count
	}

	// Interleave record types deterministically so that every region of
	// the position space holds a mix (as in real DBLP, which is grouped
	// but interleaved at histogram granularity).
	tags := make([]string, 0, records)
	for _, rt := range recTypes {
		for i := 0; i < rt.count; i++ {
			tags = append(tags, rt.tag)
		}
	}
	r.Shuffle(len(tags), func(i, j int) { tags[i], tags[j] = tags[j], tags[i] })

	// Per-record field budgets, each summing to the Table 1 totals.
	authors := splitCount(r, t.author, records, 1)
	cites := make([]int, records)
	// Cites are skewed: half the records carry none, the rest share the
	// budget geometrically.
	citeCarriers := pickSubset(r, records, records/2)
	carrierCites := splitCount(r, t.cite, len(citeCarriers), 0)
	for i, rec := range citeCarriers {
		cites[rec] = carrierCites[i]
	}
	hasCdrom := make([]bool, records)
	for _, rec := range pickSubset(r, records, t.cdrom) {
		hasCdrom[rec] = true
	}
	hasURL := make([]bool, records)
	for _, rec := range pickSubset(r, records, t.url) {
		hasURL[rec] = true
	}

	// Year assignment: exact decade populations.
	years := make([]int, 0, records)
	for i := 0; i < t.year1980s; i++ {
		years = append(years, 1980+r.Intn(10))
	}
	for i := 0; i < t.year1990s; i++ {
		years = append(years, 1990+r.Intn(10))
	}
	for i := 0; i < t.yearOther; i++ {
		if r.Intn(2) == 0 {
			years = append(years, 1960+r.Intn(20))
		} else {
			years = append(years, 2000+r.Intn(2))
		}
	}
	for i := 0; i < t.missingYear; i++ {
		years = append(years, 0) // 0 = no year element
	}
	r.Shuffle(len(years), func(i, j int) { years[i], years[j] = years[j], years[i] })

	// Cite prefixes: exact conf/journal populations over the cite budget.
	citePrefixes := make([]string, 0, t.cite)
	for i := 0; i < t.citeConf; i++ {
		citePrefixes = append(citePrefixes, "conf")
	}
	for i := 0; i < t.citeJournal; i++ {
		citePrefixes = append(citePrefixes, "journals")
	}
	for len(citePrefixes) < t.cite {
		citePrefixes = append(citePrefixes, []string{"books", "series", "ms"}[r.Intn(3)])
	}
	r.Shuffle(len(citePrefixes), func(i, j int) {
		citePrefixes[i], citePrefixes[j] = citePrefixes[j], citePrefixes[i]
	})

	b := xmltree.NewBuilder()
	b.Begin("dblp")
	citeCursor := 0
	for rec := 0; rec < records; rec++ {
		b.Begin(tags[rec])
		for a := 0; a < authors[rec]; a++ {
			b.Element("author", name(r))
		}
		b.Element("title", phrase(r, 3+r.Intn(6)))
		if y := years[rec]; y != 0 {
			b.Element("year", fmt.Sprintf("%d", y))
		}
		if hasURL[rec] {
			b.Element("url", "db/"+tags[rec]+"/"+phrase(r, 1)+".html")
		}
		if hasCdrom[rec] {
			b.Element("cdrom", phrase(r, 1)+"/"+phrase(r, 1))
		}
		for c := 0; c < cites[rec]; c++ {
			prefix := citePrefixes[citeCursor]
			citeCursor++
			b.Element("cite", prefix+"/"+phrase(r, 1)+"/"+phrase(r, 1))
		}
		b.End()
	}
	b.End()
	return b.Tree()
}

// DBLPCatalog registers the paper's Table 1 predicates (with the
// paper's display names) plus the TRUE predicate on the given tree.
func DBLPCatalog(tr *xmltree.Tree) *predicate.Catalog {
	cat := predicate.NewCatalog(tr)
	for _, tag := range []string{"article", "author", "book", "cdrom", "cite", "title", "url", "year"} {
		cat.Add(predicate.Tag{Value: tag})
	}
	// The non-tag predicates share one tree scan (Catalog.AddBatch)
	// instead of one O(n) pass each.
	cat.AddBatch([]predicate.Predicate{
		predicate.Named{Alias: "conf", Inner: predicate.And{Parts: []predicate.Predicate{
			predicate.Tag{Value: "cite"}, predicate.ContentPrefix{Value: "conf"},
		}}},
		predicate.Named{Alias: "journal", Inner: predicate.And{Parts: []predicate.Predicate{
			predicate.Tag{Value: "cite"}, predicate.ContentPrefix{Value: "journals"},
		}}},
		predicate.Named{Alias: "1980's", Inner: predicate.And{Parts: []predicate.Predicate{
			predicate.Tag{Value: "year"}, predicate.NumericRange{Lo: 1980, Hi: 1989},
		}}},
		predicate.Named{Alias: "1990's", Inner: predicate.And{Parts: []predicate.Predicate{
			predicate.Tag{Value: "year"}, predicate.NumericRange{Lo: 1990, Hi: 1999},
		}}},
		predicate.True{},
	})
	return cat
}
