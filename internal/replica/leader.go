// Leader side: the Streamer serves StreamPath, turning a follower's
// (from, version) resume token into a frame stream. It is checkpoint-
// aware — when the requested position predates the WAL truncation
// point (or the follower is fresh and the leader carries pre-WAL
// bootstrap state), the current manifest and its XQS shard files are
// shipped first, then the record tail. Once caught up it long-polls:
// new durable records flow as they commit, heartbeats fill the gaps,
// and the stream ends politely after MaxStreamDuration so proxies and
// write deadlines never see an unbounded response.

package replica

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"xmlest/internal/manifest"
	"xmlest/internal/metrics"
	"xmlest/internal/wal"
)

// Source is the durable store surface the Streamer ships from —
// implemented by shard.DurableStore.
type Source interface {
	// DurableSeq is the newest fsynced WAL sequence; only records at or
	// below it are ever shipped.
	DurableSeq() uint64
	// ServingVersion is the current serving-set version.
	ServingVersion() uint64
	// GridSize is the estimator grid pinned in the data directory.
	GridSize() int
	// SnapshotForReplica decides whether a follower at (from, version)
	// needs a snapshot and, when so, returns the manifest plus its
	// shard-file blobs (forcing a checkpoint first when live state is
	// not recoverable from the WAL alone).
	SnapshotForReplica(from, version uint64) (*manifest.Manifest, map[string][]byte, bool, error)
	// ReadDurableWAL streams durable records after the given sequence
	// (see wal.Log.ReadDurable).
	ReadDurableWAL(after uint64, fn func(wal.Record) error) (uint64, error)
}

// StreamerOptions tunes the leader endpoint.
type StreamerOptions struct {
	// Heartbeat is the idle-stream heartbeat interval. Default 1s.
	Heartbeat time.Duration
	// Poll is how often an idle stream re-checks the durable watermark.
	// Default 20ms.
	Poll time.Duration
	// MaxStreamDuration bounds one response before an orderly End frame
	// asks the follower to reconnect — keeps the response finite for
	// every write-deadline and proxy between the nodes. Default 45s.
	MaxStreamDuration time.Duration
	// WriteTimeout is the per-write deadline extension applied through
	// http.ResponseController, so a stalled follower cannot pin the
	// connection forever. Default 15s.
	WriteTimeout time.Duration
	// Logger receives stream lifecycle events; slog.Default when nil.
	Logger *slog.Logger
}

func (o StreamerOptions) withDefaults() StreamerOptions {
	if o.Heartbeat <= 0 {
		o.Heartbeat = time.Second
	}
	if o.Poll <= 0 {
		o.Poll = 20 * time.Millisecond
	}
	if o.MaxStreamDuration <= 0 {
		o.MaxStreamDuration = 45 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 15 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Streamer serves the leader's replication endpoint.
type Streamer struct {
	src  Source
	opts StreamerOptions

	streams      atomic.Uint64 // streams opened
	active       atomic.Int64  // streams currently open
	bytesShipped atomic.Uint64
	recsShipped  atomic.Uint64
	snapsShipped atomic.Uint64
}

// NewStreamer builds a Streamer over src.
func NewStreamer(src Source, opts StreamerOptions) *Streamer {
	return &Streamer{src: src, opts: opts.withDefaults()}
}

// ActiveStreams reports the number of follower streams currently open.
func (s *Streamer) ActiveStreams() int64 { return s.active.Load() }

// BytesShipped reports total frame bytes written to followers.
func (s *Streamer) BytesShipped() uint64 { return s.bytesShipped.Load() }

// countingWriter tallies shipped bytes and keeps the connection's
// write deadline ahead of each write.
type countingWriter struct {
	w       http.ResponseWriter
	rc      *http.ResponseController
	n       *atomic.Uint64
	timeout time.Duration
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	// SetWriteDeadline errors (unsupported by the wrapped writer) are
	// ignored: the server's global deadline then applies, which only
	// shortens the stream — never corrupts it.
	_ = cw.rc.SetWriteDeadline(time.Now().Add(cw.timeout))
	n, err := cw.w.Write(p)
	cw.n.Add(uint64(n))
	return n, err
}

// ServeHTTP implements GET StreamPath?from=seq&version=v.
func (s *Streamer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil && q.Get("from") != "" {
		http.Error(w, "bad from parameter", http.StatusBadRequest)
		return
	}
	version, err := strconv.ParseUint(q.Get("version"), 10, 64)
	if err != nil && q.Get("version") != "" {
		http.Error(w, "bad version parameter", http.StatusBadRequest)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}

	man, files, needSnap, err := s.src.SnapshotForReplica(from, version)
	if err != nil {
		http.Error(w, fmt.Sprintf("snapshot: %v", err), http.StatusServiceUnavailable)
		return
	}

	s.streams.Add(1)
	s.active.Add(1)
	defer s.active.Add(-1)
	log := s.opts.Logger.With("component", "replica", "remote", r.RemoteAddr, "from", from)
	log.Info("replication stream opened", "snapshot", needSnap)

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-store")
	cw := &countingWriter{w: w, rc: http.NewResponseController(w), n: &s.bytesShipped, timeout: s.opts.WriteTimeout}
	if err := WriteMagic(cw); err != nil {
		return
	}
	hello := Hello{
		GridSize:   s.src.GridSize(),
		DurableSeq: s.src.DurableSeq(),
		Version:    s.src.ServingVersion(),
		Snapshot:   needSnap,
	}
	if err := WriteFrame(cw, FrameHello, encodeHello(hello)); err != nil {
		return
	}
	if needSnap {
		blob, err := man.Encode()
		if err != nil {
			log.Error("manifest encode failed", "err", err)
			return
		}
		if err := WriteFrame(cw, FrameManifest, blob); err != nil {
			return
		}
		names := make([]string, 0, len(files))
		for name := range files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := WriteFrame(cw, FrameShardFile, encodeShardFile(name, files[name])); err != nil {
				return
			}
		}
		if err := WriteFrame(cw, FrameSnapshotEnd, nil); err != nil {
			return
		}
		s.snapsShipped.Add(1)
		from = man.WALSeq
	}
	flusher.Flush()

	end := time.NewTimer(s.opts.MaxStreamDuration)
	defer end.Stop()
	poll := time.NewTicker(s.opts.Poll)
	defer poll.Stop()
	var lastBeat time.Time
	for {
		shipped := 0
		last, err := s.src.ReadDurableWAL(from, func(rec wal.Record) error {
			payload, err := wal.EncodeRecord(rec)
			if err != nil {
				return err
			}
			shipped++
			return WriteFrame(cw, FrameRecord, payload)
		})
		s.recsShipped.Add(uint64(shipped))
		if err == wal.ErrTailTruncated {
			// A checkpoint outran this stream's position; the follower
			// must re-negotiate (and will be handed the snapshot).
			_ = WriteFrame(cw, FrameEnd, nil)
			flusher.Flush()
			log.Info("replication stream ended: position truncated by checkpoint", "at", last)
			return
		}
		if err != nil {
			log.Info("replication stream closed", "err", err, "at", last)
			return // client write error or source failure; nothing to salvage
		}
		if last > from {
			from = last
			flusher.Flush()
			lastBeat = time.Now()
			continue // keep draining while records flow
		}
		if time.Since(lastBeat) >= s.opts.Heartbeat {
			if err := WriteFrame(cw, FrameHeartbeat, encodeHeartbeat(s.src.DurableSeq(), s.src.ServingVersion())); err != nil {
				return
			}
			flusher.Flush()
			lastBeat = time.Now()
		}
		select {
		case <-r.Context().Done():
			return
		case <-end.C:
			_ = WriteFrame(cw, FrameEnd, nil)
			flusher.Flush()
			log.Info("replication stream ended: max duration reached", "at", from)
			return
		case <-poll.C:
		}
	}
}

// Collect exports the leader-side replication families.
func (s *Streamer) Collect(e *metrics.Expo) {
	e.Counter("xqest_replica_streams_total", "Replication streams opened by followers.", float64(s.streams.Load()))
	e.Gauge("xqest_replica_active_streams", "Replication streams currently open.", float64(s.active.Load()))
	e.Counter("xqest_replica_bytes_shipped_total", "Frame bytes shipped to followers.", float64(s.bytesShipped.Load()))
	e.Counter("xqest_replica_records_shipped_total", "WAL records shipped to followers.", float64(s.recsShipped.Load()))
	e.Counter("xqest_replica_snapshots_shipped_total", "Checkpoint snapshots shipped to followers.", float64(s.snapsShipped.Load()))
}

// ctxSleep sleeps for d or until ctx is done.
func ctxSleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
