module xmlest

go 1.22
