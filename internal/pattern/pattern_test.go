package pattern

import "testing"

func TestParseChain(t *testing.T) {
	p := MustParse("//faculty//TA")
	if p.Size() != 2 {
		t.Fatalf("size = %d, want 2", p.Size())
	}
	if p.Root.Test != "faculty" || p.Root.Axis != Descendant {
		t.Errorf("root = %q %v", p.Root.Test, p.Root.Axis)
	}
	c := p.Root.Children[0]
	if c.Test != "TA" || c.Axis != Descendant {
		t.Errorf("child = %q %v", c.Test, c.Axis)
	}
	if !p.IsPath() {
		t.Errorf("chain should be a path")
	}
}

func TestParseChildAxis(t *testing.T) {
	p := MustParse("//department/faculty")
	c := p.Root.Children[0]
	if c.Axis != Child {
		t.Errorf("axis = %v, want Child", c.Axis)
	}
}

func TestParseTwig(t *testing.T) {
	p := MustParse("//department//faculty[.//TA][.//RA]")
	if p.Size() != 4 {
		t.Fatalf("size = %d, want 4", p.Size())
	}
	if p.IsPath() {
		t.Errorf("twig is not a path")
	}
	fac := p.Root.Children[0]
	if fac.Test != "faculty" || len(fac.Children) != 2 {
		t.Fatalf("faculty node wrong: %q, %d children", fac.Test, len(fac.Children))
	}
	if fac.Children[0].Test != "TA" || fac.Children[1].Test != "RA" {
		t.Errorf("twig children = %q, %q", fac.Children[0].Test, fac.Children[1].Test)
	}
	if got := len(p.Edges()); got != 3 {
		t.Errorf("edges = %d, want 3", got)
	}
}

func TestParseQualifierThenStep(t *testing.T) {
	p := MustParse("//a[.//b]//c")
	if p.Size() != 3 {
		t.Fatalf("size = %d, want 3", p.Size())
	}
	if len(p.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(p.Root.Children))
	}
	if p.Root.Children[0].Test != "b" || p.Root.Children[1].Test != "c" {
		t.Errorf("children = %q %q", p.Root.Children[0].Test, p.Root.Children[1].Test)
	}
}

func TestParseNestedQualifier(t *testing.T) {
	p := MustParse("//a[.//b[.//c]]//d")
	if p.Size() != 4 {
		t.Fatalf("size = %d, want 4", p.Size())
	}
	b := p.Root.Children[0]
	if b.Test != "b" || len(b.Children) != 1 || b.Children[0].Test != "c" {
		t.Errorf("nested qualifier mis-parsed: %+v", b)
	}
}

func TestPredName(t *testing.T) {
	cases := []struct{ src, want string }{
		{"//faculty", "tag=faculty"},
		{"//*", "TRUE"},
		{"//{1990's}", "1990's"},
		{"//@id", "tag=@id"},
	}
	for _, c := range cases {
		p := MustParse(c.src)
		if got := p.Root.PredName(); got != c.want {
			t.Errorf("%s: PredName = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"faculty",
		"//",
		"//a[",
		"//a[.//b",
		"//a]",
		"//a//",
		"//{}",
		"//{unclosed",
		"//a xx",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"//faculty//TA",
		"//department/faculty",
		"//department//faculty[.//TA][.//RA]",
		"//article//{1990's}",
	}
	for _, src := range srcs {
		p := MustParse(src)
		if p.String() != src {
			t.Errorf("String() = %q, want %q", p.String(), src)
		}
		// Reconstructed form (without source) must re-parse to the same shape.
		q := &Pattern{Root: p.Root}
		rp, err := Parse(q.String())
		if err != nil {
			t.Errorf("re-parse %q: %v", q.String(), err)
			continue
		}
		if rp.Size() != p.Size() {
			t.Errorf("re-parse size = %d, want %d", rp.Size(), p.Size())
		}
	}
}
