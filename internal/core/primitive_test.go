package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xmlest/internal/histogram"
	"xmlest/internal/xmltree"
)

// bruteAncestorTotal computes the ancestor-based Fig 6 estimate with
// explicit region loops — the specification the fast partial-sum and
// three-pass implementations must match exactly.
func bruteAncestorTotal(ha, hb *histogram.Position) float64 {
	g := ha.Grid().Size()
	var total float64
	for i := 0; i < g; i++ {
		for j := i; j < g; j++ {
			a := ha.Count(i, j)
			if a == 0 {
				continue
			}
			if i == j {
				total += a * hb.Count(i, i) / 12
				continue
			}
			var coef float64
			// Strictly inside the span.
			for k := i + 1; k <= j; k++ {
				for l := k; l <= j-1; l++ {
					coef += hb.Count(k, l)
				}
			}
			// Same start column, below; diagonal corner at 1/2.
			for l := i; l <= j-1; l++ {
				w := 1.0
				if l == i {
					w = 0.5
				}
				coef += w * hb.Count(i, l)
			}
			// Same end row, right; diagonal corner at 1/2.
			for k := i + 1; k <= j; k++ {
				w := 1.0
				if k == j {
					w = 0.5
				}
				coef += w * hb.Count(k, j)
			}
			coef += hb.Count(i, j) / 4
			total += a * coef
		}
	}
	return total
}

// bruteDescendantTotal mirrors the descendant-based Fig 6 formula.
func bruteDescendantTotal(ha, hb *histogram.Position) float64 {
	g := ha.Grid().Size()
	var total float64
	for i := 0; i < g; i++ {
		for j := i; j < g; j++ {
			d := hb.Count(i, j)
			if d == 0 {
				continue
			}
			var coef float64
			for k := 0; k <= i-1; k++ { // G: strictly up-left, and H: same row left
				for l := j; l < g; l++ {
					coef += ha.Count(k, l)
				}
			}
			for l := j + 1; l < g; l++ { // F: same column, above
				coef += ha.Count(i, l)
			}
			selfW := 0.25
			if i == j {
				selfW = 1.0 / 12
			}
			coef += selfW * ha.Count(i, j)
			total += d * coef
		}
	}
	return total
}

func randomHistPair(r *rand.Rand) (*histogram.Position, *histogram.Position) {
	tr := randomTree(r, 10+r.Intn(300))
	g := 1 + r.Intn(12)
	if g > tr.MaxPos {
		g = tr.MaxPos
	}
	grid := histogram.MustUniformGrid(g, tr.MaxPos)
	tags := tr.Tags()
	ha := histogram.BuildPosition(tr, tr.NodesWithTag(tags[r.Intn(len(tags))]), grid)
	hb := histogram.BuildPosition(tr, tr.NodesWithTag(tags[r.Intn(len(tags))]), grid)
	return ha, hb
}

func randomTree(r *rand.Rand, n int) *xmltree.Tree {
	b := xmltree.NewBuilder()
	tags := []string{"a", "b", "c", "d"}
	open := 0
	for i := 0; i < n; i++ {
		if open > 0 && r.Intn(3) == 0 {
			b.End()
			open--
		}
		b.Begin(tags[r.Intn(len(tags))])
		open++
	}
	return b.Tree()
}

func TestAncestorBasedMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ha, hb := randomHistPair(r)
		est, err := EstimateAncestorBased(ha, hb)
		if err != nil {
			t.Logf("estimate: %v", err)
			return false
		}
		want := bruteAncestorTotal(ha, hb)
		if math.Abs(est.Total()-want) > 1e-6*(1+math.Abs(want)) {
			t.Logf("seed %d: fast=%v brute=%v", seed, est.Total(), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPHJoinMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ha, hb := randomHistPair(r)
		got, err := PHJoin(ha, hb)
		if err != nil {
			t.Logf("PHJoin: %v", err)
			return false
		}
		want := bruteAncestorTotal(ha, hb)
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Logf("seed %d: phjoin=%v brute=%v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDescendantBasedMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ha, hb := randomHistPair(r)
		est, err := EstimateDescendantBased(ha, hb)
		if err != nil {
			t.Logf("estimate: %v", err)
			return false
		}
		want := bruteDescendantTotal(ha, hb)
		if math.Abs(est.Total()-want) > 1e-6*(1+math.Abs(want)) {
			t.Logf("seed %d: fast=%v brute=%v", seed, est.Total(), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAncestorCoefficientsPrecomputation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ha, hb := randomHistPair(r)
	coef := AncestorCoefficients(hb)
	var viaCoef float64
	ha.EachNonZero(func(i, j int, c float64) {
		viaCoef += c * coef.Count(i, j)
	})
	direct, err := PHJoin(ha, hb)
	if err != nil {
		t.Fatalf("PHJoin: %v", err)
	}
	if math.Abs(viaCoef-direct) > 1e-9*(1+math.Abs(direct)) {
		t.Errorf("precomputed coefficients give %v, direct %v", viaCoef, direct)
	}
}

func TestGridMismatchErrors(t *testing.T) {
	a := histogram.NewPosition(histogram.MustUniformGrid(4, 100))
	b := histogram.NewPosition(histogram.MustUniformGrid(5, 100))
	if _, err := EstimateAncestorBased(a, b); err == nil {
		t.Errorf("EstimateAncestorBased: want grid error")
	}
	if _, err := EstimateDescendantBased(a, b); err == nil {
		t.Errorf("EstimateDescendantBased: want grid error")
	}
	if _, err := PHJoin(a, b); err == nil {
		t.Errorf("PHJoin: want grid error")
	}
}

func TestEmptyHistogramsEstimateZero(t *testing.T) {
	grid := histogram.MustUniformGrid(6, 100)
	empty := histogram.NewPosition(grid)
	full := histogram.NewPosition(grid)
	full.Set(0, 5, 10)
	for _, pair := range [][2]*histogram.Position{{empty, full}, {full, empty}, {empty, empty}} {
		got, err := PHJoin(pair[0], pair[1])
		if err != nil {
			t.Fatalf("PHJoin: %v", err)
		}
		if got != 0 {
			t.Errorf("PHJoin with empty operand = %v, want 0", got)
		}
	}
}

func TestGridSize1(t *testing.T) {
	// A 1×1 grid has a single on-diagonal cell; the estimate collapses
	// to count(A)×count(B)/12.
	grid := histogram.MustUniformGrid(1, 100)
	ha := histogram.NewPosition(grid)
	hb := histogram.NewPosition(grid)
	ha.Set(0, 0, 6)
	hb.Set(0, 0, 24)
	got, err := PHJoin(ha, hb)
	if err != nil {
		t.Fatalf("PHJoin: %v", err)
	}
	if got != 6*24.0/12 {
		t.Errorf("1x1 estimate = %v, want %v", got, 6*24.0/12)
	}
}
