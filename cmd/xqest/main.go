// Command xqest loads an XML database, builds position histograms, and
// answers answer-size queries for twig patterns.
//
// Usage:
//
//	xqest -data a.xml[,b.xml,...] stats
//	xqest -data a.xml predicates
//	xqest -data a.xml -grid 10 estimate '//article//author'
//	xqest -data a.xml exact '//article//author'
//	xqest -data a.xml -grid 10 explain '//a[.//b]//c'
//
// Shard lifecycle: -append lands extra files as one shard each (only
// the new documents are summarized), `shards` lists the serving set,
// `compact` merges small shards, and `drop <id>` removes one.
//
//	xqest -data a.xml -append b.xml,c.xml shards
//	xqest -data a.xml -append b.xml estimate '//article//author'
//	xqest -data a.xml -append b.xml,c.xml,d.xml compact
//	xqest -data a.xml -append b.xml drop 2
//
// Persistence: `build` (or -save with estimate) writes the summary —
// the monolithic XQS1 format for one shard, the XQS2 shard-set
// container for several — and -load estimates from a saved summary
// without touching any data.
//
//	xqest -data a.xml -append b.xml build -o summary.bin
//	xqest -load summary.bin estimate '//article//author'
//
// The -dataset flag substitutes a built-in synthetic dataset for -data:
// dblp, hier, xmark or shakespeare.
//
// Durability: `wal` and `manifest` inspect a durable daemon's data
// directory (see xqestd -data-dir) — WAL segments and records, and the
// checkpoint manifest:
//
//	xqest -data-dir /var/lib/xqest wal records
//	xqest -data-dir /var/lib/xqest manifest
//
// Serving: `serve` runs the HTTP estimation daemon (internal/server,
// same as the xqestd command) over the loaded database.
//
//	xqest -dataset dblp -addr :8080 -autocompact 30s serve
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"xmlest"
	"xmlest/internal/accuracy"
	"xmlest/internal/cliutil"
	"xmlest/internal/pattern"
	"xmlest/internal/planner"
	"xmlest/internal/server"
	"xmlest/internal/version"
)

func main() {
	data := flag.String("data", "", "comma-separated XML files (one shard)")
	appendFiles := flag.String("append", "", "comma-separated XML files appended as one shard each")
	dataset := flag.String("dataset", "", "built-in dataset: dblp, hier, xmark, shakespeare")
	grid := flag.Int("grid", 10, "histogram grid size g (gxg buckets)")
	scale := flag.Float64("scale", 0.1, "built-in dataset scale")
	seed := flag.Int64("seed", 2002, "built-in dataset seed")
	summary := flag.String("summary", "", "summary file: estimate from it without loading data")
	load := flag.String("load", "", "alias of -summary")
	save := flag.String("save", "", "after estimating, save the summary to this file")
	out := flag.String("o", "summary.bin", "output file for the build command")
	maxShards := flag.Int("max-shards", 0, "compact: target shard count (0 = policy default)")
	addr := flag.String("addr", server.DefaultAddr, "serve: listen address")
	autocompact := flag.Duration("autocompact", 0, "serve: background compaction interval (0 disables)")
	dataDir := flag.String("data-dir", "", "wal/manifest: durable data directory to inspect")
	serverURL := flag.String("server", "", "stats: base URL of a running daemon (e.g. http://127.0.0.1:8080) to introspect instead of local data")
	rawMetrics := flag.Bool("metrics", false, "stats -server: dump the raw Prometheus exposition instead of the pretty summary")
	twigs := flag.Int("twigs", 50, "accuracy: number of random twig queries in the seeded workload")
	twigSeed := flag.Int64("twig-seed", 1, "accuracy: random-twig workload seed (same seed, same workload)")
	jsonOut := flag.Bool("json", false, "accuracy: emit the report as JSON (for benchmark harnesses)")
	showVersion := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("xqest " + version.String())
		return
	}
	if flag.NArg() < 1 {
		usage()
	}
	cmd := flag.Arg(0)
	if *load != "" {
		*summary = *load
	}

	// Daemon introspection: `xqest -server URL stats` pretty-prints a
	// running daemon's /stats (or, with -metrics, dumps its raw
	// Prometheus exposition) — no local corpus involved.
	if *serverURL != "" {
		if cmd != "stats" {
			fatal(fmt.Errorf("xqest: -server only applies to the stats command"))
		}
		var err error
		if *rawMetrics {
			err = cliutil.DumpMetrics(os.Stdout, *serverURL)
		} else {
			err = cliutil.ShowStats(os.Stdout, *serverURL)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	// The durability inspectors read the data directory only; no
	// corpus, summary or estimator involved.
	if cmd == "wal" || cmd == "manifest" {
		if *dataDir == "" {
			fatal(fmt.Errorf("xqest: %s requires -data-dir", cmd))
		}
		var err error
		if cmd == "wal" {
			err = cliutil.InspectWAL(os.Stdout, *dataDir, flag.Arg(1) == "records")
		} else {
			err = cliutil.InspectManifest(os.Stdout, *dataDir)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	// Serving from a saved summary needs no data: the daemon runs
	// read-only, exactly like xqestd -load.
	if *summary != "" && cmd == "serve" {
		blob, err := os.ReadFile(*summary)
		if err != nil {
			fatal(err)
		}
		est, err := xmlest.LoadEstimator(blob)
		if err != nil {
			fatal(err)
		}
		srv, err := server.NewFromEstimator(est, server.Config{Addr: *addr, SnapshotPath: *save})
		if err != nil {
			fatal(err)
		}
		if err := cliutil.RunUntilSignal(srv, 15*time.Second); err != nil {
			fatal(err)
		}
		return
	}

	// Estimation from a saved summary needs no data at all.
	if *summary != "" && cmd == "estimate" {
		blob, err := os.ReadFile(*summary)
		if err != nil {
			fatal(err)
		}
		est, err := xmlest.LoadEstimator(blob)
		if err != nil {
			fatal(err)
		}
		res, err := est.Estimate(needPattern())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("estimate: %.2f\nestimation time: %s\n(loaded from %s, %d bytes, %d shard(s))\n",
			res.Estimate, res.Elapsed, *summary, len(blob), est.ShardCount())
		return
	}

	var db *xmlest.Database
	var err error
	switch {
	case cmd == "accuracy" && *summary != "":
		// A summary blob holds histograms, not documents: there is no
		// exact count to compare against, so accuracy evaluation over it
		// would be circular. Refuse rather than silently score nothing.
		fatal(fmt.Errorf("xqest: accuracy needs documents for exact counts; a summary (%s) cannot be verified — use -data, -dataset or -data-dir", *summary))
	case cmd == "accuracy" && *dataDir != "":
		db, err = cliutil.OpenDurableDatabase(*dataDir, xmlest.Options{GridSize: *grid}, cliutil.DurableFlags{})
	default:
		db, err = openDatabase(*data, *dataset, *scale, *seed)
	}
	if err != nil {
		fatal(err)
	}
	if *appendFiles != "" {
		for _, path := range strings.Split(*appendFiles, ",") {
			info, err := appendFile(db, path)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("appended %s as shard %d (%d nodes)\n", path, info.ID, info.Nodes)
		}
	}

	switch cmd {
	case "build":
		est, err := db.NewEstimator(xmlest.Options{GridSize: *grid})
		if err != nil {
			fatal(err)
		}
		blob, err := est.MarshalBinary()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d-byte summary for %d predicates across %d shard(s) to %s\n",
			len(blob), db.Catalog().Len(), est.ShardCount(), *out)
	case "stats":
		s := db.Tree().Stats()
		fmt.Printf("nodes: %d\ndistinct tags: %d\nmax depth: %d\nmax position: %d\nshards: %d\n",
			s.Nodes, s.DistinctTag, s.MaxDepth, s.MaxPos, db.ShardCount())
	case "shards":
		fmt.Printf("version %d, %d shard(s):\n", db.Version(), db.ShardCount())
		for _, sh := range db.Shards() {
			kind := "documents"
			if sh.SummaryOnly {
				kind = "summary-only"
			}
			fmt.Printf("  shard %-4d %10d nodes %6d doc(s)  %s\n", sh.ID, sh.Nodes, sh.Docs, kind)
		}
	case "compact":
		policy := xmlest.CompactionPolicy{MaxShards: *maxShards}
		merged, err := db.Compact(policy)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("merged %d shard(s); %d remain (version %d)\n", merged, db.ShardCount(), db.Version())
	case "drop":
		if flag.NArg() < 2 {
			fatal(fmt.Errorf("xqest: drop requires a shard id"))
		}
		id, err := strconv.ParseUint(flag.Arg(1), 10, 64)
		if err != nil {
			fatal(fmt.Errorf("xqest: bad shard id %q", flag.Arg(1)))
		}
		found, err := db.DropShard(id)
		if err != nil {
			fatal(err)
		}
		if !found {
			fatal(fmt.Errorf("xqest: no shard %d", id))
		}
		fmt.Printf("dropped shard %d; %d remain\n", id, db.ShardCount())
	case "predicates":
		for _, name := range db.Catalog().Names() {
			e := db.Catalog().MustGet(name)
			prop := "overlap"
			if e.NoOverlap {
				prop = "no overlap"
			}
			fmt.Printf("%-30s %10d  %s\n", name, e.Count(), prop)
		}
	case "estimate":
		src := needPattern()
		est, err := db.NewEstimator(xmlest.Options{GridSize: *grid})
		if err != nil {
			fatal(err)
		}
		res, err := est.Estimate(src)
		if err != nil {
			fatal(err)
		}
		algo := "primitive pH-join"
		if res.UsedNoOverlap {
			algo = "no-overlap (coverage)"
		}
		fmt.Printf("estimate: %.2f\nalgorithm: %s\nestimation time: %s\nsummary storage: %d bytes (%d shard(s))\n",
			res.Estimate, algo, res.Elapsed, est.StorageBytes(), est.ShardCount())
		if *save != "" {
			blob, err := est.MarshalBinary()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*save, blob, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("saved summary to %s (%d bytes)\n", *save, len(blob))
		}
	case "serve":
		// Delegates to the internal/server daemon, so the CLI stays the
		// one entry point for demos: xqest -dataset dblp serve
		srv, err := server.New(db, server.Config{
			Addr:                *addr,
			Options:             xmlest.Options{GridSize: *grid},
			AutoCompactInterval: *autocompact,
			CompactionPolicy:    xmlest.CompactionPolicy{MaxShards: *maxShards},
			SnapshotPath:        *save,
		})
		if err != nil {
			fatal(err)
		}
		if err := cliutil.RunUntilSignal(srv, 15*time.Second); err != nil {
			fatal(err)
		}
	case "accuracy":
		if err := runAccuracy(os.Stdout, db, *grid, *twigs, *twigSeed, *jsonOut); err != nil {
			fatal(err)
		}
	case "exact":
		src := needPattern()
		real, err := db.Count(src)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exact answer size: %.0f\n", real)
	case "explain":
		src := needPattern()
		est, err := db.NewEstimator(xmlest.Options{GridSize: *grid})
		if err != nil {
			fatal(err)
		}
		p, err := pattern.Parse(src)
		if err != nil {
			fatal(err)
		}
		plans, err := planner.Enumerate(est.Core(), p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d candidate join orders (cost = sum of intermediate sizes):\n", len(plans))
		show := len(plans)
		if show > 8 {
			show = 8
		}
		for i := 0; i < show; i++ {
			fmt.Printf("%2d. cost %12.1f  %s\n", i+1, plans[i].Cost, plans[i])
		}
	default:
		usage()
	}
}

// runAccuracy evaluates the estimator against exact counts over the
// two seeded workloads the accuracy harness tracks: the exhaustive
// element-tag-pair workload and a deterministic random-twig workload.
// The same q-error quantiles the daemon's online monitor exports are
// reported per workload, so offline regression numbers and production
// numbers read on one scale.
func runAccuracy(w io.Writer, db *xmlest.Database, grid, twigs int, twigSeed int64, jsonOut bool) error {
	est, err := db.NewEstimator(xmlest.Options{GridSize: grid})
	if err != nil {
		return err
	}
	coreEst := est.Core()
	if coreEst == nil {
		return fmt.Errorf("xqest: accuracy needs document-backed shards for exact counts")
	}
	cat := db.Catalog()
	type workload struct {
		name     string
		patterns []string
	}
	workloads := []workload{
		{"pairs", accuracy.PairWorkload(cat)},
		{"random_twigs", accuracy.RandomTwigWorkload(cat, twigs, twigSeed)},
	}
	reports := make(map[string]accuracy.Report, len(workloads))
	for _, wl := range workloads {
		_, rep, err := accuracy.Evaluate(cat, coreEst, wl.patterns)
		if err != nil {
			return fmt.Errorf("xqest: accuracy workload %s: %w", wl.name, err)
		}
		reports[wl.name] = rep
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Grid      int                        `json:"grid"`
			TwigSeed  int64                      `json:"twig_seed"`
			Workloads map[string]accuracy.Report `json:"workloads"`
		}{grid, twigSeed, reports})
	}
	for _, wl := range workloads {
		rep := reports[wl.name]
		fmt.Fprintf(w, "workload %-14s %4d queries (%d empty, %d underestimated)\n",
			wl.name, rep.Queries, rep.EmptyReal, rep.Under)
		fmt.Fprintf(w, "  q-error q50 %.3f  q90 %.3f  qmax %.3f   mean rel. err. %.3f\n",
			rep.Q50, rep.Q90, rep.QMax, rep.MeanRelErr)
	}
	return nil
}

func appendFile(db *xmlest.Database, path string) (xmlest.ShardInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return xmlest.ShardInfo{}, err
	}
	defer f.Close()
	return db.Append(f)
}

func openDatabase(data, dataset string, scale float64, seed int64) (*xmlest.Database, error) {
	db, err := cliutil.OpenDatabase(data, dataset, scale, seed)
	if err != nil {
		return nil, fmt.Errorf("xqest: %w", err)
	}
	return db, nil
}

func needPattern() string {
	if flag.NArg() < 2 {
		fatal(fmt.Errorf("xqest: %s requires a pattern argument", flag.Arg(0)))
	}
	return flag.Arg(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: xqest [-data files | -dataset name] [-append files] [-grid g] <command> [arg]

commands:
  stats                 dataset statistics
                        (-server URL: introspect a running daemon's /stats
                         instead; -metrics dumps its raw Prometheus exposition)
  shards                list live shards (id, nodes, docs, kind)
  predicates            registered predicates with counts and overlap property
  build                 build histograms and write them to -o (default summary.bin);
                        one shard writes XQS1, several write the XQS2 container
  estimate '<pattern>'  estimated answer size via position histograms
                        (-save file: persist the summary afterwards;
                         -load file: estimate from a saved summary, no data)
  exact '<pattern>'     exact answer size (ground truth)
  accuracy              estimate-vs-exact q-error over seeded workloads
                        (all tag pairs + -twigs random twigs under -twig-seed;
                         -json emits machine-readable reports; works over
                         -data, -dataset or -data-dir, never a summary)
  explain '<pattern>'   candidate join orders with intermediate estimates
  compact               merge small shards (size-tiered; -max-shards caps the count)
  drop <shard-id>       remove a shard from the serving set
  serve                 run the HTTP estimation daemon on -addr (see xqestd;
                        -autocompact 30s enables background compaction,
                        -save persists the summary on shutdown,
                        -load file serves a saved summary read-only)
  wal [records]         inspect a durable data directory's write-ahead log
                        (-data-dir dir; "records" lists every logged batch)
  manifest              inspect a durable data directory's checkpoint manifest
                        (-data-dir dir)`)
	os.Exit(2)
}
