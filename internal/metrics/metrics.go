// Package metrics instruments the serving layer: atomic request
// counters and lock-free latency histograms, aggregated per endpoint
// in a Registry whose Snapshot reports QPS and tail latency
// (p50/p95/p99) for the daemon's /stats endpoint.
//
// Latency histograms reuse the estimator's own histogram machinery for
// bucketing: a histogram.Grid over log-spaced nanosecond boundaries
// plays the role the position grid plays for interval labels, and
// Grid.Bucket's binary search places each observation. Counts are
// per-bucket atomics, so Observe is wait-free and safe under heavy
// concurrent load; quantiles interpolate within the bucket holding the
// requested rank.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xmlest/internal/histogram"
)

// latencyGridBounds spans 1µs to ~67s (1µs·2^26) with doubling
// (log-spaced) buckets, plus a catch-all first bucket for
// sub-microsecond observations — 27 buckets. That keeps a histogram's
// footprint at a few hundred bytes while bounding quantile error to
// the bucket ratio (2×).
func latencyGridBounds() []int {
	bounds := []int{0}
	// Arithmetic stays in int64: nanosecond bounds beyond ~2.1s
	// overflow a 32-bit int, so on such platforms the ladder stops at
	// the largest representable bound (longer observations clamp into
	// the top bucket).
	for ns := int64(time.Microsecond); ns <= int64(128*time.Second); ns *= 2 {
		if ns > int64(maxInt) {
			break
		}
		bounds = append(bounds, int(ns))
	}
	return bounds
}

const maxInt = int(^uint(0) >> 1)

// latencyGrid is the shared bucket partition; grids are immutable, so
// every histogram references the same one.
var latencyGrid = histogram.MustGrid(latencyGridBounds())

// LatencyHistogram is a fixed-bucket histogram of durations. All
// methods are safe for concurrent use; Observe is wait-free.
type LatencyHistogram struct {
	grid    histogram.Grid
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Uint64
	maxNS   atomic.Uint64
}

// NewLatencyHistogram returns a histogram over the default log-spaced
// bucket partition (1µs..~67s, doubling).
func NewLatencyHistogram() *LatencyHistogram {
	return &LatencyHistogram{grid: latencyGrid, buckets: make([]atomic.Uint64, latencyGrid.Size())}
}

// Observe records one duration.
func (h *LatencyHistogram) Observe(d time.Duration) {
	// Clamp in int64 before converting: int(d) would overflow a 32-bit
	// int for observations beyond ~2.1s and bucket them as 0ns.
	ns64 := int64(d)
	if ns64 < 0 {
		ns64 = 0
	}
	if ns64 >= int64(h.grid.MaxPos()) {
		ns64 = int64(h.grid.MaxPos()) - 1
	}
	h.buckets[h.grid.Bucket(int(ns64))].Add(1)
	h.count.Add(1)
	h.sumNS.Add(uint64(d))
	for {
		cur := h.maxNS.Load()
		if uint64(d) <= cur || h.maxNS.CompareAndSwap(cur, uint64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *LatencyHistogram) Count() uint64 { return h.count.Load() }

// LatencySummary is a point-in-time digest of a LatencyHistogram.
// Quantiles are interpolated within buckets, so they carry the bucket
// ratio (2×) as worst-case relative error.
type LatencySummary struct {
	Count    uint64        `json:"count"`
	Mean     time.Duration `json:"mean_ns"`
	P50      time.Duration `json:"p50_ns"`
	P95      time.Duration `json:"p95_ns"`
	P99      time.Duration `json:"p99_ns"`
	Max      time.Duration `json:"max_ns"`
	MeanUSec float64       `json:"mean_us"`
	P50USec  float64       `json:"p50_us"`
	P95USec  float64       `json:"p95_us"`
	P99USec  float64       `json:"p99_us"`
}

// Summary digests the histogram. Concurrent Observes may land between
// the per-bucket reads; the digest is internally consistent with the
// counts it read.
func (h *LatencyHistogram) Summary() LatencySummary {
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := LatencySummary{Count: total, Max: time.Duration(h.maxNS.Load())}
	if total == 0 {
		return s
	}
	s.Mean = time.Duration(h.sumNS.Load() / total)
	s.P50 = h.quantile(counts, total, 0.50)
	s.P95 = h.quantile(counts, total, 0.95)
	s.P99 = h.quantile(counts, total, 0.99)
	if s.Max > 0 {
		// The top bucket's upper edge can exceed the largest observation
		// by up to 2×; the tracked max is a tighter cap.
		for _, q := range []*time.Duration{&s.P50, &s.P95, &s.P99} {
			if *q > s.Max {
				*q = s.Max
			}
		}
	}
	s.MeanUSec = float64(s.Mean) / float64(time.Microsecond)
	s.P50USec = float64(s.P50) / float64(time.Microsecond)
	s.P95USec = float64(s.P95) / float64(time.Microsecond)
	s.P99USec = float64(s.P99) / float64(time.Microsecond)
	return s
}

// Quantile returns the interpolated p-quantile (p in [0,1]) of the
// observations, or 0 when the histogram is empty.
func (h *LatencyHistogram) Quantile(p float64) time.Duration {
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	return h.quantile(counts, total, p)
}

// quantile walks the bucket counts to the one holding rank p*total and
// interpolates linearly within its [Lo, Hi) extent.
func (h *LatencyHistogram) quantile(counts []uint64, total uint64, p float64) time.Duration {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			lo, hi := float64(h.grid.Lo(i)), float64(h.grid.Hi(i))
			frac := (rank - cum) / float64(c)
			return time.Duration(lo + (hi-lo)*frac)
		}
		cum += float64(c)
	}
	return time.Duration(h.grid.MaxPos())
}

// recentSlots sizes the per-second ring used for windowed QPS. It must
// exceed recentWindow by enough slack that a slot is never both read
// and rewritten for the same window.
const (
	recentSlots  = 16
	recentWindow = 10 // seconds of completed history averaged by RecentQPS
)

// Outcome classifies a completed request.
type Outcome int

const (
	// OK is a served request.
	OK Outcome = iota
	// Error is a failed request (bad input, internal failure).
	Error
	// Rejected is a deliberate refusal — backpressure or drain — the
	// system working as designed, counted apart from errors.
	Rejected
)

// OutcomeOf maps an error-ish boolean to OK/Error, for callers without
// a rejection concept.
func OutcomeOf(isErr bool) Outcome {
	if isErr {
		return Error
	}
	return OK
}

// Endpoint aggregates one endpoint's counters and latency. All methods
// are safe for concurrent use.
type Endpoint struct {
	name     string
	created  time.Time
	requests atomic.Uint64
	errors   atomic.Uint64
	rejected atomic.Uint64
	panics   atomic.Uint64
	inflight atomic.Int64
	lat      *LatencyHistogram
	// recent is a ring of per-second request counts packed as
	// sec<<32|count (sec truncated to 32 bits), written lock-free by
	// Observe and read by RecentQPS.
	recent [recentSlots]atomic.Uint64
}

func newEndpoint(name string) *Endpoint {
	return &Endpoint{name: name, created: time.Now(), lat: NewLatencyHistogram()}
}

// Name returns the endpoint's registered name.
func (e *Endpoint) Name() string { return e.name }

// Latency exposes the endpoint's latency histogram.
func (e *Endpoint) Latency() *LatencyHistogram { return e.lat }

// BeginRequest marks a request in flight; the returned func completes
// it, recording latency and the outcome.
func (e *Endpoint) BeginRequest() func(Outcome) {
	e.inflight.Add(1)
	start := time.Now()
	return func(o Outcome) {
		e.inflight.Add(-1)
		e.Observe(time.Since(start), o)
	}
}

// RecordPanic counts one recovered handler panic. The request itself
// is also completed (as an Error) by the usual path; this counter
// exists so panics are distinguishable from ordinary failures.
func (e *Endpoint) RecordPanic() { e.panics.Add(1) }

// Panics returns the recovered-panic count.
func (e *Endpoint) Panics() uint64 { return e.panics.Load() }

// Observe records one completed request.
func (e *Endpoint) Observe(d time.Duration, o Outcome) {
	e.requests.Add(1)
	switch o {
	case Error:
		e.errors.Add(1)
	case Rejected:
		e.rejected.Add(1)
	}
	e.lat.Observe(d)
	e.tick(time.Now().Unix())
}

// tick bumps the current second's slot in the recent ring, claiming it
// from a stale second if necessary.
func (e *Endpoint) tick(sec int64) {
	slot := &e.recent[sec%recentSlots]
	tag := uint64(uint32(sec)) << 32
	for {
		cur := slot.Load()
		if cur>>32 == tag>>32 {
			if slot.CompareAndSwap(cur, cur+1) {
				return
			}
			continue
		}
		if slot.CompareAndSwap(cur, tag|1) {
			return
		}
	}
}

// RecentQPS averages the request rate over the last recentWindow
// completed seconds — or over the endpoint's whole life when it is
// younger than the window, so short runs are not under-reported.
func (e *Endpoint) RecentQPS() float64 {
	now := time.Now().Unix()
	window := int64(time.Since(e.created).Seconds())
	if window > recentWindow {
		window = recentWindow
	}
	if window < 1 {
		window = 1
	}
	var n uint64
	for back := int64(1); back <= window; back++ {
		sec := now - back
		cur := e.recent[sec%recentSlots].Load()
		if cur>>32 == uint64(uint32(sec)) {
			n += cur & 0xffffffff
		}
	}
	return float64(n) / float64(window)
}

// EndpointSnapshot is a point-in-time digest of one endpoint.
type EndpointSnapshot struct {
	Name      string         `json:"name"`
	Requests  uint64         `json:"requests"`
	Errors    uint64         `json:"errors"`
	Rejected  uint64         `json:"rejected"`
	Panics    uint64         `json:"panics,omitempty"`
	Inflight  int64          `json:"inflight"`
	QPS       float64        `json:"qps"`
	RecentQPS float64        `json:"recent_qps"`
	Latency   LatencySummary `json:"latency"`
}

// Registry holds one Endpoint per name and digests them all at once.
// It is also the exposition hub: subsystems Register their Collectors
// and WriteExposition (see prom.go) renders everything as Prometheus
// text.
type Registry struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*Endpoint

	collMu     sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry; its uptime clock starts now.
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), endpoints: make(map[string]*Endpoint)}
}

// Endpoint returns the named endpoint, creating it on first use.
func (r *Registry) Endpoint(name string) *Endpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.endpoints[name]
	if !ok {
		e = newEndpoint(name)
		r.endpoints[name] = e
	}
	return e
}

// Uptime returns the time since the registry was created.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }

// Snapshot digests every endpoint, sorted by name. Lifetime QPS is
// requests over registry uptime; RecentQPS averages the last
// recentWindow seconds.
func (r *Registry) Snapshot() []EndpointSnapshot {
	r.mu.Lock()
	eps := make([]*Endpoint, 0, len(r.endpoints))
	for _, e := range r.endpoints {
		eps = append(eps, e)
	}
	r.mu.Unlock()
	sort.Slice(eps, func(i, j int) bool { return eps[i].name < eps[j].name })
	uptime := r.Uptime().Seconds()
	out := make([]EndpointSnapshot, len(eps))
	for i, e := range eps {
		out[i] = EndpointSnapshot{
			Name:      e.name,
			Requests:  e.requests.Load(),
			Errors:    e.errors.Load(),
			Rejected:  e.rejected.Load(),
			Panics:    e.panics.Load(),
			Inflight:  e.inflight.Load(),
			RecentQPS: e.RecentQPS(),
			Latency:   e.lat.Summary(),
		}
		if uptime > 0 {
			out[i].QPS = float64(out[i].Requests) / uptime
		}
	}
	return out
}
