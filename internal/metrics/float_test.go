package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestFloatHistogramBasics(t *testing.T) {
	h := NewQErrorHistogram()
	if s := h.Summary(); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	h.Observe(1)
	h.Observe(1.5)
	h.Observe(100)
	h.Observe(math.NaN()) // dropped
	h.Observe(-3)         // clamps to 0
	if n := h.Count(); n != 4 {
		t.Errorf("count = %d, want 4 (NaN dropped)", n)
	}
	if sum := h.Sum(); sum != 102.5 {
		t.Errorf("sum = %v, want 102.5", sum)
	}
	s := h.Summary()
	if s.Max != 100 {
		t.Errorf("max = %v, want 100", s.Max)
	}
	if s.P50 < 0 || s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Errorf("quantiles disordered: %+v", s)
	}
}

func TestFloatHistogramQuantileInterpolation(t *testing.T) {
	// All mass in one bucket: the quantile interpolates inside its
	// extent and never exceeds the tracked max.
	h := NewFloatHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	s := h.Summary()
	if s.P50 < 1 || s.P50 > 2 {
		t.Errorf("p50 = %v, want within (1, 2]", s.P50)
	}
	if s.P99 > s.Max {
		t.Errorf("p99 %v exceeds max %v", s.P99, s.Max)
	}
	// Values beyond the last bound land in +Inf, capped by max.
	h2 := NewFloatHistogram([]float64{1})
	h2.Observe(50)
	if s2 := h2.Summary(); s2.P99 > 50 {
		t.Errorf("+Inf bucket quantile %v exceeds observed max 50", s2.P99)
	}
}

func TestFloatHistogramConcurrent(t *testing.T) {
	h := NewQErrorHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(2)
			}
		}()
	}
	wg.Wait()
	if n := h.Count(); n != 8000 {
		t.Errorf("count = %d, want 8000", n)
	}
	if sum := h.Sum(); sum != 16000 {
		t.Errorf("sum = %v, want 16000", sum)
	}
}

func TestFloatSamplesExposition(t *testing.T) {
	h := NewFloatHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)
	var buf bytes.Buffer
	e := NewExpo(&buf)
	e.HistogramFamily("test_qerror", "help")
	e.FloatSamples("test_qerror", h)
	out := buf.String()
	for _, want := range []string{
		`test_qerror_bucket{le="1"} 1`,
		`test_qerror_bucket{le="10"} 2`,
		`test_qerror_bucket{le="+Inf"} 3`,
		"test_qerror_sum 105.5",
		"test_qerror_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPatternStatsQError(t *testing.T) {
	p := NewPatternStats(2)
	p.Observe("//a//b", 10, 0)
	p.ObserveQError("//a//b", 1.5)
	p.ObserveQError("//never//seen", 9) // untracked: dropped silently
	snap := p.Snapshot(0)
	if len(snap) != 1 {
		t.Fatalf("snapshot len = %d, want 1", len(snap))
	}
	if snap[0].QError == nil || snap[0].QError.Count != 1 || snap[0].QError.Max != 1.5 {
		t.Errorf("pattern q-error digest = %+v", snap[0].QError)
	}

	// Without any verified pattern the per-pattern q-error families are
	// not declared (no sample-less families); with one they are.
	empty := NewPatternStats(2)
	empty.Observe("//a//b", 10, 0)
	var buf bytes.Buffer
	empty.Collect(NewExpo(&buf))
	if strings.Contains(buf.String(), "xqest_pattern_qerror") {
		t.Errorf("qerror families declared without verified observations:\n%s", buf.String())
	}
	buf.Reset()
	p.Collect(NewExpo(&buf))
	out := buf.String()
	if !strings.Contains(out, `xqest_pattern_qerror_count{pattern="//a//b"} 1`) {
		t.Errorf("missing per-pattern qerror count:\n%s", out)
	}
	if !strings.Contains(out, `xqest_pattern_qerror_mean{pattern="//a//b"} 1.5`) {
		t.Errorf("missing per-pattern qerror mean:\n%s", out)
	}
}
