package datagen

import (
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// ManagerDTD is the exact recursive DTD the paper generates its
// synthetic dataset from (Section 5.2).
const ManagerDTD = `
<!ELEMENT manager (name, (manager | department | employee)+)>
<!ELEMENT department (name, email?, employee+, department*)>
<!ELEMENT employee (name+, email?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT email (#PCDATA)>
`

// HierConfig scales the manager/department/employee dataset.
type HierConfig struct {
	Seed int64
	// Scale 1.0 targets the paper's Table 3 cardinalities
	// (~44 managers, ~270 departments, ~473 employees, ~173 emails,
	// ~1002 names); larger values grow the document proportionally by
	// raising the node budget.
	Scale float64
}

// DefaultHierConfig approximates the paper's Table 3 dataset.
var DefaultHierConfig = HierConfig{Seed: 52, Scale: 1.0}

// GenerateHier builds the synthetic manager/department/employee
// document from ManagerDTD. Generation parameters are tuned so that at
// Scale 1 the predicate cardinalities land near the paper's Table 3 and
// the overlap properties match exactly: manager and department overlap
// (both recurse), employee, email and name do not.
func GenerateHier(cfg HierConfig) *xmltree.Tree {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	d, err := ParseDTD(ManagerDTD)
	if err != nil {
		panic("datagen: ManagerDTD must parse: " + err.Error())
	}
	// Targets (Table 3): 44 managers, 270 departments, 473 employees,
	// 173 emails, 1002 names — about 1960 elements at Scale 1. The
	// branching parameters below are derived from those ratios; the
	// process is stochastic, so generation retries deterministically
	// (seed, seed+1, ...) until the document size lands in a ±25% band
	// around the target.
	target := int(1960 * cfg.Scale)
	gen := GenConfig{
		Root:         "manager",
		RepeatMean:   4.6,  // manager's (manager|department|employee)+ group
		OptionalProb: 0.23, // email? presence
		RepeatMeans: map[string]float64{
			"department": 0.5,  // department* recursion within departments
			"employee":   0.5,  // extra employees per department beyond the first
			"name":       0.45, // extra names per employee
		},
		ChoiceWeights: map[string]float64{
			"manager":    0.175,
			"department": 0.549,
			"employee":   0.276,
		},
		MaxDepth: 14,
		MaxNodes: 3 * target,
	}
	for attempt := 0; ; attempt++ {
		gen.Seed = cfg.Seed + int64(attempt)
		tree, err := d.Generate(gen)
		if err != nil {
			panic("datagen: ManagerDTD generation must succeed: " + err.Error())
		}
		if n := tree.NumNodes(); n >= target*3/4 && n <= target*5/4 {
			return tree
		}
		if attempt > 1000 {
			return tree // give up on the band; still a valid document
		}
	}
}

// HierCatalog registers the paper's Table 3 predicates plus TRUE.
func HierCatalog(tr *xmltree.Tree) *predicate.Catalog {
	cat := predicate.NewCatalog(tr)
	for _, tag := range []string{"manager", "department", "employee", "email", "name"} {
		cat.Add(predicate.Tag{Value: tag})
	}
	cat.Add(predicate.True{})
	return cat
}
