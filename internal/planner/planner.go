// Package planner demonstrates the paper's motivating use case: a
// cost-based optimizer choosing among alternative join orders for a
// twig query using the estimator's intermediate-result size estimates
// (Section 1's department/faculty/TA/RA example).
//
// A twig over pattern nodes {n1..nk} is evaluated as a sequence of
// binary structural joins. The planner enumerates left-deep join orders
// whose prefixes are connected sub-twigs, estimates every intermediate
// result with the position-histogram estimator, and costs a plan as the
// sum of its intermediate result sizes (a standard surrogate for the
// I/O and memory cost of materializing intermediaries).
package planner

import (
	"fmt"
	"sort"
	"strings"

	"xmlest/internal/core"
	"xmlest/internal/pattern"
)

// Step is one join in a plan: after it executes, the sub-twig induced
// by Joined is materialized, with estimated cardinality Estimate.
type Step struct {
	// Added is the pattern node joined in at this step.
	Added *pattern.Node
	// Joined is the connected set of pattern nodes materialized after
	// the step, in pattern pre-order.
	Joined []*pattern.Node
	// Estimate is the estimated cardinality of the intermediate result.
	Estimate float64
}

// Plan is a left-deep join order with per-step estimates.
type Plan struct {
	Steps []*Step
	// Cost is the sum of intermediate-result estimates (every step but
	// the last, which is the final result and must be produced by any
	// plan).
	Cost float64
}

// String renders the plan as "a ⋈ b [est] ⋈ c [est] ...".
func (p *Plan) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		if i == 0 {
			b.WriteString(s.Added.Test)
			continue
		}
		fmt.Fprintf(&b, " + %s [%.1f]", s.Added.Test, s.Estimate)
	}
	return b.String()
}

// Enumerate returns every left-deep connected join order for the
// pattern, with estimated intermediate sizes, sorted by ascending cost.
// Patterns with more than MaxNodes nodes are rejected (factorial
// enumeration).
func Enumerate(est *core.Estimator, p *pattern.Pattern) ([]*Plan, error) {
	const maxNodes = 8
	nodes := p.Nodes()
	if len(nodes) > maxNodes {
		return nil, fmt.Errorf("planner: pattern has %d nodes, max %d", len(nodes), maxNodes)
	}
	if len(nodes) < 2 {
		return nil, fmt.Errorf("planner: pattern must have at least two nodes")
	}
	parent := map[*pattern.Node]*pattern.Node{}
	for _, e := range p.Edges() {
		parent[e[1]] = e[0]
	}

	var plans []*Plan
	var recurse func(chosen []*pattern.Node, steps []*Step, cost float64)
	recurse = func(chosen []*pattern.Node, steps []*Step, cost float64) {
		if len(chosen) == len(nodes) {
			cp := make([]*Step, len(steps))
			copy(cp, steps)
			plans = append(plans, &Plan{Steps: cp, Cost: cost})
			return
		}
		for _, cand := range nodes {
			if containsNode(chosen, cand) || !connects(chosen, cand, parent) {
				continue
			}
			joined := append(append([]*pattern.Node{}, chosen...), cand)
			size, err := estimateInduced(est, p, joined)
			if err != nil {
				// Estimation failures (missing predicate) abort the
				// whole enumeration; record by panicking through error
				// capture below is overkill — skip this branch.
				continue
			}
			step := &Step{Added: cand, Joined: joined, Estimate: size}
			extra := 0.0
			if len(joined) < len(nodes) {
				extra = size // intermediate result is materialized
			}
			recurse(joined, append(steps, step), cost+extra)
		}
	}
	for _, first := range nodes {
		size, err := estimateInduced(est, p, []*pattern.Node{first})
		if err != nil {
			return nil, err
		}
		recurse([]*pattern.Node{first},
			[]*Step{{Added: first, Joined: []*pattern.Node{first}, Estimate: size}}, 0)
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("planner: no estimable plans for %s", p)
	}
	sort.SliceStable(plans, func(i, j int) bool { return plans[i].Cost < plans[j].Cost })
	return plans, nil
}

// Best returns the cheapest plan.
func Best(est *core.Estimator, p *pattern.Pattern) (*Plan, error) {
	plans, err := Enumerate(est, p)
	if err != nil {
		return nil, err
	}
	return plans[0], nil
}

// containsNode reports membership.
func containsNode(set []*pattern.Node, n *pattern.Node) bool {
	for _, s := range set {
		if s == n {
			return true
		}
	}
	return false
}

// connects reports whether cand is adjacent (parent or child in the
// pattern tree) to some chosen node.
func connects(chosen []*pattern.Node, cand *pattern.Node, parent map[*pattern.Node]*pattern.Node) bool {
	for _, c := range chosen {
		if parent[cand] == c || parent[c] == cand {
			return true
		}
	}
	return false
}

// estimateInduced estimates the cardinality of the connected sub-twig
// induced by the joined set, using the estimator's sub-pattern
// machinery on a rebuilt pattern rooted at the set's topmost node.
func estimateInduced(est *core.Estimator, p *pattern.Pattern, joined []*pattern.Node) (float64, error) {
	if len(joined) == 1 {
		h, err := est.Histogram(joined[0].PredName())
		if err != nil {
			return 0, err
		}
		return h.Total(), nil
	}
	root := induceRoot(p, joined)
	sub := rebuild(root, joined)
	sp, err := est.EstimateSubPattern(&pattern.Pattern{Root: sub})
	if err != nil {
		return 0, err
	}
	return sp.Total(), nil
}

// induceRoot finds the unique topmost node of a connected set.
func induceRoot(p *pattern.Pattern, joined []*pattern.Node) *pattern.Node {
	parent := map[*pattern.Node]*pattern.Node{}
	for _, e := range p.Edges() {
		parent[e[1]] = e[0]
	}
	for _, n := range joined {
		if !containsNode(joined, parent[n]) {
			return n
		}
	}
	return joined[0]
}

// rebuild deep-copies the sub-pattern induced by the joined set.
func rebuild(n *pattern.Node, joined []*pattern.Node) *pattern.Node {
	out := &pattern.Node{Test: n.Test, Axis: n.Axis}
	for _, c := range n.Children {
		if containsNode(joined, c) {
			out.Children = append(out.Children, rebuild(c, joined))
		}
	}
	return out
}
