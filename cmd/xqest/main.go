// Command xqest loads an XML database, builds position histograms, and
// answers answer-size queries for twig patterns.
//
// Usage:
//
//	xqest -data a.xml[,b.xml,...] stats
//	xqest -data a.xml predicates
//	xqest -data a.xml -grid 10 estimate '//article//author'
//	xqest -data a.xml exact '//article//author'
//	xqest -data a.xml -grid 10 explain '//a[.//b]//c'
//
// The -dataset flag substitutes a built-in synthetic dataset for -data:
// dblp, hier, xmark or shakespeare.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xmlest"
	"xmlest/internal/datagen"
	"xmlest/internal/pattern"
	"xmlest/internal/planner"
)

func main() {
	data := flag.String("data", "", "comma-separated XML files")
	dataset := flag.String("dataset", "", "built-in dataset: dblp, hier, xmark, shakespeare")
	grid := flag.Int("grid", 10, "histogram grid size g (gxg buckets)")
	scale := flag.Float64("scale", 0.1, "built-in dataset scale")
	seed := flag.Int64("seed", 2002, "built-in dataset seed")
	summary := flag.String("summary", "", "summary file: estimate from it without loading data")
	out := flag.String("o", "summary.bin", "output file for the build command")
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
	}
	cmd := flag.Arg(0)

	// Estimation from a saved summary needs no data at all.
	if *summary != "" && cmd == "estimate" {
		blob, err := os.ReadFile(*summary)
		if err != nil {
			fatal(err)
		}
		est, err := xmlest.LoadEstimator(blob)
		if err != nil {
			fatal(err)
		}
		res, err := est.Estimate(needPattern())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("estimate: %.2f\nestimation time: %s\n(loaded from %s, %d bytes)\n",
			res.Estimate, res.Elapsed, *summary, len(blob))
		return
	}

	db, err := openDatabase(*data, *dataset, *scale, *seed)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "build":
		est, err := db.NewEstimator(xmlest.Options{GridSize: *grid})
		if err != nil {
			fatal(err)
		}
		blob, err := est.MarshalBinary()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d-byte summary for %d predicates to %s\n",
			len(blob), db.Catalog().Len(), *out)
	case "stats":
		s := db.Tree().Stats()
		fmt.Printf("nodes: %d\ndistinct tags: %d\nmax depth: %d\nmax position: %d\n",
			s.Nodes, s.DistinctTag, s.MaxDepth, s.MaxPos)
	case "predicates":
		for _, name := range db.Catalog().Names() {
			e := db.Catalog().MustGet(name)
			prop := "overlap"
			if e.NoOverlap {
				prop = "no overlap"
			}
			fmt.Printf("%-30s %10d  %s\n", name, e.Count(), prop)
		}
	case "estimate":
		src := needPattern()
		est, err := db.NewEstimator(xmlest.Options{GridSize: *grid})
		if err != nil {
			fatal(err)
		}
		res, err := est.Estimate(src)
		if err != nil {
			fatal(err)
		}
		algo := "primitive pH-join"
		if res.UsedNoOverlap {
			algo = "no-overlap (coverage)"
		}
		fmt.Printf("estimate: %.2f\nalgorithm: %s\nestimation time: %s\nsummary storage: %d bytes\n",
			res.Estimate, algo, res.Elapsed, est.StorageBytes())
	case "exact":
		src := needPattern()
		real, err := db.Count(src)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exact answer size: %.0f\n", real)
	case "explain":
		src := needPattern()
		est, err := db.NewEstimator(xmlest.Options{GridSize: *grid})
		if err != nil {
			fatal(err)
		}
		p, err := pattern.Parse(src)
		if err != nil {
			fatal(err)
		}
		plans, err := planner.Enumerate(est.Core(), p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d candidate join orders (cost = sum of intermediate sizes):\n", len(plans))
		show := len(plans)
		if show > 8 {
			show = 8
		}
		for i := 0; i < show; i++ {
			fmt.Printf("%2d. cost %12.1f  %s\n", i+1, plans[i].Cost, plans[i])
		}
	default:
		usage()
	}
}

func openDatabase(data, dataset string, scale float64, seed int64) (*xmlest.Database, error) {
	switch {
	case data != "":
		db, err := xmlest.OpenFiles(strings.Split(data, ",")...)
		if err != nil {
			return nil, err
		}
		db.AddAllTagPredicates()
		return db, nil
	case dataset == "dblp":
		db := xmlest.FromCatalog(datagen.DBLPCatalog(datagen.GenerateDBLP(
			datagen.DBLPConfig{Seed: seed, Scale: scale})))
		return db, nil
	case dataset == "hier":
		db := xmlest.FromCatalog(datagen.HierCatalog(datagen.GenerateHier(
			datagen.HierConfig{Seed: seed, Scale: scale * 10})))
		return db, nil
	case dataset == "xmark":
		db := xmlest.FromTree(datagen.GenerateXMark(seed, int(1000*scale)))
		db.AddAllTagPredicates()
		return db, nil
	case dataset == "shakespeare":
		db := xmlest.FromTree(datagen.GenerateShakespeare(seed, int(10*scale)+1))
		db.AddAllTagPredicates()
		return db, nil
	default:
		return nil, fmt.Errorf("xqest: provide -data files or -dataset name")
	}
}

func needPattern() string {
	if flag.NArg() < 2 {
		fatal(fmt.Errorf("xqest: %s requires a pattern argument", flag.Arg(0)))
	}
	return flag.Arg(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: xqest [-data files | -dataset name] [-grid g] <command> [pattern]

commands:
  stats                 dataset statistics
  predicates            registered predicates with counts and overlap property
  build                 build histograms and write them to -o (default summary.bin)
  estimate '<pattern>'  estimated answer size via position histograms
                        (with -summary file: estimate without loading any data)
  exact '<pattern>'     exact answer size (ground truth)
  explain '<pattern>'   candidate join orders with intermediate estimates`)
	os.Exit(2)
}
