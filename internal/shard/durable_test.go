package shard

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"xmlest/internal/core"
	"xmlest/internal/manifest"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/wal"
	"xmlest/internal/xmltree"
)

var durableTestOpts = core.Options{GridSize: 4}

func durableCfg() DurableConfig {
	return DurableConfig{Options: durableTestOpts, WAL: wal.Options{Mode: wal.ModeAlways}}
}

// bootstrapFig1 seeds a store with the paper's Fig 1 document and the
// all-tags vocabulary.
func bootstrapFig1() (*Store, error) {
	st := NewStore(predicate.Spec{AllTags: true})
	if _, err := st.AppendTree(xmltree.Fig1Document()); err != nil {
		return nil, err
	}
	st.AddAllTagPredicates()
	return st, nil
}

// batchDocs are appended batches whose tags extend the vocabulary.
func batchDocs(i int) [][]byte {
	return [][]byte{
		[]byte(fmt.Sprintf("<department><faculty>f%d<TA>t</TA><RA>r</RA></faculty></department>", i)),
		[]byte(fmt.Sprintf("<department><staff>s%d</staff></department>", i)),
	}
}

var durablePatterns = []string{
	"//department//faculty",
	"//department//faculty[.//TA][.//RA]",
	"//department//staff",
	"//faculty//TA",
}

// estimateAll evaluates the probe patterns against a store's serving
// set.
func estimateAll(t *testing.T, st *Store, opts core.Options) []float64 {
	t.Helper()
	set := st.Current()
	out := make([]float64, len(durablePatterns))
	for i, src := range durablePatterns {
		p, err := pattern.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := set.EstimateTwig(p, opts)
		if err != nil {
			t.Fatalf("estimate %q: %v", src, err)
		}
		out[i] = res.Estimate
	}
	return out
}

// controlStore replays the same bootstrap + batches without any
// durability machinery — the never-crashed reference run.
func controlStore(t *testing.T, batches int) *Store {
	t.Helper()
	st, err := bootstrapFig1()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < batches; i++ {
		tree, err := xmltree.ParseCollection(readerSlice(batchDocs(i)), xmltree.DefaultParseOptions)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.AppendTree(tree); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func readerSlice(docs [][]byte) []io.Reader {
	readers := make([]io.Reader, len(docs))
	for i, d := range docs {
		readers[i] = bytes.NewReader(d)
	}
	return readers
}

// requireBitIdentical asserts two estimate vectors match bit for bit.
func requireBitIdentical(t *testing.T, got, want []float64, label string) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: pattern %q: %v != control %v (not bit-identical)",
				label, durablePatterns[i], got[i], want[i])
		}
	}
}

// TestCrashRecoveryBitIdentical is the pinned exactness test: append
// batches durably, "crash" (abandon the store without Close or
// checkpoint), recover, and require estimates bit-identical to a
// never-crashed control run over the same batches.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	const batches = 5
	var ackVersions []uint64
	for i := 0; i < batches; i++ {
		sh, seq, err := d.AppendDocs(batchDocs(i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("wal seq %d, want %d", seq, i+1)
		}
		if d.DurableSeq() < seq {
			t.Fatalf("ModeAlways acked seq %d while durable is %d", seq, d.DurableSeq())
		}
		ackVersions = append(ackVersions, sh.InstalledAt())
	}
	preCrash := estimateAll(t, d.Store(), durableTestOpts)
	// Crash: no Close, no Checkpoint. The WAL alone must carry the
	// batches.

	d2, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	rec := d2.Recovery()
	if rec.ReplayedRecords != batches || rec.CheckpointShards != 0 {
		t.Fatalf("recovery %+v, want %d replayed and no checkpoint shards", rec, batches)
	}
	// Every acknowledged version is visible: serving version reached or
	// passed each ack.
	if v := d2.Store().Version(); v < ackVersions[len(ackVersions)-1] {
		t.Fatalf("recovered version %d below last acked %d", v, ackVersions[len(ackVersions)-1])
	}

	control := controlStore(t, batches)
	want := estimateAll(t, control, durableTestOpts)
	requireBitIdentical(t, preCrash, want, "pre-crash")
	requireBitIdentical(t, estimateAll(t, d2.Store(), durableTestOpts), want, "recovered")
}

// TestCheckpointRecovery checkpoints, appends more, crashes, and
// recovers from manifest + WAL tail — the mixed path.
func TestCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := d.AppendDocs(batchDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	cpVersion, err := d.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cpVersion != d.Store().Version() {
		t.Fatalf("checkpoint version %d, serving %d", cpVersion, d.Store().Version())
	}
	// The WAL is fully covered: one empty segment remains.
	segs, err := wal.List(filepath.Join(dir, WALDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Records != 0 {
		t.Fatalf("WAL not truncated by checkpoint: %+v", segs)
	}
	for i := 3; i < 5; i++ {
		if _, _, err := d.AppendDocs(batchDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	preCrash := estimateAll(t, d.Store(), durableTestOpts)
	preVersion := d.Store().Version()
	// Crash without Close.

	d2, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	rec := d2.Recovery()
	if rec.CheckpointShards != 4 { // fig1 bootstrap + 3 appended
		t.Fatalf("checkpoint shards %d, want 4 (%+v)", rec.CheckpointShards, rec)
	}
	if rec.ReplayedRecords != 2 {
		t.Fatalf("replayed %d, want 2 (%+v)", rec.ReplayedRecords, rec)
	}
	if v := d2.Store().Version(); v < preVersion {
		t.Fatalf("recovered version %d regressed below %d", v, preVersion)
	}
	requireBitIdentical(t, estimateAll(t, d2.Store(), durableTestOpts), preCrash, "checkpoint+tail recovery")
	requireBitIdentical(t, preCrash, estimateAll(t, controlStore(t, 5), durableTestOpts), "control")

	// Checkpointed shards came back summary-only; replayed ones carry
	// their documents.
	summaryOnly, treeBacked := 0, 0
	for _, sh := range d2.Store().Current().Shards() {
		if sh.SummaryOnly() {
			summaryOnly++
		} else {
			treeBacked++
		}
	}
	if summaryOnly != 4 || treeBacked != 2 {
		t.Fatalf("recovered shard kinds: %d summary-only, %d tree-backed", summaryOnly, treeBacked)
	}
}

// TestCheckpointReusesShardFiles verifies a second checkpoint rewrites
// nothing for unchanged shards and GCs files of compacted-away shards.
func TestCheckpointReusesShardFiles(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := d.AppendDocs(batchDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	man1, _, err := manifest.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	mtimes := map[string]int64{}
	for _, e := range man1.Shards {
		fi, err := os.Stat(filepath.Join(dir, e.File))
		if err != nil {
			t.Fatal(err)
		}
		mtimes[e.File] = fi.ModTime().UnixNano()
	}

	// No mutations: the second checkpoint reuses every file.
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	man2, _, err := manifest.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man2.Shards) != len(man1.Shards) {
		t.Fatalf("shard count changed: %d -> %d", len(man1.Shards), len(man2.Shards))
	}
	for _, e := range man2.Shards {
		fi, err := os.Stat(filepath.Join(dir, e.File))
		if err != nil {
			t.Fatal(err)
		}
		if fi.ModTime().UnixNano() != mtimes[e.File] {
			t.Fatalf("checkpoint rewrote unchanged shard file %s", e.File)
		}
	}

	// Compact, checkpoint again: the group's files are GCed, walSeq
	// carries over so the WAL stays truncatable.
	merged, err := d.store.Compact(CompactionPolicy{TierRatio: 1e9, MinMerge: 2})
	if err != nil {
		t.Fatal(err)
	}
	if merged < 2 {
		t.Fatalf("compaction merged %d shards", merged)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	man3, _, err := manifest.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	live := map[string]bool{}
	for _, e := range man3.Shards {
		live[filepath.Base(e.File)] = true
	}
	dirents, err := os.ReadDir(filepath.Join(dir, ShardDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range dirents {
		if strings.HasSuffix(e.Name(), ".xqs") && !live[e.Name()] {
			t.Fatalf("orphaned checkpoint file %s survived GC", e.Name())
		}
	}

	// And recovery from the compacted checkpoint reproduces the live
	// post-compaction estimates exactly. (Compaction itself may shift
	// estimates — merged shards re-bucket positions on a merged-tree
	// grid — so the reference is the compacted store, not the
	// uncompacted control.)
	want := estimateAll(t, d.Store(), durableTestOpts)
	d2, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, estimateAll(t, d2.Store(), durableTestOpts), want, "post-compaction recovery")
}

// TestDropIsDurable drops a shard and verifies recovery does not
// resurrect it from the WAL.
func TestDropIsDurable(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	sh, _, err := d.AppendDocs(batchDocs(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.AppendDocs(batchDocs(1)); err != nil {
		t.Fatal(err)
	}
	ok, err := d.Drop(sh.ID())
	if err != nil || !ok {
		t.Fatalf("drop: ok=%v err=%v", ok, err)
	}
	docsBefore := d.Store().Current().TotalDocs()
	// Crash without Close.
	d2, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Store().Current().TotalDocs(); got != docsBefore {
		t.Fatalf("recovered %d docs, want %d (dropped shard resurrected?)", got, docsBefore)
	}
	if ok, err := d.Drop(99999); err != nil || ok {
		t.Fatalf("dropping a missing shard: ok=%v err=%v", ok, err)
	}
}

// TestRecoveryRejectsGridMismatch pins the manifest's options check.
func TestRecoveryRejectsGridMismatch(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := durableCfg()
	cfg.Options.GridSize = durableTestOpts.GridSize + 1
	if _, err := OpenDurable(dir, bootstrapFig1, cfg); err == nil {
		t.Fatal("grid mismatch accepted")
	} else if !strings.Contains(err.Error(), "grid size") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRecoveryRejectsCorruptCheckpoint flips a byte in a checkpointed
// shard file: recovery must refuse rather than serve bad summaries.
func TestRecoveryRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	man, _, err := manifest.Load(dir)
	if err != nil || len(man.Shards) == 0 {
		t.Fatalf("manifest: %v, %d shards", err, len(man.Shards))
	}
	path := filepath.Join(dir, man.Shards[0].File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, bootstrapFig1, durableCfg()); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestEmptyBootstrap starts a pure-ingest durable store (nil
// bootstrap) and recovers it.
func TestEmptyBootstrap(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, nil, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.AppendDocs(batchDocs(0)); err != nil {
		t.Fatal(err)
	}
	want := estimateAll(t, d.Store(), durableTestOpts)
	d2, err := OpenDurable(dir, nil, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, estimateAll(t, d2.Store(), durableTestOpts), want, "empty-bootstrap recovery")
}

// TestDurableConcurrentStress races appends, checkpoints, compactions
// and estimates, then crashes and verifies recovery covers every
// acknowledged batch at no lower a version. Run with -race.
func TestDurableConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	const (
		appenders  = 4
		perWorker  = 8
		totalDocs  = appenders * perWorker * 2 // batchDocs yields 2 docs
		totalBatch = appenders * perWorker
	)
	var wg sync.WaitGroup
	var maxAck atomic.Uint64
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sh, _, err := d.AppendDocs(batchDocs(w*perWorker + i))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				for {
					cur := maxAck.Load()
					if sh.InstalledAt() <= cur || maxAck.CompareAndSwap(cur, sh.InstalledAt()) {
						break
					}
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var loops sync.WaitGroup
	loops.Add(2)
	go func() {
		defer loops.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	go func() {
		defer loops.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.store.Compact(CompactionPolicy{}); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			set := d.store.Current()
			p, _ := pattern.Parse("//department//faculty")
			if _, err := set.EstimateTwig(p, durableTestOpts); err != nil {
				t.Errorf("estimate: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	loops.Wait()

	// Crash without Close; recover and account for every batch.
	d2, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if v := d2.Store().Version(); v < maxAck.Load() {
		t.Fatalf("recovered version %d below max acked %d", v, maxAck.Load())
	}
	// Bootstrap holds 1 document (fig1); every appended doc must
	// survive, whether via checkpointed shards or WAL replay.
	if got := d2.Store().Current().TotalDocs(); got != totalDocs+1 {
		t.Fatalf("recovered %d docs, want %d", got, totalDocs+1)
	}
	_ = totalBatch
}

// TestRecoverySeqFloorSurvivesLostWALDir pins the manifest-as-floor
// guard: a checkpointed directory whose wal/ subtree vanished (ModeOff
// never fsyncs the post-truncation segment's dirent; backups may omit
// wal/ entirely) must not restart sequence numbering below the
// truncation point, or the next recovery would silently skip new
// acknowledged batches.
func TestRecoverySeqFloorSurvivesLostWALDir(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := d.AppendDocs(batchDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil { // checkpoint covers seqs 1..3
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, WALDir)); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	sh, seq, err := d2.AppendDocs(batchDocs(3))
	if err != nil {
		t.Fatal(err)
	}
	if seq <= 3 {
		t.Fatalf("sequence restarted below the truncation point: %d", seq)
	}
	want := estimateAll(t, d2.Store(), durableTestOpts)
	_ = sh
	// Crash and recover once more: the new batch must replay.
	d3, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if d3.Recovery().ReplayedRecords != 1 {
		t.Fatalf("replayed %d records, want 1 (%+v)", d3.Recovery().ReplayedRecords, d3.Recovery())
	}
	requireBitIdentical(t, estimateAll(t, d3.Store(), durableTestOpts), want, "post-floor recovery")
}

// TestDurabilityStats sanity-checks the introspection surface.
func TestDurabilityStats(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, bootstrapFig1, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.AppendDocs(batchDocs(0)); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Fsync != "always" || s.LastSeq != 1 || s.DurableSeq != 1 || s.WALSegments == 0 || s.WALBytes == 0 {
		t.Fatalf("stats: %+v", s)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s = d.Stats()
	if s.Checkpoints != 1 || s.CheckpointWALSeq != 1 || s.CheckpointVersion == 0 {
		t.Fatalf("post-checkpoint stats: %+v", s)
	}
}
