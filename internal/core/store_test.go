package core

import (
	"math"
	"testing"

	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

func buildForStore(t *testing.T, opts Options) *Estimator {
	t.Helper()
	tr := xmltree.Fig1Document()
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	cat.Add(predicate.True{})
	e, err := NewEstimator(cat, opts)
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	return e
}

func TestSummaryRoundTrip(t *testing.T) {
	e := buildForStore(t, Options{GridSize: 4, LevelHistograms: true})
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	loaded, err := UnmarshalEstimator(blob)
	if err != nil {
		t.Fatalf("UnmarshalEstimator: %v", err)
	}

	// Every estimation result must be identical from the loaded copy.
	pairs := [][2]string{
		{"tag=faculty", "tag=TA"},
		{"tag=department", "tag=RA"},
		{"tag=lecturer", "tag=TA"},
	}
	for _, p := range pairs {
		orig, err := e.EstimatePair(p[0], p[1])
		if err != nil {
			t.Fatalf("EstimatePair: %v", err)
		}
		got, err := loaded.EstimatePair(p[0], p[1])
		if err != nil {
			t.Fatalf("loaded EstimatePair: %v", err)
		}
		if math.Abs(orig.Estimate-got.Estimate) > 1e-12 {
			t.Errorf("%s//%s: loaded estimate %v != original %v", p[0], p[1], got.Estimate, orig.Estimate)
		}
		if got.UsedNoOverlap != orig.UsedNoOverlap {
			t.Errorf("%s//%s: algorithm choice changed after round trip", p[0], p[1])
		}
	}

	// Twig estimation (uses the TRUE histogram indirectly via coverage).
	p := pattern.MustParse("//department//faculty[.//TA][.//RA]")
	ot, err := e.EstimateTwig(p)
	if err != nil {
		t.Fatalf("EstimateTwig: %v", err)
	}
	lt, err := loaded.EstimateTwig(p)
	if err != nil {
		t.Fatalf("loaded EstimateTwig: %v", err)
	}
	if math.Abs(ot.Estimate-lt.Estimate) > 1e-12 {
		t.Errorf("twig estimate changed after round trip: %v vs %v", lt.Estimate, ot.Estimate)
	}

	// Level histograms survive.
	pc1, err := e.EstimatePairParentChild("tag=department", "tag=faculty")
	if err != nil {
		t.Fatalf("EstimatePairParentChild: %v", err)
	}
	pc2, err := loaded.EstimatePairParentChild("tag=department", "tag=faculty")
	if err != nil {
		t.Fatalf("loaded EstimatePairParentChild: %v", err)
	}
	if math.Abs(pc1.Estimate-pc2.Estimate) > 1e-12 {
		t.Errorf("parent-child estimate changed after round trip")
	}

	// Metadata survives.
	if len(loaded.Names()) != len(e.Names()) {
		t.Errorf("names = %d, want %d", len(loaded.Names()), len(e.Names()))
	}
	if !loaded.NoOverlap("tag=faculty") {
		t.Errorf("no-overlap flag lost")
	}
	if loaded.NoOverlap("TRUE") {
		t.Errorf("TRUE should remain overlapping")
	}
}

func TestSummaryRoundTripWithoutOptionalStructures(t *testing.T) {
	e := buildForStore(t, Options{GridSize: 3, SkipCoverage: true})
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	loaded, err := UnmarshalEstimator(blob)
	if err != nil {
		t.Fatalf("UnmarshalEstimator: %v", err)
	}
	if loaded.CoverageHistogram("tag=faculty") != nil {
		t.Errorf("coverage should be absent")
	}
	if loaded.Levels("tag=faculty") != nil {
		t.Errorf("levels should be absent")
	}
	orig, _ := e.EstimatePairPrimitive("tag=faculty", "tag=TA")
	got, err := loaded.EstimatePairPrimitive("tag=faculty", "tag=TA")
	if err != nil {
		t.Fatalf("loaded estimate: %v", err)
	}
	if math.Abs(orig.Estimate-got.Estimate) > 1e-12 {
		t.Errorf("estimate changed after round trip")
	}
}

func TestUnmarshalEstimatorRejectsGarbage(t *testing.T) {
	e := buildForStore(t, Options{GridSize: 3})
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	cases := [][]byte{
		nil,
		{},
		[]byte("XQS9garbage"),
		blob[:4],
		blob[:len(blob)/2],
		append([]byte("YYYY"), blob[4:]...),
	}
	for i, c := range cases {
		if _, err := UnmarshalEstimator(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	// Bit-flip fuzz over a few positions: must error or succeed, never
	// panic, and never produce NaN estimates.
	for pos := 5; pos < len(blob); pos += 7 {
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 0xff
		loaded, err := UnmarshalEstimator(mut)
		if err != nil || loaded == nil {
			continue
		}
		if res, err := loaded.EstimatePairPrimitive("tag=faculty", "tag=TA"); err == nil {
			if math.IsNaN(res.Estimate) {
				t.Errorf("pos %d: NaN estimate from corrupted summary", pos)
			}
		}
	}
}
