package shard

import (
	"math"
	"sync"
	"testing"

	"xmlest/internal/core"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// prepared compiles src against the store's current set through the
// merged-aware path.
func prepared(t *testing.T, st *Store, src string, opts core.Options) *Prepared {
	t.Helper()
	p, err := pattern.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := st.PrepareSet(st.Current(), p, opts)
	if err != nil {
		t.Fatalf("PrepareSet(%s): %v", src, err)
	}
	return pr
}

func mustValue(t *testing.T, pr *Prepared) float64 {
	t.Helper()
	res, err := pr.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	return res.Estimate
}

// relDiff is the relative difference used by the merged-vs-fan-out
// equality assertions (float accumulation order differs between the
// folded and summed evaluations, so exact bit equality is not the
// contract; 1e-9 relative is).
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// mergedStore builds a store with n appended document shards, active
// summaries for opts and a completed synchronous fold.
func mergedStore(t *testing.T, n int, opts core.Options) *Store {
	t.Helper()
	st := NewStore(allTagsSpec())
	for i := 0; i < n; i++ {
		if _, err := st.AppendTree(doc(3+i, 2+i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.EnsureSummaries(opts); err != nil {
		t.Fatal(err)
	}
	st.MergeNow()
	return st
}

// TestMergedMatchesFanOut pins the core serving claim: a fresh fold
// answers every query with the fan-out sum (≤1e-9 relative), through
// one folded unit instead of O(shards).
func TestMergedMatchesFanOut(t *testing.T) {
	queries := []string{
		"//faculty//TA",
		"//department//name",
		"//department//faculty//TA",
		"//department[.//staff]//TA",
	}
	for _, shards := range []int{2, 3, 7} {
		st := mergedStore(t, shards, defaultOpts)
		set := st.Current()
		info := st.MergedInfo(set, defaultOpts)
		if !info.Fresh || info.CoveredShards != shards {
			t.Fatalf("shards=%d: fold not fresh: %+v", shards, info)
		}
		for _, q := range queries {
			pr := prepared(t, st, q, defaultOpts)
			if !pr.Merged() || pr.Units() != 1 {
				t.Fatalf("shards=%d %s: want one merged unit, got merged=%v units=%d", shards, q, pr.Merged(), pr.Units())
			}
			merged := mustValue(t, pr)

			fanout, err := set.Prepare(pattern.MustParse(q), defaultOpts)
			if err != nil {
				t.Fatal(err)
			}
			want := mustValue(t, fanout)
			if want <= 0 {
				t.Fatalf("shards=%d %s: degenerate fan-out estimate %v", shards, q, want)
			}
			if d := relDiff(merged, want); d > 1e-9 {
				t.Errorf("shards=%d %s: merged %v vs fan-out %v (rel %v)", shards, q, merged, want, d)
			}
		}
	}
}

// TestMergedDisabledByOption checks the DisableMergedServing knob
// routes around a fresh fold.
func TestMergedDisabledByOption(t *testing.T) {
	st := mergedStore(t, 3, defaultOpts)
	opts := defaultOpts
	opts.DisableMergedServing = true
	pr := prepared(t, st, "//faculty//TA", opts)
	if pr.Merged() || pr.Units() != 3 {
		t.Fatalf("want 3 fan-out units with merged serving disabled, got merged=%v units=%d", pr.Merged(), pr.Units())
	}
}

// TestMergedTailFanOut: appends after a fold serve as merged prefix +
// per-shard tail until the next fold covers them.
func TestMergedTailFanOut(t *testing.T) {
	st := mergedStore(t, 3, defaultOpts)
	if _, err := st.AppendTree(doc(9, 4)); err != nil {
		t.Fatal(err)
	}
	// Snapshot before the background fold can cover the append (the
	// synchronous view of this moment): 1 merged + 1 tail unit.
	set := st.Current()
	pr, err := st.PrepareSet(set, pattern.MustParse("//faculty//TA"), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Merged() && pr.Units() != 4 {
		// The background fold may already have caught up, in which case
		// the binding is a single merged unit; both states are valid,
		// but a stale fold must never hide the tail.
		t.Fatalf("unexpected binding: merged=%v units=%d", pr.Merged(), pr.Units())
	}
	got := mustValue(t, pr)
	fanout, err := set.Prepare(pattern.MustParse("//faculty//TA"), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	want := mustValue(t, fanout)
	if d := relDiff(got, want); d > 1e-9 {
		t.Errorf("prefix+tail %v vs fan-out %v (rel %v)", got, want, d)
	}
	// After an explicit fold the same set serves fully merged.
	st.MergeNow()
	pr2 := prepared(t, st, "//faculty//TA", defaultOpts)
	if !pr2.Merged() || pr2.Units() != 1 {
		t.Fatalf("after MergeNow: merged=%v units=%d", pr2.Merged(), pr2.Units())
	}
	if d := relDiff(mustValue(t, pr2), want); d > 1e-9 {
		t.Errorf("post-fold %v vs fan-out %v", mustValue(t, pr2), want)
	}
}

// TestMergedInvalidation: drop and compact must invalidate the fold
// (dropped/merged-away shards leave the covered set), and the next fold
// must re-cover.
func TestMergedInvalidation(t *testing.T) {
	st := mergedStore(t, 4, defaultOpts)
	set := st.Current()
	view := st.mergedFor(set, defaultOpts)
	if view == nil {
		t.Fatal("no fold after MergeNow")
	}

	// Drop one covered shard: the old fold no longer applies.
	dropID := set.Shards()[1].ID()
	if !st.Drop(dropID) {
		t.Fatal("drop failed")
	}
	afterDrop := st.Current()
	if v := st.mergedFor(afterDrop, defaultOpts); v == view {
		t.Fatal("stale fold still served after Drop")
	}
	st.MergeNow()
	if info := st.MergedInfo(st.Current(), defaultOpts); !info.Fresh || info.CoveredShards != 3 {
		t.Fatalf("refold after drop: %+v", info)
	}
	pr := prepared(t, st, "//faculty//TA", defaultOpts)
	fanout, err := st.Current().Prepare(pattern.MustParse("//faculty//TA"), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(mustValue(t, pr), mustValue(t, fanout)); d > 1e-9 {
		t.Errorf("post-drop merged %v vs fan-out %v", mustValue(t, pr), mustValue(t, fanout))
	}

	// Compact the rest: the group leaves the set, invalidating again.
	preCompact := st.mergedFor(st.Current(), defaultOpts)
	merged, err := st.Compact(CompactionPolicy{TierRatio: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if merged == 0 {
		t.Fatal("compaction merged nothing")
	}
	if v := st.mergedFor(st.Current(), defaultOpts); v != nil && v == preCompact {
		t.Fatal("stale fold still served after Compact")
	}
	// A single compacted shard needs no fold; MergedInfo reports fresh.
	st.MergeNow()
	if info := st.MergedInfo(st.Current(), defaultOpts); !info.Fresh {
		t.Fatalf("post-compact info: %+v", info)
	}
}

// TestMergedInvalidationOnPredicateRegistration: registering predicates
// rebuilds catalogs, so folds must drop and epoch must move.
func TestMergedInvalidationOnPredicateRegistration(t *testing.T) {
	st := mergedStore(t, 3, defaultOpts)
	before := st.MergeEpoch()
	st.AddPredicates(predicate.ContentEquals{Value: "f1"})
	if st.MergeEpoch() == before {
		t.Fatal("epoch did not move on predicate registration")
	}
	st.MergeNow()
	pr := prepared(t, st, "//faculty//{text=f1}", defaultOpts)
	if !pr.Merged() {
		t.Fatalf("refolded view not serving: units=%d", pr.Units())
	}
	fanout, err := st.Current().Prepare(pattern.MustParse("//faculty//{text=f1}"), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	got, want := mustValue(t, pr), mustValue(t, fanout)
	if want <= 0 {
		t.Fatalf("degenerate fan-out estimate %v", want)
	}
	if d := relDiff(got, want); d > 1e-9 {
		t.Errorf("merged %v vs fan-out %v after registration", got, want)
	}
}

// TestMergedMixedPredicateFallsBack: a predicate that overlaps in one
// shard and not in another cannot be folded faithfully — queries
// touching it must fan out, and their estimates must equal the pure
// fan-out sum exactly.
func TestMergedMixedPredicateFallsBack(t *testing.T) {
	// Shard 1: TA nodes nested inside TA nodes (overlap). Shard 2:
	// plain docs where TA has the no-overlap property.
	b := xmltree.NewBuilder()
	b.Begin("department")
	b.Begin("faculty")
	b.Begin("TA")
	b.Element("TA", "x")
	b.End()
	b.End()
	b.End()
	nested := b.Tree()

	st := NewStore(allTagsSpec())
	if _, err := st.AppendTree(nested); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendTree(doc(3, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.EnsureSummaries(defaultOpts); err != nil {
		t.Fatal(err)
	}
	st.MergeNow()
	view := st.mergedFor(st.Current(), defaultOpts)
	if view == nil {
		t.Fatal("no fold")
	}
	if !view.mixed["tag=TA"] {
		t.Fatalf("tag=TA not marked mixed: %v", view.mixed)
	}

	pr := prepared(t, st, "//TA//TA", defaultOpts)
	if pr.Merged() {
		t.Fatal("mixed-predicate query served from the fold")
	}
	fanout, err := st.Current().Prepare(pattern.MustParse("//TA//TA"), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustValue(t, pr), mustValue(t, fanout); got != want {
		t.Errorf("mixed fallback %v != fan-out %v", got, want)
	}
	// Queries not touching the mixed predicate still serve merged.
	pr2 := prepared(t, st, "//department//name", defaultOpts)
	if !pr2.Merged() {
		t.Fatal("clean-predicate query not served from the fold")
	}
}

// TestEstimateWorkersInvariance: the fan-out estimate is bit-identical
// for every worker count (the sum is always in shard order).
func TestEstimateWorkersInvariance(t *testing.T) {
	st := mergedStore(t, 7, defaultOpts)
	p := pattern.MustParse("//department//faculty//TA")
	var base core.Result
	for i, workers := range []int{1, 2, 5, 16} {
		opts := defaultOpts
		opts.EstimateWorkers = workers
		opts.DisableMergedServing = true
		res, err := st.Current().EstimateTwig(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := st.PrepareSet(st.Current(), p, opts)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := pr.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		if pres.Estimate != res.Estimate {
			t.Fatalf("workers=%d: prepared %v != uncompiled %v", workers, pres.Estimate, res.Estimate)
		}
		if i == 0 {
			base = res
			continue
		}
		if res.Estimate != base.Estimate {
			t.Fatalf("workers=%d: %v != workers=1 %v", workers, res.Estimate, base.Estimate)
		}
	}
}

// TestMergedBudgetFallback: a fold over the byte budget must be
// skipped, leaving fan-out serving.
func TestMergedBudgetFallback(t *testing.T) {
	old := SetMergedBudgetBytes(1)
	defer SetMergedBudgetBytes(old)
	st := mergedStore(t, 3, defaultOpts)
	if v := st.mergedFor(st.Current(), defaultOpts); v != nil {
		t.Fatal("fold published despite budget")
	}
	pr := prepared(t, st, "//faculty//TA", defaultOpts)
	if pr.Merged() || pr.Units() != 3 {
		t.Fatalf("want fan-out under budget pressure, got merged=%v units=%d", pr.Merged(), pr.Units())
	}
}

// TestMergedStress races estimates against appends, drops, compactions
// and background folds; run with -race. Every estimate must succeed
// and stay within the additive envelope of the concurrently mutating
// corpus.
func TestMergedStress(t *testing.T) {
	st := NewStore(allTagsSpec())
	if _, err := st.AppendTree(doc(3, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.EnsureSummaries(defaultOpts); err != nil {
		t.Fatal(err)
	}
	const (
		writers   = 2
		readers   = 4
		perWriter = 15
	)
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				info, err := st.AppendTree(doc(2+i%4, 1+i%3))
				if err != nil {
					t.Error(err)
					return
				}
				switch i % 3 {
				case 0:
					if _, err := st.Compact(DefaultCompactionPolicy); err != nil {
						t.Error(err)
						return
					}
				case 1:
					st.Drop(info.ID())
				case 2:
					st.MergeNow()
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			p := pattern.MustParse("//faculty//TA")
			for {
				select {
				case <-stop:
					return
				default:
				}
				set := st.Current()
				pr, err := st.PrepareSet(set, p, defaultOpts)
				if err != nil {
					t.Error(err)
					return
				}
				res, err := pr.Estimate()
				if err != nil {
					t.Error(err)
					return
				}
				if res.Estimate < 0 || math.IsNaN(res.Estimate) {
					t.Errorf("bad estimate %v", res.Estimate)
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
}
