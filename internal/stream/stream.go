// Package stream builds position histograms directly from an XML byte
// stream without materializing the document tree — the ingest path for
// databases whose documents exceed memory. The estimator consumes only
// (start, end, depth, tag, text) events, all of which a single SAX-style
// pass produces with memory bounded by document depth.
//
// Grid construction needs the maximum position label before counts can
// be bucketed, so building is two passes over the input: pass one
// counts elements (two labels per element), pass two assigns labels
// with the same deterministic numbering as xmltree and feeds each
// histogram builder. Callers supply an openable source so the stream
// can be read twice.
package stream

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"xmlest/internal/histogram"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// Source re-opens the XML input for each pass.
type Source func() (io.ReadCloser, error)

// Event is one fully-numbered element delivered during the streaming
// pass, matching the labels xmltree.Parse would assign.
type Event struct {
	Tag   string
	Text  string
	Start int
	End   int
	Depth int
}

// EventPredicate decides predicate membership from a streamed event
// (tree-based predicates cannot apply: there is no tree). Element-tag
// and content predicates translate directly.
type EventPredicate interface {
	Name() string
	Matches(ev *Event) bool
}

// TagPred matches an element tag.
type TagPred struct{ Tag string }

func (p TagPred) Name() string           { return "tag=" + p.Tag }
func (p TagPred) Matches(ev *Event) bool { return ev.Tag == p.Tag }

// ContentPrefixPred matches a text prefix under an optional tag.
type ContentPrefixPred struct {
	Alias  string
	Tag    string // "" = any tag
	Prefix string
}

func (p ContentPrefixPred) Name() string { return p.Alias }
func (p ContentPrefixPred) Matches(ev *Event) bool {
	if p.Tag != "" && ev.Tag != p.Tag {
		return false
	}
	return strings.HasPrefix(ev.Text, p.Prefix)
}

// FuncPred adapts an arbitrary function.
type FuncPred struct {
	Alias string
	Fn    func(ev *Event) bool
}

func (p FuncPred) Name() string           { return p.Alias }
func (p FuncPred) Matches(ev *Event) bool { return p.Fn(ev) }

// Result is the output of a streaming build.
type Result struct {
	// Hists maps predicate names to their position histograms; the
	// TRUE histogram is under "TRUE".
	Hists map[string]*histogram.Position
	// Grid is the shared grid.
	Grid histogram.Grid
	// Nodes is the element count (excluding the dummy root).
	Nodes int
	// MaxDepth is the deepest element seen.
	MaxDepth int
	// MayOverlap maps predicate names to whether two satisfying nodes
	// were seen in an ancestor-descendant relationship (Definition 2
	// fails). Detected during the streaming pass: elements are emitted
	// in end-label order, so a satisfying node contains an earlier-
	// emitted satisfying node exactly when its start label precedes the
	// largest start label emitted so far for the predicate.
	MayOverlap map[string]bool
}

// Build scans the source twice and returns the histograms of the given
// predicates plus the TRUE histogram, on a uniform gridSize×gridSize
// grid. Memory use is O(depth + g² per predicate); the document tree is
// never materialized.
func Build(src Source, gridSize int, preds []EventPredicate) (*Result, error) {
	// Pass 1: count elements to fix the position space.
	elements, _, err := countElements(src, false)
	if err != nil {
		return nil, err
	}
	return buildCounted(src, gridSize, preds, elements)
}

// BuildAllTags scans the source twice and returns one histogram per
// distinct element tag plus TRUE — the streaming analogue of the
// all-tags predicate vocabulary (predicate.Spec.AllTags). The tag set
// is discovered during pass one alongside the element count, so the
// input is still read exactly twice.
func BuildAllTags(src Source, gridSize int) (*Result, error) {
	elements, tags, err := countElements(src, true)
	if err != nil {
		return nil, err
	}
	preds := make([]EventPredicate, len(tags))
	for i, tag := range tags {
		preds[i] = TagPred{Tag: tag}
	}
	return buildCounted(src, gridSize, preds, elements)
}

// buildCounted is pass two plus setup, with the element count already
// known.
func buildCounted(src Source, gridSize int, preds []EventPredicate, elements int) (*Result, error) {
	for _, p := range preds {
		if p.Name() == "TRUE" {
			return nil, fmt.Errorf("stream: the TRUE histogram is built automatically")
		}
	}
	// Positions mirror xmltree.Builder: dummy root takes label 0 and
	// the final label, each element takes two labels.
	maxPos := 2*elements + 2
	grid, err := histogram.NewUniformGrid(gridSize, maxPos)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	res := &Result{
		Hists:      make(map[string]*histogram.Position, len(preds)+1),
		Grid:       grid,
		MayOverlap: make(map[string]bool, len(preds)+1),
	}
	trueHist := histogram.NewPosition(grid)
	res.Hists["TRUE"] = trueHist
	res.MayOverlap["TRUE"] = true
	for _, p := range preds {
		if _, dup := res.Hists[p.Name()]; dup {
			return nil, fmt.Errorf("stream: duplicate predicate %q", p.Name())
		}
		res.Hists[p.Name()] = histogram.NewPosition(grid)
	}

	// Pass 2: number elements and feed the histograms. maxStart tracks,
	// per predicate, the largest start label among emitted matches: a
	// later-emitted match starting before it must contain one of them
	// (intervals in a tree never partially overlap), which is exactly
	// the overlap property.
	maxStart := make([]int, len(preds))
	for k := range maxStart {
		maxStart[k] = -1
	}
	err = scan(src, func(ev *Event) {
		res.Nodes++
		if ev.Depth > res.MaxDepth {
			res.MaxDepth = ev.Depth
		}
		i, j := grid.Bucket(ev.Start), grid.Bucket(ev.End)
		trueHist.Add(i, j, 1)
		for k, p := range preds {
			if p.Matches(ev) {
				res.Hists[p.Name()].Add(i, j, 1)
				if ev.Start < maxStart[k] {
					res.MayOverlap[p.Name()] = true
				} else {
					maxStart[k] = ev.Start
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// countElements is pass one: the element count, plus — when collectTags
// is set — the distinct element tags in sorted order (the all-tags
// vocabulary discovery).
func countElements(src Source, collectTags bool) (int, []string, error) {
	r, err := src()
	if err != nil {
		return 0, nil, err
	}
	defer r.Close()
	dec := xml.NewDecoder(r)
	n := 0
	var seen map[string]struct{}
	if collectTags {
		seen = make(map[string]struct{})
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, nil, fmt.Errorf("stream: pass 1: %w", err)
		}
		if el, ok := tok.(xml.StartElement); ok {
			n++
			if collectTags {
				seen[el.Name.Local] = struct{}{}
			}
		}
	}
	if !collectTags {
		return n, nil, nil
	}
	tags := make([]string, 0, len(seen))
	for tag := range seen {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	return n, tags, nil
}

// scan is pass two: it assigns (start, end) labels with one shared
// counter (the xmltree numbering) and emits one event per element at
// its close, when its text is complete. Memory is bounded by depth.
func scan(src Source, emit func(*Event)) error {
	r, err := src()
	if err != nil {
		return err
	}
	defer r.Close()
	dec := xml.NewDecoder(r)

	type open struct {
		tag   string
		text  strings.Builder
		start int
	}
	var stack []*open
	counter := 1 // label 0 belongs to the implicit dummy root
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("stream: pass 2: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			stack = append(stack, &open{tag: el.Name.Local, start: counter})
			counter++
		case xml.EndElement:
			if len(stack) == 0 {
				return fmt.Errorf("stream: unbalanced end element </%s>", el.Name.Local)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ev := Event{
				Tag:   top.tag,
				Text:  strings.TrimSpace(top.text.String()),
				Start: top.start,
				End:   counter,
				Depth: len(stack) + 1,
			}
			counter++
			emit(&ev)
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text.Write(el)
			}
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("stream: %d element(s) left open at EOF", len(stack))
	}
	return nil
}

// VerifyAgainstTree is a test helper: it checks that a streamed
// histogram matches the histogram built from the materialized tree for
// a tag predicate. Exposed so integration tests outside the package can
// reuse it.
func VerifyAgainstTree(t *xmltree.Tree, res *Result, tag string) error {
	cat := predicate.NewCatalog(t)
	entry := cat.Add(predicate.Tag{Value: tag})
	want := histogram.BuildPosition(t, entry.Nodes, res.Grid)
	got, ok := res.Hists["tag="+tag]
	if !ok {
		return fmt.Errorf("stream: no histogram for tag=%s", tag)
	}
	g := res.Grid.Size()
	for i := 0; i < g; i++ {
		for j := i; j < g; j++ {
			if got.Count(i, j) != want.Count(i, j) {
				return fmt.Errorf("stream: tag=%s cell (%d,%d): stream %v, tree %v",
					tag, i, j, got.Count(i, j), want.Count(i, j))
			}
		}
	}
	return nil
}
