package histogram

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of position histograms. The format is the compact
// sparse representation whose length the paper's storage-requirement
// experiments measure: only non-zero cells are encoded, with
// delta-encoded coordinates and varint counts. Integral counts (the
// common case for histograms built from data) are stored as varints;
// fractional counts (estimated histograms) fall back to 8-byte floats.
//
// Layout:
//
//	magic byte 'P'
//	flag byte: 1 if all counts integral, 0 otherwise
//	uvarint gridSize, uvarint maxPos            (uniform grids)
//	  — or 0, then gridSize+1 uvarint bounds    (non-uniform grids)
//	uvarint number of non-zero cells
//	per cell, in (i, j) order:
//	  uvarint delta of linear index i*g+j from the previous cell + 1
//	  count: uvarint (integral) or 8-byte big-endian float bits
const (
	posMagic     = 'P'
	flagIntegral = 1
)

// decodeMaxGridSize bounds the grid size decoders accept: a dense g×g
// plane is allocated per decoded histogram, so untrusted blobs must not
// dictate unbounded g. 4096 (a 128 MB plane) is far beyond any grid the
// paper's experiments — or this repo's sweeps — use.
const decodeMaxGridSize = 1 << 12

func checkDecodedGridSize(size uint64) error {
	if size == 0 || size > decodeMaxGridSize {
		return fmt.Errorf("histogram: bad grid size %d (decoder accepts 1..%d)", size, decodeMaxGridSize)
	}
	return nil
}

// isUniform reports whether the grid's bounds match NewUniformGrid for
// its size and maxPos, so the encoding can store just two integers.
func (g Grid) isUniform() bool {
	size, maxPos := g.Size(), g.MaxPos()
	for i := 0; i <= size; i++ {
		if g.bounds[i] != i*maxPos/size {
			return false
		}
	}
	return true
}

// MarshalBinary encodes the histogram.
func (h *Position) MarshalBinary() ([]byte, error) {
	integral := true
	h.EachNonZero(func(_, _ int, c float64) {
		// Varint-encodable counts only: non-negative integers small
		// enough that the float→uint64 conversion is exact. Anything
		// else (fractions, negatives, astronomically large estimates)
		// takes the lossless float branch.
		if c != math.Trunc(c) || c < 0 || c >= 1<<63 {
			integral = false
		}
	})
	buf := make([]byte, 0, 64)
	buf = append(buf, posMagic)
	if integral {
		buf = append(buf, flagIntegral)
	} else {
		buf = append(buf, 0)
	}
	g := h.grid
	if g.isUniform() {
		buf = binary.AppendUvarint(buf, uint64(g.Size()))
		buf = binary.AppendUvarint(buf, uint64(g.MaxPos()))
	} else {
		buf = binary.AppendUvarint(buf, 0)
		buf = binary.AppendUvarint(buf, uint64(g.Size()))
		for _, b := range g.bounds {
			buf = binary.AppendUvarint(buf, uint64(b))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(h.NonZero()))
	prev := -1
	h.EachNonZero(func(i, j int, c float64) {
		idx := i*g.Size() + j
		buf = binary.AppendUvarint(buf, uint64(idx-prev))
		prev = idx
		if integral {
			buf = binary.AppendUvarint(buf, uint64(c))
		} else {
			var fb [8]byte
			binary.BigEndian.PutUint64(fb[:], math.Float64bits(c))
			buf = append(buf, fb[:]...)
		}
	})
	return buf, nil
}

// UnmarshalPosition decodes a histogram encoded by MarshalBinary.
func UnmarshalPosition(data []byte) (*Position, error) {
	r := &byteReader{data: data}
	magic, err := r.byte()
	if err != nil || magic != posMagic {
		return nil, fmt.Errorf("histogram: bad magic")
	}
	flag, err := r.byte()
	if err != nil {
		return nil, err
	}
	integral := flag == flagIntegral
	first, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	var grid Grid
	if first != 0 {
		if err := checkDecodedGridSize(first); err != nil {
			return nil, err
		}
		maxPos, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		grid, err = NewUniformGrid(int(first), int(maxPos))
		if err != nil {
			return nil, err
		}
	} else {
		size, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if err := checkDecodedGridSize(size); err != nil {
			return nil, err
		}
		bounds := make([]int, size+1)
		for i := range bounds {
			b, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			bounds[i] = int(b)
			if i > 0 && bounds[i] <= bounds[i-1] {
				return nil, fmt.Errorf("histogram: non-increasing bounds")
			}
		}
		grid = Grid{bounds: bounds}
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	g := grid.Size()
	if n > uint64(g*g) {
		return nil, fmt.Errorf("histogram: cell count %d exceeds grid %dx%d", n, g, g)
	}
	h := NewPosition(grid)
	prev := -1
	for k := uint64(0); k < n; k++ {
		d, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if d == 0 {
			// Deltas are idx-prev with strictly increasing idx; a zero
			// delta would duplicate a cell.
			return nil, fmt.Errorf("histogram: zero cell delta")
		}
		idx := prev + int(d)
		prev = idx
		if idx < 0 || idx >= g*g {
			return nil, fmt.Errorf("histogram: cell index %d out of range", idx)
		}
		if idx%g < idx/g {
			// start bucket > end bucket is impossible for any node
			// (start < end); the encoder never emits such cells.
			return nil, fmt.Errorf("histogram: cell (%d,%d) below the diagonal", idx/g, idx%g)
		}
		var c float64
		if integral {
			u, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			c = float64(u)
		} else {
			fb, err := r.bytes(8)
			if err != nil {
				return nil, err
			}
			c = math.Float64frombits(binary.BigEndian.Uint64(fb))
		}
		h.Set(idx/g, idx%g, c)
	}
	return h, nil
}

// MarshalBinary encodes the coverage histogram with full fidelity:
// every stored entry with its float64 fraction. This is the persistence
// format; StorageBytes (below) reports the paper's theoretical-minimum
// metric instead, which counts only partial cells.
//
// Layout: magic 'C', grid (as in Position), uvarint entry count, then
// per entry: uvarint covered-cell key, uvarint ancestor-cell key,
// 8-byte big-endian float fraction.
func (c *Coverage) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = append(buf, cvgMagic)
	buf = appendGrid(buf, c.grid)
	buf = binary.AppendUvarint(buf, uint64(c.Entries()))
	g := c.grid.Size()
	c.EachFrac(func(i, j, m, n int, f float64) {
		buf = binary.AppendUvarint(buf, uint64(i*g+j))
		buf = binary.AppendUvarint(buf, uint64(m*g+n))
		var fb [8]byte
		binary.BigEndian.PutUint64(fb[:], math.Float64bits(f))
		buf = append(buf, fb[:]...)
	})
	return buf, nil
}

const cvgMagic = 'C'

// UnmarshalCoverage decodes a coverage histogram encoded by
// Coverage.MarshalBinary.
func UnmarshalCoverage(data []byte) (*Coverage, error) {
	r := &byteReader{data: data}
	magic, err := r.byte()
	if err != nil || magic != cvgMagic {
		return nil, fmt.Errorf("histogram: bad coverage magic")
	}
	grid, err := readGrid(r)
	if err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	g := grid.Size()
	if n > uint64(g)*uint64(g)*uint64(g)*uint64(g) {
		return nil, fmt.Errorf("histogram: coverage entry count %d too large", n)
	}
	c := NewCoverage(grid)
	for k := uint64(0); k < n; k++ {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		a, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if v >= uint64(g*g) || a >= uint64(g*g) {
			return nil, fmt.Errorf("histogram: coverage cell key out of range")
		}
		fb, err := r.bytes(8)
		if err != nil {
			return nil, err
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(fb))
		if math.IsNaN(f) || f < 0 {
			return nil, fmt.Errorf("histogram: bad coverage fraction %v", f)
		}
		c.SetFrac(int(v)/g, int(v)%g, int(a)/g, int(a)%g, f)
	}
	return c, nil
}

// appendGrid encodes a grid: uvarint size + maxPos for uniform grids, a
// zero marker followed by explicit bounds otherwise.
func appendGrid(buf []byte, g Grid) []byte {
	if g.isUniform() {
		buf = binary.AppendUvarint(buf, uint64(g.Size()))
		buf = binary.AppendUvarint(buf, uint64(g.MaxPos()))
		return buf
	}
	buf = binary.AppendUvarint(buf, 0)
	buf = binary.AppendUvarint(buf, uint64(g.Size()))
	for _, b := range g.bounds {
		buf = binary.AppendUvarint(buf, uint64(b))
	}
	return buf
}

// readGrid decodes a grid written by appendGrid.
func readGrid(r *byteReader) (Grid, error) {
	first, err := r.uvarint()
	if err != nil {
		return Grid{}, err
	}
	if first != 0 {
		if err := checkDecodedGridSize(first); err != nil {
			return Grid{}, err
		}
		maxPos, err := r.uvarint()
		if err != nil {
			return Grid{}, err
		}
		return NewUniformGrid(int(first), int(maxPos))
	}
	size, err := r.uvarint()
	if err != nil {
		return Grid{}, err
	}
	if err := checkDecodedGridSize(size); err != nil {
		return Grid{}, err
	}
	bounds := make([]int, size+1)
	for i := range bounds {
		b, err := r.uvarint()
		if err != nil {
			return Grid{}, err
		}
		bounds[i] = int(b)
		if i > 0 && bounds[i] <= bounds[i-1] {
			return Grid{}, fmt.Errorf("histogram: non-increasing bounds")
		}
	}
	return Grid{bounds: bounds}, nil
}

// StorageBytes reports the size of the compact encoding — the quantity
// plotted on the Y axis of the paper's Fig 11 and Fig 12 storage curves.
func (h *Position) StorageBytes() int {
	b, err := h.MarshalBinary()
	if err != nil {
		return 0
	}
	return len(b)
}

// StorageBytes reports the encoding size of the coverage histogram's
// partial cells: per partial cell pair, two delta-encoded linear cell
// indices plus a 2-byte fixed-point fraction. Cells with coverage 0 or 1
// need no storage (Theorem 2); they are reconstructible from the
// position histogram.
func (c *Coverage) StorageBytes() int {
	const eps = 1e-12
	g := c.grid.Size()
	buf := make([]byte, 0, 64)
	c.EachFrac(func(i, j, m, n int, f float64) {
		if f <= eps || f >= 1-eps {
			return
		}
		buf = binary.AppendUvarint(buf, uint64(i*g+j))
		buf = binary.AppendUvarint(buf, uint64(m*g+n))
		buf = append(buf, 0, 0) // 16-bit fixed-point fraction
	})
	return len(buf)
}

type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("histogram: truncated encoding")
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if r.off+n > len(r.data) {
		return nil, fmt.Errorf("histogram: truncated encoding")
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("histogram: bad uvarint")
	}
	r.off += n
	return v, nil
}
