package histogram

import "sort"

// FlatCoverage is the immutable CSR-style flattened form of a Coverage
// histogram: the stored (covered cell, ancestor cell, fraction) entries
// in sorted parallel slices, grouped by covered cell. It is the
// representation the estimation inner loops iterate — contiguous
// slices instead of nested maps — so a join walks coverage entries with
// zero pointer chasing and zero map-iteration overhead, and point
// lookups are binary searches instead of two map probes.
//
// Layout (classic compressed-sparse-row):
//
//	vCell[r]                 the r-th covered cell, ascending
//	rowStart[r]..rowStart[r+1]   the r-th row's slice of aCell/frac
//	aCell[k], frac[k]        ancestor cell and fraction, aCell ascending
//	                         within each row
//	rowSum[r]                Σ frac over the row — CoveredFrac(vCell[r])
//
// Cell keys pack (i, j) as i<<16|j (see cellKey), so ascending key
// order is ascending (i, j) order and the flattened iteration matches
// the historical EachFrac order exactly — estimates are bit-identical
// to the map-backed path.
type FlatCoverage struct {
	grid     Grid
	vCell    []uint32
	rowStart []int32
	aCell    []uint32
	frac     []float64
	rowSum   []float64
}

// Flatten returns the coverage histogram's flattened CSR form, built on
// first use and cached on the (immutable once built) histogram; any
// SetFrac invalidates the cache. Callers must not modify the returned
// structure.
func (c *Coverage) Flatten() *FlatCoverage {
	if f := c.flat.Load(); f != nil {
		return f
	}
	n := c.Entries()
	f := &FlatCoverage{
		grid:  c.grid,
		aCell: make([]uint32, 0, n),
		frac:  make([]float64, 0, n),
	}
	// Collect and sort the covered cells, then each row's ancestors.
	vs := make([]cellKey, 0, len(c.frac))
	for v := range c.frac {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(x, y int) bool { return vs[x] < vs[y] })
	f.vCell = make([]uint32, len(vs))
	f.rowStart = make([]int32, len(vs)+1)
	f.rowSum = make([]float64, len(vs))
	var row []uint32
	for r, v := range vs {
		f.vCell[r] = uint32(v)
		byA := c.frac[v]
		row = row[:0]
		for a := range byA {
			row = append(row, uint32(a))
		}
		sort.Slice(row, func(x, y int) bool { return row[x] < row[y] })
		var sum float64
		for _, a := range row {
			fr := byA[cellKey(a)]
			f.aCell = append(f.aCell, a)
			f.frac = append(f.frac, fr)
			sum += fr
		}
		f.rowSum[r] = sum
		f.rowStart[r+1] = int32(len(f.aCell))
	}
	c.flat.Store(f)
	return f
}

// Grid returns the flattened histogram's grid.
func (f *FlatCoverage) Grid() Grid { return f.grid }

// Len returns the number of stored entries.
func (f *FlatCoverage) Len() int { return len(f.aCell) }

// Rows returns the number of distinct covered cells.
func (f *FlatCoverage) Rows() int { return len(f.vCell) }

// searchRow finds the row index of covered cell v, or -1.
func (f *FlatCoverage) searchRow(v uint32) int {
	lo, hi := 0, len(f.vCell)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.vCell[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(f.vCell) && f.vCell[lo] == v {
		return lo
	}
	return -1
}

// Frac returns Cvg[i][j][m][n] by binary search: first the covered
// cell's row, then the ancestor cell within the row.
func (f *FlatCoverage) Frac(i, j, m, n int) float64 {
	r := f.searchRow(uint32(key(i, j)))
	if r < 0 {
		return 0
	}
	lo, hi := int(f.rowStart[r]), int(f.rowStart[r+1])
	a := uint32(key(m, n))
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.aCell[mid] < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(f.rowStart[r+1]) && f.aCell[lo] == a {
		return f.frac[lo]
	}
	return 0
}

// CoveredFrac returns the total fraction of cell (i, j) covered by any
// ancestor cell — the precomputed row sum, O(log rows).
func (f *FlatCoverage) CoveredFrac(i, j int) float64 {
	r := f.searchRow(uint32(key(i, j)))
	if r < 0 {
		return 0
	}
	return f.rowSum[r]
}

// Each calls fn for every stored entry in ascending (i, j, m, n)
// order — the deterministic iteration the estimation formulas rely on.
// Inner loops that need peak throughput should iterate the Entries
// accessors directly instead of paying a callback per entry.
func (f *FlatCoverage) Each(fn func(i, j, m, n int, fr float64)) {
	for r := range f.vCell {
		i, j := cellKey(f.vCell[r]).split()
		for k := f.rowStart[r]; k < f.rowStart[r+1]; k++ {
			m, n := cellKey(f.aCell[k]).split()
			fn(i, j, m, n, f.frac[k])
		}
	}
}

// Entries exposes the raw parallel slices for zero-overhead iteration:
// for each row r, vCell[r] is the covered cell and the half-open range
// rowStart[r]..rowStart[r+1] indexes aCell/frac. Callers must treat
// every slice as read-only.
func (f *FlatCoverage) Entries() (vCell []uint32, rowStart []int32, aCell []uint32, frac []float64) {
	return f.vCell, f.rowStart, f.aCell, f.frac
}

// SplitCell unpacks a packed cell key from the Entries slices into its
// (i, j) grid coordinates.
func SplitCell(k uint32) (int, int) { return cellKey(k).split() }
