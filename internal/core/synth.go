package core

import (
	"fmt"

	"xmlest/internal/histogram"
)

// Synthesized predicates (Section 3.4): when a query predicate has no
// precomputed histogram but is a boolean combination of basic
// predicates, its position histogram is *estimated* from the component
// histograms, assuming per-cell independence normalized by the TRUE
// histogram. The synthesized predicate then participates in estimation
// exactly like a registered one (it is treated as potentially
// overlapping: synthesis cannot establish the no-overlap property).

// SynthOp selects the boolean combination.
type SynthOp int

const (
	// SynthAnd estimates the conjunction of the parts.
	SynthAnd SynthOp = iota
	// SynthOr estimates the disjunction of the parts.
	SynthOr
	// SynthNot estimates the negation of a single part.
	SynthNot
	// SynthSum adds the parts' histograms exactly — correct for
	// mutually exclusive parts, which is how the paper builds decade
	// predicates from per-year primitives.
	SynthSum
)

func (op SynthOp) String() string {
	switch op {
	case SynthAnd:
		return "AND"
	case SynthOr:
		return "OR"
	case SynthNot:
		return "NOT"
	case SynthSum:
		return "SUM"
	}
	return fmt.Sprintf("SynthOp(%d)", int(op))
}

// Synthesize registers a new predicate name whose histogram is
// estimated from already-registered parts. The name becomes available
// to every estimation entry point (patterns reference it with the
// {name} syntax). Synthesis requires the TRUE histogram, which
// NewEstimator always builds.
//
// Synthesize writes the estimator's summary maps and must not be
// called concurrently with estimation; register synthesized predicates
// before sharing the estimator across goroutines.
func (e *Estimator) Synthesize(name string, op SynthOp, parts ...string) error {
	if _, exists := e.hists[name]; exists {
		return fmt.Errorf("core: predicate %q already registered", name)
	}
	if len(parts) == 0 {
		return fmt.Errorf("core: Synthesize(%s) needs at least one part", name)
	}
	if op == SynthNot && len(parts) != 1 {
		return fmt.Errorf("core: SynthNot takes exactly one part, got %d", len(parts))
	}
	hists := make([]*histogram.Position, len(parts))
	for i, p := range parts {
		h, err := e.Histogram(p)
		if err != nil {
			return err
		}
		hists[i] = h
	}
	var synth *histogram.Position
	var err error
	switch op {
	case SynthAnd:
		synth, err = histogram.SynthesizeAnd(e.trueHist, hists...)
	case SynthOr:
		synth, err = histogram.SynthesizeOr(e.trueHist, hists...)
	case SynthNot:
		synth, err = histogram.SynthesizeNot(e.trueHist, hists[0])
	case SynthSum:
		synth, err = histogram.Sum(hists...)
	default:
		return fmt.Errorf("core: unknown synthesis op %v", op)
	}
	if err != nil {
		return err
	}
	e.hists[name] = synth
	// A synthesized predicate may overlap; without data access the
	// no-overlap property cannot be established, so the primitive
	// algorithm applies (the conservative choice).
	e.overlap[name] = true
	e.names = append(e.names, name)
	e.storageBytes.Store(0) // the summary grew; recompute on demand
	return nil
}
