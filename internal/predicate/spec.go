package predicate

import "xmlest/internal/xmltree"

// Spec is a reproducible catalog recipe: which predicates to
// materialize over a tree, independent of any particular tree. The
// shard subsystem applies one Spec to every shard's document subset, so
// all shards answer the same predicate vocabulary; the paper's single
// mega-tree catalog is the one-shard special case.
//
// A Spec is a value; Clone before mutating a shared one.
type Spec struct {
	// AllTags registers a Tag predicate per distinct element tag of the
	// target tree, plus the TRUE predicate (mirroring
	// Database.AddAllTagPredicates). Tag sets may differ between trees;
	// shards lacking a tag simply have no histogram for it and
	// contribute zero to cross-shard estimates.
	AllTags bool

	// Preds are additional predicates registered in order after the tag
	// predicates. Predicates are tree-independent values, so the same
	// predicate can be materialized over any tree.
	Preds []Predicate
}

// SpecFromCatalog reconstructs the recipe a catalog was built from: its
// registered predicates in registration order. AllTags is left false —
// the explicit predicate list already covers whatever tags the source
// catalog had, and re-deriving tags from a different tree would change
// the vocabulary.
func SpecFromCatalog(c *Catalog) Spec {
	s := Spec{Preds: make([]Predicate, 0, c.Len())}
	for _, name := range c.Names() {
		s.Preds = append(s.Preds, c.MustGet(name).Pred)
	}
	return s
}

// Clone returns a deep copy of the spec (the predicate values
// themselves are immutable and shared).
func (s Spec) Clone() Spec {
	out := Spec{AllTags: s.AllTags}
	out.Preds = append(out.Preds, s.Preds...)
	return out
}

// Add appends predicates to the recipe and returns the updated spec.
func (s Spec) Add(preds ...Predicate) Spec {
	out := s.Clone()
	out.Preds = append(out.Preds, preds...)
	return out
}

// Build materializes the spec over a tree: tag predicates (and TRUE)
// first when AllTags is set, then the explicit predicates in one shared
// scan (Catalog.AddBatch). The result is identical to issuing the same
// registrations by hand on a fresh catalog.
func (s Spec) Build(t *xmltree.Tree) *Catalog {
	c := NewCatalog(t)
	if s.AllTags {
		c.AddAllTags()
		c.Add(True{})
	}
	if len(s.Preds) > 0 {
		c.AddBatch(s.Preds)
	}
	return c
}
