// Package accuracy profiles estimation error over query workloads. The
// paper evaluates a handful of hand-picked queries; a system adopting
// the estimator needs the error *distribution* over many queries. This
// package generates workloads (all tag pairs, random twigs), evaluates
// estimate-vs-exact for each, and summarizes with the standard
// selectivity-estimation metrics: mean relative error and q-error
// quantiles (q-error = max(est/real, real/est), the factor by which a
// plan cost can be off).
package accuracy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"xmlest/internal/core"
	"xmlest/internal/match"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// QueryResult is one workload query's outcome.
type QueryResult struct {
	Pattern string  `json:"pattern"`
	Real    float64 `json:"real"`
	Est     float64 `json:"est"`
	// QError is max(est/real, real/est), with add-one smoothing so
	// empty results remain comparable.
	QError float64 `json:"qerror"`
}

// Report summarizes a workload evaluation.
type Report struct {
	Queries int `json:"queries"`
	// EmptyReal counts queries whose exact answer is zero.
	EmptyReal int `json:"empty_real"`
	// MeanRelErr is the mean of |est-real| / max(real, 1).
	MeanRelErr float64 `json:"mean_rel_err"`
	// Q50, Q90, QMax are q-error quantiles.
	Q50  float64 `json:"q50"`
	Q90  float64 `json:"q90"`
	QMax float64 `json:"qmax"`
	// Under counts underestimates (est < real).
	Under int `json:"under"`
}

// Evaluate runs every pattern through the estimator and the exact
// counter.
func Evaluate(cat *predicate.Catalog, est *core.Estimator, patterns []string) ([]QueryResult, Report, error) {
	resolve := func(name string) ([]xmltree.NodeID, error) {
		e, err := cat.Get(name)
		if err != nil {
			return nil, err
		}
		return e.Nodes, nil
	}
	var results []QueryResult
	var report Report
	var relSum float64
	var qerrs []float64
	for _, src := range patterns {
		p, err := pattern.Parse(src)
		if err != nil {
			return nil, Report{}, fmt.Errorf("accuracy: %w", err)
		}
		real, err := match.CountTwig(cat.Tree, p, resolve)
		if err != nil {
			return nil, Report{}, err
		}
		res, err := est.EstimateTwig(p)
		if err != nil {
			return nil, Report{}, err
		}
		q := QError(res.Estimate, real)
		results = append(results, QueryResult{Pattern: src, Real: real, Est: res.Estimate, QError: q})
		report.Queries++
		if real == 0 {
			report.EmptyReal++
		}
		if res.Estimate < real {
			report.Under++
		}
		relSum += math.Abs(res.Estimate-real) / math.Max(real, 1)
		qerrs = append(qerrs, q)
	}
	if report.Queries > 0 {
		report.MeanRelErr = relSum / float64(report.Queries)
		sort.Float64s(qerrs)
		report.Q50 = quantile(qerrs, 0.50)
		report.Q90 = quantile(qerrs, 0.90)
		report.QMax = qerrs[len(qerrs)-1]
	}
	return results, report, nil
}

// QError computes max(est/real, real/est) with add-one smoothing, so
// empty estimates and empty answers stay finite and comparable. It is
// always >= 1; 1 means a perfect estimate. This is the single q-error
// definition shared by the offline evaluator, the online shadow
// monitor, and the examples.
func QError(est, real float64) float64 {
	a, b := est+1, real+1
	if a < b {
		a, b = b, a
	}
	return a / b
}

// quantile returns the q-th quantile of a sorted sample, interpolating
// linearly between the two straddling order statistics (a single-value
// sample yields that value for every q).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + (sorted[lo+1]-sorted[lo])*frac
}

// PairWorkload returns every ordered pair of distinct element-tag
// predicates as a //a//b pattern (the exhaustive pairwise workload).
// Tags whose name cannot appear in the pattern syntax are skipped.
func PairWorkload(cat *predicate.Catalog) []string {
	tags := tagNames(cat)
	var out []string
	for _, a := range tags {
		for _, d := range tags {
			if a == d {
				continue
			}
			out = append(out, "//"+a+"//"+d)
		}
	}
	return out
}

// RandomTwigWorkload generates n random twigs of 2-4 nodes over the
// catalog's element tags, using a deterministic seed. Twigs may have
// zero matches; that is part of the profile.
func RandomTwigWorkload(cat *predicate.Catalog, n int, seed int64) []string {
	tags := tagNames(cat)
	if len(tags) == 0 {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	pick := func() string { return tags[r.Intn(len(tags))] }
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0: // chain of 2
			out = append(out, "//"+pick()+"//"+pick())
		case 1: // chain of 3
			out = append(out, "//"+pick()+"//"+pick()+"//"+pick())
		case 2: // branch
			out = append(out, "//"+pick()+"[.//"+pick()+"]//"+pick())
		default: // branch of 4
			out = append(out, "//"+pick()+"[.//"+pick()+"][.//"+pick()+"]//"+pick())
		}
	}
	return out
}

// tagNames extracts plain element-tag predicate names usable in the
// pattern syntax.
func tagNames(cat *predicate.Catalog) []string {
	var tags []string
	for _, name := range cat.Names() {
		if len(name) > 4 && name[:4] == "tag=" && patternSafe(name[4:]) {
			tags = append(tags, name[4:])
		}
	}
	return tags
}

func patternSafe(tag string) bool {
	if tag == "" || tag[0] == '@' {
		return false
	}
	for i := 0; i < len(tag); i++ {
		c := tag[i]
		ok := c == '_' || c == '-' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
