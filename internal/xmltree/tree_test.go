package xmltree

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func readerSlice(docs ...string) []io.Reader {
	rs := make([]io.Reader, len(docs))
	for i, d := range docs {
		rs[i] = strings.NewReader(d)
	}
	return rs
}

func TestBuilderSimple(t *testing.T) {
	b := NewBuilder()
	b.Begin("a")
	b.Begin("b")
	b.Text("hello")
	b.End()
	b.Element("c", "world")
	b.End()
	tr := b.Tree()

	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := tr.NumNodes(); got != 3 {
		t.Fatalf("NumNodes = %d, want 3", got)
	}
	a := tr.NodesWithTag("a")
	if len(a) != 1 {
		t.Fatalf("NodesWithTag(a) = %v, want one node", a)
	}
	bs := tr.NodesWithTag("b")
	cs := tr.NodesWithTag("c")
	if len(bs) != 1 || len(cs) != 1 {
		t.Fatalf("tag index wrong: b=%v c=%v", bs, cs)
	}
	if tr.Node(bs[0]).Text != "hello" || tr.Node(cs[0]).Text != "world" {
		t.Errorf("text content wrong: %q %q", tr.Node(bs[0]).Text, tr.Node(cs[0]).Text)
	}
	if !tr.IsAncestor(a[0], bs[0]) || !tr.IsAncestor(a[0], cs[0]) {
		t.Errorf("a should be ancestor of b and c")
	}
	if tr.IsAncestor(bs[0], cs[0]) || tr.IsAncestor(cs[0], bs[0]) {
		t.Errorf("siblings must not be ancestors of each other")
	}
	if !tr.IsAncestor(tr.Root(), a[0]) {
		t.Errorf("dummy root should be ancestor of document root")
	}
}

func TestBuilderIntervalNesting(t *testing.T) {
	b := NewBuilder()
	b.Begin("r")
	b.Begin("x")
	b.Begin("y")
	b.End()
	b.End()
	b.Begin("z")
	b.End()
	b.End()
	tr := b.Tree()

	r := tr.NodesWithTag("r")[0]
	x := tr.NodesWithTag("x")[0]
	y := tr.NodesWithTag("y")[0]
	z := tr.NodesWithTag("z")[0]
	nr, nx, ny, nz := tr.Node(r), tr.Node(x), tr.Node(y), tr.Node(z)

	if !(nr.Start < nx.Start && nx.Start < ny.Start && ny.End < nx.End && nx.End < nr.End) {
		t.Errorf("nesting violated: r=[%d,%d] x=[%d,%d] y=[%d,%d]",
			nr.Start, nr.End, nx.Start, nx.End, ny.Start, ny.End)
	}
	if !(nx.End < nz.Start) {
		t.Errorf("sibling intervals must be disjoint: x=[%d,%d] z=[%d,%d]",
			nx.Start, nx.End, nz.Start, nz.End)
	}
	if nz.Depth != 2 || ny.Depth != 3 {
		t.Errorf("depths wrong: z=%d (want 2) y=%d (want 3)", nz.Depth, ny.Depth)
	}
}

func TestBuilderEndPanicsAtTopLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("End at top level should panic")
		}
	}()
	NewBuilder().End()
}

func TestBuilderAutoClosesOnTree(t *testing.T) {
	b := NewBuilder()
	b.Begin("a")
	b.Begin("b")
	tr := b.Tree() // both left open
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after auto-close: %v", err)
	}
	if tr.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", tr.NumNodes())
	}
}

func TestParseSimpleDocument(t *testing.T) {
	tr, err := ParseString(`<doc><a id="1">x<b>y</b>z</a><a>w</a></doc>`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(tr.NodesWithTag("a")); got != 2 {
		t.Errorf("a count = %d, want 2", got)
	}
	if got := len(tr.NodesWithTag("@id")); got != 1 {
		t.Errorf("@id count = %d, want 1", got)
	}
	a0 := tr.Node(tr.NodesWithTag("a")[0])
	if !strings.Contains(a0.Text, "x") || !strings.Contains(a0.Text, "z") {
		t.Errorf("mixed content text = %q, want to contain x and z", a0.Text)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		`<a><b></a></b>`,
		`<a>`,
		`</a>`,
		`<a><b></b>`,
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): want error, got nil", c)
		}
	}
}

func TestParseLenientRecovers(t *testing.T) {
	opts := ParseOptions{KeepAttributes: true, Strict: false}
	tr, err := ParseCollection(readerSlice(`<a><b>text`), opts)
	if err != nil {
		t.Fatalf("lenient parse: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", tr.NumNodes())
	}
}

func TestParseCollectionMergesDocuments(t *testing.T) {
	tr, err := ParseCollection(
		readerSlice(`<a><b/></a>`, `<a><c/></a>`),
		DefaultParseOptions,
	)
	if err != nil {
		t.Fatalf("ParseCollection: %v", err)
	}
	as := tr.NodesWithTag("a")
	if len(as) != 2 {
		t.Fatalf("a count = %d, want 2", len(as))
	}
	// Documents must be siblings under the dummy root with disjoint intervals.
	if tr.Node(as[0]).Parent != tr.Root() || tr.Node(as[1]).Parent != tr.Root() {
		t.Errorf("document roots must hang off the dummy root")
	}
	if tr.Node(as[0]).End >= tr.Node(as[1]).Start {
		t.Errorf("documents must occupy disjoint intervals")
	}
}

func TestFig1Document(t *testing.T) {
	tr := Fig1Document()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	counts := map[string]int{
		"department": 1, "faculty": 3, "staff": 1, "lecturer": 1,
		"research_scientist": 1, "TA": 5, "RA": 10, "name": 6, "secretary": 3,
	}
	for tag, want := range counts {
		if got := len(tr.NodesWithTag(tag)); got != want {
			t.Errorf("%s count = %d, want %d", tag, got, want)
		}
	}
	// Real answer size of faculty//TA is 2 (paper, Section 2).
	pairs := 0
	for _, f := range tr.NodesWithTag("faculty") {
		for _, ta := range tr.NodesWithTag("TA") {
			if tr.IsAncestor(f, ta) {
				pairs++
			}
		}
	}
	if pairs != 2 {
		t.Errorf("faculty//TA real answer size = %d, want 2", pairs)
	}
}

func TestDescendantsContiguous(t *testing.T) {
	tr := Fig1Document()
	dept := tr.NodesWithTag("department")[0]
	desc := tr.Descendants(dept)
	if len(desc) != tr.NumNodes()-1 {
		t.Fatalf("department descendants = %d, want %d", len(desc), tr.NumNodes()-1)
	}
	for _, d := range desc {
		if !tr.IsAncestor(dept, d) {
			t.Errorf("Descendants returned non-descendant %d", d)
		}
	}
}

func TestChildrenOrder(t *testing.T) {
	tr := Fig1Document()
	dept := tr.NodesWithTag("department")[0]
	kids := tr.Children(dept)
	wantTags := []string{"faculty", "staff", "faculty", "lecturer", "faculty", "research_scientist"}
	if len(kids) != len(wantTags) {
		t.Fatalf("children = %d, want %d", len(kids), len(wantTags))
	}
	for i, k := range kids {
		if tr.Node(k).Tag != wantTags[i] {
			t.Errorf("child %d tag = %s, want %s", i, tr.Node(k).Tag, wantTags[i])
		}
	}
}

// randomTree builds a random tree with n nodes using the given source,
// exercising arbitrary shapes for property tests.
func randomTree(r *rand.Rand, n int) *Tree {
	b := NewBuilder()
	tags := []string{"a", "b", "c", "d"}
	open := 0
	for i := 0; i < n; i++ {
		switch {
		case open == 0:
			b.Begin(tags[r.Intn(len(tags))])
			open++
		case r.Intn(3) == 0:
			b.End()
			open--
			i-- // End does not consume a node budget
		default:
			b.Begin(tags[r.Intn(len(tags))])
			open++
		}
	}
	return b.Tree()
}

// TestPropertyIntervalInvariants checks, on random trees, that interval
// containment exactly coincides with tree ancestorship, and that any two
// intervals either nest or are disjoint (the precondition for Lemma 1).
func TestPropertyIntervalInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 2+r.Intn(60))
		if err := tr.Validate(); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		for i := 0; i < len(tr.Nodes); i++ {
			for j := 0; j < len(tr.Nodes); j++ {
				if i == j {
					continue
				}
				a, d := NodeID(i), NodeID(j)
				byInterval := tr.IsAncestor(a, d)
				byWalk := false
				for p := tr.Nodes[d].Parent; p != InvalidNode; p = tr.Nodes[p].Parent {
					if p == a {
						byWalk = true
						break
					}
				}
				if byInterval != byWalk {
					t.Logf("node %d anc of %d: interval=%v walk=%v", i, j, byInterval, byWalk)
					return false
				}
				ni, nj := tr.Nodes[i], tr.Nodes[j]
				nested := (ni.Start < nj.Start && nj.End < ni.End) || (nj.Start < ni.Start && ni.End < nj.End)
				disjoint := ni.End < nj.Start || nj.End < ni.Start
				if !nested && !disjoint {
					t.Logf("intervals partially overlap: [%d,%d] [%d,%d]", ni.Start, ni.End, nj.Start, nj.End)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	tr := Fig1Document()
	s := tr.Stats()
	if s.Nodes != tr.NumNodes() {
		t.Errorf("Stats.Nodes = %d, want %d", s.Nodes, tr.NumNodes())
	}
	if s.MaxDepth != 3 {
		t.Errorf("MaxDepth = %d, want 3 (department/person/leaf)", s.MaxDepth)
	}
	if s.DistinctTag != 9 {
		t.Errorf("DistinctTag = %d, want 9", s.DistinctTag)
	}
}
