package stream

import (
	"xmlest/internal/core"
	"xmlest/internal/shard"
)

// BuildEstimator runs the two-pass streaming build and wraps the
// resulting histograms into a catalog-less core.Estimator — the form a
// shard store can serve. No-overlap predicates are detected during the
// pass (Result.MayOverlap) but coverage histograms are not built, so
// estimation over a streamed summary uses the primitive algorithm; the
// document tree is never materialized.
func BuildEstimator(src Source, gridSize int, preds []EventPredicate) (*core.Estimator, *Result, error) {
	res, err := Build(src, gridSize, preds)
	if err != nil {
		return nil, nil, err
	}
	trueHist := res.Hists["TRUE"]
	est, err := core.NewEstimatorFromHistograms(trueHist, res.Hists, res.MayOverlap)
	if err != nil {
		return nil, nil, err
	}
	return est, res, nil
}

// BuildAllTagsEstimator is BuildEstimator with tag discovery: pass one
// collects the distinct element tags, pass two builds one histogram
// per tag plus TRUE. It is the streaming build for stores whose
// predicate vocabulary is Spec{AllTags: true} — the only vocabulary a
// byte stream can serve, since tree-based predicates need the tree.
func BuildAllTagsEstimator(src Source, gridSize int) (*core.Estimator, *Result, error) {
	res, err := BuildAllTags(src, gridSize)
	if err != nil {
		return nil, nil, err
	}
	est, err := core.NewEstimatorFromHistograms(res.Hists["TRUE"], res.Hists, res.MayOverlap)
	if err != nil {
		return nil, nil, err
	}
	return est, res, nil
}

// AppendShard streams one XML source into a summary-only shard of the
// store: the ingest path for documents that exceed memory, landing with
// cost proportional to the new document only, like every other append.
func AppendShard(st *shard.Store, src Source, gridSize int, preds []EventPredicate) (*shard.Shard, *Result, error) {
	est, res, err := BuildEstimator(src, gridSize, preds)
	if err != nil {
		return nil, nil, err
	}
	sh, err := st.AppendSummary(est, 1, res.Nodes)
	if err != nil {
		return nil, nil, err
	}
	return sh, res, nil
}
