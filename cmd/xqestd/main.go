// Command xqestd is the estimation daemon: it loads an XML corpus (or
// a saved summary), builds position-histogram summaries, and serves
// answer-size estimates over HTTP while accepting document ingest and
// compacting shards in the background.
//
//	xqestd -dataset dblp -scale 0.1 -addr :8080
//	xqestd -data a.xml,b.xml -autocompact 30s -save snapshot.xqs
//	xqestd -load snapshot.xqs -addr :8080          # read-only serving
//
// Durable serving: with -data-dir the daemon becomes a database —
// every /append is written to a write-ahead log (fsynced per -fsync)
// before it is acknowledged, checkpoints persist shard summaries and
// truncate the log, and a restart (even after kill -9) recovers every
// acknowledged batch with bit-identical estimates:
//
//	xqestd -dataset dblp -data-dir /var/lib/xqest -fsync always -checkpoint 1m
//	xqestd -data-dir /var/lib/xqest                # recover and keep serving
//
// Replicated serving: a follower streams the leader's WAL over HTTP
// (GET /wal/stream), applies every record into its own data directory
// before serving it, and answers estimates bit-identically to the
// leader at the same version. Start it with the same bootstrap flags
// as the leader so both share the version-1 base state:
//
//	xqestd -dataset dblp -data-dir /var/lib/xq-leader -addr :8080
//	xqestd -dataset dblp -data-dir /var/lib/xq-f1 -follow http://leader:8080 -addr :8081
//
// Endpoints: POST /estimate /append /compact, GET /shards /stats
// /healthz — see internal/server. SIGINT/SIGTERM shut down
// gracefully: in-flight requests drain and, with -save, the summary is
// persisted for the next boot; with -data-dir, shutdown is a final
// checkpoint.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"xmlest"
	"xmlest/internal/cliutil"
	"xmlest/internal/server"
	"xmlest/internal/version"
)

// newLogger builds the daemon's structured logger from the -log-level
// and -log-format flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("xqestd: unknown -log-level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("xqestd: unknown -log-format %q (text, json)", format)
	}
}

func main() {
	addr := flag.String("addr", server.DefaultAddr, "listen address")
	pprofAddr := flag.String("pprof-addr", "", "opt-in net/http/pprof debug listener (e.g. 127.0.0.1:6060); keep it off public interfaces")
	data := flag.String("data", "", "comma-separated XML files (one shard)")
	dataset := flag.String("dataset", "", "built-in dataset: dblp, hier, xmark, shakespeare")
	scale := flag.Float64("scale", 0.1, "built-in dataset scale")
	seed := flag.Int64("seed", 2002, "built-in dataset seed")
	grid := flag.Int("grid", 10, "histogram grid size g (gxg buckets)")
	workers := flag.Int("build-workers", 0, "summary build workers (0 = GOMAXPROCS)")
	estWorkers := flag.Int("estimate-workers", 0, "per-shard estimate fan-out workers for unmerged sets (0 = GOMAXPROCS)")
	noMerged := flag.Bool("no-merged", false, "disable merged-summary serving; always fan out across shards (benchmark/debug knob)")
	load := flag.String("load", "", "serve read-only from a saved summary (XQS1/XQS2) instead of data")
	save := flag.String("save", "", "persist the summary snapshot here on shutdown")
	autocompact := flag.Duration("autocompact", 0, "background compaction interval (0 disables)")
	maxShards := flag.Int("max-shards", 0, "compaction policy shard-count target (0 = default)")
	maxAppends := flag.Int("max-inflight-appends", 0, "ingest backpressure bound (0 = default)")
	drain := flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown drain budget")
	dataDir := flag.String("data-dir", "", "durable data directory: WAL + checkpoints; appends survive crashes")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always, interval or off")
	fsyncInterval := flag.Duration("fsync-interval", 0, "fsync cadence for -fsync interval (default 100ms)")
	commitDelay := flag.Duration("commit-delay", 0, "group-commit latency budget: wait up to this long for more appends to share one fsync (0 = natural coalescing only)")
	ingestWorkers := flag.Int("ingest-workers", 0, "concurrent parse/summary-build workers on the append pipeline (0 = GOMAXPROCS)")
	checkpoint := flag.Duration("checkpoint", 0, "background checkpoint interval with -data-dir (0 = shutdown only)")
	follow := flag.String("follow", "", "run as a read-only follower replicating the leader at this base URL (requires -data-dir; start with the same -dataset/-data/-grid bootstrap as the leader)")
	staleness := flag.Duration("staleness", 0, "follower staleness budget: leader silence beyond this marks /healthz degraded (0 = default 30s)")
	readTimeout := flag.Duration("read-timeout", 0, "HTTP read timeout: full request including body (0 = default)")
	writeTimeout := flag.Duration("write-timeout", 0, "HTTP write timeout: handler + response (0 = default)")
	idleTimeout := flag.Duration("idle-timeout", 0, "HTTP keep-alive idle connection timeout (0 = default)")
	maxHeaderBytes := flag.Int("max-header-bytes", 0, "HTTP request header size cap (0 = default)")
	fault := flag.String("fault", "", "TESTING ONLY: disk-fault schedule for -data-dir, e.g. 'sync-fail-after=3' or 'fail-op=12,torn' (see internal/fsio)")
	traceSample := flag.Int("trace-sample", 64, "sample 1 in N requests for pipeline stage tracing (0 disables)")
	slowRequest := flag.Duration("slow-request", time.Second, "log requests slower than this threshold (0 disables)")
	shadowSample := flag.Int("shadow-sample", 128, "shadow-execute 1 in N estimates exactly for online accuracy monitoring (0 disables)")
	shadowBudget := flag.Duration("shadow-budget", 0, "wall-clock budget per shadow execution (0 = default 200ms)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	showVersion := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("xqestd " + version.String())
		return
	}

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	if *fault != "" && *dataDir == "" {
		fatal(fmt.Errorf("xqestd: -fault injects storage faults and requires -data-dir"))
	}
	if *follow != "" && *dataDir == "" {
		fatal(fmt.Errorf("xqestd: -follow applies the leader's WAL into a local data directory and requires -data-dir"))
	}
	if *staleness < 0 {
		fatal(fmt.Errorf("xqestd: -staleness must be positive"))
	}

	cfg := server.Config{
		Addr: *addr,
		Options: xmlest.Options{
			GridSize:             *grid,
			BuildWorkers:         *workers,
			EstimateWorkers:      *estWorkers,
			DisableMergedServing: *noMerged,
		},
		MaxInflightAppends:  *maxAppends,
		AutoCompactInterval: *autocompact,
		CheckpointInterval:  *checkpoint,
		CompactionPolicy:    xmlest.CompactionPolicy{MaxShards: *maxShards},
		SnapshotPath:        *save,
		ReadTimeout:         *readTimeout,
		WriteTimeout:        *writeTimeout,
		IdleTimeout:         *idleTimeout,
		MaxHeaderBytes:      *maxHeaderBytes,
		TraceSample:         *traceSample,
		SlowRequest:         *slowRequest,
		ShadowSample:        *shadowSample,
		ShadowBudget:        *shadowBudget,
		FollowURL:           *follow,
		StalenessBudget:     *staleness,
		Logger:              logger,
	}

	var srv *server.Server
	switch {
	case *load != "":
		if *dataDir != "" {
			fatal(fmt.Errorf("xqestd: -load serves read-only; it cannot be combined with -data-dir"))
		}
		var blob []byte
		blob, err = os.ReadFile(*load)
		if err != nil {
			fatal(err)
		}
		var est *xmlest.Estimator
		est, err = xmlest.LoadEstimator(blob)
		if err != nil {
			fatal(err)
		}
		srv, err = server.NewFromEstimator(est, cfg)
	case *dataDir != "":
		if *fault != "" {
			logger.Warn("FAULT INJECTION ACTIVE: storage runs on a fault-injecting filesystem", "fault", *fault)
		}
		var db *xmlest.Database
		db, err = cliutil.OpenDurableDatabase(*dataDir, cfg.Options, cliutil.DurableFlags{
			Fsync:         *fsync,
			FsyncInterval: *fsyncInterval,
			CommitDelay:   *commitDelay,
			IngestWorkers: *ingestWorkers,
			Data:          *data,
			Dataset:       *dataset,
			Scale:         *scale,
			Seed:          *seed,
			FaultSpec:     *fault,
		})
		if err != nil {
			fatal(fmt.Errorf("xqestd: %w", err))
		}
		if rec, ok := db.Recovery(); ok {
			logger.Info("recovered data directory",
				"dir", *dataDir,
				"checkpoint_shards", rec.CheckpointShards,
				"checkpoint_version", rec.CheckpointVersion,
				"replayed_records", rec.ReplayedRecords,
				"replayed_docs", rec.ReplayedDocs,
				"skipped_records", rec.SkippedRecords)
		}
		srv, err = server.New(db, cfg)
	default:
		var db *xmlest.Database
		db, err = cliutil.OpenDatabase(*data, *dataset, *scale, *seed)
		if err != nil {
			fatal(fmt.Errorf("xqestd: %w", err))
		}
		srv, err = server.New(db, cfg)
	}
	if err != nil {
		fatal(err)
	}

	if *pprofAddr != "" {
		// Opt-in profiling listener, deliberately separate from the
		// serving mux so profiles are never exposed on the service
		// address. See README, "Profiling the daemon".
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof debug listener", "addr", "http://"+*pprofAddr+"/debug/pprof/")
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	if err := cliutil.RunUntilSignal(srv, *drain); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
