package core

import (
	"math"
	"math/rand"
	"testing"

	"xmlest/internal/match"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

func fig1Estimator(t *testing.T, gridSize int) (*xmltree.Tree, *predicate.Catalog, *Estimator) {
	t.Helper()
	tr := xmltree.Fig1Document()
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	cat.Add(predicate.True{})
	est, err := NewEstimator(cat, Options{GridSize: gridSize})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	return tr, cat, est
}

// TestRunningExample replays the paper's running example (Sections 2,
// 3.2 and 4.2): the faculty//TA pattern on the Fig 1 document, with
// 2×2 histograms. The paper's narration: naive estimate 15, schema
// upper bound 5, primitive estimate ≈ 0.6, no-overlap estimate ≈ 1.9,
// real answer 2. Exact decimals depend on unstated bucket boundaries,
// so we assert the ordering relations the narration establishes.
func TestRunningExample(t *testing.T) {
	tr, cat, est := fig1Estimator(t, 2)

	real := float64(match.CountPairs(tr, tr.NodesWithTag("faculty"), tr.NodesWithTag("TA")))
	if real != 2 {
		t.Fatalf("real = %v, want 2", real)
	}
	naive := NaiveEstimate(cat.MustGet("tag=faculty").Count(), cat.MustGet("tag=TA").Count())
	if naive != 15 {
		t.Fatalf("naive = %v, want 15", naive)
	}
	bound, ok := SchemaUpperBound(cat.MustGet("tag=faculty").NoOverlap, cat.MustGet("tag=TA").Count())
	if !ok || bound != 5 {
		t.Fatalf("schema upper bound = %v (ok=%v), want 5", bound, ok)
	}

	prim, err := est.EstimatePairPrimitive("tag=faculty", "tag=TA")
	if err != nil {
		t.Fatalf("primitive: %v", err)
	}
	noov, err := est.EstimatePair("tag=faculty", "tag=TA")
	if err != nil {
		t.Fatalf("no-overlap: %v", err)
	}
	if !noov.UsedNoOverlap {
		t.Errorf("faculty is no-overlap; the no-overlap algorithm should be used")
	}
	t.Logf("naive=%v bound=%v primitive=%v no-overlap=%v real=%v",
		naive, bound, prim.Estimate, noov.Estimate, real)

	if prim.Estimate >= naive {
		t.Errorf("primitive %v must improve on naive %v", prim.Estimate, naive)
	}
	if prim.Estimate <= 0 {
		t.Errorf("primitive estimate must be positive, got %v", prim.Estimate)
	}
	if math.Abs(noov.Estimate-real) >= math.Abs(prim.Estimate-real) {
		t.Errorf("no-overlap %v should be at least as close to real %v as primitive %v",
			noov.Estimate, real, prim.Estimate)
	}
	if math.Abs(noov.Estimate-real) > 1 {
		t.Errorf("no-overlap estimate %v should be within 1 of real %v", noov.Estimate, real)
	}
}

// TestAccuracyConvergesWithGrid checks the Fig 11 qualitative claim for
// the primitive (overlap) algorithm: the estimate/real ratio approaches
// 1 as the grid refines.
func TestAccuracyConvergesWithGrid(t *testing.T) {
	// A sizable two-level synthetic document: sections with items.
	b := xmltree.NewBuilder()
	r := rand.New(rand.NewSource(11))
	b.Begin("root")
	for i := 0; i < 800; i++ {
		b.Begin("sec")
		for k, kn := 0, r.Intn(6); k < kn; k++ {
			b.Element("item", "")
		}
		b.End()
	}
	b.End()
	tr := b.Tree()
	real := float64(match.CountPairs(tr, tr.NodesWithTag("sec"), tr.NodesWithTag("item")))
	if real == 0 {
		t.Fatalf("degenerate document")
	}
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()

	ratios := map[int]float64{}
	for _, g := range []int{2, 10, 40, 100} {
		est, err := NewEstimator(cat, Options{GridSize: g})
		if err != nil {
			t.Fatalf("g=%d: %v", g, err)
		}
		res, err := est.EstimatePairPrimitive("tag=sec", "tag=item")
		if err != nil {
			t.Fatalf("g=%d: %v", g, err)
		}
		ratios[g] = res.Estimate / real
		t.Logf("g=%d ratio=%v", g, ratios[g])
	}
	prev := math.Inf(1)
	for _, g := range []int{2, 10, 40, 100} {
		if e := math.Abs(ratios[g] - 1); e > prev {
			t.Errorf("accuracy regressed at g=%d: |ratio-1| = %v, previous %v", g, e, prev)
		} else {
			prev = e
		}
	}
	// The ratio is far from 1 at g=2 and must have shrunk by an order
	// of magnitude by g=100 (the exact landing point is data-dependent).
	if ratios[100] > ratios[2]/10 {
		t.Errorf("g=100 ratio %v did not improve 10x over g=2 ratio %v", ratios[100], ratios[2])
	}
}

func TestNoOverlapBeatsPrimitiveOnNestedFreePredicates(t *testing.T) {
	b := xmltree.NewBuilder()
	r := rand.New(rand.NewSource(5))
	b.Begin("db")
	for i := 0; i < 500; i++ {
		b.Begin("rec")
		if r.Intn(10) == 0 { // sparse child: primitive overestimates badly
			b.Element("rare", "")
		}
		for k, kn := 0, 3+r.Intn(6); k < kn; k++ {
			b.Element("common", "")
		}
		b.End()
	}
	b.End()
	tr := b.Tree()
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	est, err := NewEstimator(cat, Options{GridSize: 10})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	real := float64(match.CountPairs(tr, tr.NodesWithTag("rec"), tr.NodesWithTag("rare")))
	prim, err := est.EstimatePairPrimitive("tag=rec", "tag=rare")
	if err != nil {
		t.Fatalf("primitive: %v", err)
	}
	noov, err := est.EstimatePair("tag=rec", "tag=rare")
	if err != nil {
		t.Fatalf("no-overlap: %v", err)
	}
	t.Logf("real=%v primitive=%v no-overlap=%v", real, prim.Estimate, noov.Estimate)
	if math.Abs(noov.Estimate-real) > math.Abs(prim.Estimate-real)+1e-9 {
		t.Errorf("no-overlap estimate %v should beat primitive %v (real %v)",
			noov.Estimate, prim.Estimate, real)
	}
	// The published formula applies the covered fraction of the whole
	// cell population to the descendant predicate, which biases the
	// estimate down by the ancestor-tag share of the population; allow
	// that documented dilution but require the right magnitude.
	if math.Abs(noov.Estimate-real) > 0.5*real {
		t.Errorf("no-overlap estimate %v too far from real %v", noov.Estimate, real)
	}
}

func TestEstimateTwigFig2(t *testing.T) {
	tr, _, est := fig1Estimator(t, 4)
	p := pattern.MustParse("//department//faculty[.//TA][.//RA]")
	res, err := est.EstimateTwig(p)
	if err != nil {
		t.Fatalf("EstimateTwig: %v", err)
	}
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	resolve := func(name string) ([]xmltree.NodeID, error) {
		e, err := cat.Get(name)
		if err != nil {
			return nil, err
		}
		return e.Nodes, nil
	}
	real, err := match.CountTwig(tr, p, resolve)
	if err != nil {
		t.Fatalf("CountTwig: %v", err)
	}
	naive := NaiveEstimate(1, 3, 5, 10)
	t.Logf("twig estimate=%v real=%v naive=%v", res.Estimate, real, naive)
	if res.Estimate <= 0 {
		t.Errorf("twig estimate must be positive")
	}
	if math.Abs(res.Estimate-real) >= math.Abs(naive-real) {
		t.Errorf("twig estimate %v should improve on naive %v (real %v)", res.Estimate, naive, real)
	}
}

func TestEstimateTwigChainEqualsPairForTwoNodes(t *testing.T) {
	_, _, est := fig1Estimator(t, 4)
	pair, err := est.EstimatePair("tag=faculty", "tag=TA")
	if err != nil {
		t.Fatalf("pair: %v", err)
	}
	twig, err := est.EstimateTwig(pattern.MustParse("//faculty//TA"))
	if err != nil {
		t.Fatalf("twig: %v", err)
	}
	if math.Abs(pair.Estimate-twig.Estimate) > 1e-9 {
		t.Errorf("2-node twig %v != pair estimate %v", twig.Estimate, pair.Estimate)
	}
}

func TestEstimatorMissingPredicate(t *testing.T) {
	_, _, est := fig1Estimator(t, 4)
	if _, err := est.EstimatePair("tag=nope", "tag=TA"); err == nil {
		t.Errorf("missing predicate: want error")
	}
	if _, err := est.EstimateTwig(pattern.MustParse("//faculty//nope")); err == nil {
		t.Errorf("missing predicate in twig: want error")
	}
}

func TestEstimatorOptions(t *testing.T) {
	tr := xmltree.Fig1Document()
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()

	if _, err := NewEstimator(cat, Options{GridSize: 0}); err != nil {
		t.Errorf("GridSize 0 should fall back to default: %v", err)
	}
	ed, err := NewEstimator(cat, Options{GridSize: 5, EquiDepth: true})
	if err != nil {
		t.Fatalf("equi-depth: %v", err)
	}
	if ed.Grid().Size() != 5 {
		t.Errorf("equi-depth grid size = %d, want 5", ed.Grid().Size())
	}
	skip, err := NewEstimator(cat, Options{GridSize: 5, SkipCoverage: true})
	if err != nil {
		t.Fatalf("skip coverage: %v", err)
	}
	if skip.CoverageHistogram("tag=faculty") != nil {
		t.Errorf("SkipCoverage must not build coverage histograms")
	}
}

func TestEstimatorStorageBytes(t *testing.T) {
	_, _, est := fig1Estimator(t, 10)
	if sb := est.StorageBytes(); sb <= 0 {
		t.Errorf("StorageBytes = %d, want > 0", sb)
	}
}

func TestSubPatternLeafInvariants(t *testing.T) {
	_, _, est := fig1Estimator(t, 4)
	sp, err := est.EstimateSubPattern(pattern.MustParse("//faculty"))
	if err != nil {
		t.Fatalf("EstimateSubPattern: %v", err)
	}
	if sp.Total() != 3 {
		t.Errorf("leaf sub-pattern total = %v, want 3", sp.Total())
	}
	if sp.Hist.Total() != 3 {
		t.Errorf("leaf participation = %v, want 3", sp.Hist.Total())
	}
}

// TestEstimatePairSymmetricBasesOnUniformData sanity-checks that the
// primitive estimate is never negative and never exceeds the naive
// product, on random documents.
func TestPrimitiveWithinNaiveBound(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		tr := randomTree(r, 20+r.Intn(400))
		cat := predicate.NewCatalog(tr)
		cat.AddAllTags()
		g := 1 + r.Intn(10)
		if g > tr.MaxPos {
			g = tr.MaxPos
		}
		est, err := NewEstimator(cat, Options{GridSize: g})
		if err != nil {
			t.Fatalf("NewEstimator: %v", err)
		}
		tags := tr.Tags()
		for _, a := range tags {
			for _, d := range tags {
				res, err := est.EstimatePairPrimitive("tag="+a, "tag="+d)
				if err != nil {
					t.Fatalf("estimate: %v", err)
				}
				naive := NaiveEstimate(cat.MustGet("tag="+a).Count(), cat.MustGet("tag="+d).Count())
				if res.Estimate < 0 {
					t.Errorf("negative estimate %v for %s//%s", res.Estimate, a, d)
				}
				if res.Estimate > naive+1e-9 {
					t.Errorf("estimate %v exceeds naive %v for %s//%s", res.Estimate, naive, a, d)
				}
			}
		}
	}
}
