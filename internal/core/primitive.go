package core

import (
	"fmt"

	"xmlest/internal/histogram"
)

// The Fig 6 estimation formulas consume region sums of one operand
// histogram. Those sums (column, row, inside and prefix planes) are
// computed once per histogram and cached on the Position itself
// (histogram.Position.Sums), so a join against a histogram that has
// already participated in any join is O(nnz of the other operand): the
// per-cell coefficients below are O(1) lookups into the cached planes.
// See DESIGN.md, "Summary pipeline & performance".

// ancestorCoef returns the Fig 6 ancestor-based multiplicative
// coefficient for ancestor cell (i, j) against the descendant
// histogram's sums: the expected number of descendant-histogram points
// joining with one point in (i, j).
func ancestorCoef(s *histogram.Sums, i, j int) float64 {
	if i == j {
		return s.Self(i, i) / 12
	}
	return s.Inside(i, j) +
		s.Down(i, j) - s.Self(i, i)/2 +
		s.Right(i, j) - s.Self(j, j)/2 +
		s.Self(i, j)/4
}

// descendantCoef returns the Fig 6 descendant-based coefficient for
// descendant cell (i, j) against the ancestor histogram's sums: the
// expected number of ancestor-histogram points joining with one point
// in (i, j). Regions F (same column, above), G (strictly up-left) and
// H (same row, left) count with weight 1; the cell itself with 1/4
// off-diagonal and 1/12 on-diagonal.
func descendantCoef(s *histogram.Sums, i, j int) float64 {
	g := s.GridSize()
	self := s.Self(i, j)
	selfW := 0.25
	if i == j {
		selfW = 1.0 / 12
	}
	return s.Rect(0, i-1, j+1, g-1) + // G: strictly up-left block
		s.Rect(i, i, j+1, g-1) + // F: same start column, ending above
		s.Rect(0, i-1, j, j) + // H: same end row, starting left
		selfW*self
}

// EstimateAncestorBased computes the Fig 6 ancestor-based estimation
// histogram for the pattern P1//P2: cell (i, j) holds the estimated
// number of (ancestor, descendant) pairs whose ancestor falls in cell
// (i, j) of histA. histA and histB must share a grid. Only histA's
// non-zero cells are visited, against histB's cached sums.
func EstimateAncestorBased(histA, histB *histogram.Position) (*histogram.Position, error) {
	if err := checkGrids(histA, histB); err != nil {
		return nil, err
	}
	s := histB.Sums()
	out := histogram.NewPosition(histA.Grid())
	for _, c := range histA.NonZeroCells() {
		if est := c.Count * ancestorCoef(s, c.I, c.J); est != 0 {
			out.Set(c.I, c.J, est)
		}
	}
	return out, nil
}

// EstimateDescendantBased computes the Fig 6 descendant-based estimation
// histogram for P1//P2: cell (i, j) holds the estimated number of pairs
// whose descendant falls in cell (i, j) of histB.
func EstimateDescendantBased(histA, histB *histogram.Position) (*histogram.Position, error) {
	if err := checkGrids(histA, histB); err != nil {
		return nil, err
	}
	s := histA.Sums()
	out := histogram.NewPosition(histB.Grid())
	for _, c := range histB.NonZeroCells() {
		if est := c.Count * descendantCoef(s, c.I, c.J); est != 0 {
			out.Set(c.I, c.J, est)
		}
	}
	return out, nil
}

// AncestorCoefficients returns the per-cell multiplicative coefficients
// derived from a descendant histogram — the pre-computation space-time
// trade-off the paper describes after Fig 9: the coefficients can be
// computed once per histogram and stored (in space comparable to the
// histogram itself), after which any join against that descendant
// reduces to a cell-wise multiply-accumulate.
func AncestorCoefficients(histB *histogram.Position) *histogram.Position {
	s := histB.Sums()
	g := histB.Grid().Size()
	out := histogram.NewPosition(histB.Grid())
	for i := 0; i < g; i++ {
		for j := i; j < g; j++ {
			if c := ancestorCoef(s, i, j); c != 0 {
				out.Set(i, j, c)
			}
		}
	}
	return out
}

func checkGrids(a, b *histogram.Position) error {
	if !a.Grid().Equal(b.Grid()) {
		return fmt.Errorf("core: operand histograms have different grids (%d vs %d buckets)",
			a.Grid().Size(), b.Grid().Size())
	}
	return nil
}
