package accuracy

import (
	"math"
	"strings"
	"testing"

	"xmlest/internal/core"
	"xmlest/internal/datagen"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

func hierSetup(t *testing.T) (*predicate.Catalog, *core.Estimator) {
	t.Helper()
	tr := datagen.GenerateHier(datagen.DefaultHierConfig)
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	est, err := core.NewEstimator(cat, core.Options{GridSize: 10})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	return cat, est
}

func TestPairWorkloadCoversAllPairs(t *testing.T) {
	cat, _ := hierSetup(t)
	w := PairWorkload(cat)
	// 5 tags -> 20 ordered pairs.
	if len(w) != 20 {
		t.Fatalf("workload size = %d, want 20", len(w))
	}
	seen := map[string]bool{}
	for _, q := range w {
		if seen[q] {
			t.Errorf("duplicate query %s", q)
		}
		seen[q] = true
		if !strings.HasPrefix(q, "//") {
			t.Errorf("bad query syntax %s", q)
		}
	}
}

func TestEvaluatePairWorkload(t *testing.T) {
	cat, est := hierSetup(t)
	results, report, err := Evaluate(cat, est, PairWorkload(cat))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if report.Queries != len(results) || report.Queries != 20 {
		t.Fatalf("queries = %d, want 20", report.Queries)
	}
	if report.Q50 < 1 || report.Q90 < report.Q50 || report.QMax < report.Q90 {
		t.Errorf("quantiles not ordered: %v %v %v", report.Q50, report.Q90, report.QMax)
	}
	// Median pairwise q-error on this dataset should be modest: the
	// estimator is the paper's whole point.
	if report.Q50 > 5 {
		t.Errorf("median q-error %v too large", report.Q50)
	}
	for _, r := range results {
		if math.IsNaN(r.Est) || r.Est < 0 {
			t.Errorf("%s: bad estimate %v", r.Pattern, r.Est)
		}
		if r.QError < 1 {
			t.Errorf("%s: q-error %v < 1", r.Pattern, r.QError)
		}
	}
}

func TestRandomTwigWorkload(t *testing.T) {
	cat, est := hierSetup(t)
	w := RandomTwigWorkload(cat, 60, 7)
	if len(w) != 60 {
		t.Fatalf("workload size = %d, want 60", len(w))
	}
	// Deterministic per seed.
	w2 := RandomTwigWorkload(cat, 60, 7)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatalf("workload not deterministic at %d", i)
		}
	}
	if w3 := RandomTwigWorkload(cat, 60, 8); w3[0] == w[0] && w3[1] == w[1] && w3[2] == w[2] {
		t.Errorf("different seed should change the workload")
	}
	_, report, err := Evaluate(cat, est, w)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if report.Queries != 60 {
		t.Errorf("queries = %d, want 60", report.Queries)
	}
	if report.QMax < 1 {
		t.Errorf("bad QMax %v", report.QMax)
	}
}

func TestEvaluateRejectsBadPattern(t *testing.T) {
	cat, est := hierSetup(t)
	if _, _, err := Evaluate(cat, est, []string{"not a pattern"}); err == nil {
		t.Errorf("want parse error")
	}
	if _, _, err := Evaluate(cat, est, []string{"//nosuchtag//name"}); err == nil {
		t.Errorf("want missing-predicate error")
	}
}

func TestEvaluateEmptyWorkload(t *testing.T) {
	cat, est := hierSetup(t)
	results, report, err := Evaluate(cat, est, nil)
	if err != nil {
		t.Fatalf("Evaluate(empty): %v", err)
	}
	if len(results) != 0 {
		t.Errorf("results = %d, want 0", len(results))
	}
	if report != (Report{}) {
		t.Errorf("empty workload report = %+v, want zero", report)
	}
}

func TestEvaluateAllZeroReal(t *testing.T) {
	// //b//a never matches in <a><b/></a>: every real count is zero, so
	// add-one smoothing is the only thing keeping q-errors finite.
	tr, err := xmltree.ParseString(`<a><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	est, err := core.NewEstimator(cat, core.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	results, report, err := Evaluate(cat, est, []string{"//b//a", "//b//b"})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if report.EmptyReal != 2 {
		t.Errorf("EmptyReal = %d, want 2", report.EmptyReal)
	}
	for _, r := range results {
		if r.Real != 0 {
			t.Errorf("%s: real = %v, want 0", r.Pattern, r.Real)
		}
		if math.IsInf(r.QError, 0) || math.IsNaN(r.QError) || r.QError < 1 {
			t.Errorf("%s: q-error %v not smoothed", r.Pattern, r.QError)
		}
	}
	if math.IsInf(report.QMax, 0) || math.IsNaN(report.MeanRelErr) {
		t.Errorf("report not finite: %+v", report)
	}
}

func TestEvaluateSingleQueryQuantiles(t *testing.T) {
	// With one query every quantile is that query's q-error — the
	// interpolating quantile must not index past the single sample.
	cat, est := hierSetup(t)
	results, report, err := Evaluate(cat, est, PairWorkload(cat)[:1])
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	q := results[0].QError
	if report.Q50 != q || report.Q90 != q || report.QMax != q {
		t.Errorf("single-query quantiles = %v/%v/%v, want all %v", report.Q50, report.Q90, report.QMax, q)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	sorted := []float64{1, 3}
	if got := quantile(sorted, 0.5); got != 2 {
		t.Errorf("quantile([1 3], 0.5) = %v, want 2 (interpolated)", got)
	}
	if got := quantile(sorted, 0); got != 1 {
		t.Errorf("quantile([1 3], 0) = %v, want 1", got)
	}
	if got := quantile(sorted, 1); got != 3 {
		t.Errorf("quantile([1 3], 1) = %v, want 3", got)
	}
	if got := quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("quantile([7], 0.9) = %v, want 7", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(nil, 0.5) = %v, want 0", got)
	}
}

func TestQErrorSmoothing(t *testing.T) {
	if q := QError(0, 0); q != 1 {
		t.Errorf("QError(0,0) = %v, want 1", q)
	}
	if q := QError(9, 0); q != 10 {
		t.Errorf("QError(9,0) = %v, want 10", q)
	}
	if q := QError(0, 9); q != 10 {
		t.Errorf("QError(0,9) = %v, want 10", q)
	}
}

func TestPatternSafeFiltersAttributes(t *testing.T) {
	tr, err := xmltree.ParseString(`<a id="1"><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	w := PairWorkload(cat)
	for _, q := range w {
		if strings.Contains(q, "@") {
			t.Errorf("attribute tag leaked into workload: %s", q)
		}
	}
}
