// Package cliutil holds the flag plumbing shared by the xqest and
// xqestd commands: opening a database from -data files or a built-in
// synthetic -dataset.
package cliutil

import (
	"fmt"
	"strings"

	"xmlest"
	"xmlest/internal/datagen"
)

// OpenDatabase builds a Database from comma-separated XML files (data)
// or a built-in dataset name (dblp, hier, xmark, shakespeare), with
// tag predicates registered and ready for estimator construction.
// Exactly the behaviour the xqest CLI has always had.
func OpenDatabase(data, dataset string, scale float64, seed int64) (*xmlest.Database, error) {
	switch {
	case data != "":
		db, err := xmlest.OpenFiles(strings.Split(data, ",")...)
		if err != nil {
			return nil, err
		}
		db.AddAllTagPredicates()
		return db, nil
	case dataset == "dblp":
		db := xmlest.FromCatalog(datagen.DBLPCatalog(datagen.GenerateDBLP(
			datagen.DBLPConfig{Seed: seed, Scale: scale})))
		return db, nil
	case dataset == "hier":
		db := xmlest.FromCatalog(datagen.HierCatalog(datagen.GenerateHier(
			datagen.HierConfig{Seed: seed, Scale: scale * 10})))
		return db, nil
	case dataset == "xmark":
		db := xmlest.FromTree(datagen.GenerateXMark(seed, int(1000*scale)))
		db.AddAllTagPredicates()
		return db, nil
	case dataset == "shakespeare":
		db := xmlest.FromTree(datagen.GenerateShakespeare(seed, int(10*scale)+1))
		db.AddAllTagPredicates()
		return db, nil
	default:
		return nil, fmt.Errorf("provide -data files or -dataset name (dblp, hier, xmark, shakespeare)")
	}
}
