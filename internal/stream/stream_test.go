package stream

import (
	"bytes"
	"io"
	"math"
	"testing"

	"xmlest/internal/core"
	"xmlest/internal/datagen"
	"xmlest/internal/match"
	"xmlest/internal/xmltree"
)

func sourceFromString(doc string) Source {
	return func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader([]byte(doc))), nil
	}
}

func sourceFromTree(t *testing.T, tr *xmltree.Tree) (Source, string) {
	t.Helper()
	var buf bytes.Buffer
	if err := xmltree.WriteXML(&buf, tr, tr.Root()); err != nil {
		t.Fatalf("WriteXML: %v", err)
	}
	doc := buf.String()
	return sourceFromString(doc), doc
}

func TestBuildMatchesTreeHistograms(t *testing.T) {
	tr := xmltree.Fig1Document()
	src, doc := sourceFromTree(t, tr)

	res, err := Build(src, 4, []EventPredicate{
		TagPred{Tag: "faculty"},
		TagPred{Tag: "TA"},
		TagPred{Tag: "RA"},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Reparse (attribute-free document) to compare against the
	// materialized-tree histograms; the numbering must coincide.
	back, err := xmltree.ParseString(doc)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if back.MaxPos != res.Grid.MaxPos() {
		t.Fatalf("position space differs: stream %d, tree %d", res.Grid.MaxPos(), back.MaxPos)
	}
	for _, tag := range []string{"faculty", "TA", "RA"} {
		if err := VerifyAgainstTree(back, res, tag); err != nil {
			t.Errorf("%v", err)
		}
	}
	if res.Nodes != back.NumNodes() {
		t.Errorf("nodes = %d, want %d", res.Nodes, back.NumNodes())
	}
	if res.MaxDepth != 3 {
		t.Errorf("max depth = %d, want 3", res.MaxDepth)
	}
	if res.Hists["TRUE"].Total() != float64(back.NumNodes()) {
		t.Errorf("TRUE total = %v, want %d", res.Hists["TRUE"].Total(), back.NumNodes())
	}
}

func TestStreamedEstimateMatchesTreeEstimate(t *testing.T) {
	tr := datagen.GenerateDBLP(datagen.DBLPConfig{Seed: 4, Scale: 0.01})
	src, _ := sourceFromTree(t, tr)
	res, err := Build(src, 10, []EventPredicate{
		TagPred{Tag: "article"},
		TagPred{Tag: "author"},
		ContentPrefixPred{Alias: "conf", Tag: "cite", Prefix: "conf"},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	est, err := core.EstimateAncestorBased(res.Hists["tag=article"], res.Hists["tag=author"])
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	real := float64(match.CountPairs(tr, tr.NodesWithTag("article"), tr.NodesWithTag("author")))
	if real == 0 {
		t.Fatalf("degenerate dataset")
	}
	// The streamed histograms come from the same numbering (modulo the
	// attribute-free serialization), so the estimate must be in the
	// same band a tree-built estimator would produce.
	if ratio := est.Total() / real; ratio < 0.1 || ratio > 10 {
		t.Errorf("streamed estimate %v vs real %v", est.Total(), real)
	}
	if res.Hists["conf"].Total() <= 0 {
		t.Errorf("content-prefix predicate matched nothing")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(sourceFromString("<a><b></a>"), 4, nil); err == nil {
		t.Errorf("malformed XML: want error")
	}
	if _, err := Build(sourceFromString("<a/>"), 4, []EventPredicate{
		FuncPred{Alias: "TRUE", Fn: func(*Event) bool { return true }},
	}); err == nil {
		t.Errorf("reserved TRUE name: want error")
	}
	if _, err := Build(sourceFromString("<a/>"), 4, []EventPredicate{
		TagPred{Tag: "a"}, TagPred{Tag: "a"},
	}); err == nil {
		t.Errorf("duplicate predicate: want error")
	}
	fails := 0
	failingSrc := func() (io.ReadCloser, error) {
		fails++
		return nil, io.ErrUnexpectedEOF
	}
	if _, err := Build(failingSrc, 4, nil); err == nil {
		t.Errorf("failing source: want error")
	}
}

func TestFuncPred(t *testing.T) {
	src := sourceFromString(`<db><x>deep</x><y><x>nested</x></y></db>`)
	res, err := Build(src, 2, []EventPredicate{
		FuncPred{Alias: "depth2+", Fn: func(ev *Event) bool { return ev.Depth >= 2 }},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Elements at depth >= 2: x(depth 2), y(2), x(3) = 3.
	if got := res.Hists["depth2+"].Total(); got != 3 {
		t.Errorf("depth2+ total = %v, want 3", got)
	}
}

func TestStreamedTextAssembly(t *testing.T) {
	src := sourceFromString(`<db><cite>conf/x/y</cite><cite> journals/z </cite></db>`)
	res, err := Build(src, 2, []EventPredicate{
		ContentPrefixPred{Alias: "conf", Tag: "cite", Prefix: "conf"},
		ContentPrefixPred{Alias: "journal", Tag: "cite", Prefix: "journals"},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if res.Hists["conf"].Total() != 1 || res.Hists["journal"].Total() != 1 {
		t.Errorf("prefix totals = %v / %v, want 1 / 1",
			res.Hists["conf"].Total(), res.Hists["journal"].Total())
	}
}

func TestLemma1HoldsOnStreamedHistograms(t *testing.T) {
	tr := datagen.GenerateHier(datagen.DefaultHierConfig)
	src, _ := sourceFromTree(t, tr)
	res, err := Build(src, 10, []EventPredicate{
		TagPred{Tag: "manager"}, TagPred{Tag: "employee"},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for name, h := range res.Hists {
		if err := h.CheckLemma1(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if math.IsNaN(h.Total()) {
			t.Errorf("%s: NaN total", name)
		}
	}
}

func TestBuildAllTagsDiscoversVocabulary(t *testing.T) {
	tr := xmltree.Fig1Document()
	src, doc := sourceFromTree(t, tr)
	res, err := BuildAllTags(src, 4)
	if err != nil {
		t.Fatalf("BuildAllTags: %v", err)
	}
	back, err := xmltree.ParseString(doc)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	// One histogram per distinct tag, plus TRUE, nothing else.
	tags := back.Tags()
	if len(res.Hists) != len(tags)+1 {
		t.Fatalf("%d histograms for %d tags", len(res.Hists), len(tags))
	}
	for _, tag := range tags {
		if res.Hists["tag="+tag] == nil {
			t.Fatalf("missing histogram for discovered tag %q", tag)
		}
		if err := VerifyAgainstTree(back, res, tag); err != nil {
			t.Errorf("%v", err)
		}
	}
	if res.Hists["TRUE"].Total() != float64(back.NumNodes()) {
		t.Errorf("TRUE total = %v, want %d", res.Hists["TRUE"].Total(), back.NumNodes())
	}
}

func TestBuildAllTagsEstimatorServesPatterns(t *testing.T) {
	tr := datagen.GenerateDBLP(datagen.DBLPConfig{Seed: 7, Scale: 0.01})
	src, _ := sourceFromTree(t, tr)
	est, res, err := BuildAllTagsEstimator(src, 10)
	if err != nil {
		t.Fatalf("BuildAllTagsEstimator: %v", err)
	}
	if res.Nodes == 0 {
		t.Fatal("no nodes")
	}
	r, err := est.EstimatePair("tag=article", "tag=author")
	if err != nil {
		t.Fatalf("EstimatePair: %v", err)
	}
	if r.Estimate <= 0 {
		t.Fatalf("estimate %v, want > 0", r.Estimate)
	}
	// The wrapped estimator serves the discovered vocabulary.
	for _, name := range []string{"tag=article", "tag=author"} {
		if !est.HasPredicate(name) {
			t.Fatalf("estimator lacks %q", name)
		}
	}
}
