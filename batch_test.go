// Facade tests for the serving hooks added for the daemon: batched
// snapshot-consistent estimation, corpus stats, and option validation
// at the facade boundary.
package xmlest_test

import (
	"strings"
	"sync"
	"testing"

	"xmlest"
)

func openDepts(t *testing.T) *xmlest.Database {
	t.Helper()
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	return db
}

func TestEstimateBatchMatchesSingles(t *testing.T) {
	db := openDepts(t)
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	patterns := []string{"//faculty//TA", "//department//faculty", "//faculty//TA"}
	batch, err := est.EstimateBatch(patterns)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Version != est.Version() {
		t.Errorf("batch version %d != estimator version %d", batch.Version, est.Version())
	}
	if len(batch.Results) != len(patterns) {
		t.Fatalf("batch returned %d results, want %d", len(batch.Results), len(patterns))
	}
	for i, src := range patterns {
		single, err := est.Estimate(src)
		if err != nil {
			t.Fatal(err)
		}
		if batch.Results[i].Estimate != single.Estimate {
			t.Errorf("pattern %q: batch %v != single %v", src, batch.Results[i].Estimate, single.Estimate)
		}
	}

	if _, err := est.EstimateBatch([]string{"//faculty//TA", "//[["}); err == nil {
		t.Error("batch with a bad pattern did not fail")
	}
}

// TestEstimateBatchSnapshotConsistent races appends against batches
// holding a duplicated pattern: both copies must always agree, because
// the whole batch is served from one pinned shard set.
func TestEstimateBatchSnapshotConsistent(t *testing.T) {
	db := openDepts(t)
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Append(strings.NewReader(dept2)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	patterns := []string{"//faculty//TA", "//staff", "//faculty//TA"}
	for i := 0; i < 200; i++ {
		batch, err := est.EstimateBatch(patterns)
		if err != nil {
			t.Fatal(err)
		}
		if batch.Results[0].Estimate != batch.Results[2].Estimate {
			t.Fatalf("iteration %d: duplicated pattern disagreed within one batch: %v != %v",
				i, batch.Results[0].Estimate, batch.Results[2].Estimate)
		}
	}
	close(stop)
	wg.Wait()
}

func TestDatabaseStats(t *testing.T) {
	db := openDepts(t)
	if _, err := db.Append(strings.NewReader(dept2)); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Shards != 2 || st.Docs != 2 || st.SummaryOnlyShards != 0 {
		t.Errorf("stats = %+v, want 2 shards, 2 docs", st)
	}
	if st.Nodes == 0 || st.Predicates == 0 {
		t.Errorf("stats = %+v, want nonzero nodes and predicates", st)
	}
	if st.Version != db.Version() {
		t.Errorf("stats version %d != db version %d", st.Version, db.Version())
	}
}

func TestNewEstimatorValidatesOptions(t *testing.T) {
	db := openDepts(t)
	bad := []xmlest.Options{
		{GridSize: -1},
		{GridSize: 1 << 20},
		{BuildWorkers: -3},
		{QueryCacheSize: -1},
	}
	for _, opts := range bad {
		if _, err := db.NewEstimator(opts); err == nil {
			t.Errorf("options %+v accepted, want a validation error", opts)
		}
	}
	// Zero values still select defaults.
	est, err := db.NewEstimator(xmlest.Options{})
	if err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	if _, err := est.Estimate("//faculty//TA"); err != nil {
		t.Fatal(err)
	}
}

// TestEstimateBatchIntoReusesDst pins the pooled batch path: reusing
// one result slice across calls (as the daemon's request scratch does)
// returns bit-identical estimates to fresh calls, and the reused slice
// does not reallocate once warm.
func TestEstimateBatchIntoReusesDst(t *testing.T) {
	db := openDepts(t)
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	patterns := []string{"//faculty//TA", "//department//faculty"}
	fresh, err := est.EstimateBatch(patterns)
	if err != nil {
		t.Fatal(err)
	}
	var dst []xmlest.Result
	for round := 0; round < 3; round++ {
		version, results, err := est.EstimateBatchInto(patterns, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		if version != fresh.Version {
			t.Fatalf("round %d: version %d != %d", round, version, fresh.Version)
		}
		if len(results) != len(patterns) {
			t.Fatalf("round %d: %d results", round, len(results))
		}
		for i := range results {
			if results[i].Estimate != fresh.Results[i].Estimate {
				t.Fatalf("round %d pattern %d: pooled %v != fresh %v",
					round, i, results[i].Estimate, fresh.Results[i].Estimate)
			}
		}
		if round > 0 && len(dst) > 0 && &results[0] != &dst[0] {
			t.Fatalf("round %d: dst not reused", round)
		}
		dst = results
	}
	// Singles agree with the pooled batch bit-for-bit.
	for i, p := range patterns {
		single, err := est.Estimate(p)
		if err != nil {
			t.Fatal(err)
		}
		if single.Estimate != fresh.Results[i].Estimate {
			t.Fatalf("single %s %v != batch %v", p, single.Estimate, fresh.Results[i].Estimate)
		}
	}
}
