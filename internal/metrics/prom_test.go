package metrics

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseExposition splits an exposition into sample lines and the set of
// names carrying HELP/TYPE headers.
func parseExposition(t *testing.T, text string) (samples []string, help, typ map[string]int) {
	t.Helper()
	help, typ = map[string]int{}, map[string]int{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			help[name]++
		case strings.HasPrefix(line, "# TYPE "):
			name := strings.Fields(line)[2]
			typ[name]++
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment line %q", line)
		default:
			samples = append(samples, line)
		}
	}
	return samples, help, typ
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	e := r.Endpoint("estimate")
	for i := 0; i < 10; i++ {
		e.BeginRequest()(OK)
	}
	e.BeginRequest()(Error)

	var buf bytes.Buffer
	if err := r.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples, help, typ := parseExposition(t, text)
	if len(samples) == 0 {
		t.Fatal("no samples in exposition")
	}
	for name, n := range help {
		if n != 1 {
			t.Errorf("HELP for %s emitted %d times, want once", name, n)
		}
		if typ[name] != 1 {
			t.Errorf("TYPE for %s emitted %d times, want once", name, typ[name])
		}
	}
	// Every sample's family must have been declared.
	for _, s := range samples {
		name := s
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if typ[name] == 0 && typ[base] == 0 {
			t.Errorf("sample %q has no TYPE header (name %q, base %q)", s, name, base)
		}
	}
	for _, want := range []string{
		"xqest_http_requests_total{endpoint=\"estimate\"} 11",
		"xqest_http_errors_total{endpoint=\"estimate\"} 1",
		"xqest_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestLatencySamplesBucketsMonotone(t *testing.T) {
	r := NewRegistry()
	h := NewLatencyHistogram()
	for _, d := range []time.Duration{time.Microsecond, 50 * time.Microsecond,
		time.Millisecond, 20 * time.Millisecond, time.Second} {
		h.Observe(d)
	}
	r.Register(CollectorFunc(func(e *Expo) {
		e.HistogramFamily("test_latency_seconds", "test")
		e.LatencySamples("test_latency_seconds", h)
	}))
	var buf bytes.Buffer
	if err := r.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	var seenInf bool
	var count, bucketTotal float64
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "test_latency_seconds_bucket") {
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Errorf("bucket counts not monotone: %v after %v (%s)", v, prev, line)
			}
			prev = v
			bucketTotal = v
			if strings.Contains(line, `le="+Inf"`) {
				seenInf = true
			}
		}
		if strings.HasPrefix(line, "test_latency_seconds_count ") {
			count, _ = strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		}
	}
	if !seenInf {
		t.Error("no +Inf bucket emitted")
	}
	if count != 5 || bucketTotal != 5 {
		t.Errorf("count = %v, +Inf bucket = %v, want 5 and 5", count, bucketTotal)
	}
}

func TestExpositionLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Register(CollectorFunc(func(e *Expo) {
		e.Gauge("test_gauge", "help", 1, "label", "a\\b\"c\nd")
	}))
	var buf bytes.Buffer
	if err := r.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	want := `test_gauge{label="a\\b\"c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("escaped label missing: want %q in:\n%s", want, buf.String())
	}
}

func TestCollectorRegistrationOrderPreserved(t *testing.T) {
	r := NewRegistry()
	var order []string
	r.Register(CollectorFunc(func(e *Expo) { order = append(order, "a") }))
	r.Register(CollectorFunc(func(e *Expo) { order = append(order, "b") }))
	var buf bytes.Buffer
	if err := r.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("collector order = %v, want [a b]", order)
	}
}
