// Package version derives build identity from the binary's embedded
// module info (runtime/debug.ReadBuildInfo), so every command can
// report what it was built from without a linker-flag stamping step.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Info is the build identity of the running binary.
type Info struct {
	// Version is the main module version ("(devel)" for plain go build).
	Version string `json:"version"`
	// Revision is the VCS commit the binary was built from, if stamped.
	Revision string `json:"revision,omitempty"`
	// Modified reports uncommitted changes at build time.
	Modified bool `json:"modified,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

var (
	once sync.Once
	info Info
)

// Get returns the build identity, computed once.
func Get() Info {
	once.Do(func() {
		info = Info{Version: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			info.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.Revision = s.Value
			case "vcs.modified":
				info.Modified = s.Value == "true"
			}
		}
	})
	return info
}

// String renders the identity as "version (revision[, modified]) go".
func (i Info) String() string {
	s := i.Version
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if i.Modified {
			rev += "+dirty"
		}
		s = fmt.Sprintf("%s (%s)", s, rev)
	}
	return s + " " + i.GoVersion
}

// String returns the running binary's identity line.
func String() string { return Get().String() }
