package histogram

import "fmt"

// Compound-predicate histogram synthesis (Section 3.4): when a query
// predicate is a boolean combination of basic predicates, its position
// histogram is estimated from the component histograms, assuming
// independence between components within each grid cell. Counts are
// converted to probabilities by dividing by the TRUE histogram's cell
// count and converted back after combination.

// SynthesizeAnd estimates the histogram of the conjunction of the given
// predicates' histograms: p = Π p_k per cell.
func SynthesizeAnd(trueHist *Position, parts ...*Position) (*Position, error) {
	return synthesize(trueHist, parts, func(ps []float64) float64 {
		p := 1.0
		for _, x := range ps {
			p *= x
		}
		return p
	})
}

// SynthesizeOr estimates the histogram of the disjunction:
// p = 1 - Π (1 - p_k) per cell. For disjoint predicates (such as the
// paper's per-year primitives combined into "1990's"), callers may
// instead Sum the histograms exactly.
func SynthesizeOr(trueHist *Position, parts ...*Position) (*Position, error) {
	return synthesize(trueHist, parts, func(ps []float64) float64 {
		q := 1.0
		for _, x := range ps {
			q *= 1 - x
		}
		return 1 - q
	})
}

// SynthesizeNot estimates the histogram of the negation: p = 1 - p_in.
func SynthesizeNot(trueHist *Position, inner *Position) (*Position, error) {
	return synthesize(trueHist, []*Position{inner}, func(ps []float64) float64 {
		return 1 - ps[0]
	})
}

// Sum adds histograms cell-wise. It is the exact combination for
// mutually exclusive predicates (no node satisfies two of them), which
// is how the paper's compound decade predicates are built from per-year
// primitives.
func Sum(parts ...*Position) (*Position, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("histogram: Sum of no histograms")
	}
	out := parts[0].Clone()
	for _, p := range parts[1:] {
		if err := validateJoinOperands(out, p); err != nil {
			return nil, err
		}
		p.EachNonZero(func(i, j int, c float64) { out.Add(i, j, c) })
	}
	return out, nil
}

func synthesize(trueHist *Position, parts []*Position, combine func([]float64) float64) (*Position, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("histogram: synthesize with no parts")
	}
	for _, p := range parts {
		if err := validateJoinOperands(trueHist, p); err != nil {
			return nil, err
		}
	}
	out := NewPosition(trueHist.grid)
	ps := make([]float64, len(parts))
	// Only the TRUE histogram's non-zero cells can contribute (the cell
	// population is the denominator), so iterate the cached sparse cell
	// list instead of the dense g×g plane — O(nnz) instead of O(g²),
	// which matters on the wide concatenated grids of merged shard
	// summaries. The iteration order matches the dense scan, so results
	// are bit-identical.
	for _, tc := range trueHist.NonZeroCells() {
		pop := tc.Count
		if pop <= 0 {
			continue
		}
		for k, part := range parts {
			p := part.Count(tc.I, tc.J) / pop
			if p < 0 {
				p = 0
			}
			if p > 1 {
				p = 1
			}
			ps[k] = p
		}
		if c := combine(ps) * pop; c != 0 {
			out.Set(tc.I, tc.J, c)
		}
	}
	return out, nil
}
