// Facade-level tests of the shard lifecycle: append-to-visible,
// snapshot pinning and staleness, compaction, shard-set persistence
// and streamed summary-only shards.
package xmlest_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"xmlest"
	"xmlest/internal/stream"
)

const dept1 = `<department>
	<faculty><name>A</name><TA/><TA/></faculty>
	<staff><name>B</name></staff>
</department>`

const dept2 = `<department>
	<faculty><name>C</name><TA/><TA/><TA/></faculty>
	<faculty><name>D</name><TA/></faculty>
</department>`

func TestAppendToVisible(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	before, err := est.Estimate("//faculty//TA")
	if err != nil {
		t.Fatal(err)
	}
	snap := est.Snapshot()
	if snap.Stale() {
		t.Fatal("fresh snapshot reports stale")
	}

	info, err := db.Append(strings.NewReader(dept2))
	if err != nil {
		t.Fatal(err)
	}
	if info.Docs != 1 || info.Nodes == 0 || info.SummaryOnly {
		t.Fatalf("appended shard info = %+v", info)
	}
	if db.ShardCount() != 2 {
		t.Fatalf("ShardCount = %d, want 2", db.ShardCount())
	}

	// The live estimator sees the new documents immediately; the pinned
	// snapshot does not, and now reports stale.
	after, err := est.Estimate("//faculty//TA")
	if err != nil {
		t.Fatal(err)
	}
	if after.Estimate <= before.Estimate {
		t.Fatalf("append not visible: %v -> %v", before.Estimate, after.Estimate)
	}
	pinned, err := snap.Estimate("//faculty//TA")
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Estimate != before.Estimate {
		t.Fatalf("snapshot estimate moved: %v != %v", pinned.Estimate, before.Estimate)
	}
	if !snap.Stale() {
		t.Fatal("snapshot not stale after append")
	}
	if est.Stale() {
		t.Fatal("live estimator reports stale")
	}

	// Exact counting sums across shards: 2 TAs + 4 TAs.
	real, err := db.Count("//faculty//TA")
	if err != nil {
		t.Fatal(err)
	}
	if real != 6 {
		t.Fatalf("Count = %v, want 6", real)
	}
}

func TestAppendNewTagVisible(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// "RA" exists only in the appended document: unknown before the
	// append, resolvable after.
	if _, err := est.Estimate("//faculty//RA"); err == nil {
		t.Fatal("unknown tag before append: want error")
	}
	if _, err := db.Append(strings.NewReader(`<department><faculty><RA/><RA/></faculty></department>`)); err != nil {
		t.Fatal(err)
	}
	res, err := est.Estimate("//faculty//RA")
	if err != nil {
		t.Fatalf("appended tag: %v", err)
	}
	if res.Estimate <= 0 {
		t.Fatalf("estimate = %v, want > 0", res.Estimate)
	}
}

func TestDropAndCompactFacade(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	for i := 0; i < 3; i++ {
		if _, err := db.Append(strings.NewReader(dept2)); err != nil {
			t.Fatal(err)
		}
	}
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	shards := db.Shards()
	if len(shards) != 4 {
		t.Fatalf("%d shards, want 4", len(shards))
	}
	before, _ := est.Estimate("//faculty//TA")

	if found, err := db.DropShard(shards[3].ID); err != nil || !found {
		t.Fatalf("DropShard: found=%v err=%v", found, err)
	}
	afterDrop, _ := est.Estimate("//faculty//TA")
	if afterDrop.Estimate >= before.Estimate {
		t.Fatalf("drop not reflected: %v -> %v", before.Estimate, afterDrop.Estimate)
	}

	merged, err := db.Compact(xmlest.CompactionPolicy{TierRatio: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if merged != 3 {
		t.Fatalf("Compact merged %d, want 3", merged)
	}
	if db.ShardCount() != 1 {
		t.Fatalf("ShardCount after compact = %d, want 1", db.ShardCount())
	}
	// Exact counts are preserved exactly by compaction.
	real, err := db.Count("//faculty//TA")
	if err != nil {
		t.Fatal(err)
	}
	if real != 10 { // 2 + 4 + 4 after dropping one dept2 shard
		t.Fatalf("Count after compact = %v, want 10", real)
	}
}

func TestShardSetPersistenceFacade(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	if _, err := db.Append(strings.NewReader(dept2)); err != nil {
		t.Fatal(err)
	}
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := est.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := xmlest.LoadEstimator(blob)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ShardCount() != 2 {
		t.Fatalf("loaded ShardCount = %d, want 2", loaded.ShardCount())
	}
	want, err := est.Estimate("//faculty//TA")
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Estimate("//faculty//TA")
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate != want.Estimate {
		t.Fatalf("loaded estimate %v != original %v", got.Estimate, want.Estimate)
	}
}

func TestAppendTinyDocument(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	est, err := db.NewEstimator(xmlest.Options{GridSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	// A 2-element document has position space [0, 6): far smaller than
	// the corpus grid. The shard grid clamps instead of rejecting the
	// append (the monolithic rebuild absorbed such documents silently).
	if _, err := db.Append(strings.NewReader(`<department><TA/></department>`)); err != nil {
		t.Fatalf("tiny append: %v", err)
	}
	res, err := est.Estimate("//department//TA")
	if err != nil {
		t.Fatalf("estimate after tiny append: %v", err)
	}
	if res.Estimate <= 0 {
		t.Fatalf("estimate = %v, want > 0", res.Estimate)
	}
	// Same ordering risk the other way: tiny shard first, estimator
	// (with a big grid) created afterwards.
	db2, err := xmlest.Open(strings.NewReader(`<a><b/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	db2.AddAllTagPredicates()
	if _, err := db2.NewEstimator(xmlest.Options{GridSize: 10}); err != nil {
		t.Fatalf("estimator over tiny corpus: %v", err)
	}
}

func TestCountUnknownPredicateErrors(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	if _, err := db.Append(strings.NewReader(dept2)); err != nil {
		t.Fatal(err)
	}
	// A typo'd predicate must error (seed behaviour), not count as 0 —
	// even when the pattern's other predicates resolve.
	if _, err := db.Count("//faculty//{typo}"); err == nil {
		t.Fatal("Count with unknown predicate: want error")
	}
}

func TestSnapshotCoreIsolation(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	if _, err := db.Append(strings.NewReader(dept2)); err != nil {
		t.Fatal(err)
	}
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap := est.Snapshot()
	snapCore := snap.Core()
	if snapCore == nil {
		t.Fatal("snapshot Core() = nil")
	}
	taBefore, err := snapCore.Histogram("tag=TA")
	if err != nil {
		t.Fatal(err)
	}
	// Appending after the pin must not leak into the snapshot's Core():
	// the TA histogram total stays at the pinned corpus's 6.
	if _, err := db.Append(strings.NewReader(dept2)); err != nil {
		t.Fatal(err)
	}
	taAfter, err := snap.Core().Histogram("tag=TA")
	if err != nil {
		t.Fatal(err)
	}
	if taBefore.Total() != 6 || taAfter.Total() != 6 {
		t.Fatalf("snapshot Core() corpus moved: before=%v after=%v, want 6", taBefore.Total(), taAfter.Total())
	}
	// The live estimator's Core() does follow the append.
	taLive, err := est.Core().Histogram("tag=TA")
	if err != nil {
		t.Fatal(err)
	}
	if taLive.Total() != 10 {
		t.Fatalf("live Core() TA total = %v, want 10", taLive.Total())
	}
}

func TestCoreSeesRegisteredPredicates(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	if _, err := db.Append(strings.NewReader(dept2)); err != nil {
		t.Fatal(err)
	}
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if est.Core() == nil {
		t.Fatal("Core() = nil")
	}
	// Register a predicate after Core() was cached: the next Core()
	// must include it (multi-shard cache invalidation).
	db.AddPredicate(xmlest.Named{Alias: "isTA", Inner: xmlest.Tag{Value: "TA"}})
	if _, err := est.Core().Histogram("isTA"); err != nil {
		t.Fatalf("Core() after AddPredicate: %v", err)
	}
}

func TestStreamedShardJoinsDatabase(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := est.Estimate("//faculty//TA")

	doc := []byte(dept2)
	src := func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(doc)), nil }
	sh, res, err := stream.AppendShard(db.Store(), src, 4, []stream.EventPredicate{
		stream.TagPred{Tag: "faculty"},
		stream.TagPred{Tag: "TA"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes == 0 || !db.Shards()[1].SummaryOnly || sh.ID() == 0 {
		t.Fatalf("streamed shard: res.Nodes=%d info=%+v", res.Nodes, db.Shards()[1])
	}
	after, err := est.Estimate("//faculty//TA")
	if err != nil {
		t.Fatal(err)
	}
	if after.Estimate <= before.Estimate {
		t.Fatalf("streamed shard not visible: %v -> %v", before.Estimate, after.Estimate)
	}
	// Exact counting cannot cover summary-only shards.
	if _, err := db.Count("//faculty//TA"); err == nil {
		t.Fatal("Count over summary-only shard: want error")
	}
}
