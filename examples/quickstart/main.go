// Quickstart: load an XML document, build position histograms, and
// compare estimated answer sizes against the exact ones — the paper's
// running example (Fig 1/Fig 2) end to end on the public API.
package main

import (
	"fmt"
	"log"
	"strings"

	"xmlest"
)

const doc = `<department>
	<faculty><name>A</name><RA/></faculty>
	<staff><name>B</name></staff>
	<faculty><name>C</name><secretary/><RA/><RA/><RA/></faculty>
	<lecturer><name>D</name><TA/><TA/><TA/></lecturer>
	<faculty><name>E</name><secretary/><TA/><RA/><RA/><TA/></faculty>
	<research_scientist><name>F</name><secretary/><RA/><RA/><RA/><RA/></research_scientist>
</department>`

func main() {
	db, err := xmlest.Open(strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	db.AddAllTagPredicates()

	est, err := db.NewEstimator(xmlest.Options{GridSize: 2})
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"//faculty//TA",                       // the Section 2 walk-through
		"//department//faculty[.//TA][.//RA]", // the Fig 2 twig
		"//department//faculty",
		"//lecturer//TA",
	}
	fmt.Printf("%-40s %10s %10s %10s\n", "pattern", "naive", "estimate", "exact")
	for _, q := range queries {
		naive, err := db.Naive(q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := est.Estimate(q)
		if err != nil {
			log.Fatal(err)
		}
		real, err := db.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s %10.0f %10.2f %10.0f\n", q, naive, res.Estimate, real)
	}
	fmt.Printf("\nsummary structures: %d bytes for %d predicates\n",
		est.StorageBytes(), db.Catalog().Len())
}
