package experiments

import (
	"bytes"
	"math"
	"testing"
)

func TestAblationGridShape(t *testing.T) {
	rows, err := AblationGrid()
	if err != nil {
		t.Fatalf("AblationGrid: %v", err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 (the Table 4 queries)", len(rows))
	}
	for _, r := range rows {
		if r.Real <= 0 {
			t.Fatalf("%s: degenerate real", r.Query)
		}
		for name, est := range map[string]float64{"uniform": r.Uniform, "equi-depth": r.EquiDepth} {
			if est <= 0 || math.IsNaN(est) || math.IsInf(est, 0) {
				t.Errorf("%s: bad %s estimate %v", r.Query, name, est)
			}
		}
		// Both grid shapes must land in the same decade; equi-depth is a
		// refinement, not a different algorithm.
		if ratio := r.EquiDepth / r.Uniform; ratio < 0.2 || ratio > 5 {
			t.Errorf("%s: equi-depth %v wildly differs from uniform %v", r.Query, r.EquiDepth, r.Uniform)
		}
		if r.HasCoverage {
			if math.Abs(r.Coverage-r.Real) > math.Abs(r.Uniform-r.Real) {
				t.Errorf("%s: coverage estimate %v should beat primitive %v (real %v)",
					r.Query, r.Coverage, r.Uniform, r.Real)
			}
		}
	}
}

func TestAblationParentChildShape(t *testing.T) {
	rows, err := AblationParentChild()
	if err != nil {
		t.Fatalf("AblationParentChild: %v", err)
	}
	for _, r := range rows {
		if r.RealChild > r.RealDesc {
			t.Fatalf("%s: child pairs cannot exceed descendant pairs", r.Query)
		}
		// The level-histogram estimate must be closer to the real
		// parent-child count than the anc-desc estimate whenever the two
		// real counts differ substantially.
		if r.RealDesc > 2*r.RealChild {
			if math.Abs(r.ParentChld-r.RealChild) >= math.Abs(r.AncDesc-r.RealChild) {
				t.Errorf("%s: parent-child est %v should beat anc-desc est %v (real %v)",
					r.Query, r.ParentChld, r.AncDesc, r.RealChild)
			}
		}
		if r.ParentChld < 0 || math.IsNaN(r.ParentChld) {
			t.Errorf("%s: bad parent-child estimate %v", r.Query, r.ParentChld)
		}
	}
}

func TestRenderAblation(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderAblation(&buf); err != nil {
		t.Fatalf("RenderAblation: %v", err)
	}
	for _, want := range []string{"Ablation A", "Ablation B", "equi-depth", "parent-child"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("output missing %q", want)
		}
	}
}
