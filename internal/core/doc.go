// Package core implements the paper's contribution: answer-size
// estimation for XML twig queries from position histograms.
//
// It provides:
//
//   - the primitive estimation formulas of Fig 6, in both ancestor-based
//     and descendant-based forms (primitive.go), with an O(g²)
//     partial-sum formulation and a literal transcription of the Fig 9
//     three-pass pH-Join algorithm (phjoin.go);
//   - the no-overlap estimation formulas of Fig 10, which use coverage
//     histograms to exploit the schema's no-overlap property
//     (nooverlap.go);
//   - composition of binary joins into estimates for arbitrary twig
//     patterns, carrying per-cell participation counts, join factors and
//     propagated coverage across joins (subpattern.go);
//   - the naive and schema-only baselines the paper's tables compare
//     against (baseline.go);
//   - Estimator, the high-level entry point that owns the histograms for
//     a catalog of predicates and answers pattern-size queries
//     (estimator.go).
//
// Region-weight conventions (Fig 5/6, validated against the Fig 9
// pseudo-code): for an off-diagonal ancestor cell (i, j), descendant
// cells strictly inside the span count with weight 1; cells sharing the
// start column (i, l), i <= l < j, count with weight 1 except the
// diagonal corner (i, i) at 1/2; cells sharing the end row (k, j),
// i < k <= j, count with weight 1 except (j, j) at 1/2; the cell itself
// counts 1/4. An on-diagonal ancestor cell joins only with itself, at
// 1/12. The descendant-based form mirrors this with the up-left regions
// at weight 1 and self at 1/4 (1/12 on-diagonal), exactly as printed in
// the paper (it has no halved corner terms).
package core
