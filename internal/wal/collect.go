package wal

import "xmlest/internal/metrics"

// Collect exports the log's durability families: sequence watermarks,
// live segment count and bytes, fsync count, and the sealed flag. It
// implements metrics.Collector so the durable layer can chain the
// log into the daemon's /metrics exposition.
func (l *Log) Collect(e *metrics.Expo) {
	e.Gauge("xqest_wal_last_seq", "Newest appended WAL sequence.", float64(l.LastSeq()))
	e.Gauge("xqest_wal_durable_seq", "Newest WAL sequence known fsynced.", float64(l.DurableSeq()))
	e.Gauge("xqest_wal_segments", "Live WAL segment files.", float64(len(l.Segments())))
	e.Gauge("xqest_wal_size_bytes", "Total bytes across live WAL segments.", float64(l.Size()))
	e.Counter("xqest_wal_fsyncs_total", "WAL data fsyncs since open.", float64(l.Fsyncs()))
	sealed := 0.0
	if l.Err() != nil {
		sealed = 1
	}
	e.Gauge("xqest_wal_sealed", "1 when the log sealed after an I/O failure (appends refused).", sealed)
}

// Collect exports the group-commit families: groups and member
// batches committed (batches/groups is the lifetime mean group size)
// plus the last and largest group sizes.
func (c *Committer) Collect(e *metrics.Expo) {
	groups, batches, maxGroup, lastGroup := c.Stats()
	e.Counter("xqest_group_commit_groups_total", "Commit groups formed.", float64(groups))
	e.Counter("xqest_group_commit_batches_total", "Append batches committed across all groups.", float64(batches))
	e.Gauge("xqest_group_commit_last_group_size", "Batches in the most recent commit group.", float64(lastGroup))
	e.Gauge("xqest_group_commit_max_group_size", "Largest commit group so far.", float64(maxGroup))
}
