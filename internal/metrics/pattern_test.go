package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPatternStatsTracksAndBounds(t *testing.T) {
	p := NewPatternStats(3)
	for i := 0; i < 5; i++ {
		p.Observe("//a//b", 10, time.Millisecond)
	}
	p.Observe("//a//c", 20, time.Millisecond)
	p.Observe("//a//d", 30, time.Millisecond)
	// The fourth distinct pattern exceeds the cap: counted as untracked.
	p.Observe("//a//e", 40, time.Millisecond)
	p.Observe("//a//e", 40, time.Millisecond)

	if got := p.Untracked(); got != 2 {
		t.Errorf("Untracked = %d, want 2", got)
	}
	snap := p.Snapshot(10)
	if len(snap) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(snap))
	}
	if snap[0].Pattern != "//a//b" || snap[0].Requests != 5 {
		t.Errorf("top pattern = %+v, want //a//b with 5 requests", snap[0])
	}
	if snap[0].Estimate.Count != 5 || snap[0].Estimate.P50 < 8 || snap[0].Estimate.P50 > 16 {
		t.Errorf("estimate digest = %+v, want p50 near 10", snap[0].Estimate)
	}
	if snap[0].Latency.Count != 5 {
		t.Errorf("latency count = %d, want 5", snap[0].Latency.Count)
	}
	// topK smaller than the tracked set truncates.
	if got := len(p.Snapshot(2)); got != 2 {
		t.Errorf("Snapshot(2) len = %d, want 2", got)
	}
}

func TestPatternStatsNormalization(t *testing.T) {
	p := NewPatternStats(4)
	p.Observe("  //a//b ", 1, time.Microsecond)
	p.Observe("//a//b", 1, time.Microsecond)
	p.Observe("//a \t //b", 1, time.Microsecond)
	snap := p.Snapshot(10)
	if len(snap) != 2 {
		t.Fatalf("Snapshot = %+v, want 2 normalized patterns", snap)
	}
	if snap[0].Pattern != "//a//b" || snap[0].Requests != 2 {
		t.Errorf("normalized top = %+v, want //a//b ×2", snap[0])
	}
	if snap[1].Pattern != "//a //b" {
		t.Errorf("whitespace-collapsed = %q, want %q", snap[1].Pattern, "//a //b")
	}
}

func TestPatternStatsCollect(t *testing.T) {
	r := NewRegistry()
	p := NewPatternStats(0)
	p.Observe("//x//y", 7, 3*time.Millisecond)
	r.Register(p)
	var buf bytes.Buffer
	if err := r.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`xqest_pattern_requests_total{pattern="//x//y"} 1`,
		`xqest_pattern_latency_seconds_count{pattern="//x//y"} 1`,
		"xqest_pattern_untracked_requests_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestNormalizePattern(t *testing.T) {
	cases := map[string]string{
		"//a//b":        "//a//b",
		" //a//b\t":     "//a//b",
		"//a   //b":     "//a //b",
		"//a\n//b[.//c]": "//a //b[.//c]",
	}
	for in, want := range cases {
		if got := NormalizePattern(in); got != want {
			t.Errorf("NormalizePattern(%q) = %q, want %q", in, got, want)
		}
	}
}
