package experiments

import (
	"fmt"
	"io"
	"strings"
)

// RenderAll writes every experiment to w in the order of the paper.
func RenderAll(w io.Writer) error {
	for _, f := range []func(io.Writer) error{
		RenderExample, RenderTable1, RenderTable2, RenderTable3,
		RenderTable4, RenderFig11, RenderFig12, RenderTheorem1,
		RenderTheorem2, RenderStorageSummary, RenderAblation,
		RenderErrorProfile, RenderPlanQuality,
	} {
		if err := f(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RenderExample prints the running example.
func RenderExample(w io.Writer) error {
	res, err := RunExample()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Running example (Fig 1, faculty//TA, 2x2 grids)")
	fmt.Fprintln(w, strings.Repeat("-", 64))
	fmt.Fprintf(w, "%-22s %12s %12s\n", "", "measured", "paper")
	fmt.Fprintf(w, "%-22s %12.2f %12.2f\n", "naive", res.Naive, res.PaperNaive)
	fmt.Fprintf(w, "%-22s %12.2f %12.2f\n", "schema upper bound", res.UpperBound, res.PaperUpperBound)
	fmt.Fprintf(w, "%-22s %12.2f %12.2f\n", "primitive (overlap)", res.Primitive, res.PaperPrimitive)
	fmt.Fprintf(w, "%-22s %12.2f %12.2f\n", "no-overlap", res.NoOverlap, res.PaperNoOverlap)
	fmt.Fprintf(w, "%-22s %12.2f %12.2f\n", "real answer size", res.Real, res.PaperReal)
	return nil
}

func renderPredTable(w io.Writer, title string, rows []PredRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	fmt.Fprintf(w, "%-14s %10s %10s  %-12s %-12s\n",
		"Predicate", "Count", "Paper", "Overlap", "Paper")
	for _, r := range rows {
		prop := "overlap"
		if r.NoOverlap {
			prop = "no overlap"
		}
		fmt.Fprintf(w, "%-14s %10d %10d  %-12s %-12s\n",
			displayName(r.Name), r.Count, r.PaperCount, prop, r.PaperNote)
	}
}

// RenderTable1 prints Table 1.
func RenderTable1(w io.Writer) error {
	renderPredTable(w, "Table 1: Predicates on the DBLP data set", Table1())
	return nil
}

// RenderTable3 prints Table 3.
func RenderTable3(w io.Writer) error {
	renderPredTable(w, "Table 3: Predicates on the synthetic data set", Table3())
	return nil
}

func renderQueryTable(w io.Writer, title string, rows []QueryRow, withDescNum bool) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("-", 118))
	if withDescNum {
		fmt.Fprintf(w, "%-10s %-10s %14s %9s %12s (%8s) %12s (%8s) %9s | paper: %10s %10s %8s\n",
			"Ancestor", "Desc", "Naive", "DescNum",
			"Overlap", "time", "NoOverlap", "time", "Real",
			"Overlap", "NoOvlp", "Real")
	} else {
		fmt.Fprintf(w, "%-10s %-10s %14s %12s (%8s) %12s (%8s) %9s | paper: %10s %10s %8s\n",
			"Ancestor", "Desc", "Naive",
			"Overlap", "time", "NoOverlap", "time", "Real",
			"Overlap", "NoOvlp", "Real")
	}
	for _, r := range rows {
		noov := "N/A"
		noovT := ""
		if r.HasNoOverlap {
			noov = fmt.Sprintf("%.0f", r.NoOverlap)
			noovT = r.NoOverlapTime.String()
		}
		paperNoov := "N/A"
		if r.PaperNoOverlap > 0 {
			paperNoov = fmt.Sprintf("%.0f", r.PaperNoOverlap)
		}
		if withDescNum {
			fmt.Fprintf(w, "%-10s %-10s %14.0f %9d %12.0f (%8s) %12s (%8s) %9d | paper: %10.0f %10s %8.0f\n",
				r.Anc, r.Desc, r.Naive, r.DescNum,
				r.Overlap, r.OverlapTime, noov, noovT, r.Real,
				r.PaperOverlap, paperNoov, r.PaperReal)
		} else {
			fmt.Fprintf(w, "%-10s %-10s %14.0f %12.0f (%8s) %12s (%8s) %9d | paper: %10.0f %10s %8.0f\n",
				r.Anc, r.Desc, r.Naive,
				r.Overlap, r.OverlapTime, noov, noovT, r.Real,
				r.PaperOverlap, paperNoov, r.PaperReal)
		}
	}
}

// RenderTable2 prints Table 2.
func RenderTable2(w io.Writer) error {
	renderQueryTable(w, "Table 2: Result size estimation for simple queries on DBLP", Table2(), true)
	return nil
}

// RenderTable4 prints Table 4.
func RenderTable4(w io.Writer) error {
	renderQueryTable(w, "Table 4: Result size estimation on the synthetic data set", Table4(), false)
	return nil
}

// RenderFig11 prints the Fig 11 series.
func RenderFig11(w io.Writer) error {
	fmt.Fprintln(w, "Fig 11: storage and accuracy vs grid size (overlap: department//email)")
	fmt.Fprintln(w, strings.Repeat("-", 72))
	fmt.Fprintf(w, "%8s %16s %16s %16s\n", "grid", "dept bytes", "email bytes", "est/real")
	for _, p := range Fig11() {
		fmt.Fprintf(w, "%8d %16d %16d %16.3f\n",
			p.GridSize, p.StorageAncestor, p.StorageDescendant, p.Ratio)
	}
	return nil
}

// RenderFig12 prints the Fig 12 series.
func RenderFig12(w io.Writer) error {
	fmt.Fprintln(w, "Fig 12: storage and accuracy vs grid size (no-overlap: article//cdrom)")
	fmt.Fprintln(w, strings.Repeat("-", 88))
	fmt.Fprintf(w, "%8s %14s %14s %14s %14s %12s\n",
		"grid", "hist(article)", "cvg(article)", "hist(cdrom)", "cvg(cdrom)", "est/real")
	for _, p := range Fig12() {
		fmt.Fprintf(w, "%8d %14d %14d %14d %14d %12.3f\n",
			p.GridSize, p.StorageHistAncestor, p.StorageCvgAncestor,
			p.StorageHistDesc, p.StorageCvgDesc, p.Ratio)
	}
	return nil
}

// RenderTheorem1 prints the Theorem 1 scaling check.
func RenderTheorem1(w io.Writer) error {
	fmt.Fprintln(w, "Theorem 1: non-zero position-histogram cells are O(g) (DBLP author)")
	fmt.Fprintln(w, strings.Repeat("-", 56))
	fmt.Fprintf(w, "%8s %14s %10s %10s\n", "grid", "non-zero", "g^2", "cells/g")
	for _, p := range Theorem1() {
		fmt.Fprintf(w, "%8d %14d %10d %10.2f\n",
			p.GridSize, p.NonZeroCells, p.GridSize*p.GridSize,
			float64(p.NonZeroCells)/float64(p.GridSize))
	}
	return nil
}

// RenderTheorem2 prints the Theorem 2 scaling check.
func RenderTheorem2(w io.Writer) error {
	fmt.Fprintln(w, "Theorem 2: partial-coverage cell pairs are O(g) (DBLP article)")
	fmt.Fprintln(w, strings.Repeat("-", 56))
	fmt.Fprintf(w, "%8s %14s %10s %10s\n", "grid", "partial", "g^2", "cells/g")
	for _, p := range Theorem2() {
		fmt.Fprintf(w, "%8d %14d %10d %10.2f\n",
			p.GridSize, p.PartialCells, p.GridSize*p.GridSize,
			float64(p.PartialCells)/float64(p.GridSize))
	}
	return nil
}

// RenderStorageSummary prints the §5.1 storage claim check.
func RenderStorageSummary(w io.Writer) error {
	s := StorageSummary()
	fmt.Fprintln(w, "Storage summary (paper §5.1: 63 predicates, ~6 KB total at 10x10)")
	fmt.Fprintln(w, strings.Repeat("-", 64))
	fmt.Fprintf(w, "predicates: %d\n", s.Predicates)
	fmt.Fprintf(w, "total histogram bytes: %d (%.1f per predicate)\n", s.TotalBytes, s.BytesPerPred)
	fmt.Fprintf(w, "tree nodes: %d\n", s.TreeNodes)
	return nil
}
