// Package exec executes twig queries with Volcano-style iterators,
// following a join order chosen by the planner. It is the consumer the
// paper's estimator exists for (the TIMBER query engine in the paper's
// context): the planner picks a join order from histogram estimates,
// exec runs it, and the per-step actual intermediate sizes can be
// compared against the predictions.
//
// An intermediate result is a set of bindings: one data node per
// pattern node joined so far. Each Volcano operator counts the tuples
// it emits, so a finished execution reports the true size of every
// intermediate result — the quantity the estimator predicts.
package exec

import (
	"context"
	"fmt"
	"sort"
	"time"

	"xmlest/internal/match"
	"xmlest/internal/pattern"
	"xmlest/internal/planner"
	"xmlest/internal/xmltree"
)

// ErrDeadline reports that an execution's time budget ran out before
// the result stream was drained. It wraps context.DeadlineExceeded so
// callers can classify with errors.Is against either sentinel.
var ErrDeadline = fmt.Errorf("exec: time budget exhausted: %w", context.DeadlineExceeded)

// deadlineCheckEvery is how many tuples the pull loop drains between
// deadline checks: frequent enough that one check interval is far
// below any sane budget, rare enough that time.Now stays off the
// per-tuple cost.
const deadlineCheckEvery = 1024

// Tuple is one partial binding: Tuple[i] is the data node bound to the
// i-th joined pattern node (in plan join order).
type Tuple []xmltree.NodeID

// Operator is a Volcano-style iterator over tuples.
type Operator interface {
	// Open prepares the operator for iteration.
	Open() error
	// Next returns the next tuple, or ok=false at end of stream. The
	// returned tuple is only valid until the next call.
	Next() (t Tuple, ok bool, err error)
	// Close releases resources. The operator may be re-Opened.
	Close() error
	// Emitted reports how many tuples the operator has produced since
	// Open — the actual intermediate result size.
	Emitted() int64
}

// Scan emits one single-column tuple per node of a predicate list.
type Scan struct {
	nodes   []xmltree.NodeID
	pos     int
	emitted int64
	buf     Tuple
}

// NewScan creates a scan over a start-sorted node list.
func NewScan(nodes []xmltree.NodeID) *Scan {
	return &Scan{nodes: nodes, buf: make(Tuple, 1)}
}

func (s *Scan) Open() error {
	s.pos, s.emitted = 0, 0
	return nil
}

func (s *Scan) Next() (Tuple, bool, error) {
	if s.pos >= len(s.nodes) {
		return nil, false, nil
	}
	s.buf[0] = s.nodes[s.pos]
	s.pos++
	s.emitted++
	return s.buf, true, nil
}

func (s *Scan) Close() error   { return nil }
func (s *Scan) Emitted() int64 { return s.emitted }

// BindJoin extends each input tuple with every data node of a candidate
// list that stands in the required structural relation to an
// already-bound column. It implements four access paths:
//
//   - descendants of the bound node (axis //, bound node is the pattern
//     parent): a binary-searched range of the start-sorted candidates;
//   - ancestors of the bound node (axis // upward): a walk up the tree
//     filtered by candidate membership;
//   - children / parent for axis /.
type BindJoin struct {
	input Operator
	// boundCol is the input column the new node relates to.
	boundCol int
	// cands is the new pattern node's start-sorted candidate list.
	cands []xmltree.NodeID
	// axis and upward define the structural relation: upward means the
	// new node is the pattern parent of the bound column.
	axis   pattern.Axis
	upward bool

	tree    *xmltree.Tree
	starts  []int                   // cands' start positions
	inCands map[xmltree.NodeID]bool // membership for upward paths
	cur     Tuple
	pending []xmltree.NodeID
	buf     Tuple
	emitted int64
}

// NewBindJoin constructs the operator.
func NewBindJoin(tree *xmltree.Tree, input Operator, boundCol int, cands []xmltree.NodeID, axis pattern.Axis, upward bool) *BindJoin {
	b := &BindJoin{
		input: input, boundCol: boundCol, cands: cands,
		axis: axis, upward: upward, tree: tree,
	}
	b.starts = make([]int, len(cands))
	for i, id := range cands {
		b.starts[i] = tree.Node(id).Start
	}
	if upward {
		b.inCands = make(map[xmltree.NodeID]bool, len(cands))
		for _, id := range cands {
			b.inCands[id] = true
		}
	}
	return b
}

func (b *BindJoin) Open() error {
	b.cur, b.pending, b.emitted = nil, nil, 0
	return b.input.Open()
}

func (b *BindJoin) Close() error { return b.input.Close() }

func (b *BindJoin) Emitted() int64 { return b.emitted }

func (b *BindJoin) Next() (Tuple, bool, error) {
	for {
		if len(b.pending) > 0 {
			v := b.pending[0]
			b.pending = b.pending[1:]
			if b.buf == nil {
				b.buf = make(Tuple, len(b.cur)+1)
			}
			copy(b.buf, b.cur)
			b.buf[len(b.cur)] = v
			b.emitted++
			return b.buf, true, nil
		}
		in, ok, err := b.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		// The input tuple buffer is reused by our child; keep a copy
		// while we expand its matches.
		if b.cur == nil || len(b.cur) != len(in) {
			b.cur = make(Tuple, len(in))
		}
		copy(b.cur, in)
		b.pending = b.expand(b.cur[b.boundCol])
	}
}

// expand returns the candidate nodes related to the bound node.
func (b *BindJoin) expand(bound xmltree.NodeID) []xmltree.NodeID {
	n := b.tree.Node(bound)
	switch {
	case !b.upward && b.axis == pattern.Descendant:
		lo := sort.SearchInts(b.starts, n.Start+1)
		hi := sort.SearchInts(b.starts, n.End)
		return b.cands[lo:hi]
	case !b.upward && b.axis == pattern.Child:
		var out []xmltree.NodeID
		for c := n.FirstChild; c != xmltree.InvalidNode; c = b.tree.Node(c).NextSibling {
			i := sort.SearchInts(b.starts, b.tree.Node(c).Start)
			if i < len(b.cands) && b.cands[i] == c {
				out = append(out, c)
			}
		}
		return out
	case b.upward && b.axis == pattern.Descendant:
		var out []xmltree.NodeID
		for p := n.Parent; p != xmltree.InvalidNode; p = b.tree.Node(p).Parent {
			if b.inCands[p] {
				out = append(out, p)
			}
		}
		return out
	default: // upward child axis: only the direct parent qualifies
		if p := n.Parent; p != xmltree.InvalidNode && b.inCands[p] {
			return []xmltree.NodeID{p}
		}
		return nil
	}
}

// Stats reports one execution.
type Stats struct {
	// Results is the final answer size.
	Results int64
	// StepActual[i] is the actual intermediate-result size after join
	// step i of the plan (StepActual[0] is the first scan's output).
	StepActual []int64
	// StepEstimate mirrors the plan's predicted sizes for convenience.
	StepEstimate []float64
}

// Execute runs a planner join order over the tree and returns the
// actual size of every intermediate result alongside the plan's
// estimates. The result count is exactly the pattern's answer size.
func Execute(t *xmltree.Tree, p *pattern.Pattern, plan *planner.Plan, resolve match.Resolver) (*Stats, error) {
	return ExecuteDeadline(t, p, plan, resolve, time.Time{})
}

// ExecuteDeadline is Execute with a wall-clock budget: once deadline
// passes (checked between tuple batches, so granularity is a fraction
// of any sane budget), the execution aborts with ErrDeadline instead
// of draining the rest of the result stream. The zero deadline
// disables the check. This is the shadow-execution entry point: a
// sampled live query's exact count must never hold a worker beyond
// its budget, however pathological the pattern.
func ExecuteDeadline(t *xmltree.Tree, p *pattern.Pattern, plan *planner.Plan, resolve match.Resolver, deadline time.Time) (*Stats, error) {
	if len(plan.Steps) == 0 {
		return nil, fmt.Errorf("exec: empty plan")
	}
	parent := map[*pattern.Node]*pattern.Node{}
	for _, e := range p.Edges() {
		parent[e[1]] = e[0]
	}
	colOf := map[*pattern.Node]int{plan.Steps[0].Added: 0}

	first, err := resolve(plan.Steps[0].Added.PredName())
	if err != nil {
		return nil, err
	}
	var root Operator = NewScan(first)
	ops := []Operator{root}
	for i, step := range plan.Steps[1:] {
		q := step.Added
		cands, err := resolve(q.PredName())
		if err != nil {
			return nil, err
		}
		var boundQ *pattern.Node
		var upward bool
		var axis pattern.Axis
		if pq, ok := parent[q]; ok {
			if _, bound := colOf[pq]; bound {
				boundQ, upward, axis = pq, false, q.Axis
			}
		}
		if boundQ == nil {
			// q must be the pattern parent of some bound node.
			for bq := range colOf {
				if parent[bq] == q {
					boundQ, upward, axis = bq, true, bq.Axis
					break
				}
			}
		}
		if boundQ == nil {
			return nil, fmt.Errorf("exec: plan step %d joins disconnected node %s", i+1, q.Test)
		}
		root = NewBindJoin(t, root, colOf[boundQ], cands, axis, upward)
		ops = append(ops, root)
		colOf[q] = len(colOf)
	}

	if err := root.Open(); err != nil {
		return nil, err
	}
	defer root.Close()
	var results int64
	check := deadlineCheckEvery
	for {
		_, ok, err := root.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		results++
		if !deadline.IsZero() {
			if check--; check <= 0 {
				if time.Now().After(deadline) {
					return nil, ErrDeadline
				}
				check = deadlineCheckEvery
			}
		}
	}
	stats := &Stats{Results: results}
	for i, op := range ops {
		stats.StepActual = append(stats.StepActual, op.Emitted())
		stats.StepEstimate = append(stats.StepEstimate, plan.Steps[i].Estimate)
	}
	return stats, nil
}

// TotalIntermediate sums the intermediate (non-final) tuple counts — a
// machine-independent proxy for plan execution cost.
func (s *Stats) TotalIntermediate() int64 {
	var total int64
	for i, n := range s.StepActual {
		if i == 0 || i == len(s.StepActual)-1 {
			continue // base scan and final result are plan-independent
		}
		total += n
	}
	return total
}
