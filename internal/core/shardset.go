package core

import (
	"encoding/binary"
	"fmt"
)

// XQS2 is the shard-set container format: a whole sharded summary in
// one blob. It wraps one XQS1 summary (see store.go) per shard together
// with the shard metadata needed to reconstruct the serving set, so a
// summary built incrementally — shard by shard — ships and loads as one
// artifact, exactly like the monolithic XQS1 blob did.
//
// Layout:
//
//	magic "XQS2"
//	uvarint shard count
//	per shard:
//	  uvarint shard id
//	  uvarint document count
//	  uvarint node count
//	  XQS1 summary blob (uvarint length + bytes)
const shardSetMagic = "XQS2"

// ShardSummary pairs one shard's estimator with its identity and size
// metadata, the unit the XQS2 container stores.
type ShardSummary struct {
	ID    uint64
	Docs  int
	Nodes int
	Est   *Estimator
}

// MarshalShardSet serializes a set of shard summaries into one XQS2
// blob, in slice order.
func MarshalShardSet(shards []ShardSummary) ([]byte, error) {
	buf := []byte(shardSetMagic)
	buf = binary.AppendUvarint(buf, uint64(len(shards)))
	for _, s := range shards {
		if s.Est == nil {
			return nil, fmt.Errorf("core: shard %d has no estimator", s.ID)
		}
		blob, err := s.Est.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", s.ID, err)
		}
		buf = binary.AppendUvarint(buf, s.ID)
		buf = binary.AppendUvarint(buf, uint64(s.Docs))
		buf = binary.AppendUvarint(buf, uint64(s.Nodes))
		buf = appendBlob(buf, blob)
	}
	return buf, nil
}

// UnmarshalShardSet reconstructs the shard summaries from an XQS2 blob.
// Each returned estimator is summary-only, exactly as if loaded through
// UnmarshalEstimator.
func UnmarshalShardSet(data []byte) ([]ShardSummary, error) {
	if !IsShardSetBlob(data) {
		return nil, fmt.Errorf("core: bad shard-set magic")
	}
	r := &blobReader{data: data, off: len(shardSetMagic)}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("core: shard count %d too large", n)
	}
	out := make([]ShardSummary, 0, n)
	for k := uint64(0); k < n; k++ {
		id, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		docs, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		nodes, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		blob, err := r.blob()
		if err != nil {
			return nil, err
		}
		est, err := UnmarshalEstimator(blob)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", id, err)
		}
		out = append(out, ShardSummary{ID: id, Docs: int(docs), Nodes: int(nodes), Est: est})
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("core: %d trailing bytes after shard set", len(data)-r.off)
	}
	return out, nil
}

// IsShardSetBlob reports whether the blob starts with the XQS2 magic —
// the dispatch check loaders use to accept both container formats.
func IsShardSetBlob(data []byte) bool {
	return len(data) >= len(shardSetMagic) && string(data[:len(shardSetMagic)]) == shardSetMagic
}
