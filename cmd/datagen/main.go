// Command datagen emits the repository's synthetic datasets as XML.
//
// Usage:
//
//	datagen -dataset dblp|hier|xmark|shakespeare [-scale 1.0] [-seed 2002] [-o out.xml]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xmlest/internal/datagen"
	"xmlest/internal/xmltree"
)

func main() {
	dataset := flag.String("dataset", "dblp", "dblp, hier, xmark or shakespeare")
	scale := flag.Float64("scale", 1.0, "dataset scale factor (dblp, hier)")
	seed := flag.Int64("seed", 2002, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var tree *xmltree.Tree
	switch *dataset {
	case "dblp":
		tree = datagen.GenerateDBLP(datagen.DBLPConfig{Seed: *seed, Scale: *scale})
	case "hier":
		tree = datagen.GenerateHier(datagen.HierConfig{Seed: *seed, Scale: *scale})
	case "xmark":
		tree = datagen.GenerateXMark(*seed, int(100**scale))
	case "shakespeare":
		tree = datagen.GenerateShakespeare(*seed, int(3**scale)+1)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := xmltree.WriteXML(w, tree, tree.Root()); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: %s: %d nodes, max depth %d\n",
		*dataset, tree.NumNodes(), tree.Stats().MaxDepth)
}
