package metrics

import (
	"math"
	"sync/atomic"
)

// qErrorBounds are the bucket upper bounds of q-error histograms.
// Q-error is max(est/real, real/est) with add-one smoothing, so every
// observation is >= 1 and most of a healthy estimator's mass lands
// between 1 and 2 — the low range is sliced finely while the tail
// doubles out to 10^6 (beyond which "wrong by a million x" needs no
// finer resolution).
var qErrorBounds = []float64{
	1, 1.05, 1.1, 1.2, 1.35, 1.5, 1.75, 2, 2.5, 3, 4, 5, 7.5, 10,
	15, 25, 50, 100, 250, 1000, 1e4, 1e6,
}

// FloatHistogram is a fixed-bucket histogram of non-negative float64
// observations over explicit bucket bounds — the float-valued sibling
// of ValueHistogram, built for q-error digests where the interesting
// resolution sits between 1 and 2 and an integer log grid would fold
// it all into one bucket. All methods are safe for concurrent use;
// Observe is lock-free (the float sum and max use CAS loops).
type FloatHistogram struct {
	// bounds[i] is bucket i's inclusive upper edge; observations above
	// the last bound land in an implicit +Inf bucket.
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1: the last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
	maxBits atomic.Uint64 // float64 bits of the running max
}

// NewQErrorHistogram returns a histogram over the q-error bucket
// partition (finely sliced in [1, 2], doubling out to 10^6).
func NewQErrorHistogram() *FloatHistogram { return NewFloatHistogram(qErrorBounds) }

// NewFloatHistogram returns a histogram over the given ascending
// upper bounds. The bounds slice is retained and must not be modified.
func NewFloatHistogram(bounds []float64) *FloatHistogram {
	return &FloatHistogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value; NaN is dropped, negatives clamp to zero.
func (h *FloatHistogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		cur := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(cur) + v)
		if h.sumBits.CompareAndSwap(cur, next) {
			break
		}
	}
	for {
		cur := h.maxBits.Load()
		if v <= math.Float64frombits(cur) || h.maxBits.CompareAndSwap(cur, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *FloatHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the running sum of observations.
func (h *FloatHistogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// FloatSummary is a point-in-time digest of a FloatHistogram.
// Quantiles are interpolated within buckets; Max is exact.
type FloatSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Summary digests the histogram. Concurrent Observes may land between
// the per-bucket reads; the digest is internally consistent with the
// counts it read.
func (h *FloatHistogram) Summary() FloatSummary {
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := FloatSummary{Count: total, Max: math.Float64frombits(h.maxBits.Load())}
	if total == 0 {
		return s
	}
	s.Mean = h.Sum() / float64(total)
	s.P50 = h.quantile(counts, total, 0.50)
	s.P90 = h.quantile(counts, total, 0.90)
	s.P99 = h.quantile(counts, total, 0.99)
	// A bucket's upper edge can overshoot the largest observation; the
	// tracked max is a tighter cap.
	for _, q := range []*float64{&s.P50, &s.P90, &s.P99} {
		if *q > s.Max {
			*q = s.Max
		}
	}
	return s
}

// quantile walks the bucket counts to the one holding rank p*total and
// interpolates linearly within its [lo, hi] extent. The +Inf bucket's
// extent is capped by the tracked max.
func (h *FloatHistogram) quantile(counts []uint64, total uint64, p float64) float64 {
	rank := p * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := math.Float64frombits(h.maxBits.Load())
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += float64(c)
	}
	return math.Float64frombits(h.maxBits.Load())
}
