// Package manifest is the durable catalog of a data directory: an
// atomically-renamed JSON file recording the live checkpointed shards
// (their XQS summary files, sizes and checksums), the serving-set
// version the checkpoint pinned, and the write-ahead-log truncation
// point — every WAL record with sequence <= WALSeq is fully contained
// in the checkpointed shards and never needs replay.
//
// Atomicity: Write lands the manifest as a whole or not at all (write
// to a temp file, fsync, rename over the previous manifest, fsync the
// directory), so a crash mid-checkpoint leaves the previous manifest
// — and the WAL records it still needs — intact. The recovery
// invariant is exactly that pairing: MANIFEST + WAL tail after WALSeq
// reconstruct every acknowledged batch.
package manifest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"xmlest/internal/fsio"
)

// FileName is the manifest's name inside a data directory.
const FileName = "MANIFEST.json"

// Format is the manifest format version this package reads and writes.
const Format = 1

// maxDecodeBytes bounds the manifest size the decoder accepts, so a
// corrupt or hostile file cannot force an unbounded allocation.
const maxDecodeBytes = 64 << 20

// Shard describes one checkpointed shard.
type Shard struct {
	// ID is the shard's id in the store that checkpointed it
	// (informational; recovery assigns fresh ids).
	ID uint64 `json:"id"`
	// File is the shard's XQS1 summary file, relative to the data
	// directory.
	File string `json:"file"`
	// Docs and Nodes are the shard's document and node counts.
	Docs  int `json:"docs"`
	Nodes int `json:"nodes"`
	// WALSeq is the highest WAL sequence whose documents the shard
	// covers (0 for bootstrap shards that never went through the WAL).
	WALSeq uint64 `json:"wal_seq"`
	// Bytes and CRC32 fingerprint the summary file (CRC32-C); load
	// verifies both before trusting the blob.
	Bytes int64  `json:"bytes"`
	CRC32 uint32 `json:"crc32"`
}

// Manifest is one checkpoint's durable description.
type Manifest struct {
	// FormatVersion is Format.
	FormatVersion int `json:"format_version"`
	// Version is the serving-set version the checkpoint pinned; after
	// recovery the store serves at a version >= it.
	Version uint64 `json:"version"`
	// WALSeq is the truncation point: records with sequence <= WALSeq
	// are fully represented by Shards and are not replayed.
	WALSeq uint64 `json:"wal_seq"`
	// GridSize is the histogram grid the shard summaries were built
	// with. Reopening a data directory with different options is an
	// error — the checkpointed summaries cannot be rebuilt.
	GridSize int `json:"grid_size"`
	// Shards lists the live shards in serving order.
	Shards []Shard `json:"shards"`
}

// Decode parses and validates a manifest image. It never panics on
// arbitrary input and rejects oversized input before allocating.
func Decode(data []byte) (*Manifest, error) {
	if len(data) > maxDecodeBytes {
		return nil, fmt.Errorf("manifest: %d bytes exceeds the %d-byte limit", len(data), maxDecodeBytes)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

func (m *Manifest) validate() error {
	if m.FormatVersion != Format {
		return fmt.Errorf("manifest: unsupported format version %d (want %d)", m.FormatVersion, Format)
	}
	if m.GridSize < 0 {
		return fmt.Errorf("manifest: negative grid size %d", m.GridSize)
	}
	seen := make(map[string]bool, len(m.Shards))
	for i, sh := range m.Shards {
		if sh.File == "" || !filepath.IsLocal(sh.File) {
			// Paths must stay inside the data directory: no "..", no
			// absolute paths — a tampered manifest must not read
			// arbitrary files.
			return fmt.Errorf("manifest: shard %d: non-local file %q", i, sh.File)
		}
		if seen[sh.File] {
			return fmt.Errorf("manifest: duplicate shard file %q", sh.File)
		}
		seen[sh.File] = true
		if sh.Docs < 0 || sh.Nodes < 0 || sh.Bytes < 0 {
			return fmt.Errorf("manifest: shard %d: negative size metadata", i)
		}
		if sh.WALSeq > m.WALSeq {
			return fmt.Errorf("manifest: shard %d covers WAL seq %d beyond the truncation point %d",
				i, sh.WALSeq, m.WALSeq)
		}
	}
	return nil
}

// Encode serializes the manifest (indented, for human inspection).
func (m *Manifest) Encode() ([]byte, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// Load reads the data directory's manifest. ok is false (with a nil
// error) when no manifest exists — a fresh directory.
func Load(dir string) (m *Manifest, ok bool, err error) {
	return LoadFS(fsio.OS, dir)
}

// LoadFS is Load over an explicit filesystem.
func LoadFS(fsys fsio.FS, dir string) (m *Manifest, ok bool, err error) {
	data, err := fsys.ReadFile(filepath.Join(dir, FileName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("manifest: %w", err)
	}
	m, err = Decode(data)
	if err != nil {
		return nil, false, err
	}
	return m, true, nil
}

// Write lands the manifest atomically: temp file, fsync, rename over
// FileName, fsync the directory. A crash at any point leaves either
// the previous manifest or the new one — never a torn mix.
func (m *Manifest) Write(dir string) error {
	return m.WriteFS(fsio.OS, dir)
}

// WriteFS is Write over an explicit filesystem. Any step failing —
// temp write, fsync, rename, directory fsync — leaves the previous
// manifest in place; the caller retries the whole write.
func (m *Manifest) WriteFS(fsys fsio.FS, dir string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, FileName+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("manifest: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, FileName)); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}
