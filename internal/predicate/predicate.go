// Package predicate implements the paper's predicate framework
// (Section 3.4): element-tag predicates, element-content predicates
// (exact, prefix, suffix, contains, numeric range), and boolean
// compositions, together with a Catalog that materializes, per
// predicate, the sorted list of satisfying nodes and detects the
// no-overlap property (Definition 2).
package predicate

import (
	"fmt"
	"strconv"
	"strings"

	"xmlest/internal/xmltree"
)

// Predicate is a boolean node predicate over a tree.
type Predicate interface {
	// Name is a stable, human-readable identifier used as the
	// histogram key (for example, `tag=faculty` or `text^=conf`).
	Name() string

	// Eval reports whether the node satisfies the predicate.
	Eval(t *xmltree.Tree, id xmltree.NodeID) bool
}

// Tag matches nodes whose element tag equals Value ("element-tag
// predicates" in the paper).
type Tag struct{ Value string }

func (p Tag) Name() string { return "tag=" + p.Value }
func (p Tag) Eval(t *xmltree.Tree, id xmltree.NodeID) bool {
	return t.Node(id).Tag == p.Value
}

// ContentEquals matches nodes whose text content equals Value exactly.
type ContentEquals struct{ Value string }

func (p ContentEquals) Name() string { return "text=" + p.Value }
func (p ContentEquals) Eval(t *xmltree.Tree, id xmltree.NodeID) bool {
	return t.Node(id).Text == p.Value
}

// ContentPrefix matches nodes whose text content starts with Value (the
// paper builds such predicates on the `cite` content, e.g. "conf",
// "journals").
type ContentPrefix struct{ Value string }

func (p ContentPrefix) Name() string { return "text^=" + p.Value }
func (p ContentPrefix) Eval(t *xmltree.Tree, id xmltree.NodeID) bool {
	return strings.HasPrefix(t.Node(id).Text, p.Value)
}

// ContentSuffix matches nodes whose text content ends with Value.
type ContentSuffix struct{ Value string }

func (p ContentSuffix) Name() string { return "text$=" + p.Value }
func (p ContentSuffix) Eval(t *xmltree.Tree, id xmltree.NodeID) bool {
	return strings.HasSuffix(t.Node(id).Text, p.Value)
}

// ContentContains matches nodes whose text content contains Value.
type ContentContains struct{ Value string }

func (p ContentContains) Name() string { return "text*=" + p.Value }
func (p ContentContains) Eval(t *xmltree.Tree, id xmltree.NodeID) bool {
	return strings.Contains(t.Node(id).Text, p.Value)
}

// NumericRange matches nodes whose text content parses as a number in
// [Lo, Hi] (used for year-style element-content predicates).
type NumericRange struct{ Lo, Hi float64 }

func (p NumericRange) Name() string {
	return fmt.Sprintf("num[%v,%v]", p.Lo, p.Hi)
}
func (p NumericRange) Eval(t *xmltree.Tree, id xmltree.NodeID) bool {
	v, err := strconv.ParseFloat(strings.TrimSpace(t.Node(id).Text), 64)
	return err == nil && v >= p.Lo && v <= p.Hi
}

// TagContent matches on both the tag and an exact content value, e.g.
// year=1990. The paper builds one primitive histogram per year value.
type TagContent struct{ Tag, Value string }

func (p TagContent) Name() string { return "tag=" + p.Tag + "&text=" + p.Value }
func (p TagContent) Eval(t *xmltree.Tree, id xmltree.NodeID) bool {
	n := t.Node(id)
	return n.Tag == p.Tag && n.Text == p.Value
}

// True matches every node. Its position histogram is the normalization
// constant the paper uses to convert counts to probabilities when
// estimating histograms for compound predicates.
type True struct{}

func (True) Name() string                            { return "TRUE" }
func (True) Eval(*xmltree.Tree, xmltree.NodeID) bool { return true }

// And matches nodes satisfying all parts.
type And struct{ Parts []Predicate }

func (p And) Name() string { return compositeName("AND", p.Parts) }
func (p And) Eval(t *xmltree.Tree, id xmltree.NodeID) bool {
	for _, q := range p.Parts {
		if !q.Eval(t, id) {
			return false
		}
	}
	return true
}

// Or matches nodes satisfying at least one part. The paper's compound
// predicates "1980's" and "1990's" are Or over ten per-year primitives.
type Or struct{ Parts []Predicate }

func (p Or) Name() string { return compositeName("OR", p.Parts) }
func (p Or) Eval(t *xmltree.Tree, id xmltree.NodeID) bool {
	for _, q := range p.Parts {
		if q.Eval(t, id) {
			return true
		}
	}
	return false
}

// Not matches nodes that do not satisfy the inner predicate.
type Not struct{ Inner Predicate }

func (p Not) Name() string { return "NOT(" + p.Inner.Name() + ")" }
func (p Not) Eval(t *xmltree.Tree, id xmltree.NodeID) bool {
	return !p.Inner.Eval(t, id)
}

// Named wraps a predicate with an explicit display name, so catalogs can
// expose paper-style names such as "1990's" for compound predicates.
type Named struct {
	Alias string
	Inner Predicate
}

func (p Named) Name() string { return p.Alias }
func (p Named) Eval(t *xmltree.Tree, id xmltree.NodeID) bool {
	return p.Inner.Eval(t, id)
}

func compositeName(op string, parts []Predicate) string {
	names := make([]string, len(parts))
	for i, p := range parts {
		names[i] = p.Name()
	}
	return op + "(" + strings.Join(names, ",") + ")"
}
