package core

import (
	"encoding/binary"
	"fmt"

	"xmlest/internal/histogram"
)

// Persistence for estimator summaries. A database system builds the
// histograms once (at load or ANALYZE time) and ships them with the
// catalog; estimation then runs without the data tree. MarshalBinary
// captures every summary structure — position histograms, coverage
// histograms, optional level histograms, the TRUE histogram and the
// overlap flags — and UnmarshalEstimator reconstructs a fully
// functional Estimator from the blob alone.
//
// Layout:
//
//	magic "XQS1"
//	uvarint predicate count
//	per predicate:
//	  uvarint name length, name bytes
//	  flag byte: bit0 no-overlap, bit1 has coverage, bit2 has levels
//	  position histogram blob (uvarint length + bytes)
//	  [coverage blob]   (uvarint length + bytes, if bit1)
//	  [levels]          (uvarint depth count, then per depth:
//	                     uvarint depth, histogram blob, if bit2)
//	TRUE histogram blob (uvarint length + bytes)
const summaryMagic = "XQS1"

const (
	flagNoOverlap   = 1 << 0
	flagHasCoverage = 1 << 1
	flagHasLevels   = 1 << 2
)

// MarshalBinary serializes every summary structure of the estimator.
func (e *Estimator) MarshalBinary() ([]byte, error) {
	buf := []byte(summaryMagic)
	names := e.Names()
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		var flag byte
		if !e.overlap[name] {
			flag |= flagNoOverlap
		}
		cov := e.covs[name]
		if cov != nil {
			flag |= flagHasCoverage
		}
		var lv *LevelHistograms
		if e.levels != nil {
			lv = e.levels[name]
		}
		if lv != nil {
			flag |= flagHasLevels
		}
		buf = append(buf, flag)
		hb, err := e.hists[name].MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = appendBlob(buf, hb)
		if cov != nil {
			cb, err := cov.MarshalBinary()
			if err != nil {
				return nil, err
			}
			buf = appendBlob(buf, cb)
		}
		if lv != nil {
			depths := lv.Depths()
			buf = binary.AppendUvarint(buf, uint64(len(depths)))
			for _, d := range depths {
				buf = binary.AppendUvarint(buf, uint64(d))
				db, err := lv.At(d).MarshalBinary()
				if err != nil {
					return nil, err
				}
				buf = appendBlob(buf, db)
			}
		}
	}
	tb, err := e.trueHist.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf = appendBlob(buf, tb)
	return buf, nil
}

// UnmarshalEstimator reconstructs an estimator from a summary blob.
// The result answers every estimation query; it has no catalog or data
// tree attached, so it cannot compute exact counts or be rebuilt with
// different options.
func UnmarshalEstimator(data []byte) (*Estimator, error) {
	if len(data) < len(summaryMagic) || string(data[:len(summaryMagic)]) != summaryMagic {
		return nil, fmt.Errorf("core: bad summary magic")
	}
	r := &blobReader{data: data, off: len(summaryMagic)}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("core: summary predicate count %d too large", n)
	}
	e := &Estimator{
		hists:   make(map[string]*histogram.Position, n),
		covs:    make(map[string]*histogram.Coverage),
		overlap: make(map[string]bool, n),
	}
	anyLevels := false
	for k := uint64(0); k < n; k++ {
		nameLen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		nameBytes, err := r.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		name := string(nameBytes)
		flag, err := r.byte()
		if err != nil {
			return nil, err
		}
		hb, err := r.blob()
		if err != nil {
			return nil, err
		}
		h, err := histogram.UnmarshalPosition(hb)
		if err != nil {
			return nil, fmt.Errorf("core: predicate %s: %w", name, err)
		}
		e.hists[name] = h
		e.overlap[name] = flag&flagNoOverlap == 0
		e.names = append(e.names, name)
		if flag&flagHasCoverage != 0 {
			cb, err := r.blob()
			if err != nil {
				return nil, err
			}
			cov, err := histogram.UnmarshalCoverage(cb)
			if err != nil {
				return nil, fmt.Errorf("core: coverage %s: %w", name, err)
			}
			e.covs[name] = cov
		}
		if flag&flagHasLevels != 0 {
			if !anyLevels {
				e.levels = make(map[string]*LevelHistograms)
				anyLevels = true
			}
			depthCount, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if depthCount > 1<<16 {
				return nil, fmt.Errorf("core: depth count %d too large", depthCount)
			}
			lv := &LevelHistograms{byDepth: make(map[int]*histogram.Position, depthCount)}
			for d := uint64(0); d < depthCount; d++ {
				depth, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				db, err := r.blob()
				if err != nil {
					return nil, err
				}
				dh, err := histogram.UnmarshalPosition(db)
				if err != nil {
					return nil, fmt.Errorf("core: levels %s depth %d: %w", name, depth, err)
				}
				lv.byDepth[int(depth)] = dh
				lv.grid = dh.Grid()
			}
			e.levels[name] = lv
		}
	}
	tb, err := r.blob()
	if err != nil {
		return nil, err
	}
	trueHist, err := histogram.UnmarshalPosition(tb)
	if err != nil {
		return nil, fmt.Errorf("core: TRUE histogram: %w", err)
	}
	e.trueHist = trueHist
	e.grid = trueHist.Grid()
	for name, h := range e.hists {
		if !h.Grid().Equal(e.grid) {
			return nil, fmt.Errorf("core: predicate %s grid differs from TRUE grid", name)
		}
	}
	return e, nil
}

// Names returns the estimator's predicate names. For estimators built
// from a catalog they follow catalog registration order, with any
// synthesized predicates appended; for estimators loaded from a summary
// blob they follow the stored order.
func (e *Estimator) Names() []string {
	var out []string
	if e.catalog != nil {
		out = append(out, e.catalog.Names()...)
	}
	out = append(out, e.names...)
	return out
}

func appendBlob(buf, blob []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(blob)))
	return append(buf, blob...)
}

type blobReader struct {
	data []byte
	off  int
}

func (r *blobReader) byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("core: truncated summary")
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *blobReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, fmt.Errorf("core: truncated summary")
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *blobReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("core: bad uvarint in summary")
	}
	r.off += n
	return v, nil
}

func (r *blobReader) blob() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	return r.bytes(int(n))
}
