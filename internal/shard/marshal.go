package shard

import (
	"xmlest/internal/core"
)

// Marshal serializes the set's summaries for opts into an XQS2
// container blob: one XQS1 summary per shard plus shard metadata.
func (s *Set) Marshal(opts core.Options) ([]byte, error) {
	sums, err := s.Summaries(opts)
	if err != nil {
		return nil, err
	}
	return core.MarshalShardSet(sums)
}

// LoadSet reconstructs a serving set of summary-only shards from an
// XQS2 blob. The shards estimate but cannot count exactly, gain
// predicates, or compact — the same contract as a summary-only
// estimator loaded from an XQS1 blob.
func LoadSet(data []byte) (*Set, error) {
	sums, err := core.UnmarshalShardSet(data)
	if err != nil {
		return nil, err
	}
	return SetFromSummaries(sums...), nil
}

// SetFromSummaries wraps prebuilt summaries (for example one loaded
// XQS1 estimator) into a serving set of summary-only shards.
func SetFromSummaries(sums ...core.ShardSummary) *Set {
	shards := make([]*Shard, len(sums))
	for i, ss := range sums {
		shards[i] = &Shard{id: ss.ID, docs: ss.Docs, nodes: ss.Nodes, prebuilt: ss.Est}
	}
	return &Set{version: 1, shards: shards}
}
