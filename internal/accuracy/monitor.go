package accuracy

// This file is the online half of the package: sampled live estimates
// are shadow-executed against the exact engine off the serving path,
// and the observed q-errors are digested into the same metrics the
// offline evaluator reports. The paper's answer-size-feedback story
// made continuous — the estimator's production error distribution is
// measured from real traffic, not a hand-picked query set.

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"xmlest/internal/metrics"
)

// ErrUnverifiable reports that a sampled pattern cannot be
// shadow-executed: the serving snapshot holds summary-only shards, so
// an exact count is impossible. It is a classification, not a failure
// — the estimate may be perfect; nothing can check.
var ErrUnverifiable = errors.New("accuracy: pattern unverifiable against summary-only shards")

// ExecFunc computes the exact answer size of one sampled pattern
// against a pinned snapshot, aborting once deadline passes (zero
// deadline means unbudgeted). Implementations signal classification
// through errors.Is: context.DeadlineExceeded for a blown budget,
// ErrUnverifiable for summary-only snapshots.
type ExecFunc func(deadline time.Time) (float64, error)

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	// SampleEvery shadow-executes 1 in N estimates; <= 0 disables
	// sampling entirely (Sampled always reports false).
	SampleEvery int
	// Workers is the shadow-execution pool size (default 1). Exact
	// counting competes with serving for CPU; one worker plus the
	// queue bound caps the interference.
	Workers int
	// QueueSize bounds the pending-job queue (default 64). A full
	// queue drops the sample and bumps the dropped counter — the
	// serving path never blocks on verification.
	QueueSize int
	// Budget is the per-execution wall-clock budget (default 200ms,
	// negative disables). A pathological pattern costs one budget, not
	// a worker.
	Budget time.Duration
	// Patterns, when set, receives per-pattern q-error observations.
	Patterns *metrics.PatternStats
}

// Monitor samples estimates and shadow-executes them on a bounded
// background pool. Sampled is the only hot-path method: one atomic
// increment, no allocation, nil-safe (a nil Monitor never samples).
type Monitor struct {
	cfg  MonitorConfig
	reqs atomic.Uint64

	sampled      atomic.Uint64
	dropped      atomic.Uint64
	verified     atomic.Uint64
	deadlined    atomic.Uint64
	unverifiable atomic.Uint64
	failed       atomic.Uint64
	relErrBits   atomic.Uint64 // float64 bits of the summed relative error

	qerr *metrics.FloatHistogram

	jobs      chan monitorJob
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

type monitorJob struct {
	pattern  string
	estimate float64
	exec     ExecFunc
}

// NewMonitor starts the worker pool and returns the monitor. Close
// must be called to stop the workers; pending jobs are abandoned, not
// drained — shutdown never waits on shadow executions.
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Budget == 0 {
		cfg.Budget = 200 * time.Millisecond
	}
	m := &Monitor{
		cfg:  cfg,
		qerr: metrics.NewQErrorHistogram(),
		jobs: make(chan monitorJob, cfg.QueueSize),
		done: make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Sampled reports whether the current estimate should be
// shadow-executed: true for 1 in SampleEvery calls. Nil-safe and
// allocation-free (the trace.Tracer sampling idiom), so the unsampled
// /estimate path pays one atomic increment.
func (m *Monitor) Sampled() bool {
	if m == nil || m.cfg.SampleEvery <= 0 {
		return false
	}
	return m.reqs.Add(1)%uint64(m.cfg.SampleEvery) == 0
}

// Submit enqueues one sampled estimate for shadow execution. It never
// blocks: a full queue (or a closed monitor) drops the job and bumps
// the dropped counter. exec must capture its own pinned snapshot — the
// monitor knows nothing about shards.
func (m *Monitor) Submit(pattern string, estimate float64, exec ExecFunc) {
	if m == nil {
		return
	}
	m.sampled.Add(1)
	select {
	case <-m.done:
		// Checked before the send so a closed monitor deterministically
		// drops instead of parking jobs in a queue nothing drains. A
		// Submit racing Close can still win the send; the queued job is
		// simply abandoned.
		m.dropped.Add(1)
		return
	default:
	}
	select {
	case m.jobs <- monitorJob{pattern: pattern, estimate: estimate, exec: exec}:
	default:
		m.dropped.Add(1)
	}
}

func (m *Monitor) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		case j := <-m.jobs:
			m.run(j)
		}
	}
}

// run executes one job and classifies the outcome: verified (feed the
// digests), deadline (budget blown), unverifiable (summary-only
// snapshot), or failed (anything else — parse drift, unknown
// predicates).
func (m *Monitor) run(j monitorJob) {
	var deadline time.Time
	if m.cfg.Budget > 0 {
		deadline = time.Now().Add(m.cfg.Budget)
	}
	real, err := j.exec(deadline)
	switch {
	case err == nil:
		m.verified.Add(1)
		q := QError(j.estimate, real)
		m.qerr.Observe(q)
		addFloat(&m.relErrBits, math.Abs(j.estimate-real)/math.Max(real, 1))
		if m.cfg.Patterns != nil {
			m.cfg.Patterns.ObserveQError(j.pattern, q)
		}
	case errors.Is(err, context.DeadlineExceeded):
		m.deadlined.Add(1)
	case errors.Is(err, ErrUnverifiable):
		m.unverifiable.Add(1)
	default:
		m.failed.Add(1)
	}
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		cur := bits.Load()
		next := math.Float64bits(math.Float64frombits(cur) + v)
		if bits.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Close stops the workers. Queued-but-unstarted jobs are dropped;
// in-flight executions finish within their budget. Safe to call more
// than once and on a nil monitor.
func (m *Monitor) Close() {
	if m == nil {
		return
	}
	m.closeOnce.Do(func() {
		close(m.done)
		m.wg.Wait()
	})
}

// MonitorSnapshot is a point-in-time digest for /stats.
type MonitorSnapshot struct {
	SampleEvery int     `json:"sample_every"`
	BudgetMS    float64 `json:"budget_ms"`

	Sampled      uint64 `json:"sampled"`
	Dropped      uint64 `json:"dropped"`
	Verified     uint64 `json:"verified"`
	Deadline     uint64 `json:"deadline"`
	Unverifiable uint64 `json:"unverifiable"`
	Failed       uint64 `json:"failed"`

	// QError digests the verified estimates' q-errors.
	QError metrics.FloatSummary `json:"qerror"`
	// MeanRelErr is the mean of |est-real| / max(real, 1) over
	// verified estimates.
	MeanRelErr float64 `json:"mean_rel_err"`
}

// Snapshot digests the monitor's counters and q-error distribution.
func (m *Monitor) Snapshot() MonitorSnapshot {
	s := MonitorSnapshot{
		SampleEvery:  m.cfg.SampleEvery,
		BudgetMS:     float64(m.cfg.Budget) / float64(time.Millisecond),
		Sampled:      m.sampled.Load(),
		Dropped:      m.dropped.Load(),
		Verified:     m.verified.Load(),
		Deadline:     m.deadlined.Load(),
		Unverifiable: m.unverifiable.Load(),
		Failed:       m.failed.Load(),
		QError:       m.qerr.Summary(),
	}
	if s.Verified > 0 {
		s.MeanRelErr = math.Float64frombits(m.relErrBits.Load()) / float64(s.Verified)
	}
	return s
}

// Collect exports the monitor's Prometheus families: the q-error
// histogram plus the sampling-pipeline counters.
func (m *Monitor) Collect(e *metrics.Expo) {
	e.HistogramFamily("xqest_accuracy_qerror",
		"Shadow-verified estimate q-error (max(est/real, real/est), add-one smoothed).")
	e.FloatSamples("xqest_accuracy_qerror", m.qerr)
	e.Counter("xqest_accuracy_sampled_total",
		"Estimates sampled for shadow execution.", float64(m.sampled.Load()))
	e.Counter("xqest_accuracy_dropped_total",
		"Sampled estimates dropped on queue overflow or shutdown.", float64(m.dropped.Load()))
	e.Counter("xqest_accuracy_verified_total",
		"Shadow executions that produced an exact count.", float64(m.verified.Load()))
	e.Counter("xqest_accuracy_deadline_total",
		"Shadow executions aborted by the time budget.", float64(m.deadlined.Load()))
	e.Counter("xqest_accuracy_unverifiable_total",
		"Sampled estimates unverifiable against summary-only shards.", float64(m.unverifiable.Load()))
	e.Counter("xqest_accuracy_failed_total",
		"Shadow executions that failed outright.", float64(m.failed.Load()))
}
