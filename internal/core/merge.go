package core

import (
	"fmt"
	"sort"

	"xmlest/internal/histogram"
)

// Summary folding: MergeSummaries turns a list of per-shard summaries
// into one monolithic estimator over the concatenated grid — the
// document-aligned grid whose buckets are the shard grids' buckets laid
// side by side, so no bucket spans a shard boundary. Under that grid
// the sharded decomposition is exact (see DESIGN.md, "Shard
// lifecycle"): every estimation formula is per-cell local and
// index-translation invariant, and cross-shard cell pairs contribute
// zero, so the folded estimator reproduces the per-shard fan-out sum
// to float-accumulation order. Unlike a compaction rebuild, the fold
// touches only the summaries — O(total non-zero cells), no documents —
// which is what lets the shard store refresh its merged serving view
// after every mutation.

// MergedPredicateMixed marks predicate names whose per-shard summaries
// disagree on the no-overlap property or on coverage availability.
// Per-shard fan-out runs a different estimation algorithm per shard for
// such a predicate (Fig 10 where coverage exists, the primitive Fig 6
// elsewhere), which a single folded estimator cannot reproduce; the
// folded estimator carries the predicate conservatively (overlap, no
// coverage) and callers needing fan-out equivalence must route queries
// touching it to the fan-out path.
type MergedPredicateMixed = map[string]bool

// MergeSummaries folds per-shard summaries into one estimator on the
// concatenated grid. Parts must be non-nil; summaries with level
// histograms cannot be folded (the parent-child refinement is not
// carried by NewEstimatorFromHistograms-style estimators) and return an
// error. The second result reports predicates with mixed per-shard
// no-overlap/coverage state (see MergedPredicateMixed).
func MergeSummaries(parts []*Estimator) (*Estimator, MergedPredicateMixed, error) {
	if len(parts) == 0 {
		return nil, nil, fmt.Errorf("core: MergeSummaries with no summaries")
	}
	mergedSize := 0
	for i, p := range parts {
		if p == nil {
			return nil, nil, fmt.Errorf("core: nil summary at index %d", i)
		}
		if p.levels != nil {
			return nil, nil, fmt.Errorf("core: cannot fold summaries with level histograms")
		}
		mergedSize += p.grid.Size()
	}
	if mergedSize > histogram.MaxGridSize {
		return nil, nil, fmt.Errorf("core: concatenated grid size %d exceeds the supported maximum %d",
			mergedSize, histogram.MaxGridSize)
	}

	// Concatenated grid: each part contributes its bucket widths as one
	// contiguous block; block s starts at bucket offset Σ_{t<s} g_t.
	bounds := make([]int, 1, mergedSize+1)
	offsets := make([]int, len(parts))
	base := 0
	for s, p := range parts {
		offsets[s] = len(bounds) - 1
		pb := p.grid.Bounds()
		for i := 1; i < len(pb); i++ {
			bounds = append(bounds, base+pb[i])
		}
		base += p.grid.MaxPos()
	}
	grid, err := histogram.NewGrid(bounds)
	if err != nil {
		return nil, nil, fmt.Errorf("core: concatenated grid: %w", err)
	}

	e := &Estimator{
		grid:     grid,
		trueHist: histogram.NewPosition(grid),
		hists:    make(map[string]*histogram.Position),
		covs:     make(map[string]*histogram.Coverage),
		overlap:  make(map[string]bool),
	}
	translate := func(dst *histogram.Position, src *histogram.Position, off int) {
		for _, c := range src.NonZeroCells() {
			dst.Add(off+c.I, off+c.J, c.Count)
		}
	}
	for s, p := range parts {
		translate(e.trueHist, p.trueHist, offsets[s])
	}

	// Per predicate: union the position histograms block-diagonally and
	// fold coverage when every holding part agrees the predicate is
	// no-overlap with coverage available.
	mixed := make(MergedPredicateMixed)
	type predState struct {
		overlap     bool
		hasCoverage bool
	}
	states := make(map[string]*predState)
	for _, p := range parts {
		for _, name := range p.Names() {
			st := states[name]
			overlap := p.overlap[name]
			hasCov := p.covs[name] != nil
			if st == nil {
				states[name] = &predState{overlap: overlap, hasCoverage: hasCov}
				continue
			}
			if st.overlap != overlap || st.hasCoverage != hasCov {
				mixed[name] = true
				st.overlap = true
				st.hasCoverage = false
			}
		}
	}
	names := make([]string, 0, len(states))
	for name := range states {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := states[name]
		h := histogram.NewPosition(grid)
		var cov *histogram.Coverage
		if st.hasCoverage {
			cov = histogram.NewCoverage(grid)
		}
		for s, p := range parts {
			ph, ok := p.hists[name]
			if !ok {
				continue
			}
			off := offsets[s]
			translate(h, ph, off)
			if cov != nil {
				p.covs[name].EachFrac(func(i, j, m, n int, f float64) {
					cov.SetFrac(off+i, off+j, off+m, off+n, f)
				})
			}
		}
		e.hists[name] = h
		e.overlap[name] = st.overlap
		if cov != nil {
			e.covs[name] = cov
		}
		e.names = append(e.names, name)
	}
	return e, mixed, nil
}
