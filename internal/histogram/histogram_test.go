package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

func TestUniformGrid(t *testing.T) {
	g, err := NewUniformGrid(10, 100)
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	if g.Size() != 10 || g.MaxPos() != 100 {
		t.Fatalf("size=%d maxPos=%d", g.Size(), g.MaxPos())
	}
	for pos := 0; pos < 100; pos++ {
		b := g.Bucket(pos)
		if pos < g.Lo(b) || pos >= g.Hi(b) {
			t.Fatalf("pos %d mapped to bucket %d [%d,%d)", pos, b, g.Lo(b), g.Hi(b))
		}
	}
	if !g.OnDiagonal(3, 3) || g.OnDiagonal(3, 4) {
		t.Errorf("OnDiagonal wrong")
	}
}

func TestUniformGridUnevenWidths(t *testing.T) {
	g, err := NewUniformGrid(3, 10)
	if err != nil {
		t.Fatalf("NewUniformGrid: %v", err)
	}
	// Bounds 0,3,6,10: widths differ by at most 1... (3,3,4).
	want := []int{0, 3, 6, 10}
	for i, b := range g.Bounds() {
		if b != want[i] {
			t.Errorf("bounds[%d] = %d, want %d", i, b, want[i])
		}
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := NewUniformGrid(0, 10); err == nil {
		t.Errorf("grid size 0: want error")
	}
	if _, err := NewUniformGrid(10, 5); err == nil {
		t.Errorf("maxPos < g: want error")
	}
}

func TestEquiDepthGrid(t *testing.T) {
	// Cluster positions near 0: equi-depth bounds should be denser there.
	positions := make([]int, 0, 100)
	for i := 0; i < 90; i++ {
		positions = append(positions, i%30)
	}
	for i := 0; i < 10; i++ {
		positions = append(positions, 900+i)
	}
	g, err := NewEquiDepthGrid(5, positions, 1000)
	if err != nil {
		t.Fatalf("NewEquiDepthGrid: %v", err)
	}
	if g.Size() != 5 {
		t.Fatalf("size = %d, want 5", g.Size())
	}
	if g.Bounds()[1] > 100 {
		t.Errorf("first boundary %d should be inside the dense cluster", g.Bounds()[1])
	}
	for pos := 0; pos < 1000; pos += 7 {
		b := g.Bucket(pos)
		if pos < g.Lo(b) || pos >= g.Hi(b) {
			t.Fatalf("pos %d mapped to bucket %d [%d,%d)", pos, b, g.Lo(b), g.Hi(b))
		}
	}
}

func TestEquiDepthGridDegenerate(t *testing.T) {
	// All samples identical: must still produce a valid grid.
	g, err := NewEquiDepthGrid(4, []int{5, 5, 5, 5, 5}, 100)
	if err != nil {
		t.Fatalf("NewEquiDepthGrid: %v", err)
	}
	if g.MaxPos() != 100 {
		t.Errorf("MaxPos = %d, want 100", g.MaxPos())
	}
}

func fig1Setup(t *testing.T, gsize int) (*xmltree.Tree, *predicate.Catalog, Grid) {
	t.Helper()
	tr := xmltree.Fig1Document()
	c := predicate.NewCatalog(tr)
	c.AddAllTags()
	grid, err := NewUniformGrid(gsize, tr.MaxPos)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	return tr, c, grid
}

func TestBuildPositionTotals(t *testing.T) {
	tr, c, grid := fig1Setup(t, 4)
	for _, name := range c.Names() {
		e := c.MustGet(name)
		h := BuildPosition(tr, e.Nodes, grid)
		if h.Total() != float64(e.Count()) {
			t.Errorf("%s: total = %v, want %d", name, h.Total(), e.Count())
		}
	}
	trueHist := BuildTrue(tr, grid)
	if trueHist.Total() != float64(tr.NumNodes()) {
		t.Errorf("TRUE total = %v, want %d", trueHist.Total(), tr.NumNodes())
	}
}

func TestUpperTriangleOnly(t *testing.T) {
	tr, c, grid := fig1Setup(t, 5)
	h := BuildPosition(tr, c.MustGet("tag=RA").Nodes, grid)
	for i := 0; i < 5; i++ {
		for j := 0; j < i; j++ {
			if h.Count(i, j) != 0 {
				t.Errorf("cell (%d,%d) below diagonal non-zero", i, j)
			}
		}
	}
}

func TestCheckLemma1OnBuiltHistograms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 3+r.Intn(80))
		grid, err := NewUniformGrid(1+r.Intn(8), tr.MaxPos)
		if err != nil {
			return true // tiny tree, smaller than grid; skip
		}
		for _, tag := range tr.Tags() {
			h := BuildPosition(tr, tr.NodesWithTag(tag), grid)
			if err := h.CheckLemma1(); err != nil {
				t.Logf("tag %s: %v", tag, err)
				return false
			}
		}
		if err := BuildTrue(tr, grid).CheckLemma1(); err != nil {
			t.Logf("TRUE: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randomTree(r *rand.Rand, n int) *xmltree.Tree {
	b := xmltree.NewBuilder()
	tags := []string{"a", "b", "c", "d"}
	open := 0
	for i := 0; i < n; i++ {
		if open > 0 && r.Intn(3) == 0 {
			b.End()
			open--
		}
		b.Begin(tags[r.Intn(len(tags))])
		open++
	}
	return b.Tree()
}

func TestPositionCloneScaleSet(t *testing.T) {
	tr, c, grid := fig1Setup(t, 4)
	h := BuildPosition(tr, c.MustGet("tag=TA").Nodes, grid)
	cl := h.Clone()
	cl.Scale(2)
	if cl.Total() != 2*h.Total() {
		t.Errorf("scale: total = %v, want %v", cl.Total(), 2*h.Total())
	}
	if h.Total() != 5 {
		t.Errorf("clone mutated original: %v", h.Total())
	}
	cl.Set(0, 0, 7)
	want := 2*h.Total() - 2*h.Count(0, 0) + 7
	if math.Abs(cl.Total()-want) > 1e-9 {
		t.Errorf("set: total = %v, want %v", cl.Total(), want)
	}
}

func TestNonZeroAndEachNonZero(t *testing.T) {
	tr, c, grid := fig1Setup(t, 6)
	h := BuildPosition(tr, c.MustGet("tag=faculty").Nodes, grid)
	seen := 0
	var sum float64
	h.EachNonZero(func(i, j int, cnt float64) {
		seen++
		sum += cnt
		if cnt == 0 {
			t.Errorf("EachNonZero visited zero cell (%d,%d)", i, j)
		}
	})
	if seen != h.NonZero() {
		t.Errorf("EachNonZero visited %d cells, NonZero() = %d", seen, h.NonZero())
	}
	if sum != h.Total() {
		t.Errorf("EachNonZero sum = %v, total = %v", sum, h.Total())
	}
}

func TestMarshalRoundTripIntegral(t *testing.T) {
	tr, c, grid := fig1Setup(t, 8)
	for _, name := range []string{"tag=faculty", "tag=TA", "tag=RA"} {
		h := BuildPosition(tr, c.MustGet(name).Nodes, grid)
		data, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := UnmarshalPosition(data)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !got.Grid().Equal(h.Grid()) {
			t.Errorf("%s: grid mismatch", name)
		}
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if got.Count(i, j) != h.Count(i, j) {
					t.Errorf("%s: cell (%d,%d) = %v, want %v", name, i, j, got.Count(i, j), h.Count(i, j))
				}
			}
		}
	}
}

func TestMarshalRoundTripFractional(t *testing.T) {
	grid := MustUniformGrid(4, 100)
	h := NewPosition(grid)
	h.Set(0, 3, 1.25)
	h.Set(1, 2, 0.6)
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalPosition(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Count(0, 3) != 1.25 || got.Count(1, 2) != 0.6 {
		t.Errorf("fractional round trip lost values: %v %v", got.Count(0, 3), got.Count(1, 2))
	}
}

func TestMarshalRoundTripNonUniformGrid(t *testing.T) {
	g, err := NewEquiDepthGrid(4, []int{1, 2, 3, 50, 51, 52, 90}, 100)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	h := NewPosition(g)
	h.Set(0, 2, 5)
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalPosition(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !got.Grid().Equal(g) {
		t.Errorf("non-uniform grid not preserved: %v vs %v", got.Grid().Bounds(), g.Bounds())
	}
	if got.Count(0, 2) != 5 {
		t.Errorf("count lost")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{'X', 1, 2, 3},
		{'P'},
		{'P', 1},
		{'P', 1, 200}, // truncated uvarint chain
	}
	for _, c := range cases {
		if _, err := UnmarshalPosition(c); err == nil {
			t.Errorf("UnmarshalPosition(%v): want error", c)
		}
	}
}

func TestTheorem1LinearNonZeroCells(t *testing.T) {
	// Build a sizable random tree and check that non-zero cells grow
	// roughly linearly in g, far below g².
	r := rand.New(rand.NewSource(42))
	tr := randomTree(r, 20000)
	nodes := tr.NodesWithTag("a")
	if len(nodes) < 1000 {
		t.Fatalf("random tree too small: %d 'a' nodes", len(nodes))
	}
	for _, g := range []int{10, 20, 40, 80} {
		grid := MustUniformGrid(g, tr.MaxPos)
		h := BuildPosition(tr, nodes, grid)
		nz := h.NonZero()
		// Theorem 1: O(g). Allow a generous constant (4g), but verify it
		// is far below the quadratic bound.
		if nz > 4*g {
			t.Errorf("g=%d: non-zero cells = %d > 4g", g, nz)
		}
	}
}

func TestCoverageFractions(t *testing.T) {
	tr := xmltree.Fig1Document()
	c := predicate.NewCatalog(tr)
	fac := c.Add(predicate.Tag{Value: "faculty"})
	if !fac.NoOverlap {
		t.Fatalf("faculty must be no-overlap")
	}
	grid := MustUniformGrid(2, tr.MaxPos)
	trueHist := BuildTrue(tr, grid)
	cov, err := BuildCoverage(tr, fac.Nodes, trueHist)
	if err != nil {
		t.Fatalf("BuildCoverage: %v", err)
	}
	total := 0.0
	cov.EachFrac(func(i, j, m, n int, f float64) {
		if f <= 0 || f > 1 {
			t.Errorf("fraction out of range: Cvg[%d][%d][%d][%d] = %v", i, j, m, n, f)
		}
		total += f * trueHist.Count(i, j)
	})
	// The sum of fraction*population over all cells equals the number of
	// nodes with a faculty ancestor. Count directly for cross-check.
	want := 0.0
	for id := xmltree.NodeID(1); int(id) < len(tr.Nodes); id++ {
		for _, f := range fac.Nodes {
			if tr.IsAncestor(f, id) {
				want++
				break
			}
		}
	}
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("covered node mass = %v, want %v", total, want)
	}
	for i := 0; i < 2; i++ {
		for j := i; j < 2; j++ {
			if cf := cov.CoveredFrac(i, j); cf < -1e-9 || cf > 1+1e-9 {
				t.Errorf("CoveredFrac(%d,%d) = %v outside [0,1]", i, j, cf)
			}
		}
	}
}

func TestCoverageRejectsOverlappingPredicate(t *testing.T) {
	tr, err := xmltree.ParseString(`<r><s><s/></s></r>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	grid := MustUniformGrid(2, tr.MaxPos)
	trueHist := BuildTrue(tr, grid)
	if _, err := BuildCoverage(tr, tr.NodesWithTag("s"), trueHist); err == nil {
		t.Errorf("BuildCoverage on nested predicate: want error")
	}
}

func TestTheorem2LinearPartialCoverage(t *testing.T) {
	// Generate a wide tree of non-nesting sections each with children;
	// partial-coverage cells should grow O(g).
	b := xmltree.NewBuilder()
	r := rand.New(rand.NewSource(7))
	b.Begin("root")
	for i := 0; i < 3000; i++ {
		b.Begin("sec")
		for k, kn := 0, 1+r.Intn(4); k < kn; k++ {
			b.Element("item", "")
		}
		b.End()
	}
	b.End()
	tr := b.Tree()
	for _, g := range []int{10, 20, 40} {
		grid := MustUniformGrid(g, tr.MaxPos)
		trueHist := BuildTrue(tr, grid)
		cov, err := BuildCoverage(tr, tr.NodesWithTag("sec"), trueHist)
		if err != nil {
			t.Fatalf("g=%d: %v", g, err)
		}
		if pc := cov.PartialCells(); pc > 6*g {
			t.Errorf("g=%d: partial cells = %d > 6g", g, pc)
		}
	}
}

func TestSynthesizeAndOrNot(t *testing.T) {
	tr, err := xmltree.ParseString(`<db>
		<y>1990</y><y>1991</y><y>1980</y><y>1990</y><t>x</t>
	</db>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c := predicate.NewCatalog(tr)
	grid := MustUniformGrid(3, tr.MaxPos)
	trueHist := BuildTrue(tr, grid)

	hTag := BuildPosition(tr, c.Add(predicate.Tag{Value: "y"}).Nodes, grid)
	hTxt := BuildPosition(tr, c.Add(predicate.ContentEquals{Value: "1990"}).Nodes, grid)

	and, err := SynthesizeAnd(trueHist, hTag, hTxt)
	if err != nil {
		t.Fatalf("SynthesizeAnd: %v", err)
	}
	// Exact intersection count is 2; independence within cells may move
	// it, but the estimate must stay within [0, min(totals)].
	if and.Total() < 0 || and.Total() > math.Min(hTag.Total(), hTxt.Total())+1e-9 {
		t.Errorf("AND estimate %v outside [0, min] bound", and.Total())
	}

	or, err := SynthesizeOr(trueHist, hTag, hTxt)
	if err != nil {
		t.Fatalf("SynthesizeOr: %v", err)
	}
	if or.Total() < math.Max(hTag.Total(), hTxt.Total())-1e-9 || or.Total() > hTag.Total()+hTxt.Total()+1e-9 {
		t.Errorf("OR estimate %v outside [max, sum] bounds", or.Total())
	}

	not, err := SynthesizeNot(trueHist, hTag)
	if err != nil {
		t.Fatalf("SynthesizeNot: %v", err)
	}
	if math.Abs(not.Total()-(trueHist.Total()-hTag.Total())) > 1e-9 {
		t.Errorf("NOT estimate %v, want %v", not.Total(), trueHist.Total()-hTag.Total())
	}
}

func TestSumExactForDisjoint(t *testing.T) {
	tr, err := xmltree.ParseString(`<db><y>1990</y><y>1991</y><y>1990</y></db>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c := predicate.NewCatalog(tr)
	grid := MustUniformGrid(2, tr.MaxPos)
	h90 := BuildPosition(tr, c.Add(predicate.ContentEquals{Value: "1990"}).Nodes, grid)
	h91 := BuildPosition(tr, c.Add(predicate.ContentEquals{Value: "1991"}).Nodes, grid)
	sum, err := Sum(h90, h91)
	if err != nil {
		t.Fatalf("Sum: %v", err)
	}
	if sum.Total() != 3 {
		t.Errorf("Sum total = %v, want 3", sum.Total())
	}
}

func TestSynthesizeGridMismatch(t *testing.T) {
	a := NewPosition(MustUniformGrid(4, 100))
	b := NewPosition(MustUniformGrid(5, 100))
	if _, err := SynthesizeAnd(a, b); err == nil {
		t.Errorf("grid mismatch: want error")
	}
	if _, err := Sum(a, b); err == nil {
		t.Errorf("Sum grid mismatch: want error")
	}
}

func TestStorageBytesGrowth(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := randomTree(r, 5000)
	nodes := tr.NodesWithTag("a")
	prev := 0
	for _, g := range []int{5, 10, 20, 40} {
		h := BuildPosition(tr, nodes, MustUniformGrid(g, tr.MaxPos))
		sb := h.StorageBytes()
		if sb <= 0 {
			t.Fatalf("g=%d: storage %d", g, sb)
		}
		if sb < prev/2 {
			t.Errorf("storage should not collapse as g grows: g=%d sb=%d prev=%d", g, sb, prev)
		}
		prev = sb
	}
}
