package manifest

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sample() *Manifest {
	return &Manifest{
		FormatVersion: Format,
		Version:       42,
		WALSeq:        17,
		GridSize:      10,
		Shards: []Shard{
			{ID: 1, File: "shards/cp-42-1.xqs", Docs: 3, Nodes: 120, WALSeq: 0, Bytes: 2048, CRC32: 0xdeadbeef},
			{ID: 5, File: "shards/cp-42-5.xqs", Docs: 1, Nodes: 9, WALSeq: 17, Bytes: 256, CRC32: 1},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sample()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatalf("round trip changed manifest:\n%+v\n%+v", m, m2)
	}
}

func TestWriteLoadAtomicRename(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := Load(dir); err != nil || ok {
		t.Fatalf("fresh dir: ok=%v err=%v", ok, err)
	}
	m := sample()
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	// No temp file left behind.
	if _, err := os.Stat(filepath.Join(dir, FileName+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp file survived the rename: %v", err)
	}
	got, ok, err := Load(dir)
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("loaded manifest differs:\n%+v\n%+v", m, got)
	}

	// Overwrite with a newer manifest; the old one is fully replaced.
	m.Version = 43
	m.Shards = m.Shards[:1]
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	got, _, err = Load(dir)
	if err != nil || got.Version != 43 || len(got.Shards) != 1 {
		t.Fatalf("overwrite: %+v err=%v", got, err)
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Manifest)
	}{
		{"bad format", func(m *Manifest) { m.FormatVersion = 99 }},
		{"absolute path", func(m *Manifest) { m.Shards[0].File = "/etc/passwd" }},
		{"dotdot path", func(m *Manifest) { m.Shards[0].File = "../outside.xqs" }},
		{"empty path", func(m *Manifest) { m.Shards[0].File = "" }},
		{"duplicate file", func(m *Manifest) { m.Shards[1].File = m.Shards[0].File }},
		{"negative docs", func(m *Manifest) { m.Shards[0].Docs = -1 }},
		{"negative grid", func(m *Manifest) { m.GridSize = -2 }},
		{"shard beyond truncation point", func(m *Manifest) { m.Shards[0].WALSeq = m.WALSeq + 1 }},
	}
	for _, tc := range cases {
		m := sample()
		tc.mut(m)
		if _, err := m.Encode(); err == nil {
			t.Errorf("%s: Encode accepted invalid manifest", tc.name)
		}
		// A hand-built valid encoding of the broken value must be
		// rejected by Decode too; craft via direct JSON of the struct.
	}
	if _, err := Decode([]byte("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := Decode([]byte(`{"format_version": 1, "shards": [{"file": "../x"}]}`)); err == nil {
		t.Error("non-local path accepted by Decode")
	}
}
