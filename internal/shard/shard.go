// Package shard decomposes the estimator into an LSM-flavored set of
// immutable per-shard summaries behind a versioned, copy-on-write
// serving snapshot.
//
// The paper's summary structure is built once over one mega-tree, so
// any document added or removed forces a full rebuild. But under the
// dummy root, documents are independent: a twig match never spans two
// documents, so both exact answer sizes and position-histogram
// estimates are additive across disjoint document subsets. That makes
// the sharded decomposition exact — a ShardSet that partitions the
// corpus answers every query as the sum of per-shard answers (see
// DESIGN.md, "Shard lifecycle", for the proof sketch and the grid
// alignment caveat).
//
// The lifecycle mirrors an LSM tree: Append lands new documents as a
// fresh shard (summarizing only those documents), Drop removes a shard,
// and Compact merges small shards into one off the serving path. Every
// mutation installs a new immutable Set via an atomic pointer swap;
// readers estimate against whatever Set they loaded and are never
// blocked.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xmlest/internal/core"
	"xmlest/internal/exec"
	"xmlest/internal/match"
	"xmlest/internal/pattern"
	"xmlest/internal/planner"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// ErrSummaryOnly reports that exact counting reached a summary-only
// shard: the set can estimate the pattern but holds no documents to
// verify it against. Callers classify with errors.Is.
var ErrSummaryOnly = errors.New("shard: summary-only shard cannot be counted exactly")

// Shard is one immutable member of a shard set: a subset of the
// corpus's documents with its predicate catalog and lazily built
// summaries. Tree-backed shards can build a summary for any Options and
// participate in exact counting and compaction; summary-only shards
// (streamed ingest, loaded blobs) carry one prebuilt estimator and no
// documents.
type Shard struct {
	id    uint64
	tree  *xmltree.Tree      // nil for summary-only shards
	cat   *predicate.Catalog // nil for summary-only shards
	docs  int
	nodes int
	// installedAt is the version of the first serving set containing
	// this shard, recorded under the store's write lock just before the
	// install — the visibility watermark appenders hand to clients.
	installedAt uint64
	// walSeq is the highest write-ahead-log sequence whose documents
	// the shard covers: its own record for an appended shard, the
	// maximum across the merge group for a compacted shard, and 0 for
	// shards that never went through a WAL (bootstrap corpus, streamed
	// summaries). A checkpoint containing the shard makes every record
	// up to walSeq replayable-free.
	walSeq uint64

	mu       sync.Mutex
	sums     map[core.Options]*core.Estimator // built summaries, keyed by options
	prebuilt *core.Estimator                  // the sole summary of a summary-only shard
}

// ID returns the shard's store-unique id.
func (s *Shard) ID() uint64 { return s.id }

// InstalledAt returns the version of the first serving snapshot that
// contained this shard (0 for shards of a loaded, store-less set).
func (s *Shard) InstalledAt() uint64 { return s.installedAt }

// WALSeq returns the highest write-ahead-log sequence the shard
// covers (0 for shards that never went through a WAL).
func (s *Shard) WALSeq() uint64 { return s.walSeq }

// Docs returns the number of documents the shard holds (0 when
// unknown, e.g. a summary-only shard loaded without metadata).
func (s *Shard) Docs() int { return s.docs }

// Nodes returns the shard's node count excluding its dummy root.
func (s *Shard) Nodes() int { return s.nodes }

// Tree returns the shard's document tree, or nil for summary-only
// shards.
func (s *Shard) Tree() *xmltree.Tree { return s.tree }

// Catalog returns the shard's materialized predicate catalog, or nil
// for summary-only shards.
func (s *Shard) Catalog() *predicate.Catalog { return s.cat }

// SummaryOnly reports whether the shard carries only a prebuilt
// summary (no documents): it estimates but cannot count exactly, serve
// new predicate registrations, or be compacted.
func (s *Shard) SummaryOnly() bool { return s.tree == nil }

// summaryKey normalizes options into a summary cache key: fields that
// cannot change the built summary (BuildWorkers — the parallel build is
// deterministic — QueryCacheSize, a facade-side cache bound,
// EstimateWorkers — per-shard sums are order-fixed — and
// DisableMergedServing, a read-path routing knob) are zeroed, so
// semantically identical estimators share one build per shard.
func summaryKey(opts core.Options) core.Options {
	opts.BuildWorkers = 0
	opts.QueryCacheSize = 0
	opts.EstimateWorkers = 0
	opts.DisableMergedServing = false
	return opts
}

// Summary returns the shard's estimator for the given options, building
// and caching it on first use. Summary-only shards return their
// prebuilt estimator for every options value. Concurrent callers are
// safe; at most one build runs per shard at a time.
//
// The grid size is clamped to the shard's own position space: shards
// hold arbitrarily small document batches, and a g×g grid needs g
// positions, so a corpus-sized g would otherwise reject (or poison)
// small appends that the monolithic rebuild absorbed without comment.
// A clamped shard simply has one bucket per position — the finest
// summary its documents admit.
func (s *Shard) Summary(opts core.Options) (*core.Estimator, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prebuilt != nil {
		return s.prebuilt, nil
	}
	key := summaryKey(opts)
	if est, ok := s.sums[key]; ok {
		return est, nil
	}
	build := opts
	if build.GridSize > s.tree.MaxPos {
		build.GridSize = s.tree.MaxPos
	}
	est, err := core.NewEstimator(s.cat, build)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", s.id, err)
	}
	if s.sums == nil {
		s.sums = make(map[core.Options]*core.Estimator)
	}
	s.sums[key] = est
	return est, nil
}

// invalidateSummaries drops cached summaries after the shard's catalog
// gained predicates (setup-time only; see Store registration methods).
func (s *Shard) invalidateSummaries() {
	s.mu.Lock()
	s.sums = nil
	s.mu.Unlock()
}

// Set is one immutable serving snapshot: a version number and the
// shards that were live when it was installed. Reads against a Set see
// a consistent corpus regardless of concurrent store mutations.
type Set struct {
	version uint64
	shards  []*Shard

	// Per-set memo of the materialized summary slice (one entry per
	// option set in practice): rebinding every compiled query after a
	// set swap calls summaries once per pattern, and the memo turns all
	// but the first into a mutex-guarded slice read instead of an
	// O(shards) walk of per-shard summary locks.
	sumsMu  sync.Mutex
	sumsKey core.Options
	sumsVal []*core.Estimator
}

// Version returns the snapshot's monotonically increasing version.
func (s *Set) Version() uint64 { return s.version }

// Len returns the number of shards.
func (s *Set) Len() int { return len(s.shards) }

// Shards returns the member shards in serving order. The returned
// slice is shared and must not be modified.
func (s *Set) Shards() []*Shard { return s.shards }

// TotalNodes sums the member shards' node counts.
func (s *Set) TotalNodes() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.nodes
	}
	return n
}

// TotalDocs sums the member shards' document counts.
func (s *Set) TotalDocs() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.docs
	}
	return n
}

// summaries materializes every shard's estimator for opts, memoized
// per set (summaries are deterministic per shard and options, so the
// memo is semantically invisible). Callers must not modify the
// returned slice.
func (s *Set) summaries(opts core.Options) ([]*core.Estimator, error) {
	key := summaryKey(opts)
	s.sumsMu.Lock()
	if s.sumsVal != nil && s.sumsKey == key {
		sums := s.sumsVal
		s.sumsMu.Unlock()
		return sums, nil
	}
	s.sumsMu.Unlock()
	sums := make([]*core.Estimator, len(s.shards))
	for i, sh := range s.shards {
		est, err := sh.Summary(opts)
		if err != nil {
			return nil, err
		}
		sums[i] = est
	}
	s.sumsMu.Lock()
	s.sumsKey, s.sumsVal = key, sums
	s.sumsMu.Unlock()
	return sums, nil
}

// invalidateSummariesMemo drops the memoized summary slice after
// setup-time predicate registration rebuilt the shard catalogs (the
// store clears per-shard caches at the same time).
func (s *Set) invalidateSummariesMemo() {
	s.sumsMu.Lock()
	s.sumsVal = nil
	s.sumsMu.Unlock()
}

// EstimateTwig estimates the answer size of a twig pattern as the sum
// of per-shard estimates — exact composition, since no match spans two
// documents. A shard lacking one of the pattern's predicates
// contributes zero; a predicate unknown to every shard is an error.
// Per-shard estimation fans out across a bounded worker pool
// (Options.EstimateWorkers) on wide sets; the sum always runs in shard
// order, so results are bit-identical for every worker count.
func (s *Set) EstimateTwig(p *pattern.Pattern, opts core.Options) (core.Result, error) {
	start := time.Now()
	sums, err := s.summaries(opts)
	if err != nil {
		return core.Result{}, err
	}
	names := patternNames(p)
	if err := checkResolvable(sums, names); err != nil {
		return core.Result{}, err
	}
	out, err := sumFanOut(sums, names, estimateWorkers(opts), func(est *core.Estimator) (core.Result, error) {
		return est.EstimateTwig(p)
	})
	if err != nil {
		return core.Result{}, err
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// EstimatePairPrimitive estimates anc//desc with the primitive
// algorithm on every shard and sums.
func (s *Set) EstimatePairPrimitive(ancName, descName string, opts core.Options) (core.Result, error) {
	start := time.Now()
	sums, err := s.summaries(opts)
	if err != nil {
		return core.Result{}, err
	}
	names := []string{ancName, descName}
	if err := checkResolvable(sums, names); err != nil {
		return core.Result{}, err
	}
	out, err := sumFanOut(sums, names, estimateWorkers(opts), func(est *core.Estimator) (core.Result, error) {
		return est.EstimatePairPrimitive(ancName, descName)
	})
	if err != nil {
		return core.Result{}, err
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// sumFanOut runs fn over every summary that resolves all names and
// sums the results in summary order. With workers > 1 and enough
// participating summaries, evaluation fans out across a bounded pool;
// the ordered sum keeps the total bit-identical either way.
func sumFanOut(sums []*core.Estimator, names []string, workers int, fn func(*core.Estimator) (core.Result, error)) (core.Result, error) {
	able := make([]*core.Estimator, 0, len(sums))
	for _, est := range sums {
		if hasAll(est, names) {
			able = append(able, est)
		}
	}
	results := make([]core.Result, len(able))
	errs := make([]error, len(able))
	forEachParallel(len(able), workers, func(i int) {
		results[i], errs[i] = fn(able[i])
	})
	out := core.Result{}
	for i := range able {
		if errs[i] != nil {
			return core.Result{}, errs[i]
		}
		out.Estimate += results[i].Estimate
		out.UsedNoOverlap = out.UsedNoOverlap || results[i].UsedNoOverlap
	}
	return out, nil
}

// forEachParallel runs fn(0..n-1) across a bounded worker pool, or
// serially when the pool cannot pay for its goroutine overhead (few
// items or a single worker). Callers own any ordering concerns: fn
// writes into indexed slots and reductions run afterwards in index
// order, so results never depend on the worker count.
func forEachParallel(n, workers int, fn func(i int)) {
	const minParallel = 4
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minParallel {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Count computes the exact answer size of a twig pattern as the sum of
// per-shard exact counts. It requires every shard to be tree-backed.
// Like estimation, a shard lacking one of the pattern's predicates
// contributes zero matches, but a predicate unknown to every shard is
// an error (the monolithic "unknown predicate" behaviour).
func (s *Set) Count(p *pattern.Pattern) (float64, error) {
	// Summary-only shards are checked before predicate resolution: they
	// carry no catalog, so resolving against them would misreport the
	// problem as a missing predicate.
	for _, sh := range s.shards {
		if sh.SummaryOnly() {
			return 0, fmt.Errorf("shard: exact counting requires document-backed shards (shard %d is summary-only): %w", sh.id, ErrSummaryOnly)
		}
	}
	names := patternNames(p)
	for _, name := range names {
		found := false
		for _, sh := range s.shards {
			if sh.cat != nil && sh.cat.Has(name) {
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("shard: no catalog entry for predicate %q in any shard", name)
		}
	}
	var total float64
	for _, sh := range s.shards {
		missing := false
		for _, name := range names {
			if !sh.cat.Has(name) {
				missing = true
				break
			}
		}
		if missing {
			continue
		}
		n, err := match.CountTwig(sh.tree, p, func(name string) ([]xmltree.NodeID, error) {
			e, err := sh.cat.Get(name)
			if err != nil {
				return nil, err
			}
			return e.Nodes, nil
		})
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// CountBudget is Count with a wall-clock budget, built for shadow
// execution of sampled live queries. Each tree-backed shard's count
// runs through the Volcano executor under the deadline instead of the
// structural-join matcher, and the join order comes from the shard's
// own summary via the planner — the paper's loop: the estimates under
// scrutiny pick the order of their own verification. A summary-only
// shard aborts with ErrSummaryOnly (the pattern is unverifiable, not
// wrong); a blown deadline aborts with exec.ErrDeadline.
func (s *Set) CountBudget(p *pattern.Pattern, opts core.Options, deadline time.Time) (float64, error) {
	for _, sh := range s.shards {
		if sh.SummaryOnly() {
			return 0, fmt.Errorf("shard %d: %w", sh.id, ErrSummaryOnly)
		}
	}
	names := patternNames(p)
	for _, name := range names {
		found := false
		for _, sh := range s.shards {
			if sh.cat != nil && sh.cat.Has(name) {
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("shard: no catalog entry for predicate %q in any shard", name)
		}
	}
	var total float64
	for _, sh := range s.shards {
		missing := false
		for _, name := range names {
			if !sh.cat.Has(name) {
				missing = true
				break
			}
		}
		if missing {
			continue
		}
		n, err := sh.countBudget(p, opts, deadline)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// countBudget counts one tree-backed shard's matches under the
// deadline. Single-node patterns are just the predicate list length;
// larger patterns execute a planner-chosen join order, falling back to
// pattern pre-order (always connected) when planning is unavailable
// (no summary for the options, or more nodes than the planner
// enumerates).
func (sh *Shard) countBudget(p *pattern.Pattern, opts core.Options, deadline time.Time) (float64, error) {
	resolve := func(name string) ([]xmltree.NodeID, error) {
		e, err := sh.cat.Get(name)
		if err != nil {
			return nil, err
		}
		return e.Nodes, nil
	}
	nodes := p.Nodes()
	if len(nodes) == 1 {
		list, err := resolve(nodes[0].PredName())
		if err != nil {
			return 0, err
		}
		return float64(len(list)), nil
	}
	var plan *planner.Plan
	if est, err := sh.Summary(opts); err == nil {
		if best, err := planner.Best(est, p); err == nil {
			plan = best
		}
	}
	if plan == nil {
		steps := make([]*planner.Step, len(nodes))
		for i, n := range nodes {
			steps[i] = &planner.Step{Added: n}
		}
		plan = &planner.Plan{Steps: steps}
	}
	stats, err := exec.ExecuteDeadline(sh.tree, p, plan, resolve, deadline)
	if err != nil {
		return 0, err
	}
	return float64(stats.Results), nil
}

// StorageBytes sums the compact-encoding size of every shard's summary
// for the given options.
func (s *Set) StorageBytes(opts core.Options) (int, error) {
	sums, err := s.summaries(opts)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, est := range sums {
		total += est.StorageBytes()
	}
	return total, nil
}

// Summaries returns the per-shard summaries for opts, packaged for the
// XQS2 container.
func (s *Set) Summaries(opts core.Options) ([]core.ShardSummary, error) {
	sums, err := s.summaries(opts)
	if err != nil {
		return nil, err
	}
	out := make([]core.ShardSummary, len(s.shards))
	for i, sh := range s.shards {
		out[i] = core.ShardSummary{ID: sh.id, Docs: sh.docs, Nodes: sh.nodes, Est: sums[i]}
	}
	return out, nil
}

// patternNames collects the distinct predicate names of a pattern.
func patternNames(p *pattern.Pattern) []string {
	nodes := p.Nodes()
	seen := make(map[string]bool, len(nodes))
	names := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if name := n.PredName(); !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	return names
}

// checkResolvable errors when some predicate name is unknown to every
// summary — the sharded analogue of the monolithic "no histogram for
// predicate" error.
func checkResolvable(sums []*core.Estimator, names []string) error {
	for _, name := range names {
		found := false
		for _, est := range sums {
			if est.HasPredicate(name) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("shard: no histogram for predicate %q in any shard", name)
		}
	}
	return nil
}

// hasAll reports whether one summary resolves every name.
func hasAll(est *core.Estimator, names []string) bool {
	for _, name := range names {
		if !est.HasPredicate(name) {
			return false
		}
	}
	return true
}

// countDocs counts a tree's documents (children of the dummy root).
func countDocs(t *xmltree.Tree) int {
	n := 0
	for c := t.Nodes[0].FirstChild; c != xmltree.InvalidNode; c = t.Nodes[c].NextSibling {
		n++
	}
	return n
}
