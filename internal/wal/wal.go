// Package wal is the estimation daemon's write-ahead log: a segmented,
// CRC-framed, length-prefixed append log of raw document batches.
//
// Durability contract: an /append is acknowledged only after its batch
// is appended here (and fsynced, per policy) and its shard installed,
// so a crash after the ack can always rebuild the shard by replaying
// the log. Each record carries the serving-set version the batch was
// installed (and acknowledged) at, so recovery can land replayed shards
// at their original versions and the client-visible version watermark
// never regresses across a restart.
//
// On-disk layout: the log directory holds segment files named
// <firstSeq>.wal (zero-padded decimal). A segment starts with an
// 8-byte magic header and continues with framed records:
//
//	uint32 LE payload length
//	uint32 LE CRC32-C of the payload
//	payload:
//	  byte    record kind (1 = document batch)
//	  uvarint sequence number
//	  uvarint ack version
//	  uvarint document count
//	  per document: uvarint byte length, raw XML bytes
//
// A torn tail — a partial frame or CRC mismatch from a crash mid-write
// — is detected on open and the segment is truncated back to its last
// valid record; corruption never propagates into replay and never
// panics the decoder.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xmlest/internal/fsio"
)

// Mode is the fsync policy.
type Mode int

const (
	// ModeAlways fsyncs after every append: an acknowledged batch is on
	// disk before the ack. The safest and slowest policy.
	ModeAlways Mode = iota
	// ModeInterval fsyncs on a background cadence (Options.Interval):
	// a crash can lose up to one interval of acknowledged batches.
	ModeInterval
	// ModeOff never fsyncs during serving (only on close and segment
	// roll bookkeeping); the OS decides when bytes reach disk.
	ModeOff
)

// String returns the flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeAlways:
		return "always"
	case ModeInterval:
		return "interval"
	case ModeOff:
		return "off"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses the -fsync flag spelling.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "always":
		return ModeAlways, nil
	case "interval":
		return ModeInterval, nil
	case "off":
		return ModeOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync mode %q (want always, interval or off)", s)
}

// Options tunes a log. The zero value fsyncs on every append and rolls
// segments at DefaultSegmentBytes.
type Options struct {
	// Mode is the fsync policy.
	Mode Mode

	// Interval is the ModeInterval fsync cadence; <= 0 means
	// DefaultInterval. Ignored by the other modes.
	Interval time.Duration

	// SegmentBytes rolls to a new segment once the active one exceeds
	// this size; <= 0 means DefaultSegmentBytes.
	SegmentBytes int64

	// FS is the filesystem the log runs on; nil means the real one
	// (fsio.OS). Tests substitute a fault-injecting implementation.
	FS fsio.FS
}

// Defaults for the zero Options.
const (
	DefaultInterval     = 100 * time.Millisecond
	DefaultSegmentBytes = 64 << 20
)

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.FS == nil {
		o.FS = fsio.OS
	}
	return o
}

// Record is one logged document batch.
type Record struct {
	// Seq is the record's log-unique, strictly increasing sequence
	// number, assigned by Append.
	Seq uint64
	// Version is the serving-set version the batch was installed at —
	// the version the appender acknowledged to its client.
	Version uint64
	// Docs are the batch's raw XML documents, one per document. During
	// replay the slices alias the segment buffer and are only valid
	// until the callback returns.
	Docs [][]byte
}

// SegmentInfo describes one on-disk segment.
type SegmentInfo struct {
	// Path is the segment file path.
	Path string
	// FirstSeq is the sequence the segment was created at (from its
	// name); Records may start later if earlier ones were truncated.
	FirstSeq uint64
	// LastSeq is the last valid record's sequence (0 when empty).
	LastSeq uint64
	// Records counts the valid records.
	Records int
	// Bytes is the file size.
	Bytes int64
	// TornBytes counts trailing bytes past the last valid record — a
	// torn tail from a crash, or garbage. Zero for a clean segment.
	TornBytes int64
}

// Record framing constants.
const (
	segSuffix   = ".wal"
	headerLen   = 8
	frameLen    = 8 // uint32 length + uint32 crc
	kindBatch   = 1
	maxDocBytes = 1 << 30 // decoder sanity bound on a single document

	// maxRecordBytes bounds one record's payload: decoders reject
	// anything larger before allocating, so a corrupt length prefix
	// cannot force a huge allocation.
	maxRecordBytes = 1 << 28
)

var segMagic = [headerLen]byte{'X', 'Q', 'W', 'A', 'L', '0', '0', '1'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is an open write-ahead log. All methods are safe for concurrent
// use; appends serialize internally.
type Log struct {
	dir  string
	opts Options
	fs   fsio.FS

	mu         sync.Mutex
	active     fsio.File
	activePath string
	activeSize int64
	activeSeq  uint64 // first seq of the active segment (its name)
	activeLast uint64 // last seq written to the active segment (0: none)
	activeRecs int    // records in the active segment
	nextSeq    uint64
	lastSeq    atomic.Uint64
	durableSeq atomic.Uint64 // highest seq known fsynced
	totalBytes int64         // closed segments' bytes (active excluded)
	closedSegs []SegmentInfo

	flushStop chan struct{}
	flushDone chan struct{}
	closed    bool
	// fsyncs counts successful data fsyncs of segment files — the
	// denominator group commit amortizes. Segment-creation syncs are
	// excluded; they are bookkeeping, not batch durability.
	fsyncs atomic.Uint64
	// groupBuf is AppendGroup's concatenation scratch, reused across
	// groups while the lock is held.
	groupBuf []byte
	// failedErr seals the log: once any write, fsync or segment-roll
	// operation fails, every subsequent Append, Sync and Close fails
	// with it. The seal is deliberate and sticky — after an fsync
	// failure the kernel may have dropped the dirty pages, so a later
	// "successful" fsync proves nothing about earlier bytes (the
	// Postgres fsync-gate lesson). No append is ever acknowledged
	// after an unreported sync failure.
	failedErr error
}

// Open opens (or creates) the log in dir, truncating any torn tail of
// the newest segment back to its last valid record so appends resume
// from a clean point. Records already in the log are left in place;
// replay them with Replay.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listFS(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, fs: opts.FS, nextSeq: 1}
	for i, seg := range segs {
		last := i == len(segs)-1
		if seg.TornBytes > 0 && !last {
			// Only the newest segment can legitimately be torn (a crash
			// mid-append); closed segments were fsynced at roll. A hole in
			// the interior would make replay silently skip acknowledged
			// records while later segments still replay — refuse instead.
			return nil, fmt.Errorf("wal: segment %s is corrupt (%d bytes past the last valid record); refusing to open",
				seg.Path, seg.TornBytes)
		}
		if seg.TornBytes > 0 && last {
			// Crash mid-append: drop the torn tail so new appends start
			// at a valid frame boundary.
			if err := l.fs.Truncate(seg.Path, seg.Bytes-seg.TornBytes); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.Path, err)
			}
			seg.Bytes -= seg.TornBytes
			seg.TornBytes = 0
		}
		if seg.LastSeq >= l.nextSeq {
			l.nextSeq = seg.LastSeq + 1
		}
		if seg.FirstSeq >= l.nextSeq {
			l.nextSeq = seg.FirstSeq
		}
		if !last {
			l.totalBytes += seg.Bytes
			l.closedSegs = append(l.closedSegs, seg)
			continue
		}
		if seg.Bytes < headerLen {
			// The whole file was garbage (bad or missing magic): recreate
			// it below rather than appending records with no header.
			if err := l.fs.Remove(seg.Path); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			continue
		}
		f, err := l.fs.OpenFile(seg.Path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.active, l.activePath, l.activeSize, l.activeSeq = f, seg.Path, seg.Bytes, seg.FirstSeq
		l.activeLast, l.activeRecs = seg.LastSeq, seg.Records
	}
	l.lastSeq.Store(l.nextSeq - 1)
	// Everything already on disk predates this process; treat it as
	// durable — it survived whatever ended the previous process.
	l.durableSeq.Store(l.nextSeq - 1)
	if l.active == nil {
		if err := l.newSegmentLocked(l.nextSeq); err != nil {
			return nil, err
		}
	}
	if opts.Mode == ModeInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop(l.flushStop, l.flushDone)
	}
	return l, nil
}

// flushLoop is the ModeInterval background fsync. The channels are
// passed in rather than re-read from the Log: StopFlushLoop nils the
// fields before closing the stop channel, and a select on a nil
// channel would block forever.
func (l *Log) flushLoop(stop chan struct{}, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			// A failed interval flush seals the log (see sealLocked): the
			// error is recorded sticky, so the next Append, Sync or Close
			// fails loudly instead of the flush being silently dropped.
			_ = l.Sync()
		}
	}
}

// Append logs one batch of raw documents at the given ack version,
// assigns it the next sequence number, and — under ModeAlways — fsyncs
// before returning. An error means the batch must not be acknowledged.
func (l *Log) Append(version uint64, docs [][]byte) (uint64, error) {
	if len(docs) == 0 {
		return 0, fmt.Errorf("wal: refusing to append an empty batch")
	}
	return l.AppendGroup([]GroupRecord{{Version: version, Docs: docs}})
}

// GroupRecord is one batch of a group append: its ack version and raw
// documents. Sequences are assigned contiguously by AppendGroup.
type GroupRecord struct {
	Version uint64
	Docs    [][]byte
}

// AppendGroup logs a group of batches contiguously — one segment write
// and, under ModeAlways, one fsync for the whole group — and returns
// the first assigned sequence number: batch i is record firstSeq+i.
// This is the group-commit primitive: the fsync cost is amortized over
// every batch in the group.
//
// An error refuses the WHOLE group — no batch in it may be
// acknowledged. Either no frame landed (a failed write is rolled back
// and the log sealed) or the durability of all of them is unknown (a
// failed fsync seals the log). There is no partial outcome to report:
// the frames are written in one contiguous syscall and fsynced
// together, so the batches stand or fall as a unit.
func (l *Log) AppendGroup(recs []GroupRecord) (uint64, error) {
	if len(recs) == 0 {
		return 0, fmt.Errorf("wal: refusing to append an empty group")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if l.failedErr != nil {
		return 0, l.sealedErr()
	}
	first := l.nextSeq
	buf := l.groupBuf[:0]
	for i, rec := range recs {
		if len(rec.Docs) == 0 {
			return 0, fmt.Errorf("wal: refusing to append an empty batch")
		}
		frame, err := encodeFrame(Record{Seq: first + uint64(i), Version: rec.Version, Docs: rec.Docs})
		if err != nil {
			return 0, err
		}
		buf = append(buf, frame...)
	}
	if cap(buf) <= maxRetainedGroupBuf {
		l.groupBuf = buf // keep the scratch for the next group
	} else {
		l.groupBuf = nil // an outlier group; don't pin its capacity
	}
	if l.activeSize+int64(len(buf)) > l.opts.SegmentBytes && l.activeSize > headerLen {
		if err := l.rollLocked(first); err != nil {
			return 0, err
		}
	}
	if _, err := l.active.Write(buf); err != nil {
		// Roll the partial frames back: later appends must never land
		// after garbage, or recovery's torn-tail truncation — which cuts
		// at the FIRST invalid frame of the newest segment — would
		// silently discard every acknowledged record behind it. Either
		// way the log seals: a disk that failed a write may fail the
		// next one worse, and un-acked errors are safe while optimistic
		// retries against a sick disk are not.
		if terr := l.active.Truncate(l.activeSize); terr != nil {
			l.sealLocked(fmt.Errorf("wal: append failed (%v) and rollback failed (%v)", err, terr))
			return 0, fmt.Errorf("wal: append failed (%v) and rollback failed (%v); log sealed", err, terr)
		}
		l.sealLocked(fmt.Errorf("wal: append: %w", err))
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	last := first + uint64(len(recs)) - 1
	l.activeSize += int64(len(buf))
	l.activeLast = last
	l.activeRecs += len(recs)
	l.nextSeq = last + 1
	l.lastSeq.Store(last)
	if l.opts.Mode == ModeAlways {
		if err := l.active.Sync(); err != nil {
			// The records may or may not be on disk — recovery will keep
			// any that are — but none are ever acknowledged, and the seal
			// guarantees nothing later is acknowledged either.
			l.sealLocked(fmt.Errorf("wal: fsync: %w", err))
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
		l.fsyncs.Add(1)
		l.durableSeq.Store(last)
	}
	return first, nil
}

// maxRetainedGroupBuf bounds the group-concatenation scratch kept
// between AppendGroup calls.
const maxRetainedGroupBuf = 4 << 20

// StopFlushLoop stops the ModeInterval background flusher and hands
// the flush cadence to an external driver (the group committer). Both
// the loop and the committer flush through Sync/syncLocked — one flush
// path — but only a single driver may own the cadence: with the
// committer driving, a failed interval flush seals the log on the same
// goroutine that commits groups, so no group can be acknowledged after
// the flush failure was observed. Idempotent; a no-op for logs without
// a flusher.
func (l *Log) StopFlushLoop() {
	l.mu.Lock()
	stop, done := l.flushStop, l.flushDone
	l.flushStop, l.flushDone = nil, nil
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// sealLocked records the log's first fatal I/O error; once set, every
// subsequent Append, Sync and Close fails with it.
func (l *Log) sealLocked(err error) {
	if l.failedErr == nil {
		l.failedErr = err
	}
}

func (l *Log) sealedErr() error {
	return fmt.Errorf("wal: log sealed after I/O failure: %w", l.failedErr)
}

// Err reports the sticky I/O failure that sealed the log, if any. A
// sealed log refuses all appends; the store above reports itself
// degraded and the daemon keeps serving reads.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failedErr == nil {
		return nil
	}
	return l.sealedErr()
}

// Sync fsyncs the active segment and advances the durable watermark to
// every record written before the call.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.failedErr != nil {
		return l.sealedErr()
	}
	if l.closed || l.active == nil {
		return nil
	}
	last := l.lastSeq.Load()
	if last <= l.durableSeq.Load() {
		// Nothing unsynced: skip the fsync. Beyond the saved syscall,
		// this keeps segment rolls in ModeAlways (where every ack is
		// already durable) from taking an avoidable I/O failure path.
		return nil
	}
	if err := l.active.Sync(); err != nil {
		l.sealLocked(fmt.Errorf("wal: fsync: %w", err))
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.fsyncs.Add(1)
	if last > l.durableSeq.Load() {
		l.durableSeq.Store(last)
	}
	return nil
}

// Fsyncs returns the number of successful data fsyncs since Open — the
// cost group commit amortizes; appends/Fsyncs is the achieved grouping.
func (l *Log) Fsyncs() uint64 { return l.fsyncs.Load() }

// LastSeq returns the highest sequence number appended (0 when empty).
func (l *Log) LastSeq() uint64 { return l.lastSeq.Load() }

// SetMinSeq raises the log's sequence floor: the next append is
// assigned at least seq+1, and the last/durable watermarks report at
// least seq. The durable layer calls this with the manifest's
// truncation point at boot, so sequence numbering can never restart
// below already-checkpointed records even if the log directory lost
// its (possibly never-fsynced, under ModeOff) post-truncation segment
// — reused sequence numbers would be silently skipped by the next
// recovery's replay.
func (l *Log) SetMinSeq(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextSeq <= seq {
		l.nextSeq = seq + 1
	}
	if l.lastSeq.Load() < seq {
		l.lastSeq.Store(seq)
	}
	if l.durableSeq.Load() < seq {
		// Records <= seq live in checkpointed shards, which are durable
		// by definition of the manifest that recorded seq.
		l.durableSeq.Store(seq)
	}
}

// DurableSeq returns the highest sequence number known to be fsynced.
// Under ModeOff it only advances on Close and explicit Sync.
func (l *Log) DurableSeq() uint64 { return l.durableSeq.Load() }

// Size returns the log's total on-disk bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalBytes + l.activeSize
}

// Segments lists the log's segments in sequence order.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, 0, len(l.closedSegs)+1)
	out = append(out, l.closedSegs...)
	out = append(out, SegmentInfo{
		Path:     l.activePath,
		FirstSeq: l.activeSeq,
		LastSeq:  l.activeLast,
		Records:  l.activeRecs,
		Bytes:    l.activeSize,
	})
	return out
}

// Replay streams every valid record with Seq > after, in sequence
// order, to fn. Replay on an open log is only sound before serving
// starts (boot-time recovery); concurrent appends are not replayed.
func (l *Log) Replay(after uint64, fn func(Record) error) error {
	return scanDirFS(l.fs, l.dir, after, fn)
}

// Truncate drops every segment whose records all have Seq <= through:
// their batches are fully covered by a checkpoint and are no longer
// needed for recovery. The active segment is rolled first when it
// qualifies, so a checkpoint of the whole log empties it to one fresh
// segment.
func (l *Log) Truncate(through uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.lastSeq.Load() <= through && l.activeSize > headerLen {
		if err := l.rollLocked(l.nextSeq); err != nil {
			return err
		}
	}
	// kept must not alias closedSegs: a failed remove returns with the
	// not-yet-visited tail intact so a later Truncate can retry.
	kept := make([]SegmentInfo, 0, len(l.closedSegs))
	for i, seg := range l.closedSegs {
		// An empty closed segment cannot arise (rolls happen on append),
		// but treat one as covered to be safe.
		covered := seg.LastSeq <= through && seg.FirstSeq <= through
		if !covered {
			kept = append(kept, seg)
			continue
		}
		// A failed remove is retryable — the covered segment lingers but
		// replay skips its records — so it does not seal the log.
		if err := l.fs.Remove(seg.Path); err != nil {
			l.closedSegs = append(kept, l.closedSegs[i:]...)
			return fmt.Errorf("wal: truncate: %w", err)
		}
		l.totalBytes -= seg.Bytes
	}
	l.closedSegs = kept
	if l.opts.Mode != ModeOff {
		if err := l.fs.SyncDir(l.dir); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return nil
}

// Close fsyncs and closes the log. Safe to call once; the log is
// unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	if l.flushStop != nil {
		close(l.flushStop)
		l.mu.Unlock()
		<-l.flushDone // the loop may be inside Sync; let it finish
		l.mu.Lock()
	}
	err := l.syncLocked()
	if l.active != nil {
		if cerr := l.active.Close(); err == nil {
			err = cerr
		}
	}
	l.closed = true
	l.mu.Unlock()
	return err
}

// rollLocked retires the active segment and starts a fresh one whose
// name is the next sequence to be written. The replacement is created
// first: a creation failure leaves the active segment fully usable, so
// a roll (e.g. inside a checkpoint's truncate) is retryable and does
// not seal the log.
func (l *Log) rollLocked(firstSeq uint64) error {
	f, path, err := l.createSegment(firstSeq)
	if err != nil {
		return err
	}
	if err := l.syncLocked(); err != nil {
		f.Close()
		_ = l.fs.Remove(path)
		return err
	}
	if err := l.active.Close(); err != nil {
		// The old segment's handle failed to close after a clean fsync;
		// its buffered state is unknowable, so the log seals.
		f.Close()
		l.active = nil
		l.sealLocked(fmt.Errorf("wal: roll: %w", err))
		return fmt.Errorf("wal: roll: %w", err)
	}
	l.closedSegs = append(l.closedSegs, SegmentInfo{
		Path:     l.activePath,
		FirstSeq: l.activeSeq,
		LastSeq:  l.activeLast,
		Records:  l.activeRecs,
		Bytes:    l.activeSize,
	})
	l.totalBytes += l.activeSize
	l.active, l.activePath, l.activeSize, l.activeSeq = f, path, headerLen, firstSeq
	l.activeLast, l.activeRecs = 0, 0
	return nil
}

// createSegment creates, headers and (mode permitting) fsyncs a fresh
// segment file without touching the log's active state.
func (l *Log) createSegment(firstSeq uint64) (fsio.File, string, error) {
	path := filepath.Join(l.dir, segName(firstSeq))
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, "", fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		return nil, "", fmt.Errorf("wal: %w", err)
	}
	if l.opts.Mode != ModeOff {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, "", fmt.Errorf("wal: %w", err)
		}
		if err := l.fs.SyncDir(l.dir); err != nil {
			f.Close()
			return nil, "", fmt.Errorf("wal: create segment: %w", err)
		}
	}
	return f, path, nil
}

// newSegmentLocked creates and opens a fresh active segment. A failure
// seals the log: callers on this path have no active segment to fall
// back to, so there is nowhere correct to append.
func (l *Log) newSegmentLocked(firstSeq uint64) error {
	f, path, err := l.createSegment(firstSeq)
	if err != nil {
		l.sealLocked(err)
		return err
	}
	l.active, l.activePath, l.activeSize, l.activeSeq = f, path, headerLen, firstSeq
	l.activeLast, l.activeRecs = 0, 0
	return nil
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%020d%s", firstSeq, segSuffix)
}

// segmentPaths lists segment files by name only — no content reads —
// sorted by first sequence.
func segmentPaths(fsys fsio.FS, dir string) ([]SegmentInfo, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []SegmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		firstSeq, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			continue // not a segment
		}
		segs = append(segs, SegmentInfo{Path: filepath.Join(dir, name), FirstSeq: firstSeq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].FirstSeq < segs[j].FirstSeq })
	return segs, nil
}

// List reads segment metadata without opening the log for writing (and
// without truncating torn tails) — the read-only view `xqest wal` and
// boot-time recovery share.
func List(dir string) ([]SegmentInfo, error) {
	return listFS(fsio.OS, dir)
}

func listFS(fsys fsio.FS, dir string) ([]SegmentInfo, error) {
	segs, err := segmentPaths(fsys, dir)
	if err != nil {
		return nil, err
	}
	for i := range segs {
		info := &segs[i]
		data, err := fsys.ReadFile(info.Path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		info.Bytes = int64(len(data))
		valid := scanSegment(data, func(rec Record) error {
			info.Records++
			info.LastSeq = rec.Seq
			return nil
		})
		info.TornBytes = info.Bytes - valid
	}
	return segs, nil
}

// ScanDir streams every valid record with Seq > after across all
// segments, in sequence order, to fn. Each segment is read and scanned
// exactly once — recovery over a large un-checkpointed log is bounded
// by one pass — and segments whose whole range precedes `after` are
// skipped without being read (a segment's records all fall below the
// next segment's first sequence). Torn or corrupt segment tails end
// that segment's scan at its last valid record; fn errors abort.
func ScanDir(dir string, after uint64, fn func(Record) error) error {
	return scanDirFS(fsio.OS, dir, after, fn)
}

func scanDirFS(fsys fsio.FS, dir string, after uint64, fn func(Record) error) error {
	segs, err := segmentPaths(fsys, dir)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].FirstSeq <= after+1 {
			continue // every record here is <= after
		}
		data, err := fsys.ReadFile(seg.Path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		var cbErr error
		scanSegment(data, func(rec Record) error {
			if rec.Seq <= after {
				return nil
			}
			if err := fn(rec); err != nil {
				cbErr = err
				return err
			}
			return nil
		})
		if cbErr != nil {
			return cbErr
		}
	}
	return nil
}

// scanSegment decodes the valid record prefix of a segment image,
// calling fn per record, and returns the byte length of that prefix.
// A fn error stops the scan (the returned length still counts the
// record that errored). It never panics and allocates nothing beyond
// the per-record doc-slice headers: documents alias data.
func scanSegment(data []byte, fn func(Record) error) int64 {
	if len(data) < headerLen || [headerLen]byte(data[:headerLen]) != segMagic {
		return 0
	}
	off := int64(headerLen)
	rest := data[headerLen:]
	for {
		rec, n, ok := decodeFrame(rest)
		if !ok {
			return off
		}
		off += int64(n)
		rest = rest[n:]
		if err := fn(rec); err != nil {
			return off
		}
	}
}

// decodeFrame decodes one framed record from the head of data,
// returning the record, its framed length, and whether it was valid.
func decodeFrame(data []byte) (Record, int, bool) {
	if len(data) < frameLen {
		return Record{}, 0, false
	}
	n := binary.LittleEndian.Uint32(data)
	crc := binary.LittleEndian.Uint32(data[4:])
	if n > maxRecordBytes || int64(n) > int64(len(data)-frameLen) {
		return Record{}, 0, false
	}
	payload := data[frameLen : frameLen+int(n)]
	if crc32.Checksum(payload, crcTable) != crc {
		return Record{}, 0, false
	}
	rec, err := DecodeRecord(payload)
	if err != nil {
		return Record{}, 0, false
	}
	return rec, frameLen + int(n), true
}

// DecodeRecord decodes one record payload (the bytes inside a frame).
// Returned document slices alias payload. It is exported for the
// fuzzer and the CLI inspector; it never panics and never allocates
// more than the payload's own length.
func DecodeRecord(payload []byte) (Record, error) {
	if len(payload) < 1 || payload[0] != kindBatch {
		return Record{}, fmt.Errorf("wal: bad record kind")
	}
	rest := payload[1:]
	var rec Record
	var ok bool
	if rec.Seq, rest, ok = uvarint(rest); !ok || rec.Seq == 0 {
		return Record{}, fmt.Errorf("wal: bad record seq")
	}
	if rec.Version, rest, ok = uvarint(rest); !ok {
		return Record{}, fmt.Errorf("wal: bad record version")
	}
	ndocs, rest, ok := uvarint(rest)
	if !ok || ndocs == 0 || ndocs > uint64(len(rest)) {
		// Each document costs at least its one-byte length prefix, so a
		// count above the remaining bytes is corrupt — reject before
		// allocating the slice headers.
		return Record{}, fmt.Errorf("wal: bad document count")
	}
	rec.Docs = make([][]byte, 0, ndocs)
	for i := uint64(0); i < ndocs; i++ {
		n, r, ok := uvarint(rest)
		if !ok || n > maxDocBytes || n > uint64(len(r)) {
			return Record{}, fmt.Errorf("wal: bad document length")
		}
		rec.Docs = append(rec.Docs, r[:n])
		rest = r[n:]
	}
	if len(rest) != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing bytes in record", len(rest))
	}
	return rec, nil
}

// EncodeRecord encodes a record payload (the inverse of DecodeRecord).
func EncodeRecord(rec Record) ([]byte, error) {
	if len(rec.Docs) == 0 {
		return nil, fmt.Errorf("wal: empty batch")
	}
	if rec.Seq == 0 {
		return nil, fmt.Errorf("wal: record seq must be positive")
	}
	size := 1 + 3*binary.MaxVarintLen64
	for _, d := range rec.Docs {
		size += binary.MaxVarintLen64 + len(d)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, kindBatch)
	buf = binary.AppendUvarint(buf, rec.Seq)
	buf = binary.AppendUvarint(buf, rec.Version)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Docs)))
	for _, d := range rec.Docs {
		buf = binary.AppendUvarint(buf, uint64(len(d)))
		buf = append(buf, d...)
	}
	return buf, nil
}

// encodeFrame wraps an encoded record in the length+CRC frame.
func encodeFrame(rec Record) ([]byte, error) {
	payload, err := EncodeRecord(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordBytes)
	}
	buf := make([]byte, frameLen, frameLen+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	return append(buf, payload...), nil
}

// uvarint decodes one uvarint from the head of b.
func uvarint(b []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, false
	}
	return v, b[n:], true
}

// SyncDir fsyncs a directory so entry creations and removals are
// durable. Kept as a thin wrapper over fsio for callers outside the
// FS-threaded paths.
func SyncDir(dir string) error {
	return fsio.OS.SyncDir(dir)
}
