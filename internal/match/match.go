// Package match computes exact answer sizes for twig patterns — the
// ground truth the paper's estimates are compared against. A match is a
// total mapping from pattern nodes to data nodes that satisfies every
// node predicate and every structural edge (Section 2); the answer size
// is the number of distinct mappings.
//
// The counter exploits the interval numbering: the descendants of a node
// v are exactly the nodes whose start position lies in (start(v),
// end(v)), and node lists sorted by start admit prefix-sum counting, so
// a twig is counted in O(Σ |list| · log) time rather than by
// enumeration.
package match

import (
	"fmt"
	"sort"

	"xmlest/internal/pattern"
	"xmlest/internal/xmltree"
)

// Resolver supplies the satisfying node list (sorted by start position)
// for a pattern node's predicate name. Catalogs satisfy this signature.
type Resolver func(predName string) ([]xmltree.NodeID, error)

// CountPairs returns the exact number of (u, v) pairs with u from anc,
// v from desc, and u an ancestor of v. Both lists must be sorted by
// start position. Runs in O(|anc| log |desc|).
func CountPairs(t *xmltree.Tree, anc, desc []xmltree.NodeID) int64 {
	starts := make([]int, len(desc))
	for i, id := range desc {
		starts[i] = t.Node(id).Start
	}
	var total int64
	for _, a := range anc {
		n := t.Node(a)
		lo := sort.SearchInts(starts, n.Start+1)
		hi := sort.SearchInts(starts, n.End)
		total += int64(hi - lo)
	}
	return total
}

// CountChildPairs returns the exact number of (u, v) pairs with v's
// parent equal to u. anc must be sorted by start position (catalog
// lists are); parents are located by binary search on the sorted start
// array, avoiding the per-call hash map an earlier version allocated.
// Runs in O(|anc| + |desc| log |anc|).
func CountChildPairs(t *xmltree.Tree, anc, desc []xmltree.NodeID) int64 {
	starts := make([]int, len(anc))
	for i, a := range anc {
		starts[i] = t.Node(a).Start
	}
	var total int64
	for _, d := range desc {
		p := t.Node(d).Parent
		if p == xmltree.InvalidNode {
			continue
		}
		ps := t.Node(p).Start
		// Start labels are unique, so an equal start identifies the
		// parent; the id comparison guards mixed-tree inputs.
		k := sort.SearchInts(starts, ps)
		if k < len(starts) && starts[k] == ps && anc[k] == p {
			total++
		}
	}
	return total
}

// CountTwig returns the exact number of matches of the pattern in the
// tree. Counts are returned as float64 because match counts are products
// along twig branches and can exceed int64 on pathological inputs; for
// all realistic workloads the value is integral and exact (< 2^53).
func CountTwig(t *xmltree.Tree, p *pattern.Pattern, resolve Resolver) (float64, error) {
	counts, nodes, err := countNode(t, p.Root, resolve)
	if err != nil {
		return 0, err
	}
	var total float64
	for i := range nodes {
		total += counts[i]
	}
	return total, nil
}

// countNode computes, for every data node v satisfying q's predicate,
// the number of matches of the subtree rooted at q when q is mapped to
// v. Returns parallel slices (counts, node ids sorted by start).
func countNode(t *xmltree.Tree, q *pattern.Node, resolve Resolver) ([]float64, []xmltree.NodeID, error) {
	nodes, err := resolve(q.PredName())
	if err != nil {
		return nil, nil, fmt.Errorf("match: %w", err)
	}
	counts := make([]float64, len(nodes))
	for i := range counts {
		counts[i] = 1
	}
	for _, qc := range q.Children {
		childCounts, childNodes, err := countNode(t, qc, resolve)
		if err != nil {
			return nil, nil, err
		}
		switch qc.Axis {
		case pattern.Descendant:
			// Prefix sums over the start-sorted child list let us sum
			// child match counts inside (start(v), end(v)) in O(log n).
			starts := make([]int, len(childNodes))
			prefix := make([]float64, len(childNodes)+1)
			for i, id := range childNodes {
				starts[i] = t.Node(id).Start
				prefix[i+1] = prefix[i] + childCounts[i]
			}
			for i, v := range nodes {
				n := t.Node(v)
				lo := sort.SearchInts(starts, n.Start+1)
				hi := sort.SearchInts(starts, n.End)
				counts[i] *= prefix[hi] - prefix[lo]
			}
		case pattern.Child:
			byParent := make(map[xmltree.NodeID]float64, len(childNodes))
			for i, id := range childNodes {
				byParent[t.Node(id).Parent] += childCounts[i]
			}
			for i, v := range nodes {
				counts[i] *= byParent[v]
			}
		}
	}
	return counts, nodes, nil
}

// BruteCount enumerates all total mappings recursively. It is
// exponential and exists only to validate CountTwig on small trees in
// tests.
func BruteCount(t *xmltree.Tree, p *pattern.Pattern, resolve Resolver) (int64, error) {
	var count func(q *pattern.Node, v xmltree.NodeID) (int64, error)
	count = func(q *pattern.Node, v xmltree.NodeID) (int64, error) {
		nodes, err := resolve(q.PredName())
		if err != nil {
			return 0, err
		}
		var total int64
		for _, w := range nodes {
			switch q.Axis {
			case pattern.Descendant:
				if !t.IsAncestor(v, w) {
					continue
				}
			case pattern.Child:
				if t.Node(w).Parent != v {
					continue
				}
			}
			prod := int64(1)
			for _, qc := range q.Children {
				c, err := count(qc, w)
				if err != nil {
					return 0, err
				}
				prod *= c
			}
			total += prod
		}
		return total, nil
	}
	return count(p.Root, t.Root())
}

// Participation returns, per pattern node (in pre-order), the number of
// distinct data nodes that appear in at least one match at that pattern
// node. This is the quantity the paper's participation-estimation
// formulas (Fig 10) approximate.
func Participation(t *xmltree.Tree, p *pattern.Pattern, resolve Resolver) ([]int64, error) {
	// A data node participates at pattern node q iff (a) the subtree of
	// q rooted at it has at least one match (downward), and (b) some
	// chain of ancestors matches the pattern path above q (upward).
	// Compute downward counts first, then propagate upward viability.
	type nodeInfo struct {
		q      *pattern.Node
		nodes  []xmltree.NodeID
		counts []float64
		viable []bool
	}
	var infos []*nodeInfo
	var build func(q *pattern.Node) (*nodeInfo, error)
	build = func(q *pattern.Node) (*nodeInfo, error) {
		nodes, err := resolve(q.PredName())
		if err != nil {
			return nil, err
		}
		info := &nodeInfo{q: q, nodes: nodes, counts: make([]float64, len(nodes)), viable: make([]bool, len(nodes))}
		for i := range info.counts {
			info.counts[i] = 1
		}
		infos = append(infos, info)
		for _, qc := range q.Children {
			child, err := build(qc)
			if err != nil {
				return nil, err
			}
			starts := make([]int, len(child.nodes))
			prefix := make([]float64, len(child.nodes)+1)
			byParent := make(map[xmltree.NodeID]float64, len(child.nodes))
			for i, id := range child.nodes {
				starts[i] = t.Node(id).Start
				prefix[i+1] = prefix[i] + child.counts[i]
				if qc.Axis == pattern.Child {
					byParent[t.Node(id).Parent] += child.counts[i]
				}
			}
			for i, v := range nodes {
				n := t.Node(v)
				var s float64
				if qc.Axis == pattern.Descendant {
					lo := sort.SearchInts(starts, n.Start+1)
					hi := sort.SearchInts(starts, n.End)
					s = prefix[hi] - prefix[lo]
				} else {
					s = byParent[v]
				}
				info.counts[i] *= s
			}
		}
		return info, nil
	}
	// infos is built in the same pre-order as pattern.Nodes().
	rootInfo, err := build(p.Root)
	if err != nil {
		return nil, fmt.Errorf("match: %w", err)
	}
	for i := range rootInfo.nodes {
		rootInfo.viable[i] = rootInfo.counts[i] > 0
	}
	// Propagate viability down the pattern: a data node w participates
	// at child pattern node qc iff its own subtree count is positive and
	// some viable parent-pattern data node relates to it structurally.
	idx := map[*pattern.Node]*nodeInfo{}
	for _, info := range infos {
		idx[info.q] = info
	}
	var propagate func(q *pattern.Node)
	propagate = func(q *pattern.Node) {
		info := idx[q]
		for _, qc := range q.Children {
			child := idx[qc]
			switch qc.Axis {
			case pattern.Descendant:
				// Merge viable parent intervals, then test containment.
				var ivs [][2]int
				for i, v := range info.nodes {
					if info.viable[i] {
						n := t.Node(v)
						ivs = append(ivs, [2]int{n.Start, n.End})
					}
				}
				merged := mergeIntervals(ivs)
				for i, w := range child.nodes {
					if child.counts[i] <= 0 {
						continue
					}
					if insideAny(merged, t.Node(w).Start) {
						child.viable[i] = true
					}
				}
			case pattern.Child:
				viableParent := make(map[xmltree.NodeID]bool)
				for i, v := range info.nodes {
					if info.viable[i] {
						viableParent[v] = true
					}
				}
				for i, w := range child.nodes {
					if child.counts[i] > 0 && viableParent[t.Node(w).Parent] {
						child.viable[i] = true
					}
				}
			}
			propagate(qc)
		}
	}
	propagate(p.Root)
	out := make([]int64, len(infos))
	for i, info := range infos {
		var n int64
		for _, ok := range info.viable {
			if ok {
				n++
			}
		}
		out[i] = n
	}
	return out, nil
}

func mergeIntervals(ivs [][2]int) [][2]int {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
	out := [][2]int{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv[0] <= last[1] {
			if iv[1] > last[1] {
				last[1] = iv[1]
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

func insideAny(merged [][2]int, pos int) bool {
	i := sort.Search(len(merged), func(i int) bool { return merged[i][1] >= pos })
	return i < len(merged) && merged[i][0] < pos && pos < merged[i][1]
}
