package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	// 100 observations at 10µs, 900 at 1ms: p50 and p95 must land in
	// the 1ms bucket, p05 in the 10µs one.
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 900; i++ {
		h.Observe(time.Millisecond)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("Count = %d, want 1000", got)
	}
	p05 := h.Quantile(0.05)
	if p05 < 8*time.Microsecond || p05 > 16*time.Microsecond {
		t.Errorf("p05 = %v, want within the 8-16µs bucket", p05)
	}
	for _, p := range []float64{0.5, 0.95} {
		q := h.Quantile(p)
		if q < 512*time.Microsecond || q > 2*time.Millisecond {
			t.Errorf("q(%v) = %v, want within a 2x bucket of 1ms", p, q)
		}
	}
	s := h.Summary()
	if s.Max != time.Millisecond {
		t.Errorf("Max = %v, want 1ms", s.Max)
	}
	if s.P99 > s.Max {
		t.Errorf("P99 %v exceeds tracked max %v", s.P99, s.Max)
	}
	if s.Mean <= 100*time.Microsecond || s.Mean >= time.Millisecond {
		t.Errorf("Mean = %v, want between 100µs and 1ms", s.Mean)
	}
}

func TestLatencyHistogramEmptyAndExtremes(t *testing.T) {
	h := NewLatencyHistogram()
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	if s := h.Summary(); s.Count != 0 || s.P99 != 0 {
		t.Errorf("empty summary = %+v, want zeros", s)
	}
	// Out-of-range observations clamp into the edge buckets instead of
	// panicking.
	h.Observe(-time.Second)
	h.Observe(time.Nanosecond)
	h.Observe(10 * time.Minute)
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if q := h.Quantile(1.0); q > 10*time.Minute {
		t.Errorf("q(1.0) = %v, want capped at the observed max", q)
	}
}

func TestEndpointCountersAndErrors(t *testing.T) {
	r := NewRegistry()
	e := r.Endpoint("estimate")
	if again := r.Endpoint("estimate"); again != e {
		t.Fatal("Endpoint is not idempotent per name")
	}
	e.Observe(time.Millisecond, OK)
	e.Observe(2*time.Millisecond, Error)
	e.Observe(time.Millisecond, Rejected)
	done := e.BeginRequest()
	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("Snapshot has %d endpoints, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Name != "estimate" || s.Requests != 3 || s.Errors != 1 || s.Rejected != 1 || s.Inflight != 1 {
		t.Errorf("snapshot = %+v, want name=estimate requests=3 errors=1 rejected=1 inflight=1", s)
	}
	done(OK)
	s = r.Snapshot()[0]
	if s.Requests != 4 || s.Inflight != 0 {
		t.Errorf("after done: requests=%d inflight=%d, want 4 and 0", s.Requests, s.Inflight)
	}
	if s.QPS <= 0 {
		t.Errorf("lifetime QPS = %v, want > 0", s.QPS)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	e := r.Endpoint("stress")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				done := e.BeginRequest()
				done(OutcomeOf(i%10 == 0))
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()[0]
	if s.Requests != workers*per {
		t.Errorf("Requests = %d, want %d", s.Requests, workers*per)
	}
	if s.Errors != workers*per/10 {
		t.Errorf("Errors = %d, want %d", s.Errors, workers*per/10)
	}
	if s.Inflight != 0 {
		t.Errorf("Inflight = %d, want 0", s.Inflight)
	}
	if s.Latency.Count != workers*per {
		t.Errorf("Latency.Count = %d, want %d", s.Latency.Count, workers*per)
	}
}

func TestRecentQPSCountsOnlyTaggedSeconds(t *testing.T) {
	e := newEndpoint("x")
	e.created = time.Now().Add(-time.Minute) // older than the window
	now := time.Now().Unix()
	// Simulate 30 requests one second ago and stale entries beyond the
	// window; RecentQPS averages over the fixed window.
	for i := 0; i < 30; i++ {
		e.tick(now - 1)
	}
	for i := 0; i < 99; i++ {
		e.tick(now - recentWindow - 2)
	}
	got := e.RecentQPS()
	want := 30.0 / recentWindow
	if got != want {
		t.Errorf("RecentQPS = %v, want %v", got, want)
	}

	// A young endpoint averages over its own lifetime, not the full
	// window, so short runs are not under-reported.
	young := newEndpoint("y")
	young.created = time.Now().Add(-2 * time.Second)
	for i := 0; i < 40; i++ {
		young.tick(now - 1)
	}
	if got := young.RecentQPS(); got != 20 {
		t.Errorf("young RecentQPS = %v, want 20 (40 requests over a 2s life)", got)
	}
}

func TestPanicCounter(t *testing.T) {
	r := NewRegistry()
	e := r.Endpoint("append")
	if e.Panics() != 0 {
		t.Fatalf("fresh panics = %d, want 0", e.Panics())
	}
	e.RecordPanic()
	e.RecordPanic()
	if e.Panics() != 2 {
		t.Fatalf("panics = %d, want 2", e.Panics())
	}
	if s := r.Snapshot()[0]; s.Panics != 2 {
		t.Errorf("snapshot panics = %d, want 2", s.Panics)
	}
}
