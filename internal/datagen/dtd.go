package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"xmlest/internal/xmltree"
)

// This file implements a generic random document generator driven by a
// DTD subset — the substitute for the IBM alphaWorks XML Generator the
// paper used (Section 5.2). Supported declarations:
//
//	<!ELEMENT name (#PCDATA)>
//	<!ELEMENT name EMPTY>
//	<!ELEMENT name (child1, (a | b)*, child2?, child3+)>
//
// Content models support sequences (','), choices ('|'), grouping and
// the '?', '*', '+' occurrence operators, which is sufficient for the
// paper's DTD and for realistic recursive schemata.

// DTD is a parsed document type definition.
type DTD struct {
	// Elements maps element names to content models, in declaration
	// order preserved separately for deterministic iteration.
	Elements map[string]*contentModel
	order    []string
}

// contentModel is a node in a content-model expression tree.
type contentModel struct {
	kind     cmKind
	name     string          // kindName
	children []*contentModel // kindSeq, kindChoice
	occur    byte            // 0, '?', '*', '+'
}

type cmKind int

const (
	cmPCDATA cmKind = iota
	cmEmpty
	cmName
	cmSeq
	cmChoice
)

// ParseDTD parses the supported DTD subset.
func ParseDTD(src string) (*DTD, error) {
	d := &DTD{Elements: make(map[string]*contentModel)}
	rest := src
	for {
		start := strings.Index(rest, "<!ELEMENT")
		if start < 0 {
			break
		}
		end := strings.Index(rest[start:], ">")
		if end < 0 {
			return nil, fmt.Errorf("datagen: unterminated <!ELEMENT in DTD")
		}
		decl := rest[start+len("<!ELEMENT") : start+end]
		rest = rest[start+end+1:]
		fields := strings.Fields(decl)
		if len(fields) < 2 {
			return nil, fmt.Errorf("datagen: malformed declaration %q", decl)
		}
		name := fields[0]
		modelSrc := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(decl), name))
		model, err := parseContentModel(modelSrc)
		if err != nil {
			return nil, fmt.Errorf("datagen: element %s: %w", name, err)
		}
		if _, dup := d.Elements[name]; dup {
			return nil, fmt.Errorf("datagen: duplicate element declaration %s", name)
		}
		d.Elements[name] = model
		d.order = append(d.order, name)
	}
	if len(d.Elements) == 0 {
		return nil, fmt.Errorf("datagen: no element declarations found")
	}
	// Every referenced element must be declared.
	for name, m := range d.Elements {
		for _, ref := range m.refs(nil) {
			if _, ok := d.Elements[ref]; !ok {
				return nil, fmt.Errorf("datagen: element %s references undeclared %s", name, ref)
			}
		}
	}
	return d, nil
}

// refs accumulates the element names referenced by the model.
func (m *contentModel) refs(acc []string) []string {
	switch m.kind {
	case cmName:
		acc = append(acc, m.name)
	case cmSeq, cmChoice:
		for _, c := range m.children {
			acc = c.refs(acc)
		}
	}
	return acc
}

// parseContentModel parses "EMPTY", "(#PCDATA)" or a parenthesized
// expression with , | ? * +.
func parseContentModel(src string) (*contentModel, error) {
	src = strings.TrimSpace(src)
	if src == "EMPTY" {
		return &contentModel{kind: cmEmpty}, nil
	}
	p := &cmParser{src: src}
	m, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, fmt.Errorf("trailing content-model input at %d in %q", p.off, src)
	}
	return m, nil
}

type cmParser struct {
	src string
	off int
}

func (p *cmParser) eof() bool { return p.off >= len(p.src) }

func (p *cmParser) skipSpace() {
	for !p.eof() && (p.src[p.off] == ' ' || p.src[p.off] == '\t' || p.src[p.off] == '\n' || p.src[p.off] == '\r') {
		p.off++
	}
}

func (p *cmParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.off]
}

// parseUnit parses a primary (name or parenthesized expression) plus an
// optional occurrence operator.
func (p *cmParser) parseUnit() (*contentModel, error) {
	p.skipSpace()
	var m *contentModel
	switch {
	case p.peek() == '(':
		p.off++
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ) at %d in %q", p.off, p.src)
		}
		p.off++
		m = inner
	default:
		start := p.off
		for !p.eof() && isDTDNameByte(p.src[p.off]) {
			p.off++
		}
		if p.off == start {
			return nil, fmt.Errorf("expected name or ( at %d in %q", p.off, p.src)
		}
		name := p.src[start:p.off]
		if name == "#PCDATA" {
			m = &contentModel{kind: cmPCDATA}
		} else {
			m = &contentModel{kind: cmName, name: name}
		}
	}
	if c := p.peek(); c == '?' || c == '*' || c == '+' {
		p.off++
		// Occurrence applies to a copy so shared sub-models keep their own.
		m = &contentModel{kind: m.kind, name: m.name, children: m.children, occur: c}
	}
	return m, nil
}

// parseExpr parses a sequence or choice at the current grouping level.
func (p *cmParser) parseExpr() (*contentModel, error) {
	first, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	switch p.peek() {
	case ',', '|':
		sep := p.peek()
		kind := cmSeq
		if sep == '|' {
			kind = cmChoice
		}
		parts := []*contentModel{first}
		for p.peek() == sep {
			p.off++
			next, err := p.parseUnit()
			if err != nil {
				return nil, err
			}
			parts = append(parts, next)
			p.skipSpace()
		}
		if c := p.peek(); c == ',' || c == '|' {
			return nil, fmt.Errorf("mixed , and | without grouping at %d in %q", p.off, p.src)
		}
		return &contentModel{kind: kind, children: parts}, nil
	default:
		return first, nil
	}
}

func isDTDNameByte(c byte) bool {
	return c == '#' || c == '_' || c == '-' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// GenConfig tunes random generation from a DTD.
type GenConfig struct {
	Seed int64

	// Root names the root element; it must be declared in the DTD.
	Root string

	// RepeatMean is the mean extra repetitions for '+' and '*' items
	// (geometric distribution); '*' may produce zero, '+' at least one.
	RepeatMean float64

	// RepeatMeans overrides RepeatMean per repeated element name (for
	// items that are plain element references, e.g. "employee+").
	RepeatMeans map[string]float64

	// OptionalProb is the probability that a '?' item is present.
	OptionalProb float64

	// ChoiceWeights optionally biases '|' choices: for a choice whose
	// alternatives are element names, the weight of each named
	// alternative (default 1).
	ChoiceWeights map[string]float64

	// MaxDepth bounds element nesting; beyond it, recursive choices
	// prefer the shallowest alternative and repetitions stop.
	MaxDepth int

	// MaxNodes bounds the total element count (a safety budget, not an
	// exact target).
	MaxNodes int
}

// Generate builds a random document conforming to the DTD.
func (d *DTD) Generate(cfg GenConfig) (*xmltree.Tree, error) {
	if _, ok := d.Elements[cfg.Root]; !ok {
		return nil, fmt.Errorf("datagen: root element %q not declared", cfg.Root)
	}
	if cfg.RepeatMean <= 0 {
		cfg.RepeatMean = 1
	}
	if cfg.OptionalProb <= 0 {
		cfg.OptionalProb = 0.5
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 16
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 1 << 20
	}
	g := &dtdGen{
		d:        d,
		cfg:      cfg,
		r:        rand.New(rand.NewSource(cfg.Seed)),
		b:        xmltree.NewBuilder(),
		minDepth: d.minDepths(),
	}
	g.element(cfg.Root, 0)
	return g.b.Tree(), nil
}

// minDepths computes, per element, the minimum nesting depth required
// to terminate expansion — used to steer recursive choices when the
// depth budget runs out. Computed by fixpoint iteration.
func (d *DTD) minDepths() map[string]int {
	const inf = 1 << 20
	depth := make(map[string]int, len(d.Elements))
	for name := range d.Elements {
		depth[name] = inf
	}
	var modelDepth func(m *contentModel) int
	modelDepth = func(m *contentModel) int {
		switch m.kind {
		case cmPCDATA, cmEmpty:
			return 0
		case cmName:
			if m.occur == '*' || m.occur == '?' {
				return 0 // may be omitted entirely
			}
			return depth[m.name]
		case cmSeq:
			worst := 0
			for _, c := range m.children {
				if v := modelDepth(c); v > worst {
					worst = v
				}
			}
			if m.occur == '*' || m.occur == '?' {
				return 0
			}
			return worst
		case cmChoice:
			best := inf
			for _, c := range m.children {
				if v := modelDepth(c); v < best {
					best = v
				}
			}
			if m.occur == '*' || m.occur == '?' {
				return 0
			}
			return best
		}
		return 0
	}
	for changed := true; changed; {
		changed = false
		for _, name := range d.order {
			v := modelDepth(d.Elements[name]) + 1
			if v < depth[name] {
				depth[name] = v
				changed = true
			}
		}
	}
	return depth
}

type dtdGen struct {
	d        *DTD
	cfg      GenConfig
	r        *rand.Rand
	b        *xmltree.Builder
	minDepth map[string]int
	nodes    int
}

// element expands one element. Mandatory structure is always emitted
// even past the node budget (so documents stay DTD-valid); the budget
// throttles repetitions and optional content instead.
func (g *dtdGen) element(name string, depth int) {
	g.nodes++
	g.b.Begin(name)
	m := g.d.Elements[name]
	switch m.kind {
	case cmPCDATA:
		g.b.Text(phrase(g.r, 1+g.r.Intn(3)))
	case cmEmpty:
	default:
		g.model(m, depth+1)
	}
	g.b.End()
}

// model expands one content-model node, honouring occurrence operators.
func (g *dtdGen) model(m *contentModel, depth int) {
	reps := g.occurrences(m, depth)
	for rep := 0; rep < reps; rep++ {
		switch m.kind {
		case cmPCDATA:
			g.b.Text(phrase(g.r, 1+g.r.Intn(3)))
		case cmEmpty:
		case cmName:
			g.element(m.name, depth)
		case cmSeq:
			for _, c := range m.children {
				g.model(c, depth)
			}
		case cmChoice:
			g.model(g.choose(m, depth), depth)
		}
	}
}

// occurrences returns how many times the item expands, honouring its
// occurrence operator and the depth/node budgets.
func (g *dtdGen) occurrences(m *contentModel, depth int) int {
	overBudget := depth >= g.cfg.MaxDepth || g.nodes >= g.cfg.MaxNodes
	switch m.occur {
	case '?':
		if overBudget || g.r.Float64() >= g.cfg.OptionalProb {
			return 0
		}
		return 1
	case '*':
		if overBudget {
			return 0
		}
		return g.geometric(m)
	case '+':
		if overBudget {
			return 1
		}
		return 1 + g.geometric(m)
	default:
		return 1
	}
}

// geometric draws a count with the item's configured mean.
func (g *dtdGen) geometric(m *contentModel) int {
	mean := g.cfg.RepeatMean
	if m.kind == cmName {
		if v, ok := g.cfg.RepeatMeans[m.name]; ok {
			mean = v
		}
	}
	if mean <= 0 {
		return 0
	}
	p := 1 / (1 + mean)
	n := 0
	for g.r.Float64() > p && n < 64 {
		n++
	}
	return n
}

// choose picks a choice alternative: weighted by ChoiceWeights when
// configured, steering to the terminating alternative when the depth
// budget is exhausted.
func (g *dtdGen) choose(m *contentModel, depth int) *contentModel {
	if depth >= g.cfg.MaxDepth || g.nodes >= g.cfg.MaxNodes {
		best := m.children[0]
		bestD := g.altDepth(best)
		for _, c := range m.children[1:] {
			if v := g.altDepth(c); v < bestD {
				best, bestD = c, v
			}
		}
		return best
	}
	total := 0.0
	weights := make([]float64, len(m.children))
	for i, c := range m.children {
		w := 1.0
		if c.kind == cmName {
			if cw, ok := g.cfg.ChoiceWeights[c.name]; ok {
				w = cw
			}
		}
		weights[i] = w
		total += w
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		if x < w {
			return m.children[i]
		}
		x -= w
	}
	return m.children[len(m.children)-1]
}

// altDepth estimates the termination depth of a choice alternative.
func (g *dtdGen) altDepth(m *contentModel) int {
	switch m.kind {
	case cmName:
		return g.minDepth[m.name]
	case cmPCDATA, cmEmpty:
		return 0
	default:
		worst := 0
		for _, c := range m.children {
			if v := g.altDepth(c); v > worst {
				worst = v
			}
		}
		return worst
	}
}
