// Package fsio abstracts the filesystem operations the storage engine
// performs — file creation, appends, fsyncs, renames, removals and
// directory syncs — behind a small interface with two implementations:
// OS, a passthrough to the real filesystem, and FaultFS, a
// deterministic fault injector for crash and degraded-mode testing.
//
// The interface is deliberately narrow: it covers exactly what
// internal/wal, internal/manifest and the shard checkpoint path need,
// so every durability-relevant syscall flows through one choke point
// where tests can fail the Nth operation, make fsync lie, run the disk
// out of space, tear a write in half, or cut the power.
package fsio

import (
	"fmt"
	"io"
	"os"
)

// File is an open file handle. It is the subset of *os.File the
// storage engine writes through.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage. A Sync error
	// means the unflushed bytes may be gone — per the POSIX fsync
	// contract (and the Postgres fsync-gate lesson), callers must not
	// retry the sync and assume success covers the earlier bytes.
	Sync() error
	// Truncate resizes the file.
	Truncate(size int64) error
	// Close releases the handle (without syncing).
	Close() error
	// Name reports the path the file was opened with.
	Name() string
}

// FS is the filesystem the storage engine runs on.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads the whole file.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to name, creating or truncating it. It
	// does not sync; durable writers open + Write + Sync explicitly.
	WriteFile(name string, data []byte, perm os.FileMode) error
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat describes a file.
	Stat(name string) (os.FileInfo, error)
	// MkdirAll creates a directory path.
	MkdirAll(path string, perm os.FileMode) error
	// Rename atomically renames oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate resizes the file at name.
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making entry creations, renames and
	// removals durable. File content syncs alone do not make a new
	// file findable after a power cut; the parent directory must be
	// synced too.
	SyncDir(dir string) error
}

// OS is the passthrough FS over the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)  { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsio: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("fsio: fsync %s: %w", dir, err)
	}
	return nil
}
