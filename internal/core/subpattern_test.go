package core

import (
	"math"
	"math/rand"
	"testing"

	"xmlest/internal/histogram"
	"xmlest/internal/match"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// buildLeaves constructs Leaf sub-patterns for two tags over a tree.
func buildLeaves(t *testing.T, tr *xmltree.Tree, g int, ancTag, descTag string) (SubPattern, SubPattern) {
	t.Helper()
	grid := histogram.MustUniformGrid(g, tr.MaxPos)
	trueHist := histogram.BuildTrue(tr, grid)
	mk := func(tag string) SubPattern {
		nodes := tr.NodesWithTag(tag)
		h := histogram.BuildPosition(tr, nodes, grid)
		noOv := predicateNoOverlap(tr, nodes)
		var cov *histogram.Coverage
		if noOv {
			var err error
			cov, err = histogram.BuildCoverage(tr, nodes, trueHist)
			if err != nil {
				t.Fatalf("coverage(%s): %v", tag, err)
			}
		}
		return Leaf(h, cov, noOv)
	}
	return mk(ancTag), mk(descTag)
}

func predicateNoOverlap(tr *xmltree.Tree, nodes []xmltree.NodeID) bool {
	var stack []int
	for _, id := range nodes {
		n := tr.Node(id)
		for len(stack) > 0 && stack[len(stack)-1] < n.Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			return false
		}
		stack = append(stack, n.End)
	}
	return true
}

func TestLeafJoinFactorIsOne(t *testing.T) {
	tr := xmltree.Fig1Document()
	anc, _ := buildLeaves(t, tr, 4, "faculty", "TA")
	g := anc.Est.Grid().Size()
	for i := 0; i < g; i++ {
		for j := i; j < g; j++ {
			if anc.Hist.Count(i, j) > 0 && math.Abs(anc.jnFct(i, j)-1) > 1e-12 {
				t.Errorf("leaf join factor at (%d,%d) = %v, want 1", i, j, anc.jnFct(i, j))
			}
			if anc.Hist.Count(i, j) == 0 && anc.jnFct(i, j) != 0 {
				t.Errorf("join factor on empty cell (%d,%d) = %v, want 0", i, j, anc.jnFct(i, j))
			}
		}
	}
}

func TestJoinAncestorNoOverlapParticipationBounds(t *testing.T) {
	tr := xmltree.Fig1Document()
	anc, desc := buildLeaves(t, tr, 2, "faculty", "TA")
	if !anc.NoOverlap || anc.Cvg == nil {
		t.Fatalf("faculty should be no-overlap with coverage")
	}
	joined, err := JoinAncestor(anc, desc)
	if err != nil {
		t.Fatalf("JoinAncestor: %v", err)
	}
	// Participation can never exceed the base predicate count per cell.
	g := joined.Hist.Grid().Size()
	for i := 0; i < g; i++ {
		for j := i; j < g; j++ {
			if joined.Hist.Count(i, j) > anc.Hist.Count(i, j)+1e-9 {
				t.Errorf("participation (%d,%d) = %v exceeds base %v",
					i, j, joined.Hist.Count(i, j), anc.Hist.Count(i, j))
			}
			if joined.Hist.Count(i, j) < 0 {
				t.Errorf("negative participation at (%d,%d)", i, j)
			}
		}
	}
	// The joined pattern keeps the ancestor anchor's no-overlap status
	// and propagates coverage.
	if !joined.NoOverlap || joined.Cvg == nil {
		t.Errorf("no-overlap status/coverage not propagated")
	}
	// Propagated coverage fractions stay within [0, 1].
	joined.Cvg.EachFrac(func(i, j, m, n int, f float64) {
		if f < -1e-9 || f > 1+1e-9 {
			t.Errorf("propagated coverage out of range: %v", f)
		}
	})
}

func TestJoinAncestorOverlapParticipationCapped(t *testing.T) {
	tr := xmltree.Fig1Document()
	anc, desc := buildLeaves(t, tr, 2, "department", "RA")
	// department is a single node: force the overlap path by dropping
	// coverage.
	anc.Cvg = nil
	anc.NoOverlap = false
	joined, err := JoinAncestor(anc, desc)
	if err != nil {
		t.Fatalf("JoinAncestor: %v", err)
	}
	// Fig 10 case 1 sets Hist = Est, but participation can never exceed
	// the single department node.
	if total := joined.Hist.Total(); total > 1+1e-9 {
		t.Errorf("participation total = %v, want <= 1 (one department node)", total)
	}
	if joined.Est.Total() <= 0 {
		t.Errorf("estimate must be positive (10 RAs under the department)")
	}
}

func TestJoinDescendantAnchorsAtDescendant(t *testing.T) {
	tr := xmltree.Fig1Document()
	anc, desc := buildLeaves(t, tr, 2, "faculty", "TA")
	joined, err := JoinDescendant(anc, desc)
	if err != nil {
		t.Fatalf("JoinDescendant: %v", err)
	}
	if joined.Base != desc.Base {
		t.Errorf("result should be anchored at the descendant")
	}
	if joined.NoOverlap != desc.NoOverlap {
		t.Errorf("anchor no-overlap status should follow the descendant")
	}
	real := float64(match.CountPairs(tr, tr.NodesWithTag("faculty"), tr.NodesWithTag("TA")))
	if math.Abs(joined.Total()-real) > 1.5 {
		t.Errorf("descendant-based no-overlap estimate %v too far from real %v", joined.Total(), real)
	}
}

// TestJoinBothBasesAgreeOnMagnitude checks that ancestor-based and
// descendant-based no-overlap estimates agree to within a small factor
// on realistic data (they use different formulas and need not match
// exactly).
func TestJoinBothBasesAgreeOnMagnitude(t *testing.T) {
	b := xmltree.NewBuilder()
	r := rand.New(rand.NewSource(17))
	b.Begin("db")
	for i := 0; i < 400; i++ {
		b.Begin("rec")
		for k, kn := 0, 1+r.Intn(4); k < kn; k++ {
			b.Element("f", "")
		}
		b.End()
	}
	b.End()
	tr := b.Tree()
	anc, desc := buildLeaves(t, tr, 10, "rec", "f")
	ab, err := JoinAncestor(anc, desc)
	if err != nil {
		t.Fatalf("JoinAncestor: %v", err)
	}
	db, err := JoinDescendant(anc, desc)
	if err != nil {
		t.Fatalf("JoinDescendant: %v", err)
	}
	if ab.Total() <= 0 || db.Total() <= 0 {
		t.Fatalf("degenerate totals: %v %v", ab.Total(), db.Total())
	}
	if ratio := ab.Total() / db.Total(); ratio < 0.5 || ratio > 2 {
		t.Errorf("bases disagree: ancestor-based %v vs descendant-based %v", ab.Total(), db.Total())
	}
}

func TestChainedJoinsPropagateParticipation(t *testing.T) {
	// a > b > c chain: joining (b,c) then (a, bc) must produce a
	// sensible estimate and participation never exceeding base counts.
	b := xmltree.NewBuilder()
	r := rand.New(rand.NewSource(23))
	// Record-shaped data: descendants dominate each record subtree, so
	// the published coverage formula's population-dilution stays small
	// (as in DBLP). Each a holds 1-2 b's, each b holds 5-10 c's.
	b.Begin("root")
	for i := 0; i < 200; i++ {
		b.Begin("a")
		for k, kn := 0, 1+r.Intn(2); k < kn; k++ {
			b.Begin("b")
			for l, ln := 0, 5+r.Intn(6); l < ln; l++ {
				b.Element("c", "")
			}
			b.End()
		}
		b.End()
	}
	b.End()
	tr := b.Tree()

	grid := histogram.MustUniformGrid(10, tr.MaxPos)
	trueHist := histogram.BuildTrue(tr, grid)
	mk := func(tag string) SubPattern {
		nodes := tr.NodesWithTag(tag)
		cov, err := histogram.BuildCoverage(tr, nodes, trueHist)
		if err != nil {
			t.Fatalf("coverage: %v", err)
		}
		return Leaf(histogram.BuildPosition(tr, nodes, grid), cov, true)
	}
	sa, sb, sc := mk("a"), mk("b"), mk("c")

	bc, err := JoinAncestor(sb, sc)
	if err != nil {
		t.Fatalf("join b,c: %v", err)
	}
	abc, err := JoinAncestor(sa, bc)
	if err != nil {
		t.Fatalf("join a,bc: %v", err)
	}

	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	resolve := func(name string) ([]xmltree.NodeID, error) {
		e, err := cat.Get(name)
		if err != nil {
			return nil, err
		}
		return e.Nodes, nil
	}
	real, err := match.CountTwig(tr, pattern.MustParse("//a//b//c"), resolve)
	if err != nil {
		t.Fatalf("CountTwig: %v", err)
	}
	if real == 0 {
		t.Skip("degenerate data")
	}
	if ratio := abc.Total() / real; ratio < 0.3 || ratio > 3 {
		t.Errorf("chained estimate %v vs real %v (ratio %v)", abc.Total(), real, ratio)
	}
	if abc.Hist.Total() > sa.Hist.Total()+1e-9 {
		t.Errorf("chained participation %v exceeds base a count %v", abc.Hist.Total(), sa.Hist.Total())
	}
}

func TestSubPatternValidateCatchesNaN(t *testing.T) {
	grid := histogram.MustUniformGrid(2, 10)
	h := histogram.NewPosition(grid)
	h.Set(0, 1, math.NaN())
	sp := SubPattern{Est: h, Hist: h, Base: h}
	if err := sp.validate(); err == nil {
		t.Errorf("validate should reject NaN")
	}
}

func TestJoinGridMismatch(t *testing.T) {
	a := Leaf(histogram.NewPosition(histogram.MustUniformGrid(4, 100)), nil, false)
	b := Leaf(histogram.NewPosition(histogram.MustUniformGrid(5, 100)), nil, false)
	if _, err := JoinAncestor(a, b); err == nil {
		t.Errorf("JoinAncestor grid mismatch: want error")
	}
	if _, err := JoinDescendant(a, b); err == nil {
		t.Errorf("JoinDescendant grid mismatch: want error")
	}
}
