package metrics

import (
	"testing"
	"time"
)

// Percentile edge cases the serving dashboards rely on: an empty
// histogram must read as all-zero, a single sample must dominate every
// quantile, a degenerate single-bucket distribution must interpolate
// within that bucket, and the tracked max must cap interpolation so a
// wide top bucket cannot inflate p99 past anything actually observed.

func TestQuantileSingleSample(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(3 * time.Millisecond)
	// Raw quantiles interpolate within the sample's power-of-two bucket
	// (2.048ms, 4.096ms].
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 2048*time.Microsecond || got > 4096*time.Microsecond {
			t.Errorf("Quantile(%v) = %v, want within the 2.048-4.096ms bucket", q, got)
		}
	}
	// The summary clamps every percentile to the tracked max.
	s := h.Summary()
	if s.Count != 1 || s.Max != 3*time.Millisecond || s.Mean != 3*time.Millisecond {
		t.Errorf("Summary = %+v, want count 1, max/mean 3ms", s)
	}
	if s.P50 > s.Max || s.P95 > s.Max || s.P99 > s.Max {
		t.Errorf("summary percentiles %v/%v/%v exceed the tracked max %v", s.P50, s.P95, s.P99, s.Max)
	}
}

func TestQuantileAllInOneBucket(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(100 * time.Microsecond)
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 < 64*time.Microsecond || p50 > 128*time.Microsecond {
		t.Errorf("p50 = %v, want inside the 64-128µs bucket", p50)
	}
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
	s := h.Summary()
	if s.P99 > 100*time.Microsecond {
		t.Errorf("summary P99 = %v exceeds the tracked max 100µs", s.P99)
	}
}

func TestQuantileMaxCapClamping(t *testing.T) {
	h := NewLatencyHistogram()
	// 99 fast, 1 slow: p99.9 interpolates inside the top occupied
	// bucket, whose upper bound is far above the observed max — the
	// tracked max must clamp it.
	for i := 0; i < 999; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(33 * time.Millisecond)
	s := h.Summary()
	if s.Max != 33*time.Millisecond {
		t.Errorf("Max = %v, want 33ms", s.Max)
	}
	if s.P99 > s.Max {
		t.Errorf("summary P99 = %v, want clamped to the 33ms max", s.P99)
	}
	// The raw interpolated quantile inside the slow sample's bucket can
	// exceed the observation by up to 2× — that is exactly why the
	// summary clamps; make sure the clamp actually tightened something.
	if raw := h.Quantile(0.9999); raw <= s.Max {
		t.Logf("raw q0.9999 = %v (within max; clamp not exercised this run)", raw)
	}
}

func TestValueHistogramEdges(t *testing.T) {
	h := NewValueHistogram()
	if s := h.Summary(); s.Count != 0 || s.P99 != 0 || s.Max != 0 {
		t.Errorf("empty value summary = %+v, want zeros", s)
	}
	h.Observe(1)
	s := h.Summary()
	if s.Count != 1 || s.Max != 1 {
		t.Errorf("single-sample value summary = %+v, want count/max 1", s)
	}
	if s.P99 > 1 {
		t.Errorf("P99 = %v exceeds max 1", s.P99)
	}
	// Values beyond the grid clamp into the top bucket, and the max cap
	// still reflects the genuine observation.
	h.Observe(1 << 30)
	if s := h.Summary(); s.Max != 1<<30 {
		t.Errorf("Max = %v, want 1<<30", s.Max)
	}
}

func TestRecentQPSAcrossIdleGaps(t *testing.T) {
	e := newEndpoint("test")
	now := time.Now().Unix()
	e.created = time.Now().Add(-time.Hour) // old endpoint: no young-endpoint shortcut
	// A burst 3 seconds ago, then silence: the ring must still hold the
	// burst (it is within the window) but average it over the window.
	for i := 0; i < 50; i++ {
		e.tick(now - 3)
	}
	qps := e.RecentQPS()
	want := 50.0 / recentWindow
	if qps < want*0.99 || qps > want*1.01 {
		t.Errorf("RecentQPS = %v, want ~%v (50 requests in a %ds window)", qps, want, int(recentWindow))
	}
	// A burst far older than the window must have aged out entirely,
	// even with no intervening traffic to overwrite its slot.
	e2 := newEndpoint("test2")
	e2.created = time.Now().Add(-time.Hour)
	for i := 0; i < 50; i++ {
		e2.tick(now - int64(recentWindow) - 40)
	}
	if qps := e2.RecentQPS(); qps != 0 {
		t.Errorf("RecentQPS after idle gap = %v, want 0 (burst aged out)", qps)
	}
	// Sparse traffic across the gap: one tagged second inside the
	// window counts, stale slots from before it do not.
	e3 := newEndpoint("test3")
	e3.created = time.Now().Add(-time.Hour)
	for i := 0; i < 20; i++ {
		e3.tick(now - int64(recentWindow) - 40) // stale
	}
	e3.tick(now - 1) // fresh
	if qps := e3.RecentQPS(); qps != 1.0/recentWindow {
		t.Errorf("RecentQPS sparse = %v, want %v", qps, 1.0/recentWindow)
	}
}
