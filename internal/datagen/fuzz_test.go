package datagen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestParseDTDNeverPanics feeds the DTD parser random declaration-ish
// soup: it must return a DTD or an error, never panic, and any accepted
// DTD must generate a valid tree.
func TestParseDTDNeverPanics(t *testing.T) {
	pieces := []string{
		"<!ELEMENT ", ">", "(", ")", "|", ",", "?", "*", "+",
		"#PCDATA", "EMPTY", "a", "b", "c", " ",
	}
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
				t.Logf("seed %d panicked: %v", seed, r)
			}
		}()
		r := rand.New(rand.NewSource(seed))
		var src string
		for i, n := 0, r.Intn(30); i < n; i++ {
			src += pieces[r.Intn(len(pieces))]
		}
		d, err := ParseDTD(src)
		if err != nil {
			return true
		}
		// Accepted: generation from the first declared element must
		// produce a valid tree (bounded).
		root := d.order[0]
		tr, err := d.Generate(GenConfig{Seed: seed, Root: root, MaxDepth: 6, MaxNodes: 200})
		if err != nil {
			t.Logf("seed %d: accepted DTD failed to generate: %v", seed, err)
			return false
		}
		if err := tr.Validate(); err != nil {
			t.Logf("seed %d: generated invalid tree: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
