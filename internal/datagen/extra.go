package datagen

import (
	"fmt"
	"math/rand"

	"xmlest/internal/xmltree"
)

// GenerateShakespeare builds a Shakespeare-play-shaped document
// (PLAY/ACT/SCENE/SPEECH/SPEAKER/LINE), one of the datasets the paper
// reports "substantially similar" results on. plays controls the
// number of PLAY documents merged into the database tree.
func GenerateShakespeare(seed int64, plays int) *xmltree.Tree {
	r := rand.New(rand.NewSource(seed))
	b := xmltree.NewBuilder()
	for p := 0; p < plays; p++ {
		b.Begin("PLAY")
		b.Element("TITLE", "The Tragedy of "+name(r))
		acts := 3 + r.Intn(3)
		for a := 0; a < acts; a++ {
			b.Begin("ACT")
			b.Element("TITLE", fmt.Sprintf("ACT %d", a+1))
			scenes := 2 + r.Intn(5)
			for s := 0; s < scenes; s++ {
				b.Begin("SCENE")
				b.Element("TITLE", fmt.Sprintf("SCENE %d", s+1))
				speeches := 5 + r.Intn(30)
				for sp := 0; sp < speeches; sp++ {
					b.Begin("SPEECH")
					b.Element("SPEAKER", name(r))
					lines := 1 + r.Intn(8)
					for l := 0; l < lines; l++ {
						b.Element("LINE", phrase(r, 4+r.Intn(6)))
					}
					b.End()
				}
				b.End()
			}
			b.End()
		}
		b.End()
	}
	return b.Tree()
}

// GenerateXMark builds a small XMark-auction-shaped document: the other
// benchmark dataset the paper mentions. items controls the number of
// auction items per region.
func GenerateXMark(seed int64, items int) *xmltree.Tree {
	r := rand.New(rand.NewSource(seed))
	b := xmltree.NewBuilder()
	b.Begin("site")

	b.Begin("regions")
	for _, region := range []string{"africa", "asia", "europe", "namerica"} {
		b.Begin(region)
		for i := 0; i < items; i++ {
			b.Begin("item")
			b.Attr("id", fmt.Sprintf("item%s%d", region, i))
			b.Element("name", phrase(r, 2))
			b.Begin("description")
			b.Begin("parlist")
			for k, kn := 0, 1+r.Intn(3); k < kn; k++ {
				b.Element("listitem", phrase(r, 5+r.Intn(10)))
			}
			b.End()
			b.End()
			if r.Intn(2) == 0 {
				b.Element("payment", "Creditcard")
			}
			b.End()
		}
		b.End()
	}
	b.End()

	b.Begin("people")
	for i := 0; i < items*2; i++ {
		b.Begin("person")
		b.Attr("id", fmt.Sprintf("person%d", i))
		b.Element("name", name(r))
		b.Element("emailaddress", "mailto:"+phrase(r, 1)+"@example.com")
		if r.Intn(3) == 0 {
			b.Begin("profile")
			b.Element("interest", phrase(r, 1))
			b.Element("education", "Graduate School")
			b.End()
		}
		b.End()
	}
	b.End()

	b.Begin("open_auctions")
	for i := 0; i < items; i++ {
		b.Begin("open_auction")
		b.Element("initial", fmt.Sprintf("%d.%02d", 10+r.Intn(200), r.Intn(100)))
		for k, kn := 0, r.Intn(5); k < kn; k++ {
			b.Begin("bidder")
			b.Element("date", fmt.Sprintf("0%d/1%d/2000", 1+r.Intn(8), r.Intn(9)))
			b.Element("increase", fmt.Sprintf("%d.00", 1+r.Intn(50)))
			b.End()
		}
		b.Element("current", fmt.Sprintf("%d.00", 50+r.Intn(500)))
		b.End()
	}
	b.End()

	b.End() // site
	return b.Tree()
}
