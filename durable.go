package xmlest

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"xmlest/internal/fsio"
	"xmlest/internal/metrics"
	"xmlest/internal/shard"
	"xmlest/internal/wal"
	"xmlest/internal/xmltree"
)

// DurableConfig configures OpenDurable.
type DurableConfig struct {
	// Options shape the estimator summaries checkpoints persist. The
	// grid size is pinned in the data directory's manifest: reopening
	// with a different grid is an error, since checkpointed summaries
	// serve as-is.
	Options Options

	// Fsync is the WAL fsync policy: "always" (the default — an
	// acknowledged append is on disk before the ack), "interval"
	// (background fsync every FsyncInterval; a crash can lose up to one
	// interval of acks) or "off" (the OS decides; fastest, weakest).
	Fsync string

	// FsyncInterval is the "interval" policy's cadence (default 100ms).
	FsyncInterval time.Duration

	// SegmentBytes rolls WAL segments at this size (default 64 MiB).
	SegmentBytes int64

	// CommitDelay is the group-commit latency budget: after the first
	// batch of a group arrives, the committer waits up to this long for
	// more concurrent appends to share the group's single fsync. 0 (the
	// default) adds no delay — groups still form naturally from
	// whatever queued while the previous commit was in flight.
	CommitDelay time.Duration

	// MaxGroupBytes caps one commit group's payload (default 8 MiB).
	MaxGroupBytes int64

	// IngestWorkers bounds concurrent parse + summary-build work on the
	// append pipeline's CPU stage (default GOMAXPROCS).
	IngestWorkers int

	// Bootstrap supplies the initial corpus and predicate vocabulary.
	// It runs on every boot: a fresh data directory adopts the returned
	// database outright, while a directory holding a checkpoint keeps
	// only its predicate recipe (the corpus already lives in the
	// checkpoint). Nil starts empty with the all-tags vocabulary.
	Bootstrap func() (*Database, error)

	// FS substitutes the filesystem the WAL, manifest and checkpoints
	// run on; nil means the real one. It exists for fault-injection
	// testing and operational drills (fsio.NewFaultFS) — production
	// deployments leave it nil.
	FS fsio.FS
}

// DegradedError marks a durable mutation refused or failed because a
// storage component is in a failed state. See shard.DegradedError.
type DegradedError = shard.DegradedError

// RecoveryInfo describes one boot-time recovery. See
// shard.RecoveryInfo.
type RecoveryInfo = shard.RecoveryInfo

// DurabilityStats is the durable layer's introspection surface. See
// shard.DurabilityStats.
type DurabilityStats = shard.DurabilityStats

// OpenDurable opens a database backed by a data directory with
// LSM-style durability: every Append is written to a segmented,
// CRC-framed write-ahead log (fsynced per policy) before it is
// installed — and before it is acknowledged — checkpoints persist
// shard summaries behind an atomically-renamed manifest and truncate
// the covered log, and boot-time recovery replays manifest + WAL tail.
// Recovery is exact: replayed batches are the same raw documents, so
// post-recovery estimates are bit-identical to a process that never
// crashed, and the serving version never regresses below any version
// a client was acknowledged at.
//
// Close the returned database to checkpoint and release the WAL; a
// process that dies without Close recovers on the next OpenDurable.
func OpenDurable(dir string, cfg DurableConfig) (*Database, error) {
	mode := wal.ModeAlways
	if cfg.Fsync != "" {
		var err error
		if mode, err = wal.ParseMode(cfg.Fsync); err != nil {
			return nil, err
		}
	}
	var bootstrap func() (*shard.Store, error)
	if cfg.Bootstrap != nil {
		bootstrap = func() (*shard.Store, error) {
			db, err := cfg.Bootstrap()
			if err != nil {
				return nil, err
			}
			return db.store, nil
		}
	}
	d, err := shard.OpenDurable(dir, bootstrap, shard.DurableConfig{
		Options: cfg.Options,
		WAL: wal.Options{
			Mode:         mode,
			Interval:     cfg.FsyncInterval,
			SegmentBytes: cfg.SegmentBytes,
		},
		Commit: wal.CommitterOptions{
			MaxDelay:      cfg.CommitDelay,
			MaxGroupBytes: cfg.MaxGroupBytes,
		},
		IngestWorkers: cfg.IngestWorkers,
		FS:            cfg.FS,
	})
	if err != nil {
		return nil, err
	}
	return &Database{store: d.Store(), durable: d}, nil
}

// Durable reports whether the database is backed by a data directory.
func (db *Database) Durable() bool { return db.durable != nil }

// Checkpoint persists the serving set (shard summaries + manifest) and
// truncates the covered WAL prefix, returning the pinned version. It
// errors on a non-durable database.
func (db *Database) Checkpoint() (uint64, error) {
	if db.durable == nil {
		return 0, fmt.Errorf("xmlest: Checkpoint on a non-durable database (use OpenDurable)")
	}
	return db.durable.Checkpoint()
}

// Close checkpoints a durable database and releases its WAL; the data
// directory can then be reopened with OpenDurable. On a non-durable
// database it is a no-op.
func (db *Database) Close() error {
	if db.durable == nil {
		return nil
	}
	return db.durable.Close()
}

// DurabilityStats snapshots the durable layer (WAL size, fsync
// watermarks, checkpoint state, boot recovery). ok is false for
// non-durable databases.
func (db *Database) DurabilityStats() (DurabilityStats, bool) {
	if db.durable == nil {
		return DurabilityStats{}, false
	}
	return db.durable.Stats(), true
}

// Degraded reports the failed storage component of a durable database,
// if any: "wal" when the log has sealed after an I/O failure (appends
// refused until restart) or "checkpoint" when the last checkpoint
// attempt failed (clears on the next success). Reads are never
// degraded. Always false for non-durable databases.
func (db *Database) Degraded() (component, reason string, degraded bool) {
	if db.durable == nil {
		return "", "", false
	}
	return db.durable.Degraded()
}

// Collectors returns the database's Prometheus collectors — the store's
// serving-set/merged-serving families plus, for durable databases, the
// WAL, group-commit, checkpoint, and append-pipeline families. The
// daemon registers them on its metrics registry; embedders can do the
// same with their own exposition.
func (db *Database) Collectors() []metrics.Collector {
	cs := []metrics.Collector{db.store}
	if db.durable != nil {
		cs = append(cs, db.durable)
	}
	return cs
}

// DurableSeq returns the newest WAL sequence known fsynced — a
// lock-free read fit for the append hot path. Zero on non-durable
// databases.
func (db *Database) DurableSeq() uint64 {
	if db.durable == nil {
		return 0
	}
	return db.durable.DurableSeq()
}

// DurableBackend exposes the underlying durable store, the surface the
// replication layer ships from (leader) and applies into (follower) —
// see internal/replica. Nil for non-durable databases. Like Store, it
// hands an embedder the internal engine; use it for wiring, not for
// bypassing the facade's append path.
func (db *Database) DurableBackend() *shard.DurableStore { return db.durable }

// Recovery reports what boot-time recovery rebuilt. ok is false for
// non-durable databases.
func (db *Database) Recovery() (RecoveryInfo, bool) {
	if db.durable == nil {
		return RecoveryInfo{}, false
	}
	return db.durable.Recovery(), true
}

// appendDurable routes one batch of raw documents through the WAL.
func (db *Database) appendDurable(docs [][]byte) (ShardInfo, error) {
	sh, _, err := db.durable.AppendDocs(docs)
	if err != nil {
		return ShardInfo{}, err
	}
	return shardInfo(sh), nil
}

// slurp drains readers into raw per-document byte slices.
func slurp(readers []io.Reader) ([][]byte, error) {
	docs := make([][]byte, len(readers))
	for i, r := range readers {
		b, err := io.ReadAll(r)
		if err != nil {
			return nil, err
		}
		docs[i] = b
	}
	return docs, nil
}

// serializeDocs renders each document of a tree (each child of the
// dummy root) as standalone XML, so an already-parsed tree can be
// re-logged as raw documents. Parsing is whitespace-trimming, so the
// indentation WriteXML adds does not change the replayed tree.
func serializeDocs(tree *xmltree.Tree) ([][]byte, error) {
	var docs [][]byte
	for c := tree.Nodes[tree.Root()].FirstChild; c != xmltree.InvalidNode; c = tree.Nodes[c].NextSibling {
		var buf bytes.Buffer
		if err := xmltree.WriteXML(&buf, tree, c); err != nil {
			return nil, fmt.Errorf("xmlest: durable append: %w", err)
		}
		docs = append(docs, buf.Bytes())
	}
	if len(docs) == 0 {
		return nil, fmt.Errorf("xmlest: refusing to append an empty tree")
	}
	return docs, nil
}
