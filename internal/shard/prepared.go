package shard

import (
	"time"

	"xmlest/internal/core"
	"xmlest/internal/pattern"
)

// Prepared is a twig pattern compiled against one shard set: one
// core.PreparedQuery per shard that can resolve every predicate of the
// pattern. It is immutable and safe for concurrent use; its estimate
// is the cross-shard sum, like Set.EstimateTwig, but with each shard's
// parse/resolve/fold work done once.
type Prepared struct {
	set     *Set
	queries []*core.PreparedQuery
}

// Prepare compiles the pattern against every shard summary for opts.
// Shards lacking one of the pattern's predicates are skipped (they
// contribute zero); a predicate unknown to every shard is an error.
func (s *Set) Prepare(p *pattern.Pattern, opts core.Options) (*Prepared, error) {
	sums, err := s.summaries(opts)
	if err != nil {
		return nil, err
	}
	names := patternNames(p)
	if err := checkResolvable(sums, names); err != nil {
		return nil, err
	}
	pr := &Prepared{set: s}
	for _, est := range sums {
		if !hasAll(est, names) {
			continue
		}
		q, err := est.Prepare(p)
		if err != nil {
			return nil, err
		}
		pr.queries = append(pr.queries, q)
	}
	return pr, nil
}

// Set returns the shard set the query was prepared against, so callers
// can detect staleness and rebind.
func (pr *Prepared) Set() *Set { return pr.set }

// Estimate sums the per-shard estimates of the compiled twig.
func (pr *Prepared) Estimate() (core.Result, error) {
	start := time.Now()
	out := core.Result{}
	for _, q := range pr.queries {
		r, err := q.Estimate()
		if err != nil {
			return core.Result{}, err
		}
		out.Estimate += r.Estimate
		out.UsedNoOverlap = out.UsedNoOverlap || r.UsedNoOverlap
	}
	out.Elapsed = time.Since(start)
	return out, nil
}
