package shard

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"xmlest/internal/core"
	"xmlest/internal/fsio"
	"xmlest/internal/manifest"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/wal"
	"xmlest/internal/xmltree"
)

// The chaos workload: chaosBatches single-doc appends, each with a
// unique tag, interleaved with checkpoints. Unique tags make the
// acked-or-absent invariant directly observable: batch i is present in
// a recovered store iff //chaos<i> estimates exactly what the control
// store says, and absent iff it estimates zero.
const chaosBatches = 8

func chaosDoc(i int) [][]byte {
	return [][]byte{[]byte(fmt.Sprintf("<department><chaos%d>p%d</chaos%d></department>", i, i, i))}
}

func chaosCfg(fsys fsio.FS) DurableConfig {
	return DurableConfig{
		Options: durableTestOpts,
		WAL:     wal.Options{Mode: wal.ModeAlways},
		FS:      fsys,
	}
}

// runChaosWorkload runs the fixed workload on fsys, tolerating
// injected failures, and reports which batches were acknowledged.
// shutdown releases descriptors (call it after PowerCut so the "crash"
// happens first; its own I/O failures are expected and ignored).
func runChaosWorkload(dir string, fsys fsio.FS) (acked []int, shutdown func()) {
	d, err := OpenDurable(dir, nil, chaosCfg(fsys))
	if err != nil {
		return nil, func() {}
	}
	for i := 0; i < chaosBatches; i++ {
		if i == 3 || i == 5 {
			_, _ = d.Checkpoint() // may fail under fault: degraded, keep going
		}
		if _, _, err := d.AppendDocs(chaosDoc(i)); err == nil {
			acked = append(acked, i)
		}
	}
	_, _ = d.Checkpoint()
	return acked, func() { _ = d.Close() }
}

// chaosControl builds the never-crashed reference: a plain in-memory
// store holding exactly the acknowledged batches.
func chaosControl(t *testing.T, acked []int) *Store {
	t.Helper()
	st := NewStore(predicate.Spec{AllTags: true})
	for _, i := range acked {
		tree, err := xmltree.ParseCollection(readerSlice(chaosDoc(i)), xmltree.DefaultParseOptions)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.AppendTree(tree); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// chaosEstimates evaluates //chaos<i> for every batch index. A batch
// that is absent has no tag=chaos<i> histogram in any shard — the
// estimator refuses the unknown predicate, which this probe maps to an
// estimate of zero (identically for control and recovered stores, so
// the bit-for-bit comparison stays meaningful).
func chaosEstimates(t *testing.T, st *Store, opts core.Options) []float64 {
	t.Helper()
	set := st.Current()
	out := make([]float64, chaosBatches)
	for i := 0; i < chaosBatches; i++ {
		p, err := pattern.Parse(fmt.Sprintf("//chaos%d", i))
		if err != nil {
			t.Fatal(err)
		}
		res, err := set.EstimateTwig(p, opts)
		switch {
		case err == nil:
			out[i] = res.Estimate
		case strings.Contains(err.Error(), "no histogram for predicate"):
			out[i] = 0
		default:
			t.Fatalf("estimate //chaos%d: %v", i, err)
		}
	}
	return out
}

// verifyAckedOrAbsent recovers dir with a clean filesystem and asserts
// the invariant: every acked batch is present with bit-identical
// estimates, every non-acked batch is absent (zero estimate — in this
// workload a failed append seals the log before any of its bytes are
// fsynced, so "maybe present" collapses to "absent").
func verifyAckedOrAbsent(t *testing.T, dir string, acked []int, label string) {
	t.Helper()
	d, err := OpenDurable(dir, nil, durableCfg())
	if err != nil {
		t.Fatalf("%s: recovery must always succeed, got: %v", label, err)
	}
	defer d.Close()
	want := chaosEstimates(t, chaosControl(t, acked), durableTestOpts)
	got := chaosEstimates(t, d.Store(), durableTestOpts)
	for i := 0; i < chaosBatches; i++ {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: //chaos%d: recovered %v, control %v (acked=%v)",
				label, i, got[i], want[i], acked)
		}
	}
}

// chaosControlRun executes the workload fault-free once to discover the
// deterministic op schedule the sweeps replay against.
func chaosControlRun(t *testing.T) *fsio.FaultFS {
	t.Helper()
	control := fsio.NewFaultFS(fsio.OS, fsio.Faults{})
	dir := t.TempDir()
	acked, shutdown := runChaosWorkload(dir, control)
	shutdown()
	if len(acked) != chaosBatches {
		t.Fatalf("fault-free control run acked %v, want all %d batches", acked, chaosBatches)
	}
	verifyAckedOrAbsent(t, dir, acked, "control")
	return control
}

func runChaosCase(t *testing.T, faults fsio.Faults, label string) {
	t.Helper()
	dir := t.TempDir()
	ffs := fsio.NewFaultFS(fsio.OS, faults)
	acked, shutdown := runChaosWorkload(dir, ffs)
	ffs.PowerCut() // crash first...
	shutdown()     // ...then release descriptors
	verifyAckedOrAbsent(t, dir, acked, label)
}

// TestChaosSweepEveryOp injects a one-shot EIO at every mutating I/O
// operation the workload performs, crashes with a power cut, recovers,
// and requires acked-or-absent with bit-identical estimates each time.
func TestChaosSweepEveryOp(t *testing.T) {
	total := chaosControlRun(t).OpCount()
	if total < 20 {
		t.Fatalf("workload performed only %d ops; sweep would be vacuous", total)
	}
	for op := uint64(1); op <= total; op++ {
		op := op
		t.Run(fmt.Sprintf("fail-op-%d", op), func(t *testing.T) {
			t.Parallel()
			runChaosCase(t, fsio.Faults{FailOp: op}, fmt.Sprintf("fail-op=%d", op))
		})
	}
}

// TestChaosSweepTornWrites makes every write in the schedule a torn
// write (half lands, then EIO).
func TestChaosSweepTornWrites(t *testing.T) {
	writes := chaosControlRun(t).OpsByKind(fsio.OpWrite)
	if len(writes) == 0 {
		t.Fatal("workload performed no writes")
	}
	for _, w := range writes {
		w := w
		t.Run(fmt.Sprintf("torn-op-%d", w.Index), func(t *testing.T) {
			t.Parallel()
			runChaosCase(t, fsio.Faults{FailOp: w.Index, Torn: true},
				fmt.Sprintf("torn-op=%d", w.Index))
		})
	}
}

// TestChaosSweepStickyDisk turns the disk permanently bad at a spread
// of op indexes — every later operation fails too.
func TestChaosSweepStickyDisk(t *testing.T) {
	total := chaosControlRun(t).OpCount()
	for op := uint64(1); op <= total; op += 5 {
		op := op
		t.Run(fmt.Sprintf("sticky-op-%d", op), func(t *testing.T) {
			t.Parallel()
			runChaosCase(t, fsio.Faults{FailOp: op, Sticky: true},
				fmt.Sprintf("sticky-op=%d", op))
		})
	}
}

// TestChaosRandomized composes fault schedules from a fixed seed: the
// run is reproducible, but covers combinations the exhaustive sweeps
// do not (sync gates + ENOSPC budgets + torn writes together).
func TestChaosRandomized(t *testing.T) {
	total := chaosControlRun(t).OpCount()
	rng := rand.New(rand.NewSource(20020807))
	for run := 0; run < 24; run++ {
		var f fsio.Faults
		if rng.Intn(2) == 0 {
			f.FailOp = 1 + uint64(rng.Int63n(int64(total)))
			f.Torn = rng.Intn(2) == 0
			f.Sticky = rng.Intn(3) == 0
		}
		if rng.Intn(3) == 0 {
			f.SyncFailAfter = 1 + uint64(rng.Int63n(24))
		}
		if rng.Intn(3) == 0 {
			f.ENOSPCAfter = 1 + rng.Int63n(8192)
		}
		t.Run(fmt.Sprintf("run-%d", run), func(t *testing.T) {
			t.Parallel()
			runChaosCase(t, f, fmt.Sprintf("random run %d (%+v)", run, f))
		})
	}
}

// TestFsyncFailureNeverAckedEndToEnd pins the headline guarantee at the
// store level: when the very first append's fsync fails, the client
// gets an error, nothing is installed, the store reports itself
// degraded, and recovery finds an empty database.
func TestFsyncFailureNeverAckedEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ffs := fsio.NewFaultFS(fsio.OS, fsio.Faults{})
	d, err := OpenDurable(dir, nil, chaosCfg(ffs))
	if err != nil {
		t.Fatal(err)
	}
	v0 := d.Store().Version()
	ffs.SetFaults(fsio.Faults{SyncFailAfter: 1}) // every fsync from here fails
	if _, _, err := d.AppendDocs(chaosDoc(0)); err == nil {
		t.Fatal("append whose fsync failed must return an error, not an ack")
	}
	if v := d.Store().Version(); v != v0 {
		t.Fatalf("serving version moved %d -> %d on a failed append", v0, v)
	}
	_, _, err2 := d.AppendDocs(chaosDoc(1))
	var de *DegradedError
	if !errors.As(err2, &de) || de.Component != "wal" {
		t.Fatalf("append after seal: got %v, want DegradedError{wal}", err2)
	}
	if comp, _, bad := d.Degraded(); !bad || comp != "wal" {
		t.Fatalf("Degraded() = (%q, _, %v), want (wal, true)", comp, bad)
	}
	st := d.Stats()
	if !st.Degraded || st.DegradedComponent != "wal" {
		t.Fatalf("Stats degraded fields: %+v", st)
	}
	ffs.PowerCut()
	_ = d.Close()
	verifyAckedOrAbsent(t, dir, nil, "fsync-failure")
}

// TestCheckpointAtomicityUnderFaults fails every I/O operation of a
// checkpoint in turn and asserts the previous checkpoint is never
// damaged: the manifest stays loadable at the old or new version, the
// store keeps serving and reports transient checkpoint degradation, a
// retry succeeds and clears it, and a subsequent crash still recovers
// every acked batch bit-identically.
func TestCheckpointAtomicityUnderFaults(t *testing.T) {
	// The prelude every case repeats: 3 acked appends, a clean
	// checkpoint, 2 more acked appends.
	prelude := func(t *testing.T, ffs *fsio.FaultFS, dir string) (*DurableStore, uint64) {
		t.Helper()
		d, err := OpenDurable(dir, nil, chaosCfg(ffs))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, _, err := d.AppendDocs(chaosDoc(i)); err != nil {
				t.Fatal(err)
			}
		}
		v1, err := d.Checkpoint()
		if err != nil {
			t.Fatalf("clean checkpoint: %v", err)
		}
		for i := 3; i < 5; i++ {
			if _, _, err := d.AppendDocs(chaosDoc(i)); err != nil {
				t.Fatal(err)
			}
		}
		return d, v1
	}

	// Control: how many ops does the second checkpoint perform?
	control := fsio.NewFaultFS(fsio.OS, fsio.Faults{})
	cd, _ := prelude(t, control, t.TempDir())
	before := control.OpCount()
	if _, err := cd.Checkpoint(); err != nil {
		t.Fatalf("control second checkpoint: %v", err)
	}
	cpOps := control.OpCount() - before
	cd.Close()
	if cpOps == 0 {
		t.Fatal("second checkpoint performed no ops; test workload is wrong")
	}

	acked := []int{0, 1, 2, 3, 4}
	for off := uint64(1); off <= cpOps; off++ {
		off := off
		t.Run(fmt.Sprintf("cp-op-%d", off), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			ffs := fsio.NewFaultFS(fsio.OS, fsio.Faults{})
			d, v1 := prelude(t, ffs, dir)
			ffs.SetFaults(fsio.Faults{FailOp: ffs.OpCount() + off})
			v2target := d.Store().Version()
			if _, err := d.Checkpoint(); err == nil {
				t.Fatalf("checkpoint with op %d failing: want error", off)
			}
			// The previous checkpoint is intact: manifest loadable at
			// old or new version, never torn.
			man, ok, err := manifest.Load(dir)
			if err != nil || !ok {
				t.Fatalf("manifest after failed checkpoint: ok=%v err=%v", ok, err)
			}
			if man.Version != v1 && man.Version != v2target {
				t.Fatalf("manifest version %d, want %d (old) or %d (new)", man.Version, v1, v2target)
			}
			// Serving continues; degradation is transient and typed.
			if got := chaosEstimates(t, d.Store(), durableTestOpts); got[0] == 0 {
				t.Fatal("store stopped serving after a failed checkpoint")
			}
			if comp, _, bad := d.Degraded(); !bad || comp != "checkpoint" {
				t.Fatalf("Degraded() = (%q, _, %v), want (checkpoint, true)", comp, bad)
			}
			if st := d.Stats(); st.CheckpointFailures == 0 || !st.Degraded {
				t.Fatalf("stats after failed checkpoint: %+v", st)
			}
			// Appends are still accepted: the WAL is healthy.
			if _, _, err := d.AppendDocs(chaosDoc(5)); err != nil {
				t.Fatalf("append during checkpoint degradation: %v", err)
			}
			// The disk recovers; the retry succeeds and clears the state.
			ffs.ClearFaults()
			if _, err := d.Checkpoint(); err != nil {
				t.Fatalf("retried checkpoint: %v", err)
			}
			if _, _, bad := d.Degraded(); bad {
				t.Fatal("degradation must clear on a successful checkpoint")
			}
			// And a crash after all that still loses nothing.
			ffs.PowerCut()
			_ = d.Close()
			verifyAckedOrAbsent(t, dir, append(acked, 5), fmt.Sprintf("cp-op=%d", off))
		})
	}
}
