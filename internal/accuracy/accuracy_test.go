package accuracy

import (
	"math"
	"strings"
	"testing"

	"xmlest/internal/core"
	"xmlest/internal/datagen"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

func hierSetup(t *testing.T) (*predicate.Catalog, *core.Estimator) {
	t.Helper()
	tr := datagen.GenerateHier(datagen.DefaultHierConfig)
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	est, err := core.NewEstimator(cat, core.Options{GridSize: 10})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	return cat, est
}

func TestPairWorkloadCoversAllPairs(t *testing.T) {
	cat, _ := hierSetup(t)
	w := PairWorkload(cat)
	// 5 tags -> 20 ordered pairs.
	if len(w) != 20 {
		t.Fatalf("workload size = %d, want 20", len(w))
	}
	seen := map[string]bool{}
	for _, q := range w {
		if seen[q] {
			t.Errorf("duplicate query %s", q)
		}
		seen[q] = true
		if !strings.HasPrefix(q, "//") {
			t.Errorf("bad query syntax %s", q)
		}
	}
}

func TestEvaluatePairWorkload(t *testing.T) {
	cat, est := hierSetup(t)
	results, report, err := Evaluate(cat, est, PairWorkload(cat))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if report.Queries != len(results) || report.Queries != 20 {
		t.Fatalf("queries = %d, want 20", report.Queries)
	}
	if report.Q50 < 1 || report.Q90 < report.Q50 || report.QMax < report.Q90 {
		t.Errorf("quantiles not ordered: %v %v %v", report.Q50, report.Q90, report.QMax)
	}
	// Median pairwise q-error on this dataset should be modest: the
	// estimator is the paper's whole point.
	if report.Q50 > 5 {
		t.Errorf("median q-error %v too large", report.Q50)
	}
	for _, r := range results {
		if math.IsNaN(r.Est) || r.Est < 0 {
			t.Errorf("%s: bad estimate %v", r.Pattern, r.Est)
		}
		if r.QError < 1 {
			t.Errorf("%s: q-error %v < 1", r.Pattern, r.QError)
		}
	}
}

func TestRandomTwigWorkload(t *testing.T) {
	cat, est := hierSetup(t)
	w := RandomTwigWorkload(cat, 60, 7)
	if len(w) != 60 {
		t.Fatalf("workload size = %d, want 60", len(w))
	}
	// Deterministic per seed.
	w2 := RandomTwigWorkload(cat, 60, 7)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatalf("workload not deterministic at %d", i)
		}
	}
	if w3 := RandomTwigWorkload(cat, 60, 8); w3[0] == w[0] && w3[1] == w[1] && w3[2] == w[2] {
		t.Errorf("different seed should change the workload")
	}
	_, report, err := Evaluate(cat, est, w)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if report.Queries != 60 {
		t.Errorf("queries = %d, want 60", report.Queries)
	}
	if report.QMax < 1 {
		t.Errorf("bad QMax %v", report.QMax)
	}
}

func TestEvaluateRejectsBadPattern(t *testing.T) {
	cat, est := hierSetup(t)
	if _, _, err := Evaluate(cat, est, []string{"not a pattern"}); err == nil {
		t.Errorf("want parse error")
	}
	if _, _, err := Evaluate(cat, est, []string{"//nosuchtag//name"}); err == nil {
		t.Errorf("want missing-predicate error")
	}
}

func TestQErrorSmoothing(t *testing.T) {
	if q := qError(0, 0); q != 1 {
		t.Errorf("qError(0,0) = %v, want 1", q)
	}
	if q := qError(9, 0); q != 10 {
		t.Errorf("qError(9,0) = %v, want 10", q)
	}
	if q := qError(0, 9); q != 10 {
		t.Errorf("qError(0,9) = %v, want 10", q)
	}
}

func TestPatternSafeFiltersAttributes(t *testing.T) {
	tr, err := xmltree.ParseString(`<a id="1"><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	w := PairWorkload(cat)
	for _, q := range w {
		if strings.Contains(q, "@") {
			t.Errorf("attribute tag leaked into workload: %s", q)
		}
	}
}
