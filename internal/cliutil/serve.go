package cliutil

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xmlest/internal/server"
)

// RunUntilSignal starts the daemon, blocks until SIGINT or SIGTERM,
// then shuts it down gracefully within the drain budget — the shared
// serving loop of xqestd and `xqest serve`.
func RunUntilSignal(srv *server.Server, drain time.Duration) error {
	if _, err := srv.Start(); err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "received %s: draining and shutting down\n", s)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return srv.Shutdown(ctx)
}
