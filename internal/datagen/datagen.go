// Package datagen generates the datasets the paper's evaluation uses,
// as documented substitutes for resources we cannot ship (DESIGN.md §3):
//
//   - a DBLP-shaped bibliography tuned to the predicate cardinalities of
//     the paper's Table 1 (dblp.go);
//   - a generic DTD-driven random document generator standing in for the
//     IBM alphaWorks XML Generator (dtd.go), instantiated with the exact
//     manager/department/employee DTD of Section 5.2 and tuned to
//     Table 3 (hier.go);
//   - small XMark-like and Shakespeare-like generators for structural
//     variety in tests and examples (extra.go).
//
// All generators are deterministic given a seed.
package datagen

import (
	"math/rand"
)

// words is a small vocabulary for synthetic text content.
var words = []string{
	"query", "index", "tree", "join", "cost", "plan", "cache", "node",
	"stream", "graph", "hash", "sort", "scan", "merge", "split", "page",
	"lock", "log", "view", "path", "twig", "label", "range", "level",
}

// phrase returns n space-separated pseudo-words.
func phrase(r *rand.Rand, n int) string {
	out := make([]byte, 0, n*6)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, words[r.Intn(len(words))]...)
	}
	return string(out)
}

// name returns a synthetic person name.
func name(r *rand.Rand) string {
	first := []string{"Alice", "Bob", "Carol", "David", "Eva", "Frank", "Grace", "Hiro", "Ines", "Jun"}
	last := []string{"Smith", "Jones", "Chen", "Patel", "Mueller", "Tanaka", "Okafor", "Silva", "Novak", "Kim"}
	return first[r.Intn(len(first))] + " " + last[r.Intn(len(last))]
}

// splitCount distributes total units over n slots, each slot getting at
// least minPer, with the remainder spread by the PRNG. It returns a
// slice of length n summing exactly to total. If total < n*minPer, the
// first slots receive minPer until the budget runs out.
func splitCount(r *rand.Rand, total, n, minPer int) []int {
	out := make([]int, n)
	remaining := total
	for i := range out {
		if remaining >= minPer {
			out[i] = minPer
			remaining -= minPer
		}
	}
	for remaining > 0 {
		out[r.Intn(n)]++
		remaining--
	}
	return out
}

// pickSubset returns k distinct indices from [0, n) (k <= n).
func pickSubset(r *rand.Rand, n, k int) []int {
	perm := r.Perm(n)
	return perm[:k]
}
