package histogram

import (
	"fmt"
	"sync/atomic"

	"xmlest/internal/xmltree"
)

// Position is a position histogram (Section 3.1): cell (i, j) counts
// the nodes satisfying a predicate whose start label falls in bucket i
// and whose end label falls in bucket j. Because start < end for every
// node, only cells with j >= i can be non-zero, and Lemma 1 further
// forbids partially-overlapping cell patterns; Theorem 1 bounds the
// number of non-zero cells by O(g).
//
// Counts are float64 because estimated histograms (the output of join
// estimation and compound-predicate synthesis) are fractional.
type Position struct {
	grid  Grid
	cells []float64 // row-major: cells[i*g+j]
	total float64

	// Lazily built, atomically published caches: the sparse non-zero
	// cell list and the partial/prefix summation planes. Any mutation
	// (Add, Set, Scale) invalidates both; reads rebuild on demand.
	// Concurrent readers may race to build, which only duplicates work —
	// both build identical values from the same cells.
	nz   atomic.Pointer[[]Cell]
	sums atomic.Pointer[Sums]
}

// NewPosition returns an empty histogram on the given grid.
func NewPosition(grid Grid) *Position {
	g := grid.Size()
	return &Position{grid: grid, cells: make([]float64, g*g)}
}

// BuildPosition constructs the position histogram of the given node list
// over the grid. The node list is typically a catalog entry's satisfying
// set.
func BuildPosition(t *xmltree.Tree, nodes []xmltree.NodeID, grid Grid) *Position {
	h := NewPosition(grid)
	for _, id := range nodes {
		n := t.Node(id)
		h.Add(grid.Bucket(n.Start), grid.Bucket(n.End), 1)
	}
	return h
}

// BuildTrue constructs the histogram of the TRUE predicate — every node
// in the tree except the dummy root. It is the normalization constant
// for compound-predicate estimation and the population denominator for
// coverage histograms.
func BuildTrue(t *xmltree.Tree, grid Grid) *Position {
	h := NewPosition(grid)
	for id := 1; id < len(t.Nodes); id++ {
		n := &t.Nodes[id]
		h.Add(grid.Bucket(n.Start), grid.Bucket(n.End), 1)
	}
	return h
}

// BuildPositionFromCells constructs the position histogram of a node
// list from precomputed node cells (see ComputeNodeCells), avoiding the
// per-node bucket searches of BuildPosition. It is the per-predicate
// build the estimator's construction pipeline uses: cells are computed
// once per tree and shared across every predicate.
func BuildPositionFromCells(nc *NodeCells, nodes []xmltree.NodeID) *Position {
	h := NewPosition(nc.grid)
	g := nc.grid.Size()
	for _, id := range nodes {
		h.cells[int(nc.I[id])*g+int(nc.J[id])]++
	}
	h.total = float64(len(nodes))
	return h
}

// BuildTrueFromCells constructs the TRUE histogram from precomputed
// node cells.
func BuildTrueFromCells(nc *NodeCells) *Position {
	h := NewPosition(nc.grid)
	g := nc.grid.Size()
	for id := 1; id < len(nc.I); id++ {
		h.cells[int(nc.I[id])*g+int(nc.J[id])]++
	}
	h.total = float64(len(nc.I) - 1)
	return h
}

// Grid returns the histogram's grid.
func (h *Position) Grid() Grid { return h.grid }

// Count returns the count in cell (i, j).
func (h *Position) Count(i, j int) float64 {
	return h.cells[i*h.grid.Size()+j]
}

// Add adds v to cell (i, j). v may be negative (used by estimation
// intermediaries); totals are maintained.
func (h *Position) Add(i, j int, v float64) {
	h.cells[i*h.grid.Size()+j] += v
	h.total += v
	h.invalidate()
}

// Set overwrites cell (i, j).
func (h *Position) Set(i, j int, v float64) {
	idx := i*h.grid.Size() + j
	h.total += v - h.cells[idx]
	h.cells[idx] = v
	h.invalidate()
}

// invalidate drops the cached sparse cell list and summation planes.
func (h *Position) invalidate() {
	h.nz.Store(nil)
	h.sums.Store(nil)
}

// Total returns the sum over all cells.
func (h *Position) Total() float64 { return h.total }

// NonZero returns the number of cells with a non-zero count (the
// quantity Theorem 1 bounds by O(g)). It reads the cached sparse cell
// list, so repeated calls on a built histogram skip the dense scan.
func (h *Position) NonZero() int {
	return len(h.NonZeroCells())
}

// Clone returns a deep copy.
func (h *Position) Clone() *Position {
	out := &Position{grid: h.grid, cells: make([]float64, len(h.cells)), total: h.total}
	copy(out.cells, h.cells)
	return out
}

// Scale multiplies every cell by f and returns the histogram for
// chaining.
func (h *Position) Scale(f float64) *Position {
	for i := range h.cells {
		h.cells[i] *= f
	}
	h.total *= f
	h.invalidate()
	return h
}

// NonZeroCells returns the histogram's non-zero cells in (i, j) order —
// the sparse representation whose size Theorem 1 bounds by O(g) for
// built histograms. The list is computed on first use and cached until
// the histogram is mutated. Callers must not modify the returned slice.
func (h *Position) NonZeroCells() []Cell {
	if p := h.nz.Load(); p != nil {
		return *p
	}
	g := h.grid.Size()
	cells := make([]Cell, 0, 2*g)
	for i := 0; i < g; i++ {
		for j := i; j < g; j++ {
			if c := h.cells[i*g+j]; c != 0 {
				cells = append(cells, Cell{I: i, J: j, Count: c})
			}
		}
	}
	h.nz.Store(&cells)
	return cells
}

// Sums returns the histogram's partial/prefix summation planes,
// computed on first use and cached until the histogram is mutated.
// Sharing the cached planes across joins turns each subsequent join
// against this histogram from O(g²) into O(nnz of the other operand).
func (h *Position) Sums() *Sums {
	if s := h.sums.Load(); s != nil {
		return s
	}
	s := newSums(h)
	h.sums.Store(s)
	return s
}

// EachNonZero calls fn for every non-zero cell in (i, j) order. It
// iterates the cached sparse cell list (see NonZeroCells); callers must
// not mutate the histogram from inside fn.
func (h *Position) EachNonZero(fn func(i, j int, count float64)) {
	for _, c := range h.NonZeroCells() {
		fn(c.I, c.J, c.Count)
	}
}

// CheckLemma1 verifies Lemma 1 on a built histogram: a non-zero count in
// cell (i, j) implies zero counts in (k, l) with i < k < j and j < l
// (a node starting strictly inside the first node's span but ending
// beyond it would partially overlap it), and symmetrically in (k, l)
// with k < i and i < l < j. Estimated histograms need not satisfy the
// lemma; built ones must. Returns an error naming the first violation.
func (h *Position) CheckLemma1() error {
	g := h.grid.Size()
	var err error
	h.EachNonZero(func(i, j int, _ float64) {
		if err != nil {
			return
		}
		for k := i + 1; k < j; k++ {
			for l := j + 1; l < g; l++ {
				if h.Count(k, l) != 0 {
					err = fmt.Errorf("histogram: lemma 1 violated: (%d,%d) and (%d,%d) both non-zero", i, j, k, l)
					return
				}
			}
		}
		for k := 0; k < i; k++ {
			for l := i + 1; l < j; l++ {
				if h.Count(k, l) != 0 {
					err = fmt.Errorf("histogram: lemma 1 violated: (%d,%d) and (%d,%d) both non-zero", i, j, k, l)
					return
				}
			}
		}
	})
	return err
}

// validateJoinOperands checks that two histograms share a grid.
func validateJoinOperands(a, b *Position) error {
	if !a.grid.Equal(b.grid) {
		return fmt.Errorf("histogram: operands have different grids (%d vs %d buckets)", a.grid.Size(), b.grid.Size())
	}
	return nil
}
