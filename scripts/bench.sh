#!/usr/bin/env bash
# Runs the tracked performance benchmarks and records ns/op into
# BENCH_PR2.json: the PR 1 series (histogram engine, compiled queries)
# plus the PR 2 shard-lifecycle series (append-to-visible vs monolithic
# rebuild, sharded estimates, compaction).
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=2s scripts/bench.sh   # override -benchtime
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR2.json}"
benchtime="${BENCHTIME:-1s}"
pattern='^(BenchmarkEstimatorBuild|BenchmarkPHJoin|BenchmarkTwigEstimate|BenchmarkFacadeEstimate|BenchmarkCompiledEstimate|BenchmarkAppendToVisible|BenchmarkAppendRebuildMonolithic|BenchmarkShardedEstimate|BenchmarkCompact)(/.+)?$'

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" . | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  /^goos:/   { goos = $2 }
  /^goarch:/ { goarch = $2 }
  /^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
    ns[++count] = sprintf("    \"%s\": %s", name, $3)
  }
  END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"ns_per_op\": {\n"
    for (i = 1; i <= count; i++)
      printf "%s%s\n", ns[i], (i < count ? "," : "")
    printf "  }\n"
    printf "}\n"
  }
' "$tmp" > "$out"

echo "wrote $out"
