package shard

import (
	"fmt"
	"math"
	"sort"

	"xmlest/internal/xmltree"
)

// CompactionPolicy is the size-tiered merge policy: shards whose node
// counts fall in the same size tier (a factor-of-TierRatio band) are
// merged together once enough of them accumulate, bounding both the
// shard count and the per-merge write amplification, in the spirit of
// size-tiered LSM compaction.
type CompactionPolicy struct {
	// TierRatio is the size band: shards s with
	// floor(log_TierRatio(nodes)) equal share a tier. <= 1 means the
	// default of 4.
	TierRatio float64

	// MinMerge is the minimum number of same-tier shards worth merging.
	// < 2 means the default of 2.
	MinMerge int

	// MaxShards caps the shard count: when exceeded and no tier
	// qualifies, the smallest MinMerge tree-backed shards merge anyway.
	// <= 0 means the default of 8.
	MaxShards int
}

// DefaultCompactionPolicy mirrors common size-tiered settings.
var DefaultCompactionPolicy = CompactionPolicy{TierRatio: 4, MinMerge: 2, MaxShards: 8}

func (p CompactionPolicy) normalized() CompactionPolicy {
	if p.TierRatio <= 1 {
		p.TierRatio = 4
	}
	if p.MinMerge < 2 {
		p.MinMerge = 2
	}
	if p.MaxShards <= 0 {
		p.MaxShards = 8
	}
	return p
}

// tier buckets a node count into its size tier.
func (p CompactionPolicy) tier(nodes int) int {
	if nodes < 1 {
		nodes = 1
	}
	return int(math.Log(float64(nodes)) / math.Log(p.TierRatio))
}

// plan selects the shards to merge from a snapshot: the smallest tier
// holding at least MinMerge tree-backed shards, or — when the snapshot
// exceeds MaxShards and no tier qualifies — the MinMerge smallest
// tree-backed shards. A nil result means nothing to do. Deterministic:
// ties break by shard id.
func (p CompactionPolicy) plan(set *Set) []*Shard {
	p = p.normalized()
	backed := make([]*Shard, 0, len(set.shards))
	for _, sh := range set.shards {
		if !sh.SummaryOnly() {
			backed = append(backed, sh)
		}
	}
	sort.Slice(backed, func(i, j int) bool {
		if backed[i].nodes != backed[j].nodes {
			return backed[i].nodes < backed[j].nodes
		}
		return backed[i].id < backed[j].id
	})
	byTier := make(map[int][]*Shard)
	for _, sh := range backed {
		t := p.tier(sh.nodes)
		byTier[t] = append(byTier[t], sh)
	}
	tiers := make([]int, 0, len(byTier))
	for t := range byTier {
		tiers = append(tiers, t)
	}
	sort.Ints(tiers)
	for _, t := range tiers {
		if len(byTier[t]) >= p.MinMerge {
			return byTier[t]
		}
	}
	if len(set.shards) > p.MaxShards && len(backed) >= p.MinMerge {
		return backed[:p.MinMerge]
	}
	return nil
}

// Compact runs one round of size-tiered compaction: it picks a merge
// group per the policy, rebuilds the group's documents into a single
// shard (catalog and summaries included) entirely off the serving path,
// and swaps the group for the merged shard in one atomic install. It
// returns the number of shards merged away (0 when nothing qualified).
//
// Merging is exact: by the additivity of per-document summaries, the
// merged shard answers every query with the same total the group did
// (see xmltree.Merge and DESIGN.md). Concurrent Appends and Drops are
// safe; if a group member is dropped while the merge is running, the
// round is abandoned and retried against the new snapshot.
func (st *Store) Compact(policy CompactionPolicy) (int, error) {
	for attempt := 0; attempt < 3; attempt++ {
		snap := st.Current()
		group := policy.plan(snap)
		if len(group) < 2 {
			return 0, nil
		}
		// Rebuild off the serving path: merge the documents, materialize
		// the catalog from the current spec, and pre-build summaries for
		// every active option.
		trees := make([]*xmltree.Tree, len(group))
		for i, sh := range group {
			trees[i] = sh.tree
		}
		mergedTree := xmltree.Merge(trees...)
		cat := st.Spec().Build(mergedTree)
		merged, err := st.newShard(mergedTree, cat)
		if err != nil {
			return 0, fmt.Errorf("shard: compaction rebuild: %w", err)
		}
		// The merged shard covers every WAL record its group covered, so
		// a checkpoint containing it can truncate through all of them.
		for _, sh := range group {
			if sh.walSeq > merged.walSeq {
				merged.walSeq = sh.walSeq
			}
		}

		inGroup := make(map[uint64]bool, len(group))
		for _, sh := range group {
			inGroup[sh.id] = true
		}
		st.writeMu.Lock()
		cur := st.Current()
		present := 0
		for _, sh := range cur.shards {
			if inGroup[sh.id] {
				present++
			}
		}
		if present != len(group) {
			// A group member was dropped (or already compacted) while we
			// were merging; throw the rebuild away and retry on the new
			// snapshot.
			st.writeMu.Unlock()
			continue
		}
		next := make([]*Shard, 0, len(cur.shards)-len(group)+1)
		inserted := false
		for _, sh := range cur.shards {
			if inGroup[sh.id] {
				if !inserted {
					next = append(next, merged)
					inserted = true
				}
				continue
			}
			next = append(next, sh)
		}
		merged.installedAt = cur.version + 1
		st.install(next, cur)
		st.writeMu.Unlock()
		return len(group), nil
	}
	return 0, nil
}
