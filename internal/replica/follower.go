// Follower side: a loop that keeps one stream open to the leader,
// verifies every frame's CRC on receipt, applies records at their
// recorded ack versions (batched, so the follower's own WAL fsyncs
// amortize like the leader's group commit), installs snapshots when
// the leader says its position was truncated away, and reconnects with
// capped exponential backoff plus jitter when anything goes wrong —
// always resuming from its OWN durable watermark, so a follower
// restart never re-asks for the world and a lost record is always
// re-shipped.
//
// The follower is honest about what it serves: it never applies a
// record it has not durably logged (the Applier contract), and when
// the leader has been unreachable past the staleness budget it reports
// itself stale so the serving layer can degrade /healthz without ever
// refusing reads.

package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"xmlest/internal/manifest"
	"xmlest/internal/metrics"
	"xmlest/internal/wal"
)

// Applier is the durable store surface a follower applies into —
// implemented by shard.DurableStore.
type Applier interface {
	// ApplyReplicated durably logs and installs shipped records at
	// their recorded sequences and ack versions. No record may be
	// visible to reads before it is durable in the follower's own WAL.
	ApplyReplicated(recs []wal.Record) error
	// ApplySnapshot atomically replaces the follower's state with a
	// leader checkpoint: shard files, manifest, serving set and WAL
	// floor all move to the snapshot's version together.
	ApplySnapshot(man *manifest.Manifest, files map[string][]byte) error
	// DurableSeq is the follower's own durable WAL watermark — the
	// resume position.
	DurableSeq() uint64
	// ServingVersion is the follower's serving-set version.
	ServingVersion() uint64
	// GridSize is the follower's estimator grid; streams from a leader
	// with a different grid are refused (they can never converge).
	GridSize() int
}

// FollowerOptions tunes the catch-up loop.
type FollowerOptions struct {
	// Upstream is the leader's URL, for status reporting only (the
	// Transport owns the actual address).
	Upstream string
	// StalenessBudget is how long the leader may be silent before the
	// follower reports itself stale (degraded: replication). Zero or
	// negative disables staleness reporting. Default: disabled.
	StalenessBudget time.Duration
	// MinBackoff/MaxBackoff bound the reconnect backoff (exponential,
	// jittered). Defaults 100ms / 15s.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// ReadTimeout is the per-frame read deadline: a stream that
	// delivers nothing (not even a heartbeat) for this long is cut and
	// reconnected. Default 10s.
	ReadTimeout time.Duration
	// ApplyBatch caps how many records one ApplyReplicated call may
	// carry (one follower-side fsync per batch). Default 64.
	ApplyBatch int
	// Logger receives lifecycle events; slog.Default when nil.
	Logger *slog.Logger
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.MinBackoff <= 0 {
		o.MinBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 15 * time.Second
	}
	if o.MaxBackoff < o.MinBackoff {
		o.MaxBackoff = o.MinBackoff
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 10 * time.Second
	}
	if o.ApplyBatch <= 0 {
		o.ApplyBatch = 64
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Follower replicates from a leader through a Transport. Create with
// NewFollower, drive with Run, inspect with Status.
type Follower struct {
	tr    Transport
	apply Applier
	opts  FollowerOptions

	startedAt     time.Time
	leaderSeq     atomic.Uint64
	leaderVersion atomic.Uint64
	lastContact   atomic.Int64 // unixnano of the last verified frame; 0 = never
	connected     atomic.Bool

	reconnects     atomic.Uint64 // successful stream opens
	streamErrors   atomic.Uint64
	framesRejected atomic.Uint64 // frames refused on CRC/decode
	recordsApplied atomic.Uint64
	snapsApplied   atomic.Uint64
	heartbeats     atomic.Uint64
	bytesReceived  atomic.Uint64

	errMu    sync.Mutex
	lastErr  string
	fatalErr string
}

// NewFollower builds a follower over the given transport and applier.
// startedAt is stamped here, not in Run: Status may race a Run that is
// still being scheduled.
func NewFollower(tr Transport, apply Applier, opts FollowerOptions) *Follower {
	return &Follower{tr: tr, apply: apply, opts: opts.withDefaults(), startedAt: time.Now()}
}

// errFatal marks errors that retrying cannot fix (grid mismatch);
// the loop still retries — the leader may be replaced — but at max
// backoff, and Status surfaces the condition prominently.
type errFatal struct{ err error }

func (e errFatal) Error() string { return e.err.Error() }
func (e errFatal) Unwrap() error { return e.err }

// Run drives the catch-up loop until ctx is cancelled.
func (f *Follower) Run(ctx context.Context) {
	backoff := f.opts.MinBackoff
	log := f.opts.Logger.With("component", "replica", "upstream", f.opts.Upstream)
	for ctx.Err() == nil {
		progress, err := f.streamOnce(ctx)
		if ctx.Err() != nil {
			return
		}
		if err == nil {
			// Orderly End frame: reconnect immediately, no backoff.
			backoff = f.opts.MinBackoff
			continue
		}
		f.streamErrors.Add(1)
		f.setLastErr(err)
		var fatal errFatal
		if errors.As(err, &fatal) {
			backoff = f.opts.MaxBackoff
			log.Error("replication cannot converge", "err", err)
		} else {
			if progress {
				// The stream did useful work before failing; this is a
				// fresh fault, not a continuing outage.
				backoff = f.opts.MinBackoff
			}
			log.Warn("replication stream failed; backing off", "err", err, "backoff", backoff)
		}
		ctxSleep(ctx, backoff+time.Duration(rand.Int63n(int64(backoff/2)+1)))
		backoff = min(2*backoff, f.opts.MaxBackoff)
	}
}

func (f *Follower) setLastErr(err error) {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	f.lastErr = err.Error()
	var fatal errFatal
	if errors.As(err, &fatal) {
		f.fatalErr = err.Error()
	}
}

func (f *Follower) touch() {
	f.lastContact.Store(time.Now().UnixNano())
}

// streamOnce opens one stream and consumes it to its end. It reports
// whether any state was applied (progress resets the backoff) and a
// nil error only for an orderly leader-initiated end.
func (f *Follower) streamOnce(ctx context.Context) (progress bool, err error) {
	st, err := f.tr.Open(ctx, f.apply.DurableSeq(), f.apply.ServingVersion())
	if err != nil {
		return false, err
	}
	f.connected.Store(true)
	f.reconnects.Add(1)
	defer func() {
		f.connected.Store(false)
		st.Close()
	}()

	// Reader goroutine: Next with a per-frame watchdog (a stalled
	// stream is cut by closing it, which errors the pending Next), so
	// the consumer can batch-drain frames without blocking reads.
	frames := make(chan Frame, 256)
	readErr := make(chan error, 1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			watchdog := time.AfterFunc(f.opts.ReadTimeout, func() { st.Close() })
			fr, err := st.Next()
			stopped := watchdog.Stop()
			if err != nil {
				if !stopped {
					err = fmt.Errorf("replica: no frame within %v (stalled stream): %w", f.opts.ReadTimeout, err)
				}
				readErr <- err
				return
			}
			f.bytesReceived.Add(uint64(frameHeaderLen + len(fr.Payload)))
			select {
			case frames <- fr:
			case <-done:
				return
			}
		}
	}()

	var (
		sawHello   bool
		hello      Hello
		snapMan    *manifest.Manifest
		snapFiles  map[string][]byte
		snapWanted map[string]bool
		batch      []wal.Record
	)
	floor := f.apply.DurableSeq()
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := f.apply.ApplyReplicated(batch); err != nil {
			return fmt.Errorf("replica: applying records: %w", err)
		}
		f.recordsApplied.Add(uint64(len(batch)))
		progress = true
		batch = batch[:0]
		return nil
	}

	handle := func(fr Frame) error {
		if !fr.Verify() {
			f.framesRejected.Add(1)
			return fmt.Errorf("replica: frame CRC mismatch (kind %d, %d bytes); abandoning stream", fr.Kind, len(fr.Payload))
		}
		f.touch()
		if !sawHello {
			if fr.Kind != FrameHello {
				return fmt.Errorf("replica: stream did not open with a hello frame (kind %d)", fr.Kind)
			}
			h, err := decodeHello(fr.Payload)
			if err != nil {
				f.framesRejected.Add(1)
				return err
			}
			if h.GridSize != f.apply.GridSize() {
				return errFatal{fmt.Errorf("replica: leader grid size %d != follower grid size %d; estimates can never converge — refusing to follow",
					h.GridSize, f.apply.GridSize())}
			}
			hello, sawHello = h, true
			f.leaderSeq.Store(h.DurableSeq)
			f.leaderVersion.Store(h.Version)
			return nil
		}
		switch fr.Kind {
		case FrameManifest:
			if !hello.Snapshot || snapMan != nil {
				return fmt.Errorf("replica: unexpected manifest frame")
			}
			man, err := manifest.Decode(fr.Payload)
			if err != nil {
				f.framesRejected.Add(1)
				return fmt.Errorf("replica: snapshot manifest: %w", err)
			}
			snapMan = man
			snapFiles = make(map[string][]byte, len(man.Shards))
			snapWanted = make(map[string]bool, len(man.Shards))
			for _, sh := range man.Shards {
				snapWanted[sh.File] = true
			}
			return nil
		case FrameShardFile:
			if snapMan == nil {
				return fmt.Errorf("replica: shard-file frame outside a snapshot")
			}
			name, data, err := decodeShardFile(fr.Payload)
			if err != nil {
				f.framesRejected.Add(1)
				return err
			}
			if !snapWanted[name] {
				return fmt.Errorf("replica: snapshot shipped %q, which the manifest does not reference", name)
			}
			snapFiles[name] = data
			return nil
		case FrameSnapshotEnd:
			if snapMan == nil {
				return fmt.Errorf("replica: snapshot end without a manifest")
			}
			if err := f.apply.ApplySnapshot(snapMan, snapFiles); err != nil {
				return fmt.Errorf("replica: installing snapshot: %w", err)
			}
			f.snapsApplied.Add(1)
			progress = true
			floor = f.apply.DurableSeq()
			snapMan, snapFiles, snapWanted = nil, nil, nil
			return nil
		case FrameRecord:
			rec, err := wal.DecodeRecord(fr.Payload)
			if err != nil {
				f.framesRejected.Add(1)
				return fmt.Errorf("replica: shipped record is corrupt: %w", err)
			}
			if rec.Seq <= floor {
				return nil // duplicate after a re-plan; already durable here
			}
			if rec.Seq > f.leaderSeq.Load() {
				f.leaderSeq.Store(rec.Seq)
			}
			// Docs alias the frame payload, which this stream owns and
			// never reuses — safe to hold until the batch flushes.
			batch = append(batch, rec)
			floor = rec.Seq
			return nil
		case FrameHeartbeat:
			seq, version, err := decodeHeartbeat(fr.Payload)
			if err != nil {
				f.framesRejected.Add(1)
				return err
			}
			f.heartbeats.Add(1)
			if seq > f.leaderSeq.Load() {
				f.leaderSeq.Store(seq)
			}
			f.leaderVersion.Store(version)
			return nil
		case FrameEnd:
			return errOrderlyEnd
		default:
			return fmt.Errorf("replica: unknown frame kind %d", fr.Kind)
		}
	}

	for {
		select {
		case <-ctx.Done():
			return progress, flush()
		case err := <-readErr:
			if ferr := flush(); ferr != nil {
				return progress, ferr
			}
			if err == io.EOF {
				err = fmt.Errorf("replica: stream ended without an end frame")
			}
			return progress, err
		case fr := <-frames:
			err := handle(fr)
			// Batch-drain: pull whatever frames already arrived so one
			// follower fsync covers them, flushing before any non-record
			// control frame is acted on (order must be preserved).
		drain:
			for err == nil && fr.Kind == FrameRecord && len(batch) < f.opts.ApplyBatch {
				select {
				case fr = <-frames:
					if fr.Kind != FrameRecord {
						if err = flush(); err == nil {
							err = handle(fr)
						}
						break drain
					}
					err = handle(fr)
				default:
					break drain
				}
			}
			if err == nil {
				err = flush()
			}
			if err == errOrderlyEnd {
				return progress, flush()
			}
			if err != nil {
				return progress, err
			}
		}
	}
}

// errOrderlyEnd signals a leader-initiated End frame (not a failure).
var errOrderlyEnd = errors.New("replica: orderly end of stream")

// Status is the follower's externally visible state.
type Status struct {
	Upstream         string
	Connected        bool
	LeaderSeq        uint64
	AppliedSeq       uint64
	LeaderVersion    uint64
	ServedVersion    uint64
	LagSeq           uint64
	LagSeconds       float64
	LastContact      time.Time // zero when the leader was never reached
	Stale            bool
	StalenessBudget  time.Duration
	Reconnects       uint64
	StreamErrors     uint64
	FramesRejected   uint64
	RecordsApplied   uint64
	SnapshotsApplied uint64
	Heartbeats       uint64
	BytesReceived    uint64
	LastError        string
	FatalError       string
}

// Status snapshots the follower's state.
func (f *Follower) Status() Status {
	s := Status{
		Upstream:         f.opts.Upstream,
		Connected:        f.connected.Load(),
		LeaderSeq:        f.leaderSeq.Load(),
		AppliedSeq:       f.apply.DurableSeq(),
		LeaderVersion:    f.leaderVersion.Load(),
		ServedVersion:    f.apply.ServingVersion(),
		StalenessBudget:  f.opts.StalenessBudget,
		Reconnects:       f.reconnects.Load(),
		StreamErrors:     f.streamErrors.Load(),
		FramesRejected:   f.framesRejected.Load(),
		RecordsApplied:   f.recordsApplied.Load(),
		SnapshotsApplied: f.snapsApplied.Load(),
		Heartbeats:       f.heartbeats.Load(),
		BytesReceived:    f.bytesReceived.Load(),
	}
	if s.LeaderSeq > s.AppliedSeq {
		s.LagSeq = s.LeaderSeq - s.AppliedSeq
	}
	var since time.Time
	if nano := f.lastContact.Load(); nano > 0 {
		s.LastContact = time.Unix(0, nano)
		since = s.LastContact
	} else {
		since = f.startedAt
	}
	if !since.IsZero() {
		s.LagSeconds = time.Since(since).Seconds()
	}
	if f.opts.StalenessBudget > 0 && !since.IsZero() {
		s.Stale = time.Since(since) > f.opts.StalenessBudget
	}
	f.errMu.Lock()
	s.LastError, s.FatalError = f.lastErr, f.fatalErr
	f.errMu.Unlock()
	return s
}

// Collect exports the follower-side replication families.
func (f *Follower) Collect(e *metrics.Expo) {
	s := f.Status()
	e.Gauge("xqest_replica_lag_seq", "WAL sequences the follower is behind the leader.", float64(s.LagSeq))
	e.Gauge("xqest_replica_lag_seconds", "Seconds since the follower last heard from the leader.", s.LagSeconds)
	boolGauge := func(name, help string, v bool) {
		val := 0.0
		if v {
			val = 1
		}
		e.Gauge(name, help, val)
	}
	boolGauge("xqest_replica_connected", "1 while a replication stream to the leader is open.", s.Connected)
	boolGauge("xqest_replica_stale", "1 when the leader has been silent past the staleness budget.", s.Stale)
	e.Counter("xqest_replica_reconnects_total", "Replication streams successfully opened (first connect included).", float64(s.Reconnects))
	e.Counter("xqest_replica_stream_errors_total", "Replication streams that failed and triggered backoff.", float64(s.StreamErrors))
	e.Counter("xqest_replica_frames_rejected_total", "Frames refused on CRC or decode failure.", float64(s.FramesRejected))
	e.Counter("xqest_replica_records_applied_total", "Shipped WAL records durably applied.", float64(s.RecordsApplied))
	e.Counter("xqest_replica_snapshots_applied_total", "Leader snapshots installed.", float64(s.SnapshotsApplied))
	e.Counter("xqest_replica_heartbeats_total", "Heartbeat frames received.", float64(s.Heartbeats))
	e.Counter("xqest_replica_bytes_received_total", "Frame bytes received from the leader.", float64(s.BytesReceived))
}
