package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xmlest/internal/xmltree"
)

func doc(t *testing.T, s string) *xmltree.Tree {
	t.Helper()
	tr, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return tr
}

func TestTagPredicate(t *testing.T) {
	tr := xmltree.Fig1Document()
	c := NewCatalog(tr)
	e := c.Add(Tag{Value: "faculty"})
	if e.Count() != 3 {
		t.Errorf("faculty count = %d, want 3", e.Count())
	}
	if !e.NoOverlap {
		t.Errorf("faculty should be no-overlap in Fig 1")
	}
}

func TestContentPredicates(t *testing.T) {
	tr := doc(t, `<db>
		<cite>conf/vldb/Smith01</cite>
		<cite>journals/tods/Jones99</cite>
		<cite>conf/sigmod/Wu02</cite>
		<year>1995</year>
		<year>1985</year>
	</db>`)
	c := NewCatalog(tr)

	if got := c.Add(ContentPrefix{Value: "conf"}).Count(); got != 2 {
		t.Errorf("prefix conf count = %d, want 2", got)
	}
	if got := c.Add(ContentPrefix{Value: "journals"}).Count(); got != 1 {
		t.Errorf("prefix journals count = %d, want 1", got)
	}
	if got := c.Add(ContentSuffix{Value: "99"}).Count(); got != 1 {
		t.Errorf("suffix 99 count = %d, want 1", got)
	}
	if got := c.Add(ContentContains{Value: "sigmod"}).Count(); got != 1 {
		t.Errorf("contains sigmod count = %d, want 1", got)
	}
	if got := c.Add(ContentEquals{Value: "1995"}).Count(); got != 1 {
		t.Errorf("equals 1995 count = %d, want 1", got)
	}
	if got := c.Add(NumericRange{Lo: 1990, Hi: 1999}).Count(); got != 1 {
		t.Errorf("range 1990s count = %d, want 1", got)
	}
	if got := c.Add(TagContent{Tag: "year", Value: "1985"}).Count(); got != 1 {
		t.Errorf("year=1985 count = %d, want 1", got)
	}
}

func TestBooleanComposition(t *testing.T) {
	tr := doc(t, `<db><y>1990</y><y>1991</y><y>1980</y><t>1990</t></db>`)
	c := NewCatalog(tr)

	nineties := Or{Parts: []Predicate{
		TagContent{Tag: "y", Value: "1990"},
		TagContent{Tag: "y", Value: "1991"},
	}}
	if got := c.Add(nineties).Count(); got != 2 {
		t.Errorf("or count = %d, want 2", got)
	}
	both := And{Parts: []Predicate{Tag{Value: "y"}, ContentEquals{Value: "1990"}}}
	if got := c.Add(both).Count(); got != 1 {
		t.Errorf("and count = %d, want 1", got)
	}
	notY := And{Parts: []Predicate{Not{Inner: Tag{Value: "y"}}, ContentEquals{Value: "1990"}}}
	if got := c.Add(notY).Count(); got != 1 {
		t.Errorf("not count = %d, want 1 (only <t>)", got)
	}
}

func TestNamedPredicate(t *testing.T) {
	tr := doc(t, `<db><y>1990</y></db>`)
	c := NewCatalog(tr)
	p := Named{Alias: "1990's", Inner: ContentPrefix{Value: "199"}}
	c.Add(p)
	e, err := c.Get("1990's")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if e.Count() != 1 {
		t.Errorf("named count = %d, want 1", e.Count())
	}
}

func TestTruePredicateCoversAllNodes(t *testing.T) {
	tr := xmltree.Fig1Document()
	c := NewCatalog(tr)
	if got := c.Add(True{}).Count(); got != tr.NumNodes() {
		t.Errorf("TRUE count = %d, want %d", got, tr.NumNodes())
	}
}

func TestNoOverlapDetection(t *testing.T) {
	// department nests nothing with the same tag; section nests section.
	tr := doc(t, `<root>
		<section><para/><section><para/></section></section>
		<chapter><para/></chapter>
	</root>`)
	c := NewCatalog(tr)
	if e := c.Add(Tag{Value: "section"}); e.NoOverlap {
		t.Errorf("section nests section: want overlap")
	}
	if e := c.Add(Tag{Value: "para"}); !e.NoOverlap {
		t.Errorf("para never nests: want no-overlap")
	}
	if e := c.Add(Tag{Value: "chapter"}); !e.NoOverlap {
		t.Errorf("chapter never nests: want no-overlap")
	}
	// A predicate matched by an ancestor and a descendant with different
	// tags must also be flagged as overlapping.
	if e := c.Add(Or{Parts: []Predicate{Tag{Value: "chapter"}, Tag{Value: "para"}}}); e.NoOverlap {
		t.Errorf("chapter-or-para overlaps (para under chapter)")
	}
}

// TestNoOverlapAgainstBruteForce cross-checks the O(n) stack detection
// against the quadratic definition on random trees.
func TestNoOverlapAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 2+r.Intn(50))
		c := NewCatalog(tr)
		for _, tag := range tr.Tags() {
			e := c.Add(Tag{Value: tag})
			brute := true
			for _, a := range e.Nodes {
				for _, d := range e.Nodes {
					if a != d && tr.IsAncestor(a, d) {
						brute = false
					}
				}
			}
			if e.NoOverlap != brute {
				t.Logf("tag %s: fast=%v brute=%v", tag, e.NoOverlap, brute)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randomTree(r *rand.Rand, n int) *xmltree.Tree {
	b := xmltree.NewBuilder()
	tags := []string{"a", "b", "c"}
	open := 0
	for i := 0; i < n; i++ {
		if open > 0 && r.Intn(3) == 0 {
			b.End()
			open--
		}
		b.Begin(tags[r.Intn(len(tags))])
		open++
	}
	return b.Tree()
}

func TestCatalogGetMissing(t *testing.T) {
	c := NewCatalog(xmltree.Fig1Document())
	if _, err := c.Get("nope"); err == nil {
		t.Errorf("Get missing: want error")
	}
}

func TestCatalogAddAllTags(t *testing.T) {
	tr := xmltree.Fig1Document()
	c := NewCatalog(tr)
	n := c.AddAllTags()
	if n != 9 {
		t.Errorf("AddAllTags = %d, want 9", n)
	}
	if !c.Has("tag=TA") || !c.Has("tag=faculty") {
		t.Errorf("expected tag=TA and tag=faculty registered; names=%v", c.Names())
	}
	if c.Len() != 9 {
		t.Errorf("Len = %d, want 9", c.Len())
	}
}

func TestEntriesSorted(t *testing.T) {
	tr := xmltree.Fig1Document()
	c := NewCatalog(tr)
	c.AddAllTags()
	for _, name := range c.Names() {
		e := c.MustGet(name)
		if !Sorted(tr, e.Nodes) {
			t.Errorf("entry %s not sorted by start", name)
		}
	}
}
