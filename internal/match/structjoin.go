package match

import (
	"sort"

	"xmlest/internal/pattern"
	"xmlest/internal/xmltree"
)

// This file provides execution (not just counting): a stack-based
// structural join producing the actual (ancestor, descendant) pairs,
// and bounded twig-match enumeration. The estimator predicts the sizes
// of exactly these outputs; the feedback example uses enumeration with
// a limit to model "first page of results plus a total prediction".

// Pair is one (ancestor, descendant) result of a structural join.
type Pair struct {
	Anc, Desc xmltree.NodeID
}

// StructuralJoin computes all pairs (u, v) with u from anc, v from
// desc, u a proper ancestor of v — the stack-tree structural join. Both
// input lists must be sorted by start position (catalog entries are).
// The output is sorted by (descendant start, ancestor start). Runs in
// O(|anc| + |desc| + |output|).
func StructuralJoin(t *xmltree.Tree, anc, desc []xmltree.NodeID) []Pair {
	var out []Pair
	var stack []xmltree.NodeID
	ai := 0
	for _, d := range desc {
		dn := t.Node(d)
		// Push ancestors that start before d.
		for ai < len(anc) && t.Node(anc[ai]).Start < dn.Start {
			a := anc[ai]
			ai++
			// Pop ancestors that end before this one starts; they can
			// cover no further descendants either.
			for len(stack) > 0 && t.Node(stack[len(stack)-1]).End < t.Node(a).Start {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, a)
		}
		// Pop ancestors that end before d starts.
		for len(stack) > 0 && t.Node(stack[len(stack)-1]).End < dn.Start {
			stack = stack[:len(stack)-1]
		}
		// Every remaining stack entry contains d (stack entries nest).
		for _, a := range stack {
			if t.Node(a).End > dn.End {
				out = append(out, Pair{Anc: a, Desc: d})
			}
		}
	}
	return out
}

// Match is one twig match: the data node assigned to each pattern node,
// indexed in pattern pre-order.
type Match []xmltree.NodeID

// FindTwigMatches enumerates up to limit matches of the pattern
// (limit <= 0 means all). Matches are produced in document order of the
// root assignment. The total count is available separately through
// CountTwig; together they model an online query interface that shows
// the first page while predicting the total.
func FindTwigMatches(t *xmltree.Tree, p *pattern.Pattern, resolve Resolver, limit int) ([]Match, error) {
	nodes := p.Nodes()
	index := make(map[*pattern.Node]int, len(nodes))
	for i, q := range nodes {
		index[q] = i
	}
	lists := make(map[*pattern.Node][]xmltree.NodeID, len(nodes))
	for _, q := range nodes {
		l, err := resolve(q.PredName())
		if err != nil {
			return nil, err
		}
		lists[q] = l
	}

	var out []Match
	cur := make(Match, len(nodes))
	full := func() bool { return limit > 0 && len(out) >= limit }

	// assign maps pattern node q to each candidate under the structural
	// constraint from its parent assignment, then recurses across the
	// pattern in pre-order.
	var assign func(qi int) bool // returns false to stop enumeration
	assign = func(qi int) bool {
		if qi == len(nodes) {
			m := make(Match, len(cur))
			copy(m, cur)
			out = append(out, m)
			return !full()
		}
		q := nodes[qi]
		cands := lists[q]
		if qi > 0 {
			parent := findParent(p, q)
			pv := cur[index[parent]]
			pn := t.Node(pv)
			switch q.Axis {
			case pattern.Descendant:
				// Candidates are start-sorted; binary search the window
				// of descendants of pv.
				lo := sort.Search(len(cands), func(i int) bool {
					return t.Node(cands[i]).Start > pn.Start
				})
				hi := sort.Search(len(cands), func(i int) bool {
					return t.Node(cands[i]).Start >= pn.End
				})
				cands = cands[lo:hi]
			case pattern.Child:
				filtered := make([]xmltree.NodeID, 0, 4)
				for c := pn.FirstChild; c != xmltree.InvalidNode; c = t.Node(c).NextSibling {
					// Children are few; test membership via the node's
					// own predicate result using the sorted list.
					if containsID(t, cands, c) {
						filtered = append(filtered, c)
					}
				}
				cands = filtered
			}
		}
		for _, v := range cands {
			cur[qi] = v
			if !assign(qi + 1) {
				return false
			}
		}
		return true
	}
	assign(0)
	return out, nil
}

// findParent locates q's parent pattern node.
func findParent(p *pattern.Pattern, q *pattern.Node) *pattern.Node {
	for _, e := range p.Edges() {
		if e[1] == q {
			return e[0]
		}
	}
	return nil
}

// containsID reports membership of id in a start-sorted node list.
func containsID(t *xmltree.Tree, sorted []xmltree.NodeID, id xmltree.NodeID) bool {
	want := t.Node(id).Start
	i := sort.Search(len(sorted), func(i int) bool {
		return t.Node(sorted[i]).Start >= want
	})
	return i < len(sorted) && sorted[i] == id
}
