package xmlest_test

import (
	"fmt"
	"log"
	"strings"

	"xmlest"
)

const exampleDoc = `<department>
	<faculty><name>A</name><RA/></faculty>
	<staff><name>B</name></staff>
	<faculty><name>C</name><secretary/><RA/><RA/><RA/></faculty>
	<lecturer><name>D</name><TA/><TA/><TA/></lecturer>
	<faculty><name>E</name><secretary/><TA/><RA/><RA/><TA/></faculty>
	<research_scientist><name>F</name><secretary/><RA/><RA/><RA/><RA/></research_scientist>
</department>`

// The paper's running example: estimate faculty//TA on the Fig 1
// document and compare with the exact answer.
func Example() {
	db, err := xmlest.Open(strings.NewReader(exampleDoc))
	if err != nil {
		log.Fatal(err)
	}
	db.AddAllTagPredicates()

	est, err := db.NewEstimator(xmlest.Options{GridSize: 2})
	if err != nil {
		log.Fatal(err)
	}
	res, err := est.Estimate("//faculty//TA")
	if err != nil {
		log.Fatal(err)
	}
	real, err := db.Count("//faculty//TA")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate %.2f, exact %.0f\n", res.Estimate, real)
	// Output:
	// estimate 1.86, exact 2
}

// Registering a named compound predicate and using it in a pattern with
// the {name} syntax.
func ExampleDatabase_AddPredicate() {
	db, err := xmlest.Open(strings.NewReader(
		`<db><rec><year>1985</year></rec><rec><year>1995</year></rec></db>`))
	if err != nil {
		log.Fatal(err)
	}
	db.AddAllTagPredicates()
	db.AddPredicate(xmlest.Named{
		Alias: "1980's",
		Inner: xmlest.And{Parts: []xmlest.Predicate{
			xmlest.Tag{Value: "year"},
			xmlest.NumericRange{Lo: 1980, Hi: 1989},
		}},
	})
	real, err := db.Count("//rec//{1980's}")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact %.0f\n", real)
	// Output:
	// exact 1
}

// The naive baseline (product of node counts) against the exact count,
// motivating the histograms.
func ExampleDatabase_Naive() {
	db, err := xmlest.Open(strings.NewReader(exampleDoc))
	if err != nil {
		log.Fatal(err)
	}
	db.AddAllTagPredicates()
	naive, err := db.Naive("//faculty//TA")
	if err != nil {
		log.Fatal(err)
	}
	real, err := db.Count("//faculty//TA")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive %.0f, exact %.0f\n", naive, real)
	// Output:
	// naive 15, exact 2
}

// Summaries are serializable: estimation can run without the data.
func ExampleLoadEstimator() {
	db, err := xmlest.Open(strings.NewReader(exampleDoc))
	if err != nil {
		log.Fatal(err)
	}
	db.AddAllTagPredicates()
	est, err := db.NewEstimator(xmlest.Options{GridSize: 2})
	if err != nil {
		log.Fatal(err)
	}
	blob, err := est.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}

	loaded, err := xmlest.LoadEstimator(blob) // no Database needed
	if err != nil {
		log.Fatal(err)
	}
	res, err := loaded.Estimate("//faculty//TA")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate %.2f\n", res.Estimate)
	// Output:
	// estimate 1.86
}

// Enumerating the first page of concrete matches alongside the
// predicted total — the paper's online-query scenario.
func ExampleDatabase_Find() {
	db, err := xmlest.Open(strings.NewReader(exampleDoc))
	if err != nil {
		log.Fatal(err)
	}
	db.AddAllTagPredicates()
	matches, err := db.Find("//faculty//RA", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first %d matches of 6\n", len(matches))
	// Output:
	// first 2 matches of 6
}
