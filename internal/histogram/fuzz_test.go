package histogram

import (
	"math"
	"testing"
)

// fuzzSeedBlobs builds seed corpus blobs covering every encoder branch:
// uniform and non-uniform grids, integral and fractional counts, empty
// and dense histograms.
func fuzzSeedBlobs(f *testing.F) [][]byte {
	f.Helper()
	var blobs [][]byte
	add := func(h *Position) {
		b, err := h.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		blobs = append(blobs, b)
	}

	// Uniform grid, integral counts (the built-histogram common case).
	uni := MustUniformGrid(4, 100)
	h := NewPosition(uni)
	h.Add(0, 0, 3)
	h.Add(0, 3, 1)
	h.Add(2, 3, 7)
	add(h)

	// Empty histogram.
	add(NewPosition(uni))

	// Non-uniform grid (explicit bounds), integral counts.
	nug, err := NewGrid([]int{0, 5, 9, 40, 100})
	if err != nil {
		f.Fatal(err)
	}
	h2 := NewPosition(nug)
	h2.Add(1, 2, 2)
	h2.Add(3, 3, 5)
	add(h2)

	// Fractional counts (estimated histograms) on both grid shapes.
	h3 := NewPosition(uni)
	h3.Add(1, 2, 0.625)
	h3.Add(0, 1, 1e-3)
	add(h3)
	h4 := NewPosition(nug)
	h4.Add(0, 3, 2.5)
	add(h4)

	return blobs
}

// FuzzEncodeDecode round-trips the position-histogram binary encoding:
// any blob UnmarshalPosition accepts must re-marshal and re-unmarshal
// to an identical histogram (grid and per-cell counts, bit for bit),
// and the decoder must never panic on arbitrary input.
func FuzzEncodeDecode(f *testing.F) {
	for _, b := range fuzzSeedBlobs(f) {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{'P'})
	f.Add([]byte("Pjunkjunkjunk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := UnmarshalPosition(data)
		if err != nil {
			return // invalid input is fine; panics are not
		}
		blob, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted blob failed: %v", err)
		}
		h2, err := UnmarshalPosition(blob)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if !h.Grid().Equal(h2.Grid()) {
			t.Fatal("grid changed across round trip")
		}
		g := h.Grid().Size()
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				a, b := h.Count(i, j), h2.Count(i, j)
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("cell (%d,%d): %v != %v", i, j, a, b)
				}
			}
		}
	})
}

// FuzzCoverageEncodeDecode does the same for the coverage-histogram
// encoding.
func FuzzCoverageEncodeDecode(f *testing.F) {
	uni := MustUniformGrid(3, 60)
	c := NewCoverage(uni)
	c.SetFrac(1, 1, 0, 2, 0.5)
	c.SetFrac(2, 2, 0, 2, 1)
	c.SetFrac(0, 1, 0, 2, 0.125)
	blob, err := c.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	empty, err := NewCoverage(uni).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte{'C'})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCoverage(data)
		if err != nil {
			return
		}
		blob, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		c2, err := UnmarshalCoverage(blob)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if c.Entries() != c2.Entries() {
			t.Fatalf("entries %d != %d", c.Entries(), c2.Entries())
		}
		var mismatch bool
		c.EachFrac(func(i, j, m, n int, frac float64) {
			if math.Float64bits(c2.Frac(i, j, m, n)) != math.Float64bits(frac) {
				mismatch = true
			}
		})
		if mismatch {
			t.Fatal("coverage fraction changed across round trip")
		}
	})
}
