package xmltree

// Builder assembles a Tree programmatically. It is used by the parser,
// by the synthetic data generators, and by tests that construct exact
// example documents (such as the paper's Fig 1 department document).
//
// Usage:
//
//	b := NewBuilder()
//	b.Begin("department")
//	b.Begin("faculty")
//	b.Text("...")
//	b.End()
//	b.End()
//	tree := b.Tree()
//
// The builder automatically inserts the dummy root; Begin at the top
// level starts a new document under it. Numbering (start/end/depth) is
// assigned incrementally as nodes are opened and closed, with one shared
// counter for start and end labels, so a descendant's interval is
// strictly nested inside its ancestors'.
type Builder struct {
	nodes     []Node
	stack     []NodeID // open nodes, excluding the implicit dummy root slot 0
	lastChild []NodeID // per open node (parallel to stack+root): last child appended
	counter   int
}

// NewBuilder returns a Builder with the dummy root opened.
func NewBuilder() *Builder {
	b := &Builder{counter: 1}
	b.nodes = append(b.nodes, Node{
		Tag:        "/",
		Start:      0,
		End:        -1, // patched in Tree()
		Depth:      0,
		Parent:     InvalidNode,
		FirstChild: InvalidNode, NextSibling: InvalidNode,
	})
	b.stack = []NodeID{0}
	b.lastChild = []NodeID{InvalidNode}
	return b
}

// Begin opens a new element with the given tag as a child of the
// currently open element and returns its id.
func (b *Builder) Begin(tag string) NodeID {
	parent := b.stack[len(b.stack)-1]
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{
		Tag:        tag,
		Start:      b.counter,
		End:        -1,
		Depth:      b.nodes[parent].Depth + 1,
		Parent:     parent,
		FirstChild: InvalidNode, NextSibling: InvalidNode,
	})
	b.counter++
	if prev := b.lastChild[len(b.lastChild)-1]; prev == InvalidNode {
		b.nodes[parent].FirstChild = id
	} else {
		b.nodes[prev].NextSibling = id
	}
	b.lastChild[len(b.lastChild)-1] = id
	b.stack = append(b.stack, id)
	b.lastChild = append(b.lastChild, InvalidNode)
	return id
}

// Text appends character data to the currently open element.
func (b *Builder) Text(s string) {
	id := b.stack[len(b.stack)-1]
	if id == 0 {
		return // ignore top-level text
	}
	if b.nodes[id].Text == "" {
		b.nodes[id].Text = s
	} else {
		b.nodes[id].Text += s
	}
}

// Attr records an attribute of the currently open element as a child
// node tagged "@name" whose text is the attribute value. The paper's
// model has only element nodes; representing attributes as nodes lets
// predicates range over them uniformly.
func (b *Builder) Attr(name, value string) {
	b.Begin("@" + name)
	b.Text(value)
	b.End()
}

// End closes the currently open element. Closing the dummy root is an
// error and panics; the builder owns it.
func (b *Builder) End() {
	if len(b.stack) == 1 {
		panic("xmltree: Builder.End without matching Begin")
	}
	id := b.stack[len(b.stack)-1]
	b.nodes[id].End = b.counter
	b.counter++
	b.stack = b.stack[:len(b.stack)-1]
	b.lastChild = b.lastChild[:len(b.lastChild)-1]
}

// Element emits a complete leaf element with text content.
func (b *Builder) Element(tag, text string) NodeID {
	id := b.Begin(tag)
	if text != "" {
		b.Text(text)
	}
	b.End()
	return id
}

// Depth returns the number of currently open elements, excluding the
// dummy root. It is 0 at the top level.
func (b *Builder) Depth() int { return len(b.stack) - 1 }

// Open reports the id of the innermost open element, or InvalidNode at
// the top level.
func (b *Builder) Open() NodeID {
	if len(b.stack) == 1 {
		return InvalidNode
	}
	return b.stack[len(b.stack)-1]
}

// Tree finalizes and returns the tree. Any elements still open are
// closed. The builder must not be used afterwards.
func (b *Builder) Tree() *Tree {
	for len(b.stack) > 1 {
		b.End()
	}
	b.nodes[0].End = b.counter
	b.counter++
	t := &Tree{Nodes: b.nodes, MaxPos: b.counter}
	t.buildTagIndex()
	return t
}
