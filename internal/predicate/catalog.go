package predicate

import (
	"fmt"
	"sort"

	"xmlest/internal/xmltree"
)

// Entry is the materialized form of one predicate over one tree: the
// sorted list of satisfying nodes and the detected overlap property.
type Entry struct {
	Pred Predicate

	// Nodes holds the ids of all satisfying nodes, sorted by start
	// position (document order).
	Nodes []xmltree.NodeID

	// NoOverlap reports Definition 2: no two satisfying nodes are in an
	// ancestor-descendant relationship. It is detected from the data;
	// a schema could assert it a priori, with identical downstream
	// behaviour.
	NoOverlap bool
}

// Count returns the number of satisfying nodes.
func (e *Entry) Count() int { return len(e.Nodes) }

// Catalog maps predicate names to materialized entries over a fixed
// tree. It corresponds to the paper's "set P of basic predicates" plus
// the index structures that identify the node lists for each.
type Catalog struct {
	Tree    *xmltree.Tree
	entries map[string]*Entry
	order   []string // registration order, for stable reporting
}

// NewCatalog creates an empty catalog over the tree.
func NewCatalog(t *xmltree.Tree) *Catalog {
	return &Catalog{Tree: t, entries: make(map[string]*Entry)}
}

// Add materializes the predicate and registers it under pred.Name().
// Registering the same name twice replaces the entry. It returns the
// new entry.
func (c *Catalog) Add(pred Predicate) *Entry {
	var nodes []xmltree.NodeID
	// Fast path: pure tag predicates read the postings list directly.
	if tp, ok := pred.(Tag); ok {
		nodes = c.tagNodes(tp)
	} else {
		for id := xmltree.NodeID(1); int(id) < len(c.Tree.Nodes); id++ {
			if pred.Eval(c.Tree, id) {
				nodes = append(nodes, id)
			}
		}
	}
	return c.register(pred, nodes)
}

// AddBatch materializes several predicates in one shared pass over the
// tree and registers them in order: Tag predicates still read their
// postings lists directly, and all remaining predicates are evaluated
// node by node in a single O(n) scan instead of one scan each. The
// entries are identical to calling Add per predicate in the same order.
func (c *Catalog) AddBatch(preds []Predicate) []*Entry {
	nodeLists := make([][]xmltree.NodeID, len(preds))
	var scan []int // indices of predicates needing the shared scan
	for k, pred := range preds {
		if tp, ok := pred.(Tag); ok {
			nodeLists[k] = c.tagNodes(tp)
		} else {
			scan = append(scan, k)
		}
	}
	if len(scan) > 0 {
		for id := xmltree.NodeID(1); int(id) < len(c.Tree.Nodes); id++ {
			for _, k := range scan {
				if preds[k].Eval(c.Tree, id) {
					nodeLists[k] = append(nodeLists[k], id)
				}
			}
		}
	}
	entries := make([]*Entry, len(preds))
	for k, pred := range preds {
		entries[k] = c.register(pred, nodeLists[k])
	}
	return entries
}

// tagNodes copies a tag predicate's postings list.
func (c *Catalog) tagNodes(tp Tag) []xmltree.NodeID {
	src := c.Tree.NodesWithTag(tp.Value)
	nodes := make([]xmltree.NodeID, len(src))
	copy(nodes, src)
	return nodes
}

// register detects the no-overlap property and stores the entry.
func (c *Catalog) register(pred Predicate, nodes []xmltree.NodeID) *Entry {
	e := &Entry{Pred: pred, Nodes: nodes, NoOverlap: noOverlap(c.Tree, nodes)}
	if _, exists := c.entries[pred.Name()]; !exists {
		c.order = append(c.order, pred.Name())
	}
	c.entries[pred.Name()] = e
	return e
}

// AddAllTags registers a Tag predicate for every distinct element tag in
// the tree (the paper: "build a histogram on each one of these distinct
// element tags"). Attribute pseudo-tags ("@...") are included; the dummy
// root tag is not a real tag and never appears. It returns the number of
// predicates added.
func (c *Catalog) AddAllTags() int {
	tags := c.Tree.Tags()
	for _, tag := range tags {
		c.Add(Tag{Value: tag})
	}
	return len(tags)
}

// Get returns the entry registered under the given name, or an error
// naming the missing predicate.
func (c *Catalog) Get(name string) (*Entry, error) {
	e, ok := c.entries[name]
	if !ok {
		return nil, fmt.Errorf("predicate: no entry %q in catalog", name)
	}
	return e, nil
}

// MustGet is Get for callers that registered the predicate themselves.
func (c *Catalog) MustGet(name string) *Entry {
	e, err := c.Get(name)
	if err != nil {
		panic(err)
	}
	return e
}

// Has reports whether a predicate with the given name is registered.
func (c *Catalog) Has(name string) bool {
	_, ok := c.entries[name]
	return ok
}

// Names returns the registered predicate names in registration order.
func (c *Catalog) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Len returns the number of registered predicates.
func (c *Catalog) Len() int { return len(c.entries) }

// noOverlap detects Definition 2 in O(n) over a start-sorted node list:
// scanning in document order with a stack of currently open satisfying
// intervals, a node that begins before the top of the stack ends is
// nested inside another satisfying node.
func noOverlap(t *xmltree.Tree, nodes []xmltree.NodeID) bool {
	var stack []int // end positions of open satisfying intervals
	for _, id := range nodes {
		n := t.Node(id)
		for len(stack) > 0 && stack[len(stack)-1] < n.Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			return false
		}
		stack = append(stack, n.End)
	}
	return true
}

// Sorted checks that a node list is sorted by start position; catalogs
// produce sorted lists by construction, and downstream algorithms
// (exact matching, histogram building) rely on it.
func Sorted(t *xmltree.Tree, nodes []xmltree.NodeID) bool {
	return sort.SliceIsSorted(nodes, func(i, j int) bool {
		return t.Node(nodes[i]).Start < t.Node(nodes[j]).Start
	})
}
