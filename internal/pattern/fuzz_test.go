package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds the parser random byte soup built from the
// grammar's alphabet: it must return a pattern or an error, never
// panic, and any returned pattern must re-render and re-parse.
func TestParseNeverPanics(t *testing.T) {
	alphabet := []byte("/[]{}.*ab@-_0'x ")
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
				t.Logf("seed %d panicked: %v", seed, r)
			}
		}()
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		src := string(buf)
		p, err := Parse(src)
		if err != nil {
			return true
		}
		// Valid parse: the rendered form must re-parse to the same size.
		rendered := (&Pattern{Root: p.Root}).String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Logf("seed %d: %q parsed but render %q did not: %v", seed, src, rendered, err)
			return false
		}
		if p2.Size() != p.Size() {
			t.Logf("seed %d: size changed across render round trip", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
