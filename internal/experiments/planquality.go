package experiments

import (
	"fmt"
	"io"
	"strings"

	"xmlest/internal/accuracy"
	"xmlest/internal/exec"
	"xmlest/internal/pattern"
	"xmlest/internal/planner"
	"xmlest/internal/xmltree"
)

// Beyond the paper's figures: two system-level experiments that close
// the loop the paper motivates. The error profile measures estimation
// quality over whole workloads instead of hand-picked queries; the
// plan-quality experiment feeds the estimates into a join-order
// optimizer, executes the chosen and the worst plans, and compares the
// actual intermediate work.

// ErrorProfileResult is the error distribution over one workload.
type ErrorProfileResult struct {
	Dataset  string
	Workload string
	Report   accuracy.Report
}

// ErrorProfiles evaluates the pairwise and random-twig workloads on
// both datasets.
func ErrorProfiles() ([]ErrorProfileResult, error) {
	var out []ErrorProfileResult
	for _, ds := range []struct {
		name string
		s    *Setup
	}{{"synthetic", Hier()}, {"dblp", DBLP()}} {
		pairW := accuracy.PairWorkload(ds.s.Catalog)
		if ds.name == "dblp" && len(pairW) > 30 {
			pairW = pairW[:30] // exact counting over all 56 pairs is slow; sample
		}
		_, rep, err := accuracy.Evaluate(ds.s.Catalog, ds.s.Estimator, pairW)
		if err != nil {
			return nil, err
		}
		out = append(out, ErrorProfileResult{ds.name, fmt.Sprintf("all-pairs (%d)", len(pairW)), rep})

		twigW := accuracy.RandomTwigWorkload(ds.s.Catalog, 40, 2002)
		_, rep, err = accuracy.Evaluate(ds.s.Catalog, ds.s.Estimator, twigW)
		if err != nil {
			return nil, err
		}
		out = append(out, ErrorProfileResult{ds.name, "random twigs (40)", rep})
	}
	return out, nil
}

// RenderErrorProfile prints the workload error distributions.
func RenderErrorProfile(w io.Writer) error {
	rows, err := ErrorProfiles()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Error profile: estimation error over whole workloads")
	fmt.Fprintln(w, strings.Repeat("-", 84))
	fmt.Fprintf(w, "%-10s %-18s %8s %8s %8s %8s %8s %8s\n",
		"dataset", "workload", "queries", "empty", "q50", "q90", "qmax", "under")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-18s %8d %8d %8.2f %8.2f %8.1f %8d\n",
			r.Dataset, r.Workload, r.Report.Queries, r.Report.EmptyReal,
			r.Report.Q50, r.Report.Q90, r.Report.QMax, r.Report.Under)
	}
	return nil
}

// PlanQualityRow compares the estimator-chosen plan against the worst
// enumerated plan for one query, by actual executed intermediate
// tuples.
type PlanQualityRow struct {
	Query        string
	Plans        int
	ChosenCost   int64 // actual intermediate tuples of the estimate-optimal plan
	WorstCost    int64 // actual intermediate tuples of the estimate-worst plan
	OptimalCost  int64 // actual intermediate tuples of the truly best plan
	ChosenIsOpt  bool
	FinalResults int64
}

// PlanQuality runs the optimizer loop on the synthetic dataset: for
// each query, enumerate plans, execute every plan, and compare the
// estimator's choice to the true optimum.
func PlanQuality() ([]PlanQualityRow, error) {
	s := Hier()
	resolve := func(name string) ([]xmltree.NodeID, error) {
		e, err := s.Catalog.Get(name)
		if err != nil {
			return nil, err
		}
		return e.Nodes, nil
	}
	queries := []string{
		"//manager//department//employee",
		"//manager//department//employee//email",
		"//department[.//email]//employee",
		"//manager[.//employee]//department//name",
	}
	var rows []PlanQualityRow
	for _, q := range queries {
		p, err := pattern.Parse(q)
		if err != nil {
			return nil, err
		}
		plans, err := planner.Enumerate(s.Estimator, p)
		if err != nil {
			return nil, err
		}
		row := PlanQualityRow{Query: q, Plans: len(plans)}
		costs := make([]int64, len(plans))
		for i, plan := range plans {
			stats, err := exec.Execute(s.Tree, p, plan, resolve)
			if err != nil {
				return nil, err
			}
			costs[i] = stats.TotalIntermediate()
			if i == 0 {
				row.ChosenCost = costs[i]
				row.FinalResults = stats.Results
			}
		}
		row.OptimalCost = costs[0]
		row.WorstCost = costs[0]
		for _, c := range costs {
			if c < row.OptimalCost {
				row.OptimalCost = c
			}
			if c > row.WorstCost {
				row.WorstCost = c
			}
		}
		row.ChosenIsOpt = row.ChosenCost == row.OptimalCost
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderPlanQuality prints the optimizer-loop experiment.
func RenderPlanQuality(w io.Writer) error {
	rows, err := PlanQuality()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Plan quality: estimator-guided join ordering vs. actual execution cost")
	fmt.Fprintln(w, "(cost = executed intermediate tuples; chosen = estimate-optimal plan)")
	fmt.Fprintln(w, strings.Repeat("-", 100))
	fmt.Fprintf(w, "%-44s %6s %10s %10s %10s %8s\n",
		"query", "plans", "chosen", "optimal", "worst", "chose opt")
	for _, r := range rows {
		fmt.Fprintf(w, "%-44s %6d %10d %10d %10d %8v\n",
			r.Query, r.Plans, r.ChosenCost, r.OptimalCost, r.WorstCost, r.ChosenIsOpt)
	}
	return nil
}
