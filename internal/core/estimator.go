package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xmlest/internal/histogram"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
)

// Estimator owns the summary data structures for one catalog of
// predicates over one tree — a position histogram per predicate, the
// TRUE histogram, and a coverage histogram per no-overlap predicate —
// and answers answer-size queries for twig patterns. It corresponds to
// the summary structure T′ of the paper's problem statement: once
// built, estimation consults only the histograms, never the tree.
type Estimator struct {
	catalog  *predicate.Catalog
	grid     histogram.Grid
	trueHist *histogram.Position
	hists    map[string]*histogram.Position
	covs     map[string]*histogram.Coverage
	levels   map[string]*LevelHistograms // nil unless Options.LevelHistograms
	overlap  map[string]bool             // predicate name -> predicate may overlap
	names    []string                    // stored order, for catalog-less estimators

	// Memoization for hot query paths (see prepared.go): folded
	// sub-pattern results keyed by canonical sub-twig signature, and
	// parent-child edge ratios keyed by predicate pair. Both caches are
	// lazily initialized and guarded for concurrent estimation; cached
	// values are pure functions of the immutable histograms, so hits
	// and misses produce identical estimates.
	cacheOnce sync.Once
	joinCache *joinLRU
	ratioMu   sync.Mutex
	ratios    map[[2]string]float64

	// prepared memoizes compiled queries by *pattern.Pattern identity
	// (see PrepareShared): sharded rebinds hit it once per shard per
	// set change, so it must be a lock-free read. preparedN
	// approximately counts entries for the wholesale-reset size bound.
	prepared  sync.Map
	preparedN atomic.Int64

	// storageBytes caches StorageBytes (stored as total+1; 0 = unset).
	// The histograms are immutable after construction, so the encoding
	// size is a constant of the estimator — recomputing it re-walks
	// every sparse cell of every histogram, which made polling /stats
	// a serving-path cost. Synthesize invalidates.
	storageBytes atomic.Int64
}

// Options configures estimator construction.
type Options struct {
	// GridSize is the number of buckets g per axis. The paper uses 10
	// for all experiments except the grid-size sweeps.
	GridSize int

	// EquiDepth selects equi-depth (non-uniform) bucket boundaries
	// computed from the distribution of all node start positions, an
	// extension the paper defers to the tech report. The default is the
	// paper's uniform grid.
	EquiDepth bool

	// SkipCoverage disables coverage-histogram construction, forcing
	// all estimates through the primitive algorithm. Used by ablation
	// benchmarks.
	SkipCoverage bool

	// LevelHistograms additionally builds per-depth position histograms
	// for every predicate, enabling parent-child edge estimation (the
	// tech-report extension; see level.go). Without them, parent-child
	// edges are estimated as ancestor-descendant, an upper-biased
	// approximation.
	LevelHistograms bool

	// BuildWorkers bounds the worker pool that fans the per-predicate
	// summary builds (position, coverage, level histograms) during
	// NewEstimator. Zero means GOMAXPROCS; negative values are a
	// configuration error (see Validate). Per-predicate builds are
	// independent and deterministic, so the resulting estimator is
	// identical for every worker count.
	BuildWorkers int

	// QueryCacheSize bounds the facade's compiled-query cache (the
	// per-estimator memo that lets repeated Estimate calls skip parsing
	// and binding). Zero means the default of 256; negative values are
	// a configuration error (see Validate). It does not affect the
	// built summaries.
	QueryCacheSize int

	// EstimateWorkers bounds the worker pool that fans per-shard
	// estimation across a shard set when no merged summary covers it
	// (cold compiled-query binds, uncompiled estimates). Zero means
	// GOMAXPROCS; negative values are a configuration error (see
	// Validate). Per-shard estimates are summed in shard order
	// regardless of worker count, so results are bit-identical for
	// every setting. It does not affect the built summaries.
	EstimateWorkers int

	// DisableMergedServing makes estimators built with these options
	// always fan out across the live shards instead of consulting the
	// shard store's background-merged summary. Fan-out and merged
	// serving agree to float-accumulation order (≤1e-9 relative; see
	// shard.Store merged serving), so this is a benchmarking and
	// debugging knob, not a correctness one. It does not affect the
	// built summaries.
	DisableMergedServing bool
}

// DefaultOptions mirror the paper's experimental setup.
var DefaultOptions = Options{GridSize: 10}

// Validate reports configuration errors instead of letting bad values
// surface as silent misbehaviour (or huge allocations) deep inside a
// build. The zero value of every field is valid: zero GridSize,
// BuildWorkers and QueryCacheSize select defaults.
func (o Options) Validate() error {
	if o.GridSize < 0 {
		return fmt.Errorf("core: negative grid size %d (use 0 for the default of %d)", o.GridSize, DefaultOptions.GridSize)
	}
	if o.GridSize > histogram.MaxGridSize {
		return fmt.Errorf("core: grid size %d exceeds the supported maximum %d", o.GridSize, histogram.MaxGridSize)
	}
	if o.BuildWorkers < 0 {
		return fmt.Errorf("core: negative BuildWorkers %d (use 0 for GOMAXPROCS)", o.BuildWorkers)
	}
	if o.QueryCacheSize < 0 {
		return fmt.Errorf("core: negative QueryCacheSize %d (use 0 for the default)", o.QueryCacheSize)
	}
	if o.EstimateWorkers < 0 {
		return fmt.Errorf("core: negative EstimateWorkers %d (use 0 for GOMAXPROCS)", o.EstimateWorkers)
	}
	return nil
}

// NewEstimator builds every summary structure for the catalog's
// predicates. The catalog must already contain the predicates that
// queries will reference; it must also include the TRUE predicate if
// compound-predicate estimation is wanted.
//
// Construction is a single-pass pipeline: every tree node is bucketed
// exactly once (histogram.ComputeNodeCells) and the per-predicate
// builds — position histogram, coverage histogram for no-overlap
// predicates, optional level histograms — consume the shared cells and
// fan out across a bounded worker pool (Options.BuildWorkers). The
// builds are independent and deterministic, so the summary is
// bit-identical for every worker count; a test asserts this.
func NewEstimator(cat *predicate.Catalog, opts Options) (*Estimator, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.GridSize == 0 {
		opts.GridSize = DefaultOptions.GridSize
	}
	t := cat.Tree
	var grid histogram.Grid
	var err error
	if opts.EquiDepth {
		positions := make([]int, 0, t.NumNodes())
		for id := 1; id < len(t.Nodes); id++ {
			positions = append(positions, t.Nodes[id].Start)
		}
		grid, err = histogram.NewEquiDepthGrid(opts.GridSize, positions, t.MaxPos)
	} else {
		grid, err = histogram.NewUniformGrid(opts.GridSize, t.MaxPos)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return buildEstimator(cat, grid, opts)
}

// NewEstimatorWithGrid builds the estimator over an explicitly supplied
// grid instead of deriving one from Options.GridSize. The grid must
// cover every position label of the catalog's tree. The shard subsystem
// uses this to build a monolithic reference estimator on a
// document-aligned grid — the grid under which cross-shard estimate
// summation is provably exact (see DESIGN.md, "Shard lifecycle").
func NewEstimatorWithGrid(cat *predicate.Catalog, grid histogram.Grid, opts Options) (*Estimator, error) {
	if grid.Size() < 1 {
		return nil, fmt.Errorf("core: empty grid")
	}
	if grid.Size() > histogram.MaxGridSize {
		return nil, fmt.Errorf("core: grid size %d exceeds the supported maximum %d", grid.Size(), histogram.MaxGridSize)
	}
	if grid.MaxPos() < cat.Tree.MaxPos {
		return nil, fmt.Errorf("core: grid covers positions [0,%d) but the tree uses [0,%d)", grid.MaxPos(), cat.Tree.MaxPos)
	}
	return buildEstimator(cat, grid, opts)
}

// buildEstimator is the shared construction pipeline behind
// NewEstimator and NewEstimatorWithGrid.
func buildEstimator(cat *predicate.Catalog, grid histogram.Grid, opts Options) (*Estimator, error) {
	t := cat.Tree
	cells := histogram.ComputeNodeCells(t, grid)
	e := &Estimator{
		catalog:  cat,
		grid:     grid,
		trueHist: histogram.BuildTrueFromCells(cells),
		hists:    make(map[string]*histogram.Position, cat.Len()),
		covs:     make(map[string]*histogram.Coverage),
		overlap:  make(map[string]bool, cat.Len()),
	}
	if opts.LevelHistograms {
		e.levels = make(map[string]*LevelHistograms, cat.Len())
	}

	names := cat.Names()
	type built struct {
		hist   *histogram.Position
		cov    *histogram.Coverage
		levels *LevelHistograms
		err    error
	}
	results := make([]built, len(names))
	buildOne := func(idx int) {
		entry := cat.MustGet(names[idx])
		r := &results[idx]
		r.hist = histogram.BuildPositionFromCells(cells, entry.Nodes)
		if entry.NoOverlap && !opts.SkipCoverage {
			cov, err := histogram.BuildCoverageFromCells(t, entry.Nodes, e.trueHist, cells)
			if err != nil {
				r.err = fmt.Errorf("core: coverage for %s: %w", names[idx], err)
				return
			}
			r.cov = cov
		}
		if opts.LevelHistograms {
			r.levels = buildLevelHistogramsFromCells(t, entry.Nodes, cells)
		}
	}

	workers := opts.BuildWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	if workers <= 1 {
		for idx := range names {
			buildOne(idx)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					idx := int(next.Add(1)) - 1
					if idx >= len(names) {
						return
					}
					buildOne(idx)
				}
			}()
		}
		wg.Wait()
	}

	for idx, name := range names {
		r := &results[idx]
		if r.err != nil {
			return nil, r.err
		}
		e.hists[name] = r.hist
		e.overlap[name] = !cat.MustGet(name).NoOverlap
		if r.cov != nil {
			e.covs[name] = r.cov
		}
		if opts.LevelHistograms {
			e.levels[name] = r.levels
		}
	}
	return e, nil
}

// NewEstimatorFromHistograms wraps externally built summaries — for
// example the output of a streaming ingest pass — into a fully
// functional estimator. trueHist is the TRUE histogram; hists maps
// predicate names to their position histograms (all on trueHist's
// grid); overlap reports, per name, whether the predicate may overlap
// (false = the no-overlap property holds). Coverage histograms are not
// supplied, so no-overlap predicates estimate through the primitive
// algorithm until a coverage-carrying summary replaces the shard.
//
// The estimator has no catalog or tree attached, like one loaded from a
// summary blob. Predicate names are stored in sorted order for
// deterministic serialization.
func NewEstimatorFromHistograms(trueHist *histogram.Position, hists map[string]*histogram.Position, overlap map[string]bool) (*Estimator, error) {
	if trueHist == nil {
		return nil, fmt.Errorf("core: nil TRUE histogram")
	}
	grid := trueHist.Grid()
	e := &Estimator{
		grid:     grid,
		trueHist: trueHist,
		hists:    make(map[string]*histogram.Position, len(hists)),
		covs:     make(map[string]*histogram.Coverage),
		overlap:  make(map[string]bool, len(hists)),
	}
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := hists[name]
		if h == nil {
			return nil, fmt.Errorf("core: nil histogram for predicate %q", name)
		}
		if !h.Grid().Equal(grid) {
			return nil, fmt.Errorf("core: predicate %q grid differs from TRUE grid", name)
		}
		e.hists[name] = h
		e.overlap[name] = overlap[name]
		e.names = append(e.names, name)
	}
	return e, nil
}

// Levels returns the per-depth histograms for a predicate, or nil when
// level histograms were not built.
func (e *Estimator) Levels(name string) *LevelHistograms {
	if e.levels == nil {
		return nil
	}
	return e.levels[name]
}

// EstimatePairParentChild estimates the answer size of the two-node
// parent-child pattern anc/desc using level histograms. It returns an
// error if level histograms were not built.
func (e *Estimator) EstimatePairParentChild(ancName, descName string) (Result, error) {
	start := time.Now()
	la, lb := e.Levels(ancName), e.Levels(descName)
	if la == nil || lb == nil {
		return Result{}, fmt.Errorf("core: level histograms not built (set Options.LevelHistograms)")
	}
	est, err := EstimateParentChild(la, lb)
	if err != nil {
		return Result{}, err
	}
	return Result{Estimate: est, Elapsed: time.Since(start)}, nil
}

// childEdgeRatio returns the factor by which a parent-child edge's
// estimate relates to the ancestor-descendant estimate between the two
// base predicates, computed from level histograms; 1 when levels are
// unavailable or the ancestor-descendant estimate is zero. The ratio is
// a pure function of the (immutable) level histograms, so it is
// memoized per predicate pair.
func (e *Estimator) childEdgeRatio(ancName, descName string) float64 {
	key := [2]string{ancName, descName}
	e.ratioMu.Lock()
	if r, ok := e.ratios[key]; ok {
		e.ratioMu.Unlock()
		return r
	}
	e.ratioMu.Unlock()
	r := e.childEdgeRatioUncached(ancName, descName)
	e.ratioMu.Lock()
	if e.ratios == nil {
		e.ratios = make(map[[2]string]float64)
	}
	e.ratios[key] = r
	e.ratioMu.Unlock()
	return r
}

func (e *Estimator) childEdgeRatioUncached(ancName, descName string) float64 {
	la, lb := e.Levels(ancName), e.Levels(descName)
	if la == nil || lb == nil {
		return 1
	}
	ha, err := e.Histogram(ancName)
	if err != nil {
		return 1
	}
	hb, err := e.Histogram(descName)
	if err != nil {
		return 1
	}
	ad, err := EstimateAncestorBased(ha, hb)
	if err != nil || ad.Total() <= 0 {
		return 1
	}
	pc, err := EstimateParentChild(la, lb)
	if err != nil {
		return 1
	}
	r := pc / ad.Total()
	if r > 1 {
		r = 1 // a parent-child count can never exceed ancestor-descendant
	}
	return r
}

// Grid returns the estimator's grid.
func (e *Estimator) Grid() histogram.Grid { return e.grid }

// TrueHistogram returns the TRUE predicate's histogram.
func (e *Estimator) TrueHistogram() *histogram.Position { return e.trueHist }

// Histogram returns the position histogram for a predicate name.
func (e *Estimator) Histogram(name string) (*histogram.Position, error) {
	h, ok := e.hists[name]
	if !ok {
		return nil, fmt.Errorf("core: no histogram for predicate %q", name)
	}
	return h, nil
}

// HasPredicate reports whether the estimator holds a position
// histogram for the named predicate. Sharded estimation uses it to
// distinguish a predicate absent from one shard (zero contribution)
// from one unknown to the whole corpus (an error).
func (e *Estimator) HasPredicate(name string) bool {
	_, ok := e.hists[name]
	return ok
}

// CoverageHistogram returns the coverage histogram for a no-overlap
// predicate, or nil if the predicate overlaps or coverage was skipped.
func (e *Estimator) CoverageHistogram(name string) *histogram.Coverage {
	return e.covs[name]
}

// NoOverlap reports whether the named predicate was detected (or
// declared) to have the no-overlap property.
func (e *Estimator) NoOverlap(name string) bool {
	return !e.overlap[name]
}

// leaf builds the single-node sub-pattern for a predicate name.
func (e *Estimator) leaf(name string) (SubPattern, error) {
	h, err := e.Histogram(name)
	if err != nil {
		return SubPattern{}, err
	}
	return Leaf(h, e.covs[name], e.NoOverlap(name)), nil
}

// Result reports one estimation with its cost.
type Result struct {
	// Estimate is the estimated answer size.
	Estimate float64

	// Elapsed is the wall-clock estimation time (histogram arithmetic
	// only; histogram construction is a build-time cost).
	Elapsed time.Duration

	// UsedNoOverlap reports whether any join used the Fig 10
	// no-overlap algorithm.
	UsedNoOverlap bool
}

// EstimatePair estimates the answer size of the primitive two-node
// pattern anc//desc using the algorithm the paper would choose: the
// no-overlap estimation when the ancestor predicate has the no-overlap
// property (and coverage is available), the primitive pH-Join
// otherwise.
func (e *Estimator) EstimatePair(ancName, descName string) (Result, error) {
	start := time.Now()
	anc, err := e.leaf(ancName)
	if err != nil {
		return Result{}, err
	}
	desc, err := e.leaf(descName)
	if err != nil {
		return Result{}, err
	}
	joined, err := JoinAncestor(anc, desc)
	if err != nil {
		return Result{}, err
	}
	if err := joined.validate(); err != nil {
		return Result{}, err
	}
	return Result{
		Estimate:      joined.Total(),
		Elapsed:       time.Since(start),
		UsedNoOverlap: anc.NoOverlap && anc.Cvg != nil,
	}, nil
}

// EstimatePairPrimitive estimates anc//desc with the primitive (Fig 6 /
// Fig 9) algorithm regardless of schema information — the "Overlap
// Estimate" column of the paper's tables.
func (e *Estimator) EstimatePairPrimitive(ancName, descName string) (Result, error) {
	start := time.Now()
	ha, err := e.Histogram(ancName)
	if err != nil {
		return Result{}, err
	}
	hb, err := e.Histogram(descName)
	if err != nil {
		return Result{}, err
	}
	est, err := EstimateAncestorBased(ha, hb)
	if err != nil {
		return Result{}, err
	}
	return Result{Estimate: est.Total(), Elapsed: time.Since(start)}, nil
}

// EstimateTwig estimates the answer size of an arbitrary twig pattern
// by composing binary joins bottom-up: each pattern node's sub-pattern
// is folded with its children's sub-patterns through JoinAncestor, so
// multiple children multiply through per-cell join factors (our
// interpretation of the tech-report composition; see DESIGN.md).
//
// Parent-child edges are estimated as ancestor-descendant joins scaled
// by a depth-difference refinement when level histograms are enabled;
// without them the ancestor-descendant estimate is used as-is (an
// upper-biased approximation the paper lists as tech-report work).
func (e *Estimator) EstimateTwig(p *pattern.Pattern) (Result, error) {
	start := time.Now()
	root, usedNoOverlap, err := e.buildSubPattern(p.Root)
	if err != nil {
		return Result{}, err
	}
	if err := root.validate(); err != nil {
		return Result{}, err
	}
	return Result{Estimate: root.Total(), Elapsed: time.Since(start), UsedNoOverlap: usedNoOverlap}, nil
}

// EstimateSubPattern exposes sub-pattern estimation for query
// optimizers that need intermediate-result estimates: it returns the
// SubPattern (estimate, participation, coverage) of the pattern,
// anchored at its root. The returned position histograms are private
// clones, so callers may mutate them without corrupting the
// estimator's sub-twig join cache.
func (e *Estimator) EstimateSubPattern(p *pattern.Pattern) (SubPattern, error) {
	sp, _, err := e.buildSubPattern(p.Root)
	if err != nil {
		return SubPattern{}, err
	}
	sp.Est = sp.Est.Clone()
	sp.Hist = sp.Hist.Clone()
	sp.Base = sp.Base.Clone()
	if sp.Cvg != nil {
		sp.Cvg = sp.Cvg.Clone()
	}
	return sp, nil
}

// buildSubPattern folds a pattern node's children into its leaf
// sub-pattern with JoinAncestor, bottom-up. Parent-child edges are
// scaled by the level-histogram ratio when level histograms are
// available (see childEdgeRatio).
//
// Folded results for nodes with children are memoized in a bounded LRU
// keyed by the sub-twig's canonical signature (see prepared.go): the
// fold is a pure function of the immutable base histograms, so repeated
// estimates of a hot twig — or of different twigs sharing a sub-twig —
// skip the joins entirely. Cached sub-patterns are shared and must
// never be mutated; joins only read their operands.
func (e *Estimator) buildSubPattern(q *pattern.Node) (SubPattern, bool, error) {
	if len(q.Children) == 0 {
		acc, err := e.leaf(q.PredName())
		return acc, false, err
	}
	sig := subtreeSig(q)
	if hit, ok := e.joins().Get(sig); ok {
		return hit.sp, hit.noOv, nil
	}
	acc, err := e.leaf(q.PredName())
	if err != nil {
		return SubPattern{}, false, err
	}
	usedNoOverlap := false
	for _, qc := range q.Children {
		child, childNoOv, err := e.buildSubPattern(qc)
		if err != nil {
			return SubPattern{}, false, err
		}
		usedNoOverlap = usedNoOverlap || childNoOv
		if acc.NoOverlap && acc.Cvg != nil {
			usedNoOverlap = true
		}
		joined, err := JoinAncestor(acc, child)
		if err != nil {
			return SubPattern{}, false, err
		}
		if qc.Axis == pattern.Child {
			if r := e.childEdgeRatio(q.PredName(), qc.PredName()); r < 1 {
				joined.Est.Scale(r)
			}
		}
		acc = joined
	}
	e.joins().Put(sig, cachedJoin{sp: acc, noOv: usedNoOverlap})
	return acc, usedNoOverlap, nil
}

// StorageBytes reports the total compact-encoding size of every
// position histogram (and coverage histogram) the estimator holds —
// the paper's storage-requirement metric. The figure is computed once
// and cached: the histograms never change after construction (only
// Synthesize adds one, and it invalidates), and observability callers
// (/stats) may poll at serving rates.
func (e *Estimator) StorageBytes() int {
	if v := e.storageBytes.Load(); v > 0 {
		return int(v - 1)
	}
	total := 0
	for _, h := range e.hists {
		total += h.StorageBytes()
	}
	for _, c := range e.covs {
		total += c.StorageBytes()
	}
	e.storageBytes.Store(int64(total) + 1)
	return total
}
