package server

import (
	"context"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xmlest"
)

// newDurableNode boots a durable server node in its own data dir.
// followURL == "" makes it a leader; otherwise a follower of that URL.
func newDurableNode(t *testing.T, followURL string) (*Server, *httptest.Server, *xmlest.Database) {
	t.Helper()
	db, err := xmlest.OpenDurable(t.TempDir(), xmlest.DurableConfig{
		Options: xmlest.Options{GridSize: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Options:   xmlest.Options{GridSize: 4},
		FollowURL: followURL,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	if followURL != "" {
		cfg.StalenessBudget = 200 * time.Millisecond
	}
	s, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, ts, db
}

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return decode[T](t, resp)
}

func waitReplicated(t *testing.T, leaderURL, followerURL string, timeout time.Duration, label string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		lh := getJSON[HealthResponse](t, leaderURL+"/healthz")
		fh := getJSON[HealthResponse](t, followerURL+"/healthz")
		if lh.DurableSeq != nil && fh.DurableSeq != nil &&
			*lh.DurableSeq == *fh.DurableSeq && lh.Version == fh.Version {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: follower never caught up: leader %+v follower %+v", label, lh, fh)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

var replPatterns = []string{
	"//department//faculty",
	"//department//faculty[.//TA]",
	"//department//staff",
	"//faculty//TA",
}

func estimateOver(t *testing.T, baseURL string) (uint64, []float64) {
	t.Helper()
	resp := postJSON(t, baseURL+"/estimate", EstimateRequest{Patterns: replPatterns})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: HTTP %d", resp.StatusCode)
	}
	er := decode[EstimateResponse](t, resp)
	out := make([]float64, len(er.Results))
	for i, r := range er.Results {
		out[i] = r.Estimate
	}
	return er.Version, out
}

func TestTwoNodeReplication(t *testing.T) {
	_, leaderTS, _ := newDurableNode(t, "")
	_, followerTS, _ := newDurableNode(t, leaderTS.URL)

	// Roles are reported from the first probe on.
	lh := getJSON[HealthResponse](t, leaderTS.URL+"/healthz")
	if lh.Replication == nil || lh.Replication.Role != "leader" {
		t.Fatalf("leader healthz replication = %+v", lh.Replication)
	}
	fh := getJSON[HealthResponse](t, followerTS.URL+"/healthz")
	if fh.Replication == nil || fh.Replication.Role != "follower" || fh.Replication.Upstream != leaderTS.URL {
		t.Fatalf("follower healthz replication = %+v", fh.Replication)
	}

	// Appends go to the leader; the follower refuses them.
	for i := 0; i < 3; i++ {
		resp := postJSON(t, leaderTS.URL+"/append", AppendRequest{Documents: []string{dept1, dept2}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("leader append: HTTP %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := postJSON(t, followerTS.URL+"/append", AppendRequest{Documents: []string{dept1}})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower append: HTTP %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, followerTS.URL+"/compact", CompactRequest{})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower compact: HTTP %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()

	waitReplicated(t, leaderTS.URL, followerTS.URL, 5*time.Second, "append replication")

	// Cross-node exactness over the HTTP surface: same version, bit-
	// identical estimates.
	lv, lres := estimateOver(t, leaderTS.URL)
	fv, fres := estimateOver(t, followerTS.URL)
	if lv != fv {
		t.Fatalf("leader served version %d, follower %d", lv, fv)
	}
	for i := range lres {
		if math.Float64bits(lres[i]) != math.Float64bits(fres[i]) {
			t.Fatalf("pattern %q: follower %v != leader %v (not bit-identical)", replPatterns[i], fres[i], lres[i])
		}
	}

	// The follower's stats expose the lag denominators and counters.
	fs := getJSON[StatsResponse](t, followerTS.URL+"/stats")
	r := fs.Replication
	if r == nil || r.Role != "follower" || r.LagSeq == nil || *r.LagSeq != 0 || r.RecordsApplied == 0 {
		t.Fatalf("follower stats replication = %+v", r)
	}
	ls := getJSON[StatsResponse](t, leaderTS.URL+"/stats")
	if ls.Replication == nil || ls.Replication.Role != "leader" || ls.Replication.BytesShipped == 0 {
		t.Fatalf("leader stats replication = %+v", ls.Replication)
	}
}

func TestFollowerDegradesOnLeaderLossAndRecovers(t *testing.T) {
	leaderSrv, leaderTS, leaderDB := newDurableNode(t, "")
	_, followerTS, _ := newDurableNode(t, leaderTS.URL)

	resp := postJSON(t, leaderTS.URL+"/append", AppendRequest{Documents: []string{dept1, dept2}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leader append: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitReplicated(t, leaderTS.URL, followerTS.URL, 5*time.Second, "pre-loss")
	_, want := estimateOver(t, followerTS.URL)

	// The leader vanishes mid-life. Close the listener before sweeping
	// connections: otherwise the follower re-dials between the sweep and
	// Close, and Close waits out a live long-poll that heartbeats keep
	// active.
	leaderTS.Listener.Close()
	closed := make(chan struct{})
	go func() { leaderTS.Close(); close(closed) }()
	for stop := false; !stop; {
		select {
		case <-closed:
			stop = true
		default:
			leaderTS.CloseClientConnections()
			time.Sleep(5 * time.Millisecond)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		fh := getJSON[HealthResponse](t, followerTS.URL+"/healthz")
		if fh.Status == "degraded" {
			if fh.Degraded == nil || fh.Degraded.Component != "replication" {
				t.Fatalf("degraded follower names %+v, want replication", fh.Degraded)
			}
			if fh.Replication == nil || !fh.Replication.Stale {
				t.Fatalf("degraded follower not stale: %+v", fh.Replication)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never degraded after leader loss: %+v", fh)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Degraded never lies, and never refuses: reads still serve the last
	// durably applied state.
	_, got := estimateOver(t, followerTS.URL)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("degraded read changed: %v != %v", got[i], want[i])
		}
	}

	// The leader returns at the same address contents-wise: a new
	// listener over the same database. The follower reconnects, the
	// degradation clears. (A new URL means a new follower config in
	// production; here we re-point via a fresh follower node.)
	// t.Cleanup, not defer: cleanups are LIFO, so the follower node
	// registered below shuts down (closing its stream client) before this
	// listener's Close waits for open connections.
	leaderTS2 := httptest.NewServer(leaderSrv.Handler())
	t.Cleanup(leaderTS2.Close)
	_, follower2TS, _ := newDurableNode(t, leaderTS2.URL)
	resp = postJSON(t, leaderTS2.URL+"/append", AppendRequest{Documents: []string{dept2}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted leader append: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitReplicated(t, leaderTS2.URL, follower2TS.URL, 5*time.Second, "post-restart")
	fh := getJSON[HealthResponse](t, follower2TS.URL+"/healthz")
	if fh.Status != "ok" || (fh.Replication != nil && fh.Replication.Stale) {
		t.Fatalf("recovered follower still degraded: %+v", fh)
	}
	lv, lres := estimateOver(t, leaderTS2.URL)
	fv2, fres := estimateOver(t, follower2TS.URL)
	if lv != fv2 {
		t.Fatalf("post-restart versions diverge: %d vs %d", lv, fv2)
	}
	for i := range lres {
		if math.Float64bits(lres[i]) != math.Float64bits(fres[i]) {
			t.Fatalf("post-restart estimates diverge: %v != %v", lres[i], fres[i])
		}
	}
	_ = leaderDB
}

func TestReplicaMetricsFamilies(t *testing.T) {
	_, leaderTS, _ := newDurableNode(t, "")
	_, followerTS, _ := newDurableNode(t, leaderTS.URL)
	resp := postJSON(t, leaderTS.URL+"/append", AppendRequest{Documents: []string{dept1}})
	resp.Body.Close()
	waitReplicated(t, leaderTS.URL, followerTS.URL, 5*time.Second, "metrics warm-up")

	get := func(url string) string {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	fm := get(followerTS.URL)
	for _, fam := range []string{
		"xqest_replica_lag_seq",
		"xqest_replica_lag_seconds",
		"xqest_replica_connected",
		"xqest_replica_stale",
		"xqest_replica_reconnects_total",
		"xqest_replica_stream_errors_total",
		"xqest_replica_frames_rejected_total",
		"xqest_replica_records_applied_total",
		"xqest_replica_snapshots_applied_total",
		"xqest_replica_heartbeats_total",
		"xqest_replica_bytes_received_total",
	} {
		if !strings.Contains(fm, "# TYPE "+fam+" ") {
			t.Errorf("follower /metrics missing family %s", fam)
		}
	}
	lm := get(leaderTS.URL)
	for _, fam := range []string{
		"xqest_replica_streams_total",
		"xqest_replica_active_streams",
		"xqest_replica_bytes_shipped_total",
		"xqest_replica_records_shipped_total",
		"xqest_replica_snapshots_shipped_total",
	} {
		if !strings.Contains(lm, "# TYPE "+fam+" ") {
			t.Errorf("leader /metrics missing family %s", fam)
		}
	}
}

func TestFollowerRequiresDurableDatabase(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(db, Config{
		Options:   xmlest.Options{GridSize: 4},
		FollowURL: "http://127.0.0.1:1",
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err == nil || !strings.Contains(err.Error(), "durable") {
		t.Fatalf("non-durable follower accepted: %v", err)
	}
}
