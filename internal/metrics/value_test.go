package metrics

import (
	"sync"
	"testing"
)

func TestValueHistogramBasics(t *testing.T) {
	h := NewValueHistogram()
	if s := h.Summary(); s.Count != 0 || s.Mean != 0 || s.Max != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	for i := 0; i < 100; i++ {
		h.Observe(8)
	}
	h.Observe(64)
	s := h.Summary()
	if s.Count != 101 || s.Max != 64 {
		t.Fatalf("count=%d max=%d, want 101 and 64", s.Count, s.Max)
	}
	wantMean := float64(100*8+64) / 101
	if s.Mean != wantMean {
		t.Fatalf("mean %.3f, want %.3f", s.Mean, wantMean)
	}
	// p50 lands in the [8,16) bucket; the 2x bucket ratio bounds the
	// interpolation error.
	if s.P50 < 8 || s.P50 >= 16 {
		t.Fatalf("p50 %.3f outside [8,16)", s.P50)
	}
	// Quantiles never exceed the tracked max even though the top
	// bucket's upper edge would.
	if s.P99 > float64(s.Max) {
		t.Fatalf("p99 %.3f exceeds max %d", s.P99, s.Max)
	}
}

func TestValueHistogramClamps(t *testing.T) {
	h := NewValueHistogram()
	h.Observe(-5) // clamps to zero, still counted
	h.Observe(1 << 30)
	s := h.Summary()
	if s.Count != 2 {
		t.Fatalf("count %d, want 2", s.Count)
	}
	if s.Max != 1<<30 {
		t.Fatalf("max %d, want %d (max tracks the raw value)", s.Max, 1<<30)
	}
}

func TestValueHistogramConcurrent(t *testing.T) {
	h := NewValueHistogram()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(w + 1)
			}
		}(w)
	}
	wg.Wait()
	s := h.Summary()
	if s.Count != workers*each {
		t.Fatalf("count %d, want %d", s.Count, workers*each)
	}
	if s.Max != workers {
		t.Fatalf("max %d, want %d", s.Max, workers)
	}
}
