package accuracy

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"xmlest/internal/metrics"
)

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	if m.Sampled() {
		t.Error("nil monitor sampled")
	}
	m.Submit("//a//b", 1, func(time.Time) (float64, error) { return 0, nil })
	m.Close()
}

func TestMonitorDisabledNeverSamples(t *testing.T) {
	m := NewMonitor(MonitorConfig{SampleEvery: 0})
	defer m.Close()
	for i := 0; i < 100; i++ {
		if m.Sampled() {
			t.Fatal("SampleEvery 0 sampled")
		}
	}
}

func TestMonitorSamplingStride(t *testing.T) {
	m := NewMonitor(MonitorConfig{SampleEvery: 4})
	defer m.Close()
	hits := 0
	for i := 0; i < 100; i++ {
		if m.Sampled() {
			hits++
		}
	}
	if hits != 25 {
		t.Errorf("1-in-4 over 100 = %d hits, want 25", hits)
	}
}

// waitCounter polls until get() reaches want or the deadline passes.
func waitCounter(t *testing.T, want uint64, get func() uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if get() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counter stuck at %d, want %d", get(), want)
}

func TestMonitorClassifiesOutcomes(t *testing.T) {
	ps := metrics.NewPatternStats(0)
	ps.Observe("//a//b", 12, time.Microsecond) // track the pattern first
	m := NewMonitor(MonitorConfig{SampleEvery: 1, Patterns: ps})
	defer m.Close()

	m.Submit("//a//b", 12, func(time.Time) (float64, error) { return 10, nil })
	m.Submit("//a//b", 5, func(time.Time) (float64, error) { return 0, fmt.Errorf("budget: %w", context.DeadlineExceeded) })
	m.Submit("//a//b", 5, func(time.Time) (float64, error) { return 0, fmt.Errorf("snap: %w", ErrUnverifiable) })
	m.Submit("//a//b", 5, func(time.Time) (float64, error) { return 0, errors.New("boom") })

	waitCounter(t, 1, func() uint64 { return m.Snapshot().Verified })
	waitCounter(t, 1, func() uint64 { return m.Snapshot().Deadline })
	waitCounter(t, 1, func() uint64 { return m.Snapshot().Unverifiable })
	waitCounter(t, 1, func() uint64 { return m.Snapshot().Failed })

	s := m.Snapshot()
	if s.Sampled != 4 {
		t.Errorf("sampled = %d, want 4", s.Sampled)
	}
	if s.QError.Count != 1 {
		t.Fatalf("qerror count = %d, want 1", s.QError.Count)
	}
	want := QError(12, 10)
	if s.QError.Max != want {
		t.Errorf("qerror max = %v, want %v", s.QError.Max, want)
	}
	// |12-10|/10 = 0.2
	if s.MeanRelErr < 0.19 || s.MeanRelErr > 0.21 {
		t.Errorf("mean rel err = %v, want ~0.2", s.MeanRelErr)
	}
	// The per-pattern digest saw the verified q-error.
	snap := ps.Snapshot(1)
	if len(snap) != 1 || snap[0].QError == nil || snap[0].QError.Count != 1 {
		t.Errorf("pattern digest missing q-error: %+v", snap)
	}
}

func TestSampledUnsampledPathAllocs(t *testing.T) {
	// The unsampled hot path is one atomic increment: no allocation,
	// for a nil monitor or a live one.
	var nilM *Monitor
	if n := testing.AllocsPerRun(1000, func() { nilM.Sampled() }); n != 0 {
		t.Errorf("nil Sampled allocs = %v, want 0", n)
	}
	m := NewMonitor(MonitorConfig{SampleEvery: 1 << 30})
	defer m.Close()
	if n := testing.AllocsPerRun(1000, func() { m.Sampled() }); n != 0 {
		t.Errorf("unsampled Sampled allocs = %v, want 0", n)
	}
}

func TestMonitorDropsOnOverflow(t *testing.T) {
	block := make(chan struct{})
	m := NewMonitor(MonitorConfig{SampleEvery: 1, Workers: 1, QueueSize: 1})
	defer m.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	m.Submit("//a", 1, func(time.Time) (float64, error) {
		wg.Done()
		<-block
		return 0, nil
	})
	wg.Wait() // worker is now stuck inside the first job
	m.Submit("//a", 1, func(time.Time) (float64, error) { return 0, nil })
	// The queue (size 1) holds the second job; the third must drop.
	m.Submit("//a", 1, func(time.Time) (float64, error) { return 0, nil })
	if d := m.Snapshot().Dropped; d != 1 {
		t.Errorf("dropped = %d, want 1", d)
	}
	close(block)
}

func TestMonitorSubmitAfterCloseDrops(t *testing.T) {
	m := NewMonitor(MonitorConfig{SampleEvery: 1})
	m.Close()
	m.Close() // idempotent
	m.Submit("//a", 1, func(time.Time) (float64, error) { return 1, nil })
	if d := m.Snapshot().Dropped; d != 1 {
		t.Errorf("dropped after close = %d, want 1", d)
	}
}

func TestMonitorCollect(t *testing.T) {
	m := NewMonitor(MonitorConfig{SampleEvery: 1})
	defer m.Close()
	m.Submit("//a", 3, func(time.Time) (float64, error) { return 3, nil })
	waitCounter(t, 1, func() uint64 { return m.Snapshot().Verified })

	var buf bytes.Buffer
	m.Collect(metrics.NewExpo(&buf))
	out := buf.String()
	for _, want := range []string{
		"# TYPE xqest_accuracy_qerror histogram",
		"xqest_accuracy_qerror_sum",
		"xqest_accuracy_qerror_count 1",
		"xqest_accuracy_sampled_total 1",
		"xqest_accuracy_verified_total 1",
		"xqest_accuracy_dropped_total 0",
		"xqest_accuracy_deadline_total 0",
		"xqest_accuracy_unverifiable_total 0",
		"xqest_accuracy_failed_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
