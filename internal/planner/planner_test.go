package planner

import (
	"testing"

	"xmlest/internal/core"
	"xmlest/internal/datagen"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

func fig1Estimator(t *testing.T) *core.Estimator {
	t.Helper()
	tr := xmltree.Fig1Document()
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	est, err := core.NewEstimator(cat, core.Options{GridSize: 4})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	return est
}

func TestEnumerateFig2Twig(t *testing.T) {
	est := fig1Estimator(t)
	p := pattern.MustParse("//department//faculty[.//TA][.//RA]")
	plans, err := Enumerate(est, p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(plans) < 2 {
		t.Fatalf("want multiple plans, got %d", len(plans))
	}
	// Costs must be ascending and every plan must join all 4 nodes.
	for i, pl := range plans {
		if len(pl.Steps) != 4 {
			t.Errorf("plan %d has %d steps, want 4", i, len(pl.Steps))
		}
		if i > 0 && pl.Cost < plans[i-1].Cost {
			t.Errorf("plans not sorted by cost at %d", i)
		}
		if pl.Cost < 0 {
			t.Errorf("negative cost %v", pl.Cost)
		}
	}
	best, err := Best(est, p)
	if err != nil {
		t.Fatalf("Best: %v", err)
	}
	if best.Cost != plans[0].Cost {
		t.Errorf("Best cost %v != first enumerated %v", best.Cost, plans[0].Cost)
	}
	if best.String() == "" {
		t.Errorf("empty plan string")
	}
}

func TestEnumerateConnectedPrefixesOnly(t *testing.T) {
	est := fig1Estimator(t)
	p := pattern.MustParse("//department//faculty//TA")
	plans, err := Enumerate(est, p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	// For a 3-chain a-b-c the connected left-deep orders are:
	// abc, acb?? (a,c not adjacent) -> invalid. Valid: abc, bac, bca, cba.
	if len(plans) != 4 {
		t.Errorf("3-chain plans = %d, want 4", len(plans))
	}
	for _, pl := range plans {
		seen := map[*pattern.Node]bool{pl.Steps[0].Added: true}
		parent := map[*pattern.Node]*pattern.Node{}
		for _, e := range p.Edges() {
			parent[e[1]] = e[0]
		}
		for _, s := range pl.Steps[1:] {
			adjacent := false
			for n := range seen {
				if parent[s.Added] == n || parent[n] == s.Added {
					adjacent = true
				}
			}
			if !adjacent {
				t.Errorf("plan step joins non-adjacent node %s", s.Added.Test)
			}
			seen[s.Added] = true
		}
	}
}

func TestPlannerPrefersSelectiveFirstJoin(t *testing.T) {
	// department//employee//email on the hierarchical data: joining the
	// rare email first should be no more expensive than the plan that
	// materializes the large department//employee intermediate first.
	tr := datagen.GenerateHier(datagen.DefaultHierConfig)
	cat := datagen.HierCatalog(tr)
	est, err := core.NewEstimator(cat, core.Options{GridSize: 10})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	p := pattern.MustParse("//department//employee//email")
	plans, err := Enumerate(est, p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	best, worst := plans[0], plans[len(plans)-1]
	if best.Cost > worst.Cost {
		t.Fatalf("sorted order broken")
	}
	if worst.Cost <= best.Cost {
		t.Skipf("all plans tie on this data (cost %v)", best.Cost)
	}
}

func TestEnumerateErrors(t *testing.T) {
	est := fig1Estimator(t)
	if _, err := Enumerate(est, pattern.MustParse("//faculty")); err == nil {
		t.Errorf("single-node pattern: want error")
	}
	if _, err := Enumerate(est, pattern.MustParse("//nosuch//TA")); err == nil {
		t.Errorf("missing predicate: want error")
	}
	big := pattern.MustParse("//a//b//c//d//e//f//g//h//i")
	if _, err := Enumerate(est, big); err == nil {
		t.Errorf("oversized pattern: want error")
	}
}
