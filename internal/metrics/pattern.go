package metrics

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// PatternStats is a bounded top-K tracker of per-pattern query
// statistics: request count, estimate magnitude distribution, and
// estimate-stage latency, keyed by the normalized pattern text. The
// first maxTracked distinct patterns get full histograms; later
// arrivals only bump an overflow counter, so a hostile or
// high-cardinality workload cannot grow the tracker without bound.
//
// Observe is on the /estimate hot path: a tracked pattern costs one
// RLock'd map lookup plus atomic histogram updates — no allocation.
type PatternStats struct {
	maxTracked int

	mu    sync.RWMutex
	m     map[string]*patternEntry
	other atomic.Uint64 // observations for untracked patterns
}

type patternEntry struct {
	pattern string
	count   atomic.Uint64
	est     *ValueHistogram
	lat     *LatencyHistogram
	// qerr digests shadow-execution q-errors for the pattern. Created
	// with the entry but only populated for patterns the accuracy
	// monitor sampled and verified.
	qerr *FloatHistogram
}

// NewPatternStats returns a tracker holding at most maxTracked
// distinct patterns (<= 0 means DefaultMaxPatterns).
func NewPatternStats(maxTracked int) *PatternStats {
	if maxTracked <= 0 {
		maxTracked = DefaultMaxPatterns
	}
	return &PatternStats{maxTracked: maxTracked, m: make(map[string]*patternEntry)}
}

// DefaultMaxPatterns bounds the tracked-pattern set.
const DefaultMaxPatterns = 64

// DefaultTopPatterns is how many tracked patterns introspection
// surfaces (the /stats top-K).
const DefaultTopPatterns = 10

// NormalizePattern canonicalizes a pattern's text for keying: leading
// and trailing space is trimmed and internal whitespace runs collapse
// to one space. Allocation-free for already-normal patterns (the
// common case).
func NormalizePattern(p string) string {
	p = strings.TrimSpace(p)
	if !strings.ContainsAny(p, " \t\r\n") {
		return p
	}
	return strings.Join(strings.Fields(p), " ")
}

// Observe records one estimate for the pattern: the estimated answer
// size (rounded to an integer for the magnitude histogram) and the
// estimate-stage latency.
func (p *PatternStats) Observe(pat string, estimate float64, d time.Duration) {
	pat = NormalizePattern(pat)
	p.mu.RLock()
	ent := p.m[pat]
	p.mu.RUnlock()
	if ent == nil {
		p.mu.Lock()
		ent = p.m[pat]
		if ent == nil {
			if len(p.m) >= p.maxTracked {
				p.mu.Unlock()
				p.other.Add(1)
				return
			}
			ent = &patternEntry{pattern: pat, est: NewValueHistogram(), lat: NewLatencyHistogram(), qerr: NewQErrorHistogram()}
			p.m[pat] = ent
		}
		p.mu.Unlock()
	}
	ent.count.Add(1)
	ent.est.Observe(int(estimate + 0.5))
	ent.lat.Observe(d)
}

// ObserveQError records one shadow-verified q-error for the pattern.
// Untracked patterns (beyond the bounded set) are dropped silently —
// the pattern's serving-path Observe already bumped the overflow
// counter, and an accuracy digest without its request digest would be
// unanchorable anyway.
func (p *PatternStats) ObserveQError(pat string, q float64) {
	pat = NormalizePattern(pat)
	p.mu.RLock()
	ent := p.m[pat]
	p.mu.RUnlock()
	if ent != nil {
		ent.qerr.Observe(q)
	}
}

// Untracked returns the observation count that overflowed the tracked
// set.
func (p *PatternStats) Untracked() uint64 { return p.other.Load() }

// PatternSnapshot digests one tracked pattern.
type PatternSnapshot struct {
	Pattern  string         `json:"pattern"`
	Requests uint64         `json:"requests"`
	Estimate ValueSummary   `json:"estimate"`
	Latency  LatencySummary `json:"latency"`
	// QError digests the pattern's shadow-verified estimate error;
	// absent until the accuracy monitor has verified at least one of
	// the pattern's estimates.
	QError *FloatSummary `json:"qerror,omitempty"`
}

// Snapshot returns up to topK tracked patterns, most-requested first
// (topK <= 0 means all).
func (p *PatternStats) Snapshot(topK int) []PatternSnapshot {
	p.mu.RLock()
	ents := make([]*patternEntry, 0, len(p.m))
	for _, e := range p.m {
		ents = append(ents, e)
	}
	p.mu.RUnlock()
	sort.Slice(ents, func(i, j int) bool {
		ci, cj := ents[i].count.Load(), ents[j].count.Load()
		if ci != cj {
			return ci > cj
		}
		return ents[i].pattern < ents[j].pattern
	})
	if topK > 0 && len(ents) > topK {
		ents = ents[:topK]
	}
	out := make([]PatternSnapshot, len(ents))
	for i, e := range ents {
		out[i] = PatternSnapshot{
			Pattern:  e.pattern,
			Requests: e.count.Load(),
			Estimate: e.est.Summary(),
			Latency:  e.lat.Summary(),
		}
		if qs := e.qerr.Summary(); qs.Count > 0 {
			out[i].QError = &qs
		}
	}
	return out
}

// Collect exports the tracked patterns: per-pattern request counters,
// latency sum/count (enough for rate and mean), mean estimate, and
// the untracked-overflow counter.
func (p *PatternStats) Collect(e *Expo) {
	p.mu.RLock()
	ents := make([]*patternEntry, 0, len(p.m))
	for _, ent := range p.m {
		ents = append(ents, ent)
	}
	p.mu.RUnlock()
	sort.Slice(ents, func(i, j int) bool { return ents[i].pattern < ents[j].pattern })

	e.Family("xqest_pattern_requests_total", "counter", "Estimates served per tracked pattern.")
	for _, ent := range ents {
		e.Sample("xqest_pattern_requests_total", float64(ent.count.Load()), "pattern", ent.pattern)
	}
	e.Family("xqest_pattern_latency_seconds_sum", "counter", "Cumulative estimate-stage seconds per tracked pattern.")
	for _, ent := range ents {
		e.Sample("xqest_pattern_latency_seconds_sum",
			float64(ent.lat.sumNS.Load())/float64(time.Second), "pattern", ent.pattern)
	}
	e.Family("xqest_pattern_latency_seconds_count", "counter", "Estimates timed per tracked pattern.")
	for _, ent := range ents {
		e.Sample("xqest_pattern_latency_seconds_count", float64(ent.lat.Count()), "pattern", ent.pattern)
	}
	e.Family("xqest_pattern_estimate_mean", "gauge", "Mean estimated answer size per tracked pattern.")
	for _, ent := range ents {
		var mean float64
		if n := ent.est.Count(); n > 0 {
			mean = float64(ent.est.sum.Load()) / float64(n)
		}
		e.Sample("xqest_pattern_estimate_mean", mean, "pattern", ent.pattern)
	}
	// Per-pattern q-error digests: only declared when some pattern has
	// shadow-verified observations, so an exposition without accuracy
	// sampling carries no sample-less families.
	var verified []*patternEntry
	for _, ent := range ents {
		if ent.qerr.Count() > 0 {
			verified = append(verified, ent)
		}
	}
	if len(verified) > 0 {
		e.Family("xqest_pattern_qerror_count", "counter", "Shadow-verified estimates per tracked pattern.")
		for _, ent := range verified {
			e.Sample("xqest_pattern_qerror_count", float64(ent.qerr.Count()), "pattern", ent.pattern)
		}
		e.Family("xqest_pattern_qerror_mean", "gauge", "Mean shadow-verified q-error per tracked pattern.")
		for _, ent := range verified {
			e.Sample("xqest_pattern_qerror_mean", ent.qerr.Sum()/float64(ent.qerr.Count()), "pattern", ent.pattern)
		}
	}
	e.Counter("xqest_pattern_untracked_requests_total",
		"Estimates whose pattern overflowed the tracked set.", float64(p.Untracked()))
}
