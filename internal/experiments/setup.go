// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5): Table 1/2 on the DBLP-shaped dataset,
// Table 3/4 on the synthetic manager/department/employee dataset,
// Fig 11/12 storage and accuracy grid sweeps, the Theorem 1/2 storage
// scaling checks, and the Section 2/3.2/4.2 running example. The
// cmd/experiments binary renders them; the repository-level benchmarks
// time them.
package experiments

import (
	"sync"

	"xmlest/internal/core"
	"xmlest/internal/datagen"
	"xmlest/internal/match"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// Setup bundles a dataset with its catalog and a default estimator.
type Setup struct {
	Tree      *xmltree.Tree
	Catalog   *predicate.Catalog
	Estimator *core.Estimator // 10×10 grids, as in the paper
}

var (
	dblpOnce sync.Once
	dblpS    *Setup
	hierOnce sync.Once
	hierS    *Setup
)

// DBLP returns the Table 1 dataset setup, built once per process (the
// full-scale dataset has several hundred thousand nodes).
func DBLP() *Setup {
	dblpOnce.Do(func() {
		tree := datagen.GenerateDBLP(datagen.DefaultDBLPConfig)
		cat := datagen.DBLPCatalog(tree)
		est, err := core.NewEstimator(cat, core.Options{GridSize: 10})
		if err != nil {
			panic("experiments: DBLP estimator: " + err.Error())
		}
		dblpS = &Setup{Tree: tree, Catalog: cat, Estimator: est}
	})
	return dblpS
}

// Hier returns the Table 3 synthetic dataset setup.
func Hier() *Setup {
	hierOnce.Do(func() {
		tree := datagen.GenerateHier(datagen.DefaultHierConfig)
		cat := datagen.HierCatalog(tree)
		est, err := core.NewEstimator(cat, core.Options{GridSize: 10})
		if err != nil {
			panic("experiments: hier estimator: " + err.Error())
		}
		hierS = &Setup{Tree: tree, Catalog: cat, Estimator: est}
	})
	return hierS
}

// RealPairs computes the exact answer size of anc//desc.
func (s *Setup) RealPairs(ancPred, descPred string) int64 {
	return match.CountPairs(s.Tree,
		s.Catalog.MustGet(ancPred).Nodes,
		s.Catalog.MustGet(descPred).Nodes)
}
