// Prometheus collectors for the shard layer (see internal/metrics).
// The durable store chains the WAL's own collectors and adds the
// checkpoint/degraded surface plus the append-pipeline histograms; the
// plain store exports serving-set shape and merged-serving state.

package shard

import (
	"strconv"
	"time"

	"xmlest/internal/metrics"
)

// Collect exports the durable layer's families: WAL watermarks (via the
// log and committer collectors), checkpoint progress and failures, the
// degraded flags, commit group sizes, pre-commit queue wait, and the
// per-stage append pipeline histograms.
func (d *DurableStore) Collect(e *metrics.Expo) {
	d.log.Collect(e)
	d.committer.Collect(e)
	d.stages.Collect(e)

	e.Counter("xqest_checkpoints_total", "Checkpoints taken by this process.", float64(d.checkpoints.Load()))
	e.Counter("xqest_checkpoint_failures_total", "Checkpoint attempts that failed since open.", float64(d.cpFailures.Load()))
	e.Gauge("xqest_checkpoint_version", "Serving-set version pinned by the newest checkpoint.", float64(d.cpVersion.Load()))
	e.Gauge("xqest_checkpoint_wal_seq", "WAL sequence the newest checkpoint made redundant.", float64(d.cpSeq.Load()))

	comp, _, degraded := d.Degraded()
	for _, c := range []string{"wal", "checkpoint"} {
		v := 0.0
		if degraded && comp == c {
			v = 1
		}
		e.Gauge("xqest_degraded", "1 when the named storage component has failed (reads still serve).", v, "component", c)
	}

	e.Family("xqest_group_commit_group_size", "histogram", "Append batches per commit group.")
	e.ValueSamples("xqest_group_commit_group_size", d.groupSizes)
	e.Family("xqest_commit_queue_wait_seconds", "histogram", "Wait from append arrival to durable commit.")
	e.LatencySamples("xqest_commit_queue_wait_seconds", d.queueWait)
}

// Collect exports the serving-set shape and the merged-serving state:
// shard count, set version, fold epoch and counts, fold age, per-grid
// freshness and fan-out tail width, and PrepareSet's path decisions.
func (st *Store) Collect(e *metrics.Expo) {
	set := st.Current()
	e.Gauge("xqest_shards", "Shards in the serving set.", float64(set.Len()))
	e.Gauge("xqest_set_version", "Serving-set version.", float64(set.version))
	e.Gauge("xqest_merge_epoch", "Merged-serving epoch (fold completions and invalidations).", float64(st.MergeEpoch()))
	e.Counter("xqest_merged_folds_total", "Completed merged-summary folds.", float64(st.foldsDone.Load()))
	if nano := st.lastFoldNano.Load(); nano > 0 {
		age := time.Since(time.Unix(0, nano)).Seconds()
		e.Gauge("xqest_merged_fold_age_seconds", "Age of the newest completed fold.", age)
	}

	opts := st.activeOptions()
	e.Family("xqest_merged_fresh", "gauge", "1 when the fold for the grid covers the serving set exactly.")
	for _, o := range opts {
		info := st.MergedInfo(set, o)
		v := 0.0
		if info.Fresh {
			v = 1
		}
		e.Sample("xqest_merged_fresh", v, "grid", strconv.Itoa(o.GridSize))
	}
	e.Family("xqest_merged_tail_shards", "gauge", "Shards appended after the fold (served by fan-out).")
	for _, o := range opts {
		info := st.MergedInfo(set, o)
		tail := set.Len() - info.CoveredShards
		if info.CoveredShards == 0 || tail < 0 {
			tail = set.Len()
		}
		e.Sample("xqest_merged_tail_shards", float64(tail), "grid", strconv.Itoa(o.GridSize))
	}

	e.Counter("xqest_prepare_merged_total", "Pattern bindings served from a merged fold.", float64(st.prepMerged.Load()))
	e.Counter("xqest_prepare_fanout_total", "Pattern bindings served by per-shard fan-out.", float64(st.prepFanout.Load()))
	e.Counter("xqest_prepare_mixed_fallback_total", "Fan-outs forced by a mixed-state predicate.", float64(st.prepMixed.Load()))
}
