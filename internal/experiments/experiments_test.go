package experiments

import (
	"bytes"
	"math"
	"testing"
)

// These are the repository's integration tests: they run the full
// pipeline (generate → number → catalog → histograms → estimate →
// exact-count) and assert the qualitative claims of the paper's
// evaluation section — the "shape" targets recorded in DESIGN.md §4.

func TestTable1Shape(t *testing.T) {
	for _, r := range Table1() {
		if r.Count != r.PaperCount {
			t.Errorf("%s: count = %d, want the paper's %d (generator is tuned exactly)",
				r.Name, r.Count, r.PaperCount)
		}
		wantNoOverlap := r.PaperNote == "no overlap" || r.PaperNote == "N/A"
		if r.NoOverlap != wantNoOverlap {
			t.Errorf("%s: NoOverlap = %v, want %v", r.Name, r.NoOverlap, wantNoOverlap)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	for _, r := range Table2() {
		name := r.Anc + "//" + r.Desc
		real := float64(r.Real)
		if real <= 0 {
			t.Fatalf("%s: degenerate real count", name)
		}
		// Naive must overestimate by orders of magnitude.
		if r.Naive < 100*real {
			t.Errorf("%s: naive %v should dwarf real %v", name, r.Naive, real)
		}
		// The schema-only bound is an upper bound.
		if r.DescNum > 0 && float64(r.DescNum) < real {
			t.Errorf("%s: descendant bound %d below real %v", name, r.DescNum, real)
		}
		// The primitive estimate improves on naive; the no-overlap
		// estimate improves on primitive (Table 2's headline result).
		if r.Overlap >= r.Naive {
			t.Errorf("%s: overlap estimate %v must beat naive %v", name, r.Overlap, r.Naive)
		}
		if !r.HasNoOverlap {
			t.Fatalf("%s: every Table 2 ancestor is no-overlap", name)
		}
		if math.Abs(r.NoOverlap-real) > math.Abs(r.Overlap-real) {
			t.Errorf("%s: no-overlap %v should be closer to real %v than overlap %v",
				name, r.NoOverlap, real, r.Overlap)
		}
		// The no-overlap estimate lands within a small factor of real
		// (the paper's rows land within ~25%).
		if r.NoOverlap < 0.5*real || r.NoOverlap > 1.5*real {
			t.Errorf("%s: no-overlap %v outside [0.5, 1.5]×real %v", name, r.NoOverlap, real)
		}
		// §5.1 timing claim: a few tenths of a millisecond at most.
		if r.OverlapTime.Seconds() > 0.01 || (r.HasNoOverlap && r.NoOverlapTime.Seconds() > 0.01) {
			t.Errorf("%s: estimation too slow: %v / %v", name, r.OverlapTime, r.NoOverlapTime)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	for _, r := range Table3() {
		lo := int(0.5 * float64(r.PaperCount))
		hi := int(1.6 * float64(r.PaperCount))
		if r.Count < lo || r.Count > hi {
			t.Errorf("%s: count = %d, want near the paper's %d", r.Name, r.Count, r.PaperCount)
		}
		wantNoOverlap := r.PaperNote == "no overlap"
		if r.NoOverlap != wantNoOverlap {
			t.Errorf("%s: NoOverlap = %v, want %v", r.Name, r.NoOverlap, wantNoOverlap)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	for _, r := range Table4() {
		name := r.Anc + "//" + r.Desc
		real := float64(r.Real)
		if real <= 0 {
			t.Fatalf("%s: degenerate real count", name)
		}
		if r.Overlap >= r.Naive {
			t.Errorf("%s: overlap estimate %v must beat naive %v", name, r.Overlap, r.Naive)
		}
		// Paper's Table 4 claim: for *overlapping* ancestors the
		// primitive estimate is "very close"; we accept within a factor
		// of 4 (the paper's department rows are off by ~2x themselves).
		// For no-overlap ancestors the primitive estimate is expected to
		// be far off — the paper's employee//name row is 12x over — and
		// the coverage algorithm is the fix.
		if !r.HasNoOverlap && (r.Overlap < real/4 || r.Overlap > real*4) {
			t.Errorf("%s: overlap estimate %v outside 4x of real %v", name, r.Overlap, real)
		}
		if r.HasNoOverlap {
			if math.Abs(r.NoOverlap-real) > math.Abs(r.Overlap-real) {
				t.Errorf("%s: no-overlap %v should beat overlap %v (real %v)",
					name, r.NoOverlap, r.Overlap, real)
			}
		}
		// N/A pattern must match the paper: manager/department ancestors
		// have no no-overlap estimate.
		wantNA := r.Anc == "manager" || r.Anc == "department"
		if wantNA == r.HasNoOverlap {
			t.Errorf("%s: HasNoOverlap = %v, want %v", name, r.HasNoOverlap, !wantNA)
		}
	}
}

func TestRunningExampleShape(t *testing.T) {
	res, err := RunExample()
	if err != nil {
		t.Fatalf("RunExample: %v", err)
	}
	if res.Naive != 15 || res.UpperBound != 5 || res.Real != 2 {
		t.Errorf("fixed quantities wrong: naive=%v bound=%v real=%v", res.Naive, res.UpperBound, res.Real)
	}
	if math.Abs(res.Primitive-res.PaperPrimitive) > 0.3 {
		t.Errorf("primitive = %v, paper narrates %v", res.Primitive, res.PaperPrimitive)
	}
	if math.Abs(res.NoOverlap-res.PaperNoOverlap) > 0.3 {
		t.Errorf("no-overlap = %v, paper narrates %v", res.NoOverlap, res.PaperNoOverlap)
	}
}

func TestFig11Shape(t *testing.T) {
	pts := Fig11()
	if len(pts) < 8 {
		t.Fatalf("too few sweep points: %d", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	// Storage grows roughly linearly: the g=50 histograms must cost
	// more than the g=2 ones but far less than (50/2)² as much.
	for _, sel := range []func(Fig11Point) int{
		func(p Fig11Point) int { return p.StorageAncestor },
		func(p Fig11Point) int { return p.StorageDescendant },
	} {
		if sel(last) <= sel(first) {
			t.Errorf("storage did not grow with g: %d -> %d", sel(first), sel(last))
		}
		if sel(last) > sel(first)*100 {
			t.Errorf("storage grew superlinearly: %d -> %d", sel(first), sel(last))
		}
	}
	// Accuracy improves from far-off to close (paper: ratio near 1 past
	// g = 10-20; our regenerated dataset converges on the same curve).
	if math.Abs(first.Ratio-1) < math.Abs(last.Ratio-1) {
		t.Errorf("ratio did not improve: %v (g=%d) -> %v (g=%d)",
			first.Ratio, first.GridSize, last.Ratio, last.GridSize)
	}
	if last.Ratio < 0.5 || last.Ratio > 2.0 {
		t.Errorf("g=%d ratio %v should be within 2x of 1", last.GridSize, last.Ratio)
	}
}

func TestFig12Shape(t *testing.T) {
	pts := Fig12()
	if len(pts) < 8 {
		t.Fatalf("too few sweep points: %d", len(pts))
	}
	// The no-overlap estimate is accurate from small grids on (the
	// paper: within 1±0.05 from g=5; ours carries the documented
	// population-dilution bias, so accept 1±0.2) and stays stable.
	for _, p := range pts {
		if p.GridSize < 5 {
			continue
		}
		if p.Ratio < 0.8 || p.Ratio > 1.2 {
			t.Errorf("g=%d: ratio %v outside 1±0.2", p.GridSize, p.Ratio)
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.StorageHistAncestor <= first.StorageHistAncestor {
		t.Errorf("article histogram storage did not grow with g")
	}
	if last.StorageCvgAncestor <= first.StorageCvgAncestor {
		t.Errorf("article coverage storage did not grow with g")
	}
}

func TestTheorem1Linear(t *testing.T) {
	for _, p := range Theorem1() {
		if p.NonZeroCells > 4*p.GridSize {
			t.Errorf("g=%d: %d non-zero cells exceeds 4g", p.GridSize, p.NonZeroCells)
		}
	}
}

func TestTheorem2Linear(t *testing.T) {
	for _, p := range Theorem2() {
		if p.PartialCells > 6*p.GridSize {
			t.Errorf("g=%d: %d partial cells exceeds 6g", p.GridSize, p.PartialCells)
		}
	}
}

func TestStorageSummaryClaim(t *testing.T) {
	s := StorageSummary()
	if s.Predicates < 12 {
		t.Fatalf("catalog too small: %d predicates", s.Predicates)
	}
	// Paper: ~95 bytes per predicate histogram at 10×10 (6 KB / 63).
	// Our varint encoding is tighter; anything in the tens-of-bytes to
	// few-hundred range per predicate confirms the miniscule-storage
	// claim relative to the ~150k-node dataset.
	if s.BytesPerPred > 1024 {
		t.Errorf("bytes per predicate = %v, want well under 1 KB", s.BytesPerPred)
	}
	if s.TotalBytes <= 0 {
		t.Errorf("no storage measured")
	}
}

func TestRenderAllProducesOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderAll(&buf); err != nil {
		t.Fatalf("RenderAll: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Running example", "Table 1", "Table 2", "Table 3", "Table 4",
		"Fig 11", "Fig 12", "Theorem 1", "Theorem 2", "Storage summary",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("RenderAll output missing %q", want)
		}
	}
	if len(out) < 1000 {
		t.Errorf("suspiciously short output: %d bytes", len(out))
	}
}
