// Command experiments regenerates the tables and figures of
// "Estimating Answer Sizes for XML Queries" (EDBT 2002) on the
// repository's substitute datasets and prints them next to the paper's
// reported values.
//
// Usage:
//
//	experiments [-run all|example|table1|table2|table3|table4|fig11|fig12|theorem1|theorem2|storage]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xmlest/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run")
	flag.Parse()

	runners := map[string]func(io.Writer) error{
		"all":      experiments.RenderAll,
		"example":  experiments.RenderExample,
		"table1":   experiments.RenderTable1,
		"table2":   experiments.RenderTable2,
		"table3":   experiments.RenderTable3,
		"table4":   experiments.RenderTable4,
		"fig11":    experiments.RenderFig11,
		"fig12":    experiments.RenderFig12,
		"theorem1": experiments.RenderTheorem1,
		"theorem2": experiments.RenderTheorem2,
		"storage":  experiments.RenderStorageSummary,
		"ablation": experiments.RenderAblation,
		"errors":   experiments.RenderErrorProfile,
		"plans":    experiments.RenderPlanQuality,
	}
	f, ok := runners[*run]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
	if err := f(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
