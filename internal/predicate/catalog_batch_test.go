package predicate

import (
	"testing"

	"xmlest/internal/xmltree"
)

// TestAddBatchMatchesAdd asserts the shared-scan batch registration is
// indistinguishable from per-predicate Add: same node lists, same
// no-overlap detection, same registration order.
func TestAddBatchMatchesAdd(t *testing.T) {
	tr := xmltree.Fig1Document()
	preds := []Predicate{
		Tag{Value: "faculty"},
		ContentPrefix{Value: "J"},
		And{Parts: []Predicate{Tag{Value: "TA"}}},
		Named{Alias: "everything", Inner: True{}},
		Tag{Value: "RA"},
		Or{Parts: []Predicate{Tag{Value: "TA"}, Tag{Value: "RA"}}},
	}

	seq := NewCatalog(tr)
	for _, p := range preds {
		seq.Add(p)
	}
	batch := NewCatalog(tr)
	entries := batch.AddBatch(preds)

	if len(entries) != len(preds) {
		t.Fatalf("AddBatch returned %d entries, want %d", len(entries), len(preds))
	}
	seqNames, batchNames := seq.Names(), batch.Names()
	if len(seqNames) != len(batchNames) {
		t.Fatalf("name counts differ: %d vs %d", len(seqNames), len(batchNames))
	}
	for i := range seqNames {
		if seqNames[i] != batchNames[i] {
			t.Fatalf("registration order differs at %d: %q vs %q", i, seqNames[i], batchNames[i])
		}
	}
	for _, name := range seqNames {
		a, b := seq.MustGet(name), batch.MustGet(name)
		if a.NoOverlap != b.NoOverlap {
			t.Fatalf("%s: NoOverlap %v vs %v", name, a.NoOverlap, b.NoOverlap)
		}
		if len(a.Nodes) != len(b.Nodes) {
			t.Fatalf("%s: %d nodes vs %d", name, len(a.Nodes), len(b.Nodes))
		}
		for i := range a.Nodes {
			if a.Nodes[i] != b.Nodes[i] {
				t.Fatalf("%s: node %d differs: %d vs %d", name, i, a.Nodes[i], b.Nodes[i])
			}
		}
	}
}

// TestAddBatchEmptyAndTagOnly covers the degenerate batches.
func TestAddBatchEmptyAndTagOnly(t *testing.T) {
	tr := xmltree.Fig1Document()
	c := NewCatalog(tr)
	if entries := c.AddBatch(nil); len(entries) != 0 {
		t.Fatalf("empty batch returned %d entries", len(entries))
	}
	entries := c.AddBatch([]Predicate{Tag{Value: "TA"}, Tag{Value: "nosuch"}})
	if len(entries) != 2 {
		t.Fatalf("tag batch returned %d entries", len(entries))
	}
	if entries[0].Count() == 0 {
		t.Fatalf("TA entry empty")
	}
	if entries[1].Count() != 0 {
		t.Fatalf("nosuch entry has %d nodes", entries[1].Count())
	}
}
