// Package xmltree provides the node-labeled tree substrate that the
// estimator is built on: an in-memory XML document model, a parser built
// on encoding/xml, and the interval ("position") numbering scheme of
// Section 3.1 of the paper.
//
// A database is a single rooted tree. Multiple documents are merged into
// one mega-tree under a dummy root (tag "/"), exactly as the paper
// prescribes. Every node carries a (Start, End) label pair such that the
// interval of a descendant is strictly contained in the interval of each
// of its ancestors, and the intervals of two nodes that are not in an
// ancestor-descendant relationship are disjoint.
package xmltree

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a Tree. It is an index into Tree.Nodes.
// The dummy root is always NodeID 0.
type NodeID int32

// InvalidNode is returned by navigation helpers when no node exists
// (for example, the parent of the root).
const InvalidNode NodeID = -1

// Node is a single element (or attribute, or text container) in the tree.
// Nodes are stored in pre-order in Tree.Nodes, so NodeID order equals
// Start order.
type Node struct {
	// Tag is the element tag. Attribute nodes use "@name". The dummy
	// root uses "/".
	Tag string

	// Text is the concatenated character data directly inside this
	// element (not including text of subelements), with surrounding
	// whitespace trimmed. Content predicates evaluate against it.
	Text string

	// Start and End are the interval labels assigned by numbering:
	// Start is assigned when the node is entered in pre-order and End
	// when it is exited; both draw from the same counter, so
	// Start < End always holds, a descendant's interval is strictly
	// inside its ancestors', and sibling intervals are disjoint.
	Start, End int

	// Depth is the number of edges from the dummy root (the dummy root
	// has depth 0; document roots have depth 1).
	Depth int

	// Parent is the parent node, or InvalidNode for the dummy root.
	Parent NodeID

	// FirstChild and NextSibling encode the tree shape compactly.
	// InvalidNode means none.
	FirstChild, NextSibling NodeID
}

// Tree is an immutable, fully-numbered XML database tree.
type Tree struct {
	// Nodes holds every node in pre-order. Nodes[0] is the dummy root.
	Nodes []Node

	// MaxPos is one past the largest position label in use. All Start
	// and End labels are in [0, MaxPos).
	MaxPos int

	tagIndex map[string][]NodeID
}

// NumNodes returns the number of nodes excluding the dummy root.
func (t *Tree) NumNodes() int { return len(t.Nodes) - 1 }

// Root returns the dummy root's id.
func (t *Tree) Root() NodeID { return 0 }

// Node returns the node with the given id. The returned pointer is valid
// for the lifetime of the tree and must not be modified.
func (t *Tree) Node(id NodeID) *Node { return &t.Nodes[id] }

// IsAncestor reports whether a is a proper ancestor of d, using the
// interval labels.
func (t *Tree) IsAncestor(a, d NodeID) bool {
	na, nd := &t.Nodes[a], &t.Nodes[d]
	return na.Start < nd.Start && nd.End < na.End
}

// NodesWithTag returns the ids of all nodes with the given element tag,
// sorted by Start position. The returned slice is shared; callers must
// not modify it.
func (t *Tree) NodesWithTag(tag string) []NodeID {
	return t.tagIndex[tag]
}

// Tags returns all distinct element tags in the tree (excluding the
// dummy root tag "/"), sorted lexicographically.
func (t *Tree) Tags() []string {
	tags := make([]string, 0, len(t.tagIndex))
	for tag := range t.tagIndex {
		if tag == "/" {
			continue
		}
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	return tags
}

// Children returns the ids of the direct children of id in document order.
func (t *Tree) Children(id NodeID) []NodeID {
	var out []NodeID
	for c := t.Nodes[id].FirstChild; c != InvalidNode; c = t.Nodes[c].NextSibling {
		out = append(out, c)
	}
	return out
}

// Descendants returns the ids of all proper descendants of id in document
// order. Because nodes are stored in pre-order and intervals nest, this is
// a contiguous range of NodeIDs.
func (t *Tree) Descendants(id NodeID) []NodeID {
	end := t.Nodes[id].End
	var out []NodeID
	for d := id + 1; int(d) < len(t.Nodes) && t.Nodes[d].Start < end; d++ {
		out = append(out, d)
	}
	return out
}

// Validate checks the structural invariants of the tree: pre-order
// storage, strict interval nesting along parent links, disjoint sibling
// intervals, and depth consistency. It returns the first violation found.
// It is used by tests and by loaders of untrusted input.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("xmltree: empty tree (missing dummy root)")
	}
	root := &t.Nodes[0]
	if root.Parent != InvalidNode {
		return fmt.Errorf("xmltree: dummy root has parent %d", root.Parent)
	}
	if root.Depth != 0 {
		return fmt.Errorf("xmltree: dummy root depth = %d, want 0", root.Depth)
	}
	prevStart := -1
	for id := range t.Nodes {
		n := &t.Nodes[id]
		if n.Start >= n.End {
			return fmt.Errorf("xmltree: node %d: start %d >= end %d", id, n.Start, n.End)
		}
		if n.End >= t.MaxPos && !(id == 0 && n.End == t.MaxPos-1) {
			if n.End >= t.MaxPos {
				return fmt.Errorf("xmltree: node %d: end %d out of range [0,%d)", id, n.End, t.MaxPos)
			}
		}
		if n.Start <= prevStart {
			return fmt.Errorf("xmltree: node %d: start %d not increasing (prev %d)", id, n.Start, prevStart)
		}
		prevStart = n.Start
		if id == 0 {
			continue
		}
		if n.Parent < 0 || int(n.Parent) >= len(t.Nodes) {
			return fmt.Errorf("xmltree: node %d: bad parent %d", id, n.Parent)
		}
		p := &t.Nodes[n.Parent]
		if !(p.Start < n.Start && n.End < p.End) {
			return fmt.Errorf("xmltree: node %d interval [%d,%d] not inside parent %d interval [%d,%d]",
				id, n.Start, n.End, n.Parent, p.Start, p.End)
		}
		if n.Depth != p.Depth+1 {
			return fmt.Errorf("xmltree: node %d depth %d, parent depth %d", id, n.Depth, p.Depth)
		}
	}
	// Sibling intervals must be disjoint.
	for id := range t.Nodes {
		var prevEnd = -1
		for c := t.Nodes[id].FirstChild; c != InvalidNode; c = t.Nodes[c].NextSibling {
			if t.Nodes[c].Start <= prevEnd {
				return fmt.Errorf("xmltree: children of %d have overlapping intervals", id)
			}
			prevEnd = t.Nodes[c].End
		}
	}
	return nil
}

// buildTagIndex populates the tag postings lists. Nodes are appended in
// NodeID (= pre-order = Start) order, so each list is sorted by Start.
func (t *Tree) buildTagIndex() {
	t.tagIndex = make(map[string][]NodeID)
	for id := 1; id < len(t.Nodes); id++ {
		tag := t.Nodes[id].Tag
		t.tagIndex[tag] = append(t.tagIndex[tag], NodeID(id))
	}
}

// Stats summarizes a tree for reporting.
type Stats struct {
	Nodes       int // excluding dummy root
	MaxDepth    int
	DistinctTag int
	MaxPos      int
}

// Stats computes summary statistics.
func (t *Tree) Stats() Stats {
	s := Stats{Nodes: t.NumNodes(), DistinctTag: len(t.Tags()), MaxPos: t.MaxPos}
	for i := 1; i < len(t.Nodes); i++ {
		if d := t.Nodes[i].Depth; d > s.MaxDepth {
			s.MaxDepth = d
		}
	}
	return s
}
