// Package xmlest estimates answer sizes for XML twig queries using
// position histograms, reproducing "Estimating Answer Sizes for XML
// Queries" (Wu, Patel, Jagadish — EDBT 2002).
//
// A Database wraps an XML document collection with interval-numbered
// nodes and a catalog of predicates. An Estimator summarizes the
// catalog into position histograms (and coverage histograms for
// no-overlap predicates) and answers answer-size queries for twig
// patterns without touching the data again:
//
//	db, _ := xmlest.Open(strings.NewReader(doc))
//	db.AddAllTagPredicates()
//	est, _ := db.NewEstimator(xmlest.Options{GridSize: 10})
//	res, _ := est.Estimate("//department//faculty[.//TA][.//RA]")
//	fmt.Println(res.Estimate, res.Elapsed)
//
// Exact answer sizes (ground truth) are available through
// Database.Count, and the naive and schema-only baselines of the
// paper's evaluation through Naive and SchemaUpperBound.
package xmlest

import (
	"fmt"
	"io"
	"os"
	"sync"

	"xmlest/internal/cache"
	"xmlest/internal/core"
	"xmlest/internal/match"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// Re-exported predicate constructors. Predicates are registered on a
// Database before building an Estimator.
type (
	// Predicate is a boolean node predicate.
	Predicate = predicate.Predicate
	// Tag matches element tags ("element-tag predicates").
	Tag = predicate.Tag
	// ContentEquals matches exact text content.
	ContentEquals = predicate.ContentEquals
	// ContentPrefix matches a text-content prefix.
	ContentPrefix = predicate.ContentPrefix
	// ContentSuffix matches a text-content suffix.
	ContentSuffix = predicate.ContentSuffix
	// ContentContains matches a text-content substring.
	ContentContains = predicate.ContentContains
	// NumericRange matches numeric text content within [Lo, Hi].
	NumericRange = predicate.NumericRange
	// TagContent matches tag and exact content together.
	TagContent = predicate.TagContent
	// And, Or, Not compose predicates.
	And = predicate.And
	Or  = predicate.Or
	Not = predicate.Not
	// Named aliases a predicate under a display name.
	Named = predicate.Named
	// True matches every node.
	True = predicate.True
)

// Options configures estimator construction. See core.Options.
type Options = core.Options

// Result is one estimation outcome.
type Result = core.Result

// Database is an XML document collection prepared for estimation: a
// single interval-numbered mega-tree plus a predicate catalog.
type Database struct {
	tree    *xmltree.Tree
	catalog *predicate.Catalog
}

// Open parses one or more XML documents into a Database. Multiple
// documents are merged under a dummy root, as the paper prescribes.
func Open(readers ...io.Reader) (*Database, error) {
	tree, err := xmltree.ParseCollection(readers, xmltree.DefaultParseOptions)
	if err != nil {
		return nil, err
	}
	return FromTree(tree), nil
}

// OpenFiles parses the named XML files into a Database.
func OpenFiles(paths ...string) (*Database, error) {
	readers := make([]io.Reader, 0, len(paths))
	closers := make([]*os.File, 0, len(paths))
	defer func() {
		for _, f := range closers {
			f.Close()
		}
	}()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		closers = append(closers, f)
		readers = append(readers, f)
	}
	return Open(readers...)
}

// FromTree wraps an already-built tree (for example, from the synthetic
// dataset generators).
func FromTree(tree *xmltree.Tree) *Database {
	return &Database{tree: tree, catalog: predicate.NewCatalog(tree)}
}

// FromCatalog wraps a tree with an existing predicate catalog.
func FromCatalog(cat *predicate.Catalog) *Database {
	return &Database{tree: cat.Tree, catalog: cat}
}

// Tree exposes the underlying numbered tree.
func (db *Database) Tree() *xmltree.Tree { return db.tree }

// Catalog exposes the predicate catalog.
func (db *Database) Catalog() *predicate.Catalog { return db.catalog }

// AddAllTagPredicates registers a Tag predicate per distinct element
// tag and the TRUE predicate. It returns the number of tag predicates.
func (db *Database) AddAllTagPredicates() int {
	n := db.catalog.AddAllTags()
	db.catalog.Add(predicate.True{})
	return n
}

// AddPredicate registers a predicate for use in patterns (referenced by
// name with the {name} syntax, or implicitly for Tag predicates).
func (db *Database) AddPredicate(p Predicate) { db.catalog.Add(p) }

// AddPredicates registers several predicates in one shared tree scan
// (see predicate.Catalog.AddBatch): non-tag predicates are evaluated
// together node by node instead of one full pass each.
func (db *Database) AddPredicates(ps ...Predicate) { db.catalog.AddBatch(ps) }

// Count computes the exact answer size of a twig pattern — the ground
// truth the paper's tables report in their "Real Result" column.
func (db *Database) Count(patternSrc string) (float64, error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return 0, err
	}
	return match.CountTwig(db.tree, p, db.resolve)
}

// Participation computes, per pattern node in pre-order, the exact
// number of distinct data nodes participating in at least one match.
func (db *Database) Participation(patternSrc string) ([]int64, error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return nil, err
	}
	return match.Participation(db.tree, p, db.resolve)
}

func (db *Database) resolve(name string) ([]xmltree.NodeID, error) {
	e, err := db.catalog.Get(name)
	if err != nil {
		return nil, err
	}
	return e.Nodes, nil
}

// Naive returns the paper's naive baseline for a pattern: the product
// of the node counts of its predicates.
func (db *Database) Naive(patternSrc string) (float64, error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return 0, err
	}
	est := 1.0
	for _, n := range p.Nodes() {
		e, err := db.catalog.Get(n.PredName())
		if err != nil {
			return 0, err
		}
		est *= float64(e.Count())
	}
	return est, nil
}

// SchemaUpperBound returns the schema-only bound for a two-node
// pattern: the descendant's count when the ancestor predicate has the
// no-overlap property. ok is false for other patterns.
func (db *Database) SchemaUpperBound(patternSrc string) (bound float64, ok bool, err error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return 0, false, err
	}
	nodes := p.Nodes()
	if len(nodes) != 2 {
		return 0, false, nil
	}
	anc, err := db.catalog.Get(nodes[0].PredName())
	if err != nil {
		return 0, false, err
	}
	desc, err := db.catalog.Get(nodes[1].PredName())
	if err != nil {
		return 0, false, err
	}
	bound, ok = core.SchemaUpperBound(anc.NoOverlap, desc.Count())
	return bound, ok, nil
}

// Estimator answers answer-size queries from histogram summaries.
// Concurrent estimation is safe: it only reads the immutable
// histograms, and the internal query caches are synchronized.
// Registering new predicates through Core().Synthesize mutates the
// summary maps and must not run concurrently with estimation.
type Estimator struct {
	inner *core.Estimator
	db    *Database

	// compiled memoizes Compile results per pattern source, so the hot
	// path of Estimate skips re-parsing and re-joining identical
	// queries. Bounded; misses simply recompile.
	compileOnce sync.Once
	compiled    *cache.LRU[string, *PreparedQuery]
}

// compiledQueries returns the lazily-initialized compiled-query cache.
func (e *Estimator) compiledQueries() *cache.LRU[string, *PreparedQuery] {
	e.compileOnce.Do(func() {
		e.compiled = cache.New[string, *PreparedQuery](compiledCacheSize)
	})
	return e.compiled
}

// compiledCacheSize bounds the facade's compiled-query cache.
const compiledCacheSize = 256

// NewEstimator builds the position histograms (and coverage histograms
// for no-overlap predicates) for every registered predicate.
func (db *Database) NewEstimator(opts Options) (*Estimator, error) {
	inner, err := core.NewEstimator(db.catalog, opts)
	if err != nil {
		return nil, err
	}
	return &Estimator{inner: inner, db: db}, nil
}

// Estimate estimates the answer size of a twig pattern, choosing the
// no-overlap algorithm wherever the schema allows and the primitive
// pH-Join elsewhere. Repeated estimates of the same pattern source hit
// a bounded compiled-query cache (see Compile) and skip parsing and
// joining entirely.
func (e *Estimator) Estimate(patternSrc string) (Result, error) {
	if pq, ok := e.compiledQueries().Get(patternSrc); ok {
		return pq.Estimate()
	}
	pq, err := e.Compile(patternSrc)
	if err != nil {
		return Result{}, err
	}
	e.compiledQueries().Put(patternSrc, pq)
	return pq.Estimate()
}

// Compile parses and prepares a twig pattern once: predicate references
// are resolved eagerly (an unknown name fails here), and the compiled
// query caches its folded join result, so Estimate on a PreparedQuery
// costs histogram-total arithmetic only. Use Compile for hot query
// paths that bypass the facade's internal cache, or to surface pattern
// errors early.
func (e *Estimator) Compile(patternSrc string) (*PreparedQuery, error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return nil, err
	}
	inner, err := e.inner.Prepare(p)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{inner: inner, src: patternSrc}, nil
}

// PreparedQuery is a compiled twig query bound to an Estimator. It is
// safe for concurrent use.
type PreparedQuery struct {
	inner *core.PreparedQuery
	src   string
}

// Source returns the pattern source the query was compiled from.
func (pq *PreparedQuery) Source() string { return pq.src }

// Estimate returns the estimated answer size of the compiled twig.
func (pq *PreparedQuery) Estimate() (Result, error) { return pq.inner.Estimate() }

// EstimatePrimitive forces the primitive (overlap) algorithm for a
// two-node pattern — the "Overlap Estimate" column of the paper's
// tables.
func (e *Estimator) EstimatePrimitive(patternSrc string) (Result, error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return Result{}, err
	}
	nodes := p.Nodes()
	if len(nodes) != 2 {
		return Result{}, fmt.Errorf("xmlest: EstimatePrimitive requires a two-node pattern, got %d nodes", len(nodes))
	}
	return e.inner.EstimatePairPrimitive(nodes[0].PredName(), nodes[1].PredName())
}

// Core exposes the underlying core estimator for advanced use (query
// planners needing sub-pattern estimates).
func (e *Estimator) Core() *core.Estimator { return e.inner }

// StorageBytes reports the total compact-encoding size of all summary
// structures — the paper's storage metric.
func (e *Estimator) StorageBytes() int { return e.inner.StorageBytes() }

// MarshalBinary serializes every summary structure, so estimation can
// run later without the data (see LoadEstimator).
func (e *Estimator) MarshalBinary() ([]byte, error) { return e.inner.MarshalBinary() }

// LoadEstimator reconstructs an estimator from a summary blob produced
// by Estimator.MarshalBinary. The loaded estimator answers every
// estimation query; exact counting requires the original Database.
func LoadEstimator(blob []byte) (*Estimator, error) {
	inner, err := core.UnmarshalEstimator(blob)
	if err != nil {
		return nil, err
	}
	return &Estimator{inner: inner}, nil
}

// Find enumerates up to limit concrete matches of a twig pattern
// (limit <= 0 enumerates all). Each match lists the data node assigned
// to each pattern node in pattern pre-order. Combined with
// Estimator.Estimate, this models the paper's online-query scenario:
// show the first page of results together with a predicted total.
func (db *Database) Find(patternSrc string, limit int) ([]match.Match, error) {
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return nil, err
	}
	return match.FindTwigMatches(db.tree, p, db.resolve, limit)
}
