// Optimizer: the paper's motivating use case (Section 1). A cost-based
// optimizer must choose a join order for the twig
// //department//faculty[.//TA][.//RA]-style queries; picking the plan
// with the smallest intermediate results requires accurate
// intermediate-size estimates. This example enumerates join orders for
// queries over the synthetic manager/department/employee dataset,
// costs them with the position-histogram estimator, and compares the
// estimator's plan choice with the choice an oracle (exact counts)
// would make.
package main

import (
	"fmt"
	"log"

	"xmlest"
	"xmlest/internal/datagen"
	"xmlest/internal/exec"
	"xmlest/internal/pattern"
	"xmlest/internal/planner"
	"xmlest/internal/xmltree"
)

func main() {
	tree := datagen.GenerateHier(datagen.DefaultHierConfig)
	db := xmlest.FromCatalog(datagen.HierCatalog(tree))
	est, err := db.NewEstimator(xmlest.Options{GridSize: 10})
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"//manager//department//employee",
		"//department//employee[.//name][.//email]",
		"//manager//department//employee//email",
	}
	for _, q := range queries {
		fmt.Printf("query: %s\n", q)
		p, err := pattern.Parse(q)
		if err != nil {
			log.Fatal(err)
		}
		plans, err := planner.Enumerate(est.Core(), p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d candidate left-deep join orders\n", len(plans))
		show := len(plans)
		if show > 5 {
			show = 5
		}
		for i := 0; i < show; i++ {
			fmt.Printf("  %2d. est. cost %12.1f   %s\n", i+1, plans[i].Cost, plans[i])
		}
		best, worst := plans[0], plans[len(plans)-1]
		fmt.Printf("  chosen plan: %s\n", best)

		// Execute the chosen and the worst plan and compare the actual
		// intermediate work — the cost the estimates predicted.
		resolve := func(name string) ([]xmltree.NodeID, error) {
			e, err := db.Catalog().Get(name)
			if err != nil {
				return nil, err
			}
			return e.Nodes, nil
		}
		bestStats, err := exec.Execute(tree, p, best, resolve)
		if err != nil {
			log.Fatal(err)
		}
		worstStats, err := exec.Execute(tree, p, worst, resolve)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  executed: chosen plan produced %d intermediate tuples, worst plan %d (%.1fx)\n",
			bestStats.TotalIntermediate(), worstStats.TotalIntermediate(),
			float64(worstStats.TotalIntermediate())/float64(max64(bestStats.TotalIntermediate(), 1)))

		// Sanity: what does the final result actually count?
		real, err := db.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := est.Estimate(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  final size: estimated %.1f, exact %.0f (executor agrees: %d)\n\n",
			res.Estimate, real, bestStats.Results)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
