package histogram

import (
	"math/rand"
	"testing"

	"xmlest/internal/xmltree"
)

// randomPosition fills a histogram with random fractional counts in the
// upper triangle (the shape estimation intermediaries have).
func randomPosition(r *rand.Rand, g int) *Position {
	h := NewPosition(MustUniformGrid(g, 4*g))
	for i := 0; i < g; i++ {
		for j := i; j < g; j++ {
			if r.Intn(3) != 0 {
				h.Set(i, j, float64(r.Intn(50))/3)
			}
		}
	}
	return h
}

func TestNonZeroCellsMatchEachNonZero(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		h := randomPosition(r, 2+r.Intn(12))
		var want []Cell
		h.EachNonZero(func(i, j int, c float64) {
			want = append(want, Cell{I: i, J: j, Count: c})
		})
		got := h.NonZeroCells()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d cells, want %d", trial, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("trial %d cell %d: %+v, want %+v", trial, k, got[k], want[k])
			}
		}
	}
}

func TestCachesInvalidateOnMutation(t *testing.T) {
	h := NewPosition(MustUniformGrid(4, 16))
	h.Set(0, 3, 2)
	if n := len(h.NonZeroCells()); n != 1 {
		t.Fatalf("nnz = %d, want 1", n)
	}
	if d := h.Sums().Down(0, 3); d != 0 {
		t.Fatalf("Down(0,3) = %v, want 0", d)
	}

	h.Add(0, 1, 5) // mutation must drop both caches
	if n := len(h.NonZeroCells()); n != 2 {
		t.Fatalf("after Add: nnz = %d, want 2", n)
	}
	if d := h.Sums().Down(0, 3); d != 5 {
		t.Fatalf("after Add: Down(0,3) = %v, want 5", d)
	}

	h.Scale(2)
	if d := h.Sums().Down(0, 3); d != 10 {
		t.Fatalf("after Scale: Down(0,3) = %v, want 10", d)
	}

	h.Set(0, 1, 0)
	if n := len(h.NonZeroCells()); n != 1 {
		t.Fatalf("after Set to zero: nnz = %d, want 1", n)
	}
}

// TestSumsMatchBruteForce checks every cached plane against direct
// summation of the definitions.
func TestSumsMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := 2 + r.Intn(10)
		h := randomPosition(r, g)
		s := h.Sums()
		for i := 0; i < g; i++ {
			for j := i; j < g; j++ {
				var down, right, inside, tri float64
				for l := i; l < j; l++ {
					down += h.Count(i, l)
				}
				for k := i + 1; k <= j; k++ {
					right += h.Count(k, j)
				}
				for k := i + 1; k <= j; k++ {
					for l := k; l < j; l++ {
						inside += h.Count(k, l)
					}
				}
				for m := i; m <= j; m++ {
					for n := m; n <= j; n++ {
						tri += h.Count(m, n)
					}
				}
				check := func(name string, got, want float64) {
					if diff := got - want; diff > 1e-9 || diff < -1e-9 {
						t.Fatalf("g=%d %s(%d,%d) = %v, want %v", g, name, i, j, got, want)
					}
				}
				check("Self", s.Self(i, j), h.Count(i, j))
				check("Down", s.Down(i, j), down)
				check("Right", s.Right(i, j), right)
				check("Inside", s.Inside(i, j), inside)
				check("Triangle", s.Triangle(i, j), tri)
			}
		}
		// Rect against brute rectangles, including clamped ranges.
		for trial2 := 0; trial2 < 30; trial2++ {
			i0, i1 := r.Intn(g)-1, r.Intn(g+2)
			j0, j1 := r.Intn(g)-1, r.Intn(g+2)
			var want float64
			for k := max(i0, 0); k <= min(i1, g-1); k++ {
				for l := max(j0, 0); l <= min(j1, g-1); l++ {
					want += h.Count(k, l)
				}
			}
			// Rect differences four prefix sums, so allow relative
			// floating-point error on fractional counts.
			got := s.Rect(i0, i1, j0, j1)
			tol := 1e-9 * (1 + want)
			if diff := got - want; diff > tol || diff < -tol {
				t.Fatalf("Rect(%d,%d,%d,%d) = %v, want %v", i0, i1, j0, j1, got, want)
			}
		}
	}
}

func TestComputeNodeCellsMatchesBucket(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	trees := []*xmltree.Tree{xmltree.Fig1Document()}
	for i := 0; i < 5; i++ {
		trees = append(trees, randomTree(r, 10+r.Intn(200)))
	}
	for ti, tr := range trees {
		for _, g := range []int{2, 5, 10} {
			if tr.MaxPos < g {
				continue
			}
			grid := MustUniformGrid(g, tr.MaxPos)
			nc := ComputeNodeCells(tr, grid)
			for id := 1; id < len(tr.Nodes); id++ {
				n := tr.Node(xmltree.NodeID(id))
				i, j := nc.Cell(xmltree.NodeID(id))
				if i != grid.Bucket(n.Start) || j != grid.Bucket(n.End) {
					t.Fatalf("tree %d g=%d node %d: cell (%d,%d), want (%d,%d)",
						ti, g, id, i, j, grid.Bucket(n.Start), grid.Bucket(n.End))
				}
			}
		}
	}
}

func TestBuildFromCellsMatchesDirectBuilders(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		tr := randomTree(r, 20+r.Intn(300))
		g := 2 + r.Intn(8)
		if tr.MaxPos < g {
			continue
		}
		grid := MustUniformGrid(g, tr.MaxPos)
		nc := ComputeNodeCells(tr, grid)

		if want, got := BuildTrue(tr, grid), BuildTrueFromCells(nc); !positionsEqual(want, got) {
			t.Fatalf("trial %d: BuildTrueFromCells differs from BuildTrue", trial)
		}
		for _, tag := range []string{"a", "b", "c", "d"} {
			nodes := tr.NodesWithTag(tag)
			want := BuildPosition(tr, nodes, grid)
			got := BuildPositionFromCells(nc, nodes)
			if !positionsEqual(want, got) {
				t.Fatalf("trial %d tag %s: BuildPositionFromCells differs", trial, tag)
			}
		}
	}
}

func positionsEqual(a, b *Position) bool {
	if !a.Grid().Equal(b.Grid()) || a.Total() != b.Total() {
		return false
	}
	g := a.Grid().Size()
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			if a.Count(i, j) != b.Count(i, j) {
				return false
			}
		}
	}
	return true
}

// TestCoverageMatchesParentChainBruteForce validates the range-sweep
// coverage construction against the definition: Cvg[v][a] is the
// fraction of all nodes in cell v whose (unique, by no-overlap)
// P-ancestor falls in cell a.
func TestCoverageMatchesParentChainBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 24; trial++ {
		tr := randomTree(r, 20+r.Intn(300))
		g := 2 + r.Intn(8)
		if trial%4 == 3 {
			// Exercise the sparse-plane fallback for large grids.
			g = 129 + r.Intn(40)
		}
		if tr.MaxPos < g {
			continue
		}
		grid := MustUniformGrid(g, tr.MaxPos)
		trueHist := BuildTrue(tr, grid)

		// Pick a tag; skip overlapping predicates (BuildCoverage rejects
		// them, which TestCoverageRequiresNoOverlap already asserts).
		pnodes := tr.NodesWithTag("a")
		isP := make(map[xmltree.NodeID]bool, len(pnodes))
		overlapping := false
		for _, id := range pnodes {
			isP[id] = true
		}
		for _, id := range pnodes {
			for p := tr.Node(id).Parent; p > 0; p = tr.Node(p).Parent {
				if isP[p] {
					overlapping = true
				}
			}
		}
		if overlapping || len(pnodes) == 0 {
			continue
		}

		cov, err := BuildCoverage(tr, pnodes, trueHist)
		if err != nil {
			t.Fatalf("trial %d: BuildCoverage: %v", trial, err)
		}

		want := make(map[cellKey]map[cellKey]float64)
		for id := 1; id < len(tr.Nodes); id++ {
			if isP[xmltree.NodeID(id)] {
				continue // a P-node is not its own descendant
			}
			for p := tr.Node(xmltree.NodeID(id)).Parent; p > 0; p = tr.Node(p).Parent {
				if isP[p] {
					n := tr.Node(xmltree.NodeID(id))
					pn := tr.Node(p)
					v := key(grid.Bucket(n.Start), grid.Bucket(n.End))
					a := key(grid.Bucket(pn.Start), grid.Bucket(pn.End))
					if want[v] == nil {
						want[v] = make(map[cellKey]float64)
					}
					want[v][a]++
					break
				}
			}
		}
		var checked int
		for v, byA := range want {
			i, j := v.split()
			pop := trueHist.Count(i, j)
			for a, c := range byA {
				m, n := a.split()
				got := cov.Frac(i, j, m, n)
				wantF := c / pop
				if diff := got - wantF; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("trial %d: Frac(%d,%d,%d,%d) = %v, want %v", trial, i, j, m, n, got, wantF)
				}
				checked++
			}
		}
		if got := cov.Entries(); got != checked {
			t.Fatalf("trial %d: %d stored entries, brute force found %d", trial, got, checked)
		}
	}
}

// TestEachFracDeterministicOrder asserts the sorted iteration order the
// estimation arithmetic relies on for reproducible floating-point
// accumulation.
func TestEachFracDeterministicOrder(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	cov := NewCoverage(MustUniformGrid(6, 24))
	for k := 0; k < 50; k++ {
		cov.SetFrac(r.Intn(6), r.Intn(6), r.Intn(6), r.Intn(6), r.Float64())
	}
	type quad struct{ i, j, m, n int }
	var prev *quad
	cov.EachFrac(func(i, j, m, n int, _ float64) {
		cur := quad{i, j, m, n}
		if prev != nil {
			p := *prev
			if p.i > i || (p.i == i && p.j > j) ||
				(p.i == i && p.j == j && (p.m > m || (p.m == m && p.n >= n))) {
				t.Fatalf("EachFrac order violation: %+v before %+v", p, cur)
			}
		}
		prev = &cur
	})
}
