package core

import (
	"fmt"

	"xmlest/internal/histogram"
)

// partialSums precomputes, for one histogram H, every region sum the
// Fig 6 formulas need, in O(g²) time and space. It generalizes the
// pSum arrays of the Fig 9 pseudo-code and adds the up-left prefix
// sums used by the descendant-based form.
type partialSums struct {
	g int
	h *histogram.Position

	// down[i][j]  = Σ_{l=i..j-1} H[i][l]        (same start column, below)
	// right[i][j] = Σ_{k=i+1..j} H[k][j]        (same end row, to the right)
	// inside[i][j]= Σ_{k=i+1..j} Σ_{l=k..j-1} H[k][l]  (strictly inside)
	down, right, inside []float64

	// prefix[i][j] = Σ_{k<=i} Σ_{l<=j} H[k][l], with one extra row and
	// column of zeros at index 0, used for the up-left region sums.
	prefix []float64
}

func (p *partialSums) at(a []float64, i, j int) float64 { return a[i*p.g+j] }

func newPartialSums(h *histogram.Position) *partialSums {
	g := h.Grid().Size()
	p := &partialSums{
		g: g, h: h,
		down:   make([]float64, g*g),
		right:  make([]float64, g*g),
		inside: make([]float64, g*g),
		prefix: make([]float64, (g+1)*(g+1)),
	}
	// Pass 1: column partial sums (same recurrence as Fig 9 pass 1).
	for i := 0; i < g; i++ {
		for j := i + 1; j < g; j++ {
			p.down[i*g+j] = p.down[i*g+j-1] + h.Count(i, j-1)
		}
	}
	// Pass 2: row and region partial sums (Fig 9 pass 2).
	for j := g - 1; j >= 0; j-- {
		for i := j - 1; i >= 0; i-- {
			p.right[i*g+j] = p.right[(i+1)*g+j] + h.Count(i+1, j)
			p.inside[i*g+j] = p.inside[(i+1)*g+j] + p.down[(i+1)*g+j]
		}
	}
	// Up-left prefix matrix for the descendant-based regions.
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			p.prefix[(i+1)*(g+1)+j+1] = h.Count(i, j) +
				p.prefix[i*(g+1)+j+1] + p.prefix[(i+1)*(g+1)+j] - p.prefix[i*(g+1)+j]
		}
	}
	return p
}

// rect returns Σ H[k][l] over k in [i0, i1], l in [j0, j1] (inclusive,
// clamped to the grid; empty ranges return 0).
func (p *partialSums) rect(i0, i1, j0, j1 int) float64 {
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 >= p.g {
		i1 = p.g - 1
	}
	if j1 >= p.g {
		j1 = p.g - 1
	}
	if i0 > i1 || j0 > j1 {
		return 0
	}
	g1 := p.g + 1
	return p.prefix[(i1+1)*g1+j1+1] - p.prefix[i0*g1+j1+1] -
		p.prefix[(i1+1)*g1+j0] + p.prefix[i0*g1+j0]
}

// ancestorCoef returns the Fig 6 ancestor-based multiplicative
// coefficient for ancestor cell (i, j): the expected number of
// descendant-histogram points joining with one point in (i, j).
func (p *partialSums) ancestorCoef(i, j int) float64 {
	if i == j {
		return p.h.Count(i, i) / 12
	}
	return p.at(p.inside, i, j) +
		p.at(p.down, i, j) - p.h.Count(i, i)/2 +
		p.at(p.right, i, j) - p.h.Count(j, j)/2 +
		p.h.Count(i, j)/4
}

// descendantCoef returns the Fig 6 descendant-based coefficient for
// descendant cell (i, j): the expected number of ancestor-histogram
// points joining with one point in (i, j). Regions F (same column,
// above), G (strictly up-left) and H (same row, left) count with weight
// 1; the cell itself with 1/4 off-diagonal and 1/12 on-diagonal.
func (p *partialSums) descendantCoef(i, j int) float64 {
	self := p.h.Count(i, j)
	selfW := 0.25
	if i == j {
		selfW = 1.0 / 12
	}
	return p.rect(0, i-1, j+1, p.g-1) + // G: strictly up-left block
		p.rect(i, i, j+1, p.g-1) + // F: same start column, ending above
		p.rect(0, i-1, j, j) + // H: same end row, starting left
		selfW*self
}

// triangle returns Σ_{m=i..j} Σ_{n=m..j} H[m][n] — the descendant-region
// triangle the Fig 10 participation formula (case 2) sums over.
func (p *partialSums) triangle(i, j int) float64 {
	if i > j {
		return 0
	}
	return p.at(p.inside, i, j) + p.at(p.down, i, j) + p.at(p.right, i, j) + p.h.Count(i, j)
}

// EstimateAncestorBased computes the Fig 6 ancestor-based estimation
// histogram for the pattern P1//P2: cell (i, j) holds the estimated
// number of (ancestor, descendant) pairs whose ancestor falls in cell
// (i, j) of histA. histA and histB must share a grid.
func EstimateAncestorBased(histA, histB *histogram.Position) (*histogram.Position, error) {
	if err := checkGrids(histA, histB); err != nil {
		return nil, err
	}
	ps := newPartialSums(histB)
	out := histogram.NewPosition(histA.Grid())
	histA.EachNonZero(func(i, j int, c float64) {
		if est := c * ps.ancestorCoef(i, j); est != 0 {
			out.Set(i, j, est)
		}
	})
	return out, nil
}

// EstimateDescendantBased computes the Fig 6 descendant-based estimation
// histogram for P1//P2: cell (i, j) holds the estimated number of pairs
// whose descendant falls in cell (i, j) of histB.
func EstimateDescendantBased(histA, histB *histogram.Position) (*histogram.Position, error) {
	if err := checkGrids(histA, histB); err != nil {
		return nil, err
	}
	ps := newPartialSums(histA)
	out := histogram.NewPosition(histB.Grid())
	histB.EachNonZero(func(i, j int, c float64) {
		if est := c * ps.descendantCoef(i, j); est != 0 {
			out.Set(i, j, est)
		}
	})
	return out, nil
}

// AncestorCoefficients returns the per-cell multiplicative coefficients
// derived from a descendant histogram — the pre-computation space-time
// trade-off the paper describes after Fig 9: the coefficients can be
// computed once per histogram and stored (in space comparable to the
// histogram itself), after which any join against that descendant
// reduces to a cell-wise multiply-accumulate.
func AncestorCoefficients(histB *histogram.Position) *histogram.Position {
	ps := newPartialSums(histB)
	g := histB.Grid().Size()
	out := histogram.NewPosition(histB.Grid())
	for i := 0; i < g; i++ {
		for j := i; j < g; j++ {
			if c := ps.ancestorCoef(i, j); c != 0 {
				out.Set(i, j, c)
			}
		}
	}
	return out
}

func checkGrids(a, b *histogram.Position) error {
	if !a.Grid().Equal(b.Grid()) {
		return fmt.Errorf("core: operand histograms have different grids (%d vs %d buckets)",
			a.Grid().Size(), b.Grid().Size())
	}
	return nil
}
