#!/usr/bin/env bash
# Runs the tracked performance benchmarks and records them into
# BENCH_PR7.json: the PR 1/2 microbenchmark series (ns/op, now with
# allocs/op from -benchmem), the PR 3 serving series (xqbench driving
# an in-memory xqestd daemon — by default on the PR 5 merged-snapshot
# path, plus a -no-merged fan-out run for comparison), and the PR 4/7
# durable serving series — the same load against a daemon with a data
# directory at each WAL fsync policy (always / interval / off). The
# durable runs use many concurrent appenders so the PR 7 group-commit
# path has groups to form; each report carries appends/s, append-side
# client p50/p95/p99, ack-to-durable, and the achieved group size and
# fsync rate parsed from the daemon's /stats.
#
# PR 8 adds the observability overhead pair: the default serving run
# now carries the daemon's default tracing (-trace-sample 64, 1s slow
# threshold), and a serving_notrace run disables tracing entirely
# (-trace-sample 0 -slow-request 0) so the two can be compared. Every
# xqbench report also embeds metrics_delta: daemon-side /metrics
# counter deltas across the run.
#
# PR 9 adds accuracy tracking: the default serving run now also
# carries shadow-execution sampling (-shadow-sample 128), paired with
# a serving_noshadow run (-shadow-sample 0); xqbench reports embed
# accuracy_delta (the xqest_accuracy_* counter deltas). A first-class
# "accuracy" section records offline q-error quantiles (q50/q90/qmax,
# mean rel. err.) from `xqest accuracy` over seeded workloads
# (all-pairs + random twigs) on two built-in datasets.
#
# PR 10 adds the replicated serving run (serving_replicated): a durable
# leader plus one follower replaying its WAL over /wal/stream, driven
# by xqbench -targets — appends land on the leader, estimates scatter
# across both nodes, and the report's "nodes" section carries per-node
# QPS and the cross-node append-to-visible lag (leader append ack to
# follower serving the version, p50/p99).
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=2s scripts/bench.sh      # override -benchtime
#   SERVE_SECONDS=10 scripts/bench.sh  # longer serving runs
#   APPENDERS=32 scripts/bench.sh      # durable-run append concurrency
#   COMMIT_DELAY=5ms scripts/bench.sh  # durable-run group-commit budget
#   SKIP_SERVING=1 scripts/bench.sh    # microbenchmarks only
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR10.json}"
appenders="${APPENDERS:-24}"
commit_delay="${COMMIT_DELAY:-3ms}"
benchtime="${BENCHTIME:-1s}"
serve_seconds="${SERVE_SECONDS:-5}"
port="${BENCH_PORT:-18791}"
addr="127.0.0.1:${port}"
faddr="127.0.0.1:$((port + 1))"
pattern='^(BenchmarkEstimatorBuild|BenchmarkPHJoin|BenchmarkTwigEstimate|BenchmarkFacadeEstimate|BenchmarkCompiledEstimate|BenchmarkAppendToVisible|BenchmarkAppendRebuildMonolithic|BenchmarkShardedEstimate|BenchmarkCompact)(/.+)?$'

workdir="$(mktemp -d)"
daemon_pid=""
follower_pid=""
cleanup() {
  [[ -n "$follower_pid" ]] && kill "$follower_pid" 2>/dev/null || true
  [[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem . | tee "$workdir/micro.txt"

# serve_run <report.json> <appenders> [extra xqestd flags...] — boots
# a daemon, drives it with xqbench, shuts it down.
serve_run() {
  local report="$1" nappend="$2"; shift 2
  "$workdir/xqestd" -dataset dblp -scale 0.05 -addr "$addr" -autocompact 1s "$@" \
    >"$workdir/xqestd.log" 2>&1 &
  daemon_pid=$!
  "$workdir/xqbench" -addr "http://$addr" -duration "${serve_seconds}s" \
    -estimators 8 -appenders "$nappend" -o "$report"
  kill -INT "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
  daemon_pid=""
}

if [[ -z "${SKIP_SERVING:-}" ]]; then
  echo "== serving benchmark: xqbench against xqestd on $addr (merged-snapshot path) =="
  go build -o "$workdir/xqestd" ./cmd/xqestd
  go build -o "$workdir/xqbench" ./cmd/xqbench
  serve_run "$workdir/serving.json" 2
  echo "== serving benchmark: tracing disabled (-trace-sample 0) =="
  serve_run "$workdir/serving-notrace.json" 2 -trace-sample 0 -slow-request 0
  echo "== serving benchmark: shadow sampling disabled (-shadow-sample 0) =="
  serve_run "$workdir/serving-noshadow.json" 2 -shadow-sample 0
  echo "== serving benchmark: fan-out path (-no-merged) =="
  serve_run "$workdir/serving-fanout.json" 2 -no-merged
  for fsync in always interval off; do
    echo "== durable serving benchmark: -fsync $fsync ($appenders appenders) =="
    rm -rf "$workdir/data-$fsync"
    serve_run "$workdir/durable-$fsync.json" "$appenders" \
      -data-dir "$workdir/data-$fsync" -fsync "$fsync" -checkpoint 2s \
      -commit-delay "$commit_delay"
  done
  echo "== replicated serving benchmark: leader + follower, xqbench -targets =="
  # Both nodes boot the same dataset so the follower converges by pure
  # WAL tailing (the two-node runbook's contract).
  "$workdir/xqestd" -dataset dblp -scale 0.05 -addr "$addr" \
    -data-dir "$workdir/data-leader" -commit-delay "$commit_delay" \
    >"$workdir/xqestd-leader.log" 2>&1 &
  daemon_pid=$!
  "$workdir/xqestd" -dataset dblp -scale 0.05 -addr "$faddr" \
    -data-dir "$workdir/data-follower" -follow "http://$addr" \
    >"$workdir/xqestd-follower.log" 2>&1 &
  follower_pid=$!
  "$workdir/xqbench" -targets "http://$addr,http://$faddr" \
    -duration "${serve_seconds}s" -estimators 8 -appenders 4 \
    -o "$workdir/serving-replicated.json"
  kill -INT "$follower_pid" && wait "$follower_pid" 2>/dev/null || true
  follower_pid=""
  kill -INT "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
  daemon_pid=""
else
  printf 'null\n' > "$workdir/serving.json"
  printf 'null\n' > "$workdir/serving-notrace.json"
  printf 'null\n' > "$workdir/serving-noshadow.json"
  printf 'null\n' > "$workdir/serving-fanout.json"
  for fsync in always interval off; do
    printf 'null\n' > "$workdir/durable-$fsync.json"
  done
  printf 'null\n' > "$workdir/serving-replicated.json"
fi

# Offline accuracy harness: q-error quantiles over seeded workloads
# (all-pairs + random twigs) on two built-in datasets. Cheap and
# deterministic, so it always runs.
echo "== accuracy harness: xqest accuracy on hier and dblp =="
go build -o "$workdir/xqest" ./cmd/xqest
"$workdir/xqest" -dataset hier -json accuracy > "$workdir/accuracy-hier.json"
"$workdir/xqest" -dataset dblp -scale 0.05 -json accuracy > "$workdir/accuracy-dblp.json"

{
  awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
    /^goos:/   { goos = $2 }
    /^goarch:/ { goarch = $2 }
    /^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
    /^Benchmark/ {
      name = $1
      sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
      ns[++count] = sprintf("    \"%s\": %s", name, $3)
      # allocs/op is the field preceding the "allocs/op" unit (its
      # position shifts when MB/s is reported).
      for (i = 4; i <= NF; i++)
        if ($i == "allocs/op")
          al[count] = sprintf("    \"%s\": %s", name, $(i-1))
    }
    END {
      printf "{\n"
      printf "  \"date\": \"%s\",\n", date
      printf "  \"goos\": \"%s\",\n", goos
      printf "  \"goarch\": \"%s\",\n", goarch
      printf "  \"cpu\": \"%s\",\n", cpu
      printf "  \"ns_per_op\": {\n"
      for (i = 1; i <= count; i++)
        printf "%s%s\n", ns[i], (i < count ? "," : "")
      printf "  },\n"
      printf "  \"allocs_per_op\": {\n"
      n = 0
      for (i = 1; i <= count; i++) if (i in al) n++
      j = 0
      for (i = 1; i <= count; i++) if (i in al) {
        j++
        printf "%s%s\n", al[i], (j < n ? "," : "")
      }
      printf "  },\n"
      printf "  \"serving\": "
    }
  ' "$workdir/micro.txt"
  cat "$workdir/serving.json"
  printf ",\n  \"serving_notrace\": "
  cat "$workdir/serving-notrace.json"
  printf ",\n  \"serving_noshadow\": "
  cat "$workdir/serving-noshadow.json"
  printf ",\n  \"serving_fanout\": "
  cat "$workdir/serving-fanout.json"
  printf ",\n  \"serving_replicated\": "
  cat "$workdir/serving-replicated.json"
  printf ",\n  \"durable_serving\": {\n"
  printf "    \"always\": "
  cat "$workdir/durable-always.json"
  printf ",\n    \"interval\": "
  cat "$workdir/durable-interval.json"
  printf ",\n    \"off\": "
  cat "$workdir/durable-off.json"
  printf "  },\n"
  printf "  \"accuracy\": {\n"
  printf "    \"hier\": "
  cat "$workdir/accuracy-hier.json"
  printf ",\n    \"dblp\": "
  cat "$workdir/accuracy-dblp.json"
  printf "  }\n"
  printf "}\n"
} > "$out"

echo "wrote $out"
