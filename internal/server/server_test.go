package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xmlest"
)

const dept1 = `<department>
	<faculty><name>A</name><TA/><TA/></faculty>
	<staff><name>B</name></staff>
</department>`

const dept2 = `<department>
	<faculty><name>C</name><TA/><TA/><TA/></faculty>
	<faculty><name>D</name><TA/></faculty>
</department>`

// newTestServer builds a server over the dept1 document with tag
// predicates and a small grid.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	if cfg.Options.GridSize == 0 {
		cfg.Options.GridSize = 4
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	enc, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %T: %v", v, err)
	}
	return v
}

func TestEstimateSingleAndBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single estimate: HTTP %d", resp.StatusCode)
	}
	single := decode[EstimateResponse](t, resp)
	if len(single.Results) != 1 || single.Estimate == nil {
		t.Fatalf("single response = %+v, want one result with top-level estimate", single)
	}
	if *single.Estimate <= 0 {
		t.Errorf("estimate = %v, want > 0", *single.Estimate)
	}
	if single.Version == 0 {
		t.Error("missing snapshot version")
	}

	resp = postJSON(t, ts.URL+"/estimate", EstimateRequest{
		Patterns: []string{"//faculty//TA", "//department//faculty", "//faculty//TA"},
	})
	batch := decode[EstimateResponse](t, resp)
	if len(batch.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(batch.Results))
	}
	if batch.Estimate != nil {
		t.Error("batch response sets the single-estimate convenience field")
	}
	if batch.Results[0].Estimate != batch.Results[2].Estimate {
		t.Errorf("duplicate pattern disagreed within one batch: %v vs %v",
			batch.Results[0].Estimate, batch.Results[2].Estimate)
	}
	if batch.Results[0].Estimate != *single.Estimate {
		t.Errorf("batch estimate %v != single estimate %v", batch.Results[0].Estimate, *single.Estimate)
	}
}

func TestEstimateErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchPatterns: 2})

	cases := []struct {
		name string
		body any
		want int
	}{
		{"empty request", EstimateRequest{}, http.StatusBadRequest},
		{"syntax error", EstimateRequest{Pattern: "//[["}, http.StatusBadRequest},
		{"unknown predicate", EstimateRequest{Pattern: "//nosuchtag//TA"}, http.StatusBadRequest},
		{"batch too large", EstimateRequest{Patterns: []string{"//a", "//b", "//c"}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/estimate", tc.body)
		e := decode[ErrorResponse](t, resp)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		if e.Error == "" {
			t.Errorf("%s: missing error body", tc.name)
		}
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/estimate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /estimate: HTTP %d, want 405", resp.StatusCode)
	}
}

func TestAppendMakesDocumentsVisible(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	before := decode[EstimateResponse](t, postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"}))

	resp, err := http.Post(ts.URL+"/append", "application/xml", strings.NewReader(dept2))
	if err != nil {
		t.Fatal(err)
	}
	ar := decode[AppendResponse](t, resp)
	if ar.Docs != 1 || ar.Nodes == 0 || ar.ShardID == 0 {
		t.Fatalf("append response = %+v", ar)
	}
	if ar.Version <= before.Version {
		t.Fatalf("append version %d not after estimate version %d", ar.Version, before.Version)
	}

	after := decode[EstimateResponse](t, postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"}))
	if after.Version < ar.Version {
		t.Errorf("estimate version %d behind append version %d", after.Version, ar.Version)
	}
	if *after.Estimate <= *before.Estimate {
		t.Errorf("estimate did not grow after append: %v -> %v", *before.Estimate, *after.Estimate)
	}

	// JSON batch ingest lands as one shard.
	resp = postJSON(t, ts.URL+"/append", AppendRequest{Documents: []string{dept1, dept2}})
	ar2 := decode[AppendResponse](t, resp)
	if ar2.Docs != 2 {
		t.Errorf("JSON append landed %d docs, want 2 in one shard", ar2.Docs)
	}

	shards := decode[ShardsResponse](t, mustGet(t, ts.URL+"/shards"))
	if len(shards.Shards) != 3 {
		t.Errorf("shard count = %d, want 3", len(shards.Shards))
	}

	// Malformed XML is the client's fault.
	resp, err = http.Post(ts.URL+"/append", "application/xml", strings.NewReader("<unclosed"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed append: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestCompactEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/append", "application/xml", strings.NewReader(dept2))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	cr := decode[CompactResponse](t, postJSON(t, ts.URL+"/compact", CompactRequest{}))
	if cr.Merged < 2 {
		t.Fatalf("compact merged %d shards, want >= 2", cr.Merged)
	}
	if cr.Shards != 4-cr.Merged+1 {
		t.Errorf("compact response shards = %d with %d merged from 4", cr.Shards, cr.Merged)
	}

	// A full merge matches single-build semantics: the compacted shard
	// estimates exactly like a database opened with all documents at
	// once (smallest-first merge order = open order here).
	if cr.Shards == 1 {
		mono, err := xmlest.Open(strings.NewReader(dept1), strings.NewReader(dept2),
			strings.NewReader(dept2), strings.NewReader(dept2))
		if err != nil {
			t.Fatal(err)
		}
		mono.AddAllTagPredicates()
		monoEst, err := mono.NewEstimator(xmlest.Options{GridSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		want, err := monoEst.Estimate("//faculty//TA")
		if err != nil {
			t.Fatal(err)
		}
		after := decode[EstimateResponse](t, postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"}))
		if *after.Estimate != want.Estimate {
			t.Errorf("compacted estimate %v != single-build estimate %v", *after.Estimate, want.Estimate)
		}
	}
}

func TestStatsAndHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	h := decode[HealthResponse](t, mustGet(t, ts.URL+"/healthz"))
	if h.Status != "ok" || h.Shards != 1 {
		t.Errorf("healthz = %+v", h)
	}

	// Generate some traffic, then check it shows up in /stats.
	for i := 0; i < 5; i++ {
		resp := postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	st := decode[StatsResponse](t, mustGet(t, ts.URL+"/stats"))
	if st.Corpus.Docs != 1 || st.Corpus.Shards != 1 || st.Corpus.Predicates == 0 {
		t.Errorf("stats corpus = %+v", st.Corpus)
	}
	if st.SummaryBytes <= 0 {
		t.Errorf("SummaryBytes = %d, want > 0", st.SummaryBytes)
	}
	var found bool
	for _, ep := range st.Endpoints {
		if ep.Name == "estimate" {
			found = true
			if ep.Requests != 5 {
				t.Errorf("estimate endpoint requests = %d, want 5", ep.Requests)
			}
			if ep.Latency.P50 <= 0 {
				t.Errorf("estimate p50 = %v, want > 0", ep.Latency.P50)
			}
		}
	}
	if !found {
		t.Error("no estimate endpoint in stats")
	}

	// Draining flips healthz to 503.
	s.draining.Store(true)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: HTTP %d, want 503", resp.StatusCode)
	}
}

func TestAppendBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflightAppends: 1})
	// Fill the one slot so the next request must be rejected.
	s.appendSem <- struct{}{}
	defer func() { <-s.appendSem }()

	resp, err := http.Post(ts.URL+"/append", "application/xml", strings.NewReader(dept2))
	if err != nil {
		t.Fatal(err)
	}
	e := decode[ErrorResponse](t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("backpressured append: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if !strings.Contains(e.Error, "backpressure") {
		t.Errorf("error = %q, want a backpressure explanation", e.Error)
	}

	// Estimates keep flowing: the read fast path takes no semaphore.
	er := postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"})
	if er.StatusCode != http.StatusOK {
		t.Errorf("estimate under append backpressure: HTTP %d, want 200", er.StatusCode)
	}
	io.Copy(io.Discard, er.Body)
	er.Body.Close()

	// The deliberate 503 counts as a rejection, not an error: a
	// saturated-but-healthy daemon must not read as error-ridden.
	for _, ep := range s.Metrics().Snapshot() {
		if ep.Name == "append" {
			if ep.Rejected != 1 || ep.Errors != 0 {
				t.Errorf("append endpoint rejected=%d errors=%d, want 1 and 0", ep.Rejected, ep.Errors)
			}
		}
	}
}

func TestReadOnlyServer(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	est, err := db.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := est.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := xmlest.LoadEstimator(blob)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewFromEstimator(loaded, Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		t.Fatal(err)
	}
	if !s.ReadOnly() {
		t.Fatal("loaded server not read-only")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	er := decode[EstimateResponse](t, postJSON(t, ts.URL+"/estimate", EstimateRequest{Pattern: "//faculty//TA"}))
	want, err := est.Estimate("//faculty//TA")
	if err != nil {
		t.Fatal(err)
	}
	if *er.Estimate != want.Estimate {
		t.Errorf("loaded estimate %v != direct %v", *er.Estimate, want.Estimate)
	}

	for _, path := range []string{"/append", "/compact"} {
		resp, err := http.Post(ts.URL+path, "application/xml", strings.NewReader(dept2))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("POST %s on read-only server: HTTP %d, want 403", path, resp.StatusCode)
		}
	}
}

func TestShutdownPersistsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.xqs")
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	s, err := New(db, Config{
		Addr:         "127.0.0.1:0",
		Options:      xmlest.Options{GridSize: 4},
		SnapshotPath: path,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s", addr)
	want := decode[EstimateResponse](t, postJSON(t, url+"/estimate", EstimateRequest{Pattern: "//faculty//TA"}))

	ctx, cancel := timeoutCtx(t)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot not persisted: %v", err)
	}
	loaded, err := xmlest.LoadEstimator(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Estimate("//faculty//TA")
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate != *want.Estimate {
		t.Errorf("reloaded estimate %v != served %v", got.Estimate, *want.Estimate)
	}
}

func TestAutoCompactLoop(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	for i := 0; i < 3; i++ {
		if _, err := db.Append(strings.NewReader(dept2)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(db, Config{
		Addr:                "127.0.0.1:0",
		Options:             xmlest.Options{GridSize: 4},
		AutoCompactInterval: 10 * time.Millisecond,
		Logger:              slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.ShardCount() > 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := db.ShardCount(); got != 1 {
		t.Errorf("auto-compaction left %d shards, want 1", got)
	}
	ctx, cancel := timeoutCtx(t)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if s.autoRounds.Load() == 0 {
		t.Error("no auto-compaction rounds recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		t.Fatal(err)
	}
	db.AddAllTagPredicates()
	bad := []Config{
		{Options: xmlest.Options{GridSize: -1}},
		{Options: xmlest.Options{BuildWorkers: -2}},
		{Options: xmlest.Options{QueryCacheSize: -1}},
		{MaxInflightAppends: -1},
		{MaxBatchPatterns: -1},
		{AutoCompactInterval: -time.Second},
	}
	for i, cfg := range bad {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
		if _, err := New(db, cfg); err == nil {
			t.Errorf("config %d: bad config accepted at boot", i)
		}
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func timeoutCtx(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 5*time.Second)
}

// TestEstimatePooledScratchStable hammers the pooled /estimate path
// with interleaved single and batched requests and checks the recycled
// request scratch never bleeds state between requests: every response
// is byte-identical to its first occurrence.
func TestEstimatePooledScratchStable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	requests := []any{
		map[string]any{"pattern": "//faculty//TA"},
		map[string]any{"patterns": []string{"//department//faculty", "//faculty//TA"}},
		map[string]any{"pattern": "//department//staff", "patterns": []string{"//faculty//TA"}},
	}
	canonical := func(body []byte) string {
		var er EstimateResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("bad response %s: %v", body, err)
		}
		for i := range er.Results {
			er.Results[i].ElapsedNS = 0 // wall-clock noise, not payload
		}
		out, err := json.Marshal(er)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	first := make([]string, len(requests))
	for round := 0; round < 5; round++ {
		for i, req := range requests {
			resp := postJSON(t, ts.URL+"/estimate", req)
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d req %d: status %d: %s", round, i, resp.StatusCode, body)
			}
			got := canonical(body)
			if round == 0 {
				first[i] = got
				continue
			}
			if got != first[i] {
				t.Fatalf("round %d req %d: response drifted:\n%s\nvs\n%s", round, i, got, first[i])
			}
		}
	}
}

// TestStatsReportsMergedServing: a multi-shard daemon reports the
// merged-summary serving state in /stats, and it turns fresh once the
// fold covers the appended shard.
func TestStatsReportsMergedServing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/append", map[string]any{"documents": []string{dept2}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d", resp.StatusCode)
	}
	// Force the fold so the assertion is deterministic.
	s.db.MergeSummaries()
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Merged == nil {
		t.Fatal("no merged section in /stats")
	}
	if !stats.Merged.Enabled || !stats.Merged.Fresh || stats.Merged.CoveredShards != 2 {
		t.Fatalf("merged stats: %+v", *stats.Merged)
	}
}
