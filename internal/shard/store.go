package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xmlest/internal/core"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// Store owns a shard set and serializes its mutations. Reads go through
// Current(), which atomically loads the serving Set; writers build new
// shards off the serving path and install a copy-on-write successor
// Set, so estimation is never blocked by ingest or compaction.
//
// Predicate registration (the Spec mutators) is setup-time API: it
// rebuilds existing shards' catalogs in place and must not run
// concurrently with estimation or with other store mutations, mirroring
// the facade's long-standing contract.
type Store struct {
	specMu sync.Mutex
	spec   predicate.Spec

	// active is the set of estimator options in serving use. Append and
	// Compact eagerly build each new shard's summaries for these, so the
	// first post-append estimate does not pay the build.
	activeMu sync.Mutex
	active   map[core.Options]struct{}

	writeMu sync.Mutex // serializes set swaps (Append, Drop, Compact)
	cur     atomic.Pointer[Set]
	nextID  atomic.Uint64

	// Merged-summary serving state (see merged.go): the latest fold per
	// normalized option set, the coalescing worker state, and the epoch
	// compiled queries watch to adopt new folds.
	mergedMu   sync.Mutex
	merged     map[core.Options]*mergedView
	mergeState atomic.Int32
	mergeEpoch atomic.Uint64
	// foldMu serializes fold passes with each other and with the
	// setup-time predicate-registration methods, which rebuild shard
	// catalogs in place underneath any running fold.
	foldMu sync.Mutex

	// Observability counters (exported by Collect, see collect.go):
	// completed folds and the wall time of the newest one, plus
	// PrepareSet's serving-path decisions — merged-prefix bindings,
	// plain fan-out bindings, and fan-outs forced by a mixed-state
	// predicate the fold cannot reproduce.
	foldsDone    atomic.Uint64
	lastFoldNano atomic.Int64
	prepMerged   atomic.Uint64
	prepFanout   atomic.Uint64
	prepMixed    atomic.Uint64
}

// NewStore returns a store with an empty shard set and the given
// predicate recipe.
func NewStore(spec predicate.Spec) *Store {
	st := &Store{spec: spec, active: make(map[core.Options]struct{})}
	st.cur.Store(&Set{version: 1})
	return st
}

// Current returns the serving snapshot. The returned Set is immutable;
// callers may estimate against it for as long as they like, unaffected
// by concurrent mutations.
func (st *Store) Current() *Set { return st.cur.Load() }

// Version returns the serving snapshot's version.
func (st *Store) Version() uint64 { return st.Current().version }

// Spec returns the store's current predicate recipe.
func (st *Store) Spec() predicate.Spec {
	st.specMu.Lock()
	defer st.specMu.Unlock()
	return st.spec.Clone()
}

// EnsureSummaries builds (and caches) every current shard's summary for
// opts and marks opts active, so future appends and compactions
// summarize new shards eagerly. It is what facade estimator
// construction calls. Active options are normalized (see summaryKey)
// and accumulate for the store's lifetime — one summary per distinct
// option set per shard, the price of keeping every created estimator's
// appends eager.
func (st *Store) EnsureSummaries(opts core.Options) (*Set, error) {
	st.activeMu.Lock()
	st.active[summaryKey(opts)] = struct{}{}
	st.activeMu.Unlock()
	set := st.Current()
	if _, err := set.summaries(opts); err != nil {
		return nil, err
	}
	// Fold a merged view for the newly active options in the
	// background, so multi-shard stores serve O(1)-shard estimates from
	// the first possible moment.
	st.scheduleMerge()
	return set, nil
}

// activeOptions snapshots the active options set.
func (st *Store) activeOptions() []core.Options {
	st.activeMu.Lock()
	defer st.activeMu.Unlock()
	out := make([]core.Options, 0, len(st.active))
	for o := range st.active {
		out = append(out, o)
	}
	return out
}

// newShard wraps a tree and its catalog into a shard with summaries for
// every active option prebuilt — all off the serving path.
func (st *Store) newShard(tree *xmltree.Tree, cat *predicate.Catalog) (*Shard, error) {
	sh := &Shard{
		id:    st.nextID.Add(1),
		tree:  tree,
		cat:   cat,
		docs:  countDocs(tree),
		nodes: tree.NumNodes(),
	}
	for _, opts := range st.activeOptions() {
		if _, err := sh.Summary(opts); err != nil {
			return nil, err
		}
	}
	return sh, nil
}

// install publishes next as the serving set and schedules a background
// fold of the merged serving view (see merged.go) — every mutation
// flows through here, so the merged view chases the serving set with
// at most one fold of lag.
func (st *Store) install(next []*Shard, prev *Set) {
	st.cur.Store(&Set{version: prev.version + 1, shards: next})
	st.scheduleMerge()
}

// appendLocked installs sh at the end of the serving set, stamping its
// visibility watermark. The caller must hold writeMu — the one install
// body shared by plain appends, durable appends (which interleave the
// WAL write before it) and recovery.
func (st *Store) appendLocked(sh *Shard) {
	prev := st.Current()
	next := make([]*Shard, 0, len(prev.shards)+1)
	next = append(next, prev.shards...)
	next = append(next, sh)
	sh.installedAt = prev.version + 1
	st.install(next, prev)
}

// appendGroupLocked installs a group of shards at consecutive versions
// in ONE copy-on-write swap: shard i's visibility watermark is
// prev.version+i+1 and the new set's version is prev.version+n. Group
// commit lands n batches with one slice copy and one merge scheduling
// instead of n of each; the intermediate versions are never served,
// which is fine — a client acked at version prev+i+1 waits for any
// serving version >= that, and the set at prev+n contains its batch.
// The caller must hold writeMu.
func (st *Store) appendGroupLocked(shs []*Shard) {
	prev := st.Current()
	next := make([]*Shard, 0, len(prev.shards)+len(shs))
	next = append(next, prev.shards...)
	for i, sh := range shs {
		sh.installedAt = prev.version + uint64(i) + 1
		next = append(next, sh)
	}
	st.cur.Store(&Set{version: prev.version + uint64(len(shs)), shards: next})
	st.scheduleMerge()
}

// replaceLocked publishes shards as the whole serving set at an
// explicit version — the replication install: versions come from the
// leader's records and snapshots, not the local counter. The caller
// must hold writeMu and must have stamped each shard's installedAt.
func (st *Store) replaceLocked(shards []*Shard, version uint64) {
	st.cur.Store(&Set{version: version, shards: shards})
	st.scheduleMerge()
}

// setMinVersion raises the serving set's version to at least v without
// changing membership. The durable layer uses it during recovery so
// the version watermark clients observed before a crash never
// regresses: checkpoint loading jumps to the manifest's pinned version
// and each replayed batch re-installs at its original ack version.
func (st *Store) setMinVersion(v uint64) {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	cur := st.Current()
	if cur.version < v {
		st.cur.Store(&Set{version: v, shards: cur.shards})
	}
}

// AppendTree lands an already-parsed tree as a new shard: its catalog
// is materialized from the store's spec and its summaries built for
// every active option, then the shard joins the serving set in one
// atomic swap. Cost is proportional to the new documents only —
// existing shards are untouched.
func (st *Store) AppendTree(tree *xmltree.Tree) (*Shard, error) {
	if tree.NumNodes() == 0 {
		return nil, fmt.Errorf("shard: refusing to append an empty tree")
	}
	cat := st.Spec().Build(tree)
	return st.appendShard(tree, cat)
}

// AppendCatalog lands a tree with an externally materialized catalog as
// a new shard. The catalog must be over the given tree and is adopted
// as-is (it is not rebuilt from the spec).
func (st *Store) AppendCatalog(cat *predicate.Catalog) (*Shard, error) {
	return st.appendShard(cat.Tree, cat)
}

func (st *Store) appendShard(tree *xmltree.Tree, cat *predicate.Catalog) (*Shard, error) {
	sh, err := st.newShard(tree, cat)
	if err != nil {
		return nil, err
	}
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	st.appendLocked(sh)
	return sh, nil
}

// AppendSummary lands a prebuilt summary (for example, the output of a
// streaming ingest pass) as a summary-only shard. docs and nodes are
// metadata for introspection and compaction planning; summary-only
// shards never compact.
func (st *Store) AppendSummary(est *core.Estimator, docs, nodes int) (*Shard, error) {
	if est == nil {
		return nil, fmt.Errorf("shard: nil summary")
	}
	sh := &Shard{id: st.nextID.Add(1), docs: docs, nodes: nodes, prebuilt: est}
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	st.appendLocked(sh)
	return sh, nil
}

// Drop removes the shard with the given id from the serving set and
// reports whether it was present. The shard's documents disappear from
// all subsequent estimates; snapshots taken earlier still see them.
func (st *Store) Drop(id uint64) bool {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	prev := st.Current()
	next := make([]*Shard, 0, len(prev.shards))
	found := false
	for _, sh := range prev.shards {
		if sh.id == id {
			found = true
			continue
		}
		next = append(next, sh)
	}
	if !found {
		return false
	}
	st.install(next, prev)
	return true
}

// AddAllTagPredicates registers a Tag predicate per distinct element
// tag (plus TRUE) on every tree-backed shard and records the recipe for
// future shards. It returns the number of tag predicates on the first
// tree-backed shard (the facade's historical return value). Setup-time
// only: must not run concurrently with estimation or store mutations.
func (st *Store) AddAllTagPredicates() int {
	// Hold the fold lock across the in-place catalog rebuilds: a
	// background merged-view fold reads those catalogs.
	st.foldMu.Lock()
	defer st.foldMu.Unlock()
	st.specMu.Lock()
	st.spec.AllTags = true
	st.specMu.Unlock()
	n, first := 0, true
	for _, sh := range st.Current().shards {
		if sh.tree == nil {
			continue
		}
		added := sh.cat.AddAllTags()
		sh.cat.Add(predicate.True{})
		sh.invalidateSummaries()
		if first {
			n, first = added, false
		}
	}
	// The folds and any memoized summary slices were built from the old
	// catalogs; drop them and refold.
	st.Current().invalidateSummariesMemo()
	st.invalidateMerged()
	st.scheduleMerge()
	return n
}

// AddPredicates registers predicates on every tree-backed shard (one
// shared scan per shard) and records them for future shards.
// Setup-time only, like AddAllTagPredicates.
func (st *Store) AddPredicates(preds ...predicate.Predicate) {
	st.foldMu.Lock()
	defer st.foldMu.Unlock()
	st.specMu.Lock()
	st.spec = st.spec.Add(preds...)
	st.specMu.Unlock()
	for _, sh := range st.Current().shards {
		if sh.tree == nil {
			continue
		}
		sh.cat.AddBatch(preds)
		sh.invalidateSummaries()
	}
	st.Current().invalidateSummariesMemo()
	st.invalidateMerged()
	st.scheduleMerge()
}
