package experiments

import (
	"xmlest/internal/core"
	"xmlest/internal/histogram"
	"xmlest/internal/match"
)

// GridSweepSizes are the grid sizes swept in Fig 11 and Fig 12 (the
// paper's X axis runs to 50).
var GridSweepSizes = []int{2, 3, 5, 8, 10, 15, 20, 25, 30, 35, 40, 45, 50}

// Fig11Point is one X position of Fig 11: position-histogram storage
// for the two (overlapping-ancestor) predicates, and the accuracy of
// the primitive estimate for department//email.
type Fig11Point struct {
	GridSize          int
	StorageAncestor   int     // department position histogram, bytes
	StorageDescendant int     // email position histogram, bytes
	Ratio             float64 // estimate / real answer size
}

// Fig11 reproduces "Storage Requirement and Estimation Accuracy for
// Overlap Predicates (department-email)".
func Fig11() []Fig11Point {
	s := Hier()
	anc := s.Catalog.MustGet("tag=department")
	desc := s.Catalog.MustGet("tag=email")
	real := float64(match.CountPairs(s.Tree, anc.Nodes, desc.Nodes))
	out := make([]Fig11Point, 0, len(GridSweepSizes))
	for _, g := range GridSweepSizes {
		grid, err := histogram.NewUniformGrid(g, s.Tree.MaxPos)
		if err != nil {
			continue
		}
		ha := histogram.BuildPosition(s.Tree, anc.Nodes, grid)
		hb := histogram.BuildPosition(s.Tree, desc.Nodes, grid)
		est, err := core.PHJoin(ha, hb)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		out = append(out, Fig11Point{
			GridSize:          g,
			StorageAncestor:   ha.StorageBytes(),
			StorageDescendant: hb.StorageBytes(),
			Ratio:             est / real,
		})
	}
	return out
}

// Fig12Point is one X position of Fig 12: position- and
// coverage-histogram storage for the two no-overlap predicates, and
// the accuracy of the no-overlap estimate for article//cdrom.
type Fig12Point struct {
	GridSize            int
	StorageHistAncestor int // article position histogram, bytes
	StorageCvgAncestor  int // article coverage histogram, bytes
	StorageHistDesc     int // cdrom position histogram, bytes
	StorageCvgDesc      int // cdrom coverage histogram, bytes
	Ratio               float64
}

// Fig12 reproduces "Storage Requirement and Estimation Accuracy for
// No-Overlap Predicates (article-cdrom)".
func Fig12() []Fig12Point {
	s := DBLP()
	anc := s.Catalog.MustGet("tag=article")
	desc := s.Catalog.MustGet("tag=cdrom")
	real := float64(match.CountPairs(s.Tree, anc.Nodes, desc.Nodes))
	out := make([]Fig12Point, 0, len(GridSweepSizes))
	for _, g := range GridSweepSizes {
		grid, err := histogram.NewUniformGrid(g, s.Tree.MaxPos)
		if err != nil {
			continue
		}
		trueHist := histogram.BuildTrue(s.Tree, grid)
		ha := histogram.BuildPosition(s.Tree, anc.Nodes, grid)
		hb := histogram.BuildPosition(s.Tree, desc.Nodes, grid)
		ca, err := histogram.BuildCoverage(s.Tree, anc.Nodes, trueHist)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		cb, err := histogram.BuildCoverage(s.Tree, desc.Nodes, trueHist)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		ancSP := core.Leaf(ha, ca, true)
		descSP := core.Leaf(hb, cb, true)
		joined, err := core.JoinAncestor(ancSP, descSP)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		out = append(out, Fig12Point{
			GridSize:            g,
			StorageHistAncestor: ha.StorageBytes(),
			StorageCvgAncestor:  ca.StorageBytes(),
			StorageHistDesc:     hb.StorageBytes(),
			StorageCvgDesc:      cb.StorageBytes(),
			Ratio:               joined.Total() / real,
		})
	}
	return out
}

// ScalingPoint is one X position of the Theorem 1 / Theorem 2 storage
// scaling checks.
type ScalingPoint struct {
	GridSize     int
	NonZeroCells int // Theorem 1: non-zero position histogram cells
	PartialCells int // Theorem 2: partial coverage cell pairs (−1 = n/a)
}

// Theorem1 measures non-zero position-histogram cells against grid size
// for a large predicate (DBLP authors), verifying O(g) growth.
func Theorem1() []ScalingPoint {
	s := DBLP()
	nodes := s.Catalog.MustGet("tag=author").Nodes
	out := make([]ScalingPoint, 0, len(GridSweepSizes))
	for _, g := range GridSweepSizes {
		grid, err := histogram.NewUniformGrid(g, s.Tree.MaxPos)
		if err != nil {
			continue
		}
		h := histogram.BuildPosition(s.Tree, nodes, grid)
		out = append(out, ScalingPoint{GridSize: g, NonZeroCells: h.NonZero(), PartialCells: -1})
	}
	return out
}

// Theorem2 measures partial-coverage cell pairs against grid size for a
// no-overlap predicate (DBLP articles), verifying O(g) growth.
func Theorem2() []ScalingPoint {
	s := DBLP()
	nodes := s.Catalog.MustGet("tag=article").Nodes
	out := make([]ScalingPoint, 0, len(GridSweepSizes))
	for _, g := range GridSweepSizes {
		grid, err := histogram.NewUniformGrid(g, s.Tree.MaxPos)
		if err != nil {
			continue
		}
		trueHist := histogram.BuildTrue(s.Tree, grid)
		cov, err := histogram.BuildCoverage(s.Tree, nodes, trueHist)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		h := histogram.BuildPosition(s.Tree, nodes, grid)
		out = append(out, ScalingPoint{
			GridSize:     g,
			NonZeroCells: h.NonZero(),
			PartialCells: cov.PartialCells(),
		})
	}
	return out
}

// StorageSummary reports the paper's §5.1 storage claim: total bytes of
// all DBLP predicate histograms at 10×10 vs the (generated) dataset
// size, which the paper puts at roughly 0.7% of 9 MB (~6 KB).
type StorageSummaryResult struct {
	Predicates   int
	TotalBytes   int
	TreeNodes    int
	BytesPerPred float64
}

// StorageSummary measures the total histogram storage of the DBLP
// estimator at the paper's 10×10 grid.
func StorageSummary() StorageSummaryResult {
	s := DBLP()
	total := s.Estimator.StorageBytes()
	n := s.Catalog.Len()
	return StorageSummaryResult{
		Predicates:   n,
		TotalBytes:   total,
		TreeNodes:    s.Tree.NumNodes(),
		BytesPerPred: float64(total) / float64(n),
	}
}
