package wal

import (
	"strings"
	"testing"
	"time"

	"xmlest/internal/fsio"
)

// TestWriteFailureSealsLog: a failed frame write poisons the log for
// good — later appends are refused even though the disk "recovered".
func TestWriteFailureSealsLog(t *testing.T) {
	dir := t.TempDir()
	ffs := fsio.NewFaultFS(fsio.OS, fsio.Faults{})
	l, err := Open(dir, Options{Mode: ModeAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, docs("<a/>")); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	ffs.SetFaults(fsio.Faults{FailOp: ffs.OpCount() + 1}) // next op: the frame write
	if _, err := l.Append(2, docs("<b/>")); err == nil {
		t.Fatal("append with failing write: ack must be an error")
	}
	ffs.ClearFaults()
	_, err = l.Append(3, docs("<c/>"))
	if err == nil || !strings.Contains(err.Error(), "sealed") {
		t.Fatalf("append after I/O failure: got %v, want sealed error", err)
	}
	if l.Err() == nil {
		t.Fatal("Err() must report the seal")
	}
	if err := l.Close(); err == nil {
		t.Fatal("Close of a sealed log must error")
	}
}

// TestFsyncFailureNeverAcks: in ModeAlways a failed fsync must fail the
// append (the ack promise is durability) and seal the log.
func TestFsyncFailureNeverAcks(t *testing.T) {
	dir := t.TempDir()
	ffs := fsio.NewFaultFS(fsio.OS, fsio.Faults{})
	l, err := Open(dir, Options{Mode: ModeAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ffs.SetFaults(fsio.Faults{SyncFailAfter: 1}) // every fsync from here on fails
	if _, err := l.Append(1, docs("<a/>")); err == nil {
		t.Fatal("append whose fsync failed must not ack")
	}
	if l.DurableSeq() != 0 {
		t.Fatalf("durable seq %d after failed fsync, want 0", l.DurableSeq())
	}
	ffs.ClearFaults()
	if _, err := l.Append(2, docs("<b/>")); err == nil {
		t.Fatal("log must stay sealed after an fsync failure")
	}
}

// TestBackgroundFlusherSealsLog is the regression test for the
// swallowed-flusher-error bug: in ModeInterval the fsync happens on a
// background goroutine, and its failure must not be silently dropped —
// the log seals and the next Append/Close fails loudly.
func TestBackgroundFlusherSealsLog(t *testing.T) {
	dir := t.TempDir()
	ffs := fsio.NewFaultFS(fsio.OS, fsio.Faults{})
	l, err := Open(dir, Options{Mode: ModeInterval, Interval: 2 * time.Millisecond, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, docs("<a/>")); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	// Arm a sticky fault. The only operations left are the flusher's
	// periodic fsyncs; the first one to run hits the fault and seals.
	ffs.SetFaults(fsio.Faults{FailOp: ffs.OpCount() + 1, Sticky: true})
	if _, err := l.Append(2, docs("<b/>")); err != nil {
		// The append itself may land before the flusher ticks; either
		// outcome (immediate refusal or later seal) is acceptable.
		t.Logf("append raced the flusher seal: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background flusher fsync failure was swallowed: log never sealed")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := l.Append(3, docs("<c/>")); err == nil {
		t.Fatal("append after flusher seal must fail")
	}
	if err := l.Close(); err == nil {
		t.Fatal("Close after flusher seal must error")
	}
}

// TestTruncateFailureIsRetryable: a failed covered-segment remove does
// NOT seal the log (replay skips covered records either way), keeps the
// segment list intact, and a later Truncate finishes the job.
func TestTruncateFailureIsRetryable(t *testing.T) {
	// Control run: record where the first remove lands in the op log.
	workload := func(ffs *fsio.FaultFS, dir string) (*Log, error) {
		l, err := Open(dir, Options{Mode: ModeAlways, SegmentBytes: 1, FS: ffs})
		if err != nil {
			return nil, err
		}
		for i := uint64(1); i <= 3; i++ {
			if _, err := l.Append(i, docs("<a/>")); err != nil {
				return nil, err
			}
		}
		return l, nil
	}
	control := fsio.NewFaultFS(fsio.OS, fsio.Faults{})
	cl, err := workload(control, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Truncate(3); err != nil {
		t.Fatalf("control truncate: %v", err)
	}
	cl.Close()
	removes := control.OpsByKind(fsio.OpRemove)
	if len(removes) == 0 {
		t.Fatal("control run performed no removes; test workload is wrong")
	}

	// Fault run: fail exactly that remove.
	ffs := fsio.NewFaultFS(fsio.OS, fsio.Faults{FailOp: removes[0].Index})
	l, err := workload(ffs, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Truncate(3); err == nil {
		t.Fatal("truncate with failing remove: want error")
	}
	if l.Err() != nil {
		t.Fatalf("truncate failure must not seal the log: %v", l.Err())
	}
	if _, err := l.Append(4, docs("<d/>")); err != nil {
		t.Fatalf("append after failed truncate: %v", err)
	}
	if err := l.Truncate(3); err != nil {
		t.Fatalf("retried truncate: %v", err)
	}
	for _, seg := range l.Segments() {
		if seg.LastSeq <= 3 && seg.Records > 0 {
			t.Fatalf("covered segment survived retried truncate: %+v", seg)
		}
	}
}
