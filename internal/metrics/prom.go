package metrics

import (
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Collector contributes metric families to a Prometheus text
// exposition. Each subsystem (WAL, durable store, shard store, trace
// recorders, the server itself) implements Collect and registers on
// the Registry, so /metrics is assembled by the owners of the state
// instead of the server hand-walking every subsystem.
//
// A Collect implementation must write whole families: declare each
// family once (Family / the typed helpers) and emit every one of its
// samples before starting the next family — the text format requires
// one contiguous group per metric name.
type Collector interface {
	Collect(e *Expo)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(e *Expo)

// Collect calls f.
func (f CollectorFunc) Collect(e *Expo) { f(e) }

// Expo writes the Prometheus text exposition format (version 0.0.4).
// It is a thin append-only writer: errors are sticky and surfaced by
// Err, so collectors can emit unconditionally. HELP/TYPE headers are
// deduplicated per family name, letting two collectors safely share a
// family only if they emit into it back-to-back.
type Expo struct {
	w    io.Writer
	err  error
	line []byte
	seen map[string]bool
}

// NewExpo returns an exposition writer over w.
func NewExpo(w io.Writer) *Expo {
	return &Expo{w: w, seen: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (e *Expo) Err() error { return e.err }

func (e *Expo) write(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

// Family declares a metric family: one # HELP and one # TYPE line,
// written once per name. typ is "counter", "gauge" or "histogram".
func (e *Expo) Family(name, typ, help string) {
	if e.seen[name] {
		return
	}
	e.seen[name] = true
	e.line = e.line[:0]
	e.line = append(e.line, "# HELP "...)
	e.line = append(e.line, name...)
	e.line = append(e.line, ' ')
	e.line = append(e.line, help...)
	e.line = append(e.line, "\n# TYPE "...)
	e.line = append(e.line, name...)
	e.line = append(e.line, ' ')
	e.line = append(e.line, typ...)
	e.line = append(e.line, '\n')
	e.write(e.line)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// appendSample renders `name{k="v",...} value\n`. labels alternate
// key, value; an odd trailing key is ignored.
func (e *Expo) appendSample(name string, labels []string, value float64) {
	e.line = e.line[:0]
	e.line = append(e.line, name...)
	if len(labels) >= 2 {
		e.line = append(e.line, '{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				e.line = append(e.line, ',')
			}
			e.line = append(e.line, labels[i]...)
			e.line = append(e.line, '=', '"')
			e.line = append(e.line, escapeLabel(labels[i+1])...)
			e.line = append(e.line, '"')
		}
		e.line = append(e.line, '}')
	}
	e.line = append(e.line, ' ')
	e.line = strconv.AppendFloat(e.line, value, 'g', -1, 64)
	e.line = append(e.line, '\n')
	e.write(e.line)
}

// Sample writes one sample of an already-declared family.
func (e *Expo) Sample(name string, value float64, labels ...string) {
	e.appendSample(name, labels, value)
}

// Counter declares a single-sample counter family and writes its value.
func (e *Expo) Counter(name, help string, value float64, labels ...string) {
	e.Family(name, "counter", help)
	e.appendSample(name, labels, value)
}

// Gauge declares a single-sample gauge family and writes its value.
func (e *Expo) Gauge(name, help string, value float64, labels ...string) {
	e.Family(name, "gauge", help)
	e.appendSample(name, labels, value)
}

// HistogramFamily declares a histogram family; emit its series with
// LatencySamples or ValueSamples.
func (e *Expo) HistogramFamily(name, help string) {
	e.Family(name, "histogram", help)
}

// LatencySamples writes one labeled series of a declared histogram
// family from a LatencyHistogram: cumulative `_bucket{le="..."}` lines
// with upper bounds in seconds, then `_sum` (seconds) and `_count`.
// The +Inf bucket and _count reuse the summed bucket counts so the
// series is internally consistent under concurrent Observes.
func (e *Expo) LatencySamples(name string, h *LatencyHistogram, labels ...string) {
	bucket := name + "_bucket"
	withLE := append(append(make([]string, 0, len(labels)+2), labels...), "le", "")
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := float64(h.grid.Hi(i)) / float64(time.Second)
		withLE[len(withLE)-1] = strconv.FormatFloat(le, 'g', -1, 64)
		e.appendSample(bucket, withLE, float64(cum))
	}
	withLE[len(withLE)-1] = "+Inf"
	e.appendSample(bucket, withLE, float64(cum))
	e.appendSample(name+"_sum", labels, float64(h.sumNS.Load())/float64(time.Second))
	e.appendSample(name+"_count", labels, float64(cum))
}

// ValueSamples writes one labeled series of a declared histogram
// family from a ValueHistogram (dimensionless upper bounds).
func (e *Expo) ValueSamples(name string, h *ValueHistogram, labels ...string) {
	bucket := name + "_bucket"
	withLE := append(append(make([]string, 0, len(labels)+2), labels...), "le", "")
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		withLE[len(withLE)-1] = strconv.FormatFloat(float64(valueGrid.Hi(i)), 'g', -1, 64)
		e.appendSample(bucket, withLE, float64(cum))
	}
	withLE[len(withLE)-1] = "+Inf"
	e.appendSample(bucket, withLE, float64(cum))
	e.appendSample(name+"_sum", labels, float64(h.sum.Load()))
	e.appendSample(name+"_count", labels, float64(cum))
}

// FloatSamples writes one labeled series of a declared histogram
// family from a FloatHistogram: cumulative `_bucket{le="..."}` lines
// over its explicit bounds, then `_sum` and `_count`.
func (e *Expo) FloatSamples(name string, h *FloatHistogram, labels ...string) {
	bucket := name + "_bucket"
	withLE := append(append(make([]string, 0, len(labels)+2), labels...), "le", "")
	var cum uint64
	for i := range h.bounds {
		cum += h.buckets[i].Load()
		withLE[len(withLE)-1] = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		e.appendSample(bucket, withLE, float64(cum))
	}
	cum += h.buckets[len(h.bounds)].Load()
	withLE[len(withLE)-1] = "+Inf"
	e.appendSample(bucket, withLE, float64(cum))
	e.appendSample(name+"_sum", labels, h.Sum())
	e.appendSample(name+"_count", labels, float64(cum))
}

// Register adds a collector to the registry's exposition. Collectors
// run in registration order on every WriteExposition call.
func (r *Registry) Register(c Collector) {
	r.collMu.Lock()
	defer r.collMu.Unlock()
	r.collectors = append(r.collectors, c)
}

// WriteExposition renders the full Prometheus text exposition: the
// registry's own per-endpoint families followed by every registered
// collector, in registration order.
func (r *Registry) WriteExposition(w io.Writer) error {
	e := NewExpo(w)
	r.Collect(e)
	r.collMu.Lock()
	colls := make([]Collector, len(r.collectors))
	copy(colls, r.collectors)
	r.collMu.Unlock()
	for _, c := range colls {
		c.Collect(e)
	}
	return e.Err()
}

// Collect writes the registry's own families: uptime plus the
// per-endpoint request/error/rejection/panic counters, inflight
// gauges, and request-duration histograms.
func (r *Registry) Collect(e *Expo) {
	r.mu.Lock()
	eps := make([]*Endpoint, 0, len(r.endpoints))
	for _, ep := range r.endpoints {
		eps = append(eps, ep)
	}
	r.mu.Unlock()
	sort.Slice(eps, func(i, j int) bool { return eps[i].name < eps[j].name })

	e.Gauge("xqest_uptime_seconds", "Seconds since the metrics registry was created.", r.Uptime().Seconds())

	counter := func(name, help string, get func(*Endpoint) float64) {
		e.Family(name, "counter", help)
		for _, ep := range eps {
			e.Sample(name, get(ep), "endpoint", ep.name)
		}
	}
	counter("xqest_http_requests_total", "Completed requests per endpoint.",
		func(ep *Endpoint) float64 { return float64(ep.requests.Load()) })
	counter("xqest_http_errors_total", "Failed requests per endpoint (status >= 400, minus rejections).",
		func(ep *Endpoint) float64 { return float64(ep.errors.Load()) })
	counter("xqest_http_rejected_total", "Deliberately rejected requests per endpoint (backpressure, drain).",
		func(ep *Endpoint) float64 { return float64(ep.rejected.Load()) })
	counter("xqest_http_panics_total", "Recovered handler panics per endpoint.",
		func(ep *Endpoint) float64 { return float64(ep.panics.Load()) })

	e.Family("xqest_http_inflight_requests", "gauge", "Requests currently being served per endpoint.")
	for _, ep := range eps {
		e.Sample("xqest_http_inflight_requests", float64(ep.inflight.Load()), "endpoint", ep.name)
	}

	e.HistogramFamily("xqest_http_request_duration_seconds", "Request latency per endpoint.")
	for _, ep := range eps {
		e.LatencySamples("xqest_http_request_duration_seconds", ep.lat, "endpoint", ep.name)
	}
}

// CollectGoRuntime writes Go runtime families (goroutines, heap, GC).
// It reads runtime.MemStats, which briefly stops the world — fine at
// scrape cadence, not on a hot path.
func CollectGoRuntime(e *Expo) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.Gauge("go_goroutines", "Number of goroutines.", float64(runtime.NumGoroutine()))
	e.Gauge("go_gomaxprocs", "GOMAXPROCS.", float64(runtime.GOMAXPROCS(0)))
	e.Gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	e.Gauge("go_memstats_heap_sys_bytes", "Bytes of heap obtained from the OS.", float64(ms.HeapSys))
	e.Gauge("go_memstats_heap_objects", "Number of allocated heap objects.", float64(ms.HeapObjects))
	e.Counter("go_memstats_alloc_bytes_total", "Cumulative bytes allocated.", float64(ms.TotalAlloc))
	e.Counter("go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	e.Counter("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.",
		float64(ms.PauseTotalNs)/float64(time.Second))
}
