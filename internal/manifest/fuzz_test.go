package manifest

import (
	"reflect"
	"testing"
)

// FuzzManifestDecode feeds arbitrary bytes to the manifest decoder: it
// must never panic or over-allocate, and any accepted image must
// re-encode and re-decode to an identical manifest, so a valid
// manifest survives checkpoint/recover cycles bit-for-bit.
func FuzzManifestDecode(f *testing.F) {
	m := &Manifest{
		FormatVersion: Format,
		Version:       7,
		WALSeq:        3,
		GridSize:      10,
		Shards: []Shard{
			{ID: 1, File: "shards/cp-7-1.xqs", Docs: 2, Nodes: 50, WALSeq: 3, Bytes: 100, CRC32: 9},
		},
	}
	seed, err := m.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	empty, err := (&Manifest{FormatVersion: Format}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"format_version": 1, "shards": [{"file": "/abs"}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // invalid input is fine; panics are not
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("re-encode of accepted manifest failed: %v", err)
		}
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip changed manifest:\n%+v\n%+v", m, m2)
		}
	})
}
