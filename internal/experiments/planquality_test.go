package experiments

import (
	"bytes"
	"testing"
)

func TestErrorProfiles(t *testing.T) {
	rows, err := ErrorProfiles()
	if err != nil {
		t.Fatalf("ErrorProfiles: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 datasets x 2 workloads)", len(rows))
	}
	for _, r := range rows {
		if r.Report.Queries == 0 {
			t.Errorf("%s/%s: empty workload", r.Dataset, r.Workload)
		}
		if r.Report.Q50 < 1 || r.Report.Q90 < r.Report.Q50 || r.Report.QMax < r.Report.Q90 {
			t.Errorf("%s/%s: quantiles out of order: %v %v %v",
				r.Dataset, r.Workload, r.Report.Q50, r.Report.Q90, r.Report.QMax)
		}
		// The headline claim: typical (median) error is small even
		// though tail queries (especially empty-result ones) are hard.
		if r.Report.Q50 > 3 {
			t.Errorf("%s/%s: median q-error %v too large", r.Dataset, r.Workload, r.Report.Q50)
		}
	}
}

func TestPlanQuality(t *testing.T) {
	rows, err := PlanQuality()
	if err != nil {
		t.Fatalf("PlanQuality: %v", err)
	}
	if len(rows) == 0 {
		t.Fatalf("no rows")
	}
	optCount := 0
	for _, r := range rows {
		if r.OptimalCost > r.ChosenCost {
			t.Errorf("%s: optimal cost %d exceeds chosen %d (bookkeeping bug)",
				r.Query, r.OptimalCost, r.ChosenCost)
		}
		if r.WorstCost < r.ChosenCost {
			t.Errorf("%s: worst cost %d below chosen %d", r.Query, r.WorstCost, r.ChosenCost)
		}
		if r.ChosenIsOpt {
			optCount++
		}
		// The chosen plan must stay far from the worst plan whenever
		// plans differ meaningfully: within 3x of optimal.
		if r.ChosenCost > 3*r.OptimalCost {
			t.Errorf("%s: chosen plan cost %d more than 3x optimal %d",
				r.Query, r.ChosenCost, r.OptimalCost)
		}
	}
	// The estimator should pick the true optimum for most queries.
	if optCount < len(rows)/2 {
		t.Errorf("estimator chose the optimal plan for only %d/%d queries", optCount, len(rows))
	}
}

func TestRenderErrorAndPlanExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderErrorProfile(&buf); err != nil {
		t.Fatalf("RenderErrorProfile: %v", err)
	}
	if err := RenderPlanQuality(&buf); err != nil {
		t.Fatalf("RenderPlanQuality: %v", err)
	}
	for _, want := range []string{"Error profile", "Plan quality", "q90", "chose opt"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("output missing %q", want)
		}
	}
}
