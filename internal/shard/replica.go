// Replication hooks on the durable store: the leader-side stream
// source (durable WAL tailing + checkpoint snapshots) and the
// follower-side apply path (records installed at their leader-recorded
// sequences and ack versions, snapshots installed wholesale). Together
// they give cross-node exactness: a follower's serving set is built
// from the same checkpoint files and the same WAL records as a leader
// recovery would build, so estimates at the same version are
// bit-identical — the PR 4 crash-equivalence argument, stretched over
// a network.

package shard

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"xmlest/internal/core"
	"xmlest/internal/manifest"
	"xmlest/internal/wal"
	"xmlest/internal/xmltree"
)

// ServingVersion returns the current serving-set version.
func (d *DurableStore) ServingVersion() uint64 { return d.store.Version() }

// ReadDurableWAL streams durable records after the given sequence to
// fn — the leader-side tail source (see wal.Log.ReadDurable for the
// concurrency and durability contract).
func (d *DurableStore) ReadDurableWAL(after uint64, fn func(wal.Record) error) (uint64, error) {
	return d.log.ReadDurable(after, fn)
}

// SnapshotForReplica decides whether a follower resuming at (from,
// version) needs a checkpoint snapshot before the WAL tail, and
// returns the manifest plus its shard-file blobs when so.
//
// Two cases need one. A follower behind the truncation point (from <
// checkpoint WALSeq) cannot be tailed to — its records are gone. And a
// FRESH follower (nothing applied: from 0, version still at its
// initial 1) tailing from zero would miss any serving shard that was
// never WAL-logged — the bootstrap corpus — so if such shards exist, a
// checkpoint is forced first and shipped. In every other case the WAL
// alone reproduces the leader's state exactly.
func (d *DurableStore) SnapshotForReplica(from, version uint64) (*manifest.Manifest, map[string][]byte, bool, error) {
	fresh := from == 0 && version <= 1
	needZero := false
	if fresh {
		for _, sh := range d.store.Current().Shards() {
			if sh.walSeq == 0 {
				needZero = true
				break
			}
		}
	}
	if needZero {
		if _, err := d.Checkpoint(); err != nil {
			return nil, nil, false, fmt.Errorf("shard: snapshot for fresh replica: %w", err)
		}
	}
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	if !needZero && from >= d.cpSeq.Load() {
		return nil, nil, false, nil // the WAL tail alone covers the gap
	}
	man, ok, err := manifest.LoadFS(d.fs, d.dir)
	if err != nil {
		return nil, nil, false, err
	}
	if !ok {
		return nil, nil, false, nil // no checkpoint yet; pure tail
	}
	files := make(map[string][]byte, len(man.Shards))
	for _, entry := range man.Shards {
		data, err := d.fs.ReadFile(filepath.Join(d.dir, entry.File))
		if err != nil {
			return nil, nil, false, fmt.Errorf("shard: snapshot file %s: %w", entry.File, err)
		}
		files[entry.File] = data
	}
	return man, files, true, nil
}

// buildReplicated parses one shipped record into a shard, off the
// locks. A nil shard (no error) means the batch is unparseable —
// parsing is deterministic, so the leader skipped it during its own
// recovery too; the record is still logged to keep sequence numbering
// faithful, but nothing installs.
func (d *DurableStore) buildReplicated(rec wal.Record) (*Shard, error) {
	readers := make([]io.Reader, len(rec.Docs))
	for i, doc := range rec.Docs {
		readers[i] = bytes.NewReader(doc)
	}
	tree, err := xmltree.ParseCollection(readers, xmltree.DefaultParseOptions)
	if err != nil || tree.NumNodes() == 0 {
		return nil, nil
	}
	cat := d.store.Spec().Build(tree)
	sh, err := d.store.newShard(tree, cat)
	if err != nil {
		return nil, err
	}
	sh.walSeq = rec.Seq
	return sh, nil
}

// ApplyReplicated durably logs and installs a batch of shipped records
// at their leader-recorded sequences and ack versions — the follower
// twin of commitGroup, with the same ordering guarantee: records land
// in the follower's own WAL (and are fsynced) BEFORE their shards
// become visible, so the follower never serves a version it has not
// durably applied, and its own recovery replays to exactly this state.
func (d *DurableStore) ApplyReplicated(recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	shs := make([]*Shard, len(recs))
	for i, rec := range recs {
		sh, err := d.buildReplicated(rec)
		if err != nil {
			return err
		}
		shs[i] = sh // nil when the batch was skipped
	}
	st := d.store
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	v := st.Current().version
	for _, rec := range recs {
		if rec.Version <= v {
			return fmt.Errorf(
				"shard: replicated record seq %d carries version %d, which does not advance the serving version %d — refusing (diverged replica?)",
				rec.Seq, rec.Version, v)
		}
		v = rec.Version
	}
	if err := d.log.AppendReplicated(recs); err != nil {
		return err
	}
	if d.walMode != wal.ModeAlways {
		// The follower's honesty invariant does not bend to the fsync
		// policy: records must be durable before they are served.
		if err := d.log.Sync(); err != nil {
			return err
		}
	}
	prev := st.Current().shards
	next := make([]*Shard, 0, len(prev)+len(recs))
	next = append(next, prev...)
	for i, sh := range shs {
		if sh == nil {
			continue
		}
		sh.installedAt = recs[i].Version
		next = append(next, sh)
	}
	st.replaceLocked(next, recs[len(recs)-1].Version)
	return nil
}

// ApplySnapshot atomically replaces the follower's state with a leader
// checkpoint: every shard file is verified against the manifest,
// written and fsynced, the manifest lands (atomic rename), the serving
// set jumps to the snapshot's version in one swap, and the local WAL
// floor moves to the snapshot's truncation point. A snapshot that
// would move this node backwards — an older version, or a WAL floor
// behind records already logged here — is refused: regressing a
// replica silently is how split brains are born.
func (d *DurableStore) ApplySnapshot(man *manifest.Manifest, files map[string][]byte) error {
	if man.GridSize != d.opts.GridSize {
		return fmt.Errorf("shard: snapshot grid size %d != local grid size %d — refusing", man.GridSize, d.opts.GridSize)
	}
	// Verify and unmarshal every blob before touching disk or state.
	ests := make([]*core.Estimator, len(man.Shards))
	for i, entry := range man.Shards {
		data, ok := files[entry.File]
		if !ok {
			return fmt.Errorf("shard: snapshot is missing file %s", entry.File)
		}
		if int64(len(data)) != entry.Bytes {
			return fmt.Errorf("shard: snapshot file %s: %d bytes, manifest says %d", entry.File, len(data), entry.Bytes)
		}
		if crc32.Checksum(data, crcTable) != entry.CRC32 {
			return fmt.Errorf("shard: snapshot file %s: checksum mismatch", entry.File)
		}
		est, err := core.UnmarshalEstimator(data)
		if err != nil {
			return fmt.Errorf("shard: snapshot file %s: %w", entry.File, err)
		}
		ests[i] = est
	}

	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	st := d.store
	if last := d.log.LastSeq(); last > man.WALSeq {
		return fmt.Errorf("shard: snapshot truncates at WAL seq %d but this node has logged up to %d — refusing to regress", man.WALSeq, last)
	}
	if cur := st.Version(); cur > man.Version {
		return fmt.Errorf("shard: snapshot at version %d is behind this node's version %d — refusing to regress", man.Version, cur)
	}

	shardDir := filepath.Join(d.dir, ShardDir)
	if err := d.fs.MkdirAll(shardDir, 0o755); err != nil {
		return fmt.Errorf("shard: snapshot install: %w", err)
	}
	entries := make([]manifest.Shard, len(man.Shards))
	shs := make([]*Shard, len(man.Shards))
	for i, entry := range man.Shards {
		if err := writeFileSync(d.fs, filepath.Join(d.dir, entry.File), files[entry.File]); err != nil {
			return err
		}
		sh := &Shard{
			id:          st.nextID.Add(1),
			docs:        entry.Docs,
			nodes:       entry.Nodes,
			prebuilt:    ests[i],
			walSeq:      entry.WALSeq,
			installedAt: man.Version,
		}
		entry.ID = sh.id
		entries[i], shs[i] = entry, sh
	}
	if err := d.fs.SyncDir(shardDir); err != nil {
		return fmt.Errorf("shard: snapshot install: %w", err)
	}
	local := &manifest.Manifest{
		FormatVersion: manifest.Format,
		Version:       man.Version,
		WALSeq:        man.WALSeq,
		GridSize:      man.GridSize,
		Shards:        entries,
	}
	if err := local.WriteFS(d.fs, d.dir); err != nil {
		return err
	}

	st.writeMu.Lock()
	st.replaceLocked(shs, man.Version)
	st.writeMu.Unlock()

	d.files = make(map[uint64]manifest.Shard, len(entries))
	for _, entry := range entries {
		d.files[entry.ID] = entry
	}
	d.cpVersion.Store(man.Version)
	d.cpSeq.Store(man.WALSeq)
	d.gcShardFiles(shardDir, entries)
	d.log.SetMinSeq(man.WALSeq)
	if err := d.log.Truncate(man.WALSeq); err != nil {
		return err
	}
	return nil
}
