package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xmlest"
)

func discardLogger() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// newDurableTestServer mounts a server over an already-opened durable
// database.
func newDurableTestServer(t *testing.T, db *xmlest.Database) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(db, Config{Options: xmlest.Options{GridSize: 4}, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postAppendXML(t *testing.T, base, doc string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/append", "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// jsonDecode is decode without t.Fatal, for goroutines.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// durableBootstrap seeds the crash tests' corpus: dept1 with the
// all-tags vocabulary.
func durableBootstrap() (*xmlest.Database, error) {
	db, err := xmlest.Open(strings.NewReader(dept1))
	if err != nil {
		return nil, err
	}
	db.AddAllTagPredicates()
	return db, nil
}

func openDurableTestDB(t *testing.T, dir string) *xmlest.Database {
	t.Helper()
	db, err := xmlest.OpenDurable(dir, xmlest.DurableConfig{
		Options:   xmlest.Options{GridSize: 4},
		Bootstrap: durableBootstrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDurableServer exercises the in-process durable serving surface:
// append responses carry WAL watermarks, /stats grows a durability
// section, shutdown checkpoints, and a reopened directory serves the
// same versions and estimates.
func TestDurableServer(t *testing.T) {
	dir := t.TempDir()
	db := openDurableTestDB(t, dir)
	s, ts := newDurableTestServer(t, db)

	// Append: the response proves the batch hit the WAL and, under the
	// default always policy, was fsynced before the ack.
	resp := postAppendXML(t, ts.URL, dept2)
	ar := decode[AppendResponse](t, resp)
	if ar.WALSeq != 1 || ar.Durable == nil || !*ar.Durable {
		t.Fatalf("append response lacks durability proof: %+v", ar)
	}

	// /stats reports the durability section.
	st := decode[StatsResponse](t, mustGet(t, ts.URL+"/stats"))
	if st.Durability == nil || st.Durability.LastSeq != 1 || st.Durability.Fsync != "always" {
		t.Fatalf("stats durability: %+v", st.Durability)
	}

	// /shards shows per-shard WAL watermarks.
	shards := decode[ShardsResponse](t, mustGet(t, ts.URL+"/shards"))
	var seqs []uint64
	for _, sh := range shards.Shards {
		seqs = append(seqs, sh.WALSeq)
	}
	if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 1 {
		t.Fatalf("shard wal seqs %v, want [0 1]", seqs)
	}

	est := decode[EstimateResponse](t, postJSON(t, ts.URL+"/estimate",
		EstimateRequest{Pattern: "//department//faculty"}))
	preVersion := est.Version

	// Graceful shutdown = checkpoint: the WAL empties and the manifest
	// lands.
	{
		ctx, cancel := timeoutCtx(t)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST.json")); err != nil {
		t.Fatalf("shutdown did not checkpoint: %v", err)
	}

	// Reopen: same version watermark, bit-identical estimate.
	db2 := openDurableTestDB(t, dir)
	defer db2.Close()
	rec, _ := db2.Recovery()
	if rec.ReplayedRecords != 0 {
		t.Fatalf("post-shutdown boot replayed %d records, want 0", rec.ReplayedRecords)
	}
	_, ts2 := newDurableTestServer(t, db2)
	est2 := decode[EstimateResponse](t, postJSON(t, ts2.URL+"/estimate",
		EstimateRequest{Pattern: "//department//faculty"}))
	if est2.Version < preVersion {
		t.Fatalf("version regressed across restart: %d < %d", est2.Version, preVersion)
	}
	if math.Float64bits(*est2.Estimate) != math.Float64bits(*est.Estimate) {
		t.Fatalf("estimate changed across restart: %v != %v", *est2.Estimate, *est.Estimate)
	}
}

// TestCheckpointLoop verifies the background checkpoint loop persists
// and truncates without being asked.
func TestCheckpointLoop(t *testing.T) {
	dir := t.TempDir()
	db := openDurableTestDB(t, dir)
	defer db.Close()
	s, err := New(db, Config{
		Addr:               "127.0.0.1:0",
		Options:            xmlest.Options{GridSize: 4},
		CheckpointInterval: 5 * time.Millisecond,
		Logger:             discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := timeoutCtx(t)
		defer cancel()
		s.Shutdown(ctx)
	}()
	if _, err := db.Append(strings.NewReader(dept2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ds, _ := db.DurabilityStats()
		if ds.CheckpointWALSeq >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpoint loop never covered seq 1: %+v", ds)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- kill -9 integration test -------------------------------------

// Env vars steering the re-exec'd child daemon.
const (
	crashChildEnv = "XQESTD_CRASH_CHILD_DIR"
	crashAddrEnv  = "XQESTD_CRASH_ADDR_FILE"
)

// TestCrashDaemonChild is the re-exec helper: under crashChildEnv it
// becomes a durable estimation daemon and serves until killed. It is
// skipped in normal test runs.
func TestCrashDaemonChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("helper process for TestCrashRecoverySIGKILL")
	}
	db, err := xmlest.OpenDurable(dir, xmlest.DurableConfig{
		Options:   xmlest.Options{GridSize: 4},
		Bootstrap: durableBootstrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, Config{Addr: "127.0.0.1:0", Options: xmlest.Options{GridSize: 4}, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Publish the bound address atomically (write + rename) so the
	// parent never reads a partial file.
	addrFile := os.Getenv(crashAddrEnv)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte("http://"+addr.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	select {} // serve until SIGKILL
}

// startCrashDaemon re-execs the test binary as a daemon over dir and
// waits for it to report healthy.
func startCrashDaemon(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashDaemonChild$")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir, crashAddrEnv+"="+addrFile)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	var base string
	for {
		if b, err := os.ReadFile(addrFile); err == nil {
			base = string(b)
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return cmd, base
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("child daemon never became healthy")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestCrashRecoverySIGKILL is the end-to-end crash test: a real
// daemon process accepts appends over HTTP, dies by SIGKILL mid-load,
// restarts over the same data directory, and must serve every
// acknowledged batch at a version no lower than the acks — plus
// estimates bit-identical to an uncrashed control over the same
// batches.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	cmd1, base := startCrashDaemon(t, dir)

	// Phase 1: sequential acknowledged appends with unique tags.
	type acked struct {
		tag     string
		doc     string
		version uint64
	}
	var acks []acked
	for i := 0; i < 8; i++ {
		tag := fmt.Sprintf("crashdoc%d", i)
		doc := fmt.Sprintf("<department><%s>payload %d</%s></department>", tag, i, tag)
		resp, err := http.Post(base+"/append", "application/xml", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		ar := decode[AppendResponse](t, resp)
		if ar.Durable == nil || !*ar.Durable {
			t.Fatalf("append %d not durable at ack: %+v", i, ar)
		}
		acks = append(acks, acked{tag: tag, doc: doc, version: ar.Version})
	}

	// Phase 2: concurrent load, then SIGKILL mid-flight. Acks recorded
	// up to the kill instant must all survive; un-acked in-flight
	// appends may or may not (both are correct).
	var mu sync.Mutex
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				tag := fmt.Sprintf("loaddoc%dx%d", w, i)
				doc := fmt.Sprintf("<department><%s>p</%s></department>", tag, tag)
				resp, err := http.Post(base+"/append", "application/xml", strings.NewReader(doc))
				if err != nil {
					return // the kill landed mid-request
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					continue // backpressure
				}
				var ar AppendResponse
				err = jsonDecode(resp, &ar)
				if err != nil {
					return
				}
				mu.Lock()
				acks = append(acks, acked{tag: tag, doc: doc, version: ar.Version})
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(300 * time.Millisecond)
	// SIGKILL while appenders are mid-flight: no drain, no checkpoint.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()
	stop.Store(true)
	wg.Wait()

	// Phase 3: restart over the same directory and verify.
	_, base2 := startCrashDaemon(t, dir)
	mu.Lock()
	defer mu.Unlock()
	var maxAck uint64
	for _, a := range acks {
		if a.version > maxAck {
			maxAck = a.version
		}
	}
	probe := decode[EstimateResponse](t, postJSON(t, base2+"/estimate",
		EstimateRequest{Pattern: "//department"}))
	if probe.Version < maxAck {
		t.Fatalf("recovered version %d below max acked %d", probe.Version, maxAck)
	}
	// Every acknowledged batch must be estimable: its unique tag is
	// known (the batch's shard was recovered) and counts at least one.
	for _, a := range acks {
		resp := postJSON(t, base2+"/estimate", EstimateRequest{Pattern: "//" + a.tag})
		er := decode[EstimateResponse](t, resp)
		if er.Estimate == nil || *er.Estimate < 1 {
			t.Fatalf("acked batch %q lost by the crash (estimate %+v)", a.tag, er.Estimate)
		}
	}

	// Exactness: an uncrashed control fed the same acked batches (the
	// recovered daemon may hold extra batches that were logged but
	// never acked, so compare only when none landed — detect via shard
	// count... instead compare per-tag estimates, which are shard-local
	// and unaffected by extra batches with other tags).
	control, err := durableBootstrap()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range acks {
		if _, err := control.Append(strings.NewReader(a.doc)); err != nil {
			t.Fatal(err)
		}
	}
	cest, err := control.NewEstimator(xmlest.Options{GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range acks {
		want, err := cest.Estimate("//" + a.tag)
		if err != nil {
			t.Fatal(err)
		}
		er := decode[EstimateResponse](t, postJSON(t, base2+"/estimate",
			EstimateRequest{Pattern: "//" + a.tag}))
		if math.Float64bits(*er.Estimate) != math.Float64bits(want.Estimate) {
			t.Fatalf("recovered estimate for %q not bit-identical: %v != %v",
				a.tag, *er.Estimate, want.Estimate)
		}
	}
}
