package replica

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xmlest/internal/core"
	"xmlest/internal/pattern"
	"xmlest/internal/shard"
	"xmlest/internal/wal"
)

// ---- protocol ----

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMagic(&buf); err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("hello"), nil, bytes.Repeat([]byte{0xAB}, 4096)}
	kinds := []byte{FrameHello, FrameHeartbeat, FrameShardFile}
	for i, p := range payloads {
		if err := WriteFrame(&buf, kinds[i], p); err != nil {
			t.Fatal(err)
		}
	}
	if err := ReadMagic(&buf); err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		fr, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Kind != kinds[i] || !bytes.Equal(fr.Payload, p) {
			t.Fatalf("frame %d: kind %d payload %d bytes", i, fr.Kind, len(fr.Payload))
		}
		if !fr.Verify() {
			t.Fatalf("frame %d failed CRC verification", i)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected io.EOF at stream end, got %v", err)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameRecord, []byte("precious bytes")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[frameHeaderLen+3] ^= 0x10 // flip a payload byte in flight
	fr, err := ReadFrame(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err) // ReadFrame does not verify; the receiver does
	}
	if fr.Verify() {
		t.Fatal("corrupt frame passed CRC verification")
	}
	// A tear mid-frame surfaces as ErrUnexpectedEOF, not silent EOF.
	if _, err := ReadFrame(bytes.NewReader(raw[:len(raw)-3])); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestBadMagicRefused(t *testing.T) {
	if err := ReadMagic(strings.NewReader("<html>oops")); err == nil {
		t.Fatal("non-replication stream accepted")
	}
}

func TestHelloCodec(t *testing.T) {
	h := Hello{GridSize: 16, DurableSeq: 42, Version: 17, Snapshot: true}
	got, err := decodeHello(encodeHello(h))
	if err != nil || got != h {
		t.Fatalf("hello round-trip: %+v, %v", got, err)
	}
	if _, err := decodeHello([]byte(`{"grid_size":0}`)); err == nil {
		t.Fatal("zero grid size accepted")
	}
	if _, err := decodeHello([]byte("not json")); err == nil {
		t.Fatal("junk hello accepted")
	}
}

func TestHeartbeatCodec(t *testing.T) {
	seq, version, err := decodeHeartbeat(encodeHeartbeat(123456, 789))
	if err != nil || seq != 123456 || version != 789 {
		t.Fatalf("heartbeat round-trip: %d %d %v", seq, version, err)
	}
	if _, _, err := decodeHeartbeat([]byte{0xFF}); err == nil {
		t.Fatal("truncated heartbeat accepted")
	}
}

func TestShardFileCodec(t *testing.T) {
	name, data, err := decodeShardFile(encodeShardFile("shards/cp-2-1.xqs", []byte{1, 2, 3}))
	if err != nil || name != "shards/cp-2-1.xqs" || !bytes.Equal(data, []byte{1, 2, 3}) {
		t.Fatalf("shard-file round-trip: %q %v %v", name, data, err)
	}
	if _, _, err := decodeShardFile([]byte{0xFF, 0xFF}); err == nil {
		t.Fatal("bad shard-file frame accepted")
	}
}

// ---- fault transport ----

// memStream feeds canned frames.
type memStream struct{ frames []Frame }

func (s *memStream) Next() (Frame, error) {
	if len(s.frames) == 0 {
		return Frame{}, io.EOF
	}
	fr := s.frames[0]
	s.frames = s.frames[1:]
	return fr, nil
}
func (s *memStream) Close() error { return nil }

type memTransport struct{ mk func() []Frame }

func (t *memTransport) Open(ctx context.Context, from, version uint64) (Stream, error) {
	return &memStream{frames: t.mk()}, nil
}

func verifiedFrame(kind byte, payload []byte) Frame {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, kind, payload); err != nil {
		panic(err)
	}
	fr, err := ReadFrame(&buf)
	if err != nil {
		panic(err)
	}
	return fr
}

func TestFaultTransportDeterminism(t *testing.T) {
	base := &memTransport{mk: func() []Frame {
		return []Frame{verifiedFrame(FrameHeartbeat, encodeHeartbeat(1, 1))}
	}}
	ft := NewFaultTransport(base, TransportFault{Op: 2, Kind: FaultCorrupt})
	ctx := context.Background()

	st, err := ft.Open(ctx, 0, 0) // op 1
	if err != nil {
		t.Fatal(err)
	}
	fr, err := st.Next() // op 2: corrupt fires, one-shot
	if err != nil {
		t.Fatal(err)
	}
	if fr.Verify() {
		t.Fatal("corrupted frame passed verification")
	}
	st2, err := ft.Open(ctx, 0, 0) // op 3: fault consumed, clean
	if err != nil {
		t.Fatal(err)
	}
	if fr, err := st2.Next(); err != nil || !fr.Verify() {
		t.Fatalf("clean op failed after one-shot fault: %v", err)
	}
	ops := ft.Ops()
	if len(ops) != 4 || ops[0].Name != "open" || ops[1].Name != "next" || ops[3].Index != 4 {
		t.Fatalf("op log: %+v", ops)
	}

	// Sticky: every op from N on fails.
	ft2 := NewFaultTransport(base, TransportFault{Op: 1, Kind: FaultDrop, Sticky: true})
	for i := 0; i < 3; i++ {
		if _, err := ft2.Open(ctx, 0, 0); err == nil {
			t.Fatalf("sticky drop did not fire on open %d", i)
		}
	}
	if got := ft2.OpCount(); got != 3 {
		t.Fatalf("op count %d, want 3", got)
	}
}

// ---- end-to-end over HTTP ----

var probeOpts = core.Options{GridSize: 4}

var probePatterns = []string{
	"//department//faculty",
	"//department//faculty[.//TA][.//RA]",
	"//department//staff",
	"//faculty//TA",
}

func probeDocs(i int) [][]byte {
	return [][]byte{
		[]byte(fmt.Sprintf("<department><faculty>f%d<TA>t</TA><RA>r</RA></faculty></department>", i)),
		[]byte(fmt.Sprintf("<department><staff>s%d</staff></department>", i)),
	}
}

func estimates(t *testing.T, st *shard.Store) []float64 {
	t.Helper()
	set := st.Current()
	out := make([]float64, len(probePatterns))
	for i, src := range probePatterns {
		p, err := pattern.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := set.EstimateTwig(p, probeOpts)
		if err != nil {
			t.Fatalf("estimate %q: %v", src, err)
		}
		out[i] = res.Estimate
	}
	return out
}

func openDurable(t *testing.T, grid int) *shard.DurableStore {
	t.Helper()
	d, err := shard.OpenDurable(t.TempDir(), nil, shard.DurableConfig{
		Options: core.Options{GridSize: grid},
		WAL:     wal.Options{Mode: wal.ModeAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func fastFollowerOpts(upstream string) FollowerOptions {
	return FollowerOptions{
		Upstream:        upstream,
		StalenessBudget: time.Hour,
		MinBackoff:      5 * time.Millisecond,
		MaxBackoff:      100 * time.Millisecond,
		ReadTimeout:     2 * time.Second,
		ApplyBatch:      8,
	}
}

func fastStreamerOpts() StreamerOptions {
	return StreamerOptions{
		Heartbeat:         50 * time.Millisecond,
		Poll:              2 * time.Millisecond,
		MaxStreamDuration: 5 * time.Second,
		WriteTimeout:      5 * time.Second,
	}
}

// startFollower runs f until cancel; the returned stop func waits for
// the loop to exit so the store can be closed safely afterwards.
func startFollower(f *Follower) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx)
	}()
	return func() {
		cancel()
		<-done
	}
}

func waitConverged(t *testing.T, leader, follower *shard.DurableStore, timeout time.Duration, label string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if follower.DurableSeq() == leader.DurableSeq() && follower.ServingVersion() == leader.ServingVersion() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: follower did not converge: seq %d/%d version %d/%d",
				label, follower.DurableSeq(), leader.DurableSeq(), follower.ServingVersion(), leader.ServingVersion())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func requireSameEstimates(t *testing.T, leader, follower *shard.DurableStore, label string) {
	t.Helper()
	want := estimates(t, leader.Store())
	got := estimates(t, follower.Store())
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: pattern %q: follower %v != leader %v (not bit-identical)",
				label, probePatterns[i], got[i], want[i])
		}
	}
}

func TestFollowerEndToEndHTTP(t *testing.T) {
	leader := openDurable(t, 4)
	for i := 0; i < 3; i++ {
		if _, _, err := leader.AppendDocs(probeDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewStreamer(leader, fastStreamerOpts()))
	defer srv.Close()

	follower := openDurable(t, 4)
	f := NewFollower(&HTTPTransport{Base: srv.URL}, follower, fastFollowerOpts(srv.URL))
	stop := startFollower(f)
	defer stop()

	waitConverged(t, leader, follower, 5*time.Second, "initial catch-up")
	requireSameEstimates(t, leader, follower, "initial catch-up")

	// Live tail: appends made while the stream is open arrive too.
	for i := 3; i < 6; i++ {
		if _, _, err := leader.AppendDocs(probeDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, leader, follower, 5*time.Second, "live tail")
	requireSameEstimates(t, leader, follower, "live tail")

	s := f.Status()
	if s.LagSeq != 0 || s.Stale {
		t.Fatalf("converged follower reports lag %d stale %v", s.LagSeq, s.Stale)
	}
	if s.RecordsApplied != 6 {
		t.Fatalf("records applied %d, want 6", s.RecordsApplied)
	}
	if s.FramesRejected != 0 {
		t.Fatalf("clean stream rejected %d frames", s.FramesRejected)
	}
}

func TestFollowerSnapshotCatchUpHTTP(t *testing.T) {
	leader := openDurable(t, 4)
	for i := 0; i < 4; i++ {
		if _, _, err := leader.AppendDocs(probeDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 6; i++ {
		if _, _, err := leader.AppendDocs(probeDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewStreamer(leader, fastStreamerOpts()))
	defer srv.Close()

	follower := openDurable(t, 4)
	f := NewFollower(&HTTPTransport{Base: srv.URL}, follower, fastFollowerOpts(srv.URL))
	stop := startFollower(f)
	defer stop()

	waitConverged(t, leader, follower, 5*time.Second, "snapshot catch-up")
	requireSameEstimates(t, leader, follower, "snapshot catch-up")
	if s := f.Status(); s.SnapshotsApplied != 1 {
		t.Fatalf("snapshots applied %d, want 1", s.SnapshotsApplied)
	}
}

func TestFollowerGridMismatchIsFatal(t *testing.T) {
	leader := openDurable(t, 4)
	if _, _, err := leader.AppendDocs(probeDocs(0)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewStreamer(leader, fastStreamerOpts()))
	defer srv.Close()

	follower := openDurable(t, 8)
	f := NewFollower(&HTTPTransport{Base: srv.URL}, follower, fastFollowerOpts(srv.URL))
	stop := startFollower(f)
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	for f.Status().FatalError == "" {
		if time.Now().After(deadline) {
			t.Fatal("grid mismatch never surfaced as fatal")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s := f.Status()
	if !strings.Contains(s.FatalError, "grid") {
		t.Fatalf("fatal error %q does not name the grid mismatch", s.FatalError)
	}
	if s.RecordsApplied != 0 {
		t.Fatalf("mismatched follower applied %d records", s.RecordsApplied)
	}
}

func TestFollowerStalenessAfterLeaderLoss(t *testing.T) {
	leader := openDurable(t, 4)
	for i := 0; i < 2; i++ {
		if _, _, err := leader.AppendDocs(probeDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewStreamer(leader, fastStreamerOpts()))

	follower := openDurable(t, 4)
	opts := fastFollowerOpts(srv.URL)
	opts.StalenessBudget = 100 * time.Millisecond
	f := NewFollower(&HTTPTransport{Base: srv.URL}, follower, opts)
	stop := startFollower(f)
	defer stop()

	waitConverged(t, leader, follower, 5*time.Second, "pre-loss catch-up")
	servedVersion := follower.ServingVersion()

	srv.CloseClientConnections()
	srv.Close() // the leader vanishes

	deadline := time.Now().Add(5 * time.Second)
	for !f.Status().Stale {
		if time.Now().After(deadline) {
			t.Fatalf("follower never reported stale after leader loss: %+v", f.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Degraded, not dead: the follower still serves its last-applied state.
	if got := follower.ServingVersion(); got != servedVersion {
		t.Fatalf("served version moved from %d to %d with no leader", servedVersion, got)
	}
	requireSameEstimates(t, leader, follower, "degraded serving")
	if s := f.Status(); s.StreamErrors == 0 {
		t.Fatal("leader loss produced no stream errors")
	}
}

// TestChaosSweep is the tentpole fault sweep: run the catch-up workload
// once cleanly to learn its transport-op schedule, then replay it with
// a fault injected at every op index, for every fault kind, asserting
// the follower converges to bit-identical estimates every time (all
// injected faults are single; the retry loop must absorb them).
func TestChaosSweep(t *testing.T) {
	leader := openDurable(t, 4)
	for i := 0; i < 3; i++ {
		if _, _, err := leader.AppendDocs(probeDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		if _, _, err := leader.AppendDocs(probeDocs(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewStreamer(leader, fastStreamerOpts()))
	// t.Cleanup, not defer: parallel subtests run after this function
	// body returns, and the leader must outlive them all.
	t.Cleanup(srv.Close)
	want := estimates(t, leader.Store())

	run := func(t *testing.T, faults ...TransportFault) (*shard.DurableStore, *Follower, *FaultTransport) {
		t.Helper()
		follower := openDurable(t, 4)
		ft := NewFaultTransport(&HTTPTransport{Base: srv.URL}, faults...)
		ft.StallDelay = 400 * time.Millisecond
		opts := fastFollowerOpts(srv.URL)
		opts.ReadTimeout = 250 * time.Millisecond // < StallDelay: stalls trip the watchdog
		f := NewFollower(ft, follower, opts)
		stop := startFollower(f)
		t.Cleanup(stop)
		return follower, f, ft
	}

	// Clean run: learn the op schedule.
	follower, _, ft := run(t)
	waitConverged(t, leader, follower, 10*time.Second, "clean run")
	cleanOps := ft.Ops()
	if len(cleanOps) < 3 {
		t.Fatalf("clean run logged only %d transport ops", len(cleanOps))
	}

	for _, kind := range []FaultKind{FaultDrop, FaultCorrupt, FaultTruncate, FaultStall} {
		for _, op := range cleanOps {
			name := fmt.Sprintf("%s-at-op%d-%s", kind, op.Index, op.Name)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				follower, f, _ := run(t, TransportFault{Op: op.Index, Kind: kind})
				waitConverged(t, leader, follower, 15*time.Second, name)
				got := estimates(t, follower.Store())
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("pattern %q: follower %v != leader %v after %s (not bit-identical)",
							probePatterns[i], got[i], want[i], name)
					}
				}
				if s := f.Status(); s.ServedVersion != leader.ServingVersion() {
					t.Fatalf("served version %d != leader %d", s.ServedVersion, leader.ServingVersion())
				}
			})
		}
	}

	// A sticky fault is a dead network: the follower must refuse loudly —
	// surface errors and staleness — while still serving what it has.
	t.Run("sticky-drop-refuses-loudly", func(t *testing.T) {
		follower := openDurable(t, 4)
		ft := NewFaultTransport(&HTTPTransport{Base: srv.URL},
			TransportFault{Op: 1, Kind: FaultDrop, Sticky: true})
		opts := fastFollowerOpts(srv.URL)
		opts.StalenessBudget = 50 * time.Millisecond
		f := NewFollower(ft, follower, opts)
		stop := startFollower(f)
		defer stop()
		deadline := time.Now().Add(5 * time.Second)
		for {
			s := f.Status()
			if s.Stale && s.StreamErrors > 0 && s.LastError != "" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("dead network not surfaced: %+v", s)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if follower.DurableSeq() != 0 {
			t.Fatal("follower applied records through a dead transport")
		}
	})
}
