package histogram

import (
	"fmt"
	"sync/atomic"

	"xmlest/internal/xmltree"
)

// cellKey packs a (i, j) grid cell into a map key. Grid sizes are far
// below 1<<16.
type cellKey uint32

func key(i, j int) cellKey { return cellKey(uint32(i)<<16 | uint32(j)) }

func (k cellKey) split() (int, int) { return int(k >> 16), int(k & 0xffff) }

// Coverage is the coverage histogram of Section 4.2 for a predicate P
// with the no-overlap property: Cvg[i][j][m][n] is the fraction of the
// nodes in grid cell (i, j) (all nodes, the TRUE population) that are
// descendants of some node satisfying P that falls in grid cell (m, n).
//
// Because P has no-overlap, every node has at most one P-ancestor among
// maximal P-nodes, so for fixed (i, j) the fractions over all (m, n) sum
// to at most 1.
//
// The structure is stored sparsely. Theorem 2 guarantees that only O(g)
// cell pairs have partial (neither 0 nor 1) coverage; StorageBytes
// reports the encoding size of the partial cells only, since full cells
// are reconstructible from the position histogram (they lie strictly
// inside a populated ancestor cell's guaranteed region).
type Coverage struct {
	grid Grid
	// frac[v][a] = fraction of TRUE-nodes in cell v covered by P-nodes
	// in cell a. Zero-fraction entries are not stored. The nested maps
	// are the mutable build-time representation only; every read on the
	// estimation path goes through the flattened CSR form below.
	frac map[cellKey]map[cellKey]float64

	// flat caches the CSR-flattened form (see Flatten), built lazily on
	// the immutable histogram and invalidated by SetFrac. Iterating the
	// sorted slices makes EachFrac deterministic (map order is not) and
	// keeps the join inner loops on contiguous memory; the cache also
	// means MarshalBinary/StorageBytes never re-sort on repeated calls.
	flat atomic.Pointer[FlatCoverage]
}

// BuildCoverage constructs the exact coverage histogram for the
// predicate whose satisfying nodes are given (sorted by start, as
// catalog entries are). The predicate must have the no-overlap property;
// BuildCoverage returns an error if a nested pair is encountered, since
// coverage semantics (unique covering ancestor) would not hold.
//
// trueHist must be the TRUE histogram on the same grid; it supplies the
// per-cell population denominators.
func BuildCoverage(t *xmltree.Tree, pnodes []xmltree.NodeID, trueHist *Position) (*Coverage, error) {
	if g := trueHist.Grid().Size(); g > MaxGridSize {
		return nil, fmt.Errorf("histogram: grid size %d exceeds the supported maximum %d", g, MaxGridSize)
	}
	return BuildCoverageFromCells(t, pnodes, trueHist, ComputeNodeCells(t, trueHist.Grid()))
}

// BuildCoverageFromCells is BuildCoverage with the per-node grid cells
// precomputed (see ComputeNodeCells), so the sweep does no bucket
// searches and no per-node map operations: descendants accumulate into
// a dense g×g plane per distinct ancestor cell (Theorem 1 bounds the
// distinct ancestor cells by O(g), so the planes stay small).
//
// Because node ids follow pre-order and intervals nest, the proper
// descendants of a P-node occupy the contiguous id range just after it,
// so the sweep visits only covered nodes — O(|P| + covered) rather than
// one pass over the whole tree. Leaf-tag predicates cover nothing and
// cost O(|P|).
func BuildCoverageFromCells(t *xmltree.Tree, pnodes []xmltree.NodeID, trueHist *Position, nc *NodeCells) (*Coverage, error) {
	grid := trueHist.Grid()
	g := grid.Size()
	cov := &Coverage{grid: grid, frac: make(map[cellKey]map[cellKey]float64)}

	// Dense planes trade O(g²) memory per distinct ancestor cell (O(g)
	// of them, Theorem 1) for map-free accumulation. That is the right
	// trade at the paper's grid sizes but grows O(g³) transient memory,
	// so very large grids fall back to sparse per-plane maps.
	const densePlaneLimit = 128
	dense := g <= densePlaneLimit

	planeID := make(map[cellKey]int)
	var planes [][]float64
	var sparsePlanes []map[int]float64
	var planeCells []cellKey // first-open order, parallel to planes
	for cursor := 0; cursor < len(pnodes); cursor++ {
		p := t.Node(pnodes[cursor])
		// pnodes is start-sorted, so any P-node nested inside p would be
		// the immediately following one.
		if cursor+1 < len(pnodes) {
			if next := t.Node(pnodes[cursor+1]); next.Start < p.End {
				return nil, fmt.Errorf("histogram: BuildCoverage on overlapping predicate (node %d nested)", pnodes[cursor+1])
			}
		}
		ak := key(int(nc.I[pnodes[cursor]]), int(nc.J[pnodes[cursor]]))
		pid, ok := planeID[ak]
		if !ok {
			pid = len(planeCells)
			planeID[ak] = pid
			planeCells = append(planeCells, ak)
			if dense {
				planes = append(planes, make([]float64, g*g))
			} else {
				sparsePlanes = append(sparsePlanes, make(map[int]float64))
			}
		}
		// The proper descendants of p: ids after p while starts stay
		// inside p's interval (their ends nest inside automatically).
		last := len(t.Nodes)
		if dense {
			open := planes[pid]
			for id := int(pnodes[cursor]) + 1; id < last && t.Nodes[id].Start < p.End; id++ {
				open[int(nc.I[id])*g+int(nc.J[id])]++
			}
		} else {
			open := sparsePlanes[pid]
			for id := int(pnodes[cursor]) + 1; id < last && t.Nodes[id].Start < p.End; id++ {
				open[int(nc.I[id])*g+int(nc.J[id])]++
			}
		}
	}
	store := func(pid, idx int, c float64) {
		i, j := idx/g, idx%g
		pop := trueHist.Count(i, j)
		if pop <= 0 {
			return
		}
		v := key(i, j)
		m := cov.frac[v]
		if m == nil {
			m = make(map[cellKey]float64)
			cov.frac[v] = m
		}
		m[planeCells[pid]] = c / pop
	}
	for pid := range planeCells {
		if dense {
			for idx, c := range planes[pid] {
				if c != 0 {
					store(pid, idx, c)
				}
			}
		} else {
			for idx, c := range sparsePlanes[pid] {
				store(pid, idx, c)
			}
		}
	}
	return cov, nil
}

// NewCoverage returns an empty coverage histogram on the grid. It is
// used by estimation code that propagates coverage across joins
// (Fig 10 coverage-estimation formulas).
func NewCoverage(grid Grid) *Coverage {
	return &Coverage{grid: grid, frac: make(map[cellKey]map[cellKey]float64)}
}

// SetFrac sets Cvg[i][j][m][n]. Setting zero removes the entry.
func (c *Coverage) SetFrac(i, j, m, n int, f float64) {
	c.flat.Store(nil)
	v := key(i, j)
	if f == 0 {
		if byA, ok := c.frac[v]; ok {
			delete(byA, key(m, n))
			if len(byA) == 0 {
				delete(c.frac, v)
			}
		}
		return
	}
	byA := c.frac[v]
	if byA == nil {
		byA = make(map[cellKey]float64)
		c.frac[v] = byA
	}
	byA[key(m, n)] = f
}

// Clone returns a deep copy.
func (c *Coverage) Clone() *Coverage {
	out := &Coverage{grid: c.grid, frac: make(map[cellKey]map[cellKey]float64, len(c.frac))}
	for v, byA := range c.frac {
		m := make(map[cellKey]float64, len(byA))
		for a, f := range byA {
			m[a] = f
		}
		out.frac[v] = m
	}
	return out
}

// Grid returns the coverage histogram's grid.
func (c *Coverage) Grid() Grid { return c.grid }

// Frac returns Cvg[i][j][m][n]: the fraction of nodes in cell (i, j)
// covered by P-nodes in cell (m, n).
func (c *Coverage) Frac(i, j, m, n int) float64 {
	byA, ok := c.frac[key(i, j)]
	if !ok {
		return 0
	}
	return byA[key(m, n)]
}

// CoveredFrac returns the total fraction of nodes in cell (i, j) that
// are covered by any P node (the sum over all ancestor cells). It reads
// the flattened form's precomputed row sum, so repeated calls on a
// built histogram never re-walk a map; the summation order inside each
// row is the sorted ancestor order, matching EachFrac.
func (c *Coverage) CoveredFrac(i, j int) float64 {
	return c.Flatten().CoveredFrac(i, j)
}

// EachFrac calls fn for every stored (non-zero) coverage entry, in
// ascending (i, j, m, n) order. The sorted order makes estimation
// arithmetic deterministic (floating-point accumulation is order-
// sensitive, and map iteration order is not stable); the flattened
// CSR form is cached until the next SetFrac (see Flatten).
func (c *Coverage) EachFrac(fn func(i, j, m, n int, f float64)) {
	c.Flatten().Each(fn)
}

// PartialCells returns the number of stored cell pairs whose coverage is
// strictly between 0 and 1 — the quantity Theorem 2 bounds by O(g).
func (c *Coverage) PartialCells() int {
	const eps = 1e-12
	n := 0
	for _, byA := range c.frac {
		for _, f := range byA {
			if f > eps && f < 1-eps {
				n++
			}
		}
	}
	return n
}

// Entries returns the total number of stored (non-zero) entries.
func (c *Coverage) Entries() int {
	n := 0
	for _, byA := range c.frac {
		n += len(byA)
	}
	return n
}
