package core

import (
	"math"
	"testing"

	"xmlest/internal/histogram"
	"xmlest/internal/match"
	"xmlest/internal/pattern"
	"xmlest/internal/predicate"
	"xmlest/internal/xmltree"
)

// recursiveDoc builds a document where sections nest inside sections,
// so parent-child counts differ sharply from ancestor-descendant
// counts.
func recursiveDoc() *xmltree.Tree {
	b := xmltree.NewBuilder()
	b.Begin("root")
	for i := 0; i < 50; i++ {
		b.Begin("sec") // depth 2
		b.Element("p", "")
		b.Begin("sec") // depth 3
		b.Element("p", "")
		b.Begin("sec") // depth 4
		b.Element("p", "")
		b.End()
		b.End()
		b.End()
	}
	b.End()
	return b.Tree()
}

func TestBuildLevelHistograms(t *testing.T) {
	tr := recursiveDoc()
	grid := histogram.MustUniformGrid(8, tr.MaxPos)
	l := BuildLevelHistograms(tr, tr.NodesWithTag("sec"), grid)
	depths := l.Depths()
	if len(depths) != 3 {
		t.Fatalf("depths = %v, want 3 occupied depths", depths)
	}
	if l.Total() != 150 {
		t.Errorf("total = %v, want 150", l.Total())
	}
	for _, d := range depths {
		if l.At(d).Total() != 50 {
			t.Errorf("depth %d total = %v, want 50", d, l.At(d).Total())
		}
	}
	if l.At(99) != nil {
		t.Errorf("empty depth should be nil")
	}
	if l.StorageBytes() <= 0 {
		t.Errorf("storage bytes must be positive")
	}
}

func TestEstimateParentChildVsAncestorDescendant(t *testing.T) {
	tr := recursiveDoc()
	grid := histogram.MustUniformGrid(10, tr.MaxPos)

	secs := tr.NodesWithTag("sec")
	ps := tr.NodesWithTag("p")
	realPC := float64(match.CountChildPairs(tr, secs, ps)) // 150: every p is a sec child
	realAD := float64(match.CountPairs(tr, secs, ps))      // 300: nesting multiplies

	la := BuildLevelHistograms(tr, secs, grid)
	lb := BuildLevelHistograms(tr, ps, grid)
	pc, err := EstimateParentChild(la, lb)
	if err != nil {
		t.Fatalf("EstimateParentChild: %v", err)
	}
	ad, err := EstimateAncestorBased(
		histogram.BuildPosition(tr, secs, grid),
		histogram.BuildPosition(tr, ps, grid))
	if err != nil {
		t.Fatalf("EstimateAncestorBased: %v", err)
	}
	t.Logf("parent-child: est %v real %v; anc-desc: est %v real %v", pc, realPC, ad.Total(), realAD)
	if math.Abs(pc-realPC) >= math.Abs(ad.Total()-realPC) {
		t.Errorf("level-based parent-child estimate %v should beat the anc-desc estimate %v for real %v",
			pc, ad.Total(), realPC)
	}
	if pc > ad.Total()+1e-9 {
		t.Errorf("parent-child estimate %v cannot exceed anc-desc estimate %v", pc, ad.Total())
	}
}

func TestEstimateAtDistance(t *testing.T) {
	tr := recursiveDoc()
	grid := histogram.MustUniformGrid(10, tr.MaxPos)
	secs := BuildLevelHistograms(tr, tr.NodesWithTag("sec"), grid)

	// sec at distance 1 below sec: 100 real pairs (depth2->3, 3->4).
	d1, err := EstimateAtDistance(secs, secs, 1)
	if err != nil {
		t.Fatalf("EstimateAtDistance: %v", err)
	}
	// distance 2: 50 real pairs (depth2->4).
	d2, err := EstimateAtDistance(secs, secs, 2)
	if err != nil {
		t.Fatalf("EstimateAtDistance: %v", err)
	}
	// distance 5: impossible.
	d5, err := EstimateAtDistance(secs, secs, 5)
	if err != nil {
		t.Fatalf("EstimateAtDistance: %v", err)
	}
	t.Logf("d1=%v d2=%v d5=%v", d1, d2, d5)
	if d1 <= d2 {
		t.Errorf("distance-1 estimate %v should exceed distance-2 estimate %v", d1, d2)
	}
	if d5 != 0 {
		t.Errorf("distance-5 estimate = %v, want 0", d5)
	}
}

func TestEstimatorParentChildIntegration(t *testing.T) {
	tr := recursiveDoc()
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()

	withLevels, err := NewEstimator(cat, Options{GridSize: 10, LevelHistograms: true})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	without, err := NewEstimator(cat, Options{GridSize: 10})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}

	res, err := withLevels.EstimatePairParentChild("tag=sec", "tag=p")
	if err != nil {
		t.Fatalf("EstimatePairParentChild: %v", err)
	}
	realPC := float64(match.CountChildPairs(tr, tr.NodesWithTag("sec"), tr.NodesWithTag("p")))
	if ratio := res.Estimate / realPC; ratio < 0.5 || ratio > 1.5 {
		t.Errorf("parent-child estimate %v vs real %v", res.Estimate, realPC)
	}
	if _, err := without.EstimatePairParentChild("tag=sec", "tag=p"); err == nil {
		t.Errorf("EstimatePairParentChild without levels: want error")
	}

	// Twig with a child edge: level-aware estimator must be at least as
	// close to the real child-pair count as the level-blind one.
	p := pattern.MustParse("//sec/p")
	realTwig, err := match.CountTwig(tr, p, func(name string) ([]xmltree.NodeID, error) {
		e, err := cat.Get(name)
		if err != nil {
			return nil, err
		}
		return e.Nodes, nil
	})
	if err != nil {
		t.Fatalf("CountTwig: %v", err)
	}
	rl, err := withLevels.EstimateTwig(p)
	if err != nil {
		t.Fatalf("EstimateTwig(levels): %v", err)
	}
	rb, err := without.EstimateTwig(p)
	if err != nil {
		t.Fatalf("EstimateTwig(blind): %v", err)
	}
	t.Logf("real=%v with-levels=%v blind=%v", realTwig, rl.Estimate, rb.Estimate)
	if math.Abs(rl.Estimate-realTwig) > math.Abs(rb.Estimate-realTwig)+1e-9 {
		t.Errorf("level-aware twig estimate %v should beat level-blind %v (real %v)",
			rl.Estimate, rb.Estimate, realTwig)
	}
}

func TestLevelsAccessor(t *testing.T) {
	tr := recursiveDoc()
	cat := predicate.NewCatalog(tr)
	cat.AddAllTags()
	e, err := NewEstimator(cat, Options{GridSize: 4, LevelHistograms: true})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	if e.Levels("tag=sec") == nil {
		t.Errorf("levels missing for tag=sec")
	}
	if e.Levels("tag=nosuch") != nil {
		t.Errorf("levels for unknown predicate should be nil")
	}
	blind, err := NewEstimator(cat, Options{GridSize: 4})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	if blind.Levels("tag=sec") != nil {
		t.Errorf("levels should be nil when not requested")
	}
}
