// Package trace is the daemon's pipeline-stage tracing layer: named
// stages of the estimate and append paths, per-stage duration
// histograms exported to /metrics, and a sampled per-request Trace
// that records one request's stage breakdown for the slow-request
// log.
//
// The design goal is near-zero overhead on the hot path:
//
//   - Recorders are plain latency histograms — one wait-free atomic
//     Observe per stage, no allocation, cheap enough to run on every
//     append batch unconditionally.
//   - Per-request Traces are SAMPLED (1 in N requests) and pooled;
//     an unsampled request costs one atomic counter increment and
//     carries a nil *Trace, every method of which no-ops, so the
//     zero-allocation /estimate path stays zero-allocation.
//   - The slow-request log is rate-limited (a few lines per second),
//     so a latency storm cannot turn the logger into a second outage.
package trace

import (
	"context"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xmlest/internal/metrics"
)

// Stage names one pipeline stage. The estimate path and the append
// path each use their own subset; recorders only materialize the
// stages they are declared with.
type Stage uint8

const (
	// Estimate path.
	StageDecode   Stage = iota // JSON request decode
	StagePin                   // snapshot pin (estimator binding)
	StageMerged                // batch estimate served by a fresh merged fold
	StageFanout                // batch estimate served by per-shard fan-out
	StageEncode                // JSON response encode

	// Append path.
	StageQueueWait    // arrival at the ingest coalescer -> dispatch slot acquired
	StageCoalesceWait // dispatch -> group formed (greedy drain + commit-delay budget)
	StageParse        // XML parse of the (possibly merged) group
	StageBuild        // predicate catalog + summary build
	StageWALSubmit    // commit-queue wait: submission -> commit callback
	StageFsyncWait    // WAL group write + fsync
	StageInstall      // shard-set install under the write lock

	NumStages // sentinel; not a stage
)

var stageNames = [NumStages]string{
	"decode", "snapshot_pin", "estimate_merged", "estimate_fanout", "encode",
	"queue_wait", "coalesce_wait", "parse", "build", "wal_submit", "fsync_wait", "install",
}

// String returns the stage's exposition label.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// EstimateStages is the estimate path's stage subset.
var EstimateStages = []Stage{StageDecode, StagePin, StageMerged, StageFanout, StageEncode}

// AppendStages is the append pipeline's stage subset.
var AppendStages = []Stage{StageQueueWait, StageCoalesceWait, StageParse, StageBuild,
	StageWALSubmit, StageFsyncWait, StageInstall}

// Recorder aggregates per-stage duration histograms under one
// exposition family. Observe is wait-free and allocation-free; a nil
// Recorder ignores observations, so instrumented code never needs a
// nil check.
type Recorder struct {
	family string
	help   string
	stages []Stage
	hists  [NumStages]*metrics.LatencyHistogram
}

// NewRecorder returns a recorder exporting the given stages as the
// histogram family `family{stage="..."}`.
func NewRecorder(family, help string, stages ...Stage) *Recorder {
	r := &Recorder{family: family, help: help, stages: stages}
	for _, s := range stages {
		r.hists[s] = metrics.NewLatencyHistogram()
	}
	return r
}

// Observe records one stage duration. Stages the recorder was not
// declared with, and nil recorders, are ignored.
func (r *Recorder) Observe(s Stage, d time.Duration) {
	if r == nil || s >= NumStages || r.hists[s] == nil {
		return
	}
	r.hists[s].Observe(d)
}

// Histogram returns the stage's histogram (nil when not declared).
func (r *Recorder) Histogram(s Stage) *metrics.LatencyHistogram {
	if r == nil || s >= NumStages {
		return nil
	}
	return r.hists[s]
}

// Collect writes the recorder's family: one labeled histogram series
// per declared stage.
func (r *Recorder) Collect(e *metrics.Expo) {
	e.HistogramFamily(r.family, r.help)
	for _, s := range r.stages {
		e.LatencySamples(r.family, r.hists[s], "stage", s.String())
	}
}

// maxSteps bounds one trace's recorded stages; both paths use far
// fewer.
const maxSteps = 8

// Trace is one sampled request's stage breakdown. It is pooled by the
// Tracer; all methods are nil-safe, so unsampled requests carry a nil
// *Trace at zero cost. A Trace is owned by one request goroutine and
// is not safe for concurrent use.
type Trace struct {
	mark   time.Time
	n      int
	stages [maxSteps]Stage
	durs   [maxSteps]time.Duration
}

// Begin (re)starts the stage clock.
func (t *Trace) Begin() {
	if t == nil {
		return
	}
	t.mark = time.Now()
}

// Step closes the current stage: the time since Begin or the previous
// Step is recorded under s, and the clock restarts.
func (t *Trace) Step(s Stage) {
	if t == nil {
		return
	}
	now := time.Now()
	t.add(s, now.Sub(t.mark))
	t.mark = now
}

// Add records an explicitly measured stage duration without touching
// the stage clock.
func (t *Trace) Add(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.add(s, d)
}

func (t *Trace) add(s Stage, d time.Duration) {
	if t.n < maxSteps {
		t.stages[t.n] = s
		t.durs[t.n] = d
		t.n++
	}
}

// breakdown renders "decode=12µs estimate_merged=3.1ms encode=8µs".
func (t *Trace) breakdown() string {
	if t == nil || t.n == 0 {
		return ""
	}
	b := make([]byte, 0, 96)
	for i := 0; i < t.n; i++ {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, t.stages[i].String()...)
		b = append(b, '=')
		b = append(b, t.durs[i].String()...)
	}
	return string(b)
}

// Config tunes a Tracer.
type Config struct {
	// SampleEvery samples 1 in N requests for per-stage histograms and
	// slow-log breakdowns; <= 0 disables sampling entirely (Start
	// always returns nil).
	SampleEvery int
	// SlowThreshold logs any request slower than this (with the stage
	// breakdown when the request was sampled); 0 disables the slow log.
	SlowThreshold time.Duration
	// Logger receives slow-request lines; nil disables the slow log.
	Logger *slog.Logger
	// Recorder receives sampled stage durations; nil discards them.
	Recorder *Recorder
}

// maxSlowLogsPerSec bounds the slow-request log's output rate.
const maxSlowLogsPerSec = 8

// Tracer hands out sampled Traces and owns the slow-request log. A
// nil Tracer is valid and disables everything.
type Tracer struct {
	cfg  Config
	n    atomic.Uint64
	pool sync.Pool

	slowSec atomic.Int64 // second the slow-log token bucket was filled for
	slowN   atomic.Int64 // lines emitted within slowSec
}

// New returns a tracer for cfg.
func New(cfg Config) *Tracer {
	t := &Tracer{cfg: cfg}
	t.pool.New = func() any { return &Trace{} }
	return t
}

// SampleEvery reports the tracer's sampling stride (0 when disabled
// or nil).
func (tr *Tracer) SampleEvery() int {
	if tr == nil || tr.cfg.SampleEvery <= 0 {
		return 0
	}
	return tr.cfg.SampleEvery
}

// Start returns a pooled Trace for 1 in SampleEvery calls and nil
// otherwise. The caller must pass the Trace (nil or not) to Finish.
func (tr *Tracer) Start() *Trace {
	if tr == nil || tr.cfg.SampleEvery <= 0 {
		return nil
	}
	if tr.n.Add(1)%uint64(tr.cfg.SampleEvery) != 0 {
		return nil
	}
	t := tr.pool.Get().(*Trace)
	t.n = 0
	t.mark = time.Now()
	return t
}

// Finish completes one request: a sampled trace's stage durations
// flush into the recorder and the trace returns to the pool; any
// request over the slow threshold is logged (rate-limited), with the
// full stage breakdown when it was sampled.
func (tr *Tracer) Finish(t *Trace, endpoint, requestID string, total time.Duration, status int) {
	if tr == nil {
		return
	}
	var stages string
	if t != nil {
		for i := 0; i < t.n; i++ {
			tr.cfg.Recorder.Observe(t.stages[i], t.durs[i])
		}
		if tr.cfg.SlowThreshold > 0 && total >= tr.cfg.SlowThreshold {
			stages = t.breakdown()
		}
		tr.pool.Put(t)
	}
	if tr.cfg.SlowThreshold == 0 || tr.cfg.Logger == nil || total < tr.cfg.SlowThreshold {
		return
	}
	if !tr.allowSlowLog() {
		return
	}
	attrs := make([]any, 0, 10)
	attrs = append(attrs,
		"endpoint", endpoint,
		"request_id", requestID,
		"duration", total.String(),
		"status", status,
		"threshold", tr.cfg.SlowThreshold.String(),
	)
	if stages != "" {
		attrs = append(attrs, "stages", stages)
	}
	tr.cfg.Logger.Warn("slow request", attrs...)
}

// allowSlowLog is a one-second token bucket: at most
// maxSlowLogsPerSec lines per wall second.
func (tr *Tracer) allowSlowLog() bool {
	sec := time.Now().Unix()
	if tr.slowSec.Load() != sec {
		tr.slowSec.Store(sec)
		tr.slowN.Store(0)
	}
	return tr.slowN.Add(1) <= maxSlowLogsPerSec
}

// ctxKey keys the request's Trace in a context.
type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's Trace, or nil — safe to use
// directly, since all Trace methods accept a nil receiver.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// RequestIDHeader is the propagated request-ID header: accepted from
// clients, generated when absent, echoed on every response and
// attached to request-scoped log lines.
const RequestIDHeader = "X-Request-ID"

var (
	reqSeq    atomic.Uint64
	reqPrefix = func() string {
		// A per-process prefix keeps IDs from colliding across
		// restarts without needing crypto randomness.
		return strconv.FormatUint(uint64(time.Now().UnixNano())&0xffffff, 16)
	}()
)

// NewRequestID generates a process-unique request ID:
// "<boot-prefix>-<counter>".
func NewRequestID() string {
	n := reqSeq.Add(1)
	b := make([]byte, 0, 20)
	b = append(b, reqPrefix...)
	b = append(b, '-')
	b = strconv.AppendUint(b, n, 10)
	return string(b)
}
