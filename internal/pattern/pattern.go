// Package pattern models the paper's twig queries (Section 2): small
// rooted node-labeled trees whose node labels are predicate references
// and whose edges demand ancestor-descendant (the paper's focus) or
// parent-child (tech-report extension) relationships.
//
// Patterns are written in a small XPath-like syntax:
//
//	//faculty//TA                 a 2-node chain (ancestor-descendant)
//	//department/faculty          parent-child edge
//	//faculty[.//TA][.//RA]       the Fig 2 twig
//	//article//{1990's}           reference to a named catalog predicate
//	//*//author                   * is the TRUE predicate
package pattern

import (
	"fmt"
	"strings"
)

// Axis is the structural relationship between a pattern node and its
// parent pattern node.
type Axis int

const (
	// Descendant requires the matched data node to be a proper
	// descendant of the parent's match ("//" in the syntax).
	Descendant Axis = iota
	// Child requires the matched data node to be a direct child of the
	// parent's match ("/" in the syntax).
	Child
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// Node is one node of a twig pattern.
type Node struct {
	// Test is the node's predicate reference: a bare element tag, a
	// braced catalog predicate name, or "*" for TRUE.
	Test string

	// Axis relates this node to its parent pattern node. The root's
	// axis relates it to the (dummy) document root and is always
	// Descendant in practice.
	Axis Axis

	// Children are the node's pattern children in syntax order.
	Children []*Node
}

// PredName resolves the node's test to a catalog predicate name: bare
// tags become "tag=<name>", braced references are used verbatim, and
// "*" names the TRUE predicate.
func (n *Node) PredName() string {
	switch {
	case n.Test == "*":
		return "TRUE"
	case strings.HasPrefix(n.Test, "{") && strings.HasSuffix(n.Test, "}"):
		return n.Test[1 : len(n.Test)-1]
	default:
		return "tag=" + n.Test
	}
}

// Pattern is a parsed twig query.
type Pattern struct {
	Root *Node
	src  string
}

// String returns the pattern in its source syntax.
func (p *Pattern) String() string {
	if p.src != "" {
		return p.src
	}
	var b strings.Builder
	writeNode(&b, p.Root, true)
	return b.String()
}

func writeNode(b *strings.Builder, n *Node, root bool) {
	b.WriteString(n.Axis.String())
	b.WriteString(n.Test)
	// All children but the last render as qualifiers; the last child
	// continues the main path, matching how the parser builds chains.
	for i, c := range n.Children {
		if i < len(n.Children)-1 {
			b.WriteString("[.")
			writeNode(b, c, false)
			b.WriteString("]")
		} else {
			writeNode(b, c, false)
		}
	}
}

// Nodes returns all pattern nodes in pre-order.
func (p *Pattern) Nodes() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	return out
}

// Size returns the number of pattern nodes.
func (p *Pattern) Size() int { return len(p.Nodes()) }

// IsPath reports whether the pattern is a simple path (every node has at
// most one child).
func (p *Pattern) IsPath() bool {
	for _, n := range p.Nodes() {
		if len(n.Children) > 1 {
			return false
		}
	}
	return true
}

// Edges returns all (parent, child) pattern node pairs in pre-order.
func (p *Pattern) Edges() [][2]*Node {
	var out [][2]*Node
	var walk func(*Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			out = append(out, [2]*Node{n, c})
			walk(c)
		}
	}
	walk(p.Root)
	return out
}

// Parse parses the XPath-like twig syntax.
func Parse(src string) (*Pattern, error) {
	p := &parser{src: src}
	root, err := p.parsePath()
	if err != nil {
		return nil, fmt.Errorf("pattern: %w", err)
	}
	if !p.eof() {
		return nil, fmt.Errorf("pattern: trailing input at offset %d in %q", p.off, src)
	}
	return &Pattern{Root: root, src: src}, nil
}

// MustParse is Parse for statically known patterns.
func MustParse(src string) *Pattern {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	src string
	off int
}

func (p *parser) eof() bool { return p.off >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.off]
}

// parsePath parses axis-step chains like //a/b[...]//c and returns the
// first step's node (the chain head).
func (p *parser) parsePath() (*Node, error) {
	head, err := p.parseStep()
	if err != nil {
		return nil, err
	}
	cur := head
	for !p.eof() && p.peek() == '/' {
		next, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		cur.Children = append(cur.Children, next)
		cur = next
	}
	return head, nil
}

// parseStep parses one axis + node test + qualifiers.
func (p *parser) parseStep() (*Node, error) {
	axis := Descendant
	switch {
	case strings.HasPrefix(p.src[p.off:], "//"):
		p.off += 2
	case strings.HasPrefix(p.src[p.off:], "/"):
		p.off++
		axis = Child
	default:
		return nil, fmt.Errorf("expected axis at offset %d in %q", p.off, p.src)
	}
	test, err := p.parseTest()
	if err != nil {
		return nil, err
	}
	n := &Node{Test: test, Axis: axis}
	for !p.eof() && p.peek() == '[' {
		p.off++ // consume '['
		if p.peek() == '.' {
			p.off++
		}
		child, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if p.eof() || p.peek() != ']' {
			return nil, fmt.Errorf("missing ] at offset %d in %q", p.off, p.src)
		}
		p.off++
		n.Children = append(n.Children, child)
	}
	return n, nil
}

func (p *parser) parseTest() (string, error) {
	if p.eof() {
		return "", fmt.Errorf("expected node test at end of %q", p.src)
	}
	if p.peek() == '*' {
		p.off++
		return "*", nil
	}
	if p.peek() == '{' {
		end := strings.IndexByte(p.src[p.off:], '}')
		if end < 0 {
			return "", fmt.Errorf("unterminated { at offset %d in %q", p.off, p.src)
		}
		test := p.src[p.off : p.off+end+1]
		if len(test) == 2 {
			return "", fmt.Errorf("empty {} at offset %d in %q", p.off, p.src)
		}
		p.off += end + 1
		return test, nil
	}
	start := p.off
	for !p.eof() && isNameByte(p.peek()) {
		p.off++
	}
	if p.off == start {
		return "", fmt.Errorf("expected node test at offset %d in %q", p.off, p.src)
	}
	return p.src[start:p.off], nil
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == '@' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
