package core

import (
	"strconv"
	"strings"
	"sync"
	"time"

	"xmlest/internal/cache"
	"xmlest/internal/pattern"
)

// Compiled twig queries. A PreparedQuery binds a parsed pattern to an
// estimator with every predicate reference resolved up front, and
// caches the folded root sub-pattern after the first evaluation:
// estimates are pure functions of the estimator's immutable histograms,
// so a hot query answers subsequent calls from the cached fold. Distinct
// queries sharing sub-twigs also benefit through the estimator-level
// join cache below. See DESIGN.md, "Summary pipeline & performance".

// joinCacheSize bounds the estimator-level sub-pattern join cache. Each
// entry holds a folded SubPattern (two g×g histograms plus a sparse
// coverage map), so the bound keeps the cache within a few megabytes at
// the paper's grid sizes.
const joinCacheSize = 256

// cachedJoin is a folded sub-pattern with the no-overlap usage flag.
type cachedJoin struct {
	sp   SubPattern
	noOv bool
}

// joinLRU memoizes folded sub-patterns by canonical sub-twig signature.
type joinLRU = cache.LRU[string, cachedJoin]

// joins returns the lazily-initialized join cache (estimators built by
// UnmarshalEstimator do not pass through NewEstimator).
func (e *Estimator) joins() *joinLRU {
	e.cacheOnce.Do(func() {
		e.joinCache = cache.New[string, cachedJoin](joinCacheSize)
	})
	return e.joinCache
}

// subtreeSig renders the canonical signature of the sub-twig rooted at
// q: the anchor predicate name followed by each child edge's axis and
// the child's signature, in syntax order. Predicate names are
// length-prefixed because catalog aliases may contain any byte —
// including the structural markers — so the encoding stays injective
// on (predicate names, axes, shape) and equal signatures fold to
// identical sub-patterns.
func subtreeSig(q *pattern.Node) string {
	var b strings.Builder
	writeSig(&b, q)
	return b.String()
}

func writeSig(b *strings.Builder, q *pattern.Node) {
	name := q.PredName()
	b.WriteString(strconv.Itoa(len(name)))
	b.WriteByte(':')
	b.WriteString(name)
	for _, qc := range q.Children {
		b.WriteByte('[')
		b.WriteString(qc.Axis.String())
		writeSig(b, qc)
		b.WriteByte(']')
	}
}

// PreparedQuery is a twig pattern compiled against one estimator:
// parsed once, predicate references resolved once, and the folded root
// sub-pattern cached across calls. A PreparedQuery is safe for
// concurrent use and stays valid for the estimator's lifetime: the
// histograms it folds are immutable after construction, and Synthesize
// (which must not run concurrently with estimation) only adds
// predicates, never replacing ones a compiled query references.
type PreparedQuery struct {
	e *Estimator
	p *pattern.Pattern

	once sync.Once
	res  cachedJoin
	err  error
}

// Prepare compiles a parsed pattern against the estimator. Every
// predicate reference is resolved eagerly, so an unknown name fails
// here rather than on first evaluation.
func (e *Estimator) Prepare(p *pattern.Pattern) (*PreparedQuery, error) {
	for _, n := range p.Nodes() {
		if _, err := e.Histogram(n.PredName()); err != nil {
			return nil, err
		}
	}
	return &PreparedQuery{e: e, p: p}, nil
}

// PrepareShared is Prepare memoized by pattern identity: repeated
// calls with the same *pattern.Pattern return one shared compiled
// query (and therefore one cached fold). Sharded serving rebinds every
// compiled query whenever the shard set changes — under ingest that is
// hundreds of rebinds per second across hundreds of per-shard
// summaries, and this cache turns each per-shard rebind into a single
// lock-free map load instead of re-resolving predicates and re-probing
// the sub-twig join cache. Entries live for the estimator's lifetime;
// callers (the facade's bounded compiled-query cache) bound the
// distinct pattern objects in play.
func (e *Estimator) PrepareShared(p *pattern.Pattern) (*PreparedQuery, error) {
	if q, ok := e.prepared.Load(p); ok {
		return q.(*PreparedQuery), nil
	}
	q, err := e.Prepare(p)
	if err != nil {
		return nil, err
	}
	if actual, loaded := e.prepared.LoadOrStore(p, q); loaded {
		return actual.(*PreparedQuery), nil
	}
	// Crude size bound: a client cycling unboundedly many distinct
	// pattern objects must not grow a long-lived shard summary without
	// limit, so past the cap the cache resets wholesale (folds rebuild
	// from the join cache, so a reset costs latency, not correctness).
	// The count is approximate under races; that only varies the reset
	// point by a few entries.
	if e.preparedN.Add(1) > preparedCacheLimit {
		e.prepared.Range(func(k, _ any) bool {
			e.prepared.Delete(k)
			return true
		})
		e.preparedN.Store(1)
		e.prepared.Store(p, q)
	}
	return q, nil
}

// preparedCacheLimit bounds the per-estimator shared compiled-query
// cache (see PrepareShared).
const preparedCacheLimit = 1024

// Pattern returns the compiled pattern.
func (pq *PreparedQuery) Pattern() *pattern.Pattern { return pq.p }

// Estimate returns the twig's estimated answer size. The first call
// folds the pattern (possibly hitting the estimator's sub-twig join
// cache); later calls reuse the folded result.
func (pq *PreparedQuery) Estimate() (Result, error) {
	start := time.Now()
	est, noOv, err := pq.Value()
	if err != nil {
		return Result{}, err
	}
	return Result{
		Estimate:      est,
		Elapsed:       time.Since(start),
		UsedNoOverlap: noOv,
	}, nil
}

// Value is the zero-overhead form of Estimate: the estimate and
// no-overlap flag without a Result or clock reads. Sharded serving sums
// one Value per shard on every request, so the per-shard cost here is
// the fan-out hot path; after the first call it is a pair of atomic
// loads and a float read.
func (pq *PreparedQuery) Value() (est float64, usedNoOverlap bool, err error) {
	pq.once.Do(func() {
		sp, noOv, err := pq.e.buildSubPattern(pq.p.Root)
		if err == nil {
			err = sp.validate()
		}
		pq.res, pq.err = cachedJoin{sp: sp, noOv: noOv}, err
	})
	if pq.err != nil {
		return 0, false, pq.err
	}
	return pq.res.sp.Total(), pq.res.noOv, nil
}

// EstimateSubPattern returns the folded root sub-pattern (estimate,
// participation, coverage), for optimizers needing intermediate
// results. The returned histograms are shared with the cache and must
// not be mutated.
func (pq *PreparedQuery) EstimateSubPattern() (SubPattern, error) {
	if _, err := pq.Estimate(); err != nil {
		return SubPattern{}, err
	}
	return pq.res.sp, nil
}
