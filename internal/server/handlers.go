package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"xmlest"
	"xmlest/internal/accuracy"
	"xmlest/internal/metrics"
	"xmlest/internal/trace"
	"xmlest/internal/version"
)

// Wire types. Versions let clients reason about snapshot visibility:
// an /append response's version is the first snapshot containing the
// new shard, and any /estimate response with version >= it reflects
// the appended documents — the append-to-visible contract xqbench
// measures.

// EstimateRequest asks for one pattern or a batch. Pattern and
// Patterns may be combined; Pattern is estimated first.
type EstimateRequest struct {
	Pattern  string   `json:"pattern,omitempty"`
	Patterns []string `json:"patterns,omitempty"`
}

// EstimateResult is one pattern's estimate.
type EstimateResult struct {
	Pattern       string  `json:"pattern"`
	Estimate      float64 `json:"estimate"`
	ElapsedNS     int64   `json:"elapsed_ns"`
	UsedNoOverlap bool    `json:"used_no_overlap"`
}

// EstimateResponse reports the snapshot version every result was
// computed against. Estimate echoes the first result for one-pattern
// requests.
type EstimateResponse struct {
	Version  uint64           `json:"version"`
	Estimate *float64         `json:"estimate,omitempty"`
	Results  []EstimateResult `json:"results"`
}

// AppendResponse describes the landed shard and the first snapshot
// version that serves it. On a durable daemon it also reports the
// batch's write-ahead-log sequence and whether that record is already
// fsynced — the ack-to-durable contract xqbench measures: under
// -fsync always Durable is true in the ack itself; under interval/off
// clients can poll /stats until durability.durable_seq reaches WALSeq.
type AppendResponse struct {
	ShardID uint64 `json:"shard_id"`
	Docs    int    `json:"docs"`
	Nodes   int    `json:"nodes"`
	Version uint64 `json:"version"`
	WALSeq  uint64 `json:"wal_seq,omitempty"`
	Durable *bool  `json:"durable,omitempty"`
	// Streamed marks a summary-only shard built by /append-stream: the
	// raw document was never retained, so the shard cannot seed future
	// predicate rebuilds, and on durable servers its ack is a
	// checkpoint rather than a WAL record (WALSeq is 0).
	Streamed bool `json:"streamed,omitempty"`
}

// AppendRequest is the JSON ingest form: each document is one XML
// string; the batch lands as a single shard.
type AppendRequest struct {
	Documents []string `json:"documents"`
}

// CompactRequest optionally overrides the policy's shard-count target.
type CompactRequest struct {
	MaxShards int `json:"max_shards,omitempty"`
}

// CompactResponse reports one compaction round's outcome.
type CompactResponse struct {
	Merged  int    `json:"merged"`
	Shards  int    `json:"shards"`
	Version uint64 `json:"version"`
}

// ShardJSON describes one live shard. InstalledAt is the first
// snapshot version that served it (0 for loaded, store-less sets);
// WALSeq is the shard's write-ahead-log watermark on a durable daemon.
type ShardJSON struct {
	ID          uint64 `json:"id"`
	Docs        int    `json:"docs"`
	Nodes       int    `json:"nodes"`
	SummaryOnly bool   `json:"summary_only"`
	InstalledAt uint64 `json:"installed_at"`
	WALSeq      uint64 `json:"wal_seq,omitempty"`
}

// ShardsResponse lists the serving shard set.
type ShardsResponse struct {
	Version uint64      `json:"version"`
	Shards  []ShardJSON `json:"shards"`
}

// StatsResponse is the daemon's introspection surface: corpus shape,
// summary size, and per-endpoint serving metrics.
type StatsResponse struct {
	UptimeSeconds   float64              `json:"uptime_seconds"`
	Version         uint64               `json:"version"`
	ReadOnly        bool                 `json:"read_only"`
	Corpus          xmlest.DatabaseStats `json:"corpus"`
	SummaryBytes    int                  `json:"summary_bytes"`
	GridSize        int                  `json:"grid_size"`
	AutoCompactions uint64               `json:"auto_compact_rounds"`
	AutoMerged      uint64               `json:"auto_compact_merged"`
	AppendedDocs    uint64               `json:"appended_docs"`
	// Merged reports the merged-summary serving state: when Fresh, hot
	// estimates are answered by one folded summary instead of an
	// O(shards) fan-out. Absent for read-only servers loaded from a
	// summary blob (no store to fold).
	Merged    *xmlest.MergedInfo         `json:"merged,omitempty"`
	Endpoints []metrics.EndpointSnapshot `json:"endpoints"`
	// Patterns lists the most-requested estimate patterns (bounded
	// top-K tracking; UntrackedPatterns counts requests for patterns
	// beyond the tracked set).
	Patterns          []metrics.PatternSnapshot `json:"patterns,omitempty"`
	UntrackedPatterns uint64                    `json:"untracked_patterns,omitempty"`
	// Accuracy reports the online shadow-execution monitor: sampling
	// pipeline counters and the verified q-error digest. Absent when
	// shadow sampling is disabled. Per-pattern q-error digests appear
	// inside Patterns entries.
	Accuracy *accuracy.MonitorSnapshot `json:"accuracy,omitempty"`
	// Build identifies the serving binary.
	Build string `json:"build"`
	// Durability reports the data directory's state (WAL size, fsync
	// watermarks, checkpoints, boot recovery) on a durable daemon;
	// absent otherwise.
	Durability *xmlest.DurabilityStats `json:"durability,omitempty"`
	// Replication reports the node's role and full replication state:
	// follower lag and counters, leader stream counters.
	Replication *ReplicationJSON `json:"replication,omitempty"`
}

// DegradedJSON names the failed component on a degraded daemon: "wal"
// (log sealed; mutations refused until restart), "checkpoint" (last
// checkpoint failed; retried with backoff) or "replication" (follower
// past its staleness budget; reads serve the last applied state).
type DegradedJSON struct {
	Component string `json:"component"`
	Reason    string `json:"reason"`
}

// ReplicationJSON is the replication role and state, on /healthz (the
// cheap subset monitors poll) and /stats (everything).
type ReplicationJSON struct {
	// Role is "leader" (durable; serves /wal/stream), "follower"
	// (replicating from Upstream; also serves /wal/stream for chaining)
	// or "standalone" (non-durable; nothing to ship).
	Role     string `json:"role"`
	Upstream string `json:"upstream,omitempty"`
	// Follower-side lag: sequences behind the leader's durable WAL
	// watermark, and seconds since the leader was last heard from.
	Connected  *bool    `json:"connected,omitempty"`
	LeaderSeq  *uint64  `json:"leader_seq,omitempty"`
	AppliedSeq *uint64  `json:"applied_seq,omitempty"`
	LagSeq     *uint64  `json:"lag_seq,omitempty"`
	LagSeconds *float64 `json:"lag_seconds,omitempty"`
	Stale      bool     `json:"stale,omitempty"`
	// Follower-side counters (stats only — omitted from /healthz).
	Reconnects       uint64 `json:"reconnects,omitempty"`
	StreamErrors     uint64 `json:"stream_errors,omitempty"`
	RecordsApplied   uint64 `json:"records_applied,omitempty"`
	SnapshotsApplied uint64 `json:"snapshots_applied,omitempty"`
	LastError        string `json:"last_error,omitempty"`
	FatalError       string `json:"fatal_error,omitempty"`
	// Leader-side counters (stats only).
	ActiveStreams *int64 `json:"active_streams,omitempty"`
	BytesShipped  uint64 `json:"bytes_shipped,omitempty"`
}

// HealthResponse is the /healthz body. Status is "ok", "degraded"
// (reads serve, durable mutations fail; Degraded has the component) or
// "draining" (shutdown in progress, 503).
type HealthResponse struct {
	Status  string `json:"status"`
	Version uint64 `json:"version"`
	Shards  int    `json:"shards"`
	// DurableSeq is the WAL durability watermark on daemons with a data
	// directory: every sequence ≤ it has been flushed to disk. Exposed
	// here as well as in /stats because durability monitors may poll at
	// rates the full stats encoding should not be asked to serve.
	DurableSeq *uint64       `json:"durable_seq,omitempty"`
	Degraded   *DegradedJSON `json:"degraded,omitempty"`
	// Replication reports the node's role and, on a follower, its lag —
	// the fields a health monitor needs without the full /stats body.
	Replication *ReplicationJSON `json:"replication,omitempty"`
	// Build identifies the serving binary.
	Build string `json:"build"`
}

// ErrorResponse carries a client-readable error; Degraded is set when
// the error is the storage layer's degraded state rather than the
// request's fault.
type ErrorResponse struct {
	Error    string        `json:"error"`
	Degraded *DegradedJSON `json:"degraded,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// writeFollowerRefusal rejects a mutation on a follower: its state is
// the leader's WAL, nothing else may write it.
func writeFollowerRefusal(w http.ResponseWriter, upstream, what string) {
	writeError(w, http.StatusForbidden,
		"read-only follower replicating from "+upstream+": "+what+" must go to the leader")
}

// writeDegraded rejects a mutation because a storage component failed:
// 503 with the component and reason, plus Retry-After — a "checkpoint"
// degradation clears on its own; a sealed WAL needs an operator (and a
// healthy disk) anyway.
func writeDegraded(w http.ResponseWriter, component, reason string) {
	w.Header().Set("Retry-After", "10")
	writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
		Error:    "storage degraded (" + component + "): mutations refused, reads still serve",
		Degraded: &DegradedJSON{Component: component, Reason: reason},
	})
}

// degradedJSON snapshots the database's degraded state, nil when
// healthy or non-durable.
func (s *Server) degradedJSON() *DegradedJSON {
	if s.db == nil {
		return nil
	}
	if comp, reason, bad := s.db.Degraded(); bad {
		return &DegradedJSON{Component: comp, Reason: reason}
	}
	return nil
}

// role reports the node's replication role: following beats leading
// (a follower is still durable and streamable — chained replication —
// but its defining fact is the upstream).
func (s *Server) role() string {
	switch {
	case s.follower != nil:
		return "follower"
	case s.streamer != nil:
		return "leader"
	default:
		return "standalone"
	}
}

// replicationJSON assembles the replication section. The healthz
// variant carries role, upstream, lag and staleness; full adds the
// stream counters for /stats.
func (s *Server) replicationJSON(full bool) *ReplicationJSON {
	rj := &ReplicationJSON{Role: s.role()}
	if s.follower != nil {
		fs := s.follower.Status()
		rj.Upstream = fs.Upstream
		connected := fs.Connected
		rj.Connected = &connected
		rj.LeaderSeq = &fs.LeaderSeq
		rj.AppliedSeq = &fs.AppliedSeq
		rj.LagSeq = &fs.LagSeq
		lagSec := fs.LagSeconds
		rj.LagSeconds = &lagSec
		rj.Stale = fs.Stale
		if full {
			rj.Reconnects = fs.Reconnects
			rj.StreamErrors = fs.StreamErrors
			rj.RecordsApplied = fs.RecordsApplied
			rj.SnapshotsApplied = fs.SnapshotsApplied
			rj.LastError = fs.LastError
			rj.FatalError = fs.FatalError
		}
	}
	if full && s.streamer != nil {
		active := s.streamer.ActiveStreams()
		rj.ActiveStreams = &active
		rj.BytesShipped = s.streamer.BytesShipped()
	}
	return rj
}

// replicationDegraded maps follower staleness (or a fatal stream
// refusal) to the degraded contract: reads serve, the body says why
// they may be behind. Nil when not following or healthy.
func (s *Server) replicationDegraded() *DegradedJSON {
	if s.follower == nil {
		return nil
	}
	fs := s.follower.Status()
	if fs.FatalError != "" {
		return &DegradedJSON{Component: "replication", Reason: fs.FatalError}
	}
	if !fs.Stale {
		return nil
	}
	reason := fmt.Sprintf("leader %s silent for %.1fs (budget %s); serving version %d, %d sequences behind",
		fs.Upstream, fs.LagSeconds, fs.StalenessBudget, fs.ServedVersion, fs.LagSeq)
	if fs.LastError != "" {
		reason += ": " + fs.LastError
	}
	return &DegradedJSON{Component: "replication", Reason: reason}
}

// decodeJSON strictly decodes one JSON object from the request body.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// writeRequestError maps a body-handling error to its status: 413 for
// oversized bodies (MaxBytesReader fired), 400 for everything else.
func writeRequestError(w http.ResponseWriter, prefix string, err error) {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, prefix+err.Error())
}

// estimateScratch is the per-request working set of the hot /estimate
// path, recycled through a sync.Pool so steady-state serving does no
// per-request slice or buffer allocation: the decoded request (whose
// pattern slice json reuses), the assembled pattern list, the facade
// result slice (EstimateBatchInto appends into it), the wire response
// and the JSON encode buffer.
type estimateScratch struct {
	req      EstimateRequest
	patterns []string
	results  []xmlest.Result
	resp     EstimateResponse
	buf      bytes.Buffer
	enc      *json.Encoder
}

var estimatePool = sync.Pool{New: func() any {
	sc := &estimateScratch{}
	sc.enc = json.NewEncoder(&sc.buf)
	return sc
}}

// handleEstimate serves single and batched estimates from one pinned
// snapshot. Pattern errors (syntax, unknown predicates) are the
// client's: 400. Responses are compact (unindented) JSON encoded into
// a pooled buffer — this is the endpoint the serving benchmarks hammer.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	t := trace.FromContext(r.Context()) // nil unless sampled; all methods nil-safe
	sc := estimatePool.Get().(*estimateScratch)
	defer estimatePool.Put(sc)
	sc.req.Pattern = ""
	sc.req.Patterns = sc.req.Patterns[:0]
	t.Begin()
	if err := decodeJSON(r, &sc.req); err != nil {
		writeRequestError(w, "bad estimate request: ", err)
		return
	}
	t.Step(trace.StageDecode)
	patterns := sc.patterns[:0]
	if sc.req.Pattern != "" {
		patterns = append(patterns, sc.req.Pattern)
	}
	patterns = append(patterns, sc.req.Patterns...)
	sc.patterns = patterns
	if len(patterns) == 0 {
		writeError(w, http.StatusBadRequest, "estimate request needs \"pattern\" or \"patterns\"")
		return
	}
	if len(patterns) > s.cfg.MaxBatchPatterns {
		writeError(w, http.StatusBadRequest,
			"too many patterns in one batch: "+strconv.Itoa(len(patterns))+" > "+strconv.Itoa(s.cfg.MaxBatchPatterns))
		return
	}
	est := s.est
	if t != nil {
		// Pin the snapshot explicitly so the pin shows as its own stage;
		// the unsampled path lets EstimateBatchInto pin internally and
		// stays allocation-free.
		est = s.est.Snapshot()
		t.Step(trace.StagePin)
	}
	version, results, err := est.EstimateBatchInto(patterns, sc.results[:0])
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if t != nil {
		if mi, ok := est.MergedInfo(); ok && mi.Fresh {
			t.Step(trace.StageMerged)
		} else {
			t.Step(trace.StageFanout)
		}
	}
	for i, res := range results {
		s.patterns.Observe(patterns[i], res.Estimate, res.Elapsed)
		if s.monitor.Sampled() {
			// Sampled() is one nil-safe atomic op; everything that
			// allocates (the snapshot pin, the job closure) happens only on
			// this branch, so the unsampled path stays allocation-free.
			s.shadowSubmit(patterns[i], res.Estimate)
		}
	}
	sc.results = results
	out := sc.resp.Results[:0]
	for i, res := range results {
		out = append(out, EstimateResult{
			Pattern:       patterns[i],
			Estimate:      res.Estimate,
			ElapsedNS:     int64(res.Elapsed),
			UsedNoOverlap: res.UsedNoOverlap,
		})
	}
	sc.resp = EstimateResponse{Version: version, Results: out}
	if len(out) == 1 {
		sc.resp.Estimate = &out[0].Estimate
	}
	sc.buf.Reset()
	if err := sc.enc.Encode(&sc.resp); err != nil {
		writeError(w, http.StatusInternalServerError, "encode: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(sc.buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(sc.buf.Bytes())
	t.Step(trace.StageEncode)
}

// shadowSubmit enqueues one sampled estimate for shadow execution
// against a snapshot pinned here. The pin happens at submit time, so a
// mutation racing the request can make the exact count reflect a
// snapshot one version ahead of the estimate's — an accepted
// approximation: accuracy monitoring digests distributions, and a
// version-skewed sample is still drawn from live traffic.
func (s *Server) shadowSubmit(pattern string, estimate float64) {
	snap := s.est.Snapshot()
	s.monitor.Submit(pattern, estimate, func(deadline time.Time) (float64, error) {
		return snap.ShadowCount(pattern, deadline)
	})
}

// handleAppend lands one shard per request: a raw XML body is one
// document, a JSON {"documents": [...]} batch is parsed as one
// collection. Backpressure: at most MaxInflightAppends run at once;
// the rest are told to retry. Reads are never blocked either way.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if s.db == nil {
		writeError(w, http.StatusForbidden, "read-only server (loaded from a summary): no document store to append to")
		return
	}
	if s.follower != nil {
		writeFollowerRefusal(w, s.cfg.FollowURL, "appends")
		return
	}
	if comp, reason, bad := s.db.Degraded(); bad && comp == "wal" {
		// The WAL sealed on an I/O failure: nothing can be made durable,
		// so nothing is accepted. (A checkpoint-only degradation does not
		// gate appends — the WAL itself is healthy and keeps every ack.)
		s.noteDegraded()
		writeDegraded(w, comp, reason)
		return
	}
	select {
	case s.appendSem <- struct{}{}:
		defer func() { <-s.appendSem }()
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"ingest backpressure: "+strconv.Itoa(s.cfg.MaxInflightAppends)+" appends already in flight")
		return
	}

	var readers []io.Reader
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req AppendRequest
		if err := decodeJSON(r, &req); err != nil {
			writeRequestError(w, "bad append request: ", err)
			return
		}
		if len(req.Documents) == 0 {
			writeError(w, http.StatusBadRequest, "append request needs at least one document")
			return
		}
		for _, doc := range req.Documents {
			readers = append(readers, strings.NewReader(doc))
		}
	} else {
		readers = append(readers, r.Body)
	}
	info, err := s.db.Append(readers...)
	if err != nil {
		var de *xmlest.DegradedError
		if errors.As(err, &de) {
			// The failure that sealed the log can race the pre-check; the
			// ack is an error either way.
			s.noteDegraded()
			writeDegraded(w, de.Component, err.Error())
			return
		}
		writeRequestError(w, "append: ", err)
		return
	}
	s.appendsSeen.Add(uint64(info.Docs))
	// info.Version is the shard's own install version — the exact
	// visibility watermark — not a re-read of the live version, which a
	// concurrent append or compaction could already have advanced.
	resp := AppendResponse{
		ShardID: info.ID,
		Docs:    info.Docs,
		Nodes:   info.Nodes,
		Version: info.Version,
	}
	if s.db.Durable() {
		// DurableSeq is a lock-free atomic read; the full stats snapshot
		// would take the WAL mutex — which ModeAlways holds across each
		// fsync — on every ack.
		resp.WALSeq = info.WALSeq
		durable := s.db.DurableSeq() >= info.WALSeq
		resp.Durable = &durable
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAppendStream lands one large XML document as a summary-only
// shard without ever buffering it in memory: the body is spooled to a
// temporary file (bounded by MaxStreamBytes, far above the buffered
// path's body cap) and the streaming build scans it twice with memory
// bounded by document depth. On a durable daemon the ack is an
// immediate checkpoint rather than a WAL record — see
// Database.AppendStream. Shares the append semaphore: a streamed
// ingest is still ingest.
func (s *Server) handleAppendStream(w http.ResponseWriter, r *http.Request) {
	if s.db == nil {
		writeError(w, http.StatusForbidden, "read-only server (loaded from a summary): no document store to append to")
		return
	}
	if s.follower != nil {
		writeFollowerRefusal(w, s.cfg.FollowURL, "appends")
		return
	}
	select {
	case s.appendSem <- struct{}{}:
		defer func() { <-s.appendSem }()
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"ingest backpressure: "+strconv.Itoa(s.cfg.MaxInflightAppends)+" appends already in flight")
		return
	}

	tmp, err := os.CreateTemp("", "xqestd-stream-*.xml")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "append-stream: spool: "+err.Error())
		return
	}
	name := tmp.Name()
	defer os.Remove(name)
	_, err = io.Copy(tmp, r.Body)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		writeRequestError(w, "append-stream: ", err)
		return
	}
	info, err := s.db.AppendStream(func() (io.ReadCloser, error) {
		return os.Open(name)
	}, s.est.Options().GridSize)
	if err != nil {
		var de *xmlest.DegradedError
		if errors.As(err, &de) {
			writeDegraded(w, de.Component, err.Error())
			return
		}
		writeRequestError(w, "append-stream: ", err)
		return
	}
	s.appendsSeen.Add(uint64(info.Docs))
	resp := AppendResponse{
		ShardID:  info.ID,
		Docs:     info.Docs,
		Nodes:    info.Nodes,
		Version:  info.Version,
		Streamed: true,
	}
	if s.db.Durable() {
		// A streamed shard's durability proof is the checkpoint that just
		// committed, not a WAL sequence.
		durable := true
		resp.Durable = &durable
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCompact runs one on-demand compaction round.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if s.db == nil {
		writeError(w, http.StatusForbidden, "read-only server (loaded from a summary): nothing to compact")
		return
	}
	if s.follower != nil {
		// Compaction is a local rewrite the WAL never records, so a
		// follower compacting on its own would diverge from the leader's
		// shard structure — exactness forbids it.
		writeFollowerRefusal(w, s.cfg.FollowURL, "compaction")
		return
	}
	policy := s.cfg.CompactionPolicy
	var req CompactRequest
	if err := decodeJSON(r, &req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad compact request: "+err.Error())
		return
	}
	if req.MaxShards > 0 {
		policy.MaxShards = req.MaxShards
	}
	merged, err := s.db.Compact(policy)
	if err != nil {
		var de *xmlest.DegradedError
		if errors.As(err, &de) {
			writeDegraded(w, de.Component, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, "compact: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CompactResponse{
		Merged:  merged,
		Shards:  s.db.ShardCount(),
		Version: s.db.Version(),
	})
}

// handleShards lists the serving shard set. The set is pinned once, so
// the reported version and shard list always belong to the same
// snapshot — the consistency contract every response carries.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	snap := s.est.Snapshot()
	shards := snap.Shards()
	resp := ShardsResponse{Version: snap.Version(), Shards: make([]ShardJSON, len(shards))}
	for i, sh := range shards {
		resp.Shards[i] = ShardJSON{
			ID: sh.ID, Docs: sh.Docs, Nodes: sh.Nodes,
			SummaryOnly: sh.SummaryOnly, InstalledAt: sh.Version,
			WALSeq: sh.WALSeq,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStats reports corpus and serving statistics, all derived from
// one pinned snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.est.Snapshot()
	var durability *xmlest.DurabilityStats
	if s.db != nil {
		if ds, ok := s.db.DurabilityStats(); ok {
			durability = &ds
		}
	}
	var merged *xmlest.MergedInfo
	if mi, ok := snap.MergedInfo(); ok {
		merged = &mi
	}
	var acc *accuracy.MonitorSnapshot
	if s.monitor != nil {
		a := s.monitor.Snapshot()
		acc = &a
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds:     s.reg.Uptime().Seconds(),
		Version:           snap.Version(),
		ReadOnly:          s.ReadOnly(),
		Corpus:            snap.Stats(),
		SummaryBytes:      snap.StorageBytes(),
		GridSize:          s.gridSize(),
		AutoCompactions:   s.autoRounds.Load(),
		AutoMerged:        s.autoMerges.Load(),
		AppendedDocs:      s.appendsSeen.Load(),
		Merged:            merged,
		Endpoints:         s.reg.Snapshot(),
		Patterns:          s.patterns.Snapshot(metrics.DefaultTopPatterns),
		UntrackedPatterns: s.patterns.Untracked(),
		Accuracy:          acc,
		Build:             version.String(),
		Durability:        durability,
		Replication:       s.replicationJSON(true),
	})
}

// handleMetrics serves the Prometheus text exposition. The body is
// staged in a buffer so a mid-collection error can still produce a
// clean 500 instead of a truncated exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := s.reg.WriteExposition(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "metrics: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// handleHealthz is the liveness probe; it turns 503 once Shutdown
// begins so load balancers stop routing here while in-flight requests
// drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.est.Snapshot()
	status, code := "ok", http.StatusOK
	s.noteDegraded()
	degraded := s.degradedJSON()
	if degraded == nil {
		// A stale follower degrades the same way a failed checkpoint
		// does: honestly, without refusing reads. Storage faults win the
		// component slot — they are the more actionable signal.
		degraded = s.replicationDegraded()
	}
	if degraded != nil {
		// Degraded is still 200: reads serve from the in-memory snapshot,
		// so a load balancer probing liveness should keep routing. The
		// body names the failed component for monitoring.
		status = "degraded"
	}
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	var durableSeq *uint64
	if s.db != nil && s.db.Durable() {
		seq := s.db.DurableSeq() // lock-free atomic read
		durableSeq = &seq
	}
	writeJSON(w, code, HealthResponse{
		Status: status, Version: snap.Version(), Shards: snap.ShardCount(),
		DurableSeq: durableSeq, Degraded: degraded,
		Replication: s.replicationJSON(false),
		Build:       version.String(),
	})
}

// gridSize reports the effective grid size. Loaded (read-only)
// estimators carry zero options — their grid lives inside the summary
// blob — so the default is the best available answer there.
func (s *Server) gridSize() int {
	if g := s.est.Options().GridSize; g > 0 {
		return g
	}
	return xmlest.DefaultOptions.GridSize
}
