// Feedback: the paper's second motivating use case — giving a user an
// answer-size prediction before (or while) the query runs, so they can
// decide whether to refine it. This example runs interactive-style
// queries over a DBLP-shaped bibliography: for each query it prints the
// instant histogram estimate, then the exact count, with both timings,
// illustrating the orders-of-magnitude gap between estimating from the
// summary and touching the data.
package main

import (
	"fmt"
	"log"
	"time"

	"xmlest"
	"xmlest/internal/accuracy"
	"xmlest/internal/datagen"
)

func main() {
	// A tenth-scale DBLP keeps this example snappy; the shapes carry.
	tree := datagen.GenerateDBLP(datagen.DBLPConfig{Seed: 2002, Scale: 0.1})
	db := xmlest.FromCatalog(datagen.DBLPCatalog(tree))

	buildStart := time.Now()
	est, err := db.NewEstimator(xmlest.Options{GridSize: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d nodes; summaries built in %s (%d bytes)\n\n",
		tree.NumNodes(), time.Since(buildStart).Round(time.Millisecond), est.StorageBytes())

	queries := []string{
		"//article//author",   // broad: user should refine
		"//article//{1990's}", // narrower by decade
		"//book//cdrom",       // rare combination
		"//article//{conf}",   // citations of conference papers
	}
	for _, q := range queries {
		res, err := est.Estimate(q)
		if err != nil {
			log.Fatal(err)
		}
		// Fetch only the first page, as an online interface would,
		// alongside the predicted total.
		pageStart := time.Now()
		page, err := db.Find(q, 5)
		if err != nil {
			log.Fatal(err)
		}
		pageTime := time.Since(pageStart)
		exactStart := time.Now()
		real, err := db.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		exactTime := time.Since(exactStart)

		fmt.Printf("query %s\n", q)
		fmt.Printf("  predicted ~%.0f results      (%s, from %d-byte summaries)\n",
			res.Estimate, res.Elapsed, est.StorageBytes())
		fmt.Printf("  first %d results fetched in %s\n", len(page), pageTime)
		fmt.Printf("  actual     %.0f results      (%s, full count)\n", real, exactTime)
		// Score the prediction with the same metric the daemon's online
		// accuracy monitor exports: q-error, the factor the estimate is
		// off by in either direction (1 = perfect).
		fmt.Printf("  q-error    %.2f\n", accuracy.QError(res.Estimate, real))
		switch {
		case res.Estimate > 10000:
			fmt.Printf("  advice: result is huge — consider refining before running\n\n")
		case res.Estimate < 10:
			fmt.Printf("  advice: result is tiny — run it\n\n")
		default:
			fmt.Printf("  advice: manageable result size\n\n")
		}
	}
}
